//===- tests/test_json.cpp - JsonWriter golden bytes -----------------------===//
///
/// The JsonWriter's layout is a byte-for-byte contract: the BENCH_*.json
/// emitters switched from hand-rolled snprintf to this writer on the
/// promise of identical output, and scripts diff those files. These tests
/// pin the exact bytes for the three shapes the benches use (flat root
/// object, array of inline objects, array nesting another array) plus the
/// number/string formatting rules.
///
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <gtest/gtest.h>

using namespace vsc;

TEST(JsonWriterTest, FlatRootObject) {
  JsonWriter J;
  J.beginObject()
      .key("bench")
      .str("demo")
      .key("n")
      .num(uint64_t(3))
      .key("ok")
      .boolean(true)
      .endObject();
  EXPECT_EQ(J.take(), "{\n"
                      "  \"bench\": \"demo\",\n"
                      "  \"n\": 3,\n"
                      "  \"ok\": true\n"
                      "}\n");
}

TEST(JsonWriterTest, ArrayOfInlineObjects) {
  // The bench_sim / bench_pdf_gain shape: a multi-line kernels array whose
  // elements are single-line objects.
  JsonWriter J;
  J.beginObject().key("kernels").beginArray();
  J.beginObject()
      .key("name")
      .str("a")
      .key("speedup")
      .num(1.5, 3)
      .endObject();
  J.beginObject()
      .key("name")
      .str("b")
      .key("speedup")
      .num(2.0, 3)
      .endObject();
  J.endArray().key("geomean").num(1.732, 3).endObject();
  EXPECT_EQ(J.take(), "{\n"
                      "  \"kernels\": [\n"
                      "    {\"name\": \"a\", \"speedup\": 1.500},\n"
                      "    {\"name\": \"b\", \"speedup\": 2.000}\n"
                      "  ],\n"
                      "  \"geomean\": 1.732\n"
                      "}\n");
}

TEST(JsonWriterTest, NestedArrayReindents) {
  // The bench_workloads shape: an inline element object opens its own
  // array, which switches back to multi-line layout one level deeper.
  JsonWriter J;
  J.beginObject().key("kernels").beginArray();
  J.beginObject().key("name").str("k").key("machines").beginArray();
  J.beginObject().key("model").str("m").key("x").num(1).endObject();
  J.beginObject().key("model").str("n").key("x").num(2).endObject();
  J.endArray().endObject();
  J.endArray().key("tail").num(0.25, 2).endObject();
  EXPECT_EQ(J.take(), "{\n"
                      "  \"kernels\": [\n"
                      "    {\"name\": \"k\", \"machines\": [\n"
                      "      {\"model\": \"m\", \"x\": 1},\n"
                      "      {\"model\": \"n\", \"x\": 2}\n"
                      "    ]}\n"
                      "  ],\n"
                      "  \"tail\": 0.25\n"
                      "}\n");
}

TEST(JsonWriterTest, NumberFormats) {
  JsonWriter J;
  J.beginObject()
      .key("u")
      .num(uint64_t(18446744073709551615ULL))
      .key("i")
      .num(int64_t(-42))
      .key("kept")
      .num(-1) // int overload (the pdf_layout_kept tri-state)
      .key("f6")
      .num(0.000123456, 6)
      .key("f1")
      .num(1234.56, 1)
      .endObject();
  EXPECT_EQ(J.take(), "{\n"
                      "  \"u\": 18446744073709551615,\n"
                      "  \"i\": -42,\n"
                      "  \"kept\": -1,\n"
                      "  \"f6\": 0.000123,\n"
                      "  \"f1\": 1234.6\n"
                      "}\n");
}

TEST(JsonWriterTest, StringEscaping) {
  JsonWriter J;
  J.beginObject().key("s").str("quote\" and back\\slash").endObject();
  EXPECT_EQ(J.take(), "{\n"
                      "  \"s\": \"quote\\\" and back\\\\slash\"\n"
                      "}\n");
}

TEST(JsonWriterTest, EmptyArray) {
  JsonWriter J;
  J.beginObject().key("xs").beginArray().endArray().endObject();
  EXPECT_EQ(J.take(), "{\n"
                      "  \"xs\": [\n"
                      "  ]\n"
                      "}\n");
}
