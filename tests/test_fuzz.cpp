//===- tests/test_fuzz.cpp - Differential pipeline fuzzing -----------------===//
///
/// Property-based end-to-end testing: deterministic random mini-C
/// programs are compiled and optimized at every level, with and without
/// profiles, on every machine model — and every variant must produce the
/// identical behaviour fingerprint (output, exit code, final memory
/// digest). This is the repository's broadest miscompilation net.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "frontend/Frontend.h"
#include "profile/Counters.h"
#include "vliw/Pipeline.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace vsc;

namespace {

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

/// Base added to every generator seed, from VSC_FUZZ_SEED (default 0) —
/// CI shifts the whole suite onto fresh programs without a recompile, and
/// a failure is replayed exactly by exporting the value a report names.
uint64_t fuzzBaseSeed() {
  if (const char *E = std::getenv("VSC_FUZZ_SEED"))
    return std::strtoull(E, nullptr, 10);
  return 0;
}

/// While a fuzz case runs, any pipeline abort (verifier, audit or oracle
/// finding) appends the reproduction context to its report: the absolute
/// seed, the command replaying it, and the generated source.
class FuzzContext {
public:
  explicit FuzzContext(uint64_t Seed) {
    setPipelineFailureHook([Seed] {
      return "fuzz seed " + std::to_string(Seed) +
             " (replay: VSC_FUZZ_SEED=" + std::to_string(Seed - 1) +
             " ctest -R Fuzz, first instance)\n--- generated source ---\n" +
             generateRandomMiniC(Seed);
    });
  }
  ~FuzzContext() { setPipelineFailureHook(nullptr); }
};

std::unique_ptr<Module> compileSeed(uint64_t Seed) {
  FrontendOptions Opts;
  Opts.AssumeSafeLoads = true;
  CompileResult R = compileMiniC(generateRandomMiniC(Seed), Opts);
  EXPECT_TRUE(R.ok()) << "seed " << Seed << ": " << R.Error << "\n"
                      << generateRandomMiniC(Seed);
  return std::move(R.M);
}

RunResult runIt(const Module &M, const MachineModel &Machine) {
  RunOptions Opts;
  Opts.Args = {6};
  Opts.MaxInstrs = 20'000'000;
  return simulate(M, Machine, Opts);
}

/// Every fuzzed pipeline run carries the semantic audits AND the
/// differential execution oracle at Boundaries level, so all 40 seeds
/// exercise both checkers across the whole pipeline (each aborts the
/// process on a finding, with the FuzzContext reproduction info). The
/// alias audit rides along: every NoAlias claim the pipeline issues on
/// these programs is validated against runtime addresses.
PipelineOptions auditedOptions() {
  PipelineOptions Opts;
  Opts.Audit = AuditLevel::Boundaries;
  Opts.Oracle = OracleLevel::Boundaries;
  Opts.AliasAudit = true;
  // Grade (never Apply) the exact modulo scheduler on every fuzzed loop:
  // pure observation, but it runs the min-II analysis and the
  // branch-and-bound search over arbitrary generated loop shapes. The
  // budget is lowered so pathological seeds cut over to BudgetExceeded
  // instead of burning CI time.
  Opts.ExactPipelining = ExactPipelineMode::Grade;
  Opts.ExactPipeline.NodeBudget = 20000;
  return Opts;
}

} // namespace

TEST_P(FuzzTest, AllLevelsAgree) {
  uint64_t Seed = fuzzBaseSeed() + GetParam();
  FuzzContext Ctx(Seed);
  auto Base = compileSeed(Seed);
  ASSERT_TRUE(Base);
  optimize(*Base, OptLevel::None, auditedOptions());
  RunResult RB = runIt(*Base, rs6000());
  ASSERT_FALSE(RB.Trapped) << "seed " << Seed << ": " << RB.TrapMsg << "\n"
                           << generateRandomMiniC(Seed);

  for (OptLevel L : {OptLevel::Classical, OptLevel::Vliw}) {
    auto M = compileSeed(Seed);
    ASSERT_TRUE(M);
    optimize(*M, L, auditedOptions());
    ASSERT_EQ(verifyModule(*M), "") << "seed " << Seed;
    RunResult R = runIt(*M, rs6000());
    EXPECT_EQ(RB.fingerprint(), R.fingerprint())
        << "seed " << Seed << " at " << optLevelName(L) << "\n"
        << generateRandomMiniC(Seed);
  }
}

TEST_P(FuzzTest, MachinesAgreeFunctionally) {
  uint64_t Seed = fuzzBaseSeed() + GetParam();
  FuzzContext Ctx(Seed);
  auto M = compileSeed(Seed);
  ASSERT_TRUE(M);
  PipelineOptions Opts = auditedOptions();
  Opts.Machine = power2();
  optimize(*M, OptLevel::Vliw, Opts);
  RunResult R1 = runIt(*M, rs6000());
  RunResult R2 = runIt(*M, power2());
  RunResult R3 = runIt(*M, ppc601());
  ASSERT_FALSE(R1.Trapped) << R1.TrapMsg;
  EXPECT_EQ(R1.fingerprint(), R2.fingerprint()) << "seed " << Seed;
  EXPECT_EQ(R1.fingerprint(), R3.fingerprint()) << "seed " << Seed;
}

TEST_P(FuzzTest, PdfAgrees) {
  uint64_t Seed = fuzzBaseSeed() + GetParam();
  FuzzContext Ctx(Seed);
  auto Base = compileSeed(Seed);
  ASSERT_TRUE(Base);
  optimize(*Base, OptLevel::None);
  RunResult RB = runIt(*Base, rs6000());
  ASSERT_FALSE(RB.Trapped) << RB.TrapMsg;

  auto Train = compileSeed(Seed);
  auto Target = compileSeed(Seed);
  ASSERT_TRUE(Train && Target);
  RunOptions TrainOpts;
  TrainOpts.Args = {2};
  TrainOpts.MaxInstrs = 20'000'000;
  ProfileData P = collectProfile(*Train, *Target, rs6000(), TrainOpts);
  PipelineOptions Opts = auditedOptions();
  Opts.Profile = &P;
  optimize(*Target, OptLevel::Vliw, Opts);
  ASSERT_EQ(verifyModule(*Target), "") << "seed " << Seed;
  RunResult R = runIt(*Target, rs6000());
  EXPECT_EQ(RB.fingerprint(), R.fingerprint())
      << "seed " << Seed << "\n" << generateRandomMiniC(Seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Range<uint64_t>(1, 41));

namespace {

const char *shapeName(ProgramShape S) {
  switch (S) {
  case ProgramShape::Generic:
    return "Generic";
  case ProgramShape::Interp:
    return "Interp";
  case ProgramShape::HashProbe:
    return "HashProbe";
  }
  return "?";
}

/// Reproduction context for a shaped case: names the shape alongside the
/// seed, since shaped programs are requested explicitly rather than
/// drawn from the seed-derived shape mix.
class ShapedFuzzContext {
public:
  ShapedFuzzContext(uint64_t Seed, ProgramShape Shape) {
    setPipelineFailureHook([Seed, Shape] {
      return std::string("fuzz seed ") + std::to_string(Seed) + " shape " +
             shapeName(Shape) +
             " (replay: VSC_FUZZ_SEED=" + std::to_string(Seed - 1) +
             " ctest -R ShapedFuzz, first instance)\n"
             "--- generated source ---\n" +
             generateRandomMiniC(Seed, Shape);
    });
  }
  ~ShapedFuzzContext() { setPipelineFailureHook(nullptr); }
};

std::unique_ptr<Module> compileShaped(uint64_t Seed, ProgramShape Shape) {
  FrontendOptions Opts;
  Opts.AssumeSafeLoads = true;
  CompileResult R = compileMiniC(generateRandomMiniC(Seed, Shape), Opts);
  EXPECT_TRUE(R.ok()) << "seed " << Seed << " shape " << shapeName(Shape)
                      << ": " << R.Error << "\n"
                      << generateRandomMiniC(Seed, Shape);
  return std::move(R.M);
}

/// The dispatch- and probe-shaped generators, run through the same
/// audited differential pipeline as the generic corpus. These shapes
/// exist precisely because the irregular kernels showed that ladder
/// dispatch and probe loops stress paths statement-soup rarely reaches
/// (branch reversal on skewed ladders, speculation past data-dependent
/// trip counts), so the fuzzer hammers those paths with fresh programs
/// every CI day.
class ShapedFuzzTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(ShapedFuzzTest, AllLevelsAgree) {
  for (ProgramShape Shape : {ProgramShape::Interp, ProgramShape::HashProbe}) {
    uint64_t Seed = fuzzBaseSeed() + GetParam();
    ShapedFuzzContext Ctx(Seed, Shape);
    auto Base = compileShaped(Seed, Shape);
    ASSERT_TRUE(Base);
    optimize(*Base, OptLevel::None, auditedOptions());
    RunResult RB = runIt(*Base, rs6000());
    ASSERT_FALSE(RB.Trapped)
        << "seed " << Seed << " shape " << shapeName(Shape) << ": "
        << RB.TrapMsg << "\n" << generateRandomMiniC(Seed, Shape);
    EXPECT_LT(RB.DynInstrs, 3'000'000u) << "seed " << Seed;

    for (OptLevel L : {OptLevel::Classical, OptLevel::Vliw}) {
      auto M = compileShaped(Seed, Shape);
      ASSERT_TRUE(M);
      optimize(*M, L, auditedOptions());
      ASSERT_EQ(verifyModule(*M), "")
          << "seed " << Seed << " shape " << shapeName(Shape);
      RunResult R = runIt(*M, rs6000());
      EXPECT_EQ(RB.fingerprint(), R.fingerprint())
          << "seed " << Seed << " shape " << shapeName(Shape) << " at "
          << optLevelName(L) << "\n" << generateRandomMiniC(Seed, Shape);
    }
  }
}

TEST_P(ShapedFuzzTest, PdfAgreesAcrossMachines) {
  for (ProgramShape Shape : {ProgramShape::Interp, ProgramShape::HashProbe}) {
    uint64_t Seed = fuzzBaseSeed() + GetParam();
    ShapedFuzzContext Ctx(Seed, Shape);
    auto Base = compileShaped(Seed, Shape);
    ASSERT_TRUE(Base);
    optimize(*Base, OptLevel::None);
    RunResult RB = runIt(*Base, rs6000());
    ASSERT_FALSE(RB.Trapped) << RB.TrapMsg;

    auto Train = compileShaped(Seed, Shape);
    auto Target = compileShaped(Seed, Shape);
    ASSERT_TRUE(Train && Target);
    RunOptions TrainOpts;
    TrainOpts.Args = {2};
    TrainOpts.MaxInstrs = 20'000'000;
    ProfileData P = collectProfile(*Train, *Target, rs6000(), TrainOpts);
    PipelineOptions Opts = auditedOptions();
    Opts.Profile = &P;
    optimize(*Target, OptLevel::Vliw, Opts);
    ASSERT_EQ(verifyModule(*Target), "")
        << "seed " << Seed << " shape " << shapeName(Shape);
    for (const MachineModel &MM : {rs6000(), power2(), ppc601()}) {
      RunResult R = runIt(*Target, MM);
      EXPECT_EQ(RB.fingerprint(), R.fingerprint())
          << "seed " << Seed << " shape " << shapeName(Shape) << " on "
          << MM.Name << "\n" << generateRandomMiniC(Seed, Shape);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShapedFuzzTest,
                         ::testing::Range<uint64_t>(1, 13));

TEST(FuzzGenerator, IsDeterministic) {
  EXPECT_EQ(generateRandomMiniC(7), generateRandomMiniC(7));
  EXPECT_NE(generateRandomMiniC(7), generateRandomMiniC(8));
}

TEST(FuzzGenerator, ShapedGenerationIsDeterministic) {
  for (ProgramShape S : {ProgramShape::Generic, ProgramShape::Interp,
                         ProgramShape::HashProbe}) {
    EXPECT_EQ(generateRandomMiniC(7, S), generateRandomMiniC(7, S))
        << shapeName(S);
    EXPECT_NE(generateRandomMiniC(7, S), generateRandomMiniC(8, S))
        << shapeName(S);
  }
  // Distinct shapes yield distinct programs for the same seed.
  EXPECT_NE(generateRandomMiniC(7, ProgramShape::Generic),
            generateRandomMiniC(7, ProgramShape::Interp));
  EXPECT_NE(generateRandomMiniC(7, ProgramShape::Interp),
            generateRandomMiniC(7, ProgramShape::HashProbe));
}

// The seed-derived dispatcher must keep all three families in the
// corpus: over a window of seeds each shape appears, and the one-arg
// form is exactly the two-arg form at the derived shape.
TEST(FuzzGenerator, SeedDerivedShapeMixCoversAllFamilies) {
  int Seen[3] = {0, 0, 0};
  for (uint64_t Seed = 1; Seed <= 60; ++Seed) {
    std::string P = generateRandomMiniC(Seed);
    for (ProgramShape S : {ProgramShape::Generic, ProgramShape::Interp,
                           ProgramShape::HashProbe})
      if (P == generateRandomMiniC(Seed, S))
        ++Seen[static_cast<int>(S)];
  }
  EXPECT_GT(Seen[0], 0) << "no Generic programs in seed window";
  EXPECT_GT(Seen[1], 0) << "no Interp programs in seed window";
  EXPECT_GT(Seen[2], 0) << "no HashProbe programs in seed window";
  EXPECT_EQ(Seen[0] + Seen[1] + Seen[2], 60);
}

TEST(FuzzGenerator, ProgramsTerminateQuickly) {
  for (uint64_t Seed = 100; Seed != 110; ++Seed) {
    auto M = compileSeed(Seed);
    ASSERT_TRUE(M);
    optimize(*M, OptLevel::None);
    RunResult R = runIt(*M, rs6000());
    EXPECT_FALSE(R.Trapped) << "seed " << Seed << ": " << R.TrapMsg;
    EXPECT_LT(R.DynInstrs, 3'000'000u) << "seed " << Seed;
  }
}
