//===- tests/test_aliasaudit.cpp - Dynamic NoAlias claim validation --------===//
///
/// Coverage for audit/AliasAudit.h: claim-log deduplication, a clean audit
/// over genuinely disjoint accesses, detection of an injected unsound
/// claim, vacuous-claim dropping, and the per-window semantics (a pair
/// that overlaps across loop iterations but not within one block
/// execution must pass a PerBlockExecution claim and fail an Absolute
/// one).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "audit/AliasAudit.h"
#include "vliw/Pipeline.h"

#include <gtest/gtest.h>

using namespace vsc;

namespace {

AliasClaim claim(const char *Fn, uint32_t A, uint32_t B, AliasClaimKind K) {
  AliasClaim C;
  C.Fn = Fn;
  C.IdA = A;
  C.IdB = B;
  C.Kind = K;
  return C;
}

/// The \p Nth memory access of \p F in layout order (0-based).
const Instr &memAccessAt(const Function &F, unsigned N) {
  for (const auto &BB : F.blocks())
    for (const Instr &I : BB->instrs())
      if (I.isMemAccess() && N-- == 0)
        return I;
  ADD_FAILURE() << "not enough memory accesses";
  static Instr Dummy;
  return Dummy;
}

} // namespace

TEST(AliasClaimLog, DeduplicatesByUnorderedPairAndKind) {
  AliasClaimLog Log;
  Log.noAliasClaim(claim("f", 1, 2, AliasClaimKind::Absolute));
  Log.noAliasClaim(claim("f", 1, 2, AliasClaimKind::Absolute));
  Log.noAliasClaim(claim("f", 2, 1, AliasClaimKind::Absolute)); // unordered
  EXPECT_EQ(Log.size(), 1u);
  // Same pair, different window: a distinct claim.
  Log.noAliasClaim(claim("f", 1, 2, AliasClaimKind::PerInvocation));
  // Same pair, different function: distinct.
  Log.noAliasClaim(claim("g", 1, 2, AliasClaimKind::Absolute));
  EXPECT_EQ(Log.size(), 3u);
  Log.clear();
  EXPECT_EQ(Log.size(), 0u);
  Log.noAliasClaim(claim("f", 1, 2, AliasClaimKind::Absolute));
  EXPECT_EQ(Log.size(), 1u); // Seen set cleared too
}

TEST(AliasAudit, CleanOnDisjointAccesses) {
  auto M = parseOrDie(R"(
global g : 16
func main(0) {
entry:
  LTOC r32 = .g
  LI r40 = 3
  ST 0(r32) = r40
  ST 8(r32) = r40
  L r41 = 0(r32)
  A r3 = r41, r40
  CALL print_int, 1
  RET
}
)");
  AliasAuditStats Stats;
  AuditResult R = runAliasAudit(*M, rs6000(), defaultAliasAuditBattery(), {},
                                &Stats);
  EXPECT_TRUE(R.ok()) << R.Report;
  // A clean result must come from actual coverage, not from validating
  // nothing: claims were enumerated, the simulator reported accesses, and
  // overlap checks ran inside live windows.
  EXPECT_GT(Stats.StaticClaims, 0u);
  EXPECT_GT(Stats.Events, 0u);
  EXPECT_GT(Stats.ChecksHit, 0u);
}

TEST(AliasAudit, DetectsInjectedFalseClaim) {
  auto M = parseOrDie(R"(
global g : 8
func main(0) {
entry:
  LTOC r32 = .g
  LI r40 = 7
  ST 0(r32) = r40
  L r3 = 0(r32)
  CALL print_int, 1
  RET
}
)");
  const Function &F = *M->findFunction("main");
  const Instr &St = memAccessAt(F, 0);
  const Instr &Ld = memAccessAt(F, 1);
  // The store and the load hit the same address every run; claiming them
  // disjoint program-wide is exactly the unsoundness the audit exists to
  // catch.
  std::vector<AliasClaim> Injected = {
      claim("main", St.Id, Ld.Id, AliasClaimKind::Absolute)};
  AliasAuditStats Stats;
  AuditResult R = runAliasAudit(*M, rs6000(), defaultAliasAuditBattery(),
                                Injected, &Stats);
  ASSERT_FALSE(R.ok());
  ASSERT_FALSE(R.Findings.empty());
  EXPECT_EQ(R.Findings[0].Checker, "alias-audit");
  EXPECT_EQ(R.Findings[0].Fn, "main");
  EXPECT_NE(R.str().find("overlapped"), std::string::npos) << R.str();
}

TEST(AliasAudit, DropsVacuousClaims) {
  auto M = parseOrDie(R"(
global g : 8
func main(0) {
entry:
  LTOC r32 = .g
  L r3 = 0(r32)
  CALL print_int, 1
  RET
}
)");
  // Ids that no longer exist (an optimized-away pair): vacuously true,
  // dropped, never a finding.
  std::vector<AliasClaim> Stale = {
      claim("main", 1000, 1001, AliasClaimKind::Absolute)};
  AliasAuditStats Stats;
  AuditResult R =
      runAliasAudit(*M, rs6000(), defaultAliasAuditBattery(), Stale, &Stats);
  EXPECT_TRUE(R.ok()) << R.Report;
  EXPECT_EQ(Stats.DroppedClaims, 1u);
}

TEST(AliasAudit, PerBlockExecutionWindowIgnoresCrossIterationOverlap) {
  // A walking pointer: within one loop iteration the load [p, p+4) and
  // the store [p+4, p+8) are disjoint, but the store of iteration k
  // overlaps the load of iteration k+1. The audit must accept the
  // PerBlockExecution claim (which the pipeline's SameExecution-scope
  // disambiguation issues) and reject the same pair claimed Absolute.
  auto M = parseOrDie(R"(
global g : 16 = [1 0 0 0 2 0 0 0 3 0 0 0 4 0 0 0]
func main(0) {
entry:
  LTOC r32 = .g
  LI r33 = 2
  MTCTR r33
loop:
  L r40 = 0(r32)
  ST 4(r32) = r40
  AI r32 = r32, 4
  BCT loop
exit:
  LI r3 = 0
  CALL print_int, 1
  RET
}
)");
  const Function &F = *M->findFunction("main");
  const Instr &Ld = memAccessAt(F, 0);
  const Instr &St = memAccessAt(F, 1);

  // The static enumeration already claims this pair per-block-execution
  // (same base register, no intervening redefinition); a clean audit
  // validates the window machinery against real cross-iteration overlap.
  AliasAuditStats Stats;
  AuditResult Clean = runAliasAudit(*M, rs6000(), defaultAliasAuditBattery(),
                                    {}, &Stats);
  EXPECT_TRUE(Clean.ok()) << Clean.Report;
  EXPECT_GT(Stats.ChecksHit, 0u);

  // The same pair claimed disjoint across the whole run is unsound.
  std::vector<AliasClaim> Absolute = {
      claim("main", Ld.Id, St.Id, AliasClaimKind::Absolute)};
  AuditResult Bad = runAliasAudit(*M, rs6000(), defaultAliasAuditBattery(),
                                  Absolute, &Stats);
  ASSERT_FALSE(Bad.ok());
  EXPECT_EQ(Bad.Findings[0].Checker, "alias-audit");
}

TEST(AliasAudit, PipelineCollectsAndValidatesItsOwnClaims) {
  // End-to-end: an audited optimize() run records the pipeline's NoAlias
  // verdicts and validates them after the final pass — any unsound
  // disambiguation aborts, so reaching the assertions means the loop
  // closed cleanly.
  auto M = parseOrDie(R"(
global a : 8
global b : 8
func main(0) {
entry:
  LTOC r32 = .a
  LTOC r33 = .b
  LI r40 = 5
  ST 0(r32) = r40
  L r41 = 0(r33)
  ST 0(r33) = r40
  L r42 = 0(r32)
  A r3 = r41, r42
  CALL print_int, 1
  RET
}
)");
  PipelineOptions Opts;
  Opts.AliasAudit = true;
  optimize(*M, OptLevel::Vliw, Opts);
  EXPECT_EQ(verifyModule(*M), "");
}
