//===- tests/test_frontend.cpp - mini-C front end --------------------------===//

#include "TestUtil.h"
#include "frontend/Frontend.h"
#include "vliw/Pipeline.h"

#include <gtest/gtest.h>

using namespace vsc;

namespace {

/// Compiles, inserts prologs, runs, and returns the output.
std::string runC(const std::string &Src, std::vector<int64_t> Args = {},
                 int64_t *ExitCode = nullptr) {
  CompileResult R = compileMiniC(Src);
  EXPECT_TRUE(R.ok()) << R.Error;
  if (!R.ok())
    return "<compile error>";
  optimize(*R.M, OptLevel::None);
  RunOptions Opts;
  Opts.Args = std::move(Args);
  RunResult Run = simulate(*R.M, rs6000(), Opts);
  EXPECT_FALSE(Run.Trapped) << Run.TrapMsg;
  if (ExitCode)
    *ExitCode = Run.ExitCode;
  return Run.Output;
}

} // namespace

TEST(MiniC, ArithmeticAndPrecedence) {
  EXPECT_EQ(runC("int main() { print_int(2 + 3 * 4); return 0; }"), "14\n");
  EXPECT_EQ(runC("int main() { print_int((2 + 3) * 4); return 0; }"),
            "20\n");
  EXPECT_EQ(runC("int main() { print_int(7 / 2); print_int(7 % 3); "
                 "return 0; }"),
            "3\n1\n");
  EXPECT_EQ(runC("int main() { print_int(1 << 10); print_int(-16 >> 2); "
                 "return 0; }"),
            "1024\n-4\n");
  EXPECT_EQ(runC("int main() { print_int(0xff & 0x0f); print_int(1 | 6); "
                 "print_int(5 ^ 3); print_int(~0); return 0; }"),
            "15\n7\n6\n-1\n");
}

TEST(MiniC, ComparisonsAndLogic) {
  EXPECT_EQ(runC("int main() { print_int(3 < 4); print_int(4 <= 4); "
                 "print_int(5 > 6); print_int(5 >= 6); print_int(2 == 2); "
                 "print_int(2 != 2); return 0; }"),
            "1\n1\n0\n0\n1\n0\n");
  EXPECT_EQ(runC("int main() { print_int(1 && 0); print_int(1 || 0); "
                 "print_int(!5); print_int(!0); return 0; }"),
            "0\n1\n0\n1\n");
}

TEST(MiniC, ShortCircuitSkipsSideEffects) {
  EXPECT_EQ(runC(R"(
int g;
int bump() { g = g + 1; return 1; }
int main() {
  g = 0;
  int x = 0 && bump();
  int y = 1 || bump();
  print_int(g);
  print_int(x + y);
  return 0;
}
)"),
            "0\n1\n");
}

TEST(MiniC, ControlFlow) {
  EXPECT_EQ(runC(R"(
int main() {
  int s = 0;
  for (int i = 0; i < 10; i++) {
    if (i == 3) continue;
    if (i == 8) break;
    s += i;
  }
  print_int(s);
  int n = 0;
  do { n++; } while (n < 5);
  print_int(n);
  return 0;
}
)"),
            "25\n5\n");
}

TEST(MiniC, GlobalsArraysAndInitializers) {
  EXPECT_EQ(runC(R"(
int a[4] = {10, 20, 30, 40};
int total;
int main() {
  total = 0;
  for (int i = 0; i < 4; i++) total += a[i];
  a[2] = 99;
  print_int(total);
  print_int(a[2]);
  return 0;
}
)"),
            "100\n99\n");
}

TEST(MiniC, PointersAndAddressOf) {
  EXPECT_EQ(runC(R"(
int a[8];
int main() {
  for (int i = 0; i < 8; i++) a[i] = i * i;
  int *p = &a[2];
  print_int(*p);
  print_int(p[3]);
  p = p + 1;
  print_int(*p);
  *p = 1000;
  print_int(a[3]);
  return 0;
}
)"),
            "4\n25\n9\n1000\n");
}

TEST(MiniC, LocalArraysLiveInTheFrame) {
  EXPECT_EQ(runC(R"(
int helper(int k) {
  int buf[8];
  for (int i = 0; i < 8; i++) buf[i] = i + k;
  int s = 0;
  for (int i = 0; i < 8; i++) s += buf[i];
  return s;
}
int main() {
  print_int(helper(0));
  print_int(helper(10));
  return 0;
}
)"),
            "28\n108\n");
}

TEST(MiniC, RecursionAndCalleeSavedLocals) {
  int64_t Exit = 0;
  EXPECT_EQ(runC(R"(
int ack(int m, int n) {
  if (m == 0) return n + 1;
  if (n == 0) return ack(m - 1, 1);
  return ack(m - 1, ack(m, n - 1));
}
int main() {
  print_int(ack(2, 3));
  return ack(1, 1);
}
)",
                 {}, &Exit),
            "9\n");
  EXPECT_EQ(Exit, 3);
}

TEST(MiniC, MainReceivesArguments) {
  EXPECT_EQ(runC("int main(int n) { print_int(n * 2); return 0; }", {21}),
            "42\n");
}

TEST(MiniC, ReadIntBuiltin) {
  CompileResult R = compileMiniC(
      "int main() { print_int(read_int() + read_int()); return 0; }");
  ASSERT_TRUE(R.ok()) << R.Error;
  optimize(*R.M, OptLevel::None);
  RunOptions Opts;
  Opts.Input = {30, 12};
  EXPECT_EQ(simulate(*R.M, rs6000(), Opts).Output, "42\n");
}

TEST(MiniC, VolatileGlobalSurvivesOptimization) {
  const char *Src = R"(
volatile int flag;
int main() {
  flag = 1;
  flag = 2;
  int a = flag;
  int b = flag;
  print_int(a + b);
  return 0;
}
)";
  CompileResult R = compileMiniC(Src);
  ASSERT_TRUE(R.ok()) << R.Error;
  optimize(*R.M, OptLevel::Vliw);
  // Both stores and both loads must survive.
  size_t Stores = 0, Loads = 0;
  for (const auto &BB : R.M->findFunction("main")->blocks())
    for (const Instr &I : BB->instrs()) {
      if (I.isStore() && I.IsVolatile)
        ++Stores;
      if (I.isLoad() && I.IsVolatile)
        ++Loads;
    }
  EXPECT_EQ(Stores, 2u);
  EXPECT_EQ(Loads, 2u);
  EXPECT_EQ(simulate(*R.M, rs6000()).Output, "4\n");
}

TEST(MiniC, CompileErrorsAreReported) {
  EXPECT_FALSE(compileMiniC("int main() { return x; }").ok());
  EXPECT_FALSE(compileMiniC("int main() { 1 +; }").ok());
  EXPECT_FALSE(compileMiniC("int main() { break; }").ok());
  EXPECT_FALSE(compileMiniC("int f(") .ok());
  CompileResult R = compileMiniC("int main() { return y; }");
  EXPECT_NE(R.Error.find("unknown variable"), std::string::npos) << R.Error;
}

TEST(MiniC, OptimizedProgramsBehaveIdentically) {
  // A program touching every feature, compared across all levels.
  const char *Src = R"(
int grid[64];
int row(int r) {
  int s = 0;
  for (int c = 0; c < 8; c++) s += grid[r * 8 + c];
  return s;
}
int main(int n) {
  for (int i = 0; i < 64; i++) grid[i] = (i * 37) & 63;
  int total = 0;
  for (int pass = 0; pass < n; pass++) {
    for (int r = 0; r < 8; r++) {
      int v = row(r);
      if (v & 1) total += v; else total -= v;
    }
  }
  print_int(total);
  return total & 0xff;
}
)";
  CompileResult Base = compileMiniC(Src);
  ASSERT_TRUE(Base.ok()) << Base.Error;
  optimize(*Base.M, OptLevel::None);
  RunOptions Opts;
  Opts.Args = {5};
  RunResult RB = simulate(*Base.M, rs6000(), Opts);
  ASSERT_FALSE(RB.Trapped) << RB.TrapMsg;

  for (OptLevel L : {OptLevel::Classical, OptLevel::Vliw}) {
    CompileResult R = compileMiniC(Src);
    ASSERT_TRUE(R.ok());
    optimize(*R.M, L);
    RunResult RR = simulate(*R.M, rs6000(), Opts);
    EXPECT_EQ(RB.fingerprint(), RR.fingerprint())
        << "level " << optLevelName(L);
    EXPECT_LE(RR.Cycles, RB.Cycles);
  }
}
