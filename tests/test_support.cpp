//===- tests/test_support.cpp - Support-layer data structures --------------===//

#include "support/BitVector.h"

#include <gtest/gtest.h>

using namespace vsc;

TEST(BitVectorTest, SetResetTestCount) {
  BitVector V(130);
  EXPECT_EQ(V.size(), 130u);
  EXPECT_TRUE(V.none());
  V.set(0);
  V.set(63);
  V.set(64);
  V.set(129);
  EXPECT_EQ(V.count(), 4u);
  EXPECT_TRUE(V.test(63));
  EXPECT_TRUE(V.test(64));
  EXPECT_FALSE(V.test(65));
  V.reset(64);
  EXPECT_FALSE(V.test(64));
  EXPECT_EQ(V.count(), 3u);
  EXPECT_TRUE(V.any());
}

TEST(BitVectorTest, SetAllRespectsSize) {
  BitVector V(70);
  V.setAll();
  EXPECT_EQ(V.count(), 70u);
  V.resetAll();
  EXPECT_TRUE(V.none());
}

TEST(BitVectorTest, UnionIntersectDifference) {
  BitVector A(100), B(100);
  A.set(3);
  A.set(50);
  B.set(50);
  B.set(99);
  BitVector U = A;
  U |= B;
  EXPECT_EQ(U.count(), 3u);
  BitVector I = A;
  I &= B;
  EXPECT_EQ(I.count(), 1u);
  EXPECT_TRUE(I.test(50));
  BitVector D = A;
  D.resetBitsIn(B);
  EXPECT_EQ(D.count(), 1u);
  EXPECT_TRUE(D.test(3));
  EXPECT_TRUE(A.anyCommon(B));
  EXPECT_FALSE(D.anyCommon(B));
}

TEST(BitVectorTest, FindFirstAndNext) {
  BitVector V(200);
  EXPECT_EQ(V.findFirst(), -1);
  V.set(5);
  V.set(64);
  V.set(199);
  EXPECT_EQ(V.findFirst(), 5);
  EXPECT_EQ(V.findNext(5), 64);
  EXPECT_EQ(V.findNext(64), 199);
  EXPECT_EQ(V.findNext(199), -1);
  EXPECT_EQ(V.findNext(4), 5);
}

TEST(BitVectorTest, ResizeKeepsAndZeroExtends) {
  BitVector V(10);
  V.set(9);
  V.resize(100);
  EXPECT_TRUE(V.test(9));
  EXPECT_FALSE(V.test(50));
  V.set(99);
  V.resize(20);
  EXPECT_TRUE(V.test(9));
  EXPECT_EQ(V.count(), 1u);
}

TEST(BitVectorTest, EqualityIncludesSize) {
  BitVector A(64), B(64), C(65);
  EXPECT_TRUE(A == B);
  EXPECT_FALSE(A == C);
  A.set(1);
  EXPECT_TRUE(A != B);
  B.set(1);
  EXPECT_TRUE(A == B);
}
