//===- tests/test_oracle.cpp - Reference interpreter + execution oracle ----===//
///
/// Three layers are covered here: the reference interpreter itself
/// (including its trap-on-!safe-fault model and its agreement with the
/// timing simulator on whole programs and on the ABI clobber contract),
/// the diffFunctions entry point (it must catch a deliberately
/// miscompiled rename, naming the pass and a reproducing input), and the
/// ExecOracle pipeline harness (change detection, stage naming, and full
/// pipelines running divergence-free at OracleLevel::Full).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "audit/PassAudit.h"
#include "cfg/CfgEdit.h"
#include "frontend/Frontend.h"
#include "ir/Abi.h"
#include "oracle/ExecOracle.h"
#include "vliw/Pipeline.h"
#include "vliw/Rename.h"
#include "vliw/Unroll.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

using namespace vsc;

namespace {

/// Trip count depends on the argument so that, once unrolled, both the
/// odd-trip and even-trip exit edges are reachable — the input battery
/// must exercise every copy's exit.
const char *SumLoop = R"(
func main(1) {
entry:
  AI r32 = r3, 1
  MTCTR r32
  LI r34 = 0
  LI r35 = 1
loop:
  A r34 = r34, r35
  AI r35 = r35, 2
  BCT loop
exit:
  LR r3 = r34
  CALL print_int, 1
  LR r3 = r35
  CALL print_int, 1
  RET
}
)";

std::unique_ptr<Module> compileSeed(uint64_t Seed) {
  FrontendOptions Opts;
  Opts.AssumeSafeLoads = true;
  CompileResult R = compileMiniC(generateRandomMiniC(Seed), Opts);
  EXPECT_TRUE(R.ok()) << "seed " << Seed << ": " << R.Error;
  return std::move(R.M);
}

/// Runs unroll + straighten + rename on main, exactly as the pipeline's
/// unroll+rename stage does.
void unrollAndRename(Module &M) {
  Function &F = *M.findFunction("main");
  unrollInnermostLoops(F, 2);
  straighten(F);
  EXPECT_GE(renameInnermostLoops(F), 1u);
}

/// The deliberate miscompilation of the acceptance criterion: drop the
/// exit-edge bookkeeping copy renaming inserted for \p Dst (the "LR r=r"
/// the paper's listings show at the loop exit). \returns true if found.
bool dropBookkeepingCopy(Function &F, Reg Dst) {
  for (auto &BB : F.blocks())
    for (size_t I = 0; I != BB->instrs().size(); ++I) {
      const Instr &In = BB->instrs()[I];
      if (In.Op == Opcode::LR && In.Dst == Dst && In.Src1 != Dst) {
        BB->instrs().erase(BB->instrs().begin() + static_cast<long>(I));
        return true;
      }
    }
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// Reference interpreter
//===----------------------------------------------------------------------===//

TEST(Interp, RunsSimpleLoop) {
  auto M = parseOrDie(SumLoop);
  ASSERT_TRUE(M);
  InterpOptions IO;
  IO.Args = {7}; // 8 iterations
  InterpResult R = interpret(*M, IO);
  EXPECT_FALSE(R.Trapped) << R.TrapMsg;
  // sum of 1,3,..,15 = 64; r35 ends at 17.
  EXPECT_EQ(R.Output, "64\n17\n");
  EXPECT_EQ(R.ObsTrace.size(), 2u);
  EXPECT_GT(R.Coverage.size(), 2u);
}

TEST(Interp, SafeFaultingLoadReadsZero) {
  // A !safe load of an unmapped address is the paper's guaranteed
  // non-trapping speculative load: it reads 0 and counts a SpecFault.
  auto M = parseOrDie(R"(
func main(0) {
entry:
  LI r32 = 99999999
  L r3 = 0(r32) !safe
  RET
}
)");
  ASSERT_TRUE(M);
  InterpResult R = interpret(*M);
  EXPECT_FALSE(R.Trapped) << R.TrapMsg;
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(R.SpecFaults, 1u);
}

TEST(Interp, UnsafeFaultingLoadTraps) {
  auto M = parseOrDie(R"(
func main(0) {
entry:
  LI r32 = 99999999
  L r3 = 0(r32)
  RET
}
)");
  ASSERT_TRUE(M);
  InterpResult R = interpret(*M);
  EXPECT_TRUE(R.Trapped);
  EXPECT_EQ(R.SpecFaults, 0u);
}

TEST(Interp, PageZeroHonoursMachineFlag) {
  const char *Text = R"(
func main(0) {
entry:
  LI r32 = 16
  L r3 = 0(r32) !safe
  RET
}
)";
  auto M = parseOrDie(Text);
  ASSERT_TRUE(M);
  InterpResult Readable = interpret(*M);
  EXPECT_FALSE(Readable.Trapped);
  EXPECT_EQ(Readable.ExitCode, 0);
  EXPECT_EQ(Readable.SpecFaults, 0u); // a mapped page-zero read, no fault
  InterpOptions IO;
  IO.PageZeroReadable = false;
  InterpResult Unreadable = interpret(*M, IO);
  EXPECT_FALSE(Unreadable.Trapped);
  EXPECT_EQ(Unreadable.SpecFaults, 1u);
}

TEST(Interp, BudgetExceededIsNotATrap) {
  auto M = parseOrDie(R"(
func main(0) {
entry:
  B entry
}
)");
  ASSERT_TRUE(M);
  InterpOptions IO;
  IO.MaxSteps = 100;
  InterpResult R = interpret(*M, IO);
  EXPECT_TRUE(R.BudgetExceeded);
  EXPECT_FALSE(R.Trapped);
}

/// The cross-check pinning the shared ABI contract (ir/Abi.h): both
/// engines must observe the same POWER clobber set and the same
/// deterministic poison value after a call.
TEST(Interp, CallClobberContractMatchesSimulator) {
  const char *Text = R"(
func helper(0) {
entry:
  LI r3 = 1
  RET
}
func main(0) {
entry:
  LI r5 = 77
  LI r13 = 55
  LI r40 = 88
  CALL helper, 0
  LR r3 = r5
  CALL print_int, 1
  LR r3 = r13
  CALL print_int, 1
  LR r3 = r40
  CALL print_int, 1
  RET
}
)";
  auto M = parseOrDie(Text);
  ASSERT_TRUE(M);
  RunResult Sim = simulate(*M, rs6000());
  InterpResult Ref = interpret(*M);
  ASSERT_FALSE(Sim.Trapped) << Sim.TrapMsg;
  ASSERT_FALSE(Ref.Trapped) << Ref.TrapMsg;
  EXPECT_EQ(Sim.Output, Ref.Output);
  // r5 is in the clobber set: both engines must report the shared poison.
  std::string Expected = std::to_string(vsc::abi::ClobberPoison) + "\n55\n88\n";
  EXPECT_EQ(Sim.Output, Expected);
  EXPECT_TRUE(vsc::abi::isCallClobberedGpr(5));
  EXPECT_TRUE(vsc::abi::isCallPreservedGpr(13));
}

TEST(Interp, AgreesWithSimulatorOnFuzzSeeds) {
  for (uint64_t Seed = 1; Seed != 9; ++Seed) {
    for (OptLevel L : {OptLevel::None, OptLevel::Vliw}) {
      auto M = compileSeed(Seed);
      ASSERT_TRUE(M);
      optimize(*M, L);
      RunOptions SO;
      SO.Args = {6};
      SO.MaxInstrs = 20'000'000;
      RunResult Sim = simulate(*M, rs6000(), SO);
      InterpOptions IO;
      IO.Args = {6};
      IO.MaxSteps = 20'000'000;
      IO.MemBytes = SO.MemBytes;
      InterpResult Ref = interpret(*M, IO);
      ASSERT_FALSE(Sim.Trapped) << "seed " << Seed << ": " << Sim.TrapMsg;
      ASSERT_FALSE(Ref.Trapped) << "seed " << Seed << ": " << Ref.TrapMsg;
      EXPECT_EQ(Sim.Output, Ref.Output) << "seed " << Seed;
      EXPECT_EQ(Sim.ExitCode, Ref.ExitCode) << "seed " << Seed;
      EXPECT_EQ(Sim.MemDigest, Ref.MemDigest) << "seed " << Seed;
    }
  }
}

//===----------------------------------------------------------------------===//
// diffFunctions
//===----------------------------------------------------------------------===//

TEST(DiffFunctions, CorrectUnrollRenameIsClean) {
  auto M = parseOrDie(SumLoop);
  ASSERT_TRUE(M);
  auto Before = cloneFunction(*M->findFunction("main"));
  unrollAndRename(*M);
  ASSERT_EQ(verifyModule(*M), "") << printModule(*M);
  OracleOptions Opts;
  Opts.CompareStoreTrace = true;
  Opts.CompareCallTrace = true;
  OracleResult R = diffFunctions(*Before, *M->findFunction("main"), *M,
                                 "unroll+rename", Opts);
  EXPECT_TRUE(R.ok()) << R.Report;
}

/// Acceptance criterion: a deliberately-miscompiled rename (the exit-edge
/// LR bookkeeping copy dropped) must be caught, naming the pass and a
/// reproducing input.
TEST(DiffFunctions, CatchesDroppedBookkeepingCopy) {
  auto M = parseOrDie(SumLoop);
  ASSERT_TRUE(M);
  auto Before = cloneFunction(*M->findFunction("main"));
  unrollAndRename(*M);
  Function &F = *M->findFunction("main");
  // The loop's sum lives in r34 past the exit; dropping its exit copy
  // leaves the stale pre-rename register feeding print_int.
  ASSERT_TRUE(dropBookkeepingCopy(F, Reg::gpr(34))) << printFunction(F);
  ASSERT_EQ(verifyModule(*M), "") << printModule(*M);

  OracleResult R = diffFunctions(*Before, F, *M, "unroll+rename");
  ASSERT_FALSE(R.ok()) << "miscompilation not detected:\n" << printFunction(F);
  EXPECT_EQ(R.Divergences.front().Pass, "unroll+rename");
  EXPECT_EQ(R.Divergences.front().Fn, "main");
  EXPECT_NE(R.Report.find("unroll+rename"), std::string::npos);
  EXPECT_NE(R.Report.find("reproducing input"), std::string::npos);
  EXPECT_NE(R.Report.find("fingerprint mismatch"), std::string::npos);
  // The interleaved trace and both IR versions are part of the diagnosis.
  EXPECT_NE(R.Report.find("interleaved execution trace"), std::string::npos);
  EXPECT_NE(R.Report.find("before 'unroll+rename'"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// ExecOracle harness
//===----------------------------------------------------------------------===//

TEST(ExecOracle, CleanAndChangedCheckpoints) {
  auto M = parseOrDie(SumLoop);
  ASSERT_TRUE(M);
  ExecOracle Oracle(OracleLevel::Boundaries);
  Oracle.begin(*M);
  // Nothing changed: trivially clean.
  EXPECT_TRUE(Oracle.checkpoint(*M, "noop").ok());
  // A behaviour-preserving change: clean, and the snapshot advances.
  unrollAndRename(*M);
  EXPECT_TRUE(Oracle.checkpoint(*M, "unroll+rename").ok());
  // A behaviour-breaking change against the *advanced* snapshot.
  Function &F = *M->findFunction("main");
  ASSERT_TRUE(dropBookkeepingCopy(F, Reg::gpr(34)));
  OracleResult R = Oracle.checkpoint(*M, "mutation");
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Divergences.front().Pass, "mutation");
  EXPECT_EQ(R.Divergences.front().Fn, "main");
}

TEST(ExecOracle, LevelNamesAndPredicates) {
  EXPECT_STREQ(oracleLevelName(OracleLevel::Off), "off");
  EXPECT_STREQ(oracleLevelName(OracleLevel::Boundaries), "boundaries");
  EXPECT_STREQ(oracleLevelName(OracleLevel::Full), "full");
  EXPECT_FALSE(ExecOracle(OracleLevel::Off).enabled());
  EXPECT_TRUE(ExecOracle(OracleLevel::Boundaries).enabled());
  EXPECT_FALSE(ExecOracle(OracleLevel::Boundaries).full());
  EXPECT_TRUE(ExecOracle(OracleLevel::Full).full());
}

/// Acceptance criterion: seed workloads run the whole VLIW pipeline at
/// OracleLevel::Full with zero divergences (the pipeline aborts on any).
TEST(ExecOracle, FullPipelineOnSeedsIsDivergenceFree) {
  for (uint64_t Seed = 1; Seed != 7; ++Seed) {
    auto Base = compileSeed(Seed);
    ASSERT_TRUE(Base);
    optimize(*Base, OptLevel::None);
    RunOptions SO;
    SO.Args = {6};
    SO.MaxInstrs = 20'000'000;
    RunResult RB = simulate(*Base, rs6000(), SO);
    ASSERT_FALSE(RB.Trapped) << "seed " << Seed << ": " << RB.TrapMsg;

    auto M = compileSeed(Seed);
    ASSERT_TRUE(M);
    PipelineOptions Opts;
    Opts.Oracle = OracleLevel::Full;
    optimize(*M, OptLevel::Vliw, Opts);
    RunResult R = simulate(*M, rs6000(), SO);
    EXPECT_EQ(RB.fingerprint(), R.fingerprint()) << "seed " << Seed;
  }
}
