//===- tests/test_analysis.cpp - Liveness and memory disambiguation --------===//

#include "TestUtil.h"
#include "analysis/Liveness.h"
#include "analysis/MemAlias.h"

#include <gtest/gtest.h>

using namespace vsc;

namespace {

Instr memInstr(Opcode Op, Reg Base, int64_t Disp, const char *Sym,
               uint8_t Size = 4, bool Volatile = false) {
  Instr I;
  I.Op = Op;
  if (Op == Opcode::ST) {
    I.Src1 = Reg::gpr(40);
    I.Src2 = Base;
  } else {
    I.Dst = Reg::gpr(40);
    I.Src1 = Base;
  }
  I.Imm = Disp;
  I.Sym = Sym ? Sym : "";
  I.MemSize = Size;
  I.IsVolatile = Volatile;
  return I;
}

} // namespace

//===----------------------------------------------------------------------===//
// Memory disambiguation
//===----------------------------------------------------------------------===//

TEST(MemAlias, DistinctGlobalsNeverAlias) {
  Instr A = memInstr(Opcode::L, Reg::gpr(41), 0, "a");
  Instr B = memInstr(Opcode::ST, Reg::gpr(42), 0, "b");
  EXPECT_EQ(alias(A, B), AliasResult::NoAlias);
}

TEST(MemAlias, SameGlobalDisjointRanges) {
  Instr A = memInstr(Opcode::L, Reg::gpr(41), 0, "a");
  Instr B = memInstr(Opcode::ST, Reg::gpr(41), 4, "a");
  EXPECT_EQ(alias(A, B), AliasResult::NoAlias);
  Instr C = memInstr(Opcode::ST, Reg::gpr(41), 2, "a");
  EXPECT_EQ(alias(A, C), AliasResult::MayAlias); // [0,4) vs [2,6)
  Instr D = memInstr(Opcode::ST, Reg::gpr(41), 0, "a");
  EXPECT_EQ(alias(A, D), AliasResult::MustAlias);
}

TEST(MemAlias, StackSlotsByDisplacement) {
  Instr A = memInstr(Opcode::L, regs::sp(), 0, nullptr);
  Instr B = memInstr(Opcode::ST, regs::sp(), 8, nullptr);
  EXPECT_EQ(alias(A, B), AliasResult::NoAlias);
  Instr C = memInstr(Opcode::ST, regs::sp(), 0, nullptr);
  EXPECT_EQ(alias(A, C), AliasResult::MustAlias);
}

TEST(MemAlias, StackNeverAliasesGlobals) {
  Instr A = memInstr(Opcode::L, regs::sp(), 0, nullptr);
  Instr B = memInstr(Opcode::ST, Reg::gpr(41), 0, "a");
  EXPECT_EQ(alias(A, B), AliasResult::NoAlias);
}

TEST(MemAlias, UnknownPointersMayAlias) {
  Instr A = memInstr(Opcode::L, Reg::gpr(41), 0, nullptr);
  Instr B = memInstr(Opcode::ST, Reg::gpr(42), 0, nullptr);
  EXPECT_EQ(alias(A, B), AliasResult::MayAlias);
  // Unknown vs annotated global: conservative.
  Instr C = memInstr(Opcode::ST, Reg::gpr(43), 0, "a");
  EXPECT_EQ(alias(A, C), AliasResult::MayAlias);
}

TEST(MemAlias, SameUnknownBaseDisjointDisplacements) {
  Instr A = memInstr(Opcode::L, Reg::gpr(41), 0, nullptr);
  Instr B = memInstr(Opcode::ST, Reg::gpr(41), 8, nullptr);
  EXPECT_EQ(alias(A, B), AliasResult::NoAlias);
  Instr C = memInstr(Opcode::ST, Reg::gpr(41), 3, nullptr);
  EXPECT_EQ(alias(A, C), AliasResult::MayAlias);
}

TEST(MemAlias, VolatileDefeatsDisambiguation) {
  Instr A = memInstr(Opcode::L, Reg::gpr(41), 0, "a", 4, true);
  Instr B = memInstr(Opcode::ST, Reg::gpr(42), 0, "b");
  EXPECT_EQ(alias(A, B), AliasResult::MayAlias);
}

TEST(MemAlias, SpillTagStaysStackRegion) {
  // Prolog-tailoring spills carry "$csave" but are r1-based: they must
  // disambiguate like stack slots, not like a global named $csave.
  Instr A = memInstr(Opcode::ST, regs::sp(), 16, "$csave", 8);
  Instr B = memInstr(Opcode::L, regs::sp(), 24, "$csave", 8);
  EXPECT_EQ(alias(A, B), AliasResult::NoAlias);
  Instr C = memInstr(Opcode::L, Reg::gpr(41), 0, "a");
  EXPECT_EQ(alias(A, C), AliasResult::NoAlias);
}

TEST(MemAlias, SafeSpeculativeLoads) {
  Module M;
  M.addGlobal("a", 16);
  Instr InBounds = memInstr(Opcode::L, Reg::gpr(41), 12, "a");
  EXPECT_TRUE(isSafeSpeculativeLoad(InBounds, &M));
  Instr OutOfBounds = memInstr(Opcode::L, Reg::gpr(41), 16, "a");
  EXPECT_FALSE(isSafeSpeculativeLoad(OutOfBounds, &M));
  Instr Unknown = memInstr(Opcode::L, Reg::gpr(41), 0, nullptr);
  EXPECT_FALSE(isSafeSpeculativeLoad(Unknown, &M));
  Unknown.SpecSafe = true;
  EXPECT_TRUE(isSafeSpeculativeLoad(Unknown, &M));
  Instr StackLoad = memInstr(Opcode::L, regs::sp(), 8, nullptr);
  EXPECT_TRUE(isSafeSpeculativeLoad(StackLoad, &M));
  Instr Vol = memInstr(Opcode::L, Reg::gpr(41), 0, "a", 4, true);
  EXPECT_FALSE(isSafeSpeculativeLoad(Vol, &M));
}

//===----------------------------------------------------------------------===//
// Liveness
//===----------------------------------------------------------------------===//

TEST(Liveness, BranchySummaries) {
  auto M = parseOrDie(R"(
func main(1) {
entry:
  LI r40 = 1
  LI r41 = 2
  CI cr0 = r3, 0
  BT a, cr0.eq
b:
  LR r3 = r40
  CALL print_int, 1
  RET
a:
  LR r3 = r41
  CALL print_int, 1
  RET
}
)");
  Function &F = *M->findFunction("main");
  Cfg G(F);
  RegUniverse U(F);
  Liveness L(G, U);
  BasicBlock *A = F.findBlock("a");
  BasicBlock *B = F.findBlock("b");
  // r40 is live only into b, r41 only into a.
  EXPECT_TRUE(L.isLiveIn(B, Reg::gpr(40)));
  EXPECT_FALSE(L.isLiveIn(B, Reg::gpr(41)));
  EXPECT_TRUE(L.isLiveIn(A, Reg::gpr(41)));
  EXPECT_FALSE(L.isLiveIn(A, Reg::gpr(40)));
  // Both live out of the entry.
  EXPECT_TRUE(L.isLiveOut(F.entry(), Reg::gpr(40)));
  EXPECT_TRUE(L.isLiveOut(F.entry(), Reg::gpr(41)));
  // cr0 is consumed by the entry's own branch.
  EXPECT_FALSE(L.isLiveIn(A, Reg::cr(0)));
}

TEST(Liveness, LoopCarriedValues) {
  auto M = parseOrDie(R"(
func main(0) {
entry:
  LI r32 = 10
  MTCTR r32
  LI r40 = 0
loop:
  AI r40 = r40, 1
  BCT loop
exit:
  LR r3 = r40
  CALL print_int, 1
  RET
}
)");
  Function &F = *M->findFunction("main");
  Cfg G(F);
  RegUniverse U(F);
  Liveness L(G, U);
  BasicBlock *Loop = F.findBlock("loop");
  // The accumulator is live around the back edge and out of the loop.
  EXPECT_TRUE(L.isLiveIn(Loop, Reg::gpr(40)));
  EXPECT_TRUE(L.isLiveOut(Loop, Reg::gpr(40)));
  // CTR is loop state: live into the loop (BCT reads and writes it).
  EXPECT_TRUE(L.isLiveIn(Loop, Reg::ctr()));
}

TEST(Liveness, PerInstructionSets) {
  auto M = parseOrDie(R"(
func main(0) {
entry:
  LI r40 = 1
  LI r41 = 2
  A r42 = r40, r41
  LR r3 = r42
  CALL print_int, 1
  RET
}
)");
  Function &F = *M->findFunction("main");
  Cfg G(F);
  RegUniverse U(F);
  Liveness L(G, U);
  auto Live = L.liveAtEachInstr(F.entry());
  int R40 = U.indexOf(Reg::gpr(40));
  int R42 = U.indexOf(Reg::gpr(42));
  ASSERT_GE(R40, 0);
  ASSERT_GE(R42, 0);
  // Before the A: r40 live; after it (before LR): r40 dead, r42 live.
  EXPECT_TRUE(Live[2].test(static_cast<size_t>(R40)));
  EXPECT_FALSE(Live[3].test(static_cast<size_t>(R40)));
  EXPECT_TRUE(Live[3].test(static_cast<size_t>(R42)));
}

TEST(Liveness, CallsKeepCalleeSavedAlive) {
  // r20 is callee-saved: a call does not kill it, so a def before the
  // call stays live across it.
  auto M = parseOrDie(R"(
func f(0) {
entry:
  RET
}
func main(0) {
entry:
  LI r20 = 5
  LI r6 = 6
  CALL f, 0
  LR r3 = r20
  CALL print_int, 1
  RET
}
)");
  Function &F = *M->findFunction("main");
  Cfg G(F);
  RegUniverse U(F);
  Liveness L(G, U);
  auto Live = L.liveAtEachInstr(F.entry());
  int R20 = U.indexOf(Reg::gpr(20));
  int R6 = U.indexOf(Reg::gpr(6));
  ASSERT_GE(R20, 0);
  // After "LI r6" (index 2 = before CALL f): r20 live across the call.
  EXPECT_TRUE(Live[2].test(static_cast<size_t>(R20)));
  // r6 is caller-saved and unused after: dead before the call.
  ASSERT_GE(R6, 0);
  EXPECT_FALSE(Live[2].test(static_cast<size_t>(R6)));
}

TEST(RegUniverseTest, CollectsImplicitRegisters) {
  auto M = parseOrDie(R"(
func main(0) {
entry:
  LI r32 = 3
  MTCTR r32
loop:
  BCT loop
exit:
  RET
}
)");
  RegUniverse U(*M->findFunction("main"));
  EXPECT_GE(U.indexOf(Reg::ctr()), 0);
  EXPECT_GE(U.indexOf(Reg::gpr(32)), 0);
  EXPECT_EQ(U.indexOf(Reg::gpr(55)), -1);
}
