//===- tests/test_analysis.cpp - Liveness and memory disambiguation --------===//

#include "TestUtil.h"
#include "analysis/Liveness.h"
#include "analysis/MemAlias.h"
#include "analysis/ValueTrack.h"

#include <gtest/gtest.h>

using namespace vsc;

namespace {

Instr memInstr(Opcode Op, Reg Base, int64_t Disp, const char *Sym,
               uint8_t Size = 4, bool Volatile = false) {
  Instr I;
  I.Op = Op;
  if (Op == Opcode::ST) {
    I.Src1 = Reg::gpr(40);
    I.Src2 = Base;
  } else {
    I.Dst = Reg::gpr(40);
    I.Src1 = Base;
  }
  I.Imm = Disp;
  I.Sym = Sym ? Sym : "";
  I.MemSize = Size;
  I.IsVolatile = Volatile;
  return I;
}

} // namespace

//===----------------------------------------------------------------------===//
// Memory disambiguation
//===----------------------------------------------------------------------===//

TEST(MemAlias, DistinctGlobalsNeverAlias) {
  Instr A = memInstr(Opcode::L, Reg::gpr(41), 0, "a");
  Instr B = memInstr(Opcode::ST, Reg::gpr(42), 0, "b");
  // A program-wide fact: holds even with no locality guarantee.
  EXPECT_EQ(alias(A, B, AliasScope::CrossExecution), AliasResult::NoAlias);
}

TEST(MemAlias, SameGlobalDisjointRanges) {
  Instr A = memInstr(Opcode::L, Reg::gpr(41), 0, "a");
  Instr B = memInstr(Opcode::ST, Reg::gpr(41), 4, "a");
  EXPECT_EQ(alias(A, B, AliasScope::SameExecution), AliasResult::NoAlias);
  Instr C = memInstr(Opcode::ST, Reg::gpr(41), 2, "a");
  EXPECT_EQ(alias(A, C, AliasScope::SameExecution),
            AliasResult::MayAlias); // [0,4) vs [2,6)
  Instr D = memInstr(Opcode::ST, Reg::gpr(41), 0, "a");
  EXPECT_EQ(alias(A, D, AliasScope::SameExecution), AliasResult::MustAlias);
  // The annotated displacement is only the known part of the address
  // (computed-index accesses carry Disp 0): without the same-execution
  // guarantee on the shared base register, same-global displacement
  // reasoning is off.
  EXPECT_EQ(alias(A, B, AliasScope::CrossExecution), AliasResult::MayAlias);
}

TEST(MemAlias, StackSlotsByDisplacement) {
  // r1 is constant across an invocation, so frame-slot displacements
  // disambiguate in every scope.
  Instr A = memInstr(Opcode::L, regs::sp(), 0, nullptr);
  Instr B = memInstr(Opcode::ST, regs::sp(), 8, nullptr);
  EXPECT_EQ(alias(A, B, AliasScope::CrossExecution), AliasResult::NoAlias);
  Instr C = memInstr(Opcode::ST, regs::sp(), 0, nullptr);
  EXPECT_EQ(alias(A, C, AliasScope::CrossExecution), AliasResult::MustAlias);
}

TEST(MemAlias, StackNeverAliasesGlobals) {
  Instr A = memInstr(Opcode::L, regs::sp(), 0, nullptr);
  Instr B = memInstr(Opcode::ST, Reg::gpr(41), 0, "a");
  EXPECT_EQ(alias(A, B, AliasScope::CrossExecution), AliasResult::NoAlias);
}

TEST(MemAlias, UnknownPointersMayAlias) {
  Instr A = memInstr(Opcode::L, Reg::gpr(41), 0, nullptr);
  Instr B = memInstr(Opcode::ST, Reg::gpr(42), 0, nullptr);
  // Different base registers: conservative even in the strongest scope.
  EXPECT_EQ(alias(A, B, AliasScope::SameExecution), AliasResult::MayAlias);
  // Unknown vs annotated global: conservative.
  Instr C = memInstr(Opcode::ST, Reg::gpr(43), 0, "a");
  EXPECT_EQ(alias(A, C, AliasScope::SameExecution), AliasResult::MayAlias);
}

TEST(MemAlias, SameUnknownBaseScopeContract) {
  Instr A = memInstr(Opcode::L, Reg::gpr(41), 0, nullptr);
  Instr B = memInstr(Opcode::ST, Reg::gpr(41), 8, nullptr);
  // "8(r41) vs 0(r41)" disambiguates only when the caller guarantees both
  // accesses observe the same dynamic value in r41.
  EXPECT_EQ(alias(A, B, AliasScope::SameExecution), AliasResult::NoAlias);
  // The historical footgun: with r41 possibly redefined in between (other
  // block, other iteration), the same displacements prove nothing.
  EXPECT_EQ(alias(A, B, AliasScope::CrossExecution), AliasResult::MayAlias);
  Instr C = memInstr(Opcode::ST, Reg::gpr(41), 3, nullptr);
  EXPECT_EQ(alias(A, C, AliasScope::SameExecution), AliasResult::MayAlias);
  Instr D = memInstr(Opcode::ST, Reg::gpr(41), 0, nullptr);
  EXPECT_EQ(alias(A, D, AliasScope::SameExecution), AliasResult::MustAlias);
  EXPECT_EQ(alias(A, D, AliasScope::CrossExecution), AliasResult::MayAlias);
}

TEST(MemAlias, VolatileDefeatsDisambiguation) {
  Instr A = memInstr(Opcode::L, Reg::gpr(41), 0, "a", 4, true);
  Instr B = memInstr(Opcode::ST, Reg::gpr(42), 0, "b");
  EXPECT_EQ(alias(A, B, AliasScope::SameExecution), AliasResult::MayAlias);
}

TEST(MemAlias, SpillTagStaysStackRegion) {
  // Prolog-tailoring spills carry "$csave" but are r1-based: they must
  // disambiguate like stack slots, not like a global named $csave.
  Instr A = memInstr(Opcode::ST, regs::sp(), 16, "$csave", 8);
  Instr B = memInstr(Opcode::L, regs::sp(), 24, "$csave", 8);
  EXPECT_EQ(alias(A, B, AliasScope::CrossExecution), AliasResult::NoAlias);
  Instr C = memInstr(Opcode::L, Reg::gpr(41), 0, "a");
  EXPECT_EQ(alias(A, C, AliasScope::CrossExecution), AliasResult::NoAlias);
}

TEST(MemAlias, ClaimKindsMatchVerdictWindows) {
  AliasClaimKind Kind;
  Instr GA = memInstr(Opcode::L, Reg::gpr(41), 0, "a");
  Instr GB = memInstr(Opcode::ST, Reg::gpr(42), 0, "b");
  EXPECT_EQ(aliasClassified(GA, GB, AliasScope::CrossExecution, Kind),
            AliasResult::NoAlias);
  EXPECT_EQ(Kind, AliasClaimKind::Absolute);
  Instr SA = memInstr(Opcode::L, regs::sp(), 0, nullptr);
  Instr SB = memInstr(Opcode::ST, regs::sp(), 8, nullptr);
  EXPECT_EQ(aliasClassified(SA, SB, AliasScope::CrossExecution, Kind),
            AliasResult::NoAlias);
  EXPECT_EQ(Kind, AliasClaimKind::PerInvocation);
  Instr UA = memInstr(Opcode::L, Reg::gpr(41), 0, nullptr);
  Instr UB = memInstr(Opcode::ST, Reg::gpr(41), 8, nullptr);
  EXPECT_EQ(aliasClassified(UA, UB, AliasScope::SameExecution, Kind),
            AliasResult::NoAlias);
  EXPECT_EQ(Kind, AliasClaimKind::PerBlockExecution);
}

TEST(MemAlias, SafeSpeculativeLoads) {
  Module M;
  M.addGlobal("a", 16);
  Instr InBounds = memInstr(Opcode::L, Reg::gpr(41), 12, "a");
  EXPECT_TRUE(isSafeSpeculativeLoad(InBounds, &M));
  Instr OutOfBounds = memInstr(Opcode::L, Reg::gpr(41), 16, "a");
  EXPECT_FALSE(isSafeSpeculativeLoad(OutOfBounds, &M));
  Instr Unknown = memInstr(Opcode::L, Reg::gpr(41), 0, nullptr);
  EXPECT_FALSE(isSafeSpeculativeLoad(Unknown, &M));
  Unknown.SpecSafe = true;
  EXPECT_TRUE(isSafeSpeculativeLoad(Unknown, &M));
  Instr StackLoad = memInstr(Opcode::L, regs::sp(), 8, nullptr);
  EXPECT_TRUE(isSafeSpeculativeLoad(StackLoad, &M));
  Instr Vol = memInstr(Opcode::L, Reg::gpr(41), 0, "a", 4, true);
  EXPECT_FALSE(isSafeSpeculativeLoad(Vol, &M));
}

TEST(MemAlias, SpeculativeLoadBoundaries) {
  Module M;
  M.addGlobal("g", 16);
  // Exact fit against the end of the extent (Disp + Size == G->Size)...
  Instr ExactEnd = memInstr(Opcode::L, Reg::gpr(41), 8, "g", 8);
  EXPECT_TRUE(isSafeSpeculativeLoad(ExactEnd, &M));
  Instr Exact4 = memInstr(Opcode::L, Reg::gpr(41), 12, "g", 4);
  EXPECT_TRUE(isSafeSpeculativeLoad(Exact4, &M));
  // ...vs one byte past it.
  Instr PastEnd = memInstr(Opcode::L, Reg::gpr(41), 9, "g", 8);
  EXPECT_FALSE(isSafeSpeculativeLoad(PastEnd, &M));
  Instr Past4 = memInstr(Opcode::L, Reg::gpr(41), 13, "g", 4);
  EXPECT_FALSE(isSafeSpeculativeLoad(Past4, &M));
  // Negative displacements read outside the named extent / owned frame.
  Instr NegGlobal = memInstr(Opcode::L, Reg::gpr(41), -4, "g", 4);
  EXPECT_FALSE(isSafeSpeculativeLoad(NegGlobal, &M));
  Instr NegStack = memInstr(Opcode::L, regs::sp(), -8, nullptr, 8);
  EXPECT_FALSE(isSafeSpeculativeLoad(NegStack, &M));
  Instr ZeroStack = memInstr(Opcode::L, regs::sp(), 0, nullptr, 8);
  EXPECT_TRUE(isSafeSpeculativeLoad(ZeroStack, &M));
  // Volatile rejection beats every other rule, including "!safe".
  Instr VolSafe = memInstr(Opcode::L, regs::sp(), 0, nullptr, 8, true);
  VolSafe.SpecSafe = true;
  EXPECT_FALSE(isSafeSpeculativeLoad(VolSafe, &M));
}

//===----------------------------------------------------------------------===//
// Flow-sensitive tier (analysis/ValueTrack.h)
//===----------------------------------------------------------------------===//

namespace {

/// The \p Nth memory access of \p F in layout order (0-based).
const Instr &memAccessAt(const Function &F, unsigned N) {
  for (const auto &BB : F.blocks())
    for (const Instr &I : BB->instrs())
      if (I.isMemAccess() && N-- == 0)
        return I;
  ADD_FAILURE() << "not enough memory accesses";
  static Instr Dummy;
  return Dummy;
}

} // namespace

TEST(ValueTrack, TracksBasesThroughCopiesAndTocReloads) {
  auto M = parseOrDie(R"(
func main(0) {
entry:
  LTOC r32 = .a
  LR r33 = r32
  AI r34 = r33, 8
  L r40 = 0(r34)
  LTOC r35 = .b
  ST 0(r35) = r40
  L r41 = 0(r32)
  LR r3 = r41
  CALL print_int, 1
  RET
}
)");
  Function &F = *M->findFunction("main");
  AliasAnalysis AA(F);
  const Instr &LoadA8 = memAccessAt(F, 0); // 0(r34) = &a + 8
  const Instr &StoreB = memAccessAt(F, 1); // 0(r35) = &b + 0
  const Instr &LoadA0 = memAccessAt(F, 2); // 0(r32) = &a + 0
  ASSERT_NE(AA.location(LoadA8.Id), nullptr);
  EXPECT_EQ(AA.str(*AA.location(LoadA8.Id)), "&a+8");
  EXPECT_EQ(AA.str(*AA.location(StoreB.Id)), "&b+0");
  // Distinct globals through unannotated, copied bases — the syntactic
  // tier sees two unknown base registers here.
  EXPECT_EQ(AA.alias(LoadA8, StoreB, AliasScope::CrossExecution),
            AliasResult::NoAlias);
  // Disjoint offsets into one global, through different registers.
  EXPECT_EQ(AA.alias(LoadA8, LoadA0, AliasScope::CrossExecution),
            AliasResult::NoAlias);
  Instr SameSpot = LoadA8; // same id, same resolved location
  EXPECT_EQ(AA.alias(LoadA8, SameSpot, AliasScope::CrossExecution),
            AliasResult::MustAlias);
}

TEST(ValueTrack, PointsToAtBlockEntry) {
  auto M = parseOrDie(R"(
func main(0) {
entry:
  LTOC r32 = .a
  AI r33 = r32, 8
  B next
next:
  L r40 = 0(r33)
  LR r3 = r40
  CALL print_int, 1
  RET
}
)");
  Function &F = *M->findFunction("main");
  AliasAnalysis AA(F);
  const BasicBlock *Next = F.findBlock("next");
  EXPECT_EQ(AA.str(AA.pointsTo(Reg::gpr(33), Next)), "&a+8");
  // r1 is the frame base at entry everywhere.
  EXPECT_EQ(AA.str(AA.pointsTo(regs::sp(), Next)), "stack+0");
}

TEST(ValueTrack, LoopVaryingStackPointerDegradesToUnknownOffset) {
  auto M = parseOrDie(R"(
func main(0) {
entry:
  LI r32 = 4
  MTCTR r32
  LR r33 = r1
  LTOC r34 = .g
loop:
  L r40 = 0(r33)
  ST 0(r34) = r40
  AI r33 = r33, 8
  BCT loop
exit:
  RET
}
)");
  Function &F = *M->findFunction("main");
  AliasAnalysis AA(F);
  const Instr &StackLoad = memAccessAt(F, 0);
  const Instr &GlobalStore = memAccessAt(F, 1);
  // The walking pointer joins Stack+0 with Stack+8k: region survives, the
  // offset does not.
  ASSERT_NE(AA.location(StackLoad.Id), nullptr);
  EXPECT_EQ(AA.str(*AA.location(StackLoad.Id)), "stack+?");
  // Stack-vs-global stays absolute even with the unknown offset.
  EXPECT_EQ(AA.alias(StackLoad, GlobalStore, AliasScope::CrossExecution),
            AliasResult::NoAlias);
}

TEST(ValueTrack, ValueNumberScopesLimitUnknownBaseClaims) {
  auto M = parseOrDie(R"(
func main(1) {
entry:
  LI r32 = 2
  MTCTR r32
loop:
  L r34 = 0(r3)
  L r40 = 0(r34)
  LR r35 = r34
  ST 16(r35) = r40
  BCT loop
exit:
  RET
}
)");
  Function &F = *M->findFunction("main");
  AliasAnalysis AA(F);
  const Instr &PtrLoad = memAccessAt(F, 0);  // 0(r3)
  const Instr &Load = memAccessAt(F, 1);     // 0(r34)
  const Instr &Store = memAccessAt(F, 2);    // 16(r35), r35 copies r34
  // Same value number through the copy, disjoint offsets, different base
  // registers: only the flow-sensitive tier can prove this, and only
  // within one execution of the block (r34 is reloaded every iteration).
  EXPECT_EQ(AA.alias(Load, Store, AliasScope::SameExecution),
            AliasResult::NoAlias);
  EXPECT_EQ(AA.alias(Load, Store, AliasScope::CrossExecution),
            AliasResult::MayAlias);
  // The pointer cell itself vs the pointee: nothing relates r3 and r34.
  EXPECT_EQ(AA.alias(PtrLoad, Load, AliasScope::SameExecution),
            AliasResult::MayAlias);
}

TEST(ValueTrack, OnceDefinedBasesClaimPerInvocation) {
  auto M = parseOrDie(R"(
func main(1) {
entry:
  L r40 = 0(r3)
  L r41 = 8(r3)
  A r42 = r40, r41
  LR r3 = r42
  CALL print_int, 1
  RET
}
)");
  Function &F = *M->findFunction("main");
  AliasAnalysis AA(F);
  const Instr &A = memAccessAt(F, 0);
  const Instr &B = memAccessAt(F, 1);
  // The base is a live-in observed once per invocation: the disjointness
  // holds even across blocks.
  EXPECT_EQ(AA.alias(A, B, AliasScope::CrossExecution), AliasResult::NoAlias);
}

TEST(ValueTrack, FlowSensitiveSpeculativeLoadSafety) {
  auto M = parseOrDie(R"(
func main(0) {
entry:
  LTOC r32 = .g
  AI r33 = r32, 24
  L r40 = 0(r33)
  L r41 = 8(r33)
  LR r3 = r40
  CALL print_int, 1
  RET
}
)");
  Module &Mod = *M;
  Mod.addGlobal("g", 32);
  Function &F = *Mod.findFunction("main");
  AliasAnalysis AA(F);
  const Instr &InBounds = memAccessAt(F, 0);  // g+24, size 4: fits in 32
  const Instr &OutBounds = memAccessAt(F, 1); // g+32: one past
  // Syntactically both loads are unannotated unknown-base accesses.
  EXPECT_FALSE(isSafeSpeculativeLoad(InBounds, &Mod));
  EXPECT_TRUE(AA.safeSpeculativeLoad(InBounds, &Mod));
  EXPECT_FALSE(AA.safeSpeculativeLoad(OutBounds, &Mod));
}

//===----------------------------------------------------------------------===//
// Liveness
//===----------------------------------------------------------------------===//

TEST(Liveness, BranchySummaries) {
  auto M = parseOrDie(R"(
func main(1) {
entry:
  LI r40 = 1
  LI r41 = 2
  CI cr0 = r3, 0
  BT a, cr0.eq
b:
  LR r3 = r40
  CALL print_int, 1
  RET
a:
  LR r3 = r41
  CALL print_int, 1
  RET
}
)");
  Function &F = *M->findFunction("main");
  Cfg G(F);
  RegUniverse U(F);
  Liveness L(G, U);
  BasicBlock *A = F.findBlock("a");
  BasicBlock *B = F.findBlock("b");
  // r40 is live only into b, r41 only into a.
  EXPECT_TRUE(L.isLiveIn(B, Reg::gpr(40)));
  EXPECT_FALSE(L.isLiveIn(B, Reg::gpr(41)));
  EXPECT_TRUE(L.isLiveIn(A, Reg::gpr(41)));
  EXPECT_FALSE(L.isLiveIn(A, Reg::gpr(40)));
  // Both live out of the entry.
  EXPECT_TRUE(L.isLiveOut(F.entry(), Reg::gpr(40)));
  EXPECT_TRUE(L.isLiveOut(F.entry(), Reg::gpr(41)));
  // cr0 is consumed by the entry's own branch.
  EXPECT_FALSE(L.isLiveIn(A, Reg::cr(0)));
}

TEST(Liveness, LoopCarriedValues) {
  auto M = parseOrDie(R"(
func main(0) {
entry:
  LI r32 = 10
  MTCTR r32
  LI r40 = 0
loop:
  AI r40 = r40, 1
  BCT loop
exit:
  LR r3 = r40
  CALL print_int, 1
  RET
}
)");
  Function &F = *M->findFunction("main");
  Cfg G(F);
  RegUniverse U(F);
  Liveness L(G, U);
  BasicBlock *Loop = F.findBlock("loop");
  // The accumulator is live around the back edge and out of the loop.
  EXPECT_TRUE(L.isLiveIn(Loop, Reg::gpr(40)));
  EXPECT_TRUE(L.isLiveOut(Loop, Reg::gpr(40)));
  // CTR is loop state: live into the loop (BCT reads and writes it).
  EXPECT_TRUE(L.isLiveIn(Loop, Reg::ctr()));
}

TEST(Liveness, PerInstructionSets) {
  auto M = parseOrDie(R"(
func main(0) {
entry:
  LI r40 = 1
  LI r41 = 2
  A r42 = r40, r41
  LR r3 = r42
  CALL print_int, 1
  RET
}
)");
  Function &F = *M->findFunction("main");
  Cfg G(F);
  RegUniverse U(F);
  Liveness L(G, U);
  auto Live = L.liveAtEachInstr(F.entry());
  int R40 = U.indexOf(Reg::gpr(40));
  int R42 = U.indexOf(Reg::gpr(42));
  ASSERT_GE(R40, 0);
  ASSERT_GE(R42, 0);
  // Before the A: r40 live; after it (before LR): r40 dead, r42 live.
  EXPECT_TRUE(Live[2].test(static_cast<size_t>(R40)));
  EXPECT_FALSE(Live[3].test(static_cast<size_t>(R40)));
  EXPECT_TRUE(Live[3].test(static_cast<size_t>(R42)));
}

TEST(Liveness, CallsKeepCalleeSavedAlive) {
  // r20 is callee-saved: a call does not kill it, so a def before the
  // call stays live across it.
  auto M = parseOrDie(R"(
func f(0) {
entry:
  RET
}
func main(0) {
entry:
  LI r20 = 5
  LI r6 = 6
  CALL f, 0
  LR r3 = r20
  CALL print_int, 1
  RET
}
)");
  Function &F = *M->findFunction("main");
  Cfg G(F);
  RegUniverse U(F);
  Liveness L(G, U);
  auto Live = L.liveAtEachInstr(F.entry());
  int R20 = U.indexOf(Reg::gpr(20));
  int R6 = U.indexOf(Reg::gpr(6));
  ASSERT_GE(R20, 0);
  // After "LI r6" (index 2 = before CALL f): r20 live across the call.
  EXPECT_TRUE(Live[2].test(static_cast<size_t>(R20)));
  // r6 is caller-saved and unused after: dead before the call.
  ASSERT_GE(R6, 0);
  EXPECT_FALSE(Live[2].test(static_cast<size_t>(R6)));
}

TEST(RegUniverseTest, CollectsImplicitRegisters) {
  auto M = parseOrDie(R"(
func main(0) {
entry:
  LI r32 = 3
  MTCTR r32
loop:
  BCT loop
exit:
  RET
}
)");
  RegUniverse U(*M->findFunction("main"));
  EXPECT_GE(U.indexOf(Reg::ctr()), 0);
  EXPECT_GE(U.indexOf(Reg::gpr(32)), 0);
  EXPECT_EQ(U.indexOf(Reg::gpr(55)), -1);
}
