//===- tests/test_simulator.cpp - Functional simulator behaviour -----------===//

#include "ir/Parser.h"
#include "sim/Simulator.h"
#include "workloads/LiKernel.h"

#include <gtest/gtest.h>

using namespace vsc;

static RunResult runText(const std::string &Text,
                         RunOptions Opts = RunOptions()) {
  std::string Err;
  auto M = parseModule(Text, &Err);
  EXPECT_TRUE(M) << Err;
  if (!M)
    return RunResult{};
  return simulate(*M, rs6000(), Opts);
}

TEST(Simulator, ArithmeticAndPrint) {
  RunResult R = runText(R"(
func main(0) {
entry:
  LI r32 = 6
  LI r33 = 7
  MUL r3 = r32, r33
  CALL print_int, 1
  LI r32 = 100
  SI r32 = r32, 58
  LR r3 = r32
  CALL print_int, 1
  RET
}
)");
  EXPECT_FALSE(R.Trapped) << R.TrapMsg;
  EXPECT_EQ(R.Output, "42\n42\n");
}

TEST(Simulator, MemoryAndGlobals) {
  RunResult R = runText(R"(
global a : 16 = [5 0 0 0]
func main(0) {
entry:
  LTOC r32 = .a
  L r33 = 0(r32) !a
  AI r33 = r33, 10
  ST 4(r32) !a = r33
  L r3 = 4(r32) !a
  CALL print_int, 1
  RET
}
)");
  EXPECT_FALSE(R.Trapped) << R.TrapMsg;
  EXPECT_EQ(R.Output, "15\n");
}

TEST(Simulator, SignExtensionBySize) {
  RunResult R = runText(R"(
global a : 8 = [255 255 255 255 255 0 0 0]
func main(0) {
entry:
  LTOC r32 = .a
  L r3 = 0(r32):1 !a
  CALL print_int, 1
  L r3 = 0(r32):2 !a
  CALL print_int, 1
  L r3 = 0(r32):4 !a
  CALL print_int, 1
  L r3 = 0(r32):8 !a
  CALL print_int, 1
  RET
}
)");
  EXPECT_FALSE(R.Trapped) << R.TrapMsg;
  EXPECT_EQ(R.Output, "-1\n-1\n-1\n1099511627775\n");
}

TEST(Simulator, LoadWithUpdate) {
  RunResult R = runText(R"(
global a : 12 = [1 0 0 0 2 0 0 0 3 0 0 0]
func main(0) {
entry:
  LTOC r32 = .a
  SI r32 = r32, 4
  LU r3 = 4(r32)
  CALL print_int, 1
  LU r3 = 4(r32)
  CALL print_int, 1
  LU r3 = 4(r32)
  CALL print_int, 1
  RET
}
)");
  EXPECT_FALSE(R.Trapped) << R.TrapMsg;
  EXPECT_EQ(R.Output, "1\n2\n3\n");
}

TEST(Simulator, ConditionsAndBranches) {
  RunResult R = runText(R"(
func main(0) {
entry:
  LI r32 = 3
  LI r33 = 5
  C cr0 = r32, r33
  BT less, cr0.lt
  LI r3 = 0
  CALL print_int, 1
  RET
less:
  LI r3 = 1
  CALL print_int, 1
  CI cr1 = r32, 3
  BT eq3, cr1.eq
  RET
eq3:
  LI r3 = 2
  CALL print_int, 1
  RET
}
)");
  EXPECT_FALSE(R.Trapped) << R.TrapMsg;
  EXPECT_EQ(R.Output, "1\n2\n");
}

TEST(Simulator, BctLoop) {
  RunResult R = runText(R"(
func main(0) {
entry:
  LI r32 = 5
  MTCTR r32
  LI r33 = 0
loop:
  AI r33 = r33, 1
  BCT loop
exit:
  LR r3 = r33
  CALL print_int, 1
  RET
}
)");
  EXPECT_FALSE(R.Trapped) << R.TrapMsg;
  EXPECT_EQ(R.Output, "5\n");
}

TEST(Simulator, CallsPreserveVirtualRegisters) {
  // Caller's virtual r40 must survive a call to a callee that also uses
  // r40 (function-private virtual register files = post-allocation
  // semantics).
  RunResult R = runText(R"(
func main(0) {
entry:
  LI r40 = 11
  LI r3 = 0
  CALL clobber, 1
  LR r3 = r40
  CALL print_int, 1
  RET
}
func clobber(1) {
entry:
  LI r40 = 999
  RET
}
)");
  EXPECT_FALSE(R.Trapped) << R.TrapMsg;
  EXPECT_EQ(R.Output, "11\n");
}

TEST(Simulator, RecursionWorks) {
  // fib(10) = 55 with values saved on the stack across calls.
  RunResult R = runText(R"(
func fib(1) {
entry:
  CI cr0 = r3, 2
  BT base, cr0.lt
  SI r1 = r1, 16
  ST 0(r1) = r3
  SI r3 = r3, 1
  CALL fib, 1
  ST 4(r1) = r3
  L r3 = 0(r1)
  SI r3 = r3, 2
  CALL fib, 1
  L r32 = 4(r1)
  A r3 = r3, r32
  AI r1 = r1, 16
  RET
base:
  RET
}
func main(0) {
entry:
  LI r3 = 10
  CALL fib, 1
  CALL print_int, 1
  RET
}
)");
  EXPECT_FALSE(R.Trapped) << R.TrapMsg;
  EXPECT_EQ(R.Output, "55\n");
}

TEST(Simulator, PageZeroReadsZeroOnRs6000) {
  RunResult R = runText(R"(
func main(0) {
entry:
  LI r32 = 0
  L r3 = 8(r32)
  CALL print_int, 1
  RET
}
)");
  EXPECT_FALSE(R.Trapped) << R.TrapMsg;
  EXPECT_EQ(R.Output, "0\n");
}

TEST(Simulator, PageZeroTrapsWhenDisallowed) {
  std::string Err;
  auto M = parseModule(R"(
func main(0) {
entry:
  LI r32 = 0
  L r3 = 8(r32)
  RET
}
)",
                       &Err);
  ASSERT_TRUE(M) << Err;
  MachineModel Model = rs6000();
  Model.PageZeroReadable = false;
  RunResult R = simulate(*M, Model);
  EXPECT_TRUE(R.Trapped);
  EXPECT_NE(R.TrapMsg.find("page zero"), std::string::npos);
}

TEST(Simulator, DivideByZeroTraps) {
  RunResult R = runText(R"(
func main(0) {
entry:
  LI r32 = 1
  LI r33 = 0
  DIV r3 = r32, r33
  RET
}
)");
  EXPECT_TRUE(R.Trapped);
  EXPECT_NE(R.TrapMsg.find("divide by zero"), std::string::npos);
}

TEST(Simulator, UnmappedStoreTraps) {
  RunResult R = runText(R"(
func main(0) {
entry:
  LI r32 = 64
  LI r33 = 1
  ST 0(r32) = r33
  RET
}
)");
  EXPECT_TRUE(R.Trapped);
  EXPECT_NE(R.TrapMsg.find("store to unmapped"), std::string::npos);
}

TEST(Simulator, InstructionBudget) {
  RunOptions Opts;
  Opts.MaxInstrs = 1000;
  RunResult R = runText(R"(
func main(0) {
entry:
loop:
  B loop
}
)",
                        Opts);
  EXPECT_TRUE(R.Trapped);
  EXPECT_NE(R.TrapMsg.find("budget"), std::string::npos);
}

TEST(Simulator, ExitBuiltinAndArgs) {
  RunOptions Opts;
  Opts.Args = {7, 3};
  RunResult R = runText(R"(
func main(2) {
entry:
  A r3 = r3, r4
  CALL exit, 1
}
)",
                        Opts);
  EXPECT_FALSE(R.Trapped) << R.TrapMsg;
  EXPECT_EQ(R.ExitCode, 10);
}

TEST(Simulator, ReadIntBuiltin) {
  RunOptions Opts;
  Opts.Input = {5, 9};
  RunResult R = runText(R"(
func main(0) {
entry:
  CALL read_int, 0
  LR r32 = r3
  CALL read_int, 0
  A r3 = r3, r32
  CALL print_int, 1
  RET
}
)",
                        Opts);
  EXPECT_EQ(R.Output, "14\n");
}

TEST(Simulator, BlockCountsAreExact) {
  RunResult R = runText(R"(
func main(0) {
entry:
  LI r32 = 4
  MTCTR r32
loop:
  BCT loop
exit:
  RET
}
)");
  EXPECT_FALSE(R.Trapped) << R.TrapMsg;
  EXPECT_EQ(R.BlockCounts.at("main:entry"), 1u);
  EXPECT_EQ(R.BlockCounts.at("main:loop"), 4u);
  EXPECT_EQ(R.BlockCounts.at("main:exit"), 1u);
}

TEST(Simulator, FingerprintDetectsDifferences) {
  RunResult A = runText("func main(0) {\nentry:\n  LI r3 = 1\n  CALL print_int, 1\n  RET\n}\n");
  RunResult B = runText("func main(0) {\nentry:\n  LI r3 = 2\n  CALL print_int, 1\n  RET\n}\n");
  EXPECT_NE(A.fingerprint(), B.fingerprint());
}

TEST(Simulator, KeepMemoryExposesGlobals) {
  RunOptions Opts;
  Opts.KeepMemory = true;
  RunResult R = runText(R"(
global counter : 8
func main(0) {
entry:
  LTOC r32 = .counter
  LI r33 = 123
  ST 0(r32) !counter = r33
  RET
}
)",
                        Opts);
  ASSERT_FALSE(R.Trapped) << R.TrapMsg;
  ASSERT_FALSE(R.Memory.empty());
  EXPECT_EQ(readMemoryWord(R, R.GlobalBase.at("counter"), 4), 123);
}

TEST(Simulator, LiKernelFindsItem) {
  auto M = buildLiSearch(10);
  RunResult R = simulate(*M, rs6000());
  EXPECT_FALSE(R.Trapped) << R.TrapMsg;
  EXPECT_EQ(R.Output, "1\n");
  EXPECT_EQ(R.BlockCounts.at("xlygetvalue:loop"), 10u);
}
