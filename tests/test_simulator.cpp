//===- tests/test_simulator.cpp - Functional simulator behaviour -----------===//

#include "ir/IRBuilder.h"
#include "ir/Parser.h"
#include "sim/Simulator.h"
#include "workloads/LiKernel.h"

#include <gtest/gtest.h>

using namespace vsc;

static RunResult runText(const std::string &Text,
                         RunOptions Opts = RunOptions()) {
  std::string Err;
  auto M = parseModule(Text, &Err);
  EXPECT_TRUE(M) << Err;
  if (!M)
    return RunResult{};
  return simulate(*M, rs6000(), Opts);
}

TEST(Simulator, ArithmeticAndPrint) {
  RunResult R = runText(R"(
func main(0) {
entry:
  LI r32 = 6
  LI r33 = 7
  MUL r3 = r32, r33
  CALL print_int, 1
  LI r32 = 100
  SI r32 = r32, 58
  LR r3 = r32
  CALL print_int, 1
  RET
}
)");
  EXPECT_FALSE(R.Trapped) << R.TrapMsg;
  EXPECT_EQ(R.Output, "42\n42\n");
}

TEST(Simulator, MemoryAndGlobals) {
  RunResult R = runText(R"(
global a : 16 = [5 0 0 0]
func main(0) {
entry:
  LTOC r32 = .a
  L r33 = 0(r32) !a
  AI r33 = r33, 10
  ST 4(r32) !a = r33
  L r3 = 4(r32) !a
  CALL print_int, 1
  RET
}
)");
  EXPECT_FALSE(R.Trapped) << R.TrapMsg;
  EXPECT_EQ(R.Output, "15\n");
}

TEST(Simulator, SignExtensionBySize) {
  RunResult R = runText(R"(
global a : 8 = [255 255 255 255 255 0 0 0]
func main(0) {
entry:
  LTOC r32 = .a
  L r3 = 0(r32):1 !a
  CALL print_int, 1
  L r3 = 0(r32):2 !a
  CALL print_int, 1
  L r3 = 0(r32):4 !a
  CALL print_int, 1
  L r3 = 0(r32):8 !a
  CALL print_int, 1
  RET
}
)");
  EXPECT_FALSE(R.Trapped) << R.TrapMsg;
  EXPECT_EQ(R.Output, "-1\n-1\n-1\n1099511627775\n");
}

TEST(Simulator, LoadWithUpdate) {
  RunResult R = runText(R"(
global a : 12 = [1 0 0 0 2 0 0 0 3 0 0 0]
func main(0) {
entry:
  LTOC r32 = .a
  SI r32 = r32, 4
  LU r3 = 4(r32)
  CALL print_int, 1
  LU r3 = 4(r32)
  CALL print_int, 1
  LU r3 = 4(r32)
  CALL print_int, 1
  RET
}
)");
  EXPECT_FALSE(R.Trapped) << R.TrapMsg;
  EXPECT_EQ(R.Output, "1\n2\n3\n");
}

TEST(Simulator, ConditionsAndBranches) {
  RunResult R = runText(R"(
func main(0) {
entry:
  LI r32 = 3
  LI r33 = 5
  C cr0 = r32, r33
  BT less, cr0.lt
  LI r3 = 0
  CALL print_int, 1
  RET
less:
  LI r3 = 1
  CALL print_int, 1
  CI cr1 = r32, 3
  BT eq3, cr1.eq
  RET
eq3:
  LI r3 = 2
  CALL print_int, 1
  RET
}
)");
  EXPECT_FALSE(R.Trapped) << R.TrapMsg;
  EXPECT_EQ(R.Output, "1\n2\n");
}

TEST(Simulator, BctLoop) {
  RunResult R = runText(R"(
func main(0) {
entry:
  LI r32 = 5
  MTCTR r32
  LI r33 = 0
loop:
  AI r33 = r33, 1
  BCT loop
exit:
  LR r3 = r33
  CALL print_int, 1
  RET
}
)");
  EXPECT_FALSE(R.Trapped) << R.TrapMsg;
  EXPECT_EQ(R.Output, "5\n");
}

TEST(Simulator, CallsPreserveVirtualRegisters) {
  // Caller's virtual r40 must survive a call to a callee that also uses
  // r40 (function-private virtual register files = post-allocation
  // semantics).
  RunResult R = runText(R"(
func main(0) {
entry:
  LI r40 = 11
  LI r3 = 0
  CALL clobber, 1
  LR r3 = r40
  CALL print_int, 1
  RET
}
func clobber(1) {
entry:
  LI r40 = 999
  RET
}
)");
  EXPECT_FALSE(R.Trapped) << R.TrapMsg;
  EXPECT_EQ(R.Output, "11\n");
}

TEST(Simulator, RecursionWorks) {
  // fib(10) = 55 with values saved on the stack across calls.
  RunResult R = runText(R"(
func fib(1) {
entry:
  CI cr0 = r3, 2
  BT base, cr0.lt
  SI r1 = r1, 16
  ST 0(r1) = r3
  SI r3 = r3, 1
  CALL fib, 1
  ST 4(r1) = r3
  L r3 = 0(r1)
  SI r3 = r3, 2
  CALL fib, 1
  L r32 = 4(r1)
  A r3 = r3, r32
  AI r1 = r1, 16
  RET
base:
  RET
}
func main(0) {
entry:
  LI r3 = 10
  CALL fib, 1
  CALL print_int, 1
  RET
}
)");
  EXPECT_FALSE(R.Trapped) << R.TrapMsg;
  EXPECT_EQ(R.Output, "55\n");
}

TEST(Simulator, PageZeroReadsZeroOnRs6000) {
  RunResult R = runText(R"(
func main(0) {
entry:
  LI r32 = 0
  L r3 = 8(r32)
  CALL print_int, 1
  RET
}
)");
  EXPECT_FALSE(R.Trapped) << R.TrapMsg;
  EXPECT_EQ(R.Output, "0\n");
}

TEST(Simulator, PageZeroTrapsWhenDisallowed) {
  std::string Err;
  auto M = parseModule(R"(
func main(0) {
entry:
  LI r32 = 0
  L r3 = 8(r32)
  RET
}
)",
                       &Err);
  ASSERT_TRUE(M) << Err;
  MachineModel Model = rs6000();
  Model.PageZeroReadable = false;
  RunResult R = simulate(*M, Model);
  EXPECT_TRUE(R.Trapped);
  EXPECT_NE(R.TrapMsg.find("page zero"), std::string::npos);
}

TEST(Simulator, DivideByZeroTraps) {
  RunResult R = runText(R"(
func main(0) {
entry:
  LI r32 = 1
  LI r33 = 0
  DIV r3 = r32, r33
  RET
}
)");
  EXPECT_TRUE(R.Trapped);
  EXPECT_NE(R.TrapMsg.find("divide by zero"), std::string::npos);
}

TEST(Simulator, UnmappedStoreTraps) {
  RunResult R = runText(R"(
func main(0) {
entry:
  LI r32 = 64
  LI r33 = 1
  ST 0(r32) = r33
  RET
}
)");
  EXPECT_TRUE(R.Trapped);
  EXPECT_NE(R.TrapMsg.find("store to unmapped"), std::string::npos);
}

TEST(Simulator, InstructionBudget) {
  RunOptions Opts;
  Opts.MaxInstrs = 1000;
  RunResult R = runText(R"(
func main(0) {
entry:
loop:
  B loop
}
)",
                        Opts);
  EXPECT_TRUE(R.Trapped);
  EXPECT_NE(R.TrapMsg.find("budget"), std::string::npos);
}

TEST(Simulator, ExitBuiltinAndArgs) {
  RunOptions Opts;
  Opts.Args = {7, 3};
  RunResult R = runText(R"(
func main(2) {
entry:
  A r3 = r3, r4
  CALL exit, 1
}
)",
                        Opts);
  EXPECT_FALSE(R.Trapped) << R.TrapMsg;
  EXPECT_EQ(R.ExitCode, 10);
}

TEST(Simulator, ReadIntBuiltin) {
  RunOptions Opts;
  Opts.Input = {5, 9};
  RunResult R = runText(R"(
func main(0) {
entry:
  CALL read_int, 0
  LR r32 = r3
  CALL read_int, 0
  A r3 = r3, r32
  CALL print_int, 1
  RET
}
)",
                        Opts);
  EXPECT_EQ(R.Output, "14\n");
}

TEST(Simulator, BlockCountsAreExact) {
  RunResult R = runText(R"(
func main(0) {
entry:
  LI r32 = 4
  MTCTR r32
loop:
  BCT loop
exit:
  RET
}
)");
  EXPECT_FALSE(R.Trapped) << R.TrapMsg;
  EXPECT_EQ(R.BlockCounts.at("main:entry"), 1u);
  EXPECT_EQ(R.BlockCounts.at("main:loop"), 4u);
  EXPECT_EQ(R.BlockCounts.at("main:exit"), 1u);
}

TEST(Simulator, FingerprintDetectsDifferences) {
  RunResult A = runText("func main(0) {\nentry:\n  LI r3 = 1\n  CALL print_int, 1\n  RET\n}\n");
  RunResult B = runText("func main(0) {\nentry:\n  LI r3 = 2\n  CALL print_int, 1\n  RET\n}\n");
  EXPECT_NE(A.fingerprint(), B.fingerprint());
}

TEST(Simulator, KeepMemoryExposesGlobals) {
  RunOptions Opts;
  Opts.KeepMemory = true;
  RunResult R = runText(R"(
global counter : 8
func main(0) {
entry:
  LTOC r32 = .counter
  LI r33 = 123
  ST 0(r32) !counter = r33
  RET
}
)",
                        Opts);
  ASSERT_FALSE(R.Trapped) << R.TrapMsg;
  ASSERT_FALSE(R.Memory.empty());
  EXPECT_EQ(readMemoryWord(R, R.GlobalBase.at("counter"), 4), 123);
}

TEST(Simulator, LiKernelFindsItem) {
  auto M = buildLiSearch(10);
  RunResult R = simulate(*M, rs6000());
  EXPECT_FALSE(R.Trapped) << R.TrapMsg;
  EXPECT_EQ(R.Output, "1\n");
  EXPECT_EQ(R.BlockCounts.at("xlygetvalue:loop"), 10u);
}

//===----------------------------------------------------------------------===//
// Profiling-key collisions (PR 4 regression tests)
//
// Labels are arbitrary strings, so "func:label" concatenation used to be
// ambiguous: a ':' or "->" inside a name made two distinct blocks (or
// edges) share one counter key and silently merge their counts. Keys now
// escape metacharacters (profileKeyEscape) and predecode asserts name
// uniqueness up front.
//===----------------------------------------------------------------------===//

TEST(SimulatorProfileKeys, EscapingIsInjective) {
  // Ordinary names are untouched — the historical key spelling survives.
  EXPECT_EQ(blockCountKey("main", "entry"), "main:entry");
  EXPECT_EQ(edgeCountKey("main", "loop", "exit"), "main:loop->exit");
  // Metacharacters are escaped, so these formerly-colliding pairs differ.
  EXPECT_EQ(blockCountKey("f", "g:h"), "f:g\\:h");
  EXPECT_EQ(blockCountKey("f:g", "h"), "f\\:g:h");
  EXPECT_NE(blockCountKey("f", "g:h"), blockCountKey("f:g", "h"));
  EXPECT_NE(edgeCountKey("e", "a->b", "c"), edgeCountKey("e", "a", "b->c"));
  EXPECT_NE(profileKeyEscape("a\\:b"), profileKeyEscape("a\\\\:b"));
}

TEST(SimulatorProfileKeys, ColonInLabelNoLongerMergesBlockCounts) {
  // Function "f" with block "g:h" and function "f:g" with block "h" used
  // to share the key "f:g:h" — one merged counter for two distinct blocks.
  Module M;
  {
    Function *F = M.addFunction("f", 0);
    IRBuilder B(*F);
    B.startBlock("g:h");
    B.ret();
  }
  {
    Function *F = M.addFunction("f:g", 0);
    IRBuilder B(*F);
    B.startBlock("h");
    B.ret();
  }
  {
    Function *F = M.addFunction("main", 0);
    IRBuilder B(*F);
    B.startBlock("entry");
    B.call("f", 0);
    B.call("f", 0);
    B.call("f:g", 0);
    B.ret();
  }
  for (auto Sim : {simulate, simulateLegacy}) {
    RunResult R = Sim(M, rs6000(), RunOptions());
    ASSERT_FALSE(R.Trapped) << R.TrapMsg;
    EXPECT_EQ(R.BlockCounts.at(blockCountKey("f", "g:h")), 2u);
    EXPECT_EQ(R.BlockCounts.at(blockCountKey("f:g", "h")), 1u);
    EXPECT_EQ(R.BlockCounts.count("f:g:h"), 0u); // the old merged key
  }
}

TEST(SimulatorProfileKeys, ArrowInLabelNoLongerMergesEdgeCounts) {
  // Edges ("a->b" -> "c") and ("a" -> "b->c") used to share the key
  // "e:a->b->c". Control runs a->b, c, a, b->c in order, once each.
  Module M;
  {
    Function *F = M.addFunction("e", 0);
    IRBuilder B(*F);
    B.startBlock("a->b");
    B.b("c");
    B.startBlock("c");
    B.b("a");
    B.startBlock("a");
    B.b("b->c");
    B.startBlock("b->c");
    B.ret();
  }
  {
    Function *F = M.addFunction("main", 0);
    IRBuilder B(*F);
    B.startBlock("entry");
    B.call("e", 0);
    B.ret();
  }
  for (auto Sim : {simulate, simulateLegacy}) {
    RunResult R = Sim(M, rs6000(), RunOptions());
    ASSERT_FALSE(R.Trapped) << R.TrapMsg;
    EXPECT_EQ(R.EdgeCounts.at(edgeCountKey("e", "a->b", "c")), 1u);
    EXPECT_EQ(R.EdgeCounts.at(edgeCountKey("e", "a", "b->c")), 1u);
    EXPECT_EQ(R.EdgeCounts.count("e:a->b->c"), 0u); // the old merged key
  }
}

#if GTEST_HAS_DEATH_TEST
TEST(SimulatorProfileKeysDeathTest, PredecodeRejectsDuplicateLabels) {
  // Two blocks with one label would share a counter slot; predecode
  // refuses up front instead of silently merging.
  Module M;
  Function *F = M.addFunction("main", 0);
  IRBuilder B(*F);
  B.startBlock("dup");
  B.b("dup2");
  B.startBlock("dup2");
  B.ret();
  F->blocks()[1]->setLabel("dup");
  EXPECT_DEATH(simulate(M, rs6000(), RunOptions()),
               "duplicate block label");
}
#endif

//===----------------------------------------------------------------------===//
// Stack overflow into the data area (PR 4 regression test)
//
// The stack grows down from the top of memory; the global data area grows
// up from 4096. Before PR 4 a runaway stack silently clobbered globals
// (stores kept succeeding all the way down). Now any instruction that
// drops r1 below the end of the data area traps.
//===----------------------------------------------------------------------===//

static const char *RecursiveProgram = R"(
global buf : 65536 = [7 0 0 0]
func main(1) {
entry:
  CALL rec, 1
  LI r3 = 0
  RET
}
func rec(1) {
entry:
  SI r1 = r1, 4096
  ST 0(r1) = r3
  CI cr0 = r3, 0
  BT done, cr0.eq
  SI r3 = r3, 1
  CALL rec, 1
done:
  AI r1 = r1, 4096
  RET
}
)";

TEST(Simulator, StackOverflowIntoDataTraps) {
  std::string Err;
  auto M = parseModule(RecursiveProgram, &Err);
  ASSERT_TRUE(M) << Err;
  RunOptions Opts;
  Opts.Args = {1000}; // needs ~1000 frames; ~230 fit above the data area
  Opts.MemBytes = 1u << 20;
  for (auto Sim : {simulate, simulateLegacy}) {
    RunResult R = Sim(*M, rs6000(), Opts);
    EXPECT_TRUE(R.Trapped);
    EXPECT_EQ(R.TrapMsg, "stack overflow into data");
  }
}

TEST(Simulator, BoundedRecursionDoesNotTrap) {
  std::string Err;
  auto M = parseModule(RecursiveProgram, &Err);
  ASSERT_TRUE(M) << Err;
  RunOptions Opts;
  Opts.Args = {50}; // well within the ~230 frames that fit
  Opts.MemBytes = 1u << 20;
  for (auto Sim : {simulate, simulateLegacy}) {
    RunResult R = Sim(*M, rs6000(), Opts);
    EXPECT_FALSE(R.Trapped) << R.TrapMsg;
    EXPECT_EQ(R.ExitCode, 0);
  }
}
