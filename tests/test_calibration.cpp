//===- tests/test_calibration.cpp - Timing-model calibration ---------------===//
///
/// The paper's worked example prices the original xlygetvalue loop at 11
/// cycles per iteration on the RS/6000 (Section "Unrolling, Renaming,
/// Global Scheduling, Software Pipelining"). These tests pin our machine
/// model to that figure and check the individual hazard rules the paper
/// describes: load-use delay, compare→taken-branch delay, the stall when an
/// untaken conditional branch is chased by a taken unconditional branch,
/// and free branch-on-count.
///
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "sim/Simulator.h"
#include "workloads/LiKernel.h"

#include <gtest/gtest.h>

using namespace vsc;

namespace {

RunResult runText(const std::string &Text, const MachineModel &Model) {
  std::string Err;
  auto M = parseModule(Text, &Err);
  EXPECT_TRUE(M) << Err;
  return simulate(*M, Model);
}

/// Cycles attributable to one extra execution of a region: run the workload
/// at two sizes and divide the cycle delta by the iteration delta.
double cyclesPerIteration(unsigned N1, unsigned N2) {
  auto M1 = buildLiSearch(N1);
  auto M2 = buildLiSearch(N2);
  RunResult R1 = simulate(*M1, rs6000());
  RunResult R2 = simulate(*M2, rs6000());
  EXPECT_FALSE(R1.Trapped) << R1.TrapMsg;
  EXPECT_FALSE(R2.Trapped) << R2.TrapMsg;
  EXPECT_EQ(R1.Output, "1\n");
  EXPECT_EQ(R2.Output, "1\n");
  return static_cast<double>(R2.Cycles - R1.Cycles) / (N2 - N1);
}

} // namespace

TEST(Calibration, LiLoopCosts11CyclesPerIteration) {
  EXPECT_DOUBLE_EQ(cyclesPerIteration(64, 128), 11.0)
      << "the paper's original loop must cost 11 cycles/iteration";
}

TEST(Calibration, LoadUseDelayIsTwoCycles) {
  // Dependent chain of loads: each load waits LoadLatency on its address.
  const char *Chain = R"(
global p : 64
func main(0) {
entry:
  LTOC r32 = .p
  LI r33 = 1000
  MTCTR r33
loop:
  L r34 = 0(r32) !p
  L r35 = 0(r32) !p
  BCT loop
exit:
  RET
}
)";
  // Two independent loads/iteration: 2 cycles. Make the second depend on
  // the first and the iteration pays the load-use delay.
  const char *Dep = R"(
global p : 64
func main(0) {
entry:
  LTOC r32 = .p
  LI r33 = 1000
  MTCTR r33
loop:
  L r34 = 0(r32) !p
  L r35 = 0(r34)
  BCT loop
exit:
  RET
}
)";
  RunResult A = runText(Chain, rs6000());
  RunResult B = runText(Dep, rs6000());
  ASSERT_FALSE(A.Trapped) << A.TrapMsg;
  ASSERT_FALSE(B.Trapped) << B.TrapMsg;
  // Independent: 2 cycles/iter. Dependent: issue load, wait 2, issue: 3
  // cycles/iter (1 stall cycle).
  EXPECT_GT(B.Cycles, A.Cycles);
  EXPECT_NEAR(static_cast<double>(B.Cycles - A.Cycles) / 1000, 1.0, 0.01);
  EXPECT_GT(B.OperandStallCycles, 900u);
}

TEST(Calibration, CompareToTakenBranchPaysRedirect) {
  // A taken conditional branch immediately after its compare pays the
  // redirect; separating them with independent work hides it.
  const char *Tight = R"(
func main(0) {
entry:
  LI r32 = 1000
  LI r33 = 0
loop:
  AI r33 = r33, 1
  C cr0 = r33, r32
  BF loop, cr0.eq
exit:
  RET
}
)";
  const char *Padded = R"(
func main(0) {
entry:
  LI r32 = 1000
  LI r33 = 0
  LI r34 = 0
loop:
  AI r33 = r33, 1
  C cr0 = r33, r32
  AI r34 = r34, 1
  AI r34 = r34, 1
  AI r34 = r34, 1
  AI r34 = r34, 1
  BF loop, cr0.eq
exit:
  RET
}
)";
  RunResult T = runText(Tight, rs6000());
  RunResult P = runText(Padded, rs6000());
  ASSERT_FALSE(T.Trapped) << T.TrapMsg;
  ASSERT_FALSE(P.Trapped) << P.TrapMsg;
  // Tight: AI@t, C@t+1 (cr ready t+2), BF redirects at t+2+3: 5 cycles per
  // iteration, 3 of them stall. Padded: the four fillers cover the delay —
  // 6 FXU ops take 6 cycles with no redirect stall, so 4 extra
  // instructions cost just one extra cycle.
  double TightIter = static_cast<double>(T.Cycles) / 1000;
  double PaddedIter = static_cast<double>(P.Cycles) / 1000;
  EXPECT_NEAR(TightIter, 5.0, 0.1);
  EXPECT_NEAR(PaddedIter, 6.0, 0.1);
  EXPECT_GT(T.BranchStallCycles, 2900u) << "tight loop pays the redirect";
  EXPECT_LT(P.BranchStallCycles, 100u) << "padded loop hides it";
}

TEST(Calibration, UntakenBranchThenUncondBranchStalls) {
  // The RS/6000 stall the paper motivates basic block expansion with: an
  // untaken conditional branch followed immediately by a taken
  // unconditional branch.
  const char *BackToBack = R"(
func main(0) {
entry:
  LI r32 = 1000
  MTCTR r32
  LI r34 = 2000
loop:
  AI r33 = r33, 1
  C cr0 = r33, r34
  BT never, cr0.eq
  B join
join:
  BCT loop
exit:
  RET
never:
  RET
}
)";
  const char *Separated = R"(
func main(0) {
entry:
  LI r32 = 1000
  MTCTR r32
  LI r34 = 2000
loop:
  AI r33 = r33, 1
  C cr0 = r33, r34
  BT never, cr0.eq
  AI r35 = r35, 1
  AI r35 = r35, 1
  AI r35 = r35, 1
  AI r35 = r35, 1
  B join
join:
  BCT loop
exit:
  RET
never:
  RET
}
)";
  RunResult A = runText(BackToBack, rs6000());
  RunResult B = runText(Separated, rs6000());
  ASSERT_FALSE(A.Trapped) << A.TrapMsg;
  ASSERT_FALSE(B.Trapped) << B.TrapMsg;
  // Back-to-back: AI@t, C@t+1, BT@t+1, B pays the redirect (resolve t+2
  // plus 3): 5 cycles/iteration, 2 of them real work. Separated: the four
  // fillers make the unconditional branch free: 6 cycles/iteration for 6
  // ops. 4 extra instructions cost one cycle.
  EXPECT_NEAR(static_cast<double>(A.Cycles) / 1000, 5.0, 0.1);
  EXPECT_NEAR(static_cast<double>(B.Cycles) / 1000, 6.0, 0.1);
  EXPECT_GT(A.BranchStallCycles, 2900u);
  EXPECT_LT(B.BranchStallCycles, 100u);
}

TEST(Calibration, BranchOnCountIsFree) {
  const char *Bct = R"(
func main(0) {
entry:
  LI r32 = 1000
  MTCTR r32
loop:
  AI r33 = r33, 1
  AI r34 = r34, 1
  BCT loop
exit:
  RET
}
)";
  RunResult R = runText(Bct, rs6000());
  ASSERT_FALSE(R.Trapped) << R.TrapMsg;
  // 2 FXU ops per iteration, branch free: ~2 cycles/iter.
  EXPECT_NEAR(static_cast<double>(R.Cycles) / 1000, 2.0, 0.05);
}

TEST(Calibration, Power2DualFxuHalvesAluThroughput) {
  const char *Alu = R"(
func main(0) {
entry:
  LI r32 = 1000
  MTCTR r32
loop:
  AI r33 = r33, 1
  AI r34 = r34, 1
  AI r35 = r35, 1
  AI r36 = r36, 1
  BCT loop
exit:
  RET
}
)";
  RunResult P1 = runText(Alu, rs6000());
  RunResult P2 = runText(Alu, power2());
  ASSERT_FALSE(P1.Trapped) << P1.TrapMsg;
  ASSERT_FALSE(P2.Trapped) << P2.TrapMsg;
  EXPECT_NEAR(static_cast<double>(P1.Cycles) / P2.Cycles, 2.0, 0.1);
}

TEST(Calibration, PathlengthIsCounted) {
  auto M = buildLiSearch(100);
  RunResult R = simulate(*M, rs6000());
  // 7 loop instructions * 100 iterations plus a handful of setup
  // instructions.
  EXPECT_GE(R.DynInstrs, 700u);
  EXPECT_LE(R.DynInstrs, 730u);
}
