//===- tests/test_passmanager.cpp - Pass manager and analysis cache --------===//
///
/// Coverage for the pm/ layer: analysis caching and hit accounting, the
/// CFG-epoch self-invalidation, PreservedAnalyses dependency closure, the
/// recompute-and-compare checker catching a pass that lies about
/// preservation (and staying silent for honest ones), and equivalence of
/// the pass-manager pipeline with the legacy free-function entry points.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "opt/Classical.h"
#include "pm/PassManager.h"
#include "pm/Passes.h"
#include "vliw/Pipeline.h"

#include <gtest/gtest.h>

using namespace vsc;

namespace {

const char *LoopIR = R"(
func main(1) {
entry:
  AI r32 = r3, 1
  MTCTR r32
  LI r34 = 0
  LI r35 = 1
loop:
  A r34 = r34, r35
  AI r35 = r35, 2
  BCT loop
exit:
  LR r3 = r34
  CALL print_int, 1
  RET
}
)";

const char *StraightIR = R"(
func main(0) {
entry:
  LI r3 = 0
  CALL print_int, 1
  RET
}
)";

/// Reads a few analyses so the cache is warm; honestly preserves all.
class WarmupPass : public FunctionPass {
public:
  const char *name() const override { return "warmup"; }
  PreservedAnalyses run(Function &, Module &, FunctionAnalyses &FA) override {
    (void)FA.cfg();
    (void)FA.dominators();
    (void)FA.liveness();
    return PreservedAnalyses::all();
  }
};

/// Splices a copy instruction into the entry block behind the cache's
/// back (no epoch bump, no invalidation) and then CLAIMS it preserved
/// everything. The new instruction makes r41 live into the entry, so the
/// cached Liveness is provably stale — exactly what the checker exists to
/// catch. Also shifts the terminator index, staling cached CfgEdges.
class LyingPass : public FunctionPass {
public:
  const char *name() const override { return "liar"; }
  PreservedAnalyses run(Function &F, Module &, FunctionAnalyses &) override {
    Instr I;
    I.Op = Opcode::LR;
    I.Dst = Reg::gpr(40);
    I.Src1 = Reg::gpr(41);
    F.assignId(I);
    F.entry()->instrs().insert(F.entry()->instrs().begin(), I);
    return PreservedAnalyses::all();
  }
};

/// Same mutation as LyingPass, but honestly reports it preserved nothing.
class HonestMutatorPass : public FunctionPass {
public:
  const char *name() const override { return "honest-mutator"; }
  PreservedAnalyses run(Function &F, Module &, FunctionAnalyses &) override {
    Instr I;
    I.Op = Opcode::LR;
    I.Dst = Reg::gpr(40);
    I.Src1 = Reg::gpr(41);
    F.assignId(I);
    F.entry()->instrs().insert(F.entry()->instrs().begin(), I);
    return PreservedAnalyses::none();
  }
};

/// Rewrites an immediate in place: register liveness, the CFG and every
/// structural analysis are genuinely untouched, so claiming all() is the
/// truth and the checker must stay silent.
class ImmediateRewritePass : public FunctionPass {
public:
  const char *name() const override { return "imm-rewrite"; }
  PreservedAnalyses run(Function &F, Module &, FunctionAnalyses &) override {
    for (auto &BB : F.blocks())
      for (Instr &I : BB->instrs())
        if (I.Op == Opcode::LI)
          I.Imm += 0; // touch without changing semantics
    return PreservedAnalyses::all();
  }
};

const char *AliasIR = R"(
func main(0) {
entry:
  LTOC r32 = .g
  AI r33 = r32, 8
  L r40 = 0(r33)
  LR r3 = r40
  CALL print_int, 1
  RET
}
)";

/// Warms the flow-sensitive alias analysis (and its Cfg/Loops inputs).
class AliasWarmupPass : public FunctionPass {
public:
  const char *name() const override { return "alias-warmup"; }
  PreservedAnalyses run(Function &, Module &, FunctionAnalyses &FA) override {
    (void)FA.aliasAnalysis();
    return PreservedAnalyses::all();
  }
};

/// Rewrites the add-immediate feeding a load's base register in place (no
/// epoch bump, no invalidation) and claims everything preserved. The
/// cached AliasAnalysis still resolves the load to the old global offset,
/// so any consumer trusting the cache would disambiguate against an
/// address the code no longer computes.
class BaseRewritingLiarPass : public FunctionPass {
public:
  const char *name() const override { return "base-liar"; }
  PreservedAnalyses run(Function &F, Module &, FunctionAnalyses &) override {
    for (auto &BB : F.blocks())
      for (Instr &I : BB->instrs())
        if (I.Op == Opcode::AI)
          I.Imm += 8;
    return PreservedAnalyses::all();
  }
};

/// Grows the CFG through the proper Function mutators (which bump the
/// epoch) while still claiming all() — the epoch guard must make this
/// safe regardless of the optimistic claim.
class EpochBumpingPass : public FunctionPass {
public:
  const char *name() const override { return "epoch-bumper"; }
  PreservedAnalyses run(Function &F, Module &, FunctionAnalyses &) override {
    // Split the fallthrough: new block between entry and its successor.
    BasicBlock *BB = F.addBlock(F.freshLabel("dead"));
    Instr Ret;
    Ret.Op = Opcode::RET;
    F.assignId(Ret);
    BB->instrs().push_back(Ret);
    return PreservedAnalyses::all();
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Analysis cache
//===----------------------------------------------------------------------===//

TEST(AnalysisCache, SecondQueryHits) {
  auto M = parseOrDie(LoopIR);
  Function &F = *M->findFunction("main");
  FunctionAnalyses FA(F);
  EXPECT_FALSE(FA.hasCached(AnalysisKind::Cfg));
  (void)FA.cfg();
  EXPECT_TRUE(FA.hasCached(AnalysisKind::Cfg));
  (void)FA.cfg();
  (void)FA.cfg();
  FunctionAnalyses::Stats S = FA.stats();
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Hits, 2u);
}

TEST(AnalysisCache, DerivedAnalysesShareTheBase) {
  auto M = parseOrDie(LoopIR);
  Function &F = *M->findFunction("main");
  FunctionAnalyses FA(F);
  // loops() pulls cfg() and dominators() internally; querying them
  // afterwards must all be hits.
  (void)FA.loops();
  EXPECT_TRUE(FA.hasCached(AnalysisKind::Cfg));
  EXPECT_TRUE(FA.hasCached(AnalysisKind::Dominators));
  uint64_t MissesBefore = FA.stats().Misses;
  (void)FA.cfg();
  (void)FA.dominators();
  EXPECT_EQ(FA.stats().Misses, MissesBefore);
}

TEST(AnalysisCache, EpochEditDropsEverything) {
  auto M = parseOrDie(LoopIR);
  Function &F = *M->findFunction("main");
  FunctionAnalyses FA(F);
  (void)FA.loops();
  (void)FA.liveness();
  ASSERT_TRUE(FA.hasCached(AnalysisKind::Loops));
  ASSERT_TRUE(FA.hasCached(AnalysisKind::Liveness));

  F.noteCfgEdit(); // structural edit made behind the cache's back
  EXPECT_FALSE(FA.hasCached(AnalysisKind::Cfg));
  EXPECT_FALSE(FA.hasCached(AnalysisKind::Loops));
  EXPECT_FALSE(FA.hasCached(AnalysisKind::Liveness));
  // And the next query recomputes instead of serving the stale object.
  uint64_t MissesBefore = FA.stats().Misses;
  (void)FA.cfg();
  EXPECT_GT(FA.stats().Misses, MissesBefore);
}

TEST(AnalysisCache, StructurePreservesCfgButNotLiveness) {
  auto M = parseOrDie(LoopIR);
  Function &F = *M->findFunction("main");
  FunctionAnalyses FA(F);
  (void)FA.loops();
  (void)FA.biconnected();
  (void)FA.liveness();
  FA.invalidate(PreservedAnalyses::structure());
  EXPECT_TRUE(FA.hasCached(AnalysisKind::Cfg));
  EXPECT_TRUE(FA.hasCached(AnalysisKind::Dominators));
  EXPECT_TRUE(FA.hasCached(AnalysisKind::Loops));
  EXPECT_TRUE(FA.hasCached(AnalysisKind::Biconnected));
  EXPECT_FALSE(FA.hasCached(AnalysisKind::Liveness));
}

TEST(AnalysisCache, DroppingCfgDropsDependentsDespiteClaims) {
  auto M = parseOrDie(LoopIR);
  Function &F = *M->findFunction("main");
  FunctionAnalyses FA(F);
  (void)FA.loops();
  (void)FA.liveness();
  // A PA that abandons Cfg but claims to keep everything derived from it:
  // the closure must drop the dependents anyway, since they hold pointers
  // into the dropped graph.
  PreservedAnalyses PA = PreservedAnalyses::all();
  PA.abandon(AnalysisKind::Cfg);
  FA.invalidate(PA);
  EXPECT_FALSE(FA.hasCached(AnalysisKind::Cfg));
  EXPECT_FALSE(FA.hasCached(AnalysisKind::Dominators));
  EXPECT_FALSE(FA.hasCached(AnalysisKind::Loops));
  EXPECT_FALSE(FA.hasCached(AnalysisKind::Liveness));
}

TEST(AnalysisCache, NonePreservedDropsAll) {
  auto M = parseOrDie(LoopIR);
  Function &F = *M->findFunction("main");
  FunctionAnalyses FA(F);
  (void)FA.dominators();
  FA.invalidate(PreservedAnalyses::none());
  EXPECT_FALSE(FA.hasCached(AnalysisKind::Cfg));
  EXPECT_FALSE(FA.hasCached(AnalysisKind::Dominators));
}

//===----------------------------------------------------------------------===//
// The recompute-and-compare checker
//===----------------------------------------------------------------------===//

TEST(AnalysisChecker, CatchesLyingPass) {
  auto M = parseOrDie(StraightIR);
  Function &F = *M->findFunction("main");
  FunctionPassManager FPM;
  FPM.setCheckAnalyses(true);
  FPM.add(std::make_unique<WarmupPass>());
  FPM.add(std::make_unique<LyingPass>());
  FunctionAnalyses FA(F);
  std::string Err = FPM.run(F, *M, FA);
  ASSERT_NE(Err, "");
  EXPECT_NE(Err.find("liar"), std::string::npos) << Err;
  EXPECT_NE(Err.find("stale"), std::string::npos) << Err;
}

TEST(AnalysisChecker, CatchesBaseRegisterRewriter) {
  // VSC_CHECK_ANALYSES semantics: the recompute-and-compare checker must
  // extend to the alias analysis — a pass silently changing where a base
  // register points leaves the cached access locations stale.
  auto M = parseOrDie(AliasIR);
  Function &F = *M->findFunction("main");
  FunctionPassManager FPM;
  FPM.setCheckAnalyses(true);
  FPM.add(std::make_unique<AliasWarmupPass>());
  FPM.add(std::make_unique<BaseRewritingLiarPass>());
  FunctionAnalyses FA(F);
  std::string Err = FPM.run(F, *M, FA);
  ASSERT_NE(Err, "");
  EXPECT_NE(Err.find("base-liar"), std::string::npos) << Err;
  EXPECT_NE(Err.find("stale AliasAnalysis"), std::string::npos) << Err;
}

TEST(AnalysisChecker, HonestMutatorIsClean) {
  auto M = parseOrDie(StraightIR);
  Function &F = *M->findFunction("main");
  FunctionPassManager FPM;
  FPM.setCheckAnalyses(true);
  FPM.add(std::make_unique<WarmupPass>());
  FPM.add(std::make_unique<HonestMutatorPass>());
  FunctionAnalyses FA(F);
  EXPECT_EQ(FPM.run(F, *M, FA), "");
}

TEST(AnalysisChecker, TruthfulAllClaimIsClean) {
  auto M = parseOrDie(LoopIR);
  Function &F = *M->findFunction("main");
  FunctionPassManager FPM;
  FPM.setCheckAnalyses(true);
  FPM.add(std::make_unique<WarmupPass>());
  FPM.add(std::make_unique<ImmediateRewritePass>());
  FunctionAnalyses FA(F);
  EXPECT_EQ(FPM.run(F, *M, FA), "");
}

TEST(AnalysisChecker, EpochedEditIsSafeEvenWithOptimisticClaim) {
  auto M = parseOrDie(StraightIR);
  Function &F = *M->findFunction("main");
  FunctionPassManager FPM;
  FPM.setCheckAnalyses(true);
  FPM.add(std::make_unique<WarmupPass>());
  FPM.add(std::make_unique<EpochBumpingPass>());
  FunctionAnalyses FA(F);
  // addBlock bumps the CFG epoch, which empties the cache logically — the
  // stale claim is harmless and the checker must not fire.
  EXPECT_EQ(FPM.run(F, *M, FA), "");
}

TEST(AnalysisChecker, RealPipelinePassesAreHonest) {
  // The production VLIW chain under forced checking: every wrapper's
  // preservation claim is recomputed and compared after every pass on a
  // control-flow-heavy function.
  auto M = parseOrDie(LoopIR);
  Function &F = *M->findFunction("main");
  MachineModel Machine = rs6000(); // passes keep a reference
  FunctionPassManager FPM;
  FPM.setCheckAnalyses(true);
  FPM.add(std::make_unique<ClassicalPass>());
  FPM.add(std::make_unique<LoadStoreMotionPass>());
  FPM.add(std::make_unique<UnspeculationPass>());
  FPM.add(std::make_unique<UnrollRenamePass>(2));
  FPM.add(std::make_unique<PipeliningPass>(Machine));
  FPM.add(std::make_unique<GlobalSchedulePass>(Machine,
                                               GlobalScheduleOptions()));
  FPM.add(std::make_unique<CombiningPass>());
  FPM.add(std::make_unique<StraightenPass>());
  FPM.add(std::make_unique<BlockExpansionPass>(Machine));
  FunctionAnalyses FA(F);
  EXPECT_EQ(FPM.run(F, *M, FA), "");
  EXPECT_EQ(verifyFunction(F), "");
}

//===----------------------------------------------------------------------===//
// Pipeline equivalence
//===----------------------------------------------------------------------===//

TEST(PassManager, MatchesLegacyFreeFunctions) {
  auto A = parseOrDie(LoopIR);
  auto B = parseOrDie(LoopIR);
  // Pass-manager route.
  {
    Function &F = *A->findFunction("main");
    FunctionPassManager FPM;
    FPM.add(std::make_unique<ClassicalPass>());
    FunctionAnalyses FA(F);
    ASSERT_EQ(FPM.run(F, *A, FA), "");
  }
  // Legacy free-function route.
  runClassicalPipeline(*B->findFunction("main"));
  EXPECT_EQ(printModule(*A), printModule(*B));
}

TEST(PassManager, OptimizeIsByteIdenticalAcrossThreadCounts) {
  PipelineOptions One;
  One.Threads = 1;
  PipelineOptions Four;
  Four.Threads = 4;
  auto A = parseOrDie(LoopIR);
  auto B = parseOrDie(LoopIR);
  optimize(*A, OptLevel::Vliw, One);
  optimize(*B, OptLevel::Vliw, Four);
  EXPECT_EQ(printModule(*A), printModule(*B));
}

TEST(PassManager, StatsReportCacheHits) {
  auto M = parseOrDie(LoopIR);
  PipelineStats Stats;
  PipelineOptions Opts;
  Opts.Stats = &Stats;
  optimize(*M, OptLevel::Vliw, Opts);
  // The shared cache must be earning its keep: repeated CFG/dominator/
  // liveness queries inside one stage hit instead of recomputing.
  EXPECT_GT(Stats.AnalysisHits, 0u);
  EXPECT_GT(Stats.AnalysisMisses, 0u);
}

TEST(PassManager, BehaviourUnchangedUnderChecking) {
  // End-to-end: full pipeline with VSC_CHECK_ANALYSES semantics forced on
  // (via a checked FPM inside optimize there is no knob, so go through the
  // behaviour oracle instead: checked per-function chain == observable
  // behaviour of the normal pipeline).
  RunOptions Run;
  Run.Args = {6};
  transformPreservesBehaviour(
      LoopIR,
      [](Module &Mod) {
        Function &F = *Mod.findFunction("main");
        MachineModel Machine = rs6000(); // passes keep a reference
        FunctionPassManager FPM;
        FPM.setCheckAnalyses(true);
        FPM.add(std::make_unique<ClassicalPass>());
        FPM.add(std::make_unique<UnrollRenamePass>(3));
        FPM.add(std::make_unique<GlobalSchedulePass>(
            Machine, GlobalScheduleOptions()));
        FPM.add(std::make_unique<StraightenPass>());
        FunctionAnalyses FA(F);
        ASSERT_EQ(FPM.run(F, Mod, FA), "");
      },
      Run);
}
