//===- tests/test_prolog_tailoring.cpp - Prolog tailoring ------------------===//
///
/// Tests the paper's prolog tailoring (experiment E11), including the
/// worked example: a procedure where r29/r31 are killed only on one side
/// of a branch and r28/r30 on the other — the tailored prolog saves each
/// register only on the paths that kill it, and the unwind invariant
/// ("all paths to a point have the same saved set") holds throughout.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "vliw/PrologTailor.h"

#include <gtest/gtest.h>

using namespace vsc;

namespace {

/// The paper's example shape: "BT L1" splits the procedure; the fall side
/// kills r29/r31, the L1 side kills r28 (and conditionally r30).
const char *PaperProc = R"(
func sub(2) {
entry:
  CI cr0 = r3, 0
  BT L1, cr0.eq
fall:
  LI r29 = 100
  LI r31 = 200
  A r3 = r29, r31
  RET
L1:
  LI r28 = 7
  CI cr1 = r4, 0
  BT L2, cr1.eq
killr30:
  LI r30 = 50
  A r28 = r28, r30
L2:
  LR r3 = r28
  RET
}

func main(2) {
entry:
  LI r28 = 1
  LI r29 = 2
  LI r30 = 3
  LI r31 = 4
  CALL sub, 2
  CALL print_int, 1
  A r3 = r28, r29
  A r3 = r3, r30
  A r3 = r3, r31
  CALL print_int, 1
  RET
}
)";

size_t countSaves(const Function &F, const char *Label) {
  const BasicBlock *BB = F.findBlock(Label);
  if (!BB)
    return 0;
  size_t N = 0;
  for (const Instr &I : BB->instrs())
    if (I.Op == Opcode::ST && I.Sym == "$csave")
      ++N;
  return N;
}

size_t totalSaves(const Function &F) {
  size_t N = 0;
  for (const auto &BB : F.blocks())
    for (const Instr &I : BB->instrs())
      if (I.Op == Opcode::ST && I.Sym == "$csave")
        ++N;
  return N;
}

} // namespace

TEST(PrologTailor, CalleeMustPreserveCalleeSavedRegs) {
  // Without prologs, sub clobbers main's r28..r31 — the final sum is wrong.
  std::string Err;
  auto M = parseModule(PaperProc, &Err);
  ASSERT_TRUE(M) << Err;
  RunOptions Opts;
  Opts.Args = {1, 1};
  RunResult R = simulate(*M, rs6000(), Opts);
  EXPECT_NE(R.Output, "300\n10\n") << "clobbering should be observable";

  // With classic prologs the caller's registers survive.
  insertPrologEpilog(*M->findFunction("sub"), /*Tailored=*/false);
  ASSERT_EQ(verifyModule(*M), "");
  RunResult R2 = simulate(*M, rs6000(), Opts);
  EXPECT_FALSE(R2.Trapped) << R2.TrapMsg;
  EXPECT_EQ(R2.Output, "300\n10\n");
}

TEST(PrologTailor, UntailoredSavesEverythingAtEntry) {
  std::string Err;
  auto M = parseModule(PaperProc, &Err);
  ASSERT_TRUE(M) << Err;
  Function &Sub = *M->findFunction("sub");
  unsigned N = insertPrologEpilog(Sub, /*Tailored=*/false);
  EXPECT_EQ(N, 4u); // r28, r29, r30, r31
  EXPECT_EQ(countSaves(Sub, "entry"), 4u) << printFunction(Sub);
  EXPECT_EQ(verifyUnwindInvariant(Sub), "");
}

TEST(PrologTailor, TailoredSavesPerPath) {
  std::string Err;
  auto M = parseModule(PaperProc, &Err);
  ASSERT_TRUE(M) << Err;
  Function &Sub = *M->findFunction("sub");
  unsigned N = insertPrologEpilog(Sub, /*Tailored=*/true);
  EXPECT_EQ(N, 4u);
  // Nothing is saved at the entry any more; saves sit on the branch sides.
  EXPECT_EQ(countSaves(Sub, "entry"), 0u) << printFunction(Sub);
  EXPECT_EQ(countSaves(Sub, "fall"), 2u) << printFunction(Sub);   // r29,r31
  EXPECT_GE(countSaves(Sub, "L1"), 1u) << printFunction(Sub);     // r28
  EXPECT_EQ(verifyUnwindInvariant(Sub), "") << printFunction(Sub);
}

TEST(PrologTailor, TailoredBehaviourMatchesUntailored) {
  for (int64_t A : {0, 1}) {
    for (int64_t B : {0, 1}) {
      RunOptions Opts;
      Opts.Args = {A, B};
      auto Untailored = parseOrDie(PaperProc);
      for (auto &F : Untailored->functions())
        insertPrologEpilog(*F, false);
      auto Tailored = parseOrDie(PaperProc);
      for (auto &F : Tailored->functions())
        insertPrologEpilog(*F, true);
      ASSERT_EQ(verifyModule(*Tailored), "");
      RunResult RU = simulate(*Untailored, rs6000(), Opts);
      RunResult RT = simulate(*Tailored, rs6000(), Opts);
      EXPECT_FALSE(RU.Trapped) << RU.TrapMsg;
      EXPECT_EQ(RU.fingerprint(), RT.fingerprint());
    }
  }
}

TEST(PrologTailor, TailoredReducesDynamicSaves) {
  // On the L1 path only r28 (+r30) is saved: pathlength drops.
  RunOptions Opts;
  Opts.Args = {0, 0}; // takes L1, skips killr30
  auto Untailored = parseOrDie(PaperProc);
  for (auto &F : Untailored->functions())
    insertPrologEpilog(*F, false);
  auto Tailored = parseOrDie(PaperProc);
  for (auto &F : Tailored->functions())
    insertPrologEpilog(*F, true);
  RunResult RU = simulate(*Untailored, rs6000(), Opts);
  RunResult RT = simulate(*Tailored, rs6000(), Opts);
  EXPECT_EQ(RU.fingerprint(), RT.fingerprint());
  EXPECT_LT(RT.DynInstrs, RU.DynInstrs);
}

TEST(PrologTailor, NeverSavesInsideLoops) {
  const char *LoopKill = R"(
func f(1) {
entry:
  LI r32 = 10
  MTCTR r32
  LI r20 = 0
loop:
  AI r20 = r20, 1
  BCT loop
exit:
  LR r3 = r20
  RET
}
func main(0) {
entry:
  LI r20 = 77
  LI r3 = 0
  CALL f, 1
  CALL print_int, 1
  LR r3 = r20
  CALL print_int, 1
  RET
}
)";
  std::string Err;
  auto M = parseModule(LoopKill, &Err);
  ASSERT_TRUE(M) << Err;
  Function &F = *M->findFunction("f");
  insertPrologEpilog(F, /*Tailored=*/true);
  EXPECT_EQ(verifyUnwindInvariant(F), "") << printFunction(F);
  EXPECT_EQ(countSaves(F, "loop"), 0u) << printFunction(F);
  EXPECT_EQ(totalSaves(F), 1u);
  RunResult R = simulate(*M, rs6000());
  EXPECT_EQ(R.Output, "10\n77\n");
}

TEST(PrologTailor, GrowsExistingFrame) {
  // The function already adjusts r1; the pass must grow the frame and keep
  // local slots working.
  const char *Framed = R"(
func f(1) {
entry:
  SI r1 = r1, 16
  ST 0(r1) = r3
  LI r25 = 9
  L r32 = 0(r1)
  A r3 = r32, r25
  AI r1 = r1, 16
  RET
}
func main(0) {
entry:
  LI r25 = 1000
  LI r3 = 5
  CALL f, 1
  CALL print_int, 1
  LR r3 = r25
  CALL print_int, 1
  RET
}
)";
  std::string Err;
  auto M = parseModule(Framed, &Err);
  ASSERT_TRUE(M) << Err;
  insertPrologEpilog(*M->findFunction("f"), /*Tailored=*/true);
  ASSERT_EQ(verifyModule(*M), "");
  EXPECT_EQ(verifyUnwindInvariant(*M->findFunction("f")), "");
  RunResult R = simulate(*M, rs6000());
  EXPECT_FALSE(R.Trapped) << R.TrapMsg;
  EXPECT_EQ(R.Output, "14\n1000\n");
}

TEST(PrologTailor, RecursionSafe) {
  // Stack-based slots make saves reentrant: recursive kills still restore.
  const char *Rec = R"(
func fact(1) {
entry:
  CI cr0 = r3, 2
  BT base, cr0.lt
rec:
  LR r20 = r3
  SI r3 = r3, 1
  CALL fact, 1
  MUL r3 = r3, r20
  RET
base:
  LI r3 = 1
  RET
}
func main(0) {
entry:
  LI r20 = 123
  LI r3 = 6
  CALL fact, 1
  CALL print_int, 1
  LR r3 = r20
  CALL print_int, 1
  RET
}
)";
  std::string Err;
  auto M = parseModule(Rec, &Err);
  ASSERT_TRUE(M) << Err;
  insertPrologEpilog(*M->findFunction("fact"), /*Tailored=*/true);
  ASSERT_EQ(verifyModule(*M), "");
  RunResult R = simulate(*M, rs6000());
  EXPECT_FALSE(R.Trapped) << R.TrapMsg;
  EXPECT_EQ(R.Output, "720\n123\n");
}
