//===- tests/test_pdf_store.cpp - ProfileStore persistence -----------------===//
///
/// The pdf/ProfileStore.h contract: dense collection agrees with the
/// simulator's string-keyed ground truth, the Module and SimImage CFG
/// fingerprints agree by construction, serialized profiles round-trip
/// byte-exactly, merge is associative and commutative, stale profiles are
/// rejected by fingerprint, and corrupt or truncated images are reported
/// instead of parsed.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "frontend/Frontend.h"
#include "pdf/ProfileStore.h"
#include "vliw/Pipeline.h"
#include "workloads/RandomProgram.h"
#include "workloads/Registry.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace vsc;

namespace {

std::unique_ptr<Module> buildNamed(const char *Name) {
  if (const Workload *W = workloads::findKernel(Name))
    return buildWorkload(*W);
  ADD_FAILURE() << "no workload " << Name;
  return nullptr;
}

DenseProfile profileAt(SimEngine &Engine, int64_t Scale) {
  std::string Err;
  DenseProfile P =
      collectDenseProfile(Engine, {workloadInput(Scale)}, 1, &Err);
  EXPECT_EQ(Err, "");
  return P;
}

std::string tempPath(const char *Leaf) {
  return ::testing::TempDir() + Leaf;
}

} // namespace

TEST(PdfStore, FingerprintAgreesModuleVsImage) {
  for (const Workload &W : workloads::allKernels()) {
    auto M = buildWorkload(W);
    SimEngine Engine(*M, rs6000());
    EXPECT_EQ(cfgFingerprint(*M), cfgFingerprint(Engine.image()))
        << W.Name;
  }
}

// Run preparation (optimize at OptLevel::None = prolog insertion) must
// not move the fingerprint: the PDF driver profiles a prepared clone and
// attaches the result to the raw source module.
TEST(PdfStore, FingerprintInvariantUnderRunPreparation) {
  for (const Workload &W : workloads::allKernels()) {
    auto Raw = buildWorkload(W);
    auto Prepared = buildWorkload(W);
    optimize(*Prepared, OptLevel::None);
    EXPECT_EQ(cfgFingerprint(*Raw), cfgFingerprint(*Prepared)) << W.Name;
  }
}

TEST(PdfStore, FingerprintDistinguishesModules) {
  auto A = buildNamed("eqntott");
  auto B = buildNamed("compress");
  EXPECT_NE(cfgFingerprint(*A), cfgFingerprint(*B));
}

TEST(PdfStore, DenseCountsMatchSimulatorGroundTruth) {
  auto M = buildNamed("eqntott");
  SimEngine Engine(*M, rs6000());
  DenseProfile P = profileAt(Engine, 2);
  ProfileData D = P.toProfileData();

  RunResult R = simulate(*M, rs6000(), workloadInput(2));
  EXPECT_EQ(D.BlockCount, R.BlockCounts);
  EXPECT_EQ(D.EdgeCount, R.EdgeCounts);
}

// The irregular kernels exercise CFG shapes the spec six do not
// (dispatch ladders, probe loops with data-dependent trip counts,
// chain walks): the dense side-table profile must still agree exactly
// with the simulator's string-keyed counters on every one of them.
TEST(PdfStore, DenseCountsMatchGroundTruthOnIrregularKernels) {
  for (const Workload &W : irregularWorkloads()) {
    auto M = buildWorkload(W);
    SimEngine Engine(*M, rs6000());
    DenseProfile P = profileAt(Engine, W.TrainScale);
    ProfileData D = P.toProfileData();

    RunResult R = simulate(*M, rs6000(), workloadInput(W.TrainScale));
    EXPECT_EQ(D.BlockCount, R.BlockCounts) << W.Name;
    EXPECT_EQ(D.EdgeCount, R.EdgeCounts) << W.Name;
  }
}

// Persist a dispatch-kernel profile, reload it, merge in a second
// battery, and feed the result through the PDF pipeline: the reloaded
// profile must be usable (validateFor passes, layout runs) and the
// merged file byte-identical to merging in memory.
TEST(PdfStore, DispatchKernelProfileSurvivesSaveLoadMerge) {
  const Workload *W = workloads::findKernel("interp");
  ASSERT_TRUE(W);
  auto M = buildWorkload(*W);
  SimEngine Engine(*M, rs6000());
  DenseProfile A = profileAt(Engine, W->TrainScale);
  DenseProfile B = profileAt(Engine, W->TrainScale + 1);

  std::string Path = tempPath("vsc_pdf_store_interp.vscp");
  ASSERT_EQ(A.saveFile(Path), "");
  DenseProfile Loaded;
  ASSERT_EQ(DenseProfile::loadFile(Path, Loaded), "");
  std::remove(Path.c_str());
  EXPECT_EQ(A.serialize(), Loaded.serialize());

  ASSERT_EQ(Loaded.merge(B), "");
  DenseProfile InMemory = A;
  ASSERT_EQ(InMemory.merge(B), "");
  EXPECT_EQ(Loaded.serialize(), InMemory.serialize());

  ASSERT_EQ(Loaded.validateFor(*M), "");
  ProfileData P = Loaded.toProfileData();
  auto Base = buildWorkload(*W);
  optimize(*Base, OptLevel::None);
  RunOptions Ref = workloadInput(W->RefScale);
  RunResult RB = simulate(*Base, rs6000(), Ref);

  PipelineOptions Opts;
  Opts.Profile = &P;
  auto Guided = buildWorkload(*W);
  optimize(*Guided, OptLevel::Vliw, Opts);
  EXPECT_EQ(verifyModule(*Guided), "");
  RunResult RG = simulate(*Guided, rs6000(), Ref);
  EXPECT_EQ(RB.fingerprint(), RG.fingerprint());
}

TEST(PdfStore, SerializeRoundTripsByteExactly) {
  auto M = buildNamed("eqntott");
  SimEngine Engine(*M, rs6000());
  DenseProfile P = profileAt(Engine, 2);

  std::vector<uint8_t> Bytes = P.serialize();
  DenseProfile Q;
  ASSERT_EQ(DenseProfile::deserialize(Bytes.data(), Bytes.size(), Q), "");
  EXPECT_EQ(P.CfgHash, Q.CfgHash);
  EXPECT_EQ(P.BlockKeys, Q.BlockKeys);
  EXPECT_EQ(P.EdgeKeys, Q.EdgeKeys);
  EXPECT_EQ(P.BlockCounts, Q.BlockCounts);
  EXPECT_EQ(P.EdgeCounts, Q.EdgeCounts);
  EXPECT_EQ(Bytes, Q.serialize());
}

TEST(PdfStore, FileRoundTrip) {
  auto M = buildNamed("li");
  SimEngine Engine(*M, rs6000());
  DenseProfile P = profileAt(Engine, 2);

  std::string Path = tempPath("vsc_pdf_store_roundtrip.vscp");
  ASSERT_EQ(P.saveFile(Path), "");
  DenseProfile Q;
  ASSERT_EQ(DenseProfile::loadFile(Path, Q), "");
  EXPECT_EQ(P.serialize(), Q.serialize());
  std::remove(Path.c_str());

  DenseProfile Missing;
  EXPECT_NE(DenseProfile::loadFile(Path, Missing), "");
}

TEST(PdfStore, MergeIsCommutativeAndAssociative) {
  auto M = buildNamed("eqntott");
  SimEngine Engine(*M, rs6000());
  DenseProfile A = profileAt(Engine, 1);
  DenseProfile B = profileAt(Engine, 2);
  DenseProfile C = profileAt(Engine, 3);

  DenseProfile AB = A;
  ASSERT_EQ(AB.merge(B), "");
  DenseProfile BA = B;
  ASSERT_EQ(BA.merge(A), "");
  EXPECT_EQ(AB.serialize(), BA.serialize());

  DenseProfile AB_C = AB;
  ASSERT_EQ(AB_C.merge(C), "");
  DenseProfile BC = B;
  ASSERT_EQ(BC.merge(C), "");
  DenseProfile A_BC = A;
  ASSERT_EQ(A_BC.merge(BC), "");
  EXPECT_EQ(AB_C.serialize(), A_BC.serialize());
}

TEST(PdfStore, MergeRejectsMismatchedCfg) {
  auto A = buildNamed("eqntott");
  auto B = buildNamed("compress");
  SimEngine EA(*A, rs6000()), EB(*B, rs6000());
  DenseProfile PA = profileAt(EA, 1);
  DenseProfile PB = profileAt(EB, 1);
  DenseProfile Before = PA;
  EXPECT_NE(PA.merge(PB), "");
  // A failed merge must leave the counts untouched.
  EXPECT_EQ(PA.serialize(), Before.serialize());
}

TEST(PdfStore, ScaleReweightsCounts) {
  auto M = buildNamed("eqntott");
  SimEngine Engine(*M, rs6000());
  DenseProfile P = profileAt(Engine, 2);

  DenseProfile Doubled = P;
  Doubled.scale(2.0);
  DenseProfile Summed = P;
  ASSERT_EQ(Summed.merge(P), "");
  EXPECT_EQ(Doubled.serialize(), Summed.serialize());

  DenseProfile Zeroed = P;
  Zeroed.scale(0.0);
  for (uint64_t C : Zeroed.BlockCounts)
    EXPECT_EQ(C, 0u);
}

TEST(PdfStore, StaleProfileRejected) {
  auto A = buildNamed("eqntott");
  auto B = buildNamed("compress");
  SimEngine Engine(*A, rs6000());
  DenseProfile P = profileAt(Engine, 1);
  EXPECT_EQ(P.validateFor(*A), "");
  std::string Stale = P.validateFor(*B);
  EXPECT_NE(Stale, "");
  EXPECT_NE(Stale.find("stale"), std::string::npos) << Stale;
}

TEST(PdfStore, CorruptImagesAreDiagnosed) {
  auto M = buildNamed("eqntott");
  SimEngine Engine(*M, rs6000());
  DenseProfile P = profileAt(Engine, 1);
  std::vector<uint8_t> Bytes = P.serialize();
  DenseProfile Out;

  // Bad magic.
  std::vector<uint8_t> BadMagic = Bytes;
  BadMagic[0] ^= 0xff;
  EXPECT_NE(DenseProfile::deserialize(BadMagic.data(), BadMagic.size(), Out),
            "");

  // A flipped byte anywhere in the payload breaks the checksum.
  std::vector<uint8_t> Flipped = Bytes;
  Flipped[Bytes.size() / 2] ^= 0x40;
  EXPECT_NE(DenseProfile::deserialize(Flipped.data(), Flipped.size(), Out),
            "");

  // Truncation at every prefix length is an error, never a crash.
  for (size_t Len = 0; Len < Bytes.size(); Len += 7)
    EXPECT_NE(DenseProfile::deserialize(Bytes.data(), Len, Out), "")
        << "prefix " << Len;

  // Trailing garbage.
  std::vector<uint8_t> Long = Bytes;
  Long.push_back(0);
  EXPECT_NE(DenseProfile::deserialize(Long.data(), Long.size(), Out), "");

  // Unsupported future version.
  std::vector<uint8_t> Future = Bytes;
  Future[4] = 0x7f;
  EXPECT_NE(DenseProfile::deserialize(Future.data(), Future.size(), Out),
            "");
}

TEST(PdfStore, FuzzRoundTripOverRandomPrograms) {
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    CompileResult C = compileMiniC(generateRandomMiniC(Seed));
    ASSERT_TRUE(C.ok()) << C.Error;
    SimEngine Engine(*C.M, rs6000());
    EXPECT_EQ(cfgFingerprint(*C.M), cfgFingerprint(Engine.image()))
        << "seed " << Seed;

    std::string Err;
    DenseProfile P = collectDenseProfile(Engine, {RunOptions()}, 1, &Err);
    EXPECT_EQ(Err, "") << "seed " << Seed;
    std::vector<uint8_t> Bytes = P.serialize();
    DenseProfile Q;
    ASSERT_EQ(DenseProfile::deserialize(Bytes.data(), Bytes.size(), Q), "")
        << "seed " << Seed;
    EXPECT_EQ(Bytes, Q.serialize()) << "seed " << Seed;

    // Dense counts agree with the simulator's string-keyed ground truth.
    ProfileData D = P.toProfileData();
    RunResult R = simulate(*C.M, rs6000());
    EXPECT_EQ(D.BlockCount, R.BlockCounts) << "seed " << Seed;
    EXPECT_EQ(D.EdgeCount, R.EdgeCounts) << "seed " << Seed;
  }
}

// Counters are 64-bit end to end: a long profiling campaign (or a merged
// fleet of training runs) pushes block counts past 2^32, and any 32-bit
// truncation in accumulate / merge / the ProfileData adapter / the VSCP
// wire format would wrap them silently. Forced-overflow regression:
// synthetic dense counters above 2^32 must survive every hop exactly.
TEST(PdfStore, CountsAbove32BitsSurviveAccumulateMergeAndSerialize) {
  auto M = buildNamed("eqntott");
  SimEngine Engine(*M, rs6000());
  DenseProfile P = DenseProfile::forImage(Engine.image());
  ASSERT_FALSE(P.BlockKeys.empty());
  ASSERT_FALSE(P.EdgeKeys.empty());

  const uint64_t Big = (uint64_t(1) << 32) + 12345;   // > UINT32_MAX
  const uint64_t Huge = (uint64_t(1) << 40) + 67890;  // > 2^32 after any wrap

  DenseCounters C;
  C.BlockHits.assign(P.BlockCounts.size(), Big);
  C.EdgeHits.assign(P.EdgeCounts.size(), Big);
  P.accumulate(C);
  EXPECT_EQ(P.BlockCounts.front(), Big);
  EXPECT_EQ(P.EdgeCounts.front(), Big);

  DenseProfile Q = DenseProfile::forImage(Engine.image());
  DenseCounters D;
  D.BlockHits.assign(Q.BlockCounts.size(), Huge);
  D.EdgeHits.assign(Q.EdgeCounts.size(), Huge);
  Q.accumulate(D);

  ASSERT_EQ(P.merge(Q), "");
  const uint64_t Sum = Big + Huge; // needs 41 bits
  for (uint64_t N : P.BlockCounts)
    EXPECT_EQ(N, Sum);
  for (uint64_t N : P.EdgeCounts)
    EXPECT_EQ(N, Sum);

  // The adapter sums slots sharing one interned key; every materialized
  // count must be an exact multiple of Sum (and far beyond 32 bits).
  ProfileData PD = P.toProfileData();
  ASSERT_FALSE(PD.BlockCount.empty());
  for (const auto &[Key, N] : PD.BlockCount)
    EXPECT_EQ(N % Sum, 0u) << Key;
  for (const auto &[Key, N] : PD.EdgeCount)
    EXPECT_EQ(N % Sum, 0u) << Key;

  // VSCP wire format round trip, byte-exact.
  std::vector<uint8_t> Bytes = P.serialize();
  DenseProfile R;
  ASSERT_EQ(DenseProfile::deserialize(Bytes.data(), Bytes.size(), R), "");
  EXPECT_EQ(R.BlockCounts, P.BlockCounts);
  EXPECT_EQ(R.EdgeCounts, P.EdgeCounts);
  EXPECT_EQ(R.serialize(), Bytes);
}
