//===- tests/test_combining.cpp - Limited combining ------------------------===//

#include "TestUtil.h"
#include "opt/Classical.h"
#include "vliw/LimitedCombine.h"
#include "vliw/LoadStoreMotion.h"

#include <gtest/gtest.h>

using namespace vsc;

TEST(Combining, CollapsesCopyIntoUser) {
  // The paper's canonical pattern: LR r4=r5; A r6=r4,r7 -> A r6=r5,r7.
  auto M = transformPreservesBehaviour(R"(
func main(0) {
entry:
  LI r35 = 10
  LI r37 = 3
  LR r34 = r35
  A r36 = r34, r37
  LR r3 = r36
  CALL print_int, 1
  RET
}
)",
                                       [](Module &Mod) {
                                         limitedCombine(*Mod.findFunction("main"));
                                       });
  ASSERT_TRUE(M);
  // Combining + coalescing collapse every copy; the immediate folds into
  // the add: the function shrinks to LI/AI/CALL/RET.
  const Function *F = M->findFunction("main");
  EXPECT_EQ(countOps(*F, Opcode::LR), 0u) << printFunction(*F);
  EXPECT_LE(F->instrCount(), 4u) << printFunction(*F);
  RunResult R = simulate(*M, rs6000());
  EXPECT_EQ(R.Output, "13\n");
}

TEST(Combining, FoldsImmediateIntoUsers) {
  auto M = transformPreservesBehaviour(R"(
func main(0) {
entry:
  LI r35 = 4
  LI r34 = 7
  A r36 = r34, r35
  MUL r37 = r35, r36
  A r3 = r36, r37
  CALL print_int, 1
  RET
}
)",
                                       [](Module &Mod) {
                                         limitedCombine(*Mod.findFunction("main"));
                                       });
  ASSERT_TRUE(M);
  const Function *F = M->findFunction("main");
  // A + MUL fold to AI/MULI and the LI r35 disappears.
  EXPECT_EQ(countOps(*F, Opcode::AI), 1u) << printFunction(*F);
  EXPECT_EQ(countOps(*F, Opcode::MULI), 1u) << printFunction(*F);
  RunResult R = simulate(*M, rs6000());
  EXPECT_EQ(R.Output, "55\n");
}

TEST(Combining, WalksThroughUnconditionalBranches) {
  // The copy's last use sits two unconditional branches away.
  auto M = transformPreservesBehaviour(R"(
func main(0) {
entry:
  LI r35 = 21
  LR r34 = r35
  B mid
tail:
  A r3 = r36, r36
  CALL print_int, 1
  RET
mid:
  AI r36 = r34, 0
  B tail
}
)",
                                       [](Module &Mod) {
                                         limitedCombine(*Mod.findFunction("main"));
                                       });
  ASSERT_TRUE(M);
  const Function *F = M->findFunction("main");
  EXPECT_EQ(countOps(*F, Opcode::LR), 0u) << printFunction(*F);
  RunResult R = simulate(*M, rs6000());
  EXPECT_EQ(R.Output, "42\n");
}

TEST(Combining, DuplicatesAcrossJoinPoint) {
  // The paper's example shape: the walked path passes a label other code
  // joins at; combining must duplicate the sequence, keeping the original
  // for the joining path.
  const char *Text = R"(
func main(1) {
entry:
  CI cr0 = r3, 0
  BT other, cr0.eq
fast:
  LI r40 = 100
  LR r34 = r40
  B join
other:
  LI r34 = 7
  B join
join:
  AI r35 = r34, 1
  LR r3 = r35
  CALL print_int, 1
  RET
}
)";
  for (int64_t A : {0, 1}) {
    RunOptions Opts;
    Opts.Args = {A};
    auto M = transformPreservesBehaviour(
        Text,
        [](Module &Mod) { limitedCombine(*Mod.findFunction("main")); },
        Opts);
    ASSERT_TRUE(M);
  }
  // Structure: the fast path must no longer pass through the copy.
  std::string Err;
  auto M = parseModule(Text, &Err);
  ASSERT_TRUE(M) << Err;
  limitedCombine(*M->findFunction("main"));
  const Function *F = M->findFunction("main");
  const BasicBlock *Fast = F->findBlock("fast");
  ASSERT_TRUE(Fast);
  for (const Instr &I : Fast->instrs())
    EXPECT_NE(I.Op, Opcode::LR) << printFunction(*F);
}

TEST(Combining, StopsAtSourceRedefinition) {
  auto M = transformPreservesBehaviour(R"(
func main(0) {
entry:
  LI r35 = 5
  LR r34 = r35
  LI r35 = 99
  A r3 = r34, r35
  CALL print_int, 1
  RET
}
)",
                                       [](Module &Mod) {
                                         limitedCombine(*Mod.findFunction("main"));
                                       });
  ASSERT_TRUE(M);
  RunResult R = simulate(*M, rs6000());
  EXPECT_EQ(R.Output, "104\n");
}

TEST(Combining, RefusesWhenDestLiveAcrossConditional) {
  // r34 is used on both sides of a conditional branch; the walk cannot
  // follow both, and r34 is live past the stop point -> no transformation
  // beyond safety.
  const char *Text = R"(
func main(1) {
entry:
  LI r35 = 5
  LR r34 = r35
  LI r35 = 1
  CI cr0 = r3, 0
  BT a, cr0.eq
b:
  LR r3 = r34
  CALL print_int, 1
  RET
a:
  AI r3 = r34, 1
  CALL print_int, 1
  RET
}
)";
  for (int64_t A : {0, 1}) {
    RunOptions Opts;
    Opts.Args = {A};
    auto M = transformPreservesBehaviour(
        Text,
        [](Module &Mod) { limitedCombine(*Mod.findFunction("main")); },
        Opts);
    ASSERT_TRUE(M);
  }
}

TEST(Combining, ReducesPathlengthAfterLoadStoreMotion) {
  // The paper notes the two LRs left by load/store motion "will eventually
  // be eliminated by a later coalescing or limited combining stage, leaving
  // only an AI in the loop".
  const char *Text = R"(
global a : 16
func main(0) {
entry:
  LTOC r4 = .a
  LI r32 = 100
  MTCTR r32
loop:
  L r5 = 12(r4) !a
  AI r5 = r5, 1
  ST 12(r4) !a = r5
  BCT loop
exit:
  L r3 = 12(r4) !a
  CALL print_int, 1
  RET
}
)";
  auto Before = parseOrDie(Text);
  RunResult RB = simulate(*Before, rs6000());

  auto After = parseOrDie(Text);
  Function &F = *After->findFunction("main");
  speculativeLoadStoreMotion(F, *After);
  limitedCombine(F);
  deadCodeElim(F);
  ASSERT_EQ(verifyModule(*After), "");
  RunResult RA = simulate(*After, rs6000());
  EXPECT_EQ(RB.fingerprint(), RA.fingerprint());
  // The loop body should now be a lone AI on the cached register plus the
  // BCT: pathlength drops sharply (from 4 to 2 instructions/iteration).
  const BasicBlock *Loop = F.findBlock("loop");
  ASSERT_TRUE(Loop);
  EXPECT_EQ(Loop->size(), 2u) << printFunction(F);
  EXPECT_LT(RA.DynInstrs, RB.DynInstrs);
}
