//===- tests/test_biconnected.cpp - Biconnected components ------------------===//
///
/// The paper's prolog-tailoring stage 1: biconnected components of the
/// undirected CFG and the component tree rooted at the entry. "An
/// outermost if-then-else-endif statement constitutes a bi-connected
/// component"; sequential code forms chains joined at articulation
/// blocks.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "cfg/Biconnected.h"

#include <gtest/gtest.h>

using namespace vsc;

namespace {

bool sameBlocks(const BiconnectedComponents::Component &C,
                std::initializer_list<const char *> Labels,
                const Function &F) {
  if (C.Blocks.size() != Labels.size())
    return false;
  for (const char *L : Labels) {
    const BasicBlock *BB = F.findBlock(L);
    if (std::find(C.Blocks.begin(), C.Blocks.end(), BB) == C.Blocks.end())
      return false;
  }
  return true;
}

} // namespace

TEST(Biconnected, StraightLineIsAChainOfEdgeComponents) {
  auto M = parseOrDie(R"(
func main(0) {
entry:
  LI r32 = 1
  B b1
b1:
  AI r32 = r32, 1
  B b2
b2:
  LR r3 = r32
  RET
}
)");
  Function &F = *M->findFunction("main");
  Cfg G(F);
  BiconnectedComponents BC(G);
  // Two edges, two components; b1 is the articulation point.
  EXPECT_EQ(BC.components().size(), 2u);
  ASSERT_EQ(BC.articulationPoints().size(), 1u);
  EXPECT_EQ(BC.articulationPoints()[0], F.findBlock("b1"));
  // Tree: root contains the entry; the other component hangs off b1.
  int Root = BC.rootComponent();
  ASSERT_GE(Root, 0);
  const auto &RootComp = BC.components()[static_cast<size_t>(Root)];
  EXPECT_TRUE(sameBlocks(RootComp, {"entry", "b1"}, F));
  ASSERT_EQ(RootComp.Children.size(), 1u);
  const auto &Child =
      BC.components()[static_cast<size_t>(RootComp.Children[0])];
  EXPECT_EQ(Child.SharedWithParent, F.findBlock("b1"));
}

TEST(Biconnected, DiamondIsOneComponent) {
  auto M = parseOrDie(R"(
func main(1) {
entry:
  CI cr0 = r3, 0
  BT left, cr0.eq
right:
  LI r40 = 1
  B join
left:
  LI r40 = 2
join:
  LR r3 = r40
  B tail
tail:
  CALL print_int, 1
  RET
}
)");
  Function &F = *M->findFunction("main");
  Cfg G(F);
  BiconnectedComponents BC(G);
  // The diamond {entry,left,right,join} is one component; join->tail is a
  // bridge component.
  ASSERT_EQ(BC.components().size(), 2u);
  bool FoundDiamond = false;
  for (const auto &C : BC.components())
    if (sameBlocks(C, {"entry", "left", "right", "join"}, F))
      FoundDiamond = true;
  EXPECT_TRUE(FoundDiamond);
  ASSERT_EQ(BC.articulationPoints().size(), 1u);
  EXPECT_EQ(BC.articulationPoints()[0], F.findBlock("join"));
  EXPECT_TRUE(BC.isArticulationPoint(F.findBlock("join")));
  EXPECT_FALSE(BC.isArticulationPoint(F.findBlock("left")));
  // join belongs to both components.
  EXPECT_EQ(BC.componentsOf(F.findBlock("join")).size(), 2u);
  EXPECT_EQ(BC.componentsOf(F.findBlock("left")).size(), 1u);
}

TEST(Biconnected, LoopIsOneComponent) {
  auto M = parseOrDie(R"(
func main(0) {
entry:
  LI r32 = 5
  MTCTR r32
loop:
  AI r33 = r33, 1
  BCT loop
exit:
  LR r3 = r33
  RET
}
)");
  Function &F = *M->findFunction("main");
  Cfg G(F);
  BiconnectedComponents BC(G);
  // Self-loop at `loop`: edges entry->loop and loop->exit are bridges.
  EXPECT_EQ(BC.components().size(), 2u);
  EXPECT_TRUE(BC.isArticulationPoint(F.findBlock("loop")));
}

TEST(Biconnected, MultiBlockLoopComponent) {
  auto M = parseOrDie(R"(
func main(0) {
entry:
  LI r32 = 5
  LI r33 = 0
head:
  AI r33 = r33, 1
  C cr0 = r33, r32
  BF head, cr0.eq
exit:
  LR r3 = r33
  RET
}
)");
  // Single-block natural loop: head->head self edge is dropped; the chain
  // entry->head->exit yields two bridge components with head as the cut.
  Function &F = *M->findFunction("main");
  Cfg G(F);
  BiconnectedComponents BC(G);
  EXPECT_TRUE(BC.isArticulationPoint(F.findBlock("head")));

  // Now a two-block loop: the {head2,latch2} cycle is one component.
  auto M2 = parseOrDie(R"(
func main(0) {
entry:
  LI r32 = 5
  LI r33 = 0
head2:
  AI r33 = r33, 1
latch2:
  C cr0 = r33, r32
  BF head2, cr0.eq
exit:
  LR r3 = r33
  RET
}
)");
  Function &F2 = *M2->findFunction("main");
  Cfg G2(F2);
  BiconnectedComponents BC2(G2);
  bool FoundLoop = false;
  for (const auto &C : BC2.components())
    if (sameBlocks(C, {"head2", "latch2"}, F2))
      FoundLoop = true;
  EXPECT_TRUE(FoundLoop);
}

TEST(Biconnected, PaperProcedureShape) {
  // The prolog-tailoring example: entry branches to two independent arms
  // that both return; the second arm contains a nested diamond. Each arm
  // hangs off the entry in the tree.
  auto M = parseOrDie(R"(
func sub(2) {
entry:
  CI cr0 = r3, 0
  BT L1, cr0.eq
fall:
  LI r29 = 100
  RET
L1:
  LI r28 = 7
  CI cr1 = r4, 0
  BT L2, cr1.eq
killr30:
  LI r30 = 50
L2:
  LR r3 = r28
  RET
}
)");
  Function &F = *M->findFunction("sub");
  Cfg G(F);
  BiconnectedComponents BC(G);
  // entry is the articulation point joining the two arms; the L1 diamond
  // {L1,killr30,L2} is one component.
  EXPECT_TRUE(BC.isArticulationPoint(F.findBlock("entry")) ||
              BC.isArticulationPoint(F.findBlock("L1")));
  bool FoundDiamond = false;
  for (const auto &C : BC.components())
    if (sameBlocks(C, {"L1", "killr30", "L2"}, F))
      FoundDiamond = true;
  EXPECT_TRUE(FoundDiamond) << "the nested if forms its own component";
  // Tree is rooted at the entry's component.
  int Root = BC.rootComponent();
  ASSERT_GE(Root, 0);
  bool RootHasEntry = false;
  for (BasicBlock *BB : BC.components()[static_cast<size_t>(Root)].Blocks)
    if (BB == F.entry())
      RootHasEntry = true;
  EXPECT_TRUE(RootHasEntry);
}

TEST(Biconnected, SingleBlockFunction) {
  auto M = parseOrDie(R"(
func main(0) {
entry:
  LI r3 = 0
  RET
}
)");
  Function &F = *M->findFunction("main");
  Cfg G(F);
  BiconnectedComponents BC(G);
  ASSERT_EQ(BC.components().size(), 1u);
  EXPECT_EQ(BC.rootComponent(), 0);
  EXPECT_TRUE(BC.articulationPoints().empty());
}
