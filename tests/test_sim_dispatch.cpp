//===- tests/test_sim_dispatch.cpp - Dispatch-table completeness -----------===//
///
/// The fast path's execution loop is compiled twice from one body
/// (sim/FastSimBody.inc): a portable big switch and, when
/// VSC_COMPUTED_GOTO is on, a computed-goto threaded flavour whose label
/// table must cover every SimOp. This suite locks down three things:
///
///  * Completeness — a program containing every Opcode (statically
///    verified against NumOpcodes) runs through both flavours and matches
///    the legacy interpreter on the full observable surface. A table hole
///    or a mis-ordered label would diverge or trap here.
///  * Fusion — each superinstruction rule (compare+branch, LTOC+load,
///    load+ALU) actually fires on its canonical shape, and the fused image
///    still agrees with legacy in both flavours.
///  * Mode resolution — the DispatchMode::Default / VSC_DISPATCH /
///    availability-fallback rules of resolveDispatchMode.
///
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "sim/Predecode.h"
#include "sim/Simulator.h"

#include <cstdlib>
#include <set>

#include <gtest/gtest.h>

using namespace vsc;

namespace {

/// Full-surface equality, mirroring test_sim_fastpath.cpp.
void expectSame(const RunResult &Legacy, const RunResult &Fast,
                const std::string &What) {
  EXPECT_EQ(Legacy.fingerprint(), Fast.fingerprint()) << What;
  EXPECT_EQ(Legacy.Cycles, Fast.Cycles) << What;
  EXPECT_EQ(Legacy.OperandStallCycles, Fast.OperandStallCycles) << What;
  EXPECT_EQ(Legacy.BranchStallCycles, Fast.BranchStallCycles) << What;
  EXPECT_EQ(Legacy.DynInstrs, Fast.DynInstrs) << What;
  EXPECT_EQ(Legacy.BlockCounts, Fast.BlockCounts) << What;
  EXPECT_EQ(Legacy.EdgeCounts, Fast.EdgeCounts) << What;
}

void expectSameInBothModes(const Module &M, const std::string &What) {
  RunResult L = simulateLegacy(M, rs6000(), RunOptions());
  for (DispatchMode Mode : {DispatchMode::Switch, DispatchMode::Threaded}) {
    RunOptions Opts;
    Opts.Dispatch = Mode;
    expectSame(L, simulate(M, rs6000(), Opts),
               What + " [" + dispatchModeName(Mode) + "]");
  }
}

/// One program that executes every opcode in the instruction set. The
/// canonical fusion shapes (C/CI + BT/BF, LTOC + L, L + reg-imm ALU) are
/// present deliberately, so the fused records are on the executed path.
const char *AllOpcodesText = R"(
global g : 16 = [7 0 0 0 0 0 0 0 11 0 0 0 0 0 0 0]

func helper(1) {
entry:
  AI r3 = r3, 1
  RET
}

func main(0) {
entry:
  LI r32 = 6
  LR r33 = r32
  A r34 = r32, r33
  S r34 = r34, r32
  MUL r34 = r34, r33
  LI r35 = 3
  DIV r34 = r34, r35
  AND r36 = r34, r33
  OR r36 = r36, r32
  XOR r36 = r36, r33
  LI r37 = 2
  SL r38 = r36, r37
  SR r38 = r38, r37
  SRA r38 = r38, r37
  AI r38 = r38, 5
  SI r38 = r38, 1
  MULI r38 = r38, 3
  ANDI r38 = r38, 255
  ORI r38 = r38, 4
  XORI r38 = r38, 9
  SLI r38 = r38, 2
  SRI r38 = r38, 1
  SRAI r38 = r38, 1
  NEG r39 = r38
  LTOC r40 = .g
  L r41 = 0(r40)
  LU r42 = 8(r40)
  ST 0(r40) = r41
  LA r43 = r40, -8
  L r44 = 0(r43)
  AI r44 = r44, 3
  C cr0 = r32, r33
  BT skip1, cr0.eq
  LI r44 = 0
skip1:
  CI cr1 = r35, 4
  BF skip2, cr1.eq
  LI r44 = 1
skip2:
  LI r45 = 3
  MTCTR r45
loop:
  AI r41 = r41, 2
  BCT loop
  A r3 = r41, r44
  CALL helper, 1
  LR r46 = r3
  B join
join:
  LR r3 = r46
  CALL print_int, 1
  RET
}
)";

} // namespace

TEST(SimDispatch, EveryOpcodeRunsIdenticallyInBothModes) {
  std::string Err;
  auto M = parseModule(AllOpcodesText, &Err);
  ASSERT_TRUE(M) << Err;

  // The program really does contain the whole instruction set — if an
  // opcode is ever added, this count forces the test (and any dispatch
  // table) to grow with it.
  std::set<Opcode> Seen;
  for (const auto &F : M->functions())
    for (const auto &BB : F->blocks())
      for (const auto &I : BB->instrs())
        Seen.insert(I.Op);
  EXPECT_EQ(Seen.size(), static_cast<size_t>(Opcode::NumOpcodes));

  RunResult L = simulateLegacy(*M, rs6000(), RunOptions());
  ASSERT_FALSE(L.Trapped) << L.TrapMsg;
  expectSameInBothModes(*M, "all-opcodes program");
}

TEST(SimDispatch, FusionRulesFireAndStayBitIdentical) {
  std::string Err;
  auto M = parseModule(AllOpcodesText, &Err);
  ASSERT_TRUE(M) << Err;

  // The canonical shapes must actually fuse: two compare+branch pairs,
  // one LTOC+L, one L+ALU.
  SimImage Fused = predecode(*M, rs6000());
  EXPECT_GE(Fused.FusedPairs, 4u);

  // And fusion must be purely a speed knob: the unfused image exists too,
  // and the engine (which fuses) agrees with legacy either way.
  SimImage Plain = predecode(*M, rs6000(), /*Fuse=*/false);
  EXPECT_EQ(Plain.FusedPairs, 0u);
  expectSameInBothModes(*M, "fused program");
}

TEST(SimDispatch, ModeResolutionAndNames) {
  // Pin the environment for the duration of the test, then restore it —
  // CI legitimately runs whole test binaries under VSC_DISPATCH.
  const char *Saved = std::getenv("VSC_DISPATCH");
  std::string SavedVal = Saved ? Saved : "";
  ::unsetenv("VSC_DISPATCH");

  const bool Have = threadedDispatchAvailable();
#if defined(VSC_COMPUTED_GOTO) && (defined(__GNUC__) || defined(__clang__))
  EXPECT_TRUE(Have);
#else
  EXPECT_FALSE(Have);
#endif

  DispatchMode Best = Have ? DispatchMode::Threaded : DispatchMode::Switch;
  EXPECT_EQ(resolveDispatchMode(DispatchMode::Default), Best);
  EXPECT_EQ(resolveDispatchMode(DispatchMode::Switch), DispatchMode::Switch);
  // Threaded silently falls back when not compiled in.
  EXPECT_EQ(resolveDispatchMode(DispatchMode::Threaded), Best);

  EXPECT_STREQ(dispatchModeName(DispatchMode::Switch), "switch");
  EXPECT_STREQ(dispatchModeName(DispatchMode::Threaded),
               Have ? "threaded" : "switch");

  // VSC_DISPATCH steers Default only; explicit modes win.
  ::setenv("VSC_DISPATCH", "switch", 1);
  EXPECT_EQ(resolveDispatchMode(DispatchMode::Default), DispatchMode::Switch);
  EXPECT_EQ(resolveDispatchMode(DispatchMode::Threaded), Best);
  ::setenv("VSC_DISPATCH", "threaded", 1);
  EXPECT_EQ(resolveDispatchMode(DispatchMode::Default), Best);
  EXPECT_EQ(resolveDispatchMode(DispatchMode::Switch), DispatchMode::Switch);

  if (Saved)
    ::setenv("VSC_DISPATCH", SavedVal.c_str(), 1);
  else
    ::unsetenv("VSC_DISPATCH");
}
