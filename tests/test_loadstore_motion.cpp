//===- tests/test_loadstore_motion.cpp - Speculative load/store motion -----===//
///
/// Tests for the paper's first pathlength technique, including its worked
/// example: a conditionally-executed load/increment/store of a TOC-anchored
/// global inside a loop becomes a register-cached copy with stores pushed
/// to the loop exits.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "opt/Classical.h"
#include "vliw/LoadStoreMotion.h"

#include <gtest/gtest.h>

using namespace vsc;

namespace {

/// The paper's example: the load/store of a(r4,12) happens only when the
/// conditional inside the loop is not taken.
const char *PaperExample = R"(
global a : 16
func main(0) {
entry:
  LTOC r4 = .a
  LI r32 = 100
  MTCTR r32
  LI r33 = 0
CL.0:
  AI r33 = r33, 1
  ANDI r34 = r33, 3
  CI cr0 = r34, 0
  BT CL.1, cr0.eq
body:
  L r3 = 12(r4) !a
  AI r3 = r3, 1
  ST 12(r4) !a = r3
CL.1:
  BCT CL.0
exit:
  L r3 = 12(r4) !a
  CALL print_int, 1
  RET
}
)";

bool loopTouchesMemory(const Function &F,
                       std::initializer_list<const char *> Labels) {
  for (const char *L : Labels) {
    const BasicBlock *BB = F.findBlock(L);
    if (!BB)
      continue;
    for (const Instr &I : BB->instrs())
      if (I.isMemAccess())
        return true;
  }
  return false;
}

} // namespace

TEST(LoadStoreMotion, PaperExampleCachesTheGlobal) {
  auto M = transformPreservesBehaviour(PaperExample, [](Module &Mod) {
    speculativeLoadStoreMotion(Mod);
  });
  ASSERT_TRUE(M);
  const Function *F = M->findFunction("main");
  EXPECT_FALSE(loopTouchesMemory(*F, {"CL.0", "body", "CL.1"}))
      << printFunction(*F);
}

TEST(LoadStoreMotion, ExitStoreWritesFinalValue) {
  // Behaviour preservation (checked by the oracle) plus: the printed value
  // is the number of loop iterations where the store executed.
  auto M = transformPreservesBehaviour(PaperExample, [](Module &Mod) {
    speculativeLoadStoreMotion(Mod);
  });
  ASSERT_TRUE(M);
  RunResult R = simulate(*M, rs6000());
  EXPECT_EQ(R.Output, "75\n"); // body skipped every 4th of 100 iterations
}

TEST(LoadStoreMotion, CleanupShrinksLoopBody) {
  // After motion + classical cleanup the paper expects a lone AI on the
  // register-cached copy inside the loop.
  auto M = transformPreservesBehaviour(PaperExample, [](Module &Mod) {
    speculativeLoadStoreMotion(Mod);
    runClassicalPipeline(Mod);
  });
  ASSERT_TRUE(M);
  RunResult R = simulate(*M, rs6000());
  EXPECT_EQ(R.Output, "75\n");
}

TEST(LoadStoreMotion, RefusesVolatileAccess) {
  const char *Text = R"(
global v : 8 volatile
func main(0) {
entry:
  LTOC r4 = .v
  LI r32 = 10
  MTCTR r32
loop:
  L r33 = 0(r4) !v !volatile
  AI r33 = r33, 1
  ST 0(r4) !v !volatile = r33
  BCT loop
exit:
  L r3 = 0(r4) !v !volatile
  CALL print_int, 1
  RET
}
)";
  auto M = transformPreservesBehaviour(Text, [](Module &Mod) {
    speculativeLoadStoreMotion(Mod);
  });
  ASSERT_TRUE(M);
  const Function *F = M->findFunction("main");
  const BasicBlock *Loop = F->findBlock("loop");
  ASSERT_TRUE(Loop);
  EXPECT_TRUE(loopTouchesMemory(*F, {"loop"})) << printFunction(*F);
}

TEST(LoadStoreMotion, RefusesWhenBaseWrittenInLoop) {
  const char *Text = R"(
global a : 408
func main(0) {
entry:
  LTOC r4 = .a
  LI r32 = 100
  MTCTR r32
  LI r33 = 0
loop:
  L r34 = 0(r4) !a
  A r33 = r33, r34
  AI r4 = r4, 4
  BCT loop
exit:
  LR r3 = r33
  CALL print_int, 1
  RET
}
)";
  auto M = transformPreservesBehaviour(Text, [](Module &Mod) {
    speculativeLoadStoreMotion(Mod);
  });
  ASSERT_TRUE(M);
  EXPECT_TRUE(loopTouchesMemory(*M->findFunction("main"), {"loop"}));
}

TEST(LoadStoreMotion, RefusesWhenAliasedByUnknownStore) {
  // A store through an unannotated pointer may hit the global.
  const char *Text = R"(
global a : 16
func main(2) {
entry:
  LTOC r5 = .a
  LI r32 = 10
  MTCTR r32
  LI r33 = 0
loop:
  L r34 = 12(r5) !a
  A r33 = r33, r34
  ST 0(r4) = r33
  BCT loop
exit:
  LR r3 = r33
  CALL print_int, 1
  RET
}
)";
  std::string Err;
  auto M = parseModule(Text, &Err);
  ASSERT_TRUE(M) << Err;
  speculativeLoadStoreMotion(*M);
  EXPECT_TRUE(loopTouchesMemory(*M->findFunction("main"), {"loop"}));
}

TEST(LoadStoreMotion, AllowsDisjointAnnotatedStores) {
  // A store to a *different* displacement of the same global does not block
  // caching of the first location.
  const char *Text = R"(
global a : 16
func main(0) {
entry:
  LTOC r4 = .a
  LI r32 = 50
  MTCTR r32
  LI r33 = 0
loop:
  L r34 = 12(r4) !a
  A r33 = r33, r34
  ST 0(r4) !a = r33
  BCT loop
exit:
  L r3 = 12(r4) !a
  A r3 = r3, r33
  CALL print_int, 1
  RET
}
)";
  auto M = transformPreservesBehaviour(Text, [](Module &Mod) {
    speculativeLoadStoreMotion(Mod);
  });
  ASSERT_TRUE(M);
  const Function *F = M->findFunction("main");
  const BasicBlock *Loop = F->findBlock("loop");
  ASSERT_TRUE(Loop);
  // The load of 12(r4) is register-cached; only the store to 0(r4)
  // remains... and then the store itself is also a cacheable group, so
  // after the pass converges the loop may touch no memory at all. Either
  // way the *load* must be gone.
  for (const Instr &I : Loop->instrs())
    EXPECT_FALSE(I.isLoad()) << printFunction(*F);
}

TEST(LoadStoreMotion, RefusesInsufficientGlobalSize) {
  // Displacement 12 with size 4 needs 16 bytes; global has only 8 — the
  // "sufficient size" safety condition fails.
  const char *Text = R"(
global a : 8
func main(0) {
entry:
  LTOC r4 = .a
  LI r32 = 10
  MTCTR r32
  LI r33 = 1
loop:
  CI cr0 = r33, 99
  BT skip, cr0.eq
body:
  L r34 = 12(r4) !a
  A r33 = r33, r34
skip:
  BCT loop
exit:
  LR r3 = r33
  CALL print_int, 1
  RET
}
)";
  // Note: the access itself would trap at runtime if executed — it is
  // guarded by a branch that never takes it... the guard *always* branches
  // around? No: cr0 is never eq, so body executes; give the global enough
  // memory by construction? The point here is only the static refusal.
  std::string Err;
  auto M = parseModule(Text, &Err);
  ASSERT_TRUE(M) << Err;
  speculativeLoadStoreMotion(*M);
  EXPECT_TRUE(loopTouchesMemory(*M->findFunction("main"), {"body"}));
}

TEST(LoadStoreMotion, PathlengthAndCyclesImprove) {
  auto Before = parseOrDie(PaperExample);
  RunResult RB = simulate(*Before, rs6000());
  auto After = parseOrDie(PaperExample);
  speculativeLoadStoreMotion(*After);
  runClassicalPipeline(*After);
  RunResult RA = simulate(*After, rs6000());
  EXPECT_EQ(RB.fingerprint(), RA.fingerprint());
  EXPECT_LT(RA.DynInstrs, RB.DynInstrs) << "pathlength must drop";
  EXPECT_LT(RA.Cycles, RB.Cycles) << "cycles must drop";
}
