//===- tests/test_block_expansion.cpp - Basic block expansion --------------===//

#include "TestUtil.h"
#include "vliw/BlockExpansion.h"

#include <gtest/gtest.h>

using namespace vsc;

namespace {

/// The paper's motivating shape: an untaken conditional branch chased by a
/// taken unconditional branch, inside a hot loop.
const char *StallLoop = R"(
func main(0) {
entry:
  LI r32 = 1000
  MTCTR r32
  LI r34 = 2000
  LI r33 = 0
loop:
  AI r33 = r33, 1
  C cr0 = r33, r34
  BT never, cr0.eq
  B join
join:
  AI r35 = r35, 1
  AI r35 = r35, 3
  AI r35 = r35, 5
  AI r35 = r35, 7
  BCT loop
exit:
  A r3 = r33, r35
  CALL print_int, 1
  RET
never:
  LI r3 = -1
  CALL print_int, 1
  RET
}
)";

} // namespace

TEST(BlockExpansion, RemovesUncondBranchStall) {
  auto Before = parseOrDie(StallLoop);
  RunResult RB = simulate(*Before, rs6000());
  ASSERT_FALSE(RB.Trapped) << RB.TrapMsg;
  EXPECT_GT(RB.BranchStallCycles, 2500u) << "the stall must exist first";

  auto After = transformPreservesBehaviour(StallLoop, [](Module &Mod) {
    expandBasicBlocks(*Mod.findFunction("main"), rs6000());
  });
  ASSERT_TRUE(After);
  RunResult RA = simulate(*After, rs6000());
  EXPECT_LT(RA.BranchStallCycles, RB.BranchStallCycles / 2)
      << printFunction(*After->findFunction("main"));
  EXPECT_LT(RA.Cycles, RB.Cycles);
}

TEST(BlockExpansion, SkipsWellSeparatedBranches) {
  const char *Separated = R"(
func main(0) {
entry:
  LI r32 = 10
  MTCTR r32
loop:
  AI r33 = r33, 1
  AI r33 = r33, 1
  AI r33 = r33, 1
  AI r33 = r33, 1
  AI r33 = r33, 1
  B join
join:
  BCT loop
exit:
  LR r3 = r33
  CALL print_int, 1
  RET
}
)";
  std::string Err;
  auto M = parseModule(Separated, &Err);
  ASSERT_TRUE(M) << Err;
  size_t Before = M->instrCount();
  expandBasicBlocks(*M->findFunction("main"), rs6000());
  // Straightening may simplify, but no code may be *added*.
  EXPECT_LE(M->instrCount(), Before);
}

TEST(BlockExpansion, StopsBeforeConditionalBranchWhenWindowRunsOut) {
  // The target's code reaches a conditional branch before the objective is
  // met; the stopping point is the instruction before it.
  const char *Text = R"(
func main(1) {
entry:
  CI cr0 = r3, 99
  BT never, cr0.eq
  B target
never:
  LI r3 = -1
  CALL print_int, 1
  RET
target:
  AI r40 = r3, 1
  CI cr1 = r40, 50
  BT big, cr1.gt
small:
  LI r3 = 1
  CALL print_int, 1
  RET
big:
  LI r3 = 2
  CALL print_int, 1
  RET
}
)";
  for (int64_t A : {10, 60}) {
    RunOptions Opts;
    Opts.Args = {A};
    auto M = transformPreservesBehaviour(
        Text,
        [](Module &Mod) {
          expandBasicBlocks(*Mod.findFunction("main"), rs6000());
        },
        Opts);
    ASSERT_TRUE(M);
  }
}

TEST(BlockExpansion, CopiesAcrossConditionalBranches) {
  // The search passes a conditional branch and keeps gathering; the copied
  // region then contains that branch with its original target.
  const char *Text = R"(
func main(1) {
entry:
  CI cr0 = r3, 99
  BT never, cr0.eq
  B target
never:
  LI r3 = -1
  CALL print_int, 1
  RET
target:
  AI r40 = r3, 1
  CI cr1 = r40, 50
  BT big, cr1.gt
small:
  AI r41 = r40, 2
  AI r41 = r41, 3
  AI r41 = r41, 4
  AI r41 = r41, 5
  AI r41 = r41, 6
  LR r3 = r41
  CALL print_int, 1
  RET
big:
  LI r3 = 2
  CALL print_int, 1
  RET
}
)";
  for (int64_t A : {10, 60, 99}) {
    RunOptions Opts;
    Opts.Args = {A};
    auto M = transformPreservesBehaviour(
        Text,
        [](Module &Mod) {
          expandBasicBlocks(*Mod.findFunction("main"), rs6000());
        },
        Opts);
    ASSERT_TRUE(M);
  }
}

TEST(BlockExpansion, WindowBoundsCodeGrowth) {
  auto Grow = [](unsigned Window) {
    std::string Err;
    auto M = parseModule(StallLoop, &Err);
    EXPECT_TRUE(M) << Err;
    ExpansionOptions Opts;
    Opts.Window = Window;
    expandBasicBlocks(*M->findFunction("main"), rs6000(), Opts);
    return M->instrCount();
  };
  std::string Err;
  auto Orig = parseModule(StallLoop, &Err);
  size_t Base = Orig->instrCount();
  // A window of 0 forbids any expansion; bigger windows may grow code but
  // within reason.
  EXPECT_EQ(Grow(0), Base);
  EXPECT_LE(Grow(24), Base + 24);
}
