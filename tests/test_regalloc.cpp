//===- tests/test_regalloc.cpp - Linear-scan register allocation -----------===//

#include "TestUtil.h"
#include "frontend/Frontend.h"
#include "opt/RegAlloc.h"
#include "vliw/Pipeline.h"
#include "workloads/RandomProgram.h"
#include "workloads/Spec.h"

#include <gtest/gtest.h>

using namespace vsc;

TEST(RegAlloc, EliminatesVirtualRegisters) {
  const char *Text = R"(
func main(0) {
entry:
  LI r40 = 6
  LI r41 = 7
  MUL r42 = r40, r41
  CI cr9 = r42, 42
  BT good, cr9.eq
bad:
  LI r3 = 0
  CALL print_int, 1
  RET
good:
  LR r3 = r42
  CALL print_int, 1
  RET
}
)";
  std::string Err;
  auto M = parseModule(Text, &Err);
  ASSERT_TRUE(M) << Err;
  Function &F = *M->findFunction("main");
  EXPECT_GT(countVirtualGprs(F), 0u);
  RegAllocStats Stats;
  ASSERT_TRUE(allocateRegisters(F, &Stats));
  EXPECT_EQ(countVirtualGprs(F), 0u);
  EXPECT_GE(Stats.GprAssigned, 3u);
  EXPECT_GE(Stats.CrAssigned, 1u);
  ASSERT_EQ(verifyModule(*M), "");
  RunResult R = simulate(*M, rs6000());
  EXPECT_EQ(R.Output, "42\n");
}

TEST(RegAlloc, ValuesSurviveCallsViaCalleeSaved) {
  // r40's value is live across a call; the allocator must give it a
  // callee-saved register, and prolog insertion afterwards preserves it.
  const char *Text = R"(
func clobber(0) {
entry:
  LI r5 = 111
  LI r20 = 222
  RET
}
func main(0) {
entry:
  LI r40 = 7
  CALL clobber, 0
  LR r3 = r40
  CALL print_int, 1
  RET
}
)";
  std::string Err;
  auto M = parseModule(Text, &Err);
  ASSERT_TRUE(M) << Err;
  for (auto &F : M->functions())
    ASSERT_TRUE(allocateRegisters(*F));
  // main's r40 must have landed in a callee-saved register.
  bool UsesCalleeSaved = false;
  for (const auto &BB : M->findFunction("main")->blocks())
    for (const Instr &I : BB->instrs())
      if (I.Op == Opcode::LI && I.Dst.isCalleeSaved())
        UsesCalleeSaved = true;
  EXPECT_TRUE(UsesCalleeSaved)
      << printFunction(*M->findFunction("main"));
  // Prologs make the callee-saved discipline real.
  PipelineOptions Opts;
  optimize(*M, OptLevel::None, Opts);
  RunResult R = simulate(*M, rs6000());
  ASSERT_FALSE(R.Trapped) << R.TrapMsg;
  EXPECT_EQ(R.Output, "7\n");
}

TEST(RegAlloc, SpillsUnderPressure) {
  // 30 simultaneously-live values across a call exceed the register file:
  // some must spill, and the result must still be correct.
  std::string Text = "func main(0) {\nentry:\n";
  for (int I = 0; I < 30; ++I)
    Text += "  LI r" + std::to_string(40 + I) + " = " +
            std::to_string(I * 3 + 1) + "\n";
  Text += "  LI r3 = 0\n  CALL sink, 1\n";
  Text += "  LI r39 = 0\n";
  for (int I = 0; I < 30; ++I)
    Text += "  A r39 = r39, r" + std::to_string(40 + I) + "\n";
  Text += R"(  LR r3 = r39
  CALL print_int, 1
  RET
}
func sink(1) {
entry:
  RET
}
)";
  std::string Err;
  auto M = parseModule(Text, &Err);
  ASSERT_TRUE(M) << Err;
  int64_t Expected = 0;
  for (int I = 0; I < 30; ++I)
    Expected += I * 3 + 1;

  Function &F = *M->findFunction("main");
  RegAllocStats Stats;
  ASSERT_TRUE(allocateRegisters(F, &Stats));
  EXPECT_EQ(countVirtualGprs(F), 0u);
  EXPECT_GT(Stats.Spilled, 0u) << "30 call-crossing values must spill";
  ASSERT_EQ(verifyModule(*M), "");
  optimize(*M, OptLevel::None);
  RunResult R = simulate(*M, rs6000());
  ASSERT_FALSE(R.Trapped) << R.TrapMsg;
  EXPECT_EQ(R.Output, std::to_string(Expected) + "\n");
}

TEST(RegAlloc, WorkloadsSurviveFullPipelineWithAllocation) {
  for (const Workload &W : specWorkloads()) {
    auto Base = buildWorkload(W);
    optimize(*Base, OptLevel::None);
    RunOptions In = workloadInput(W.TrainScale);
    RunResult RB = simulate(*Base, rs6000(), In);
    ASSERT_FALSE(RB.Trapped) << W.Name << ": " << RB.TrapMsg;

    auto M = buildWorkload(W);
    PipelineOptions Opts;
    Opts.AllocateRegisters = true;
    optimize(*M, OptLevel::Vliw, Opts);
    ASSERT_EQ(verifyModule(*M), "") << W.Name;
    // No virtual registers may remain anywhere.
    for (const auto &F : M->functions())
      EXPECT_EQ(countVirtualGprs(*F), 0u) << W.Name << ":" << F->name();
    RunResult R = simulate(*M, rs6000(), In);
    EXPECT_EQ(RB.fingerprint(), R.fingerprint()) << W.Name;
  }
}

TEST(RegAlloc, FuzzAgreesWithAllocation) {
  FrontendOptions Fe;
  Fe.AssumeSafeLoads = true;
  for (uint64_t Seed = 70; Seed != 86; ++Seed) {
    std::string Src = generateRandomMiniC(Seed);
    CompileResult Base = compileMiniC(Src, Fe);
    ASSERT_TRUE(Base.ok()) << Base.Error;
    optimize(*Base.M, OptLevel::None);
    RunOptions In;
    In.Args = {4};
    In.MaxInstrs = 20'000'000;
    RunResult RB = simulate(*Base.M, rs6000(), In);
    ASSERT_FALSE(RB.Trapped) << "seed " << Seed << ": " << RB.TrapMsg;

    CompileResult Opt = compileMiniC(Src, Fe);
    ASSERT_TRUE(Opt.ok());
    PipelineOptions Opts;
    Opts.AllocateRegisters = true;
    Opts.Inlining = true;
    optimize(*Opt.M, OptLevel::Vliw, Opts);
    ASSERT_EQ(verifyModule(*Opt.M), "") << "seed " << Seed;
    RunResult R = simulate(*Opt.M, rs6000(), In);
    EXPECT_EQ(RB.fingerprint(), R.fingerprint())
        << "seed " << Seed << "\n" << Src;
  }
}
