//===- tests/test_sim_fastpath.cpp - Fast path == legacy, bit for bit ------===//
///
/// The predecoded simulator (sim/Predecode.h + the SimEngine fast path
/// behind vsc::simulate) must be byte-identical to the original walking
/// interpreter (vsc::simulateLegacy) on every observable: behaviour
/// fingerprint, cycles, the stall breakdown, pathlength and the full
/// block/edge count maps. This suite enforces that on the six SPEC-
/// substitute kernels (compiled at the full VLIW level, so the fast path
/// sees post-pipeline code shapes too), on a 50-program fuzz corpus, on
/// trap paths, and through the batch API (which reuses one memory arena
/// across runs — a stale-state bug would show up as cross-run pollution).
///
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "ir/Parser.h"
#include "sim/Simulator.h"
#include "vliw/Pipeline.h"
#include "workloads/RandomProgram.h"
#include "workloads/Spec.h"

#include <gtest/gtest.h>

using namespace vsc;

namespace {

/// Full-surface equality: everything RunResult records except the raw
/// memory image (covered by MemDigest inside the fingerprint).
void expectSame(const RunResult &Legacy, const RunResult &Fast,
                const std::string &What) {
  EXPECT_EQ(Legacy.fingerprint(), Fast.fingerprint()) << What;
  EXPECT_EQ(Legacy.Cycles, Fast.Cycles) << What;
  EXPECT_EQ(Legacy.OperandStallCycles, Fast.OperandStallCycles) << What;
  EXPECT_EQ(Legacy.BranchStallCycles, Fast.BranchStallCycles) << What;
  EXPECT_EQ(Legacy.DynInstrs, Fast.DynInstrs) << What;
  EXPECT_EQ(Legacy.BlockCounts, Fast.BlockCounts) << What;
  EXPECT_EQ(Legacy.EdgeCounts, Fast.EdgeCounts) << What;
  EXPECT_EQ(Legacy.GlobalBase, Fast.GlobalBase) << What;
}

void expectSameOnModule(const Module &M, const MachineModel &Machine,
                        const RunOptions &Opts, const std::string &What) {
  expectSame(simulateLegacy(M, Machine, Opts), simulate(M, Machine, Opts),
             What);
}

class FastpathKernelTest : public ::testing::TestWithParam<size_t> {
protected:
  const Workload &workload() const { return specWorkloads()[GetParam()]; }
};

} // namespace

TEST_P(FastpathKernelTest, MatchesLegacyAtVliwLevel) {
  const Workload &W = workload();
  auto M = buildWorkload(W);
  ASSERT_TRUE(M);
  optimize(*M, OptLevel::Vliw);
  expectSameOnModule(*M, rs6000(), workloadInput(W.TrainScale), W.Name);
}

TEST_P(FastpathKernelTest, MatchesLegacyUnoptimized) {
  const Workload &W = workload();
  auto M = buildWorkload(W);
  ASSERT_TRUE(M);
  expectSameOnModule(*M, rs6000(), workloadInput(W.TrainScale),
                     W.Name + " (O0)");
}

INSTANTIATE_TEST_SUITE_P(AllSix, FastpathKernelTest,
                         ::testing::Range<size_t>(0, 6),
                         [](const ::testing::TestParamInfo<size_t> &I) {
                           return specWorkloads()[I.param].Name;
                         });

/// The li kernel on the other machine models: unit counts, latencies and
/// speculation budgets all differ, so any divergence in the timing loop
/// shows up here even if rs6000 happens to agree.
TEST(SimFastpath, MatchesLegacyAcrossMachines) {
  const Workload &W = specWorkloads()[1]; // li
  auto M = buildWorkload(W);
  ASSERT_TRUE(M);
  optimize(*M, OptLevel::Vliw);
  for (const MachineModel &Machine : {power2(), vliw8()})
    expectSameOnModule(*M, Machine, workloadInput(W.TrainScale),
                       W.Name + " on " + Machine.Name);
}

/// 50 random mini-C programs, compiled unoptimized (the fuzz pipeline suite
/// already covers optimized shapes): the functional semantics sweep.
TEST(SimFastpath, FuzzCorpusMatchesLegacy) {
  for (uint64_t Seed = 1; Seed <= 50; ++Seed) {
    FrontendOptions FOpts;
    FOpts.AssumeSafeLoads = true;
    CompileResult C = compileMiniC(generateRandomMiniC(Seed), FOpts);
    ASSERT_TRUE(C.ok()) << "seed " << Seed << ": " << C.Error;
    RunOptions Opts;
    Opts.Args = {5};
    Opts.MaxInstrs = 20'000'000;
    expectSameOnModule(*C.M, rs6000(), Opts,
                       "fuzz seed " + std::to_string(Seed));
  }
}

/// Trap paths must agree too — message text included, since the message is
/// part of the fingerprint.
TEST(SimFastpath, TrapParity) {
  struct Case {
    const char *Name;
    const char *Text;
    RunOptions Opts;
  };
  RunOptions Tiny;
  Tiny.MaxInstrs = 10;
  std::vector<Case> Cases = {
      {"div by zero", R"(
func main(0) {
entry:
  LI r32 = 7
  LI r33 = 0
  DIV r3 = r32, r33
  RET
}
)",
       RunOptions()},
      {"unknown callee", R"(
func main(0) {
entry:
  CALL nosuch, 0
  RET
}
)",
       RunOptions()},
      {"bad address", R"(
func main(0) {
entry:
  LI r32 = -8
  L r3 = 0(r32)
  RET
}
)",
       RunOptions()},
      {"budget exceeded", R"(
func main(0) {
entry:
  B loop
loop:
  B loop
}
)",
       Tiny},
      {"missing entry", R"(
func notmain(0) {
entry:
  RET
}
)",
       RunOptions()},
  };
  for (const Case &C : Cases) {
    std::string Err;
    auto M = parseModule(C.Text, &Err);
    ASSERT_TRUE(M) << C.Name << ": " << Err;
    RunResult L = simulateLegacy(*M, rs6000(), C.Opts);
    RunResult F = simulate(*M, rs6000(), C.Opts);
    EXPECT_TRUE(L.Trapped) << C.Name;
    expectSame(L, F, C.Name);
  }
}

/// simulateBatch reuses one decoded image and one memory arena across the
/// whole batch. Interleave runs with different arguments, inputs and
/// memory sizes and check each against an independent legacy run — any
/// state leaking between runs (memory, counters, register files) breaks
/// the positional match.
TEST(SimFastpath, BatchMatchesIndependentLegacyRuns) {
  const Workload &W = specWorkloads()[3]; // compress
  auto M = buildWorkload(W);
  ASSERT_TRUE(M);
  optimize(*M, OptLevel::Classical);

  std::vector<RunOptions> Batch;
  for (int64_t Scale : {1, 4, 2, 4, 1}) {
    RunOptions O = workloadInput(Scale);
    Batch.push_back(O);
  }
  Batch[2].MemBytes = 1u << 21; // a smaller arena mid-batch
  Batch[3].KeepMemory = true;

  std::vector<RunResult> Fast = simulateBatch(*M, rs6000(), Batch);
  ASSERT_EQ(Fast.size(), Batch.size());
  for (size_t I = 0; I < Batch.size(); ++I) {
    RunResult L = simulateLegacy(*M, rs6000(), Batch[I]);
    expectSame(L, Fast[I], "batch run " + std::to_string(I));
    EXPECT_EQ(L.Memory, Fast[I].Memory) << "batch run " << I;
  }
}

/// A SimEngine survives (and stays deterministic across) repeated runs.
TEST(SimFastpath, EngineRunsAreReproducible) {
  const Workload &W = specWorkloads()[2]; // eqntott
  auto M = buildWorkload(W);
  ASSERT_TRUE(M);
  SimEngine E(*M, rs6000());
  RunResult First = E.run(workloadInput(W.TrainScale));
  for (int I = 0; I < 3; ++I) {
    RunResult Again = E.run(workloadInput(W.TrainScale));
    expectSame(First, Again, "engine rerun " + std::to_string(I));
  }
}

/// The unresolved-branch trap ("branch to unknown label") fires *after*
/// the taken edge is counted, and everything executed up to the trap point
/// must be visible in the counter maps. A fast path that trapped before
/// counting (or flushed counters on the trap path) would drop the final
/// edge/block increments and silently skew profiling ground truth. Both
/// compiled dispatch flavours must agree with legacy on the full maps.
TEST(SimFastpath, UnresolvedBranchTrapCounterParity) {
  struct Case {
    const char *Name;
    const char *Text;
  };
  std::vector<Case> Cases = {
      {"unconditional B to unknown label", R"(
func main(0) {
entry:
  LI r32 = 3
  B work
work:
  AI r32 = r32, -1
  CI cr0 = r32, 0
  BF work, cr0.eq
  B nowhere
}
)"},
      {"taken BT to unknown label", R"(
func main(0) {
entry:
  LI r32 = 1
  CI cr0 = r32, 1
  B test
test:
  BT nowhere, cr0.eq
  RET
}
)"},
  };
  for (const Case &C : Cases) {
    std::string Err;
    auto M = parseModule(C.Text, &Err);
    ASSERT_TRUE(M) << C.Name << ": " << Err;

    RunResult L = simulateLegacy(*M, rs6000(), RunOptions());
    ASSERT_TRUE(L.Trapped) << C.Name;
    EXPECT_NE(L.TrapMsg.find("unknown label"), std::string::npos) << C.Name;
    // The loop body / taken edge up to the trap must be in the maps.
    EXPECT_FALSE(L.BlockCounts.empty()) << C.Name;
    EXPECT_FALSE(L.EdgeCounts.empty()) << C.Name;

    for (DispatchMode Mode : {DispatchMode::Switch, DispatchMode::Threaded}) {
      RunOptions Opts;
      Opts.Dispatch = Mode;
      RunResult F = simulate(*M, rs6000(), Opts);
      expectSame(L, F,
                 std::string(C.Name) + " [" + dispatchModeName(Mode) + "]");
    }
  }
}
