//===- tests/test_classical.cpp - Baseline scalar optimizations ------------===//

#include "TestUtil.h"
#include "opt/Classical.h"

#include <gtest/gtest.h>

using namespace vsc;

TEST(CopyProp, ForwardsWithinBlock) {
  auto M = transformPreservesBehaviour(R"(
func main(0) {
entry:
  LI r32 = 5
  LR r33 = r32
  AI r34 = r33, 1
  LR r3 = r34
  CALL print_int, 1
  RET
}
)",
                                       [](Module &Mod) {
                                         copyPropagate(*Mod.findFunction("main"));
                                         deadCodeElim(*Mod.findFunction("main"));
                                       });
  ASSERT_TRUE(M);
  // The chain collapses; only the physical argument setup copy (LR r3)
  // remains, since r3 is live into the call.
  EXPECT_EQ(countOps(*M->findFunction("main"), Opcode::LR), 1u);
}

TEST(CopyProp, StopsAtRedefinition) {
  auto M = transformPreservesBehaviour(R"(
func main(0) {
entry:
  LI r32 = 5
  LR r33 = r32
  LI r32 = 9
  LR r3 = r33
  CALL print_int, 1
  RET
}
)",
                                       [](Module &Mod) {
                                         copyPropagate(*Mod.findFunction("main"));
                                         deadCodeElim(*Mod.findFunction("main"));
                                       });
  ASSERT_TRUE(M);
}

TEST(CopyProp, CallClobbersMappings) {
  auto M = transformPreservesBehaviour(R"(
func id(1) {
entry:
  RET
}
func main(0) {
entry:
  LI r4 = 5
  LR r5 = r4
  LI r3 = 0
  CALL id, 1
  LR r3 = r5
  CALL print_int, 1
  RET
}
)",
                                       [](Module &Mod) {
                                         copyPropagate(*Mod.findFunction("main"));
                                       });
  ASSERT_TRUE(M);
  // r5 = r4 must NOT be forwarded past the call (r4 is clobbered).
  const Function *F = M->findFunction("main");
  bool FoundUseOfR5 = false;
  for (const auto &BB : F->blocks())
    for (const Instr &I : BB->instrs())
      if (I.Op == Opcode::LR && I.Src1 == Reg::gpr(5))
        FoundUseOfR5 = true;
  EXPECT_TRUE(FoundUseOfR5);
}

TEST(Lvn, EliminatesRedundantExpressions) {
  auto M = transformPreservesBehaviour(R"(
func main(0) {
entry:
  LI r32 = 6
  LI r33 = 7
  A r34 = r32, r33
  A r35 = r32, r33
  A r3 = r34, r35
  CALL print_int, 1
  RET
}
)",
                                       [](Module &Mod) {
                                         localValueNumbering(*Mod.findFunction("main"));
                                       });
  ASSERT_TRUE(M);
  EXPECT_EQ(countOps(*M->findFunction("main"), Opcode::A), 2u);
  EXPECT_EQ(countOps(*M->findFunction("main"), Opcode::LR), 1u);
}

TEST(Lvn, RedundantLoadsUntilStore) {
  auto M = transformPreservesBehaviour(R"(
global g : 8 = [3 0 0 0]
func main(0) {
entry:
  LTOC r32 = .g
  L r33 = 0(r32) !g
  L r34 = 0(r32) !g
  ST 4(r32) !g = r34
  L r35 = 0(r32) !g
  A r3 = r33, r35
  CALL print_int, 1
  RET
}
)",
                                       [](Module &Mod) {
                                         localValueNumbering(*Mod.findFunction("main"));
                                       });
  ASSERT_TRUE(M);
  // Second load is redundant; the one after the store must stay.
  EXPECT_EQ(countOps(*M->findFunction("main"), Opcode::L), 2u);
}

TEST(Lvn, RespectsRedefinedOperands) {
  auto M = transformPreservesBehaviour(R"(
func main(0) {
entry:
  LI r32 = 6
  AI r33 = r32, 1
  LI r32 = 9
  AI r34 = r32, 1
  A r3 = r33, r34
  CALL print_int, 1
  RET
}
)",
                                       [](Module &Mod) {
                                         localValueNumbering(*Mod.findFunction("main"));
                                       });
  ASSERT_TRUE(M);
  EXPECT_EQ(countOps(*M->findFunction("main"), Opcode::AI), 2u);
}

TEST(Dce, RemovesDeadChains) {
  auto M = transformPreservesBehaviour(R"(
func main(0) {
entry:
  LI r32 = 6
  AI r33 = r32, 1
  MUL r34 = r33, r33
  LI r3 = 1
  CALL print_int, 1
  RET
}
)",
                                       [](Module &Mod) {
                                         deadCodeElim(*Mod.findFunction("main"));
                                       });
  ASSERT_TRUE(M);
  // The whole r32/r33/r34 chain dies.
  EXPECT_EQ(M->findFunction("main")->instrCount(), 3u);
}

TEST(Dce, KeepsStoresAndVolatiles) {
  auto M = transformPreservesBehaviour(R"(
global g : 8
func main(0) {
entry:
  LTOC r32 = .g
  LI r33 = 1
  ST 0(r32) !g = r33
  L r34 = 4(r32) !g !volatile
  RET
}
)",
                                       [](Module &Mod) {
                                         deadCodeElim(*Mod.findFunction("main"));
                                       });
  ASSERT_TRUE(M);
  EXPECT_EQ(countOps(*M->findFunction("main"), Opcode::ST), 1u);
  EXPECT_EQ(countOps(*M->findFunction("main"), Opcode::L), 1u);
}

TEST(Licm, HoistsInvariantAlu) {
  auto M = transformPreservesBehaviour(R"(
func main(0) {
entry:
  LI r32 = 100
  MTCTR r32
  LI r33 = 10
  LI r36 = 0
loop:
  AI r34 = r33, 5
  A r36 = r36, r34
  BCT loop
exit:
  LR r3 = r36
  CALL print_int, 1
  RET
}
)",
                                       [](Module &Mod) {
                                         classicalLicm(*Mod.findFunction("main"));
                                       });
  ASSERT_TRUE(M);
  // "AI r34 = r33, 5" must leave the loop body.
  const Function *F = M->findFunction("main");
  const BasicBlock *Loop = F->findBlock("loop");
  ASSERT_TRUE(Loop);
  EXPECT_EQ(Loop->size(), 2u) << printFunction(*F);
}

TEST(Licm, RefusesConditionalLoad) {
  // The load sits under a conditional branch inside the loop; classical
  // LICM must not touch it (that is the speculative pass's job).
  auto M = transformPreservesBehaviour(R"(
global g : 8 = [7 0 0 0]
func main(0) {
entry:
  LI r32 = 100
  MTCTR r32
  LTOC r33 = .g
  LI r36 = 0
  LI r37 = 0
loop:
  AI r37 = r37, 1
  ANDI r38 = r37, 1
  CI cr0 = r38, 0
  BT skip, cr0.eq
body:
  L r34 = 0(r33) !g
  A r36 = r36, r34
skip:
  BCT loop
exit:
  LR r3 = r36
  CALL print_int, 1
  RET
}
)",
                                       [](Module &Mod) {
                                         classicalLicm(*Mod.findFunction("main"));
                                       });
  ASSERT_TRUE(M);
  const Function *F = M->findFunction("main");
  const BasicBlock *Body = F->findBlock("body");
  ASSERT_TRUE(Body);
  EXPECT_EQ(countOps(*F, Opcode::L), 1u);
  // Load still in the conditional block.
  bool LoadInBody = false;
  for (const Instr &I : Body->instrs())
    if (I.Op == Opcode::L)
      LoadInBody = true;
  EXPECT_TRUE(LoadInBody) << printFunction(*F);
}

TEST(Licm, HoistsUnconditionalLoadWithNoAliasingStore) {
  auto M = transformPreservesBehaviour(R"(
global g : 8 = [7 0 0 0]
global out : 408
func main(0) {
entry:
  LI r32 = 100
  MTCTR r32
  LTOC r33 = .g
  LTOC r35 = .out
  LI r36 = 0
loop:
  L r34 = 0(r33) !g
  A r36 = r36, r34
  ST 0(r35) !out = r36
  AI r35 = r35, 4
  BCT loop
exit:
  LR r3 = r36
  CALL print_int, 1
  RET
}
)",
                                       [](Module &Mod) {
                                         classicalLicm(*Mod.findFunction("main"));
                                       });
  ASSERT_TRUE(M);
  const Function *F = M->findFunction("main");
  const BasicBlock *Loop = F->findBlock("loop");
  ASSERT_TRUE(Loop);
  EXPECT_EQ(countOps(*F, Opcode::L), 1u);
  for (const Instr &I : Loop->instrs())
    EXPECT_FALSE(I.isLoad()) << printFunction(*F);
}

TEST(Classical, FullPipelineShrinksAndPreserves) {
  const char *Text = R"(
func main(0) {
entry:
  LI r32 = 100
  MTCTR r32
  LI r33 = 3
  LI r40 = 0
loop:
  LR r41 = r33
  AI r42 = r41, 4
  AI r43 = r41, 4
  A r44 = r42, r43
  A r40 = r40, r44
  MUL r45 = r44, r44
  BCT loop
exit:
  LR r3 = r40
  CALL print_int, 1
  RET
}
)";
  auto Before = parseOrDie(Text);
  size_t SizeBefore = Before->instrCount();
  auto M = transformPreservesBehaviour(Text, [](Module &Mod) {
    runClassicalPipeline(Mod);
  });
  ASSERT_TRUE(M);
  EXPECT_LT(M->instrCount(), SizeBefore);
  // The dead MUL and the redundant AI disappear; the loop gets shorter.
  const Function *F = M->findFunction("main");
  EXPECT_EQ(countOps(*F, Opcode::MUL), 0u);
}

TEST(Classical, PipelineSpeedsUpLoop) {
  const char *Text = R"(
func main(0) {
entry:
  LI r32 = 1000
  MTCTR r32
  LI r33 = 3
  LI r40 = 0
loop:
  AI r42 = r33, 4
  A r40 = r40, r42
  BCT loop
exit:
  LR r3 = r40
  CALL print_int, 1
  RET
}
)";
  auto Before = parseOrDie(Text);
  RunResult RB = simulate(*Before, rs6000());
  auto After = parseOrDie(Text);
  runClassicalPipeline(*After);
  RunResult RA = simulate(*After, rs6000());
  EXPECT_EQ(RB.fingerprint(), RA.fingerprint());
  EXPECT_LT(RA.Cycles, RB.Cycles);
  EXPECT_LT(RA.DynInstrs, RB.DynInstrs);
}
