//===- tests/test_inline.cpp - Leaf-function inlining -----------------------===//

#include "TestUtil.h"
#include "frontend/Frontend.h"
#include "opt/Inline.h"
#include "vliw/Pipeline.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

using namespace vsc;

TEST(Inline, InlinesLeafCall) {
  const char *Text = R"(
func add3(2) {
entry:
  A r3 = r3, r4
  AI r3 = r3, 3
  RET
}
func main(0) {
entry:
  LI r3 = 10
  LI r4 = 20
  CALL add3, 2
  CALL print_int, 1
  RET
}
)";
  auto M = transformPreservesBehaviour(Text, [](Module &Mod) {
    unsigned N = inlineLeafFunctions(Mod);
    EXPECT_EQ(N, 1u);
  });
  ASSERT_TRUE(M);
  // The user-function call disappears from main.
  const Function *Main = M->findFunction("main");
  for (const auto &BB : Main->blocks())
    for (const Instr &I : BB->instrs())
      EXPECT_FALSE(I.isCall() && I.Sym == "add3") << printFunction(*Main);
  RunResult R = simulate(*M, rs6000());
  EXPECT_EQ(R.Output, "33\n");
}

TEST(Inline, RemapsPhysicalRegistersSafely) {
  // The callee kills r13/r20 and cr0; the caller holds live values in all
  // three across the (inlined) call. Without remapping this would
  // corrupt them — with it, no prologs are needed at all.
  const char *Text = R"(
func muck(1) {
entry:
  LI r13 = 999
  LI r20 = 888
  CI cr0 = r3, 5
  BT big, cr0.gt
small:
  AI r3 = r3, 1
  RET
big:
  A r3 = r13, r20
  RET
}
func main(0) {
entry:
  LI r13 = 1
  LI r20 = 2
  CI cr0 = r13, 0
  LI r3 = 4
  CALL muck, 1
  LR r31 = r3
  BT weird, cr0.eq
normal:
  A r3 = r13, r20
  A r3 = r3, r31
  CALL print_int, 1
  RET
weird:
  LI r3 = -1
  CALL print_int, 1
  RET
}
)";
  std::string Err;
  auto M = parseModule(Text, &Err);
  ASSERT_TRUE(M) << Err;
  unsigned N = inlineLeafFunctions(*M);
  EXPECT_EQ(N, 1u);
  ASSERT_EQ(verifyModule(*M), "");
  RunResult R = simulate(*M, rs6000());
  ASSERT_FALSE(R.Trapped) << R.TrapMsg;
  // r13+r20+muck(4) = 1+2+5 = 8; cr0 (1>0 -> gt, not eq) takes 'normal'.
  EXPECT_EQ(R.Output, "8\n");
}

TEST(Inline, InlinesLoopyCalleeWithFrame) {
  const char *Text = R"(
int sumto(int n) {
  int buf[4];
  buf[0] = 0;
  for (int i = 1; i <= n; i++) buf[0] += i;
  return buf[0];
}
int main() {
  int total = 0;
  for (int k = 0; k < 5; k++) total += sumto(k);
  print_int(total);
  return 0;
}
)";
  CompileResult C1 = compileMiniC(Text);
  ASSERT_TRUE(C1.ok()) << C1.Error;
  optimize(*C1.M, OptLevel::None);
  RunResult RB = simulate(*C1.M, rs6000());
  ASSERT_FALSE(RB.Trapped) << RB.TrapMsg;
  EXPECT_EQ(RB.Output, "20\n"); // 0+1+3+6+10

  CompileResult C2 = compileMiniC(Text);
  ASSERT_TRUE(C2.ok());
  unsigned N = inlineLeafFunctions(*C2.M);
  EXPECT_EQ(N, 1u);
  ASSERT_EQ(verifyModule(*C2.M), "");
  optimize(*C2.M, OptLevel::None);
  RunResult RA = simulate(*C2.M, rs6000());
  EXPECT_EQ(RB.fingerprint(), RA.fingerprint());
}

TEST(Inline, RefusesNonLeafAndRecursive) {
  const char *Text = R"(
func rec(1) {
entry:
  CI cr0 = r3, 1
  BT base, cr0.lt
more:
  SI r3 = r3, 1
  CALL rec, 1
  RET
base:
  RET
}
func chatty(1) {
entry:
  CALL print_int, 1
  RET
}
func main(0) {
entry:
  LI r3 = 3
  CALL rec, 1
  LI r3 = 7
  CALL chatty, 1
  RET
}
)";
  std::string Err;
  auto M = parseModule(Text, &Err);
  ASSERT_TRUE(M) << Err;
  EXPECT_EQ(inlineLeafFunctions(*M), 0u);
}

TEST(Inline, RespectsSizeBudget) {
  std::string Callee = "func big(1) {\nentry:\n";
  for (int I = 0; I < 60; ++I)
    Callee += "  AI r3 = r3, 1\n";
  Callee += "  RET\n}\n";
  std::string Text = Callee + R"(
func main(0) {
entry:
  LI r3 = 0
  CALL big, 1
  CALL print_int, 1
  RET
}
)";
  std::string Err;
  auto M = parseModule(Text, &Err);
  ASSERT_TRUE(M) << Err;
  InlineOptions Opts;
  Opts.MaxCalleeInstrs = 48;
  EXPECT_EQ(inlineLeafFunctions(*M, Opts), 0u);
  Opts.MaxCalleeInstrs = 100;
  EXPECT_EQ(inlineLeafFunctions(*M, Opts), 1u);
  ASSERT_EQ(verifyModule(*M), "");
  EXPECT_EQ(simulate(*M, rs6000()).Output, "60\n");
}

TEST(Inline, UnlocksPipelineGains) {
  // A hot loop whose body is a call: the VLIW pipeline alone cannot
  // pipeline it; with inlining it can.
  const char *Text = R"(
int tab[64];
int probe(int i) {
  return tab[i & 63] * 3 + 1;
}
int main(int n) {
  for (int k = 0; k < 64; k++) tab[k] = k * 5;
  int acc = 0;
  for (int pass = 0; pass < n; pass++)
    for (int i = 0; i < 64; i++)
      acc += probe(i + pass);
  print_int(acc);
  return 0;
}
)";
  FrontendOptions Fe;
  Fe.AssumeSafeLoads = true;
  RunOptions In;
  In.Args = {50};

  CompileResult Plain = compileMiniC(Text, Fe);
  ASSERT_TRUE(Plain.ok());
  optimize(*Plain.M, OptLevel::Vliw);
  RunResult RP = simulate(*Plain.M, rs6000(), In);

  CompileResult Inl = compileMiniC(Text, Fe);
  ASSERT_TRUE(Inl.ok());
  PipelineOptions Opts;
  Opts.Inlining = true;
  optimize(*Inl.M, OptLevel::Vliw, Opts);
  RunResult RI = simulate(*Inl.M, rs6000(), In);

  EXPECT_EQ(RP.fingerprint(), RI.fingerprint());
  EXPECT_LT(RI.Cycles, RP.Cycles * 8 / 10)
      << "inlining should unlock at least 20% here";
}

TEST(Inline, FuzzAgreesWithInlining) {
  FrontendOptions Fe;
  Fe.AssumeSafeLoads = true;
  for (uint64_t Seed = 50; Seed != 62; ++Seed) {
    std::string Src = generateRandomMiniC(Seed);
    CompileResult Base = compileMiniC(Src, Fe);
    ASSERT_TRUE(Base.ok()) << "seed " << Seed << ": " << Base.Error;
    optimize(*Base.M, OptLevel::None);
    RunOptions In;
    In.Args = {4};
    In.MaxInstrs = 20'000'000;
    RunResult RB = simulate(*Base.M, rs6000(), In);
    ASSERT_FALSE(RB.Trapped) << "seed " << Seed << ": " << RB.TrapMsg;

    CompileResult Opt = compileMiniC(Src, Fe);
    ASSERT_TRUE(Opt.ok());
    PipelineOptions Opts;
    Opts.Inlining = true;
    optimize(*Opt.M, OptLevel::Vliw, Opts);
    ASSERT_EQ(verifyModule(*Opt.M), "") << "seed " << Seed;
    RunResult RO = simulate(*Opt.M, rs6000(), In);
    EXPECT_EQ(RB.fingerprint(), RO.fingerprint())
        << "seed " << Seed << "\n" << Src;
  }
}
