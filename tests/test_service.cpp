//===- tests/test_service.cpp - Compile-service behaviour ------------------===//
///
/// The compile service's contract: responses agree with the direct
/// pipeline/simulator/PDF-driver calls they cache, same-module batching
/// costs one cold compile, and the response bytes are identical no matter
/// the worker-thread count or the submission order. Plus the profile
/// round trip (save-profile through the service, reload, feed back into a
/// guided compile) and its stale-rejection path.
///
//===----------------------------------------------------------------------===//

#include "service/CompileService.h"

#include "frontend/Frontend.h"
#include "service/Protocol.h"
#include "ir/Printer.h"
#include "pdf/PdfExperiment.h"
#include "pdf/ProfileStore.h"
#include "workloads/Registry.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <random>
#include <sstream>

#include <gtest/gtest.h>

using namespace vsc;

namespace {

std::string hex64(uint64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "0x%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

/// The module the service compiles for a registry kernel, built the same
/// way (frontend with safe loads assumed, then the pipeline at Threads=1).
std::unique_ptr<Module> directBuild(const Workload &W, OptLevel L) {
  FrontendOptions FeOpts;
  FeOpts.AssumeSafeLoads = true;
  CompileResult C = compileMiniC(W.Source, FeOpts);
  EXPECT_TRUE(C.ok()) << C.Error;
  PipelineOptions Opts;
  Opts.Machine = rs6000();
  Opts.Threads = 1;
  return optimizedClone(*C.M, L, Opts);
}

uint64_t staticInstrs(const Module &M) {
  uint64_t N = 0;
  for (const auto &F : M.functions())
    for (const auto &BB : F->blocks())
      N += BB->instrs().size();
  return N;
}

ServiceRequest compileReq(const std::string &Kernel, OptLevel L,
                          const std::string &Name) {
  ServiceRequest R;
  R.Kind = ServiceRequest::Op::Compile;
  R.Kernel = Kernel;
  R.Level = L;
  R.Name = Name;
  return R;
}

} // namespace

TEST(CompileServiceTest, CompileMatchesDirectPipeline) {
  const Workload *W = workloads::findKernel("eqntott");
  ASSERT_TRUE(W);
  auto Direct = directBuild(*W, OptLevel::Vliw);
  std::string Printed = printModule(*Direct);

  CompileService Service;
  ServiceResponse Resp =
      Service.handle(compileReq("eqntott", OptLevel::Vliw, "c"));
  ASSERT_TRUE(Resp.Ok) << Resp.Text;
  EXPECT_EQ(Resp.Text,
            "op=compile target=eqntott level=vliw machine=rs6000 fp=" +
                hex64(cfgFingerprint(*Direct)) + " ir=" +
                hex64(fnv1aBytes(Printed.data(), Printed.size())) +
                " instrs=" + std::to_string(staticInstrs(*Direct)));
}

TEST(CompileServiceTest, SimulateMatchesDirectSimulator) {
  const Workload *W = workloads::findKernel("li");
  ASSERT_TRUE(W);
  auto Direct = directBuild(*W, OptLevel::Vliw);
  RunOptions Run;
  Run.Args = {W->TrainScale};
  RunResult R = simulate(*Direct, rs6000(), Run);

  CompileService Service;
  ServiceRequest Req;
  Req.Kind = ServiceRequest::Op::Simulate;
  Req.Kernel = "li";
  Req.Args = {W->TrainScale};
  ServiceResponse Resp = Service.handle(Req);
  ASSERT_TRUE(Resp.Ok) << Resp.Text;
  EXPECT_EQ(Resp.Text,
            "op=simulate target=li level=vliw machine=rs6000 exit=" +
                std::to_string(R.ExitCode) + " cycles=" +
                std::to_string(R.Cycles) + " instrs=" +
                std::to_string(R.DynInstrs) + " ostalls=" +
                std::to_string(R.OperandStallCycles) + " bstalls=" +
                std::to_string(R.BranchStallCycles) + " out=" +
                hex64(fnv1aBytes(R.Output.data(), R.Output.size())) +
                " mem=" + hex64(R.MemDigest));
}

TEST(CompileServiceTest, PdfMatchesExperimentDriver) {
  const Workload *W = workloads::findKernel("interp");
  ASSERT_TRUE(W);
  std::string Err;
  FrontendOptions FeOpts;
  FeOpts.AssumeSafeLoads = true;
  CompileResult C = compileMiniC(W->Source, FeOpts);
  ASSERT_TRUE(C.ok()) << C.Error;
  PdfExperimentOptions Opts;
  Opts.Machine = rs6000();
  Opts.Train = {workloadInput(W->TrainScale)};
  Opts.Test = {workloadInput(W->TrainScale)};
  Opts.Threads = 1;
  Opts.ProfileSource = PdfExperimentOptions::Source::Exact;
  PdfExperimentResult R = runPdfExperiment(*C.M, Opts);
  ASSERT_TRUE(R.ok()) << R.Error;

  CompileService Service;
  ServiceRequest Req;
  Req.Kind = ServiceRequest::Op::Pdf;
  Req.Kernel = "interp";
  Req.Train = {W->TrainScale};
  Req.Test = {W->TrainScale};
  ServiceResponse Resp = Service.handle(Req);
  ASSERT_TRUE(Resp.Ok) << Resp.Text;
  EXPECT_NE(Resp.Text.find(" base=" + std::to_string(R.BaselineCycles) +
                           " guided=" + std::to_string(R.GuidedCycles) +
                           " "),
            std::string::npos)
      << Resp.Text;
  const char *Layout = R.PdfLayoutKept < 0 ? "unconditional"
                       : R.PdfLayoutKept  ? "kept"
                                          : "rolled-back";
  EXPECT_NE(Resp.Text.find(std::string(" layout=") + Layout),
            std::string::npos)
      << Resp.Text;
}

TEST(CompileServiceTest, SameModuleBatchCostsOneColdCompile) {
  CompileService::Config Cfg;
  Cfg.Threads = 1;
  CompileService Service(Cfg);
  std::vector<ServiceRequest> Batch;
  for (int I = 0; I != 4; ++I)
    Batch.push_back(
        compileReq("chase", OptLevel::Vliw, "c" + std::to_string(I)));
  std::vector<ServiceResponse> Out = Service.handleBatch(Batch);
  ASSERT_EQ(Out.size(), 4u);
  for (const ServiceResponse &R : Out) {
    EXPECT_TRUE(R.Ok) << R.Text;
    EXPECT_EQ(R.Text, Out.front().Text);
  }
  EXPECT_EQ(Service.groupsFormed(), 1u);
  EXPECT_EQ(Service.cache().stats(ArtifactClass::Frontend).Misses, 1u);
  EXPECT_EQ(Service.cache().stats(ArtifactClass::Frontend).Hits, 3u);
  EXPECT_EQ(Service.cache().stats(ArtifactClass::Optimized).Misses, 1u);
  EXPECT_EQ(Service.cache().stats(ArtifactClass::Optimized).Hits, 3u);
}

TEST(CompileServiceTest, ResponsesSurviveCacheClear) {
  CompileService Service;
  ServiceRequest Req = compileReq("hashagg", OptLevel::Classical, "c");
  ServiceResponse First = Service.handle(Req);
  ASSERT_TRUE(First.Ok) << First.Text;
  Service.cache().clear();
  ServiceResponse Second = Service.handle(Req);
  EXPECT_EQ(First.Text, Second.Text);
}

TEST(CompileServiceTest, ByteIdenticalAcrossThreadsAndOrder) {
  // A mixed stream over three kernels: compiles at two levels, a
  // simulate, and a PDF experiment (train-scale batteries keep it quick).
  std::vector<ServiceRequest> Stream;
  for (const char *Kernel : {"eqntott", "chase", "interp"}) {
    const Workload *W = workloads::findKernel(Kernel);
    ASSERT_TRUE(W);
    Stream.push_back(compileReq(Kernel, OptLevel::Classical,
                                std::string(Kernel) + ".o2"));
    Stream.push_back(
        compileReq(Kernel, OptLevel::Vliw, std::string(Kernel) + ".o3"));
    ServiceRequest S;
    S.Kind = ServiceRequest::Op::Simulate;
    S.Kernel = Kernel;
    S.Args = {W->TrainScale};
    S.Name = std::string(Kernel) + ".sim";
    Stream.push_back(S);
    ServiceRequest P;
    P.Kind = ServiceRequest::Op::Pdf;
    P.Kernel = Kernel;
    P.Train = {W->TrainScale};
    P.Test = {W->TrainScale};
    P.Name = std::string(Kernel) + ".pdf";
    Stream.push_back(P);
  }

  std::map<std::string, std::string> Reference;
  bool HaveReference = false;
  for (unsigned Threads : {1u, 4u}) {
    for (uint32_t Seed : {1u, 2u}) {
      std::vector<ServiceRequest> Shuffled = Stream;
      std::mt19937 Rng(Seed);
      std::shuffle(Shuffled.begin(), Shuffled.end(), Rng);

      CompileService::Config Cfg;
      Cfg.Threads = Threads;
      CompileService Service(Cfg);
      std::vector<ServiceResponse> Out = Service.handleBatch(Shuffled);

      std::map<std::string, std::string> ByName;
      for (const ServiceResponse &R : Out) {
        EXPECT_TRUE(R.Ok) << R.Name << ": " << R.Text;
        ByName[R.Name] = R.Text;
      }
      ASSERT_EQ(ByName.size(), Stream.size());
      if (!HaveReference) {
        Reference = ByName;
        HaveReference = true;
        continue;
      }
      EXPECT_EQ(ByName, Reference)
          << "threads=" << Threads << " seed=" << Seed;
    }
  }
}

TEST(CompileServiceTest, SaveProfileRoundTripFeedsGuidedCompile) {
  const Workload *W = workloads::findKernel("interp");
  ASSERT_TRUE(W);
  std::string Path =
      testing::TempDir() + "/vsc_service_interp.profile";

  CompileService Service;
  ServiceRequest Save;
  Save.Kind = ServiceRequest::Op::SaveProfile;
  Save.Kernel = "interp";
  Save.Train = {W->TrainScale};
  Save.ProfileOut = Path;
  ServiceResponse SaveResp = Service.handle(Save);
  ASSERT_TRUE(SaveResp.Ok) << SaveResp.Text;
  EXPECT_NE(SaveResp.Text.find("file=" + Path), std::string::npos);

  // The persisted profile must reload and validate against the source.
  DenseProfile P;
  ASSERT_EQ(DenseProfile::loadFile(Path, P), "");
  FrontendOptions FeOpts;
  FeOpts.AssumeSafeLoads = true;
  CompileResult C = compileMiniC(W->Source, FeOpts);
  ASSERT_TRUE(C.ok()) << C.Error;
  EXPECT_EQ(P.validateFor(*C.M), "");

  // Feeding it back turns the compile profile-guided (layout decision
  // appears) and stays deterministic across repeats.
  ServiceRequest Guided = compileReq("interp", OptLevel::Vliw, "g");
  Guided.ProfileIn = Path;
  Guided.Args = {W->TrainScale};
  ServiceResponse First = Service.handle(Guided);
  ASSERT_TRUE(First.Ok) << First.Text;
  EXPECT_NE(First.Text.find(" layout="), std::string::npos) << First.Text;
  ServiceResponse Second = Service.handle(Guided);
  EXPECT_EQ(First.Text, Second.Text);
  std::remove(Path.c_str());
}

TEST(CompileServiceTest, StaleProfileRejected) {
  const Workload *A = workloads::findKernel("eqntott");
  ASSERT_TRUE(A);
  std::string Path = testing::TempDir() + "/vsc_service_stale.profile";

  CompileService Service;
  ServiceRequest Save;
  Save.Kind = ServiceRequest::Op::SaveProfile;
  Save.Kernel = "eqntott";
  Save.Train = {A->TrainScale};
  Save.ProfileOut = Path;
  ASSERT_TRUE(Service.handle(Save).Ok);

  // Another kernel's module has a different CFG fingerprint: the profile
  // must be rejected, not silently applied.
  ServiceRequest Guided = compileReq("chase", OptLevel::Vliw, "g");
  Guided.ProfileIn = Path;
  ServiceResponse Resp = Service.handle(Guided);
  EXPECT_FALSE(Resp.Ok);
  EXPECT_NE(Resp.Text.find("stale profile"), std::string::npos) << Resp.Text;
  std::remove(Path.c_str());
}

TEST(CompileServiceTest, ErrorPaths) {
  CompileService Service;
  ServiceRequest R;
  R.Kernel = "no-such-kernel";
  ServiceResponse Resp = Service.handle(R);
  EXPECT_FALSE(Resp.Ok);
  EXPECT_NE(Resp.Text.find("unknown kernel"), std::string::npos);

  ServiceRequest M = compileReq("eqntott", OptLevel::Vliw, "m");
  M.MachineName = "no-such-machine";
  Resp = Service.handle(M);
  EXPECT_FALSE(Resp.Ok);
  EXPECT_NE(Resp.Text.find("unknown machine"), std::string::npos);

  ServiceRequest Empty;
  Empty.Kind = ServiceRequest::Op::Compile;
  Resp = Service.handle(Empty);
  EXPECT_FALSE(Resp.Ok);
  EXPECT_NE(Resp.Text.find("neither kernel"), std::string::npos);
}

// The vscd parse loop, hoisted into the library so this contract is
// testable without a process: every request line in the stream becomes
// exactly one slot, blank/comment lines vanish, parse errors are captured
// in place, and — the regression this locks in — a final request with no
// trailing newline is parsed like any other line instead of being dropped
// at end-of-stream.
TEST(CompileServiceTest, ParseRequestStreamKeepsNewlinelessFinalRequest) {
  const std::string Body = "# header comment\n"
                           "compile kernel=eqntott level=O3 name=a\n"
                           "\n"
                           "bogus-op kernel=eqntott\n"
                           "simulate kernel=eqntott name=b";

  std::istringstream NoFinalNewline(Body);
  ParsedRequestStream S = parseRequestStream(NoFinalNewline);

  ASSERT_EQ(S.Requests.size(), 2u);
  EXPECT_EQ(S.Requests[0].Name, "a");
  EXPECT_EQ(S.Requests[1].Name, "b");
  EXPECT_EQ(S.Requests[1].Kind, ServiceRequest::Op::Simulate);
  ASSERT_EQ(S.ParseErrors.size(), 1u);
  EXPECT_FALSE(S.ParseErrors[0].Ok);
  EXPECT_NE(S.ParseErrors[0].Text.find("unknown op"), std::string::npos);
  // One slot per non-blank line, in stream order: request, error, request.
  ASSERT_EQ(S.Slot.size(), 3u);
  EXPECT_EQ(S.Slot[0], 0);
  EXPECT_EQ(S.Slot[1], -1);
  EXPECT_EQ(S.Slot[2], 1);

  // A trailing '\n' must not change what was parsed.
  std::istringstream WithFinalNewline(Body + "\n");
  ParsedRequestStream T = parseRequestStream(WithFinalNewline);
  ASSERT_EQ(T.Requests.size(), S.Requests.size());
  for (size_t I = 0; I != S.Requests.size(); ++I)
    EXPECT_EQ(T.Requests[I].Name, S.Requests[I].Name);
  EXPECT_EQ(T.Slot, S.Slot);

  // The anonymous-name rule counts physical lines, newline or not.
  std::istringstream Anon("compile kernel=eqntott\nsimulate kernel=eqntott");
  ParsedRequestStream A = parseRequestStream(Anon);
  ASSERT_EQ(A.Requests.size(), 2u);
  EXPECT_EQ(A.Requests[0].Name, "r1");
  EXPECT_EQ(A.Requests[1].Name, "r2");
}
