//===- tests/test_unroll.cpp - Loop unrolling ------------------------------===//
///
/// Tests for the unrolling pass: BCT trip semantics across factors 2..4,
/// side exits keeping their targets, the MaxBodyInstrs refusal, and exact
/// store-stream preservation via the differential execution oracle.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "audit/PassAudit.h"
#include "cfg/Loops.h"
#include "oracle/ExecOracle.h"
#include "vliw/Unroll.h"

#include <gtest/gtest.h>

using namespace vsc;

namespace {

/// BCT-counted loop with an argument-dependent trip count, so every
/// residue class modulo the unroll factor is reachable.
const char *CountedLoop = R"(
func main(1) {
entry:
  AI r32 = r3, 1
  MTCTR r32
  LI r34 = 0
  LI r35 = 1
loop:
  A r34 = r34, r35
  AI r35 = r35, 2
  BCT loop
exit:
  LR r3 = r34
  CALL print_int, 1
  RET
}
)";

/// Loop with a data-dependent side exit ("break") in the middle of the
/// body; the side exit must keep its original target in every copy.
const char *SideExitLoop = R"(
func main(1) {
entry:
  LI r32 = 50
  MTCTR r32
  LI r34 = 0
loop:
  AI r34 = r34, 3
  C cr0 = r34, r3
  BT found, cr0.gt
latch:
  BCT loop
exit:
  LI r34 = -1
found:
  LR r3 = r34
  CALL print_int, 1
  RET
}
)";

unsigned unrollMain(Module &M, unsigned Factor, size_t MaxBody = 64) {
  return unrollInnermostLoops(*M.findFunction("main"), Factor, MaxBody);
}

} // namespace

TEST(Unroll, FactorsPreserveTripSemantics) {
  for (unsigned Factor : {2u, 3u, 4u}) {
    for (int64_t Arg : {0, 1, 2, 3, 5, 11}) {
      RunOptions Opts;
      Opts.Args = {Arg};
      auto M = transformPreservesBehaviour(
          CountedLoop,
          [&](Module &Mod) { EXPECT_EQ(unrollMain(Mod, Factor), 1u); },
          Opts);
      ASSERT_TRUE(M);
      const Function &F = *M->findFunction("main");
      // Each copy carries its own count-decrementing branch.
      EXPECT_EQ(countOps(F, Opcode::BCT), Factor) << printFunction(F);
    }
  }
}

TEST(Unroll, SideExitsKeepTargets) {
  for (int64_t Arg : {0, 10, 29, 1000}) {
    RunOptions Opts;
    Opts.Args = {Arg};
    auto M = transformPreservesBehaviour(
        SideExitLoop,
        [](Module &Mod) { EXPECT_EQ(unrollMain(Mod, 3), 1u); }, Opts);
    ASSERT_TRUE(M);
    const Function &F = *M->findFunction("main");
    // All three copies test the break condition.
    EXPECT_EQ(countOps(F, Opcode::BT), 3u) << printFunction(F);
  }
}

TEST(Unroll, OracleConfirmsExactStoreStream) {
  // Unrolling must replay the identical store sequence — strict trace
  // compare across the oracle's whole input battery.
  const char *Text = R"(
global a : 64
func main(1) {
entry:
  LTOC r4 = .a
  AI r32 = r3, 1
  MTCTR r32
  LI r34 = 0
loop:
  SLI r36 = r34, 2
  A r37 = r4, r36
  ST 0(r37) !a = r34
  AI r34 = r34, 1
  BCT loop
exit:
  L r3 = 4(r4) !a
  CALL print_int, 1
  RET
}
)";
  for (unsigned Factor : {2u, 4u}) {
    auto M = parseOrDie(Text);
    ASSERT_TRUE(M);
    auto Before = cloneFunction(*M->findFunction("main"));
    ASSERT_EQ(unrollMain(*M, Factor), 1u);
    ASSERT_EQ(verifyModule(*M), "") << printModule(*M);
    OracleOptions Opts;
    Opts.CompareStoreTrace = true;
    Opts.CompareCallTrace = true;
    OracleResult R = diffFunctions(*Before, *M->findFunction("main"), *M,
                                   "unroll", Opts);
    EXPECT_TRUE(R.ok()) << "factor " << Factor << "\n" << R.Report;
  }
}

TEST(Unroll, RefusesOversizedBody) {
  auto M = parseOrDie(CountedLoop);
  ASSERT_TRUE(M);
  Function &F = *M->findFunction("main");
  std::string BeforeText = printFunction(F);
  // The body has 3 instructions; a 2-instruction budget must refuse it.
  EXPECT_EQ(unrollInnermostLoops(F, 2, /*MaxBodyInstrs=*/2), 0u);
  EXPECT_EQ(printFunction(F), BeforeText);
}

TEST(Unroll, RefusesFactorBelowTwo) {
  auto M = parseOrDie(CountedLoop);
  ASSERT_TRUE(M);
  Function &F = *M->findFunction("main");
  Cfg G(F);
  Dominators D(G);
  LoopInfo LI(G, D);
  ASSERT_EQ(LI.innermostLoops().size(), 1u);
  EXPECT_FALSE(unrollLoop(F, *LI.innermostLoops().front(), 1));
  EXPECT_FALSE(unrollLoop(F, *LI.innermostLoops().front(), 0));
}
