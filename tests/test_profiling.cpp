//===- tests/test_profiling.cpp - Low-overhead PDF -------------------------===//
///
/// Covers the paper's profiling machinery (experiments E5/E6/E12): counter
/// placement by constraint propagation, counting-code insertion with the
/// in-loop hoisting optimization, count inference validated against the
/// simulator's exact ground truth, and the PDF layout applications.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "profile/Counters.h"
#include "profile/PdfLayout.h"
#include "vliw/Pipeline.h"

#include <gtest/gtest.h>

using namespace vsc;

namespace {

/// The eqntott-flavoured inner loop from the paper's profiling example:
/// five basic blocks inside the loop, two outside.
const char *EqnKernel = R"(
global a : 808
global b : 808
func main(0) {
entry:
  LTOC r20 = .a
  LTOC r21 = .b
  LI r22 = 100
  MTCTR r22
  LI r23 = 0
BB1:
  L r4 = 0(r20) !a
  AI r20 = r20, 4
  L r6 = 0(r21) !b
  AI r21 = r21, 4
  CI cr0 = r4, 2
  BT BB3, cr0.eq
BB2:
  AI r23 = r23, 1
BB3:
  CI cr1 = r6, 2
  BF BB5, cr1.eq
BB4:
  AI r23 = r23, 2
BB5:
  C cr0 = r4, r6
  BT BB7, cr0.eq
BB6:
  BCT BB1
BB7:
  LR r3 = r23
  CALL print_int, 1
  RET
}
)";

/// Fills a/b with patterned, never-equal values so the loop runs its full
/// trip count with branchy (but skewed) internal control flow.
std::unique_ptr<Module> buildEqn() {
  auto M = parseOrDie(EqnKernel);
  for (Global &G : M->globals()) {
    G.Init.resize(G.Size, 0);
    for (size_t I = 0; I * 4 < G.Size; ++I) {
      uint32_t V = (G.Name == "a") ? (I % 7) : (I % 7) + 1;
      for (unsigned B = 0; B != 4; ++B)
        G.Init[4 * I + B] = static_cast<uint8_t>(V >> (8 * B));
    }
  }
  return M;
}

} // namespace

TEST(CounterPlacement, CountsOnlyASubsetOfBlocks) {
  auto M = buildEqn();
  Function &F = *M->findFunction("main");
  size_t NumBlocks = F.size();
  CounterPlan Plan = planCounters(F);
  EXPECT_LT(Plan.CountedBlocks.size(), NumBlocks)
      << "a proper subset must suffice";
  EXPECT_GE(Plan.CountedBlocks.size(), 2u);
}

TEST(CounterPlacement, PlanIsDeterministic) {
  auto M1 = buildEqn();
  auto M2 = buildEqn();
  CounterPlan P1 = planCounters(*M1->findFunction("main"));
  CounterPlan P2 = planCounters(*M2->findFunction("main"));
  EXPECT_EQ(P1.CountedBlocks, P2.CountedBlocks);
  EXPECT_EQ(P1.NumDummies, P2.NumDummies);
}

TEST(CounterPlacement, PrefersBlocksOutsideLoops) {
  auto M = buildEqn();
  Function &F = *M->findFunction("main");
  CounterPlan Plan = planCounters(F);
  // The plan should count the cheap out-of-loop blocks (entry/BB7) before
  // resorting to in-loop ones; at least one out-of-loop block is chosen.
  bool HasOutOfLoop = false;
  for (const std::string &L : Plan.CountedBlocks)
    if (L == "entry" || L == "BB7")
      HasOutOfLoop = true;
  EXPECT_TRUE(HasOutOfLoop);
}

TEST(Instrumentation, CountsAreExact) {
  auto Train = buildEqn();
  auto Ground = buildEqn();
  RunResult GroundTruth = simulate(*Ground, rs6000());
  ASSERT_FALSE(GroundTruth.Trapped) << GroundTruth.TrapMsg;

  Instrumentation Info = instrumentModule(*Train, /*HoistCounters=*/true);
  ASSERT_EQ(verifyModule(*Train), "");
  RunOptions Opts;
  Opts.KeepMemory = true;
  RunResult R = simulate(*Train, rs6000(), Opts);
  ASSERT_FALSE(R.Trapped) << R.TrapMsg;
  // Program output unchanged by instrumentation.
  EXPECT_EQ(R.Output, GroundTruth.Output);

  auto Counts = readCounters(R, Info);
  ASSERT_FALSE(Counts.empty());
  for (const auto &[Key, Val] : Counts) {
    // Dummy blocks do not exist in the ground-truth module; check the rest.
    auto It = GroundTruth.BlockCounts.find(Key);
    if (It != GroundTruth.BlockCounts.end())
      EXPECT_EQ(Val, It->second) << Key;
  }
}

TEST(Instrumentation, InferenceReconstructsAllCounts) {
  auto Train = buildEqn();
  auto Target = buildEqn();
  Instrumentation Info = instrumentModule(*Train, true);
  RunOptions Opts;
  Opts.KeepMemory = true;
  RunResult R = simulate(*Train, rs6000(), Opts);
  auto Counts = readCounters(R, Info);

  Function &TF = *Target->findFunction("main");
  planCounters(TF); // identical surgery
  ProfileData P;
  std::string Err = inferCounts(TF, Counts, P);
  ASSERT_EQ(Err, "");

  // Every inferred block count must match a direct run of the target.
  RunResult Direct = simulate(*Target, rs6000());
  ASSERT_FALSE(Direct.Trapped) << Direct.TrapMsg;
  for (const auto &[Key, Val] : Direct.BlockCounts)
    EXPECT_EQ(P.BlockCount[Key], Val) << Key;
  for (const auto &[Key, Val] : Direct.EdgeCounts)
    EXPECT_EQ(P.EdgeCount[Key], Val) << Key;
}

TEST(Instrumentation, HoistingReducesOverhead) {
  auto Plain = buildEqn();
  auto Hoisted = buildEqn();
  instrumentModule(*Plain, /*HoistCounters=*/false);
  instrumentModule(*Hoisted, /*HoistCounters=*/true);
  RunResult RP = simulate(*Plain, rs6000());
  RunResult RH = simulate(*Hoisted, rs6000());
  ASSERT_FALSE(RP.Trapped) << RP.TrapMsg;
  ASSERT_FALSE(RH.Trapped) << RH.TrapMsg;
  EXPECT_EQ(RP.Output, RH.Output);
  EXPECT_LT(RH.DynInstrs, RP.DynInstrs)
      << "hoisted counters must execute fewer instructions";
}

TEST(Instrumentation, OverheadIsModest) {
  auto Base = buildEqn();
  auto Inst = buildEqn();
  RunResult RB = simulate(*Base, rs6000());
  instrumentModule(*Inst, true);
  RunResult RI = simulate(*Inst, rs6000());
  double Overhead =
      static_cast<double>(RI.DynInstrs) / static_cast<double>(RB.DynInstrs);
  EXPECT_LT(Overhead, 1.6) << "low-overhead profiling should stay modest";
}

TEST(CollectProfile, EndToEndMatchesGroundTruth) {
  auto Train = buildEqn();
  auto Target = buildEqn();
  ProfileData P = collectProfile(*Train, *Target, rs6000(), RunOptions());
  ASSERT_FALSE(P.BlockCount.empty());
  RunResult Direct = simulate(*Target, rs6000());
  for (const auto &[Key, Val] : Direct.BlockCounts)
    EXPECT_EQ(P.BlockCount[Key], Val) << Key;
}

//===----------------------------------------------------------------------===//
// PDF applications
//===----------------------------------------------------------------------===//

TEST(PdfLayout, ReorderPutsHotPathInFallthroughLine) {
  // A diamond whose hot side is the *taken* side: after reordering, the
  // hot block must directly follow the branch block.
  const char *Text = R"(
func main(0) {
entry:
  LI r30 = 1000
  MTCTR r30
  LI r31 = 0
loop:
  ANDI r32 = r31, 7
  AI r31 = r31, 1
  CI cr0 = r32, 7
  BF hot, cr0.eq
cold:
  AI r33 = r33, 100
  B next
hot:
  AI r33 = r33, 1
next:
  BCT loop
exit:
  LR r3 = r33
  CALL print_int, 1
  RET
}
)";
  auto M = parseOrDie(Text);
  RunResult Ground = simulate(*M, rs6000());
  ProfileData P = ProfileData::fromRun(Ground);

  auto M2 = parseOrDie(Text);
  pdfReorderBlocks(*M2->findFunction("main"), P);
  ASSERT_EQ(verifyModule(*M2), "");
  RunResult After = simulate(*M2, rs6000());
  EXPECT_EQ(Ground.fingerprint(), After.fingerprint());
  // hot should now be the fallthrough of loop.
  Function &F = *M2->findFunction("main");
  size_t LoopIdx = F.indexOf(F.findBlock("loop"));
  EXPECT_EQ(F.blocks()[LoopIdx + 1]->label(), "hot") << printFunction(F);
}

TEST(PdfLayout, BranchReversalRemovesTakenBranches) {
  // A conditional branch taken 7 of 8 iterations.
  const char *Text = R"(
func main(0) {
entry:
  LI r30 = 1000
  MTCTR r30
  LI r31 = 0
loop:
  ANDI r32 = r31, 7
  AI r31 = r31, 1
  CI cr0 = r32, 7
  BF hot, cr0.eq
cold:
  AI r33 = r33, 100
hot:
  AI r33 = r33, 1
  BCT loop
exit:
  LR r3 = r33
  CALL print_int, 1
  RET
}
)";
  auto M = parseOrDie(Text);
  RunResult Ground = simulate(*M, rs6000());
  ProfileData P = ProfileData::fromRun(Ground);

  auto M2 = parseOrDie(Text);
  Function &F = *M2->findFunction("main");
  pdfReverseBranches(F, P, rs6000());
  ASSERT_EQ(verifyModule(*M2), "");
  RunResult After = simulate(*M2, rs6000());
  EXPECT_EQ(Ground.fingerprint(), After.fingerprint());
  EXPECT_LE(After.Cycles, Ground.Cycles);
}

TEST(PdfPipeline, ProfileGuidedVliwAtLeastMatchesVliw) {
  auto Base = buildEqn();
  RunResult RBase = simulate(*Base, rs6000());

  auto Plain = buildEqn();
  optimize(*Plain, OptLevel::Vliw);
  RunResult RPlain = simulate(*Plain, rs6000());
  EXPECT_EQ(RBase.fingerprint(), RPlain.fingerprint());

  auto Train = buildEqn();
  auto Guided = buildEqn();
  ProfileData P = collectProfile(*Train, *Guided, rs6000(), RunOptions());
  PipelineOptions Opts;
  Opts.Profile = &P;
  optimize(*Guided, OptLevel::Vliw, Opts);
  RunResult RGuided = simulate(*Guided, rs6000());
  EXPECT_EQ(RBase.fingerprint(), RGuided.fingerprint());
  EXPECT_LE(RGuided.Cycles, RPlain.Cycles + 5);
}
