//===- tests/test_exact_pipeline.cpp - Exact software pipelining -----------===//
///
/// Covers the pipelining/ subsystem: the min-II analysis (resource and
/// recurrence lower bounds per innermost loop), the branch-and-bound
/// modulo scheduler's verdicts on hand-built loops with known optimal II,
/// the FunctionAnalyses cache keying, and the Grade/Apply wiring through
/// the full audited pipeline — including byte-identical output across
/// thread counts and the untouched-code guarantee when the budget cuts
/// the search.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "cfg/CfgEdit.h"
#include "cfg/Dominators.h"
#include "pipelining/ExactPipeliner.h"
#include "pipelining/MinII.h"
#include "pm/Analysis.h"
#include "vliw/Pipeline.h"
#include "vliw/Schedule.h"

#include <gtest/gtest.h>

using namespace vsc;

namespace {

/// Builds the min-II analysis directly (syntactic alias tier) over \p F.
MinIIAnalysis analyzeMinII(Function &F, const MachineModel &MM) {
  Cfg G(F);
  Dominators D(G);
  LoopInfo LI(G, D);
  return MinIIAnalysis(F, G, LI, /*AA=*/nullptr, MM);
}

/// Flattens the single-block loop \p Label of \p F (body + terminators),
/// the shape the dependence graph and exact scheduler index by.
std::vector<Instr> loopBody(Function &F, const std::string &Label) {
  for (auto &BB : F.blocks())
    if (BB->label() == Label)
      return BB->instrs();
  ADD_FAILURE() << "no block " << Label;
  return {};
}

/// Three independent adds + the count branch: min II on a 1-wide FXU is 3
/// (purely resource bound).
const char *IndependentAddsText = R"(
func main(0) {
entry:
  LI r32 = 50
  MTCTR r32
  LI r34 = 0
  LI r35 = 0
  LI r36 = 0
loop:
  AI r34 = r34, 1
  AI r35 = r35, 2
  AI r36 = r36, 3
  BCT loop
exit:
  A r3 = r34, r35
  A r3 = r3, r36
  CALL print_int, 1
  RET
}
)";

/// A pointer chase: the load feeds its own address next iteration, so the
/// recurrence bound (load latency 2) dominates the resource bound (1).
/// tab[0] is seeded with tab's own address, so the chase is a stable
/// self-cycle whatever the loader's layout.
const char *PointerChaseText = R"(
global tab : 64
func main(0) {
entry:
  LI r32 = 9
  MTCTR r32
  LTOC r33 = .tab
  ST 0(r33) !tab = r33
loop:
  L r33 = 0(r33) !tab
  BCT loop
exit:
  LR r3 = r33
  CALL print_int, 1
  RET
}
)";

PipelineOptions exactOptions(ExactPipelineMode Mode, PipelineStats *Stats) {
  PipelineOptions Opts;
  Opts.ExactPipelining = Mode;
  Opts.Stats = Stats;
  // Keep the hand-built loop bodies pristine (no 2x unrolling) so the
  // min-II expectations below stay exact.
  Opts.UnrollAndRename = false;
  return Opts;
}

const LoopPipelineRecord *findLoop(const PipelineStats &S,
                                   const std::string &Fn) {
  for (const LoopPipelineRecord &R : S.PipelineLoops)
    if (R.Function == Fn)
      return &R;
  return nullptr;
}

} // namespace

//===----------------------------------------------------------------------===//
// Min-II analysis
//===----------------------------------------------------------------------===//

TEST(MinII, ResourceBoundTracksMachineWidth) {
  auto M = parseOrDie(IndependentAddsText);
  Function &F = *M->findFunction("main");
  // 3 FXU ops on a 1-wide FXU: resMII 3. power2 doubles the width: 2.
  MinIIAnalysis Narrow = analyzeMinII(F, rs6000());
  ASSERT_EQ(Narrow.loops().size(), 1u);
  const LoopMinII &L1 = Narrow.loops()[0];
  EXPECT_TRUE(L1.Modeled);
  EXPECT_EQ(L1.BodyInstrs, 4u);
  EXPECT_EQ(L1.ResMII, 3u);
  EXPECT_EQ(L1.minII(), 3u);

  MinIIAnalysis Wide = analyzeMinII(F, power2());
  EXPECT_EQ(Wide.loops()[0].ResMII, 2u);
}

TEST(MinII, PointerChaseRecurrenceDominates) {
  auto M = parseOrDie(PointerChaseText);
  Function &F = *M->findFunction("main");
  MinIIAnalysis A = analyzeMinII(F, rs6000());
  ASSERT_EQ(A.loops().size(), 1u);
  const LoopMinII &L = A.loops()[0];
  EXPECT_TRUE(L.Modeled);
  // The self-flow edge L->L (latency 2, distance 1) forces II >= 2; the
  // resource bound alone is 1.
  EXPECT_EQ(L.ResMII, 1u);
  EXPECT_EQ(L.RecMII, 2u);
  EXPECT_EQ(L.minII(), 2u);
}

TEST(MinII, CachedByMachineFingerprint) {
  auto M = parseOrDie(IndependentAddsText);
  Function &F = *M->findFunction("main");
  FunctionAnalyses FA(F);
  EXPECT_FALSE(FA.hasCached(AnalysisKind::MinII));

  const MinIIAnalysis &A = FA.minII(rs6000(), /*FlowAlias=*/false);
  uint64_t MissesAfterFirst = FA.stats().Misses;
  EXPECT_TRUE(FA.hasCached(AnalysisKind::MinII));

  // Same machine + tier: a hit returning the same object.
  const MinIIAnalysis &B = FA.minII(rs6000(), /*FlowAlias=*/false);
  EXPECT_EQ(&A, &B);
  EXPECT_EQ(FA.stats().Misses, MissesAfterFirst);

  // Different machine: recompute under the new key.
  const MinIIAnalysis &C = FA.minII(power2(), /*FlowAlias=*/false);
  EXPECT_GT(FA.stats().Misses, MissesAfterFirst);
  EXPECT_EQ(C.loops()[0].ResMII, 2u);

  // Declared invalidation drops it like any other analysis.
  FA.invalidateAll();
  EXPECT_FALSE(FA.hasCached(AnalysisKind::MinII));
}

//===----------------------------------------------------------------------===//
// Exact scheduler verdicts
//===----------------------------------------------------------------------===//

TEST(ExactPipeliner, ProvesOptimalityAtTheResourceBound) {
  auto M = parseOrDie(IndependentAddsText);
  Function &F = *M->findFunction("main");
  std::vector<Instr> Body = loopBody(F, "loop");
  ASSERT_EQ(Body.size(), 4u);
  LoopDepGraph G = buildLoopDepGraph(Body, rs6000(), nullptr);
  EXPECT_EQ(computeResMII(Body, rs6000()), 3u);

  ExactPipelinerOptions Opts;
  ExactSchedule S =
      exactScheduleLoop(Body, G, rs6000(), computeRecMII(G), 8, Opts);
  // Nothing below the resource bound is feasible; II=3 is found with the
  // lower searches complete, so the verdict is a proof.
  EXPECT_EQ(S.Verdict, ExactVerdict::Optimal);
  EXPECT_EQ(S.II, 3u);
  ASSERT_EQ(S.Cycle.size(), Body.size());
  // The three adds must land in distinct residue classes of the 1-wide FXU.
  EXPECT_NE(S.Cycle[0] % 3, S.Cycle[1] % 3);
  EXPECT_NE(S.Cycle[0] % 3, S.Cycle[2] % 3);
  EXPECT_NE(S.Cycle[1] % 3, S.Cycle[2] % 3);
}

TEST(ExactPipeliner, RecurrenceMakesLowIIProvablyInfeasible) {
  auto M = parseOrDie(PointerChaseText);
  Function &F = *M->findFunction("main");
  std::vector<Instr> Body = loopBody(F, "loop");
  LoopDepGraph G = buildLoopDepGraph(Body, rs6000(), nullptr);

  ExactPipelinerOptions Opts;
  // Capped below recMII: the self edge is refuted without search, so the
  // verdict is Infeasible (a proof), not BudgetExceeded.
  ExactSchedule Low = exactScheduleLoop(Body, G, rs6000(), 1, 1, Opts);
  EXPECT_EQ(Low.Verdict, ExactVerdict::Infeasible);
  EXPECT_EQ(Low.II, 0u);

  ExactSchedule Ok = exactScheduleLoop(Body, G, rs6000(), 1, 4, Opts);
  EXPECT_EQ(Ok.Verdict, ExactVerdict::Optimal);
  EXPECT_EQ(Ok.II, 2u);
}

TEST(ExactPipeliner, BudgetCutReportsBudgetExceeded) {
  auto M = parseOrDie(IndependentAddsText);
  Function &F = *M->findFunction("main");
  std::vector<Instr> Body = loopBody(F, "loop");
  LoopDepGraph G = buildLoopDepGraph(Body, rs6000(), nullptr);

  ExactPipelinerOptions Opts;
  Opts.NodeBudget = 0;
  ExactSchedule S = exactScheduleLoop(Body, G, rs6000(), 1, 8, Opts);
  EXPECT_EQ(S.Verdict, ExactVerdict::BudgetExceeded);
  EXPECT_EQ(S.II, 0u);
}

TEST(ExactPipeliner, OversizedBodyIsOutsideTheModel) {
  auto M = parseOrDie(IndependentAddsText);
  Function &F = *M->findFunction("main");
  std::vector<Instr> Body = loopBody(F, "loop");
  LoopDepGraph G = buildLoopDepGraph(Body, rs6000(), nullptr);
  ExactPipelinerOptions Opts;
  Opts.MaxBodyInstrs = 2;
  ExactSchedule S = exactScheduleLoop(Body, G, rs6000(), 1, 8, Opts);
  EXPECT_EQ(S.Verdict, ExactVerdict::Infeasible);
  EXPECT_EQ(S.NodesExplored, 0u);
}

//===----------------------------------------------------------------------===//
// Pipeline wiring: Grade
//===----------------------------------------------------------------------===//

TEST(ExactGrade, RecordsGapWithoutTouchingCode) {
  PipelineStats Off, Grade;
  auto MOff = parseOrDie(PointerChaseText);
  auto MGrade = parseOrDie(PointerChaseText);
  optimize(*MOff, OptLevel::Vliw, exactOptions(ExactPipelineMode::Off, &Off));
  optimize(*MGrade, OptLevel::Vliw,
           exactOptions(ExactPipelineMode::Grade, &Grade));

  // Grade is a pure oracle: byte-identical output to Off.
  EXPECT_EQ(printModule(*MOff), printModule(*MGrade));
  EXPECT_TRUE(Off.PipelineLoops.empty());

  const LoopPipelineRecord *R = findLoop(Grade, "main");
  ASSERT_NE(R, nullptr);
  EXPECT_EQ(R->minII(), 2u);
  EXPECT_GE(R->HeuristicII, R->minII());
  EXPECT_EQ(R->AchievedII, R->HeuristicII);
  EXPECT_FALSE(R->Applied);
  if (R->ExactII) {
    EXPECT_GE(R->ExactII, R->minII());
    EXPECT_LE(R->ExactII, R->HeuristicII);
  }
}

TEST(ExactGrade, ProvesHeuristicOptimalWhenGapIsZero) {
  // The chase loop's heuristic steady state hits the recurrence bound, so
  // the exact search (capped at the heuristic's II) must find II equal to
  // it with every lower II refuted: verdict Optimal, gap zero.
  PipelineStats S;
  auto M = parseOrDie(PointerChaseText);
  optimize(*M, OptLevel::Vliw, exactOptions(ExactPipelineMode::Grade, &S));
  const LoopPipelineRecord *R = findLoop(S, "main");
  ASSERT_NE(R, nullptr);
  ASSERT_EQ(R->Verdict, ExactVerdict::Optimal);
  EXPECT_EQ(R->ExactII, R->HeuristicII);
}

//===----------------------------------------------------------------------===//
// Pipeline wiring: Apply
//===----------------------------------------------------------------------===//

TEST(ExactApply, BudgetExceededLeavesCodeUntouched) {
  PipelineStats Off, Apply;
  PipelineOptions ApplyOpts = exactOptions(ExactPipelineMode::Apply, &Apply);
  ApplyOpts.ExactPipeline.NodeBudget = 0; // every search cuts immediately
  auto MOff = parseOrDie(IndependentAddsText);
  auto MApply = parseOrDie(IndependentAddsText);
  optimize(*MOff, OptLevel::Vliw, exactOptions(ExactPipelineMode::Off, &Off));
  optimize(*MApply, OptLevel::Vliw, ApplyOpts);

  EXPECT_EQ(printModule(*MOff), printModule(*MApply));
  for (const LoopPipelineRecord &R : Apply.PipelineLoops) {
    EXPECT_FALSE(R.Applied);
    EXPECT_TRUE(R.Verdict == ExactVerdict::BudgetExceeded ||
                R.Verdict == ExactVerdict::Infeasible)
        << exactVerdictName(R.Verdict);
  }
}

TEST(ExactApply, FullyAuditedAndThreadInvariant) {
  // Apply mode through the complete safety net — semantic pass audit,
  // differential execution oracle and the dynamic alias audit — and
  // byte-identical output at every thread count.
  auto Build = [](unsigned Threads) {
    auto M = parseOrDie(PointerChaseText);
    PipelineStats S;
    PipelineOptions Opts = exactOptions(ExactPipelineMode::Apply, &S);
    Opts.Audit = AuditLevel::Boundaries;
    Opts.Oracle = OracleLevel::Boundaries;
    Opts.AliasAudit = true;
    Opts.Threads = Threads;
    optimize(*M, OptLevel::Vliw, Opts);
    return printModule(*M);
  };
  std::string One = Build(1);
  std::string Four = Build(4);
  EXPECT_EQ(One, Four);
}

TEST(ExactApply, PreservesBehaviourOnTheChaseLoop) {
  auto M = transformPreservesBehaviour(PointerChaseText, [](Module &Mod) {
    PipelineOptions Opts;
    Opts.ExactPipelining = ExactPipelineMode::Apply;
    optimize(Mod, OptLevel::Vliw, Opts);
  });
  ASSERT_TRUE(M);
}

//===----------------------------------------------------------------------===//
// Edge shapes through pipelineInnermostLoops
//===----------------------------------------------------------------------===//

TEST(ExactEdge, ZeroTripLoopStaysCorrect) {
  // The guard branches around the loop entirely: the preheader (and any
  // rotated copy in it) never executes, and grading still records the
  // static loop.
  const char *Text = R"(
global tab : 64
func main(0) {
entry:
  LI r32 = 0
  CI cr0 = r32, 0
  BT exit, cr0.eq
pre:
  MTCTR r32
  LTOC r33 = .tab
loop:
  L r34 = 0(r33) !tab
  AI r33 = r33, 4
  A r32 = r32, r34
  BCT loop
exit:
  LR r3 = r32
  CALL print_int, 1
  RET
}
)";
  std::vector<LoopPipelineRecord> Records;
  auto M = transformPreservesBehaviour(Text, [&Records](Module &Mod) {
    Function &F = *Mod.findFunction("main");
    FunctionAnalyses FA(F);
    PipelineLoopOptions PO;
    PO.Exact = ExactPipelineMode::Apply;
    PO.Records = &Records;
    pipelineInnermostLoops(F, rs6000(), Mod, PO, FA);
    straighten(F);
  });
  ASSERT_TRUE(M);
  ASSERT_EQ(Records.size(), 1u);
  EXPECT_GE(Records[0].HeuristicII, Records[0].minII());
}

TEST(ExactEdge, SingleInstructionBodyIsGradedNotRotated) {
  // The body is just the count branch: nothing can rotate
  // (firstTerminatorIdx == 0) but the loop still grades — one BU op, so
  // min II is 1.
  const char *Text = R"(
func main(0) {
entry:
  LI r32 = 5
  MTCTR r32
loop:
  BCT loop
exit:
  LI r3 = 42
  CALL print_int, 1
  RET
}
)";
  std::vector<LoopPipelineRecord> Records;
  auto M = transformPreservesBehaviour(Text, [&Records](Module &Mod) {
    Function &F = *Mod.findFunction("main");
    FunctionAnalyses FA(F);
    PipelineLoopOptions PO;
    PO.Exact = ExactPipelineMode::Grade;
    PO.Records = &Records;
    unsigned Kept = pipelineInnermostLoops(F, rs6000(), Mod, PO, FA);
    EXPECT_EQ(Kept, 0u);
  });
  ASSERT_TRUE(M);
  ASSERT_EQ(Records.size(), 1u);
  EXPECT_EQ(Records[0].BodyInstrs, 1u);
  EXPECT_EQ(Records[0].minII(), 1u);
  EXPECT_EQ(Records[0].Rotations, 0u);
}

TEST(ExactEdge, RecurrenceBoundLoopGradesAboveResourceBound) {
  std::vector<LoopPipelineRecord> Records;
  auto M = transformPreservesBehaviour(PointerChaseText, [&Records](Module &Mod) {
    Function &F = *Mod.findFunction("main");
    FunctionAnalyses FA(F);
    PipelineLoopOptions PO;
    PO.Exact = ExactPipelineMode::Grade;
    PO.Records = &Records;
    pipelineInnermostLoops(F, rs6000(), Mod, PO, FA);
    straighten(F);
  });
  ASSERT_TRUE(M);
  ASSERT_EQ(Records.size(), 1u);
  EXPECT_GT(Records[0].RecMII, Records[0].ResMII);
  EXPECT_GE(Records[0].HeuristicII, Records[0].RecMII);
}
