//===- tests/test_pdf_gate.cpp - Measured PDF-layout gate ------------------===//

#include "TestUtil.h"
#include "profile/Counters.h"
#include "profile/PdfLayout.h"
#include "vliw/Pipeline.h"
#include "workloads/Spec.h"

#include <gtest/gtest.h>

using namespace vsc;

namespace {

const char *SkewedLoop = R"(
func main(0) {
entry:
  LI r30 = 2000
  MTCTR r30
  LI r31 = 0
loop:
  ANDI r32 = r31, 7
  AI r31 = r31, 1
  CI cr0 = r32, 7
  BT hot, cr0.lt
cold:
  AI r33 = r33, 100
  B next
hot:
  AI r33 = r33, 1
next:
  BCT loop
exit:
  LR r3 = r33
  CALL print_int, 1
  RET
}
)";

} // namespace

TEST(PdfGate, KeepsImprovingLayout) {
  auto Seed = parseOrDie(SkewedLoop);
  RunResult Ground = simulate(*Seed, rs6000());
  ProfileData P = ProfileData::fromRun(Ground);

  auto M = parseOrDie(SkewedLoop);
  RunOptions Train; // same input
  bool Kept = pdfLayoutMeasured(*M, P, rs6000(), &Train);
  EXPECT_TRUE(Kept);
  RunResult After = simulate(*M, rs6000());
  EXPECT_EQ(Ground.fingerprint(), After.fingerprint());
  EXPECT_LT(After.Cycles, Ground.Cycles);
}

TEST(PdfGate, RollsBackNonImprovingLayout) {
  // A layout that is already hot-path-straightened: reordering cannot
  // improve it, so the gate must leave the function byte-identical.
  const char *Straight = R"(
func main(0) {
entry:
  LI r30 = 2000
  MTCTR r30
  LI r31 = 0
loop:
  ANDI r32 = r31, 7
  AI r31 = r31, 1
  AI r33 = r33, 1
  BCT loop
exit:
  LR r3 = r33
  CALL print_int, 1
  RET
}
)";
  auto Seed = parseOrDie(Straight);
  RunResult Ground = simulate(*Seed, rs6000());
  ProfileData P = ProfileData::fromRun(Ground);

  auto M = parseOrDie(Straight);
  std::string Before = printModule(*M);
  RunOptions Train;
  bool Kept = pdfLayoutMeasured(*M, P, rs6000(), &Train);
  if (!Kept)
    EXPECT_EQ(printModule(*M), Before) << "rollback must be exact";
  RunResult After = simulate(*M, rs6000());
  EXPECT_EQ(Ground.fingerprint(), After.fingerprint());
  EXPECT_LE(After.Cycles, Ground.Cycles);
}

TEST(PdfGate, NullTrainInputKeepsUnconditionally) {
  auto Seed = parseOrDie(SkewedLoop);
  ProfileData P = ProfileData::fromRun(simulate(*Seed, rs6000()));
  auto M = parseOrDie(SkewedLoop);
  EXPECT_TRUE(pdfLayoutMeasured(*M, P, rs6000(), nullptr));
}

TEST(PdfGate, GatedPipelineNeverRegressesTrainedInput) {
  for (const Workload &W : specWorkloads()) {
    RunOptions Train = workloadInput(W.TrainScale);

    auto Plain = buildWorkload(W);
    optimize(*Plain, OptLevel::Vliw);
    RunResult RPlain = simulate(*Plain, rs6000(), Train);

    auto TrainM = buildWorkload(W);
    auto Guided = buildWorkload(W);
    ProfileData P = collectProfile(*TrainM, *Guided, rs6000(), Train);
    PipelineOptions Opts;
    Opts.Profile = &P;
    Opts.TrainInput = &Train;
    optimize(*Guided, OptLevel::Vliw, Opts);
    RunResult RGuided = simulate(*Guided, rs6000(), Train);

    EXPECT_EQ(RPlain.fingerprint(), RGuided.fingerprint()) << W.Name;
    // The measured gate guarantees the layout stage never hurt the
    // trained input; the residual scheduling-heuristic noise is small.
    EXPECT_LE(RGuided.Cycles, RPlain.Cycles * 21 / 20) << W.Name;
  }
}
