//===- tests/test_vliw_packing.cpp - VLIW word view + join hoisting --------===//

#include "TestUtil.h"
#include "cfg/CfgEdit.h"
#include "vliw/Rename.h"
#include "vliw/Schedule.h"
#include "vliw/Unroll.h"
#include "workloads/LiKernel.h"

#include <gtest/gtest.h>

using namespace vsc;

TEST(VliwPacking, GroupsIndependentOpsIntoOneWord) {
  auto M = parseOrDie(R"(
func main(0) {
entry:
  LI r40 = 1
  LI r41 = 2
  A r42 = r40, r41
  CI cr0 = r42, 3
  BT yes, cr0.eq
no:
  LI r3 = 0
  CALL print_int, 1
  RET
yes:
  LI r3 = 1
  CALL print_int, 1
  RET
}
)");
  const BasicBlock *Entry = M->findFunction("main")->entry();
  MachineModel MM = rs6000();
  auto Words = packIntoVliwWords(*Entry, MM);
  ASSERT_FALSE(Words.empty());
  // Single FXU: the two LIs cannot share a word; but the BT (branch unit)
  // shares a cycle with an FXU op.
  bool BranchShared = false;
  for (const VliwWord &W : Words) {
    unsigned Fxu = 0, Bu = 0;
    for (size_t Idx : W.Ops) {
      UnitKind U = MM.unitOf(Entry->instrs()[Idx]);
      Fxu += U == UnitKind::Fxu;
      Bu += U == UnitKind::Bu;
    }
    EXPECT_LE(Fxu, MM.FxuWidth);
    EXPECT_LE(Bu, MM.BuWidth);
    if (Fxu && Bu)
      BranchShared = true;
  }
  EXPECT_TRUE(BranchShared) << formatAsVliw(*Entry, MM);
}

TEST(VliwPacking, WiderMachinePacksDenser) {
  auto M = parseOrDie(R"(
func main(0) {
entry:
  LI r40 = 1
  LI r41 = 2
  LI r42 = 3
  LI r43 = 4
  A r3 = r40, r41
  CALL print_int, 1
  RET
}
)");
  const BasicBlock *Entry = M->findFunction("main")->entry();
  auto Narrow = packIntoVliwWords(*Entry, rs6000());
  auto Wide = packIntoVliwWords(*Entry, power2());
  EXPECT_GT(Narrow.size(), Wide.size());
}

TEST(VliwPacking, PipelinedLiLoopPacksTight) {
  auto M = buildLiSearch(32);
  Function &F = *M->findFunction("xlygetvalue");
  unrollInnermostLoops(F, 2);
  straighten(F);
  renameInnermostLoops(F);
  pipelineInnermostLoops(F, rs6000(), *M);
  globalSchedule(F, rs6000(), *M);
  straighten(F);
  // The scheduled loop should issue >1 op per word on average in its
  // biggest block.
  size_t BestSize = 0;
  double BestDensity = 0;
  for (const auto &BB : F.blocks()) {
    auto Words = packIntoVliwWords(*BB, rs6000());
    if (BB->size() >= BestSize && !Words.empty()) {
      BestSize = BB->size();
      BestDensity = static_cast<double>(BB->size()) / Words.size();
    }
  }
  EXPECT_GT(BestDensity, 1.0) << printFunction(F);
}

TEST(JoinHoist, BookkeepingCopiesIntoBothPredecessors) {
  // The join block's independent load can move above the join; the paper
  // requires a copy in each joining path.
  // Each arm has a load-use stall hole the hoisted join load can fill —
  // the profitability rule only accepts free slots.
  const char *Text = R"(
global g : 16 = [5 0 0 0 7 0 0 0 9 0 0 0]
func main(1) {
entry:
  LTOC r32 = .g
  CI cr0 = r3, 0
  BT left, cr0.eq
right:
  L r50 = 8(r32) !g
  AI r40 = r50, 1
  B join
left:
  L r51 = 8(r32) !g
  AI r40 = r51, 2
join:
  L r41 = 4(r32) !g
  A r3 = r40, r41
  CALL print_int, 1
  RET
}
)";
  for (int64_t A : {0, 1}) {
    RunOptions Opts;
    Opts.Args = {A};
    auto M = transformPreservesBehaviour(
        Text,
        [](Module &Mod) {
          globalSchedule(*Mod.findFunction("main"), rs6000(), Mod);
        },
        Opts);
    ASSERT_TRUE(M);
  }
  // Structure: the join's load moved up; both arms carry a copy.
  std::string Err;
  auto M = parseModule(Text, &Err);
  ASSERT_TRUE(M) << Err;
  Function &F = *M->findFunction("main");
  globalSchedule(F, rs6000(), *M);
  const BasicBlock *Join = F.findBlock("join");
  ASSERT_TRUE(Join);
  size_t LoadsInJoin = 0;
  for (const Instr &I : Join->instrs())
    LoadsInJoin += I.isLoad();
  size_t CopiesInArms = 0;
  for (const char *L : {"right", "left"})
    for (const Instr &I : F.findBlock(L)->instrs())
      CopiesInArms += I.isLoad() && I.memDisp() == 4;
  EXPECT_EQ(LoadsInJoin, 0u) << printFunction(F);
  EXPECT_EQ(CopiesInArms, 2u) << "one bookkeeping copy per joining path\n"
                              << printFunction(F);
}
