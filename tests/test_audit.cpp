//===- tests/test_audit.cpp - Semantic pass-audit checkers -----------------===//
///
/// Positive cases: clean pipeline output passes every checker (including the
/// full OptLevel::Vliw pipeline at AuditLevel::Full on all seed workloads).
/// Negative cases: hand-built IR violating each checker's invariant —
/// use-before-def, unsafe speculative load, dispatch-group width/latency
/// violation, broken loop invariant — each failing with a diagnostic that
/// names the invariant, and a harness test showing the offending pass is
/// named in the report.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "audit/Checkers.h"
#include "audit/PassAudit.h"
#include "vliw/Pipeline.h"
#include "workloads/Spec.h"

#include <gtest/gtest.h>

using namespace vsc;

namespace {

bool anyFindingContains(const AuditResult &R, const std::string &Needle) {
  for (const AuditFinding &F : R.Findings)
    if (F.str().find(Needle) != std::string::npos)
      return true;
  return false;
}

/// A load guarded by a conditional branch; hoisting it to the entry makes
/// it an unsafe speculative load (base r3 is no proof of validity).
const char *GuardedLoad = R"(
global g : 8
func main(1) {
entry:
  CI cr0 = r3, 0
  BT ld, cr0.eq
  B out
ld:
  L r32 = 0(r3)
  B out
out:
  LI r3 = 0
  RET
}
)";

/// Moves the first instruction of block \p From into the entry block at
/// position \p At, preserving its id (a hand-made speculative hoist).
void hoistFirstToEntry(Function &F, const char *From, size_t At = 0) {
  BasicBlock *Src = F.findBlock(From);
  ASSERT_TRUE(Src && !Src->empty());
  Instr I = Src->instrs().front();
  Src->instrs().erase(Src->instrs().begin());
  F.entry()->instrs().insert(F.entry()->instrs().begin() +
                                 static_cast<long>(At),
                             I);
}

} // namespace

//===----------------------------------------------------------------------===//
// Positive: the real pipeline is audit-clean.
//===----------------------------------------------------------------------===//

TEST(Audit, FullPipelineCleanOnWorkloads) {
  // AuditLevel::Full aborts the process on any finding, so completing the
  // loop is the assertion; the standalone re-audit double-checks the final
  // module through the CLI entry point.
  for (const Workload &W : specWorkloads()) {
    auto M = buildWorkload(W);
    ASSERT_TRUE(M) << W.Name;
    PipelineOptions Opts;
    Opts.Audit = AuditLevel::Full;
    optimize(*M, OptLevel::Vliw, Opts);
    AuditResult R = auditModule(*M, Opts.Machine);
    EXPECT_TRUE(R.ok()) << W.Name << ":\n" << R.str();
  }
}

TEST(Audit, HandwrittenProgramIsClean) {
  auto M = parseOrDie(GuardedLoad);
  ASSERT_TRUE(M);
  AuditResult R = auditModule(*M, rs6000());
  EXPECT_TRUE(R.ok()) << R.str();
}

//===----------------------------------------------------------------------===//
// Use-before-def.
//===----------------------------------------------------------------------===//

TEST(AuditUseBeforeDef, FlagsConditionallyDefinedRegister) {
  auto M = parseOrDie(R"(
func main(1) {
entry:
  CI cr0 = r3, 0
  BT join, cr0.eq
def:
  LI r32 = 1
join:
  A r3 = r32, r3
  RET
}
)");
  ASSERT_TRUE(M);
  AuditResult R;
  auditUseBeforeDef(*M->findFunction("main"), R);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(anyFindingContains(R, "use-before-def"));
  EXPECT_TRUE(anyFindingContains(R, "r32")) << R.str();
  EXPECT_TRUE(anyFindingContains(R, "not defined on every path")) << R.str();
}

TEST(AuditUseBeforeDef, CallClobbersCtr) {
  // The linkage convention makes ctr garbage across a call: a BCT loop
  // whose body calls is reading a clobbered register.
  auto M = parseOrDie(R"(
func helper(0) {
entry:
  LI r3 = 0
  RET
}
func main(1) {
entry:
  MTCTR r3
  CALL helper, 0
loop:
  AI r3 = r3, 1
  BCT loop
exit:
  LI r3 = 0
  RET
}
)");
  ASSERT_TRUE(M);
  AuditResult R;
  auditUseBeforeDef(*M->findFunction("main"), R);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(anyFindingContains(R, "ctr")) << R.str();
}

TEST(AuditUseBeforeDef, AcceptsAbiLiveIns) {
  auto M = parseOrDie(R"(
func main(2) {
entry:
  A r3 = r3, r4
  ST 0(r1) = r13
  RET
}
)");
  ASSERT_TRUE(M);
  AuditResult R;
  auditUseBeforeDef(*M->findFunction("main"), R);
  EXPECT_TRUE(R.ok()) << R.str();
}

//===----------------------------------------------------------------------===//
// Speculation safety (differential).
//===----------------------------------------------------------------------===//

TEST(AuditSpecSafety, FlagsUnsafeHoistedLoad) {
  auto M = parseOrDie(GuardedLoad);
  ASSERT_TRUE(M);
  Function *F = M->findFunction("main");
  auto Before = cloneFunction(*F);
  hoistFirstToEntry(*F, "ld");
  ASSERT_EQ(verifyFunction(*F), "");

  AuditResult R;
  auditSpeculationSafety(*Before, *F, *M, R);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(anyFindingContains(R, "speculation-safety"));
  EXPECT_TRUE(anyFindingContains(R, "hoisted above its guarding branch"))
      << R.str();
}

TEST(AuditSpecSafety, AcceptsSafeAnnotatedLoad) {
  auto M = parseOrDie(R"(
func main(1) {
entry:
  CI cr0 = r3, 0
  BT ld, cr0.eq
  B out
ld:
  L r32 = 0(r3) !safe
  B out
out:
  LI r3 = 0
  RET
}
)");
  ASSERT_TRUE(M);
  Function *F = M->findFunction("main");
  auto Before = cloneFunction(*F);
  hoistFirstToEntry(*F, "ld");
  AuditResult R;
  auditSpeculationSafety(*Before, *F, *M, R);
  EXPECT_TRUE(R.ok()) << R.str();
}

TEST(AuditSpecSafety, AcceptsLoadCoveredByDominatingAccess) {
  // The access is out of g's declared extent, so the extent rule cannot
  // prove it — but an identical access already executes on every path to
  // it, which is the paper's dominating-same-address condition.
  auto M = parseOrDie(R"(
global g : 8
func main(1) {
entry:
  LTOC r4 = .g
  L r33 = 8(r4) !g
  CI cr0 = r3, 0
  BT ld, cr0.eq
  B out
ld:
  L r32 = 8(r4) !g
  B out
out:
  LI r3 = 0
  RET
}
)");
  ASSERT_TRUE(M);
  Function *F = M->findFunction("main");
  auto Before = cloneFunction(*F);
  // Hoist to just after the dominating access (position 2, after LTOC and
  // the covering load).
  hoistFirstToEntry(*F, "ld", 2);
  AuditResult R;
  auditSpeculationSafety(*Before, *F, *M, R);
  EXPECT_TRUE(R.ok()) << R.str();
}

TEST(AuditSpecSafety, FlagsStoreThatLostItsGuard) {
  auto M = parseOrDie(R"(
global g : 8
func main(1) {
entry:
  LTOC r4 = .g
  CI cr0 = r3, 0
  BT st, cr0.eq
  B out
st:
  ST 0(r4) !g = r3
  B out
out:
  LI r3 = 0
  RET
}
)");
  ASSERT_TRUE(M);
  Function *F = M->findFunction("main");
  auto Before = cloneFunction(*F);
  hoistFirstToEntry(*F, "st");
  // The hoisted store lands before LTOC; ignore the use-before-def side of
  // that — this test targets the guard check.
  AuditResult R;
  auditSpeculationSafety(*Before, *F, *M, R);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(anyFindingContains(R, "store")) << R.str();
  EXPECT_TRUE(anyFindingContains(R, "no longer guarded")) << R.str();
}

//===----------------------------------------------------------------------===//
// Schedule hazards.
//===----------------------------------------------------------------------===//

TEST(AuditScheduleHazard, PackingOfRealSchedulerIsClean) {
  auto M = parseOrDie(GuardedLoad);
  ASSERT_TRUE(M);
  AuditResult R;
  auditScheduleHazards(*M->findFunction("main"), rs6000(), R);
  EXPECT_TRUE(R.ok()) << R.str();
}

TEST(AuditScheduleHazard, FlagsCorruptPacking) {
  auto M = parseOrDie(R"(
func main(1) {
entry:
  L r32 = 0(r1)
  A r3 = r32, r3
  RET
}
)");
  ASSERT_TRUE(M);
  const Function &F = *M->findFunction("main");
  const BasicBlock &BB = *F.entry();
  // Everything crammed into cycle 0: two FXU ops in a 1-wide group, and
  // the add consumes the load's result before LoadLatency elapses.
  std::vector<VliwWord> Corrupt = {VliwWord{0, {0, 1, 2}}};
  AuditResult R;
  auditPacking(F, BB, Corrupt, rs6000(), R);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(anyFindingContains(R, "schedule-hazard"));
  EXPECT_TRUE(anyFindingContains(R, "FxuWidth")) << R.str();
  EXPECT_TRUE(anyFindingContains(R, "only delivers it in cycle")) << R.str();
}

TEST(AuditScheduleHazard, FlagsIncompletePacking) {
  auto M = parseOrDie(GuardedLoad);
  ASSERT_TRUE(M);
  const Function &F = *M->findFunction("main");
  const BasicBlock &BB = *F.entry();
  std::vector<VliwWord> Missing = {VliwWord{0, {0}}};
  AuditResult R;
  auditPacking(F, BB, Missing, rs6000(), R);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(anyFindingContains(R, "covers")) << R.str();
}

//===----------------------------------------------------------------------===//
// CFG/loop integrity.
//===----------------------------------------------------------------------===//

TEST(AuditLoopIntegrity, FlagsBranchToEntry) {
  auto M = parseOrDie(R"(
func main(1) {
entry:
  AI r3 = r3, -1
  CI cr0 = r3, 0
  BT entry, cr0.gt
done:
  LI r3 = 0
  RET
}
)");
  ASSERT_TRUE(M);
  AuditResult R;
  auditCfgLoopIntegrity(nullptr, *M->findFunction("main"), R);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(anyFindingContains(R, "cfg-loop-integrity"));
  EXPECT_TRUE(anyFindingContains(R, "re-execute the prolog")) << R.str();
}

TEST(AuditLoopIntegrity, FlagsDuplicatedInstructionIds) {
  auto M = parseOrDie(GuardedLoad);
  ASSERT_TRUE(M);
  Function *F = M->findFunction("main");
  F->entry()->instrs()[0].Id = F->entry()->instrs()[1].Id;
  AuditResult R;
  auditCfgLoopIntegrity(nullptr, *F, R);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(anyFindingContains(R, "duplicated")) << R.str();
}

TEST(AuditLoopIntegrity, FlagsLoopMadeIrreducible) {
  auto M = parseOrDie(R"(
func main(1) {
entry:
  LI r32 = 5
head:
  AI r32 = r32, -1
  CI cr0 = r32, 0
body:
  AI r3 = r3, 1
  BT head, cr0.gt
exit:
  LI r3 = 0
  RET
}
)");
  ASSERT_TRUE(M);
  Function *F = M->findFunction("main");
  auto Before = cloneFunction(*F);
  // A "pass" that jumps straight into the loop body: the back edge to
  // 'head' survives, but the header no longer dominates its latch.
  Instr Br;
  Br.Op = Opcode::B;
  Br.Target = "body";
  F->assignId(Br);
  F->entry()->instrs().push_back(Br);
  ASSERT_EQ(verifyFunction(*F), "");

  AuditResult R;
  auditCfgLoopIntegrity(Before.get(), *F, R);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(anyFindingContains(R, "irreducible")) << R.str();
}

TEST(AuditLoopIntegrity, CleanOnNaturalLoop) {
  auto M = parseOrDie(R"(
func main(1) {
entry:
  LI r32 = 5
head:
  AI r32 = r32, -1
  CI cr0 = r32, 0
  BT head, cr0.gt
exit:
  LI r3 = 0
  RET
}
)");
  ASSERT_TRUE(M);
  Function *F = M->findFunction("main");
  auto Before = cloneFunction(*F);
  AuditResult R;
  auditCfgLoopIntegrity(Before.get(), *F, R);
  EXPECT_TRUE(R.ok()) << R.str();
}

//===----------------------------------------------------------------------===//
// The harness: names the pass, diffs the IR, keeps the clean snapshot.
//===----------------------------------------------------------------------===//

TEST(PassAudit, NamesOffendingPassAndDiffsIR) {
  auto M = parseOrDie(GuardedLoad);
  ASSERT_TRUE(M);
  PassAudit Audit(AuditLevel::Boundaries, rs6000());
  AuditResult Clean = Audit.begin(*M);
  ASSERT_TRUE(Clean.ok()) << Clean.Report;

  hoistFirstToEntry(*M->findFunction("main"), "ld");
  AuditResult R = Audit.checkpoint(*M, "bogus-pass");
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Findings[0].Pass, "bogus-pass");
  EXPECT_NE(R.Report.find("after 'bogus-pass'"), std::string::npos)
      << R.Report;
  EXPECT_NE(R.Report.find("IR diff of 'main'"), std::string::npos)
      << R.Report;
  EXPECT_NE(R.Report.find("+ "), std::string::npos) << R.Report;
  EXPECT_NE(R.Report.find("- "), std::string::npos) << R.Report;

  // The snapshot did not advance past the corruption: re-checking reports
  // the same violation against the last clean state.
  AuditResult Again = Audit.checkpoint(*M, "later-pass");
  ASSERT_FALSE(Again.ok());
  EXPECT_EQ(Again.Findings[0].Pass, "later-pass");
}

TEST(PassAudit, UnchangedFunctionsAreSkipped) {
  auto M = parseOrDie(GuardedLoad);
  ASSERT_TRUE(M);
  PassAudit Audit(AuditLevel::Boundaries, rs6000());
  ASSERT_TRUE(Audit.begin(*M).ok());
  // No mutation: checkpoint must be clean (and cheap).
  EXPECT_TRUE(Audit.checkpoint(*M, "noop-pass").ok());
}

//===----------------------------------------------------------------------===//
// verifyModule call-arity satellite.
//===----------------------------------------------------------------------===//

TEST(Verifier, CallArityMustMatchCalleeDeclaration) {
  const char *Text = R"(
func callee(2) {
entry:
  LI r3 = 0
  RET
}
func main(1) {
entry:
  CALL callee, 1
  RET
}
)";
  std::string Err;
  auto M = parseModule(Text, &Err);
  ASSERT_TRUE(M) << Err;
  std::string V = verifyModule(*M);
  EXPECT_NE(V.find("declares"), std::string::npos) << V;
  EXPECT_NE(V.find("callee"), std::string::npos) << V;
}
