//===- tests/TestUtil.h - Shared test helpers -----------------*- C++ -*-===//
///
/// \file
/// Helpers shared by the pass tests: parse-or-fail, and the behavioural
/// oracle (simulate before and after a transformation and compare the
/// observable-behaviour fingerprint).
///
//===----------------------------------------------------------------------===//

#ifndef VSC_TESTS_TESTUTIL_H
#define VSC_TESTS_TESTUTIL_H

#include "ir/Module.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

namespace vsc {

inline std::unique_ptr<Module> parseOrDie(const std::string &Text) {
  std::string Err;
  auto M = parseModule(Text, &Err);
  EXPECT_TRUE(M) << Err;
  if (M) {
    std::string V = verifyModule(*M);
    EXPECT_EQ(V, "") << printModule(*M);
  }
  return M;
}

/// Applies \p Transform to a parsed copy of \p Text and checks that
/// observable behaviour (output, exit code, memory digest) is unchanged and
/// the result still verifies. \returns the transformed module for further
/// structural assertions.
template <typename Fn>
std::unique_ptr<Module>
transformPreservesBehaviour(const std::string &Text, Fn &&Transform,
                            const RunOptions &Opts = RunOptions(),
                            const MachineModel &Machine = rs6000()) {
  auto Before = parseOrDie(Text);
  auto After = parseOrDie(Text);
  if (!Before || !After)
    return nullptr;
  RunResult RBefore = simulate(*Before, Machine, Opts);
  EXPECT_FALSE(RBefore.Trapped) << RBefore.TrapMsg;

  Transform(*After);
  std::string V = verifyModule(*After);
  EXPECT_EQ(V, "") << printModule(*After);

  RunResult RAfter = simulate(*After, Machine, Opts);
  EXPECT_EQ(RBefore.fingerprint(), RAfter.fingerprint())
      << "--- before ---\n"
      << printModule(*Before) << "--- after ---\n"
      << printModule(*After);
  return After;
}

/// Counts instructions with opcode \p Op in \p F.
inline size_t countOps(const Function &F, Opcode Op) {
  size_t N = 0;
  for (const auto &BB : F.blocks())
    for (const Instr &I : BB->instrs())
      if (I.Op == Op)
        ++N;
  return N;
}

} // namespace vsc

#endif // VSC_TESTS_TESTUTIL_H
