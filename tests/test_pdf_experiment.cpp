//===- tests/test_pdf_experiment.cpp - PDF experiment driver ---------------===//
///
/// The pdf/PdfExperiment.h contract: dense collection is bit-identical to
/// the legacy string-keyed profile path on every workload kernel, results
/// are byte-identical at every thread count, a persisted profile drives
/// the same pipeline decisions as the in-process one, and the cached
/// ProfileCollector reproduces collectProfile exactly.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "pdf/PdfExperiment.h"
#include "profile/Counters.h"
#include "workloads/Spec.h"

#include <gtest/gtest.h>

using namespace vsc;

namespace {

std::vector<RunOptions> batteryFor(const Workload &W) {
  return {workloadInput(W.TrainScale), workloadInput(W.TrainScale + 1)};
}

} // namespace

// Acceptance: the dense path reproduces the legacy string-keyed profile
// bit-for-bit on every kernel — same battery, summed RunResult maps.
TEST(PdfExperiment, DenseParityWithStringKeyedPathAllKernels) {
  for (const Workload &W : specWorkloads()) {
    auto M = buildWorkload(W);
    std::vector<RunOptions> Battery = batteryFor(W);

    SimEngine Engine(*M, rs6000());
    std::string Err;
    DenseProfile P = collectDenseProfile(Engine, Battery, 1, &Err);
    ASSERT_EQ(Err, "") << W.Name;
    ProfileData Dense = P.toProfileData();

    ProfileData Legacy;
    for (const RunOptions &In : Battery) {
      RunResult R = simulate(*M, rs6000(), In);
      ASSERT_FALSE(R.Trapped) << W.Name;
      for (const auto &[K, V] : R.BlockCounts)
        Legacy.BlockCount[K] += V;
      for (const auto &[K, V] : R.EdgeCounts)
        Legacy.EdgeCount[K] += V;
    }
    EXPECT_EQ(Dense.BlockCount, Legacy.BlockCount) << W.Name;
    EXPECT_EQ(Dense.EdgeCount, Legacy.EdgeCount) << W.Name;
  }
}

TEST(PdfExperiment, CollectionIsThreadCountInvariant) {
  const Workload &W = specWorkloads()[2]; // eqntott
  auto M = buildWorkload(W);
  std::vector<RunOptions> Battery;
  for (int64_t S = 1; S <= 4; ++S)
    Battery.push_back(workloadInput(S));

  SimEngine E1(*M, rs6000()), E4(*M, rs6000());
  std::string Err1, Err4;
  DenseProfile P1 = collectDenseProfile(E1, Battery, 1, &Err1);
  DenseProfile P4 = collectDenseProfile(E4, Battery, 4, &Err4);
  EXPECT_EQ(Err1, "");
  EXPECT_EQ(Err4, "");
  EXPECT_EQ(P1.serialize(), P4.serialize());
}

TEST(PdfExperiment, ExperimentIsThreadCountInvariant) {
  const Workload &W = specWorkloads()[2];
  auto M = buildWorkload(W);
  PdfExperimentOptions Opts;
  Opts.Train = batteryFor(W);
  Opts.Test = {workloadInput(W.RefScale)};
  Opts.ProfileSource = PdfExperimentOptions::Source::Exact;

  Opts.Threads = 1;
  PdfExperimentResult R1 = runPdfExperiment(*M, Opts);
  Opts.Threads = 4;
  PdfExperimentResult R4 = runPdfExperiment(*M, Opts);
  ASSERT_TRUE(R1.ok()) << R1.Error;
  ASSERT_TRUE(R4.ok()) << R4.Error;
  EXPECT_EQ(R1.Profile.serialize(), R4.Profile.serialize());
  EXPECT_EQ(R1.PdfLayoutKept, R4.PdfLayoutKept);
  EXPECT_EQ(R1.BaselineCycles, R4.BaselineCycles);
  EXPECT_EQ(R1.GuidedCycles, R4.GuidedCycles);
  EXPECT_EQ(printModule(*R1.Guided), printModule(*R4.Guided));
}

// Acceptance: a profile saved by one process and loaded by another drives
// identical pipeline decisions. Round-tripping through serialized bytes is
// the in-process equivalent of the vscc handoff ci.sh exercises.
TEST(PdfExperiment, PersistedProfileDrivesIdenticalDecisions) {
  const Workload &W = specWorkloads()[2];
  auto M = buildWorkload(W);
  PdfExperimentOptions Opts;
  Opts.Train = batteryFor(W);
  Opts.Test = {workloadInput(W.RefScale)};
  Opts.ProfileSource = PdfExperimentOptions::Source::Exact;
  Opts.Superblocks = true;
  PdfExperimentResult Collected = runPdfExperiment(*M, Opts);
  ASSERT_TRUE(Collected.ok()) << Collected.Error;

  std::vector<uint8_t> Bytes = Collected.Profile.serialize();
  DenseProfile Loaded;
  ASSERT_EQ(DenseProfile::deserialize(Bytes.data(), Bytes.size(), Loaded),
            "");
  Opts.LoadedProfile = &Loaded;
  PdfExperimentResult Replayed = runPdfExperiment(*M, Opts);
  ASSERT_TRUE(Replayed.ok()) << Replayed.Error;

  EXPECT_EQ(Replayed.PdfLayoutKept, Collected.PdfLayoutKept);
  EXPECT_EQ(Replayed.GuidedCycles, Collected.GuidedCycles);
  EXPECT_EQ(printModule(*Replayed.Guided), printModule(*Collected.Guided));
}

TEST(PdfExperiment, StaleLoadedProfileFailsTheExperiment) {
  auto A = buildWorkload(specWorkloads()[2]);
  auto B = buildWorkload(specWorkloads()[0]);
  SimEngine Engine(*B, rs6000());
  std::string Err;
  DenseProfile Wrong = collectDenseProfile(
      Engine, {workloadInput(1)}, 1, &Err);
  ASSERT_EQ(Err, "");

  PdfExperimentOptions Opts;
  Opts.Test = {workloadInput(2)};
  Opts.LoadedProfile = &Wrong;
  PdfExperimentResult R = runPdfExperiment(*A, Opts);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("stale"), std::string::npos) << R.Error;
}

TEST(PdfExperiment, GuidedCompileKeepsBehaviour) {
  for (const Workload &W : specWorkloads()) {
    auto M = buildWorkload(W);
    PdfExperimentOptions Opts;
    Opts.Train = {workloadInput(W.TrainScale)};
    Opts.Test = {workloadInput(W.RefScale)};
    Opts.ProfileSource = PdfExperimentOptions::Source::Counters;
    PdfExperimentResult R = runPdfExperiment(*M, Opts);
    ASSERT_TRUE(R.ok()) << W.Name << ": " << R.Error;
    ASSERT_EQ(R.BaselineRuns.size(), R.GuidedRuns.size());
    for (size_t I = 0; I != R.BaselineRuns.size(); ++I)
      EXPECT_EQ(R.BaselineRuns[I].fingerprint(),
                R.GuidedRuns[I].fingerprint())
          << W.Name;
    EXPECT_GT(R.BaselineCycles, 0u) << W.Name;
    EXPECT_GT(R.GuidedCycles, 0u) << W.Name;
  }
}

// Training must happen on a run-ready module: the raw frontend output
// has no prologs, so gcc's entry misreads its scale argument and the old
// path trained on a garbage input. The experiment's feedback profile
// must match ground truth from a prepared module at the TRUE scale.
TEST(PdfExperiment, TrainsOnRunReadyModules) {
  const Workload &W = specWorkloads()[5]; // gcc
  auto M = buildWorkload(W);
  PdfExperimentOptions Opts;
  Opts.Train = {workloadInput(W.TrainScale)};
  Opts.Test = {workloadInput(W.RefScale)};
  Opts.ProfileSource = PdfExperimentOptions::Source::Exact;
  PdfExperimentResult R = runPdfExperiment(*M, Opts);
  ASSERT_TRUE(R.ok()) << R.Error;

  auto Prepared = buildWorkload(W);
  optimize(*Prepared, OptLevel::None);
  RunResult Ground =
      simulate(*Prepared, rs6000(), workloadInput(W.TrainScale));
  EXPECT_EQ(R.Feedback.BlockCount, Ground.BlockCounts);
  EXPECT_EQ(R.Feedback.EdgeCount, Ground.EdgeCounts);
  // The profile still validates against the raw source module.
  EXPECT_EQ(R.Profile.validateFor(*M), "");
}

// The cached collector (instrument once, predecode once) must reproduce
// the rebuild-per-run collectProfile exactly.
TEST(PdfExperiment, CachedCollectorMatchesLegacyCollectProfile) {
  const Workload &W = specWorkloads()[2];
  RunOptions In = workloadInput(W.TrainScale);

  auto Train = buildWorkload(W);
  auto LegacyTarget = buildWorkload(W);
  ProfileData Legacy = collectProfile(*Train, *LegacyTarget, rs6000(), In);

  auto Source = buildWorkload(W);
  auto CachedTarget = buildWorkload(W);
  ProfileCollector Collector(*Source, rs6000());
  std::string Err;
  ProfileData Cached =
      Collector.profileFor(*CachedTarget, {In}, 1, &Err);
  ASSERT_EQ(Err, "");

  EXPECT_EQ(Cached.BlockCount, Legacy.BlockCount);
  EXPECT_EQ(Cached.EdgeCount, Legacy.EdgeCount);
  // Both paths apply the same deterministic planCounters surgery.
  EXPECT_EQ(printModule(*CachedTarget), printModule(*LegacyTarget));
}
