//===- tests/test_cfg.cpp - CFG layer: edges, dominators, loops, editing ---===//

#include "TestUtil.h"
#include "cfg/CfgEdit.h"
#include "cfg/Dominators.h"
#include "cfg/Loops.h"

#include <gtest/gtest.h>

using namespace vsc;

namespace {

/// A diamond inside a loop with a side exit:
///   entry -> head -> (left|right) -> join -> head | exit
const char *LoopDiamond = R"(
func main(1) {
entry:
  LI r32 = 5
  LI r33 = 0
head:
  AI r33 = r33, 1
  ANDI r34 = r33, 1
  CI cr0 = r34, 0
  BT left, cr0.eq
right:
  AI r35 = r35, 2
  B join
left:
  AI r35 = r35, 3
join:
  C cr1 = r33, r32
  BF head, cr1.eq
exit:
  LR r3 = r35
  CALL print_int, 1
  RET
}
)";

} // namespace

TEST(Cfg, SuccessorsAndPredecessors) {
  auto M = parseOrDie(LoopDiamond);
  Function &F = *M->findFunction("main");
  Cfg G(F);
  BasicBlock *Head = F.findBlock("head");
  BasicBlock *Right = F.findBlock("right");
  BasicBlock *Left = F.findBlock("left");
  BasicBlock *Join = F.findBlock("join");

  ASSERT_EQ(G.succs(Head).size(), 2u);
  EXPECT_TRUE(G.succs(Head)[0].IsTaken);
  EXPECT_EQ(G.succs(Head)[0].To, Left);
  EXPECT_FALSE(G.succs(Head)[1].IsTaken);
  EXPECT_EQ(G.succs(Head)[1].To, Right);

  ASSERT_EQ(G.preds(Join).size(), 2u);
  ASSERT_EQ(G.preds(Head).size(), 2u); // entry fallthrough + join back edge
  EXPECT_EQ(G.succs(Right).size(), 1u);
  EXPECT_EQ(G.succs(Right)[0].To, Join);
}

TEST(Cfg, RpoVisitsEveryReachableBlockOnce) {
  auto M = parseOrDie(LoopDiamond);
  Function &F = *M->findFunction("main");
  Cfg G(F);
  EXPECT_EQ(G.rpo().size(), F.size());
  EXPECT_EQ(G.rpo().front(), F.entry());
  // RPO index of a block is smaller than that of blocks it dominates.
  EXPECT_LT(G.rpoIndex(F.findBlock("head")), G.rpoIndex(F.findBlock("join")));
}

TEST(Cfg, UnreachableBlocksExcluded) {
  auto M = parseOrDie(R"(
func main(0) {
entry:
  LI r3 = 0
  RET
island:
  LI r3 = 1
  RET
}
)");
  Function &F = *M->findFunction("main");
  Cfg G(F);
  EXPECT_FALSE(G.isReachable(F.findBlock("island")));
  EXPECT_EQ(removeUnreachableBlocks(F), 1u);
  EXPECT_EQ(F.size(), 1u);
}

TEST(Dominators, LoopDiamondRelations) {
  auto M = parseOrDie(LoopDiamond);
  Function &F = *M->findFunction("main");
  Cfg G(F);
  Dominators Dom(G);
  BasicBlock *Entry = F.entry();
  BasicBlock *Head = F.findBlock("head");
  BasicBlock *Left = F.findBlock("left");
  BasicBlock *Right = F.findBlock("right");
  BasicBlock *Join = F.findBlock("join");
  BasicBlock *Exit = F.findBlock("exit");

  EXPECT_TRUE(Dom.dominates(Entry, Exit));
  EXPECT_TRUE(Dom.dominates(Head, Join));
  EXPECT_TRUE(Dom.dominates(Head, Exit));
  EXPECT_FALSE(Dom.dominates(Left, Join));
  EXPECT_FALSE(Dom.dominates(Right, Join));
  EXPECT_EQ(Dom.idom(Join), Head);
  EXPECT_EQ(Dom.idom(Left), Head);
  EXPECT_EQ(Dom.idom(Head), Entry);
  EXPECT_EQ(Dom.idom(Entry), nullptr);
  // Reflexive.
  EXPECT_TRUE(Dom.dominates(Join, Join));
}

TEST(Dominators, PostDominators) {
  auto M = parseOrDie(LoopDiamond);
  Function &F = *M->findFunction("main");
  Cfg G(F);
  Dominators PDom(G, /*Post=*/true);
  BasicBlock *Join = F.findBlock("join");
  BasicBlock *Left = F.findBlock("left");
  BasicBlock *Exit = F.findBlock("exit");
  EXPECT_TRUE(PDom.dominates(Join, Left));
  EXPECT_TRUE(PDom.dominates(Exit, Join));
  EXPECT_FALSE(PDom.dominates(Left, Join));
}

TEST(Loops, DetectsLoopShape) {
  auto M = parseOrDie(LoopDiamond);
  Function &F = *M->findFunction("main");
  Cfg G(F);
  Dominators Dom(G);
  LoopInfo LI(G, Dom);
  ASSERT_EQ(LI.loops().size(), 1u);
  const Loop &L = *LI.loops()[0];
  EXPECT_EQ(L.Header, F.findBlock("head"));
  EXPECT_EQ(L.Blocks.size(), 4u);
  EXPECT_TRUE(L.contains(F.findBlock("left")));
  EXPECT_TRUE(L.contains(F.findBlock("join")));
  EXPECT_FALSE(L.contains(F.entry()));
  EXPECT_FALSE(L.contains(F.findBlock("exit")));
  ASSERT_EQ(L.Latches.size(), 1u);
  EXPECT_EQ(L.Latches[0], F.findBlock("join"));
  ASSERT_EQ(L.Exits.size(), 1u);
  EXPECT_EQ(L.Exits[0].To, F.findBlock("exit"));
  EXPECT_TRUE(L.isInnermost());
}

TEST(Loops, NestingDepths) {
  auto M = parseOrDie(R"(
func main(0) {
entry:
  LI r32 = 3
  MTCTR r32
outer:
  LI r33 = 2
  LR r40 = r33
inner:
  SI r40 = r40, 1
  CI cr0 = r40, 0
  BF inner, cr0.eq
latch:
  BCT outer
exit:
  LI r3 = 0
  RET
}
)");
  Function &F = *M->findFunction("main");
  Cfg G(F);
  Dominators Dom(G);
  LoopInfo LI(G, Dom);
  ASSERT_EQ(LI.loops().size(), 2u);
  Loop *Inner = LI.loopFor(F.findBlock("inner"));
  ASSERT_TRUE(Inner);
  EXPECT_EQ(Inner->Depth, 2u);
  EXPECT_EQ(Inner->Header, F.findBlock("inner"));
  ASSERT_TRUE(Inner->Parent);
  EXPECT_EQ(Inner->Parent->Header, F.findBlock("outer"));
  EXPECT_EQ(Inner->Parent->Depth, 1u);
  EXPECT_FALSE(Inner->Parent->isInnermost());
  EXPECT_EQ(LI.innermostLoops().size(), 1u);
  EXPECT_EQ(LI.topLevelLoops().size(), 1u);
}

TEST(CfgEdit, SplitFallthroughEdge) {
  auto M = parseOrDie(LoopDiamond);
  Function &F = *M->findFunction("main");
  Cfg G(F);
  // head -> right is the fallthrough edge.
  const CfgEdge *E = nullptr;
  for (const CfgEdge &Edge : G.succs(F.findBlock("head")))
    if (!Edge.IsTaken)
      E = &Edge;
  ASSERT_TRUE(E);
  size_t SizeBefore = F.size();
  BasicBlock *S = splitEdge(F, *E);
  EXPECT_EQ(F.size(), SizeBefore + 1);
  // The new block sits between head and right in layout.
  EXPECT_EQ(F.indexOf(S), F.indexOf(F.findBlock("head")) + 1);
  EXPECT_EQ(verifyFunction(F), "");
  RunOptions Opts;
  Opts.Args = {0};
  RunResult R = simulate(*M, rs6000(), Opts);
  EXPECT_EQ(R.Output, "12\n"); // odd iters +2 (x3), even iters +3 (x2)
}

TEST(CfgEdit, SplitTakenEdge) {
  auto M = parseOrDie(LoopDiamond);
  auto Ref = parseOrDie(LoopDiamond);
  RunResult RR = simulate(*Ref, rs6000());
  Function &F = *M->findFunction("main");
  Cfg G(F);
  const CfgEdge *E = nullptr;
  for (const CfgEdge &Edge : G.succs(F.findBlock("head")))
    if (Edge.IsTaken)
      E = &Edge;
  ASSERT_TRUE(E);
  splitEdge(F, *E);
  EXPECT_EQ(verifyFunction(F), "");
  RunResult R = simulate(*M, rs6000());
  EXPECT_EQ(RR.fingerprint(), R.fingerprint());
}

TEST(CfgEdit, EnsurePreheaderCreatesOne) {
  auto M = parseOrDie(LoopDiamond);
  auto Ref = parseOrDie(LoopDiamond);
  RunResult RR = simulate(*Ref, rs6000());
  Function &F = *M->findFunction("main");
  Cfg G(F);
  Dominators Dom(G);
  LoopInfo LI(G, Dom);
  BasicBlock *PH = ensurePreheader(F, G, *LI.loops()[0]);
  ASSERT_TRUE(PH);
  // The preheader's single successor is the header, and the only
  // out-of-loop predecessor of the header is the preheader.
  Cfg G2(F);
  ASSERT_EQ(G2.succs(PH).size(), 1u);
  EXPECT_EQ(G2.succs(PH)[0].To, F.findBlock("head"));
  EXPECT_EQ(verifyFunction(F), "");
  RunResult R = simulate(*M, rs6000());
  EXPECT_EQ(RR.fingerprint(), R.fingerprint());
}

TEST(CfgEdit, LayoutBlocksPreservesSemantics) {
  auto M = parseOrDie(LoopDiamond);
  auto Ref = parseOrDie(LoopDiamond);
  RunResult RR = simulate(*Ref, rs6000());
  Function &F = *M->findFunction("main");
  // Reverse everything except the entry.
  std::vector<BasicBlock *> Order;
  Order.push_back(F.entry());
  for (size_t I = F.size(); I-- > 1;)
    Order.push_back(F.blocks()[I].get());
  layoutBlocks(F, Order);
  EXPECT_EQ(verifyFunction(F), "");
  RunResult R = simulate(*M, rs6000());
  EXPECT_EQ(RR.fingerprint(), R.fingerprint());
  // And straightening afterwards keeps it correct too.
  straighten(F);
  EXPECT_EQ(verifyFunction(F), "");
  RunResult R2 = simulate(*M, rs6000());
  EXPECT_EQ(RR.fingerprint(), R2.fingerprint());
}

TEST(CfgEdit, StraightenMergesChains) {
  auto M = parseOrDie(R"(
func main(0) {
entry:
  LI r32 = 1
  B b1
b1:
  AI r32 = r32, 2
  B b2
b2:
  AI r32 = r32, 3
  LR r3 = r32
  CALL print_int, 1
  RET
}
)");
  Function &F = *M->findFunction("main");
  straighten(F);
  EXPECT_EQ(F.size(), 1u);
  EXPECT_EQ(countOps(F, Opcode::B), 0u);
  RunResult R = simulate(*M, rs6000());
  EXPECT_EQ(R.Output, "6\n");
}

TEST(CfgEdit, StraightenInvertsBranchToFallthrough) {
  auto M = parseOrDie(R"(
func main(1) {
entry:
  CI cr0 = r3, 0
  BT next, cr0.eq
  B other
next:
  LI r3 = 1
  CALL print_int, 1
  RET
other:
  LI r3 = 2
  CALL print_int, 1
  RET
}
)");
  Function &F = *M->findFunction("main");
  straighten(F);
  EXPECT_EQ(verifyFunction(F), "");
  // The BT-to-fallthrough + B pair becomes a single inverted branch.
  EXPECT_EQ(countOps(F, Opcode::B), 0u);
  EXPECT_EQ(countOps(F, Opcode::BF), 1u);
  RunOptions Opts;
  Opts.Args = {0};
  EXPECT_EQ(simulate(*M, rs6000(), Opts).Output, "1\n");
  Opts.Args = {5};
  EXPECT_EQ(simulate(*M, rs6000(), Opts).Output, "2\n");
}
