//===- tests/test_unspeculation.cpp - Unspeculation pass -------------------===//

#include "TestUtil.h"
#include "opt/Classical.h"
#include "vliw/Unspeculation.h"

#include <gtest/gtest.h>

using namespace vsc;

namespace {

/// The paper's C example: flag=1; if (cond) { ...; flag=0; }
/// becomes: if (cond) { ...; flag=0; } else { flag=1; }.
const char *FlagExample = R"(
func main(1) {
entry:
  LI r40 = 1
  CI cr0 = r3, 0
  BT skip, cr0.eq
body:
  AI r41 = r3, 100
  LI r40 = 0
skip:
  LR r3 = r40
  CALL print_int, 1
  RET
}
)";

size_t blockOps(const Function &F, const char *Label, Opcode Op) {
  const BasicBlock *BB = F.findBlock(Label);
  if (!BB)
    return 0;
  size_t N = 0;
  for (const Instr &I : BB->instrs())
    if (I.Op == Op)
      ++N;
  return N;
}

} // namespace

TEST(Unspeculation, FlagExampleMovesToElseArm) {
  for (int64_t Cond : {0, 1}) {
    RunOptions Opts;
    Opts.Args = {Cond};
    auto M = transformPreservesBehaviour(
        FlagExample, [](Module &Mod) { unspeculate(*Mod.findFunction("main")); },
        Opts);
    ASSERT_TRUE(M);
    const Function *F = M->findFunction("main");
    // "LI r40 = 1" must no longer execute on the fall-through (cond!=0)
    // path: it leaves the entry block.
    EXPECT_EQ(blockOps(*F, "entry", Opcode::LI), 0u) << printFunction(*F);
  }
}

TEST(Unspeculation, FlagExamplePathlength) {
  // On the cond!=0 path the flag=1 instruction no longer executes.
  auto Before = parseOrDie(FlagExample);
  auto After = parseOrDie(FlagExample);
  unspeculate(*After->findFunction("main"));
  RunOptions Opts;
  Opts.Args = {1};
  RunResult RB = simulate(*Before, rs6000(), Opts);
  RunResult RA = simulate(*After, rs6000(), Opts);
  EXPECT_EQ(RB.fingerprint(), RA.fingerprint());
  EXPECT_LT(RA.DynInstrs, RB.DynInstrs);
}

TEST(Unspeculation, PushesChainOfInstructions) {
  // A two-instruction computation used only on the taken side drains down
  // one instruction at a time.
  const char *Text = R"(
func main(1) {
entry:
  AI r40 = r3, 7
  MULI r41 = r40, 3
  CI cr0 = r3, 0
  BT use, cr0.eq
other:
  LI r3 = -1
  CALL print_int, 1
  RET
use:
  LR r3 = r41
  CALL print_int, 1
  RET
}
)";
  for (int64_t Cond : {0, 5}) {
    RunOptions Opts;
    Opts.Args = {Cond};
    auto M = transformPreservesBehaviour(
        Text, [](Module &Mod) { unspeculate(*Mod.findFunction("main")); },
        Opts);
    ASSERT_TRUE(M);
    const Function *F = M->findFunction("main");
    EXPECT_EQ(blockOps(*F, "entry", Opcode::AI), 0u) << printFunction(*F);
    EXPECT_EQ(blockOps(*F, "entry", Opcode::MULI), 0u) << printFunction(*F);
  }
}

TEST(Unspeculation, StaysWhenLiveOnBothSides) {
  const char *Text = R"(
func main(1) {
entry:
  AI r40 = r3, 7
  CI cr0 = r3, 0
  BT left, cr0.eq
right:
  LR r3 = r40
  CALL print_int, 1
  RET
left:
  AI r3 = r40, 1
  CALL print_int, 1
  RET
}
)";
  auto M = transformPreservesBehaviour(
      Text, [](Module &Mod) { unspeculate(*Mod.findFunction("main")); });
  ASSERT_TRUE(M);
  EXPECT_EQ(blockOps(*M->findFunction("main"), "entry", Opcode::AI), 1u);
}

TEST(Unspeculation, StaysWhenUsedBeforeBranch) {
  const char *Text = R"(
func main(1) {
entry:
  AI r40 = r3, 7
  C cr0 = r40, r3
  BT left, cr0.eq
right:
  LI r3 = 0
  CALL print_int, 1
  RET
left:
  LR r3 = r40
  CALL print_int, 1
  RET
}
)";
  auto M = transformPreservesBehaviour(
      Text, [](Module &Mod) { unspeculate(*Mod.findFunction("main")); });
  ASSERT_TRUE(M);
  // The compare between the AI and the branch reads r40: rule 2b.
  EXPECT_EQ(blockOps(*M->findFunction("main"), "entry", Opcode::AI), 1u);
}

TEST(Unspeculation, PushesLoadOutOfLoopExit) {
  // The load feeds only post-loop code; it must leave the BCT loop through
  // the exit edge, shrinking the loop body.
  const char *Text = R"(
global g : 8 = [9 0 0 0]
func main(0) {
entry:
  LI r32 = 200
  MTCTR r32
  LTOC r33 = .g
  LI r36 = 0
loop:
  AI r36 = r36, 2
  L r40 = 0(r33) !g
  BCT loop
exit:
  A r3 = r36, r40
  CALL print_int, 1
  RET
}
)";
  auto M = transformPreservesBehaviour(
      Text, [](Module &Mod) { unspeculate(*Mod.findFunction("main")); });
  ASSERT_TRUE(M);
  const Function *F = M->findFunction("main");
  const BasicBlock *Loop = F->findBlock("loop");
  ASSERT_TRUE(Loop);
  for (const Instr &I : Loop->instrs())
    EXPECT_FALSE(I.isLoad()) << printFunction(*F);

  auto Before = parseOrDie(Text);
  RunResult RB = simulate(*Before, rs6000());
  RunResult RA = simulate(*M, rs6000());
  EXPECT_LT(RA.DynInstrs, RB.DynInstrs);
  EXPECT_LT(RA.Cycles, RB.Cycles);
}

TEST(Unspeculation, DoesNotPushAcrossBctBackEdge) {
  // r40 is live around the loop (used at the header side); it must not be
  // pushed onto the back edge.
  const char *Text = R"(
func main(0) {
entry:
  LI r32 = 10
  MTCTR r32
  LI r36 = 0
  LI r40 = 0
loop:
  A r36 = r36, r40
  AI r40 = r36, 1
  BCT loop
exit:
  LR r3 = r36
  CALL print_int, 1
  RET
}
)";
  auto M = transformPreservesBehaviour(
      Text, [](Module &Mod) { unspeculate(*Mod.findFunction("main")); });
  ASSERT_TRUE(M);
  const BasicBlock *Loop = M->findFunction("main")->findBlock("loop");
  ASSERT_TRUE(Loop);
  EXPECT_EQ(Loop->size(), 3u);
}

TEST(Unspeculation, ReorderRpoPreservesBehaviour) {
  // Blocks deliberately laid out in a scrambled order.
  const char *Text = R"(
func main(1) {
entry:
  CI cr0 = r3, 0
  BT b2, cr0.eq
  B b1
b3:
  LR r3 = r40
  CALL print_int, 1
  RET
b1:
  LI r40 = 10
  B b3
b2:
  LI r40 = 20
  B b3
}
)";
  for (int64_t Cond : {0, 1}) {
    RunOptions Opts;
    Opts.Args = {Cond};
    transformPreservesBehaviour(
        Text,
        [](Module &Mod) { reorderReversePostorder(*Mod.findFunction("main")); },
        Opts);
    transformPreservesBehaviour(
        Text, [](Module &Mod) { unspeculate(*Mod.findFunction("main")); },
        Opts);
  }
}

TEST(Unspeculation, VolatileLoadStays) {
  const char *Text = R"(
global v : 8 volatile
func main(1) {
entry:
  LTOC r33 = .v
  L r40 = 0(r33) !v !volatile
  CI cr0 = r3, 0
  BT use, cr0.eq
other:
  LI r3 = 0
  CALL print_int, 1
  RET
use:
  LR r3 = r40
  CALL print_int, 1
  RET
}
)";
  auto M = transformPreservesBehaviour(
      Text, [](Module &Mod) { unspeculate(*Mod.findFunction("main")); });
  ASSERT_TRUE(M);
  EXPECT_EQ(blockOps(*M->findFunction("main"), "entry", Opcode::L), 1u);
}
