//===- tests/test_parallel.cpp - Parallel-driver determinism ---------------===//
///
/// The parallel per-function driver's contract is byte-identical output at
/// every thread count. These tests compile the six SPEC kernel modules and
/// fifty fuzz-generated programs at Threads=1 and Threads=4 and require
/// the printed IR to match byte for byte — and, for the kernels, the
/// simulated cycle counts and stall breakdowns to match exactly too
/// (timing, not just behaviour, is schedule-independent).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "frontend/Frontend.h"
#include "vliw/Pipeline.h"
#include "workloads/RandomProgram.h"
#include "workloads/Spec.h"

#include <gtest/gtest.h>

using namespace vsc;

namespace {

std::unique_ptr<Module> optimizeAt(const Workload &W, unsigned Threads) {
  auto M = buildWorkload(W);
  PipelineOptions Opts;
  Opts.Threads = Threads;
  optimize(*M, OptLevel::Vliw, Opts);
  return M;
}

class ParallelSpecTest : public ::testing::TestWithParam<size_t> {};
class ParallelFuzzTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(ParallelSpecTest, ByteIdenticalIrAndIdenticalTiming) {
  const Workload &W = specWorkloads()[GetParam()];
  auto Serial = optimizeAt(W, 1);
  auto Parallel = optimizeAt(W, 4);
  ASSERT_TRUE(Serial && Parallel);

  EXPECT_EQ(printModule(*Serial), printModule(*Parallel)) << W.Name;

  RunOptions In = workloadInput(W.TrainScale);
  RunResult RS = simulate(*Serial, rs6000(), In);
  RunResult RP = simulate(*Parallel, rs6000(), In);
  ASSERT_FALSE(RS.Trapped) << W.Name << ": " << RS.TrapMsg;
  EXPECT_EQ(RS.fingerprint(), RP.fingerprint()) << W.Name;
  EXPECT_EQ(RS.Cycles, RP.Cycles) << W.Name;
  EXPECT_EQ(RS.OperandStallCycles, RP.OperandStallCycles) << W.Name;
  EXPECT_EQ(RS.BranchStallCycles, RP.BranchStallCycles) << W.Name;
}

INSTANTIATE_TEST_SUITE_P(
    AllSix, ParallelSpecTest, ::testing::Range<size_t>(0, 6),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      return specWorkloads()[Info.param].Name;
    });

TEST_P(ParallelFuzzTest, ByteIdenticalIr) {
  // Ten seeds per instance, fifty total across the suite — sharded so
  // ctest -j runs them concurrently.
  for (uint64_t Seed = GetParam() * 10 + 1; Seed <= GetParam() * 10 + 10;
       ++Seed) {
    FrontendOptions FOpts;
    FOpts.AssumeSafeLoads = true;
    std::string Src = generateRandomMiniC(Seed);
    CompileResult A = compileMiniC(Src, FOpts);
    CompileResult B = compileMiniC(Src, FOpts);
    ASSERT_TRUE(A.ok() && B.ok()) << "seed " << Seed;

    PipelineOptions One;
    One.Threads = 1;
    PipelineOptions Four;
    Four.Threads = 4;
    optimize(*A.M, OptLevel::Vliw, One);
    optimize(*B.M, OptLevel::Vliw, Four);
    EXPECT_EQ(printModule(*A.M), printModule(*B.M)) << "seed " << Seed;
  }
}

INSTANTIATE_TEST_SUITE_P(FiftySeeds, ParallelFuzzTest,
                         ::testing::Range<uint64_t>(0, 5));
