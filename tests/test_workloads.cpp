//===- tests/test_workloads.cpp - Workload kernels (spec + irregular) ------===//
///
/// Behaviour equivalence of every registered kernel — the six SPECint92
/// substitutes and the five irregular kernels — across every pipeline
/// level, machine model and thread count (the repository-wide correctness
/// net for experiment E1 and the irregular suite W1), plus shape checks
/// on the speedups, host-reference checksum validation for the irregular
/// kernels, and a full audited pipeline run (PassAudit + ExecOracle +
/// AliasAudit) per kernel — the dispatch kernels are the first real
/// indirect-branch stress for the alias audit's replay battery.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "profile/Counters.h"
#include "vliw/Pipeline.h"
#include "workloads/Registry.h"

#include <gtest/gtest.h>

using namespace vsc;

namespace {

class WorkloadTest : public ::testing::TestWithParam<size_t> {
protected:
  const Workload &workload() const {
    return workloads::allKernels()[GetParam()];
  }
};

} // namespace

TEST_P(WorkloadTest, CompilesAndVerifies) {
  auto M = buildWorkload(workload());
  ASSERT_TRUE(M);
  EXPECT_EQ(verifyModule(*M), "");
}

TEST_P(WorkloadTest, AllOptLevelsAgree) {
  const Workload &W = workload();
  RunOptions In = workloadInput(W.TrainScale);

  auto Base = buildWorkload(W);
  optimize(*Base, OptLevel::None);
  RunResult RB = simulate(*Base, rs6000(), In);
  ASSERT_FALSE(RB.Trapped) << RB.TrapMsg;
  ASSERT_FALSE(RB.Output.empty());

  for (OptLevel L : {OptLevel::Classical, OptLevel::Vliw}) {
    auto M = buildWorkload(W);
    optimize(*M, L);
    EXPECT_EQ(verifyModule(*M), "");
    RunResult R = simulate(*M, rs6000(), In);
    EXPECT_EQ(RB.fingerprint(), R.fingerprint())
        << W.Name << " at " << optLevelName(L);
  }
}

// The full matrix the irregular-suite issue asks for: every OptLevel x
// machine x VSC_THREADS={1,4} cell must print the same checksum, and the
// compiled IR must be byte-identical across thread counts in every cell.
TEST_P(WorkloadTest, ChecksumStableAcrossLevelsMachinesAndThreads) {
  const Workload &W = workload();
  RunOptions In = workloadInput(W.TrainScale);

  auto Base = buildWorkload(W);
  optimize(*Base, OptLevel::None);
  RunResult RB = simulate(*Base, rs6000(), In);
  ASSERT_FALSE(RB.Trapped) << W.Name << ": " << RB.TrapMsg;

  for (OptLevel L : {OptLevel::None, OptLevel::Classical, OptLevel::Vliw}) {
    for (const MachineModel &MM : {rs6000(), power2(), ppc601()}) {
      std::string Ir[2];
      for (unsigned T : {1u, 4u}) {
        auto M = buildWorkload(W);
        PipelineOptions Opts;
        Opts.Machine = MM;
        Opts.Threads = T;
        optimize(*M, L, Opts);
        Ir[T == 4] = printModule(*M);
        RunResult R = simulate(*M, MM, In);
        EXPECT_EQ(RB.fingerprint(), R.fingerprint())
            << W.Name << " at " << optLevelName(L) << " on " << MM.Name
            << " threads=" << T;
      }
      EXPECT_EQ(Ir[0], Ir[1]) << W.Name << " at " << optLevelName(L)
                              << " on " << MM.Name
                              << ": IR differs across thread counts";
    }
  }
}

// Every kernel must survive the audited pipeline: semantic pass audits
// and the differential execution oracle at Boundaries, plus the dynamic
// alias audit replaying every NoAlias claim against simulated addresses.
// (Each of these aborts the process on a finding.)
TEST_P(WorkloadTest, AuditedOracleAliasPipelineClean) {
  const Workload &W = workload();
  auto Base = buildWorkload(W);
  optimize(*Base, OptLevel::None);
  RunOptions In = workloadInput(W.TrainScale);
  RunResult RB = simulate(*Base, rs6000(), In);
  ASSERT_FALSE(RB.Trapped) << RB.TrapMsg;

  auto M = buildWorkload(W);
  PipelineOptions Opts;
  Opts.Audit = AuditLevel::Boundaries;
  Opts.Oracle = OracleLevel::Boundaries;
  Opts.AliasAudit = true;
  optimize(*M, OptLevel::Vliw, Opts);
  EXPECT_EQ(verifyModule(*M), "");
  RunResult R = simulate(*M, rs6000(), In);
  EXPECT_EQ(RB.fingerprint(), R.fingerprint()) << W.Name;
}

TEST_P(WorkloadTest, VliwBeatsClassicalOnCycles) {
  const Workload &W = workload();
  RunOptions In = workloadInput(W.TrainScale);
  auto MC = buildWorkload(W);
  optimize(*MC, OptLevel::Classical);
  auto MV = buildWorkload(W);
  optimize(*MV, OptLevel::Vliw);
  RunResult RC = simulate(*MC, rs6000(), In);
  RunResult RV = simulate(*MV, rs6000(), In);
  ASSERT_FALSE(RC.Trapped) << RC.TrapMsg;
  ASSERT_FALSE(RV.Trapped) << RV.TrapMsg;
  EXPECT_LT(RV.Cycles, RC.Cycles) << W.Name;
}

TEST_P(WorkloadTest, AllMachineModelsAgreeFunctionally) {
  const Workload &W = workload();
  RunOptions In = workloadInput(W.TrainScale);
  auto M = buildWorkload(W);
  optimize(*M, OptLevel::Vliw);
  RunResult R1 = simulate(*M, rs6000(), In);
  RunResult R2 = simulate(*M, power2(), In);
  RunResult R3 = simulate(*M, ppc601(), In);
  EXPECT_EQ(R1.fingerprint(), R2.fingerprint()) << W.Name;
  EXPECT_EQ(R1.fingerprint(), R3.fingerprint()) << W.Name;
  // Power2's second FXU should never hurt.
  EXPECT_LE(R2.Cycles, R1.Cycles) << W.Name;
}

TEST_P(WorkloadTest, PdfPipelinePreservesBehaviour) {
  const Workload &W = workload();
  auto Base = buildWorkload(W);
  optimize(*Base, OptLevel::None);
  RunOptions Ref = workloadInput(W.RefScale);
  RunResult RB = simulate(*Base, rs6000(), Ref);

  auto Train = buildWorkload(W);
  auto Guided = buildWorkload(W);
  ProfileData P = collectProfile(*Train, *Guided, rs6000(),
                                 workloadInput(W.TrainScale));
  ASSERT_FALSE(P.BlockCount.empty()) << W.Name;
  PipelineOptions Opts;
  Opts.Profile = &P;
  optimize(*Guided, OptLevel::Vliw, Opts);
  EXPECT_EQ(verifyModule(*Guided), "");
  RunResult RG = simulate(*Guided, rs6000(), Ref);
  EXPECT_EQ(RB.fingerprint(), RG.fingerprint()) << W.Name;
}

TEST_P(WorkloadTest, ScalesLinearly) {
  // Tripling the scale parameter roughly triples work (sanity of the
  // benchmark harness's per-iteration math); allow slack for the
  // constant setup phase.
  const Workload &W = workload();
  auto M = buildWorkload(W);
  optimize(*M, OptLevel::Classical);
  RunResult R1 = simulate(*M, rs6000(), workloadInput(4));
  RunResult R2 = simulate(*M, rs6000(), workloadInput(12));
  ASSERT_FALSE(R1.Trapped) << R1.TrapMsg;
  double Ratio = static_cast<double>(R2.Cycles) / R1.Cycles;
  EXPECT_GT(Ratio, 1.8) << W.Name;
  EXPECT_LT(Ratio, 3.2) << W.Name;
}

// The irregular kernels are additionally self-checking against an
// independent host-side C++ implementation of the same algorithm: the
// printed checksum must equal irregularReference at both scales.
TEST_P(WorkloadTest, IrregularChecksumMatchesHostReference) {
  const Workload &W = workload();
  if (!workloads::isIrregular(W))
    GTEST_SKIP() << "spec kernels have no host mirror";
  for (int64_t Scale : {W.TrainScale, W.RefScale}) {
    auto M = buildWorkload(W);
    optimize(*M, OptLevel::Vliw);
    RunResult R = simulate(*M, rs6000(), workloadInput(Scale));
    ASSERT_FALSE(R.Trapped) << W.Name << ": " << R.TrapMsg;
    EXPECT_EQ(R.Output,
              std::to_string(irregularReference(W, Scale)) + "\n")
        << W.Name << " at scale " << Scale;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, WorkloadTest,
                         ::testing::Range<size_t>(
                             0, workloads::allKernels().size()),
                         [](const ::testing::TestParamInfo<size_t> &Info) {
                           return workloads::allKernels()[Info.param].Name;
                         });

TEST(Workloads, SpecSixStayInPaperOrder) {
  const auto &W = specWorkloads();
  ASSERT_EQ(W.size(), 6u);
  EXPECT_EQ(W[0].Name, "espresso");
  EXPECT_EQ(W[1].Name, "li");
  EXPECT_EQ(W[2].Name, "eqntott");
  EXPECT_EQ(W[3].Name, "compress");
  EXPECT_EQ(W[4].Name, "sc");
  EXPECT_EQ(W[5].Name, "gcc");
}

TEST(Workloads, RegistryIsSpecThenIrregular) {
  const auto &All = workloads::allKernels();
  ASSERT_EQ(All.size(), specWorkloads().size() + irregularWorkloads().size());
  for (size_t I = 0; I != specWorkloads().size(); ++I)
    EXPECT_EQ(All[I].Name, specWorkloads()[I].Name);
  for (size_t I = 0; I != irregularWorkloads().size(); ++I)
    EXPECT_EQ(All[specWorkloads().size() + I].Name,
              irregularWorkloads()[I].Name);
  for (const Workload &W : All)
    EXPECT_EQ(workloads::findKernel(W.Name), &All[&W - All.data()]);
  EXPECT_EQ(workloads::findKernel("no-such-kernel"), nullptr);
}

// The threaded-dispatch interpreter is the same virtual machine as the
// ladder-dispatch one: identical opcode stream, identical handler
// effects — so the two kernels must print identical checksums at every
// scale. This pins the "dispatch reorganization only" contract the PDF
// comparison between them relies on.
TEST(Workloads, ThreadedInterpreterMatchesLadderInterpreter) {
  const Workload *A = workloads::findKernel("interp");
  const Workload *B = workloads::findKernel("interp_tc");
  ASSERT_TRUE(A && B);
  for (int64_t Scale : {1, 3, 8}) {
    auto MA = buildWorkload(*A);
    auto MB = buildWorkload(*B);
    optimize(*MA, OptLevel::Vliw);
    optimize(*MB, OptLevel::Vliw);
    RunResult RA = simulate(*MA, rs6000(), workloadInput(Scale));
    RunResult RB = simulate(*MB, rs6000(), workloadInput(Scale));
    ASSERT_FALSE(RA.Trapped) << RA.TrapMsg;
    ASSERT_FALSE(RB.Trapped) << RB.TrapMsg;
    EXPECT_EQ(RA.Output, RB.Output) << "scale " << Scale;
  }
}
