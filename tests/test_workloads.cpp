//===- tests/test_workloads.cpp - SPECint92-substitute kernels -------------===//
///
/// Behaviour equivalence of every workload across every pipeline level and
/// machine model (the repository-wide correctness net for experiment E1),
/// plus shape checks on the speedups.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "profile/Counters.h"
#include "vliw/Pipeline.h"
#include "workloads/Spec.h"

#include <gtest/gtest.h>

using namespace vsc;

namespace {

class WorkloadTest : public ::testing::TestWithParam<size_t> {
protected:
  const Workload &workload() const { return specWorkloads()[GetParam()]; }
};

} // namespace

TEST_P(WorkloadTest, CompilesAndVerifies) {
  auto M = buildWorkload(workload());
  ASSERT_TRUE(M);
  EXPECT_EQ(verifyModule(*M), "");
}

TEST_P(WorkloadTest, AllOptLevelsAgree) {
  const Workload &W = workload();
  RunOptions In = workloadInput(W.TrainScale);

  auto Base = buildWorkload(W);
  optimize(*Base, OptLevel::None);
  RunResult RB = simulate(*Base, rs6000(), In);
  ASSERT_FALSE(RB.Trapped) << RB.TrapMsg;
  ASSERT_FALSE(RB.Output.empty());

  for (OptLevel L : {OptLevel::Classical, OptLevel::Vliw}) {
    auto M = buildWorkload(W);
    optimize(*M, L);
    EXPECT_EQ(verifyModule(*M), "");
    RunResult R = simulate(*M, rs6000(), In);
    EXPECT_EQ(RB.fingerprint(), R.fingerprint())
        << W.Name << " at " << optLevelName(L);
  }
}

TEST_P(WorkloadTest, VliwBeatsClassicalOnCycles) {
  const Workload &W = workload();
  RunOptions In = workloadInput(W.TrainScale);
  auto MC = buildWorkload(W);
  optimize(*MC, OptLevel::Classical);
  auto MV = buildWorkload(W);
  optimize(*MV, OptLevel::Vliw);
  RunResult RC = simulate(*MC, rs6000(), In);
  RunResult RV = simulate(*MV, rs6000(), In);
  ASSERT_FALSE(RC.Trapped) << RC.TrapMsg;
  ASSERT_FALSE(RV.Trapped) << RV.TrapMsg;
  EXPECT_LT(RV.Cycles, RC.Cycles) << W.Name;
}

TEST_P(WorkloadTest, AllMachineModelsAgreeFunctionally) {
  const Workload &W = workload();
  RunOptions In = workloadInput(W.TrainScale);
  auto M = buildWorkload(W);
  optimize(*M, OptLevel::Vliw);
  RunResult R1 = simulate(*M, rs6000(), In);
  RunResult R2 = simulate(*M, power2(), In);
  RunResult R3 = simulate(*M, ppc601(), In);
  EXPECT_EQ(R1.fingerprint(), R2.fingerprint()) << W.Name;
  EXPECT_EQ(R1.fingerprint(), R3.fingerprint()) << W.Name;
  // Power2's second FXU should never hurt.
  EXPECT_LE(R2.Cycles, R1.Cycles) << W.Name;
}

TEST_P(WorkloadTest, PdfPipelinePreservesBehaviour) {
  const Workload &W = workload();
  auto Base = buildWorkload(W);
  optimize(*Base, OptLevel::None);
  RunOptions Ref = workloadInput(W.RefScale);
  RunResult RB = simulate(*Base, rs6000(), Ref);

  auto Train = buildWorkload(W);
  auto Guided = buildWorkload(W);
  ProfileData P = collectProfile(*Train, *Guided, rs6000(),
                                 workloadInput(W.TrainScale));
  ASSERT_FALSE(P.BlockCount.empty()) << W.Name;
  PipelineOptions Opts;
  Opts.Profile = &P;
  optimize(*Guided, OptLevel::Vliw, Opts);
  EXPECT_EQ(verifyModule(*Guided), "");
  RunResult RG = simulate(*Guided, rs6000(), Ref);
  EXPECT_EQ(RB.fingerprint(), RG.fingerprint()) << W.Name;
}

TEST_P(WorkloadTest, ScalesLinearly) {
  // Doubling the scale parameter roughly doubles work (sanity of the
  // benchmark harness's per-iteration math).
  const Workload &W = workload();
  auto M = buildWorkload(W);
  optimize(*M, OptLevel::Classical);
  // Tripling the passes (4 -> 12) should roughly triple the pass cost;
  // allow slack for the constant setup phase.
  RunResult R1 = simulate(*M, rs6000(), workloadInput(4));
  RunResult R2 = simulate(*M, rs6000(), workloadInput(12));
  ASSERT_FALSE(R1.Trapped) << R1.TrapMsg;
  double Ratio = static_cast<double>(R2.Cycles) / R1.Cycles;
  EXPECT_GT(Ratio, 1.8) << W.Name;
  EXPECT_LT(Ratio, 3.2) << W.Name;
}

INSTANTIATE_TEST_SUITE_P(AllSix, WorkloadTest,
                         ::testing::Range<size_t>(0, 6),
                         [](const ::testing::TestParamInfo<size_t> &Info) {
                           return specWorkloads()[Info.param].Name;
                         });

TEST(Workloads, ThereAreExactlySixInPaperOrder) {
  const auto &W = specWorkloads();
  ASSERT_EQ(W.size(), 6u);
  EXPECT_EQ(W[0].Name, "espresso");
  EXPECT_EQ(W[1].Name, "li");
  EXPECT_EQ(W[2].Name, "eqntott");
  EXPECT_EQ(W[3].Name, "compress");
  EXPECT_EQ(W[4].Name, "sc");
  EXPECT_EQ(W[5].Name, "gcc");
}
