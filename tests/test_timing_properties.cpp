//===- tests/test_timing_properties.cpp - Timing-model invariants ----------===//
///
/// Property tests on the cycle-accounting model, swept across workloads
/// and machine models: cycles bound pathlength from below (issue width),
/// wider machines never lose, shorter latencies never lose, and the
/// functional results never depend on the timing parameters.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "vliw/Pipeline.h"
#include "workloads/Spec.h"

#include <gtest/gtest.h>

using namespace vsc;

namespace {

class TimingPropertyTest : public ::testing::TestWithParam<size_t> {
protected:
  const Workload &workload() const { return specWorkloads()[GetParam()]; }

  RunResult runOn(const MachineModel &Machine, OptLevel L) {
    auto M = buildWorkload(workload());
    PipelineOptions Opts;
    Opts.Machine = Machine;
    optimize(*M, L, Opts);
    return simulate(*M, Machine, workloadInput(workload().TrainScale));
  }
};

} // namespace

TEST_P(TimingPropertyTest, CyclesAtLeastPathlengthOverWidth) {
  for (OptLevel L : {OptLevel::Classical, OptLevel::Vliw}) {
    RunResult R = runOn(rs6000(), L);
    ASSERT_FALSE(R.Trapped) << R.TrapMsg;
    // 1 FXU + 1 BU per cycle: cycles >= instrs/2 always; in practice
    // branch density keeps it well above instrs/2.
    EXPECT_GE(R.Cycles, R.DynInstrs / 2) << workload().Name;
    // And the model can't be slower than one instruction per cycle plus
    // maximal per-instruction stalls (sanity upper bound).
    EXPECT_LE(R.Cycles, R.DynInstrs * 25) << workload().Name;
  }
}

TEST_P(TimingPropertyTest, WiderMachineNeverLoses) {
  RunResult Narrow = runOn(rs6000(), OptLevel::Vliw);
  RunResult Wide = runOn(power2(), OptLevel::Vliw);
  ASSERT_FALSE(Narrow.Trapped) << Narrow.TrapMsg;
  EXPECT_LE(Wide.Cycles, Narrow.Cycles) << workload().Name;
  EXPECT_EQ(Narrow.fingerprint(), Wide.fingerprint());
}

TEST_P(TimingPropertyTest, ZeroLoadLatencyNeverLoses) {
  MachineModel Fast = rs6000();
  Fast.LoadLatency = 1;
  auto M = buildWorkload(workload());
  optimize(*M, OptLevel::Vliw);
  RunResult Slow = simulate(*M, rs6000(), workloadInput(2));
  RunResult Quick = simulate(*M, Fast, workloadInput(2));
  EXPECT_LE(Quick.Cycles, Slow.Cycles) << workload().Name;
  EXPECT_EQ(Slow.fingerprint(), Quick.fingerprint());
}

TEST_P(TimingPropertyTest, PathlengthIndependentOfMachine) {
  auto M = buildWorkload(workload());
  optimize(*M, OptLevel::Vliw);
  RunResult A = simulate(*M, rs6000(), workloadInput(2));
  RunResult B = simulate(*M, power2(), workloadInput(2));
  RunResult C = simulate(*M, ppc601(), workloadInput(2));
  EXPECT_EQ(A.DynInstrs, B.DynInstrs) << workload().Name;
  EXPECT_EQ(A.DynInstrs, C.DynInstrs) << workload().Name;
}

TEST_P(TimingPropertyTest, StallBreakdownIsBounded) {
  RunResult R = runOn(rs6000(), OptLevel::Classical);
  ASSERT_FALSE(R.Trapped) << R.TrapMsg;
  // Stall accounting must not exceed total cycles (each stalled cycle is
  // attributed at most once per category).
  EXPECT_LE(R.OperandStallCycles, R.Cycles) << workload().Name;
  EXPECT_LE(R.BranchStallCycles, R.Cycles) << workload().Name;
}

TEST_P(TimingPropertyTest, RunsAreDeterministic) {
  RunResult A = runOn(rs6000(), OptLevel::Vliw);
  RunResult B = runOn(rs6000(), OptLevel::Vliw);
  EXPECT_EQ(A.fingerprint(), B.fingerprint());
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(A.DynInstrs, B.DynInstrs);
  EXPECT_EQ(A.BlockCounts, B.BlockCounts);
}

INSTANTIATE_TEST_SUITE_P(AllSix, TimingPropertyTest,
                         ::testing::Range<size_t>(0, 6),
                         [](const ::testing::TestParamInfo<size_t> &Info) {
                           return specWorkloads()[Info.param].Name;
                         });

//===----------------------------------------------------------------------===//
// Printer/parser round-trip on optimized real code
//===----------------------------------------------------------------------===//

TEST(PrinterRoundTrip, OptimizedWorkloadsSurviveTextualRoundTrip) {
  for (const Workload &W : specWorkloads()) {
    auto M = buildWorkload(W);
    optimize(*M, OptLevel::Vliw);
    RunOptions In = workloadInput(2);
    RunResult R1 = simulate(*M, rs6000(), In);

    std::string Text = printModule(*M);
    std::string Err;
    auto M2 = parseModule(Text, &Err);
    ASSERT_TRUE(M2) << W.Name << ": " << Err;
    EXPECT_EQ(verifyModule(*M2), "") << W.Name;
    EXPECT_EQ(printModule(*M2), Text) << W.Name << ": unstable print";

    RunResult R2 = simulate(*M2, rs6000(), In);
    EXPECT_EQ(R1.fingerprint(), R2.fingerprint()) << W.Name;
  }
}
