//===- tests/test_artifact_cache.cpp - Sealed artifacts & the LRU cache ----===//
///
/// Pins the artifact envelope (seal/open round trip, every typed fault in
/// its documented precedence order, the ProfileStore-style diagnostic
/// wording) and the cache discipline: hit/miss/eviction accounting under
/// the byte budget, insert-if-absent, and the poisoning paths — a corrupt
/// or truncated resident entry must be rejected with the right fault and
/// evicted, never served.
///
//===----------------------------------------------------------------------===//

#include "service/ArtifactCache.h"

#include <gtest/gtest.h>

using namespace vsc;

namespace {

ArtifactKey keyOf(ArtifactClass C, uint64_t H) { return ArtifactKey{C, H}; }

} // namespace

// --- sealed envelope --------------------------------------------------------

TEST(SealedArtifactTest, RoundTrip) {
  std::vector<uint8_t> Sealed =
      sealArtifact(ArtifactClass::Optimized, 0xabcdef, "payload bytes");
  std::string Payload;
  EXPECT_EQ(openArtifact(Sealed, ArtifactClass::Optimized, 0xabcdef,
                         &Payload),
            ArtifactFault::None);
  EXPECT_EQ(Payload, "payload bytes");
}

TEST(SealedArtifactTest, EmptyPayloadRoundTrips) {
  std::vector<uint8_t> Sealed = sealArtifact(ArtifactClass::Image, 7, "");
  std::string Payload = "stale contents";
  EXPECT_EQ(openArtifact(Sealed, ArtifactClass::Image, 7, &Payload),
            ArtifactFault::None);
  EXPECT_EQ(Payload, "");
}

TEST(SealedArtifactTest, TruncationDetected) {
  std::vector<uint8_t> Sealed =
      sealArtifact(ArtifactClass::Profile, 1, "0123456789");
  // Shorter than any envelope at all.
  std::vector<uint8_t> Tiny(Sealed.begin(), Sealed.begin() + 8);
  EXPECT_EQ(openArtifact(Tiny, ArtifactClass::Profile, 1),
            ArtifactFault::Truncated);
  // Structurally plausible but shorter than its own payload accounting.
  std::vector<uint8_t> Chopped(Sealed.begin(), Sealed.end() - 4);
  EXPECT_EQ(openArtifact(Chopped, ArtifactClass::Profile, 1),
            ArtifactFault::Truncated);
}

TEST(SealedArtifactTest, BadMagicDetected) {
  std::vector<uint8_t> Sealed = sealArtifact(ArtifactClass::Frontend, 1, "x");
  Sealed[0] = 'X';
  EXPECT_EQ(openArtifact(Sealed, ArtifactClass::Frontend, 1),
            ArtifactFault::BadMagic);
}

TEST(SealedArtifactTest, UnsupportedVersionDetected) {
  std::vector<uint8_t> Sealed = sealArtifact(ArtifactClass::Frontend, 1, "x");
  Sealed[4] = 99; // version field precedes the checksum check
  EXPECT_EQ(openArtifact(Sealed, ArtifactClass::Frontend, 1),
            ArtifactFault::UnsupportedVersion);
}

TEST(SealedArtifactTest, ChecksumMismatchIsCorrupt) {
  std::vector<uint8_t> Sealed =
      sealArtifact(ArtifactClass::SimResult, 1, "cycles=42");
  Sealed[4 + 4 + 1 + 8 + 8] ^= 0x01; // flip a payload bit
  EXPECT_EQ(openArtifact(Sealed, ArtifactClass::SimResult, 1),
            ArtifactFault::Corrupt);
}

TEST(SealedArtifactTest, WrongClassDetected) {
  std::vector<uint8_t> Sealed = sealArtifact(ArtifactClass::Frontend, 1, "x");
  EXPECT_EQ(openArtifact(Sealed, ArtifactClass::Optimized, 1),
            ArtifactFault::WrongClass);
}

TEST(SealedArtifactTest, StaleFingerprintDetected) {
  std::vector<uint8_t> Sealed = sealArtifact(ArtifactClass::Optimized, 10, "x");
  EXPECT_EQ(openArtifact(Sealed, ArtifactClass::Optimized, 11),
            ArtifactFault::Stale);
  // ExpectFp 0 opts out of the staleness check.
  EXPECT_EQ(openArtifact(Sealed, ArtifactClass::Optimized, 0),
            ArtifactFault::None);
}

TEST(SealedArtifactTest, FaultMessagesMirrorProfileStoreWording) {
  EXPECT_EQ(artifactFaultMessage(ArtifactFault::Truncated,
                                 ArtifactClass::Optimized),
            "optimized artifact image truncated");
  EXPECT_EQ(artifactFaultMessage(ArtifactFault::BadMagic,
                                 ArtifactClass::Profile),
            "not a sealed profile artifact (bad magic)");
  EXPECT_EQ(artifactFaultMessage(ArtifactFault::Corrupt,
                                 ArtifactClass::Image),
            "image artifact image corrupt (checksum mismatch)");
  EXPECT_EQ(artifactFaultMessage(ArtifactFault::Stale,
                                 ArtifactClass::Frontend),
            "stale frontend artifact: module CFG fingerprint does not match");
  EXPECT_EQ(artifactFaultMessage(ArtifactFault::UnsupportedVersion,
                                 ArtifactClass::SimResult),
            "unsupported sim-result artifact format version");
}

TEST(SealedArtifactTest, FnvWordsMatchesByteStream) {
  uint64_t W = 0x0123456789abcdefULL;
  uint8_t Bytes[8];
  for (int I = 0; I != 8; ++I)
    Bytes[I] = static_cast<uint8_t>(W >> (8 * I));
  EXPECT_EQ(fnv1aWords({W}), fnv1aBytes(Bytes, 8));
  EXPECT_NE(fnv1aWords({1, 2}), fnv1aWords({2, 1}));
}

// --- cache ------------------------------------------------------------------

TEST(ArtifactCacheTest, MissThenHitAccounting) {
  ArtifactCache Cache;
  ArtifactKey K = keyOf(ArtifactClass::Optimized, 42);

  ArtifactFault Fault = ArtifactFault::None;
  EXPECT_EQ(Cache.get(K, 7, &Fault), nullptr);
  EXPECT_EQ(Fault, ArtifactFault::Missing);

  Cache.put(K, makeArtifact(ArtifactClass::Optimized, 7, "module text"));
  auto A = Cache.get(K, 7, &Fault);
  ASSERT_TRUE(A);
  EXPECT_EQ(Fault, ArtifactFault::None);
  std::string Payload;
  EXPECT_EQ(openArtifact(A->Sealed, ArtifactClass::Optimized, 7, &Payload),
            ArtifactFault::None);
  EXPECT_EQ(Payload, "module text");

  ArtifactClassStats S = Cache.stats(ArtifactClass::Optimized);
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Evictions, 0u);
  EXPECT_EQ(S.Rejections, 0u);
}

TEST(ArtifactCacheTest, InsertIfAbsentKeepsFirst) {
  ArtifactCache Cache;
  ArtifactKey K = keyOf(ArtifactClass::Frontend, 1);
  Cache.put(K, makeArtifact(ArtifactClass::Frontend, 5, "first"));
  auto Winner = Cache.put(K, makeArtifact(ArtifactClass::Frontend, 5,
                                          "second (racing compute)"));
  std::string Payload;
  ASSERT_TRUE(Winner);
  EXPECT_EQ(openArtifact(Winner->Sealed, ArtifactClass::Frontend, 5,
                         &Payload),
            ArtifactFault::None);
  EXPECT_EQ(Payload, "first");
  EXPECT_EQ(Cache.entryCount(), 1u);
}

TEST(ArtifactCacheTest, ByteBudgetEvictsColdEntries) {
  // Each sealed artifact below is 33 + 7 = 40 bytes; budget fits two.
  ArtifactCache Cache(/*ByteBudget=*/100);
  const std::string Payload = "1234567";
  ArtifactKey K1 = keyOf(ArtifactClass::Image, 1);
  ArtifactKey K2 = keyOf(ArtifactClass::Image, 2);
  ArtifactKey K3 = keyOf(ArtifactClass::Image, 3);
  Cache.put(K1, makeArtifact(ArtifactClass::Image, 1, Payload));
  Cache.put(K2, makeArtifact(ArtifactClass::Image, 2, Payload));
  EXPECT_EQ(Cache.entryCount(), 2u);
  EXPECT_EQ(Cache.bytesUsed(), 80u);

  Cache.put(K3, makeArtifact(ArtifactClass::Image, 3, Payload));
  EXPECT_EQ(Cache.entryCount(), 2u);
  EXPECT_LE(Cache.bytesUsed(), Cache.byteBudget());

  ArtifactFault Fault = ArtifactFault::None;
  EXPECT_EQ(Cache.get(K1, 1, &Fault), nullptr); // the cold end went first
  EXPECT_EQ(Fault, ArtifactFault::Missing);
  EXPECT_TRUE(Cache.get(K2, 2));
  EXPECT_TRUE(Cache.get(K3, 3));
  EXPECT_EQ(Cache.stats(ArtifactClass::Image).Evictions, 1u);
}

TEST(ArtifactCacheTest, HitRefreshesRecency) {
  ArtifactCache Cache(/*ByteBudget=*/100);
  const std::string Payload = "1234567"; // 40 sealed bytes each
  ArtifactKey K1 = keyOf(ArtifactClass::Image, 1);
  ArtifactKey K2 = keyOf(ArtifactClass::Image, 2);
  ArtifactKey K3 = keyOf(ArtifactClass::Image, 3);
  Cache.put(K1, makeArtifact(ArtifactClass::Image, 1, Payload));
  Cache.put(K2, makeArtifact(ArtifactClass::Image, 2, Payload));
  EXPECT_TRUE(Cache.get(K1, 1)); // re-warm K1; K2 is now the cold end
  Cache.put(K3, makeArtifact(ArtifactClass::Image, 3, Payload));
  EXPECT_TRUE(Cache.get(K1, 1));
  EXPECT_FALSE(Cache.get(K2, 2));
  EXPECT_TRUE(Cache.get(K3, 3));
}

TEST(ArtifactCacheTest, CorruptEntryRejectedAndEvicted) {
  ArtifactCache Cache;
  ArtifactKey K = keyOf(ArtifactClass::Profile, 9);
  Cache.put(K, makeArtifact(ArtifactClass::Profile, 3, "profile bytes"));
  ASSERT_TRUE(Cache.corruptEntry(K));

  ArtifactFault Fault = ArtifactFault::None;
  EXPECT_EQ(Cache.get(K, 3, &Fault), nullptr);
  EXPECT_EQ(Fault, ArtifactFault::Corrupt);
  EXPECT_EQ(Cache.entryCount(), 0u); // poisoned entry cannot linger

  ArtifactClassStats S = Cache.stats(ArtifactClass::Profile);
  EXPECT_EQ(S.Rejections, 1u);
  EXPECT_EQ(S.Evictions, 1u);
  EXPECT_EQ(S.Hits, 0u);
  EXPECT_EQ(S.Misses, 1u); // the rejection surfaces as a miss to the caller
}

TEST(ArtifactCacheTest, TruncatedEntryRejectedAndEvicted) {
  ArtifactCache Cache;
  ArtifactKey K = keyOf(ArtifactClass::SimResult, 4);
  Cache.put(K, makeArtifact(ArtifactClass::SimResult, 2, "exit=0 cycles=1"));
  ASSERT_TRUE(Cache.truncateEntry(K));

  ArtifactFault Fault = ArtifactFault::None;
  EXPECT_EQ(Cache.get(K, 2, &Fault), nullptr);
  EXPECT_EQ(Fault, ArtifactFault::Truncated);
  EXPECT_EQ(Cache.entryCount(), 0u);
  EXPECT_EQ(Cache.stats(ArtifactClass::SimResult).Rejections, 1u);
}

TEST(ArtifactCacheTest, StaleEntryRejectedAndEvicted) {
  ArtifactCache Cache;
  ArtifactKey K = keyOf(ArtifactClass::Optimized, 5);
  Cache.put(K, makeArtifact(ArtifactClass::Optimized, /*Fingerprint=*/100,
                            "old generation"));
  ArtifactFault Fault = ArtifactFault::None;
  EXPECT_EQ(Cache.get(K, /*ExpectFp=*/200, &Fault), nullptr);
  EXPECT_EQ(Fault, ArtifactFault::Stale);
  EXPECT_EQ(Cache.entryCount(), 0u);
  EXPECT_EQ(Cache.stats(ArtifactClass::Optimized).Rejections, 1u);
}

TEST(ArtifactCacheTest, PoisonHooksReportMissingKeys) {
  ArtifactCache Cache;
  EXPECT_FALSE(Cache.corruptEntry(keyOf(ArtifactClass::Frontend, 1)));
  EXPECT_FALSE(Cache.truncateEntry(keyOf(ArtifactClass::Frontend, 1)));
}

TEST(ArtifactCacheTest, ClearDropsEntriesKeepsStats) {
  ArtifactCache Cache;
  ArtifactKey K = keyOf(ArtifactClass::Frontend, 6);
  Cache.put(K, makeArtifact(ArtifactClass::Frontend, 1, "m"));
  EXPECT_TRUE(Cache.get(K, 1));
  Cache.clear();
  EXPECT_EQ(Cache.entryCount(), 0u);
  EXPECT_EQ(Cache.bytesUsed(), 0u);
  EXPECT_EQ(Cache.stats(ArtifactClass::Frontend).Hits, 1u);
  EXPECT_EQ(Cache.totals().Hits, 1u);
}
