//===- tests/test_ir.cpp - IR construction, printing, parsing --------------===//

#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace vsc;

TEST(Reg, Basics) {
  EXPECT_TRUE(Reg::gpr(5).isGpr());
  EXPECT_TRUE(Reg::gpr(5).isPhysical());
  EXPECT_TRUE(Reg::gpr(40).isVirtual());
  EXPECT_TRUE(Reg::cr(0).isPhysical());
  EXPECT_TRUE(Reg::cr(9).isVirtual());
  EXPECT_TRUE(Reg::gpr(13).isCalleeSaved());
  EXPECT_TRUE(Reg::gpr(31).isCalleeSaved());
  EXPECT_FALSE(Reg::gpr(12).isCalleeSaved());
  EXPECT_FALSE(Reg::gpr(32).isCalleeSaved());
  EXPECT_EQ(Reg::gpr(7).str(), "r7");
  EXPECT_EQ(Reg::cr(2).str(), "cr2");
  EXPECT_EQ(Reg::ctr().str(), "ctr");
  EXPECT_EQ(regs::sp(), Reg::gpr(1));
  EXPECT_EQ(regs::toc(), Reg::gpr(2));
  EXPECT_EQ(regs::arg(0), Reg::gpr(3));
}

TEST(Instr, UsesAndDefs) {
  Instr I;
  I.Op = Opcode::A;
  I.Dst = Reg::gpr(40);
  I.Src1 = Reg::gpr(41);
  I.Src2 = Reg::gpr(42);
  std::vector<Reg> Uses, Defs;
  I.collectUses(Uses);
  I.collectDefs(Defs);
  ASSERT_EQ(Uses.size(), 2u);
  ASSERT_EQ(Defs.size(), 1u);
  EXPECT_EQ(Defs[0], Reg::gpr(40));
}

TEST(Instr, CallClobbers) {
  Instr I;
  I.Op = Opcode::CALL;
  I.Sym = "f";
  I.Imm = 2;
  std::vector<Reg> Uses, Defs;
  I.collectUses(Uses);
  I.collectDefs(Defs);
  // Uses r3, r4 (args), sp, toc.
  EXPECT_NE(std::find(Uses.begin(), Uses.end(), Reg::gpr(3)), Uses.end());
  EXPECT_NE(std::find(Uses.begin(), Uses.end(), Reg::gpr(4)), Uses.end());
  EXPECT_EQ(std::find(Uses.begin(), Uses.end(), Reg::gpr(5)), Uses.end());
  // Clobbers r0, r3..r12, cr0..7, ctr but not callee-saved r13+.
  EXPECT_NE(std::find(Defs.begin(), Defs.end(), Reg::gpr(12)), Defs.end());
  EXPECT_EQ(std::find(Defs.begin(), Defs.end(), Reg::gpr(13)), Defs.end());
  EXPECT_NE(std::find(Defs.begin(), Defs.end(), Reg::cr(7)), Defs.end());
}

TEST(Instr, SpeculationSafety) {
  Instr Add;
  Add.Op = Opcode::AI;
  Add.Dst = Reg::gpr(40);
  Add.Src1 = Reg::gpr(41);
  EXPECT_TRUE(Add.isSafeToSpeculate());

  Instr Div;
  Div.Op = Opcode::DIV;
  EXPECT_FALSE(Div.isSafeToSpeculate());

  Instr Load;
  Load.Op = Opcode::L;
  Load.Dst = Reg::gpr(40);
  Load.Src1 = Reg::gpr(41);
  EXPECT_FALSE(Load.isSafeToSpeculate()) << "loads need the safety proof";

  Instr Store;
  Store.Op = Opcode::ST;
  EXPECT_FALSE(Store.isSafeToSpeculate());
  EXPECT_TRUE(Store.hasSideEffects());
}

TEST(IRBuilder, BuildsAndVerifies) {
  Module M;
  Function *F = M.addFunction("f", 1);
  IRBuilder B(*F);
  B.startBlock("entry");
  Reg T = F->freshGpr();
  B.ai(T, regs::arg(0), 5);
  B.lr(regs::retval(), T);
  B.ret();
  EXPECT_EQ(verifyModule(M), "");
  EXPECT_EQ(F->instrCount(), 3u);
}

TEST(Verifier, CatchesBadBranchTarget) {
  Module M;
  Function *F = M.addFunction("f", 0);
  IRBuilder B(*F);
  B.startBlock("entry");
  B.b("nowhere");
  std::string E = verifyFunction(*F);
  EXPECT_NE(E.find("unresolved branch target"), std::string::npos) << E;
}

TEST(Verifier, CatchesFallOffEnd) {
  Module M;
  Function *F = M.addFunction("f", 0);
  IRBuilder B(*F);
  B.startBlock("entry");
  B.li(Reg::gpr(40), 1);
  std::string E = verifyFunction(*F);
  EXPECT_NE(E.find("falls off the end"), std::string::npos) << E;
}

TEST(Verifier, CatchesMidBlockBranch) {
  Module M;
  Function *F = M.addFunction("f", 0);
  IRBuilder B(*F);
  B.startBlock("entry");
  B.b("exit");
  B.li(Reg::gpr(40), 1); // dead instruction after a barrier
  B.startBlock("exit");
  B.ret();
  std::string E = verifyFunction(*F);
  EXPECT_NE(E.find("middle of a block"), std::string::npos) << E;
}

TEST(Verifier, CatchesCompareToGpr) {
  Module M;
  Function *F = M.addFunction("f", 0);
  IRBuilder B(*F);
  B.startBlock("entry");
  Instr I;
  I.Op = Opcode::C;
  I.Dst = Reg::gpr(40); // wrong class
  I.Src1 = Reg::gpr(41);
  I.Src2 = Reg::gpr(42);
  B.emit(std::move(I));
  B.ret();
  std::string E = verifyFunction(*F);
  EXPECT_NE(E.find("condition register"), std::string::npos) << E;
}

static std::string roundTrip(const std::string &Text) {
  std::string Err;
  auto M = parseModule(Text, &Err);
  EXPECT_TRUE(M) << Err;
  if (!M)
    return "";
  return printModule(*M);
}

TEST(Parser, RoundTripsRepresentativeProgram) {
  const char *Text = R"(global a : 16 = [1 2 3 4] volatile
global b : 8

func f(2) {
entry:
  LTOC r32 = .a
  L r33 = 12(r32) !a
  L r34 = 0(r32):2 !a !volatile
  LU r35 = 2(r33)
  AI r33 = r33, 1
  ST 12(r32) !a = r33
  C cr0 = r33, r4
  BT L1, cr0.eq
mid:
  CI cr8 = r33, 0
  BF L2, cr8.lt
L1:
  LI r3 = 0
  MTCTR r3
  BCT L1
L2:
  A r5 = r3, r4
  S r5 = r5, r4
  MUL r5 = r5, r4
  DIV r5 = r5, r4
  AND r5 = r5, r4
  OR r5 = r5, r4
  XOR r5 = r5, r4
  SL r5 = r5, r4
  SR r5 = r5, r4
  SRA r5 = r5, r4
  SI r5 = r5, 3
  MULI r5 = r5, 3
  ANDI r5 = r5, 3
  ORI r5 = r5, 3
  XORI r5 = r5, 3
  SLI r5 = r5, 3
  SRI r5 = r5, 3
  SRAI r5 = r5, 3
  NEG r5 = r5
  LA r5 = r5, 8
  LR r3 = r5
  CALL g, 1
  RET
}

func g(1) {
entry:
  L r32 = 0(r3) !safe
  RET
}
)";
  std::string Once = roundTrip(Text);
  ASSERT_FALSE(Once.empty());
  std::string Twice = roundTrip(Once);
  EXPECT_EQ(Once, Twice);

  // Verify the parsed module too.
  std::string Err;
  auto M = parseModule(Text, &Err);
  ASSERT_TRUE(M) << Err;
  EXPECT_EQ(verifyModule(*M), "");
}

TEST(Parser, ReportsErrors) {
  std::string Err;
  EXPECT_EQ(parseModule("func f(0) {\n  BOGUS r1 = r2\n}\n", &Err), nullptr);
  EXPECT_NE(Err.find("unknown mnemonic"), std::string::npos) << Err;

  EXPECT_EQ(parseModule("LI r1 = 0\n", &Err), nullptr);
  EXPECT_NE(Err.find("outside a function"), std::string::npos) << Err;

  EXPECT_EQ(parseModule("func f(0) {\n  LI r1 = 0\n", &Err), nullptr);
  EXPECT_NE(Err.find("unterminated"), std::string::npos) << Err;
}

TEST(Parser, PreservesAnnotations) {
  std::string Err;
  auto M = parseModule(
      "func f(0) {\nentry:\n  L r32 = 4(r3) !tab !safe\n  RET\n}\n", &Err);
  ASSERT_TRUE(M) << Err;
  const Instr &I = M->findFunction("f")->entry()->instrs()[0];
  EXPECT_EQ(I.Sym, "tab");
  EXPECT_TRUE(I.SpecSafe);
  EXPECT_FALSE(I.IsVolatile);
}

TEST(Function, FreshRegsDontCollide) {
  std::string Err;
  auto M = parseModule("func f(0) {\nentry:\n  LI r50 = 1\n  CI cr9 = r50, 0\n  RET\n}\n",
                       &Err);
  ASSERT_TRUE(M) << Err;
  Function *F = M->findFunction("f");
  EXPECT_GE(F->freshGpr().id(), 51u);
  EXPECT_GE(F->freshCr().id(), 10u);
}

TEST(Function, BlockEditing) {
  Module M;
  Function *F = M.addFunction("f", 0);
  IRBuilder B(*F);
  B.startBlock("entry");
  B.b("exit");
  B.startBlock("mid");
  B.b("exit");
  B.startBlock("exit");
  B.ret();
  EXPECT_EQ(F->indexOf(F->findBlock("mid")), 1u);
  F->moveBlock(1, 2);
  EXPECT_EQ(F->indexOf(F->findBlock("mid")), 2u);
  BasicBlock *New = F->insertBlock(1, "fresh");
  EXPECT_EQ(F->indexOf(New), 1u);
  EXPECT_EQ(F->size(), 4u);
  std::string NewLabel = New->label(); // eraseBlock destroys *New
  F->eraseBlock(1);
  EXPECT_EQ(F->size(), 3u);
  EXPECT_EQ(F->findBlock(NewLabel), nullptr);
}
