//===- tests/test_schedule.cpp - Scheduling core ---------------------------===//
///
/// Covers local list scheduling, cross-block speculative hoisting (global
/// scheduling), unrolling, live-range renaming, and enhanced pipeline
/// scheduling — including the paper's li worked example (experiment E2):
/// 11 cycles/iteration originally, ~7 after global scheduling (paper: 14
/// cycles / 2 iterations), ~6 with software pipelining (paper: 10 / 2).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "cfg/CfgEdit.h"
#include "vliw/Rename.h"
#include "vliw/Schedule.h"
#include "vliw/Unroll.h"
#include "workloads/LiKernel.h"

#include <gtest/gtest.h>

using namespace vsc;

namespace {

double liCyclesPerIter(void (*Apply)(Module &)) {
  auto M1 = buildLiSearch(64);
  auto M2 = buildLiSearch(128);
  Apply(*M1);
  Apply(*M2);
  EXPECT_EQ(verifyModule(*M1), "");
  RunResult R1 = simulate(*M1, rs6000());
  RunResult R2 = simulate(*M2, rs6000());
  EXPECT_FALSE(R1.Trapped) << R1.TrapMsg;
  EXPECT_FALSE(R2.Trapped) << R2.TrapMsg;
  EXPECT_EQ(R1.Output, "1\n");
  EXPECT_EQ(R2.Output, "1\n");
  return static_cast<double>(R2.Cycles - R1.Cycles) / 64.0;
}

void applyGlobalSched(Module &M) {
  Function &F = *M.findFunction("xlygetvalue");
  globalSchedule(F, rs6000(), M);
  straighten(F);
}

void applyUnrollRenameSched(Module &M) {
  Function &F = *M.findFunction("xlygetvalue");
  unrollInnermostLoops(F, 2);
  straighten(F);
  renameInnermostLoops(F);
  globalSchedule(F, rs6000(), M);
  straighten(F);
}

void applyFullPipelineSched(Module &M) {
  Function &F = *M.findFunction("xlygetvalue");
  unrollInnermostLoops(F, 2);
  straighten(F);
  renameInnermostLoops(F);
  pipelineInnermostLoops(F, rs6000(), M);
  globalSchedule(F, rs6000(), M);
  straighten(F);
}

} // namespace

//===----------------------------------------------------------------------===//
// E2: the worked example's staged speedups
//===----------------------------------------------------------------------===//

TEST(LiPipeline, GlobalSchedulingReaches7CyclesPerIteration) {
  // Paper: code motion within the loop body yields 14 cycles per 2
  // iterations (7 per iteration).
  EXPECT_LE(liCyclesPerIter(applyGlobalSched), 7.0);
  EXPECT_GE(liCyclesPerIter(applyGlobalSched), 5.0);
}

TEST(LiPipeline, UnrollRenameScheduleMatchesPaperMiddleStage) {
  EXPECT_LE(liCyclesPerIter(applyUnrollRenameSched), 7.0);
}

TEST(LiPipeline, SoftwarePipeliningBeatsGlobalScheduling) {
  double Gs = liCyclesPerIter(applyUnrollRenameSched);
  double Eps = liCyclesPerIter(applyFullPipelineSched);
  EXPECT_LT(Eps, Gs) << "pipelining must beat global scheduling alone";
  // Paper reaches 5 cycles/iteration; we require at most 6.
  EXPECT_LE(Eps, 6.0);
}

TEST(LiPipeline, NotFoundPathStaysCorrect) {
  // Search for an item that is NOT in the list: the loop exits through
  // endofchain, exercising the other exit (and the exit copies).
  auto M = buildLiSearch(32);
  // Overwrite the target so nothing matches.
  Function *Main = M->findFunction("main");
  for (auto &BB : Main->blocks())
    for (Instr &I : BB->instrs())
      if (I.Op == Opcode::LI && I.Dst == Reg::gpr(3))
        I.Imm = -12345;
  RunResult Before = simulate(*M, rs6000());
  ASSERT_FALSE(Before.Trapped) << Before.TrapMsg;
  ASSERT_EQ(Before.Output, "0\n");

  applyFullPipelineSched(*M);
  ASSERT_EQ(verifyModule(*M), "");
  RunResult After = simulate(*M, rs6000());
  EXPECT_EQ(Before.fingerprint(), After.fingerprint());
}

//===----------------------------------------------------------------------===//
// Local scheduling
//===----------------------------------------------------------------------===//

TEST(LocalSchedule, HidesLoadUseStall) {
  const char *Text = R"(
global g : 16 = [5 0 0 0 7 0 0 0]
func main(0) {
entry:
  LTOC r32 = .g
  LI r40 = 1
  LI r41 = 2
  LI r42 = 3
  L r33 = 0(r32) !g
  A r34 = r33, r40
  A r35 = r34, r41
  A r3 = r35, r42
  CALL print_int, 1
  RET
}
)";
  auto Before = parseOrDie(Text);
  RunResult RB = simulate(*Before, rs6000());
  auto After = transformPreservesBehaviour(Text, [](Module &Mod) {
    for (auto &BB : Mod.findFunction("main")->blocks())
      scheduleBlock(*BB, rs6000());
  });
  ASSERT_TRUE(After);
  RunResult RA = simulate(*After, rs6000());
  EXPECT_LE(RA.Cycles, RB.Cycles);
}

TEST(LocalSchedule, SeparatesCompareFromBranch) {
  const char *Text = R"(
func main(0) {
entry:
  LI r32 = 1000
  LI r33 = 0
  LI r34 = 0
loop:
  AI r33 = r33, 1
  C cr0 = r33, r32
  AI r34 = r34, 3
  AI r34 = r34, 5
  AI r34 = r34, 7
  AI r34 = r34, 9
  BF loop, cr0.eq
exit:
  LR r3 = r34
  CALL print_int, 1
  RET
}
)";
  // Worst schedule: compare directly before the branch.
  std::string Worst(Text);
  auto Before = parseOrDie(Worst);
  // Move the compare to just before the branch to create the stall.
  BasicBlock *Loop = Before->findFunction("main")->findBlock("loop");
  Instr Cmp = Loop->instrs()[1];
  Loop->instrs().erase(Loop->instrs().begin() + 1);
  Loop->instrs().insert(Loop->instrs().begin() + 5, Cmp);
  RunResult RB = simulate(*Before, rs6000());
  EXPECT_GT(RB.BranchStallCycles, 2000u);

  // The scheduler should recover the good order: the loop becomes
  // FXU-bound (6 ops -> ~6 cycles/iteration instead of ~9).
  for (auto &BB : Before->findFunction("main")->blocks())
    scheduleBlock(*BB, rs6000());
  RunResult RA = simulate(*Before, rs6000());
  EXPECT_EQ(RB.fingerprint(), RA.fingerprint());
  EXPECT_LT(RA.BranchStallCycles, RB.BranchStallCycles / 2);
  EXPECT_LT(RA.Cycles, RB.Cycles);
  EXPECT_NEAR(static_cast<double>(RA.Cycles) / 1000, 6.0, 0.1);
}

TEST(LocalSchedule, RespectsMemoryDependences) {
  // Store then aliasing load: order must hold.
  const char *Text = R"(
global g : 8
func main(0) {
entry:
  LTOC r32 = .g
  LI r33 = 42
  ST 0(r32) !g = r33
  L r34 = 0(r32) !g
  LR r3 = r34
  CALL print_int, 1
  RET
}
)";
  auto M = transformPreservesBehaviour(Text, [](Module &Mod) {
    for (auto &BB : Mod.findFunction("main")->blocks())
      scheduleBlock(*BB, rs6000());
  });
  ASSERT_TRUE(M);
  RunResult R = simulate(*M, rs6000());
  EXPECT_EQ(R.Output, "42\n");
}

TEST(LocalSchedule, PreservesCallOrder) {
  const char *Text = R"(
func main(0) {
entry:
  LI r3 = 1
  CALL print_int, 1
  LI r3 = 2
  CALL print_int, 1
  LI r3 = 3
  CALL print_int, 1
  RET
}
)";
  auto M = transformPreservesBehaviour(Text, [](Module &Mod) {
    for (auto &BB : Mod.findFunction("main")->blocks())
      scheduleBlock(*BB, rs6000());
  });
  ASSERT_TRUE(M);
  RunResult R = simulate(*M, rs6000());
  EXPECT_EQ(R.Output, "1\n2\n3\n");
}

//===----------------------------------------------------------------------===//
// Unrolling
//===----------------------------------------------------------------------===//

TEST(Unroll, PreservesBehaviourFactor2And4) {
  const char *Text = R"(
func main(0) {
entry:
  LI r32 = 37
  MTCTR r32
  LI r33 = 0
  LI r34 = 0
loop:
  AI r33 = r33, 1
  A r34 = r34, r33
  BCT loop
exit:
  LR r3 = r34
  CALL print_int, 1
  RET
}
)";
  for (unsigned Factor : {2u, 4u}) {
    auto M = transformPreservesBehaviour(Text, [Factor](Module &Mod) {
      unrollInnermostLoops(*Mod.findFunction("main"), Factor);
      straighten(*Mod.findFunction("main"));
    });
    ASSERT_TRUE(M);
  }
}

TEST(Unroll, TripCountNotMultipleOfFactor) {
  // 37 iterations with factor 2 and a conditional (non-BCT) loop.
  const char *Text = R"(
func main(0) {
entry:
  LI r32 = 37
  LI r33 = 0
  LI r34 = 0
loop:
  AI r33 = r33, 1
  A r34 = r34, r33
  C cr0 = r33, r32
  BF loop, cr0.eq
exit:
  LR r3 = r34
  CALL print_int, 1
  RET
}
)";
  auto M = transformPreservesBehaviour(Text, [](Module &Mod) {
    unrollInnermostLoops(*Mod.findFunction("main"), 2);
    straighten(*Mod.findFunction("main"));
  });
  ASSERT_TRUE(M);
  RunResult R = simulate(*M, rs6000());
  EXPECT_EQ(R.Output, std::to_string(37 * 38 / 2) + "\n");
}

TEST(Unroll, SideExitKeepsTarget) {
  const char *Text = R"(
func main(0) {
entry:
  LI r32 = 100
  MTCTR r32
  LI r33 = 0
loop:
  AI r33 = r33, 1
  CI cr0 = r33, 13
  BT breakout, cr0.eq
body:
  BCT loop
exit:
  LI r3 = 0
  CALL print_int, 1
  RET
breakout:
  LR r3 = r33
  CALL print_int, 1
  RET
}
)";
  auto M = transformPreservesBehaviour(Text, [](Module &Mod) {
    unrollInnermostLoops(*Mod.findFunction("main"), 3);
    straighten(*Mod.findFunction("main"));
  });
  ASSERT_TRUE(M);
  RunResult R = simulate(*M, rs6000());
  EXPECT_EQ(R.Output, "13\n");
}

//===----------------------------------------------------------------------===//
// Renaming
//===----------------------------------------------------------------------===//

TEST(Rename, BreaksFalseDependences) {
  const char *Text = R"(
global g : 408
func main(0) {
entry:
  LI r32 = 100
  MTCTR r32
  LTOC r33 = .g
  LI r36 = 0
loop:
  L r40 = 0(r33) !g
  A r36 = r36, r40
  L r40 = 4(r33) !g
  A r36 = r36, r40
  BCT loop
exit:
  LR r3 = r36
  CALL print_int, 1
  RET
}
)";
  auto M = transformPreservesBehaviour(Text, [](Module &Mod) {
    Function &F = *Mod.findFunction("main");
    renameInnermostLoops(F);
  });
  ASSERT_TRUE(M);
  // The two defs of r40 must now use distinct registers.
  const BasicBlock *Loop = M->findFunction("main")->findBlock("loop");
  ASSERT_TRUE(Loop);
  std::vector<Reg> LoadDsts;
  for (const Instr &I : Loop->instrs())
    if (I.isLoad())
      LoadDsts.push_back(I.Dst);
  ASSERT_EQ(LoadDsts.size(), 2u);
  EXPECT_NE(LoadDsts[0], LoadDsts[1]);
}

TEST(Rename, InsertsExitCopiesForLiveRegisters) {
  // r40's intermediate value is live at the side exit: the renamer must
  // patch the exit with an LR copy (the paper's `found: LR r4=r4`).
  const char *Text = R"(
global g : 408 = [9 0 0 0]
func main(0) {
entry:
  LI r32 = 50
  MTCTR r32
  LTOC r33 = .g
  LI r36 = 0
loop:
  L r40 = 0(r33) !g
  CI cr0 = r40, 9
  BT hit, cr0.eq
cont:
  LI r40 = 0
  A r36 = r36, r40
  BCT loop
exit:
  LR r3 = r36
  CALL print_int, 1
  RET
hit:
  LR r3 = r40
  CALL print_int, 1
  RET
}
)";
  auto M = transformPreservesBehaviour(Text, [](Module &Mod) {
    Function &F = *Mod.findFunction("main");
    renameInnermostLoops(F);
    straighten(F);
  });
  ASSERT_TRUE(M);
  RunResult R = simulate(*M, rs6000());
  EXPECT_EQ(R.Output, "9\n");
}

TEST(Rename, RefusesLoopsWithMidChainLatch) {
  // Regression: a hash-probe-style loop with TWO latches (a conditional
  // back edge in the middle of the chain and the real latch at the end).
  // Renaming the mid-chain definition of r27 once destroyed the value the
  // early back edge carries into the next iteration.
  const char *Text = R"(
global htab : 64 = [1 0 0 0 1 0 0 0 1 0 0 0 0 0 0 0]
func main(0) {
entry:
  LTOC r30 = .htab
  LI r27 = 0
  LI r28 = 0
head:
  SLI r31 = r27, 2
  A r32 = r30, r31
  L r33 = 0(r32) !htab !safe
  CI cr0 = r33, 0
  BT done, cr0.eq
body:
  AI r34 = r27, 1
  LR r27 = r34
  CI cr1 = r27, 16
  BF head, cr1.eq
wrap:
  LI r27 = 0
  AI r28 = r28, 1
  CI cr2 = r28, 2
  BT done, cr2.eq
back:
  B head
done:
  LR r3 = r27
  CALL print_int, 1
  RET
}
)";
  auto M = transformPreservesBehaviour(Text, [](Module &Mod) {
    Function &F = *Mod.findFunction("main");
    renameInnermostLoops(F);
    straighten(F);
  });
  ASSERT_TRUE(M);
  RunResult R = simulate(*M, rs6000());
  EXPECT_EQ(R.Output, "3\n");
}

//===----------------------------------------------------------------------===//
// Global scheduling (cross-block)
//===----------------------------------------------------------------------===//

TEST(GlobalSchedule, HoistsAcrossConditionalBranch) {
  // The successor's independent load can fill the predecessor's load-use
  // stall hole, speculatively (it is safe and its dest is dead on the
  // other path).
  const char *Text = R"(
global g : 16 = [5 0 0 0 7 0 0 0]
func main(1) {
entry:
  LTOC r32 = .g
  L r33 = 0(r32) !g
  CI cr0 = r33, 5
  BT yes, cr0.eq
no:
  LI r3 = 0
  CALL print_int, 1
  RET
yes:
  L r34 = 4(r32) !g
  LR r3 = r34
  CALL print_int, 1
  RET
}
)";
  auto M = transformPreservesBehaviour(Text, [](Module &Mod) {
    globalSchedule(*Mod.findFunction("main"), rs6000(), Mod);
  });
  ASSERT_TRUE(M);
  RunResult R = simulate(*M, rs6000());
  EXPECT_EQ(R.Output, "7\n");
  // The load should have been hoisted into the entry block.
  const BasicBlock *Entry = M->findFunction("main")->entry();
  size_t Loads = 0;
  for (const Instr &I : Entry->instrs())
    if (I.isLoad())
      ++Loads;
  EXPECT_EQ(Loads, 2u) << printFunction(*M->findFunction("main"));
}

TEST(GlobalSchedule, RefusesUnsafeSpeculativeLoad) {
  // The load has no safety annotation and dereferences an argument: it
  // must not be hoisted above the null check.
  const char *Text = R"(
func main(1) {
entry:
  CI cr0 = r3, 0
  BT isnull, cr0.eq
deref:
  L r34 = 0(r3)
  LR r3 = r34
  CALL print_int, 1
  RET
isnull:
  LI r3 = -1
  CALL print_int, 1
  RET
}
)";
  MachineModel Strict = rs6000();
  Strict.PageZeroReadable = false;
  RunOptions Opts;
  Opts.Args = {0}; // null pointer: the deref path is never taken
  std::string Err;
  auto M = parseModule(Text, &Err);
  ASSERT_TRUE(M) << Err;
  globalSchedule(*M->findFunction("main"), Strict, *M);
  RunResult R = simulate(*M, Strict, Opts);
  EXPECT_FALSE(R.Trapped) << "speculated unsafe load trapped: " << R.TrapMsg;
  EXPECT_EQ(R.Output, "-1\n");
}

TEST(GlobalSchedule, RefusesWhenDestLiveOnOtherPath) {
  const char *Text = R"(
func main(1) {
entry:
  LI r40 = 5
  CI cr0 = r3, 0
  BT other, cr0.eq
taken:
  AI r40 = r3, 9
  LR r3 = r40
  CALL print_int, 1
  RET
other:
  LR r3 = r40
  CALL print_int, 1
  RET
}
)";
  for (int64_t A : {0, 2}) {
    RunOptions Opts;
    Opts.Args = {A};
    auto M = transformPreservesBehaviour(
        Text,
        [](Module &Mod) {
          globalSchedule(*Mod.findFunction("main"), rs6000(), Mod);
        },
        Opts);
    ASSERT_TRUE(M);
  }
}

//===----------------------------------------------------------------------===//
// Enhanced pipeline scheduling
//===----------------------------------------------------------------------===//

TEST(Eps, PipelinesDependentLoadChainLoop) {
  // A pointer-chase-free loop with a load feeding an add: rotation should
  // overlap the next iteration's load with this iteration's add.
  const char *Text = R"(
global tab : 4096
func main(0) {
entry:
  LI r32 = 500
  MTCTR r32
  LTOC r33 = .tab
  LI r36 = 0
  LI r37 = 0
loop:
  L r40 = 0(r33) !tab
  A r36 = r36, r40
  AI r37 = r37, 4
  BCT loop
exit:
  LR r3 = r36
  CALL print_int, 1
  RET
}
)";
  auto Before = parseOrDie(Text);
  RunResult RB = simulate(*Before, rs6000());
  auto After = transformPreservesBehaviour(Text, [](Module &Mod) {
    Function &F = *Mod.findFunction("main");
    renameInnermostLoops(F);
    pipelineInnermostLoops(F, rs6000(), Mod);
    globalSchedule(F, rs6000(), Mod);
    straighten(F);
  });
  ASSERT_TRUE(After);
  RunResult RA = simulate(*After, rs6000());
  EXPECT_LT(RA.Cycles, RB.Cycles);
}

TEST(Eps, RotationNeverAppliedToStores) {
  const char *Text = R"(
global tab : 4096
func main(0) {
entry:
  LI r32 = 100
  MTCTR r32
  LTOC r33 = .tab
  LI r36 = 7
loop:
  ST 0(r33) !tab = r36
  AI r36 = r36, 1
  BCT loop
exit:
  L r3 = 0(r33) !tab
  CALL print_int, 1
  RET
}
)";
  auto M = transformPreservesBehaviour(Text, [](Module &Mod) {
    Function &F = *Mod.findFunction("main");
    pipelineInnermostLoops(F, rs6000(), Mod);
    straighten(F);
  });
  ASSERT_TRUE(M);
  // The store must still be inside the loop and execute 100 times.
  RunResult R = simulate(*M, rs6000());
  EXPECT_EQ(R.Output, "106\n");
}
