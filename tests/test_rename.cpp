//===- tests/test_rename.cpp - Live-range renaming in loops ----------------===//
///
/// Tests for the paper's live-range renaming: non-final definitions in an
/// (unrolled) loop body get fresh names, and "for each register r that is
/// live at an edge that leaves the loop, a copy operation LR r=r is
/// inserted at that exit edge" — so the values reaching the loop's join
/// points stay correct on every exit path. Verified structurally and with
/// the differential execution oracle (strict store/call traces).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "audit/PassAudit.h"
#include "cfg/CfgEdit.h"
#include "cfg/Loops.h"
#include "oracle/ExecOracle.h"
#include "vliw/Rename.h"
#include "vliw/Unroll.h"

#include <gtest/gtest.h>

using namespace vsc;

namespace {

/// Argument-dependent trip count: after unrolling, different arguments
/// leave through different copies' exit edges, so the join at `exit:`
/// receives its values from every renamed path.
const char *CountedLoop = R"(
func main(1) {
entry:
  AI r32 = r3, 1
  MTCTR r32
  LI r34 = 0
  LI r35 = 1
loop:
  A r34 = r34, r35
  AI r35 = r35, 2
  BCT loop
exit:
  LR r3 = r34
  CALL print_int, 1
  LR r3 = r35
  CALL print_int, 1
  RET
}
)";

const char *LoopWithCall = R"(
func main(1) {
entry:
  AI r32 = r3, 1
  MTCTR r32
loop:
  LI r3 = 1
  CALL print_int, 1
  BCT loop
exit:
  RET
}
)";

size_t countExitCopies(const Function &F) {
  size_t N = 0;
  for (const auto &BB : F.blocks())
    for (const Instr &I : BB->instrs())
      if (I.Op == Opcode::LR && I.Dst.isGpr() && I.Src1.isGpr() &&
          I.Dst != I.Src1)
        ++N;
  return N;
}

Loop *soleInnermostLoop(Function &F, Cfg &G, Dominators &D, LoopInfo &LI) {
  auto Inner = LI.innermostLoops();
  return Inner.size() == 1 ? Inner.front() : nullptr;
}

} // namespace

TEST(Rename, LoopChainAcceptsCountedLoop) {
  auto M = parseOrDie(CountedLoop);
  ASSERT_TRUE(M);
  Function &F = *M->findFunction("main");
  Cfg G(F);
  Dominators D(G);
  LoopInfo LI(G, D);
  Loop *L = soleInnermostLoop(F, G, D, LI);
  ASSERT_TRUE(L);
  std::vector<BasicBlock *> Chain = loopChain(G, *L);
  ASSERT_EQ(Chain.size(), 1u);
  EXPECT_EQ(Chain.front(), L->Header);
}

TEST(Rename, LoopChainRefusesCalls) {
  // Renaming scope excludes call-bearing loops (Rename.h).
  auto M = parseOrDie(LoopWithCall);
  ASSERT_TRUE(M);
  Function &F = *M->findFunction("main");
  Cfg G(F);
  Dominators D(G);
  LoopInfo LI(G, D);
  Loop *L = soleInnermostLoop(F, G, D, LI);
  ASSERT_TRUE(L);
  EXPECT_TRUE(loopChain(G, *L).empty());
}

TEST(Rename, UnrolledLoopGetsRenamedWithExitCopies) {
  for (int64_t Arg : {0, 1, 4, 7}) {
    RunOptions Opts;
    Opts.Args = {Arg};
    auto M = transformPreservesBehaviour(
        CountedLoop,
        [](Module &Mod) {
          Function &F = *Mod.findFunction("main");
          unrollInnermostLoops(F, 2);
          straighten(F);
          EXPECT_GE(renameInnermostLoops(F), 1u);
        },
        Opts);
    ASSERT_TRUE(M);
    const Function &F = *M->findFunction("main");
    // The sum (r34) and stride (r35) are live out of the loop: the copy-0
    // exit edge needs bookkeeping copies for both.
    EXPECT_GE(countExitCopies(F), 2u) << printFunction(F);
    // Renaming introduced fresh names: the body's non-final defs no longer
    // all target r34/r35.
    EXPECT_GT(F.size(), 3u);
  }
}

TEST(Rename, JoinPointValuesCorrectOnEveryExitPath) {
  // The oracle compares the original against unroll+rename on a battery
  // that reaches both the odd-trip and the even-trip exit edge — the join
  // block must observe identical values either way. Strict store/call
  // traces are sound here: renaming preserves them exactly.
  auto M = parseOrDie(CountedLoop);
  ASSERT_TRUE(M);
  auto Before = cloneFunction(*M->findFunction("main"));
  Function &F = *M->findFunction("main");
  unrollInnermostLoops(F, 2);
  straighten(F);
  ASSERT_GE(renameInnermostLoops(F), 1u);
  ASSERT_EQ(verifyModule(*M), "") << printModule(*M);
  OracleOptions Opts;
  Opts.CompareStoreTrace = true;
  Opts.CompareCallTrace = true;
  OracleResult R = diffFunctions(*Before, F, *M, "rename", Opts);
  EXPECT_TRUE(R.ok()) << R.Report;
}

TEST(Rename, RenamedStoresKeepAddressAndOrder) {
  // A memory-writing loop: renaming must not perturb the store stream.
  const char *Text = R"(
global a : 64
func main(1) {
entry:
  LTOC r4 = .a
  AI r32 = r3, 1
  MTCTR r32
  LI r34 = 0
loop:
  SLI r36 = r34, 2
  A r37 = r4, r36
  ST 0(r37) !a = r34
  AI r34 = r34, 1
  BCT loop
exit:
  L r3 = 0(r4) !a
  CALL print_int, 1
  RET
}
)";
  auto M = parseOrDie(Text);
  ASSERT_TRUE(M);
  auto Before = cloneFunction(*M->findFunction("main"));
  Function &F = *M->findFunction("main");
  unrollInnermostLoops(F, 2);
  straighten(F);
  renameInnermostLoops(F);
  ASSERT_EQ(verifyModule(*M), "") << printModule(*M);
  OracleOptions Opts;
  Opts.CompareStoreTrace = true;
  OracleResult R = diffFunctions(*Before, F, *M, "rename", Opts);
  EXPECT_TRUE(R.ok()) << R.Report;
}

TEST(Rename, ReturnsZeroWhenNothingToRename) {
  // A loop whose registers are all defined once and not live out needs no
  // renaming work at all — the pass must not invent changes.
  const char *Text = R"(
func main(1) {
entry:
  AI r32 = r3, 1
  MTCTR r32
loop:
  BCT loop
exit:
  LI r3 = 0
  RET
}
)";
  auto M = parseOrDie(Text);
  ASSERT_TRUE(M);
  Function &F = *M->findFunction("main");
  std::string BeforeText = printFunction(F);
  renameInnermostLoops(F);
  ASSERT_EQ(verifyModule(*M), "") << printModule(*M);
  InterpResult R = interpret(*M);
  EXPECT_FALSE(R.Trapped) << R.TrapMsg;
}
