//===- tests/test_superblock.cpp - Trace/superblock formation --------------===//

#include "TestUtil.h"
#include "profile/Counters.h"
#include "profile/Superblock.h"
#include "vliw/Pipeline.h"
#include "workloads/Spec.h"

#include <gtest/gtest.h>

using namespace vsc;

namespace {

/// Hot diamond inside a loop: the left arm runs 7 of 8 iterations, and the
/// join has two predecessors — prime superblock material.
const char *HotDiamond = R"(
func main(0) {
entry:
  LI r30 = 4000
  MTCTR r30
  LI r31 = 0
loop:
  ANDI r32 = r31, 7
  AI r31 = r31, 1
  CI cr0 = r32, 7
  BT cold, cr0.eq
hot:
  AI r33 = r33, 1
join:
  AI r34 = r34, 2
  BCT loop
exit:
  A r3 = r33, r34
  CALL print_int, 1
  RET
cold:
  AI r33 = r33, 100
  B join
}
)";

ProfileData profileOf(Module &M) {
  return ProfileData::fromRun(simulate(M, rs6000()));
}

} // namespace

TEST(Superblock, TailDuplicatesJoinOnHotTrace) {
  auto M = parseOrDie(HotDiamond);
  ProfileData P = profileOf(*M);
  auto M2 = parseOrDie(HotDiamond);
  RunResult Before = simulate(*M2, rs6000());

  Function &F = *M2->findFunction("main");
  unsigned N = formSuperblocks(F, P);
  EXPECT_GE(N, 1u) << printFunction(F);
  ASSERT_EQ(verifyModule(*M2), "");
  // The hot path's join must now have a single predecessor; the cold path
  // goes to a clone.
  Cfg G(F);
  BasicBlock *Join = F.findBlock("join");
  ASSERT_TRUE(Join);
  EXPECT_EQ(G.preds(Join).size(), 1u) << printFunction(F);
  RunResult After = simulate(*M2, rs6000());
  EXPECT_EQ(Before.fingerprint(), After.fingerprint());
}

TEST(Superblock, EnablesJoinFreeScheduling) {
  auto Seed = parseOrDie(HotDiamond);
  ProfileData P = profileOf(*Seed);

  auto Plain = parseOrDie(HotDiamond);
  PipelineOptions PO;
  PO.Profile = &P;
  optimize(*Plain, OptLevel::Vliw, PO);
  RunResult RPlain = simulate(*Plain, rs6000());

  auto Sb = parseOrDie(HotDiamond);
  PipelineOptions SO;
  SO.Profile = &P;
  SO.Superblocks = true;
  optimize(*Sb, OptLevel::Vliw, SO);
  RunResult RSb = simulate(*Sb, rs6000());

  EXPECT_EQ(RPlain.fingerprint(), RSb.fingerprint());
  EXPECT_LE(RSb.Cycles, RPlain.Cycles + 5)
      << "superblocks must not regress the trained path";
}

TEST(Superblock, RespectsGrowthBudget) {
  auto M = parseOrDie(HotDiamond);
  ProfileData P = profileOf(*M);
  auto M2 = parseOrDie(HotDiamond);
  size_t Before = M2->instrCount();
  SuperblockOptions Opts;
  Opts.MaxGrowth = 0;
  EXPECT_EQ(formSuperblocks(*M2->findFunction("main"), P, Opts), 0u);
  EXPECT_EQ(M2->instrCount(), Before);
}

TEST(Superblock, ColdCodeUntouched) {
  // With a high hot threshold nothing qualifies.
  auto M = parseOrDie(HotDiamond);
  ProfileData P = profileOf(*M);
  auto M2 = parseOrDie(HotDiamond);
  SuperblockOptions Opts;
  Opts.HotThreshold = 1u << 30;
  EXPECT_EQ(formSuperblocks(*M2->findFunction("main"), P, Opts), 0u);
}

TEST(Superblock, WorkloadsAgreeUnderSuperblockPipeline) {
  for (const Workload &W : specWorkloads()) {
    auto Base = buildWorkload(W);
    optimize(*Base, OptLevel::None);
    RunOptions In = workloadInput(W.TrainScale);
    RunResult RB = simulate(*Base, rs6000(), In);
    ASSERT_FALSE(RB.Trapped) << W.Name;

    auto Train = buildWorkload(W);
    auto M = buildWorkload(W);
    ProfileData P = collectProfile(*Train, *M, rs6000(), In);
    PipelineOptions Opts;
    Opts.Profile = &P;
    Opts.Superblocks = true;
    optimize(*M, OptLevel::Vliw, Opts);
    ASSERT_EQ(verifyModule(*M), "") << W.Name;
    RunResult R = simulate(*M, rs6000(), In);
    EXPECT_EQ(RB.fingerprint(), R.fingerprint()) << W.Name;
  }
}
