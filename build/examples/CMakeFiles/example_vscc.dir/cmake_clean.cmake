file(REMOVE_RECURSE
  "CMakeFiles/example_vscc.dir/vscc.cpp.o"
  "CMakeFiles/example_vscc.dir/vscc.cpp.o.d"
  "example_vscc"
  "example_vscc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_vscc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
