# Empty compiler generated dependencies file for example_vscc.
# This may be replaced when dependencies are built.
