# Empty dependencies file for example_xlygetvalue_tour.
# This may be replaced when dependencies are built.
