file(REMOVE_RECURSE
  "CMakeFiles/example_xlygetvalue_tour.dir/xlygetvalue_tour.cpp.o"
  "CMakeFiles/example_xlygetvalue_tour.dir/xlygetvalue_tour.cpp.o.d"
  "example_xlygetvalue_tour"
  "example_xlygetvalue_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_xlygetvalue_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
