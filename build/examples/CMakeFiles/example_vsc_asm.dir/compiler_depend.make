# Empty compiler generated dependencies file for example_vsc_asm.
# This may be replaced when dependencies are built.
