file(REMOVE_RECURSE
  "CMakeFiles/example_vsc_asm.dir/vsc_asm.cpp.o"
  "CMakeFiles/example_vsc_asm.dir/vsc_asm.cpp.o.d"
  "example_vsc_asm"
  "example_vsc_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_vsc_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
