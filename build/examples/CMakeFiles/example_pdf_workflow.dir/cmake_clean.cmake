file(REMOVE_RECURSE
  "CMakeFiles/example_pdf_workflow.dir/pdf_workflow.cpp.o"
  "CMakeFiles/example_pdf_workflow.dir/pdf_workflow.cpp.o.d"
  "example_pdf_workflow"
  "example_pdf_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_pdf_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
