# Empty dependencies file for example_pdf_workflow.
# This may be replaced when dependencies are built.
