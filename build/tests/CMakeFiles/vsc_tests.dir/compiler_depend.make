# Empty compiler generated dependencies file for vsc_tests.
# This may be replaced when dependencies are built.
