
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/vsc_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/vsc_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_biconnected.cpp" "tests/CMakeFiles/vsc_tests.dir/test_biconnected.cpp.o" "gcc" "tests/CMakeFiles/vsc_tests.dir/test_biconnected.cpp.o.d"
  "/root/repo/tests/test_block_expansion.cpp" "tests/CMakeFiles/vsc_tests.dir/test_block_expansion.cpp.o" "gcc" "tests/CMakeFiles/vsc_tests.dir/test_block_expansion.cpp.o.d"
  "/root/repo/tests/test_calibration.cpp" "tests/CMakeFiles/vsc_tests.dir/test_calibration.cpp.o" "gcc" "tests/CMakeFiles/vsc_tests.dir/test_calibration.cpp.o.d"
  "/root/repo/tests/test_cfg.cpp" "tests/CMakeFiles/vsc_tests.dir/test_cfg.cpp.o" "gcc" "tests/CMakeFiles/vsc_tests.dir/test_cfg.cpp.o.d"
  "/root/repo/tests/test_classical.cpp" "tests/CMakeFiles/vsc_tests.dir/test_classical.cpp.o" "gcc" "tests/CMakeFiles/vsc_tests.dir/test_classical.cpp.o.d"
  "/root/repo/tests/test_combining.cpp" "tests/CMakeFiles/vsc_tests.dir/test_combining.cpp.o" "gcc" "tests/CMakeFiles/vsc_tests.dir/test_combining.cpp.o.d"
  "/root/repo/tests/test_frontend.cpp" "tests/CMakeFiles/vsc_tests.dir/test_frontend.cpp.o" "gcc" "tests/CMakeFiles/vsc_tests.dir/test_frontend.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/vsc_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/vsc_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_inline.cpp" "tests/CMakeFiles/vsc_tests.dir/test_inline.cpp.o" "gcc" "tests/CMakeFiles/vsc_tests.dir/test_inline.cpp.o.d"
  "/root/repo/tests/test_ir.cpp" "tests/CMakeFiles/vsc_tests.dir/test_ir.cpp.o" "gcc" "tests/CMakeFiles/vsc_tests.dir/test_ir.cpp.o.d"
  "/root/repo/tests/test_loadstore_motion.cpp" "tests/CMakeFiles/vsc_tests.dir/test_loadstore_motion.cpp.o" "gcc" "tests/CMakeFiles/vsc_tests.dir/test_loadstore_motion.cpp.o.d"
  "/root/repo/tests/test_pdf_gate.cpp" "tests/CMakeFiles/vsc_tests.dir/test_pdf_gate.cpp.o" "gcc" "tests/CMakeFiles/vsc_tests.dir/test_pdf_gate.cpp.o.d"
  "/root/repo/tests/test_profiling.cpp" "tests/CMakeFiles/vsc_tests.dir/test_profiling.cpp.o" "gcc" "tests/CMakeFiles/vsc_tests.dir/test_profiling.cpp.o.d"
  "/root/repo/tests/test_prolog_tailoring.cpp" "tests/CMakeFiles/vsc_tests.dir/test_prolog_tailoring.cpp.o" "gcc" "tests/CMakeFiles/vsc_tests.dir/test_prolog_tailoring.cpp.o.d"
  "/root/repo/tests/test_regalloc.cpp" "tests/CMakeFiles/vsc_tests.dir/test_regalloc.cpp.o" "gcc" "tests/CMakeFiles/vsc_tests.dir/test_regalloc.cpp.o.d"
  "/root/repo/tests/test_schedule.cpp" "tests/CMakeFiles/vsc_tests.dir/test_schedule.cpp.o" "gcc" "tests/CMakeFiles/vsc_tests.dir/test_schedule.cpp.o.d"
  "/root/repo/tests/test_simulator.cpp" "tests/CMakeFiles/vsc_tests.dir/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/vsc_tests.dir/test_simulator.cpp.o.d"
  "/root/repo/tests/test_superblock.cpp" "tests/CMakeFiles/vsc_tests.dir/test_superblock.cpp.o" "gcc" "tests/CMakeFiles/vsc_tests.dir/test_superblock.cpp.o.d"
  "/root/repo/tests/test_support.cpp" "tests/CMakeFiles/vsc_tests.dir/test_support.cpp.o" "gcc" "tests/CMakeFiles/vsc_tests.dir/test_support.cpp.o.d"
  "/root/repo/tests/test_timing_properties.cpp" "tests/CMakeFiles/vsc_tests.dir/test_timing_properties.cpp.o" "gcc" "tests/CMakeFiles/vsc_tests.dir/test_timing_properties.cpp.o.d"
  "/root/repo/tests/test_unspeculation.cpp" "tests/CMakeFiles/vsc_tests.dir/test_unspeculation.cpp.o" "gcc" "tests/CMakeFiles/vsc_tests.dir/test_unspeculation.cpp.o.d"
  "/root/repo/tests/test_vliw_packing.cpp" "tests/CMakeFiles/vsc_tests.dir/test_vliw_packing.cpp.o" "gcc" "tests/CMakeFiles/vsc_tests.dir/test_vliw_packing.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/vsc_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/vsc_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vsc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
