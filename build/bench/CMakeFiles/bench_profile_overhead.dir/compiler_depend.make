# Empty compiler generated dependencies file for bench_profile_overhead.
# This may be replaced when dependencies are built.
