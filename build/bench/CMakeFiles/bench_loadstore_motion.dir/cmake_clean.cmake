file(REMOVE_RECURSE
  "CMakeFiles/bench_loadstore_motion.dir/bench_loadstore_motion.cpp.o"
  "CMakeFiles/bench_loadstore_motion.dir/bench_loadstore_motion.cpp.o.d"
  "bench_loadstore_motion"
  "bench_loadstore_motion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_loadstore_motion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
