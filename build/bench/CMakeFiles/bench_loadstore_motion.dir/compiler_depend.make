# Empty compiler generated dependencies file for bench_loadstore_motion.
# This may be replaced when dependencies are built.
