file(REMOVE_RECURSE
  "CMakeFiles/bench_prolog_tailoring.dir/bench_prolog_tailoring.cpp.o"
  "CMakeFiles/bench_prolog_tailoring.dir/bench_prolog_tailoring.cpp.o.d"
  "bench_prolog_tailoring"
  "bench_prolog_tailoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prolog_tailoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
