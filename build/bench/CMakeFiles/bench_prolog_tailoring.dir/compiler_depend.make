# Empty compiler generated dependencies file for bench_prolog_tailoring.
# This may be replaced when dependencies are built.
