# Empty dependencies file for bench_unspeculation.
# This may be replaced when dependencies are built.
