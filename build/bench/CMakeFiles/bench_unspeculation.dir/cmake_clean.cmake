file(REMOVE_RECURSE
  "CMakeFiles/bench_unspeculation.dir/bench_unspeculation.cpp.o"
  "CMakeFiles/bench_unspeculation.dir/bench_unspeculation.cpp.o.d"
  "bench_unspeculation"
  "bench_unspeculation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_unspeculation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
