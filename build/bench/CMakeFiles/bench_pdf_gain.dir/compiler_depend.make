# Empty compiler generated dependencies file for bench_pdf_gain.
# This may be replaced when dependencies are built.
