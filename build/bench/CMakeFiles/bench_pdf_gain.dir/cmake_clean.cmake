file(REMOVE_RECURSE
  "CMakeFiles/bench_pdf_gain.dir/bench_pdf_gain.cpp.o"
  "CMakeFiles/bench_pdf_gain.dir/bench_pdf_gain.cpp.o.d"
  "bench_pdf_gain"
  "bench_pdf_gain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pdf_gain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
