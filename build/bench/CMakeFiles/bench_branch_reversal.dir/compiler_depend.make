# Empty compiler generated dependencies file for bench_branch_reversal.
# This may be replaced when dependencies are built.
