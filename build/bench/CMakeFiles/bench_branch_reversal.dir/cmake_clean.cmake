file(REMOVE_RECURSE
  "CMakeFiles/bench_branch_reversal.dir/bench_branch_reversal.cpp.o"
  "CMakeFiles/bench_branch_reversal.dir/bench_branch_reversal.cpp.o.d"
  "bench_branch_reversal"
  "bench_branch_reversal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_branch_reversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
