# Empty dependencies file for bench_superblock.
# This may be replaced when dependencies are built.
