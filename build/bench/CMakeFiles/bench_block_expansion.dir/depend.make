# Empty dependencies file for bench_block_expansion.
# This may be replaced when dependencies are built.
