file(REMOVE_RECURSE
  "CMakeFiles/bench_block_expansion.dir/bench_block_expansion.cpp.o"
  "CMakeFiles/bench_block_expansion.dir/bench_block_expansion.cpp.o.d"
  "bench_block_expansion"
  "bench_block_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_block_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
