# Empty dependencies file for bench_li_pipeline.
# This may be replaced when dependencies are built.
