file(REMOVE_RECURSE
  "CMakeFiles/bench_li_pipeline.dir/bench_li_pipeline.cpp.o"
  "CMakeFiles/bench_li_pipeline.dir/bench_li_pipeline.cpp.o.d"
  "bench_li_pipeline"
  "bench_li_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_li_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
