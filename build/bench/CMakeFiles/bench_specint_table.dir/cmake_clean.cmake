file(REMOVE_RECURSE
  "CMakeFiles/bench_specint_table.dir/bench_specint_table.cpp.o"
  "CMakeFiles/bench_specint_table.dir/bench_specint_table.cpp.o.d"
  "bench_specint_table"
  "bench_specint_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_specint_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
