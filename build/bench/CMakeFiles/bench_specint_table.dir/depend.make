# Empty dependencies file for bench_specint_table.
# This may be replaced when dependencies are built.
