file(REMOVE_RECURSE
  "libvsc.a"
)
