# Empty compiler generated dependencies file for vsc.
# This may be replaced when dependencies are built.
