
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/Liveness.cpp" "src/CMakeFiles/vsc.dir/analysis/Liveness.cpp.o" "gcc" "src/CMakeFiles/vsc.dir/analysis/Liveness.cpp.o.d"
  "/root/repo/src/analysis/MemAlias.cpp" "src/CMakeFiles/vsc.dir/analysis/MemAlias.cpp.o" "gcc" "src/CMakeFiles/vsc.dir/analysis/MemAlias.cpp.o.d"
  "/root/repo/src/cfg/Biconnected.cpp" "src/CMakeFiles/vsc.dir/cfg/Biconnected.cpp.o" "gcc" "src/CMakeFiles/vsc.dir/cfg/Biconnected.cpp.o.d"
  "/root/repo/src/cfg/Cfg.cpp" "src/CMakeFiles/vsc.dir/cfg/Cfg.cpp.o" "gcc" "src/CMakeFiles/vsc.dir/cfg/Cfg.cpp.o.d"
  "/root/repo/src/cfg/CfgEdit.cpp" "src/CMakeFiles/vsc.dir/cfg/CfgEdit.cpp.o" "gcc" "src/CMakeFiles/vsc.dir/cfg/CfgEdit.cpp.o.d"
  "/root/repo/src/cfg/Dominators.cpp" "src/CMakeFiles/vsc.dir/cfg/Dominators.cpp.o" "gcc" "src/CMakeFiles/vsc.dir/cfg/Dominators.cpp.o.d"
  "/root/repo/src/cfg/Loops.cpp" "src/CMakeFiles/vsc.dir/cfg/Loops.cpp.o" "gcc" "src/CMakeFiles/vsc.dir/cfg/Loops.cpp.o.d"
  "/root/repo/src/frontend/CodeGen.cpp" "src/CMakeFiles/vsc.dir/frontend/CodeGen.cpp.o" "gcc" "src/CMakeFiles/vsc.dir/frontend/CodeGen.cpp.o.d"
  "/root/repo/src/frontend/Lexer.cpp" "src/CMakeFiles/vsc.dir/frontend/Lexer.cpp.o" "gcc" "src/CMakeFiles/vsc.dir/frontend/Lexer.cpp.o.d"
  "/root/repo/src/frontend/Parser.cpp" "src/CMakeFiles/vsc.dir/frontend/Parser.cpp.o" "gcc" "src/CMakeFiles/vsc.dir/frontend/Parser.cpp.o.d"
  "/root/repo/src/ir/Function.cpp" "src/CMakeFiles/vsc.dir/ir/Function.cpp.o" "gcc" "src/CMakeFiles/vsc.dir/ir/Function.cpp.o.d"
  "/root/repo/src/ir/Instr.cpp" "src/CMakeFiles/vsc.dir/ir/Instr.cpp.o" "gcc" "src/CMakeFiles/vsc.dir/ir/Instr.cpp.o.d"
  "/root/repo/src/ir/Opcode.cpp" "src/CMakeFiles/vsc.dir/ir/Opcode.cpp.o" "gcc" "src/CMakeFiles/vsc.dir/ir/Opcode.cpp.o.d"
  "/root/repo/src/ir/Parser.cpp" "src/CMakeFiles/vsc.dir/ir/Parser.cpp.o" "gcc" "src/CMakeFiles/vsc.dir/ir/Parser.cpp.o.d"
  "/root/repo/src/ir/Printer.cpp" "src/CMakeFiles/vsc.dir/ir/Printer.cpp.o" "gcc" "src/CMakeFiles/vsc.dir/ir/Printer.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "src/CMakeFiles/vsc.dir/ir/Verifier.cpp.o" "gcc" "src/CMakeFiles/vsc.dir/ir/Verifier.cpp.o.d"
  "/root/repo/src/machine/MachineModel.cpp" "src/CMakeFiles/vsc.dir/machine/MachineModel.cpp.o" "gcc" "src/CMakeFiles/vsc.dir/machine/MachineModel.cpp.o.d"
  "/root/repo/src/opt/Classical.cpp" "src/CMakeFiles/vsc.dir/opt/Classical.cpp.o" "gcc" "src/CMakeFiles/vsc.dir/opt/Classical.cpp.o.d"
  "/root/repo/src/opt/Inline.cpp" "src/CMakeFiles/vsc.dir/opt/Inline.cpp.o" "gcc" "src/CMakeFiles/vsc.dir/opt/Inline.cpp.o.d"
  "/root/repo/src/opt/RegAlloc.cpp" "src/CMakeFiles/vsc.dir/opt/RegAlloc.cpp.o" "gcc" "src/CMakeFiles/vsc.dir/opt/RegAlloc.cpp.o.d"
  "/root/repo/src/profile/Counters.cpp" "src/CMakeFiles/vsc.dir/profile/Counters.cpp.o" "gcc" "src/CMakeFiles/vsc.dir/profile/Counters.cpp.o.d"
  "/root/repo/src/profile/PdfLayout.cpp" "src/CMakeFiles/vsc.dir/profile/PdfLayout.cpp.o" "gcc" "src/CMakeFiles/vsc.dir/profile/PdfLayout.cpp.o.d"
  "/root/repo/src/profile/Superblock.cpp" "src/CMakeFiles/vsc.dir/profile/Superblock.cpp.o" "gcc" "src/CMakeFiles/vsc.dir/profile/Superblock.cpp.o.d"
  "/root/repo/src/sim/Simulator.cpp" "src/CMakeFiles/vsc.dir/sim/Simulator.cpp.o" "gcc" "src/CMakeFiles/vsc.dir/sim/Simulator.cpp.o.d"
  "/root/repo/src/vliw/BlockExpansion.cpp" "src/CMakeFiles/vsc.dir/vliw/BlockExpansion.cpp.o" "gcc" "src/CMakeFiles/vsc.dir/vliw/BlockExpansion.cpp.o.d"
  "/root/repo/src/vliw/Frame.cpp" "src/CMakeFiles/vsc.dir/vliw/Frame.cpp.o" "gcc" "src/CMakeFiles/vsc.dir/vliw/Frame.cpp.o.d"
  "/root/repo/src/vliw/LimitedCombine.cpp" "src/CMakeFiles/vsc.dir/vliw/LimitedCombine.cpp.o" "gcc" "src/CMakeFiles/vsc.dir/vliw/LimitedCombine.cpp.o.d"
  "/root/repo/src/vliw/LoadStoreMotion.cpp" "src/CMakeFiles/vsc.dir/vliw/LoadStoreMotion.cpp.o" "gcc" "src/CMakeFiles/vsc.dir/vliw/LoadStoreMotion.cpp.o.d"
  "/root/repo/src/vliw/Pipeline.cpp" "src/CMakeFiles/vsc.dir/vliw/Pipeline.cpp.o" "gcc" "src/CMakeFiles/vsc.dir/vliw/Pipeline.cpp.o.d"
  "/root/repo/src/vliw/PrologTailor.cpp" "src/CMakeFiles/vsc.dir/vliw/PrologTailor.cpp.o" "gcc" "src/CMakeFiles/vsc.dir/vliw/PrologTailor.cpp.o.d"
  "/root/repo/src/vliw/Rename.cpp" "src/CMakeFiles/vsc.dir/vliw/Rename.cpp.o" "gcc" "src/CMakeFiles/vsc.dir/vliw/Rename.cpp.o.d"
  "/root/repo/src/vliw/Schedule.cpp" "src/CMakeFiles/vsc.dir/vliw/Schedule.cpp.o" "gcc" "src/CMakeFiles/vsc.dir/vliw/Schedule.cpp.o.d"
  "/root/repo/src/vliw/Unroll.cpp" "src/CMakeFiles/vsc.dir/vliw/Unroll.cpp.o" "gcc" "src/CMakeFiles/vsc.dir/vliw/Unroll.cpp.o.d"
  "/root/repo/src/vliw/Unspeculation.cpp" "src/CMakeFiles/vsc.dir/vliw/Unspeculation.cpp.o" "gcc" "src/CMakeFiles/vsc.dir/vliw/Unspeculation.cpp.o.d"
  "/root/repo/src/workloads/LiKernel.cpp" "src/CMakeFiles/vsc.dir/workloads/LiKernel.cpp.o" "gcc" "src/CMakeFiles/vsc.dir/workloads/LiKernel.cpp.o.d"
  "/root/repo/src/workloads/RandomProgram.cpp" "src/CMakeFiles/vsc.dir/workloads/RandomProgram.cpp.o" "gcc" "src/CMakeFiles/vsc.dir/workloads/RandomProgram.cpp.o.d"
  "/root/repo/src/workloads/Spec.cpp" "src/CMakeFiles/vsc.dir/workloads/Spec.cpp.o" "gcc" "src/CMakeFiles/vsc.dir/workloads/Spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
