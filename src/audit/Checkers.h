//===- audit/Checkers.h - Semantic static-analysis checkers ---*- C++ -*-===//
///
/// \file
/// The four dataflow-based checkers behind PassAudit. Each appends findings
/// to an AuditResult and never mutates the IR (non-const Function access
/// inside the implementations exists only because Cfg takes a Function&).
///
/// What each checker proves:
///
///  * auditUseBeforeDef — every register read is reached by a definition on
///    *all* paths from the entry (forward must-defined dataflow over the
///    Cfg). ABI live-in registers (r1/sp, r2/TOC, the r3..r10 argument
///    registers, and the r13..r31 callee-saved set) are whitelisted.
///    CALL clobbers (r0, r4..r12, cr0..cr7, ctr) are treated as *kills*,
///    not definitions — reading one after a call without redefining it is
///    reading garbage; only r3 (the return value) is defined by a call.
///
///  * auditSpeculationSafety — differential: every load that a pass moved
///    above one of its guarding conditional branches (guard = a branch
///    that dominates the load's old position and that the load did not
///    post-dominate) must satisfy the paper's speculation-safety
///    conditions — provably non-trapping (isSafeSpeculativeLoad: !safe
///    annotation, owned stack frame, or TOC-anchored global of sufficient
///    extent) or covered by a dominating same-address access (MustAlias
///    under analysis/MemAlias). Trap-capable or side-effecting matched
///    instructions (DIV, LU, stores, calls) may never lose a guard.
///    Instructions are matched across the pass by their unique Instr::Id
///    (clones get fresh ids, so only genuinely *moved* code is compared),
///    and a lost guard is enforced only when it is provably speculation:
///    the guard branch must survive textually unchanged (same opcode,
///    condition, and target) in its original block, and the site's new
///    block must (reflexively) dominate the branch's block — the shape of
///    an upward hoist past the branch. Sites that merely lost the
///    dominance relation because a restructuring pass relabelled,
///    duplicated, or retargeted the control flow around them are skipped;
///    their guard structure is re-derived at the next snapshot.
///
///  * auditScheduleHazards — re-derives each block's VLIW packing
///    (packIntoVliwWords) and validates it with an independent model: per
///    dispatch group no more than FxuWidth/BuWidth operations per unit,
///    groups in non-decreasing cycle order covering every instruction
///    exactly once, and no non-branch instruction consuming a result
///    before MachineModel::latencyOf cycles after its producer issued.
///
///  * auditCfgLoopIntegrity — CFG/loop invariants the reordering passes
///    must preserve: the entry block has no predecessors (otherwise the
///    prolog would re-execute), instruction ids stay unique (the clone
///    bookkeeping discipline the differential checkers rely on), no edge
///    enters a natural loop except through its header, and — differential,
///    when a "before" function is supplied — a back-edge branch that
///    survives a pass and still targets its old loop header must still be
///    dominated by it (a pass that breaks this has made the loop
///    irreducible, e.g. by jumping into the middle of an unrolled body).
///    The back-edge check stands down when the pass visibly restructured
///    the loop on purpose: the header's own instructions changed, or a
///    freshly created block (label that did not exist before the pass)
///    acquired an edge into the old loop body, as block expansion does
///    when it tail-duplicates the header compare into predecessors.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_AUDIT_CHECKERS_H
#define VSC_AUDIT_CHECKERS_H

#include "audit/Audit.h"
#include "ir/Module.h"
#include "machine/MachineModel.h"
#include "vliw/Schedule.h"

namespace vsc {

/// Dominance-based use-before-def audit (see file comment).
void auditUseBeforeDef(const Function &F, AuditResult &R);

/// Differential speculation-safety audit of \p After relative to
/// \p Before (the same function, snapshotted before the pass). \p M
/// provides global extents for load-safety proofs.
void auditSpeculationSafety(const Function &Before, const Function &After,
                            const Module &M, AuditResult &R);

/// Validates one explicit packing of \p BB against \p MM. Exposed so tests
/// can feed hand-built (corrupt) packings; auditScheduleHazards feeds it
/// packIntoVliwWords output.
void auditPacking(const Function &F, const BasicBlock &BB,
                  const std::vector<VliwWord> &Words, const MachineModel &MM,
                  AuditResult &R);

/// Packs every block of \p F under \p MM and validates the packing.
void auditScheduleHazards(const Function &F, const MachineModel &MM,
                          AuditResult &R);

/// CFG/loop-integrity audit; \p Before enables the differential back-edge
/// check and may be null.
void auditCfgLoopIntegrity(const Function *Before, const Function &After,
                           AuditResult &R);

} // namespace vsc

#endif // VSC_AUDIT_CHECKERS_H
