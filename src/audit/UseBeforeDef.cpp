//===- audit/UseBeforeDef.cpp - Must-defined dataflow audit -----------------===//

#include "audit/Checkers.h"

#include "analysis/Liveness.h"
#include "cfg/Cfg.h"
#include "support/BitVector.h"

#include <unordered_map>

using namespace vsc;

namespace {

/// Registers the RS/6000 linkage convention makes live on function entry:
/// the stack pointer, the TOC, the argument registers, and the caller's
/// callee-saved values (which prologs may store and RET implicitly uses).
bool isAbiLiveIn(Reg R) {
  if (!R.isGpr())
    return false;
  uint32_t Id = R.id();
  return Id == 1 || Id == 2 || (Id >= 3 && Id <= 10) ||
         (Id >= 13 && Id <= 31);
}

/// Registers whose post-call contents are garbage under the linkage
/// convention (r3 carries the return value and is excluded).
const std::vector<Reg> &callKills() {
  static const std::vector<Reg> Kills = [] {
    std::vector<Reg> V;
    V.push_back(Reg::gpr(0));
    for (uint32_t R = 4; R <= 12; ++R)
      V.push_back(Reg::gpr(R));
    for (uint32_t C = 0; C < 8; ++C)
      V.push_back(Reg::cr(C));
    V.push_back(Reg::ctr());
    return V;
  }();
  return Kills;
}

} // namespace

void vsc::auditUseBeforeDef(const Function &F, AuditResult &R) {
  if (F.blocks().empty())
    return;
  // Cfg requires a mutable reference but is a read-only view.
  Cfg G(const_cast<Function &>(F));
  RegUniverse U(F);
  size_t N = U.size();

  BitVector EntryIn(N);
  for (size_t I = 0; I != N; ++I)
    if (isAbiLiveIn(U.regAt(I)))
      EntryIn.set(I);

  std::vector<Reg> Uses, Defs;
  // Applies one instruction to the must-defined set, reporting undefined
  // uses through OnUndef.
  auto Step = [&](const Instr &I, BitVector &Set, auto &&OnUndef) {
    Uses.clear();
    I.collectUses(Uses);
    for (Reg Use : Uses) {
      int Idx = U.indexOf(Use);
      if (Idx >= 0 && !Set.test(static_cast<size_t>(Idx)))
        OnUndef(Use);
    }
    if (I.isCall()) {
      for (Reg K : callKills()) {
        int Idx = U.indexOf(K);
        if (Idx >= 0)
          Set.reset(static_cast<size_t>(Idx));
      }
      int Ret = U.indexOf(regs::retval());
      if (Ret >= 0)
        Set.set(static_cast<size_t>(Ret));
      return;
    }
    Defs.clear();
    I.collectDefs(Defs);
    for (Reg D : Defs) {
      int Idx = U.indexOf(D);
      if (Idx >= 0)
        Set.set(static_cast<size_t>(Idx));
    }
  };

  // Forward must-defined fixpoint over the reachable blocks. Top (all
  // defined) everywhere, entry seeded with the ABI live-ins; In[B] is the
  // intersection of the predecessors' Outs.
  std::unordered_map<const BasicBlock *, BitVector> Out;
  for (const auto &BB : F.blocks())
    Out.emplace(BB.get(), BitVector(N, true));

  auto ComputeIn = [&](const BasicBlock *BB) {
    if (BB == F.entry())
      return EntryIn;
    BitVector In(N, true);
    for (const BasicBlock *P : G.preds(BB))
      In &= Out.at(P);
    return In;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : G.rpo()) {
      BitVector Set = ComputeIn(BB);
      for (const Instr &I : BB->instrs())
        Step(I, Set, [](Reg) {});
      if (Set != Out.at(BB)) {
        Out.at(BB) = std::move(Set);
        Changed = true;
      }
    }
  }

  // Reporting pass.
  for (BasicBlock *BB : G.rpo()) {
    BitVector Set = ComputeIn(BB);
    for (const Instr &I : BB->instrs())
      Step(I, Set, [&](Reg Use) {
        R.add("use-before-def", F.name(), BB->label() + ": " + I.str(),
              "register " + Use.str() +
                  " is read but not defined on every path from the entry" +
                  (Use.isPhysical() && !isAbiLiveIn(Use)
                       ? " (and it is not ABI live-in)"
                       : ""));
      });
  }
}
