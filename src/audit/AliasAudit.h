//===- audit/AliasAudit.h - Dynamic NoAlias claim validation --*- C++ -*-===//
///
/// \file
/// Closes the soundness loop on memory disambiguation: every NoAlias
/// verdict the flow-sensitive tier (analysis/ValueTrack.h) issues is a
/// *claim* about runtime addresses, tagged with the window it is claimed
/// over (AliasClaimKind). This audit cross-checks those claims against
/// the effective addresses the fast simulator actually observes:
///
///  1. AliasClaimLog collects claims — installed as the process claim
///     sink around an audited optimize() run, so the pipeline's own
///     disambiguation decisions are recorded with instruction-pair
///     provenance.
///  2. runAliasAudit() re-derives a fresh AliasAnalysis on the *final*
///     module and enumerates claims over all memory-access pairs (same-
///     block pairs also under SameExecution scope when no intervening
///     instruction redefines the shared base), merges the surviving
///     pipeline claims, then simulates a battery of inputs with a
///     MemAccessWatcher that validates each claim in its window:
///
///       * Absolute           — the two instructions' accessed intervals
///                              must never overlap, across the whole run;
///       * PerInvocation      — interval sets reset at each invocation of
///                              the function (a stack of per-invocation
///                              records mirrors the call stack);
///       * PerBlockExecution  — only accesses within one execution of the
///                              claim's block are compared (block entries
///                              stamp a fresh epoch; a call suspends and
///                              resumes the same epoch).
///
/// Coverage is sound but not complete: a claim whose instructions no
/// longer exist in the final module, stopped being memory accesses (LVN
/// rewrote the load into LR, keeping its id), or — for PerBlockExecution
/// — ended up in different blocks (unspeculation moved one), is dropped
/// as vacuous; and functions with more than ~1024 memory accesses only
/// enumerate same-block pairs. Any overlap observed inside a claimed
/// window is an unsound NoAlias verdict and becomes an AuditFinding.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_AUDIT_ALIASAUDIT_H
#define VSC_AUDIT_ALIASAUDIT_H

#include "analysis/ValueTrack.h"
#include "audit/Audit.h"
#include "ir/Module.h"
#include "machine/MachineModel.h"
#include "sim/Simulator.h"

#include <mutex>
#include <unordered_set>
#include <vector>

namespace vsc {

/// Thread-safe claim collector (the sink the pipeline installs around an
/// audited optimize() run). Claims are deduplicated by (function,
/// unordered id pair, kind). Accessors are meant for after the sink has
/// been uninstalled; claims() is not synchronized against concurrent
/// noAliasClaim calls.
class AliasClaimLog : public AliasClaimSink {
public:
  void noAliasClaim(const AliasClaim &C) override;
  const std::vector<AliasClaim> &claims() const { return Claims; }
  size_t size() const;
  void clear();

private:
  mutable std::mutex Mu;
  std::vector<AliasClaim> Claims;
  std::unordered_set<std::string> Seen;
};

/// Bookkeeping runAliasAudit can export — how much the audit actually
/// exercised (a clean result with zero checks hit proves nothing).
struct AliasAuditStats {
  /// Claims enumerated on the final module's own AliasAnalysis.
  uint64_t StaticClaims = 0;
  /// Pipeline claims that survived vacuity filtering and deduplication.
  uint64_t PipelineClaims = 0;
  /// Pipeline claims dropped as vacuous (id gone, no longer a memory
  /// access, or PerBlockExecution pair split across blocks).
  uint64_t DroppedClaims = 0;
  /// Memory-access events observed across the battery.
  uint64_t Events = 0;
  /// Overlap comparisons performed inside live claim windows.
  uint64_t ChecksHit = 0;
};

/// The fuzz/oracle-flavoured default battery: the standard oracle input
/// vector under two argument sets, 20M-instruction budget each.
std::vector<RunOptions> defaultAliasAuditBattery();

/// Validates NoAlias claims against runtime addresses (see file comment).
/// \p PipelineClaims are merged with the claims enumerated on \p M itself;
/// \p Battery drives the fast simulator (each element's Watcher field is
/// overwritten). Every violated claim appends one "alias-audit" finding.
AuditResult runAliasAudit(const Module &M, const MachineModel &MM,
                          const std::vector<RunOptions> &Battery,
                          const std::vector<AliasClaim> &PipelineClaims = {},
                          AliasAuditStats *Stats = nullptr);

} // namespace vsc

#endif // VSC_AUDIT_ALIASAUDIT_H
