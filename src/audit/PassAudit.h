//===- audit/PassAudit.h - Pass-boundary audit harness --------*- C++ -*-===//
///
/// \file
/// The pass-boundary harness behind PipelineOptions::Audit. A PassAudit
/// keeps a snapshot (deep clone, instruction ids preserved) of every
/// function; each checkpoint re-audits the functions whose text changed
/// since the snapshot, running verifyFunction plus the absolute checkers
/// (use-before-def, schedule-hazard, CFG/loop integrity) and the
/// differential checkers against the snapshot (speculation safety,
/// back-edge preservation). On success the snapshot advances; on failure
/// the findings are stamped with the offending pipeline stage and
/// AuditResult::Report carries a printable diagnosis including an IR diff
/// of each offending function — "which pass broke which invariant".
///
//===----------------------------------------------------------------------===//

#ifndef VSC_AUDIT_PASSAUDIT_H
#define VSC_AUDIT_PASSAUDIT_H

#include "analysis/MemAlias.h"
#include "audit/Audit.h"
#include "ir/Module.h"
#include "machine/MachineModel.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace vsc {

/// Deep copy of \p F preserving instruction ids (the currency of the
/// differential checkers).
std::unique_ptr<Function> cloneFunction(const Function &F);

/// Deep copy of \p M: globals and functions, instruction ids preserved,
/// fresh-register and fresh-id counters advanced past everything in use —
/// safe to instrument or optimize independently of the original. One
/// build + N clones replaces N rebuilds in the PDF experiments.
std::unique_ptr<Module> cloneModule(const Module &M);

/// One-shot audit of \p M (the vsc-audit CLI entry point): verifyModule
/// plus every absolute checker on every function; when \p Before is given,
/// additionally the differential checkers on functions present in both
/// modules (matched by name).
AuditResult auditModule(const Module &M, const MachineModel &MM,
                        const Module *Before = nullptr);

class PassAudit {
public:
  PassAudit(AuditLevel Level, const MachineModel &MM)
      : Level(Level), MM(MM), AliasSnap(aliasQueryCounters()) {}

  AuditLevel level() const { return Level; }
  bool enabled() const { return Level != AuditLevel::Off; }
  /// \returns true when per-sub-pass checkpoints (inside the per-function
  /// VLIW pipeline) should run.
  bool full() const { return Level == AuditLevel::Full; }

  /// First checkpoint: audits the input module with the absolute checkers
  /// and takes the initial snapshot.
  AuditResult begin(const Module &M) { return checkpoint(M, "input"); }

  /// Audits every function of \p M whose printed form changed since its
  /// snapshot. Advances the snapshots only when the audit is clean.
  AuditResult checkpoint(const Module &M, const std::string &Stage);

  /// Audits a single function (used for per-sub-pass checkpoints at Full
  /// level, where only \p F can have changed).
  AuditResult checkpointFunction(const Function &F, const Module &M,
                                 const std::string &Stage);

  /// Disambiguation queries attributed to each pipeline stage: the delta
  /// of the process-wide counters (analysis/MemAlias.h) between
  /// checkpoints, charged to the stage that just ran. Per-function stage
  /// names "pass(fn)" are merged under the bare pass name; the audit's own
  /// queries (speculation-safety checking) are excluded by re-snapshotting
  /// after each checkpoint's checkers finish.
  const std::vector<std::pair<std::string, AliasQueryCounters>> &
  aliasQueryLog() const {
    return QueryLog;
  }

private:
  void auditOne(const Function &F, const Module &M, AuditResult &R,
                std::vector<const Function *> &Changed);
  void finalize(AuditResult &R, const std::string &Stage,
                const std::vector<const Function *> &Changed);
  void chargeAliasQueries(const std::string &Stage);

  AuditLevel Level;
  MachineModel MM;
  std::unordered_map<std::string, std::unique_ptr<Function>> Snap;
  std::unordered_map<std::string, std::string> SnapText;
  AliasQueryCounters AliasSnap;
  std::vector<std::pair<std::string, AliasQueryCounters>> QueryLog;
};

} // namespace vsc

#endif // VSC_AUDIT_PASSAUDIT_H
