//===- audit/ScheduleHazard.cpp - Dispatch-group hazard audit ---------------===//

#include "audit/Checkers.h"

#include <unordered_map>

using namespace vsc;

namespace {

std::string opRef(const BasicBlock &BB, size_t Idx) {
  return BB.label() + "[" + std::to_string(Idx) + "] " +
         BB.instrs()[Idx].str();
}

} // namespace

void vsc::auditPacking(const Function &F, const BasicBlock &BB,
                       const std::vector<VliwWord> &Words,
                       const MachineModel &MM, AuditResult &R) {
  size_t N = BB.instrs().size();
  auto Add = [&](const std::string &Where, const std::string &Msg) {
    R.add("schedule-hazard", F.name(), Where, Msg);
  };

  // Structural validity: every instruction packed exactly once, in program
  // order (the packing only assigns cycles; it never reorders), with
  // non-decreasing cycles.
  std::vector<uint64_t> CycleOf(N, 0);
  size_t Expected = 0;
  uint64_t PrevCycle = 0;
  bool Structural = true;
  for (const VliwWord &W : Words) {
    if (!Words.empty() && &W != &Words.front() && W.Cycle < PrevCycle) {
      Add(BB.label(), "VLIW word cycles decrease (cycle " +
                          std::to_string(W.Cycle) + " after " +
                          std::to_string(PrevCycle) + ")");
      Structural = false;
    }
    PrevCycle = W.Cycle;
    unsigned Fxu = 0, Bu = 0;
    for (size_t Op : W.Ops) {
      if (Op >= N) {
        Add(BB.label(), "VLIW word references instruction index " +
                            std::to_string(Op) + " but the block has " +
                            std::to_string(N) + " instructions");
        Structural = false;
        continue;
      }
      if (Op != Expected) {
        Add(opRef(BB, Op),
            "packing skips or repeats instructions (expected index " +
                std::to_string(Expected) + ", got " + std::to_string(Op) +
                "); a packing must cover the block in program order");
        Structural = false;
      }
      Expected = Op + 1;
      CycleOf[Op] = W.Cycle;
      switch (MM.unitOf(BB.instrs()[Op])) {
      case UnitKind::Fxu:
        ++Fxu;
        break;
      case UnitKind::Bu:
        ++Bu;
        break;
      case UnitKind::None:
        break;
      }
    }
    if (Fxu > MM.FxuWidth)
      Add(BB.label() + " cycle " + std::to_string(W.Cycle),
          "dispatch group issues " + std::to_string(Fxu) +
              " FXU operations but " + MM.Name + " has FxuWidth " +
              std::to_string(MM.FxuWidth));
    if (Bu > MM.BuWidth)
      Add(BB.label() + " cycle " + std::to_string(W.Cycle),
          "dispatch group issues " + std::to_string(Bu) +
              " branch operations but " + MM.Name + " has BuWidth " +
              std::to_string(MM.BuWidth));
  }
  if (Expected != N) {
    Add(BB.label(), "packing covers " + std::to_string(Expected) + " of " +
                        std::to_string(N) + " instructions");
    Structural = false;
  }
  if (!Structural)
    return; // cycle map is unreliable; latency checking would be noise

  // Latency: no instruction may consume a result before its producer's
  // modelled latency has elapsed. Branches are exempt — the machine resolves
  // them from the bypass network (the scheduler models only the redirect
  // penalty), matching the issue engine's rules.
  std::vector<Reg> Uses, Defs;
  for (size_t Q = 0; Q != N; ++Q) {
    const Instr &Consumer = BB.instrs()[Q];
    if (Consumer.isBranch())
      continue;
    Uses.clear();
    Consumer.collectUses(Uses);
    for (Reg U : Uses) {
      // Latest producer of U before Q within the block.
      for (size_t P = Q; P-- > 0;) {
        Defs.clear();
        BB.instrs()[P].collectDefs(Defs);
        bool DefsU = false;
        for (Reg D : Defs)
          DefsU |= (D == U);
        if (!DefsU)
          continue;
        const Instr &Producer = BB.instrs()[P];
        uint64_t Ready = CycleOf[P] + MM.latencyOf(Producer);
        if (CycleOf[Q] < Ready)
          Add(opRef(BB, Q),
              "consumes " + U.str() + " in cycle " +
                  std::to_string(CycleOf[Q]) + ", but its producer '" +
                  Producer.str() + "' (cycle " + std::to_string(CycleOf[P]) +
                  ", latency " + std::to_string(MM.latencyOf(Producer)) +
                  ") only delivers it in cycle " + std::to_string(Ready));
        break;
      }
    }
  }
}

void vsc::auditScheduleHazards(const Function &F, const MachineModel &MM,
                               AuditResult &R) {
  for (const auto &BB : F.blocks())
    auditPacking(F, *BB, packIntoVliwWords(*BB, MM), MM, R);
}
