//===- audit/SpecSafety.cpp - Differential speculation-safety audit ---------===//

#include "audit/Checkers.h"

#include "analysis/MemAlias.h"
#include "analysis/ValueTrack.h"
#include "cfg/Cfg.h"
#include "cfg/Dominators.h"

#include <set>
#include <unordered_map>
#include <unordered_set>

using namespace vsc;

namespace {

/// Instructions whose motion past a guarding branch is an audit concern:
/// they can trap (loads, DIV) or have effects that must not happen on the
/// wrong path (stores, calls, LU's base update).
bool isGuardSensitive(const Instr &I) {
  return I.isMemAccess() || I.isCall() || I.Op == Opcode::DIV;
}

/// One guard-sensitive instruction together with the set of conditional
/// branches (by Instr::Id) it was control dependent on.
struct Site {
  const Instr *I = nullptr;
  const BasicBlock *BB = nullptr;
  size_t Idx = 0;
  std::set<uint32_t> Guards;
};

/// What a conditional branch tests and where it goes. A pass that rewrites
/// any of this (branch reversal, retargeting during unrolling or block
/// merging) has restructured the control flow around the branch, and the
/// old guard relation is no longer meaningful for it.
struct BranchSig {
  Opcode Op;
  Reg Cond;
  CrBit Bit;
  std::string Target;

  static BranchSig of(const Instr &I) {
    return BranchSig{I.Op, I.Src1, I.Bit, I.Target};
  }
  bool operator==(const BranchSig &RHS) const {
    return Op == RHS.Op && Cond == RHS.Cond && Bit == RHS.Bit &&
           Target == RHS.Target;
  }
};

struct CondBranch {
  BranchSig Sig;
  const BasicBlock *BB = nullptr;
};

struct FnSites {
  std::unordered_map<uint32_t, Site> Sites; ///< keyed by Instr::Id
  std::unordered_map<uint32_t, CondBranch> CondBranches;
};

/// Collects the guard-sensitive sites of \p F. A branch guards a site when
/// its block dominates the site's block and the site's block does not
/// post-dominate it: exactly then there is a path on which the branch
/// executes but the site would not.
FnSites collectSites(const Cfg &G, const Dominators &Dom,
                     const Dominators &PostDom) {
  FnSites S;
  std::vector<std::pair<const BasicBlock *, uint32_t>> Branches;
  for (const BasicBlock *BB : G.rpo())
    for (const Instr &I : BB->instrs())
      if (I.isCondBranch()) {
        Branches.emplace_back(BB, I.Id);
        S.CondBranches.emplace(I.Id, CondBranch{BranchSig::of(I), BB});
      }
  for (const BasicBlock *BB : G.rpo()) {
    for (size_t Idx = 0; Idx != BB->instrs().size(); ++Idx) {
      const Instr &I = BB->instrs()[Idx];
      if (!isGuardSensitive(I))
        continue;
      Site St;
      St.I = &I;
      St.BB = BB;
      St.Idx = Idx;
      for (const auto &Br : Branches)
        if (Dom.dominates(Br.first, BB) && !PostDom.dominates(BB, Br.first))
          St.Guards.insert(Br.second);
      S.Sites.emplace(I.Id, std::move(St));
    }
  }
  return S;
}

/// The paper's second load-safety condition: a speculated load is safe when
/// an access to provably the same address already executes on every path to
/// it (the address is known dereferenceable).
bool coveredByDominatingAccess(const Instr &Load, const Site &S, const Cfg &G,
                               const Dominators &Dom,
                               const AliasAnalysis &AA) {
  // CrossExecution throughout: the covering access usually sits in another
  // block. MustAlias facts that survive that scope (exact global/stack
  // offsets, once-defined bases) hold across the whole invocation.
  for (size_t I = 0; I != S.Idx; ++I) {
    const Instr &A = S.BB->instrs()[I];
    if (A.isMemAccess() && !A.IsVolatile &&
        AA.alias(A, Load, AliasScope::CrossExecution) ==
            AliasResult::MustAlias)
      return true;
  }
  for (const BasicBlock *BB : G.rpo()) {
    if (BB == S.BB || !Dom.dominates(BB, S.BB))
      continue;
    for (const Instr &A : BB->instrs())
      if (A.isMemAccess() && !A.IsVolatile &&
          AA.alias(A, Load, AliasScope::CrossExecution) ==
              AliasResult::MustAlias)
        return true;
  }
  return false;
}

} // namespace

void vsc::auditSpeculationSafety(const Function &Before, const Function &After,
                                 const Module &M, AuditResult &R) {
  if (Before.blocks().empty() || After.blocks().empty())
    return;
  Cfg GB(const_cast<Function &>(Before));
  Dominators DomB(GB), PostDomB(GB, /*Post=*/true);
  FnSites B = collectSites(GB, DomB, PostDomB);

  Cfg GA(const_cast<Function &>(After));
  Dominators DomA(GA), PostDomA(GA, /*Post=*/true);
  FnSites A = collectSites(GA, DomA, PostDomA);
  // The checker judges the AFTER function, so it gets its own facts
  // instead of whatever cache the pass pipeline carries.
  AliasAnalysis AAA(After);

  for (const auto &Ent : A.Sites) {
    const Site &SA = Ent.second;
    // Clones carry fresh ids; only instructions that existed before the
    // pass are compared (a cloned guard structure is re-derived from the
    // clone's own dominators on the next snapshot).
    auto It = B.Sites.find(Ent.first);
    if (It == B.Sites.end())
      continue;
    const Site &SB = It->second;
    for (uint32_t Guard : SB.Guards) {
      // A deleted or rewritten branch cannot be a required guard: deletion
      // means straighten proved it unconditional, and a rewrite (reversal,
      // retargeting) means the pass restructured the control flow around
      // it — the surviving structure is re-derived at the next snapshot.
      const CondBranch &BrB = B.CondBranches.at(Guard);
      auto BrIt = A.CondBranches.find(Guard);
      if (BrIt == A.CondBranches.end() ||
          !(BrIt->second.Sig == BrB.Sig) ||
          BrIt->second.BB->label() != BrB.BB->label() ||
          SA.Guards.count(Guard))
        continue;
      // The signature of genuine speculation is upward motion ABOVE the
      // branch: the site's new block (reflexively) dominates the branch's
      // block, so the operation now executes regardless of the branch. A
      // site that merely lost the dominance relation while staying below
      // the branch (block expansion relabelling a join copy, unrolling
      // retargeting the enclosing loop's edges) was not speculated.
      if (!DomA.dominates(SA.BB, BrIt->second.BB))
        continue;
      const Instr &I = *SA.I;
      if (I.isLoad() && I.Op != Opcode::LU) {
        if (AAA.safeSpeculativeLoad(I, &M) ||
            coveredByDominatingAccess(I, SA, GA, DomA, AAA))
          continue;
        R.add("speculation-safety", After.name(),
              SA.BB->label() + ": " + I.str(),
              "load was hoisted above its guarding branch (instr id " +
                  std::to_string(Guard) +
                  ", block " + SB.BB->label() +
                  " before the pass) but satisfies none of the "
                  "speculation-safety conditions: not marked !safe, not a "
                  "stack or covered-global access, and no dominating access "
                  "must-aliases it");
      } else {
        R.add("speculation-safety", After.name(),
              SA.BB->label() + ": " + I.str(),
              std::string(I.isStore()  ? "store"
                          : I.isCall() ? "call"
                          : I.Op == Opcode::LU
                              ? "load-with-update"
                              : "potentially-trapping instruction") +
                  " is no longer guarded by the conditional branch (instr "
                  "id " +
                  std::to_string(Guard) +
                  ") that guarded it before the pass; instructions with "
                  "side effects or unprovable trap safety may never be "
                  "speculated");
      }
      break; // one finding per site is enough to name the pass
    }
  }
}
