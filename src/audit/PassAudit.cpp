//===- audit/PassAudit.cpp - Pass-boundary audit harness --------------------===//

#include "audit/PassAudit.h"

#include "audit/Checkers.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <algorithm>

using namespace vsc;

std::unique_ptr<Function> vsc::cloneFunction(const Function &F) {
  auto C = std::make_unique<Function>(F.name(), F.numArgs());
  for (const auto &BB : F.blocks()) {
    BasicBlock *NB = C->addBlock(BB->label());
    NB->instrs() = BB->instrs(); // ids copied verbatim
  }
  return C;
}

std::unique_ptr<Module> vsc::cloneModule(const Module &M) {
  auto C = std::make_unique<Module>();
  for (const Global &G : M.globals()) {
    Global &NG = C->addGlobal(G.Name, G.Size);
    NG.Init = G.Init;
    NG.IsVolatile = G.IsVolatile;
  }
  for (const auto &F : M.functions()) {
    Function *NF = C->addFunction(F->name(), F->numArgs());
    for (const auto &BB : F->blocks()) {
      BasicBlock *NB = NF->addBlock(BB->label());
      NB->instrs() = BB->instrs();
      for (const Instr &I : NB->instrs()) {
        NF->reserveRegsFrom(I);
        NF->reserveIdFrom(I);
      }
    }
  }
  return C;
}

namespace {

std::vector<std::string> splitLines(const std::string &S) {
  std::vector<std::string> Lines;
  size_t Pos = 0;
  while (Pos <= S.size()) {
    size_t Nl = S.find('\n', Pos);
    if (Nl == std::string::npos) {
      if (Pos < S.size())
        Lines.push_back(S.substr(Pos));
      break;
    }
    Lines.push_back(S.substr(Pos, Nl - Pos));
    Pos = Nl + 1;
  }
  return Lines;
}

/// Minimal LCS-based line diff ("-" removed, "+" added, "  " common). Falls
/// back to dumping both texts when the DP table would be excessive.
std::string lineDiff(const std::string &BeforeText,
                     const std::string &AfterText) {
  std::vector<std::string> A = splitLines(BeforeText);
  std::vector<std::string> B = splitLines(AfterText);
  size_t N = A.size(), M = B.size();
  if (N * M > 250000)
    return "--- before ---\n" + BeforeText + "--- after ---\n" + AfterText;

  std::vector<std::vector<uint32_t>> Lcs(N + 1,
                                         std::vector<uint32_t>(M + 1, 0));
  for (size_t I = N; I-- > 0;)
    for (size_t J = M; J-- > 0;)
      Lcs[I][J] = A[I] == B[J]
                      ? Lcs[I + 1][J + 1] + 1
                      : std::max(Lcs[I + 1][J], Lcs[I][J + 1]);

  std::string Out;
  size_t I = 0, J = 0;
  while (I < N && J < M) {
    if (A[I] == B[J]) {
      Out += "  " + A[I] + "\n";
      ++I, ++J;
    } else if (Lcs[I + 1][J] >= Lcs[I][J + 1]) {
      Out += "- " + A[I] + "\n";
      ++I;
    } else {
      Out += "+ " + B[J] + "\n";
      ++J;
    }
  }
  for (; I < N; ++I)
    Out += "- " + A[I] + "\n";
  for (; J < M; ++J)
    Out += "+ " + B[J] + "\n";
  return Out;
}

} // namespace

AuditResult vsc::auditModule(const Module &M, const MachineModel &MM,
                             const Module *Before) {
  AuditResult R;
  std::string Err = verifyModule(M);
  if (!Err.empty())
    R.add("verifier", "<module>", "", Err);
  for (const auto &F : M.functions()) {
    const Function *BF =
        Before ? Before->findFunction(F->name()) : nullptr;
    auditUseBeforeDef(*F, R);
    auditScheduleHazards(*F, MM, R);
    auditCfgLoopIntegrity(BF, *F, R);
    if (BF)
      auditSpeculationSafety(*BF, *F, M, R);
  }
  return R;
}

void PassAudit::auditOne(const Function &F, const Module &M, AuditResult &R,
                         std::vector<const Function *> &Changed) {
  std::string Text = printFunction(F);
  auto TextIt = SnapText.find(F.name());
  if (TextIt != SnapText.end() && TextIt->second == Text)
    return; // untouched since the last clean checkpoint
  Changed.push_back(&F);

  std::string Err = verifyFunction(F);
  if (!Err.empty())
    R.add("verifier", F.name(), "", Err);
  auditUseBeforeDef(F, R);
  auditScheduleHazards(F, MM, R);
  auto SnapIt = Snap.find(F.name());
  const Function *BF = SnapIt == Snap.end() ? nullptr : SnapIt->second.get();
  auditCfgLoopIntegrity(BF, F, R);
  if (BF)
    auditSpeculationSafety(*BF, F, M, R);
}

void PassAudit::finalize(AuditResult &R, const std::string &Stage,
                         const std::vector<const Function *> &Changed) {
  if (R.ok()) {
    // Advance the snapshots; the next checkpoint diffs against this state.
    for (const Function *F : Changed) {
      SnapText[F->name()] = printFunction(*F);
      Snap[F->name()] = cloneFunction(*F);
    }
    return;
  }
  for (AuditFinding &F : R.Findings)
    F.Pass = Stage;
  R.Report = "PassAudit: " + std::to_string(R.Findings.size()) +
             " finding(s) after '" + Stage + "':\n" + R.str();
  // IR diff of each offending function (snapshot kept, so a debugger can
  // re-run the audit against the same baseline).
  std::vector<std::string> Reported;
  for (const AuditFinding &Finding : R.Findings) {
    if (Finding.Fn == "<module>" ||
        std::find(Reported.begin(), Reported.end(), Finding.Fn) !=
            Reported.end())
      continue;
    Reported.push_back(Finding.Fn);
    const Function *Now = nullptr;
    for (const Function *F : Changed)
      if (F->name() == Finding.Fn)
        Now = F;
    if (!Now)
      continue;
    auto TextIt = SnapText.find(Finding.Fn);
    R.Report += "\n--- IR diff of '" + Finding.Fn + "' (last clean state vs "
                "after '" + Stage + "') ---\n";
    if (TextIt == SnapText.end())
      R.Report += printFunction(*Now);
    else
      R.Report += lineDiff(TextIt->second, printFunction(*Now));
  }
}

void PassAudit::chargeAliasQueries(const std::string &Stage) {
  // Everything queried since the previous checkpoint finished belongs to
  // the stage that just ran; the re-snapshot at the end of each checkpoint
  // keeps the audit's own speculation-safety queries out of the ledger.
  AliasQueryCounters Now = aliasQueryCounters();
  AliasQueryCounters Delta;
  Delta.Queries = Now.Queries - AliasSnap.Queries;
  Delta.NoAlias = Now.NoAlias - AliasSnap.NoAlias;
  Delta.MustAlias = Now.MustAlias - AliasSnap.MustAlias;
  Delta.MayAlias = Now.MayAlias - AliasSnap.MayAlias;
  if (Delta.Queries == 0)
    return;
  std::string Name = Stage.substr(0, Stage.find('('));
  for (auto &E : QueryLog) {
    if (E.first != Name)
      continue;
    E.second.Queries += Delta.Queries;
    E.second.NoAlias += Delta.NoAlias;
    E.second.MustAlias += Delta.MustAlias;
    E.second.MayAlias += Delta.MayAlias;
    return;
  }
  QueryLog.emplace_back(Name, Delta);
}

AuditResult PassAudit::checkpoint(const Module &M, const std::string &Stage) {
  AuditResult R;
  if (!enabled())
    return R;
  chargeAliasQueries(Stage);
  std::vector<const Function *> Changed;
  for (const auto &F : M.functions())
    auditOne(*F, M, R, Changed);
  finalize(R, Stage, Changed);
  AliasSnap = aliasQueryCounters();
  return R;
}

AuditResult PassAudit::checkpointFunction(const Function &F, const Module &M,
                                          const std::string &Stage) {
  AuditResult R;
  if (!enabled())
    return R;
  chargeAliasQueries(Stage);
  std::vector<const Function *> Changed;
  auditOne(F, M, R, Changed);
  finalize(R, Stage, Changed);
  AliasSnap = aliasQueryCounters();
  return R;
}
