//===- audit/Audit.cpp - Pass-audit shared types ---------------------------===//

#include "audit/Audit.h"

using namespace vsc;

const char *vsc::auditLevelName(AuditLevel L) {
  switch (L) {
  case AuditLevel::Off:
    return "off";
  case AuditLevel::Boundaries:
    return "boundaries";
  case AuditLevel::Full:
    return "full";
  }
  return "?";
}

std::string AuditFinding::str() const {
  std::string S = "[" + Checker + "]";
  if (!Pass.empty())
    S += " after '" + Pass + "'";
  S += ": " + Fn;
  if (!Where.empty())
    S += ":" + Where;
  S += ": " + Message;
  return S;
}

std::string AuditResult::str() const {
  std::string S;
  for (const AuditFinding &F : Findings) {
    S += F.str();
    S += "\n";
  }
  return S;
}
