//===- audit/LoopIntegrity.cpp - CFG/loop-integrity audit -------------------===//

#include "audit/Checkers.h"

#include "cfg/Cfg.h"
#include "cfg/Dominators.h"
#include "cfg/Loops.h"

#include <unordered_map>
#include <unordered_set>

using namespace vsc;

void vsc::auditCfgLoopIntegrity(const Function *Before, const Function &After,
                                AuditResult &R) {
  if (After.blocks().empty())
    return;
  Cfg G(const_cast<Function &>(After));
  Dominators Dom(G);
  LoopInfo LI(G, Dom);

  // The entry block must stay predecessor-free: the prolog is materialised
  // there, and an edge back into it would re-execute frame setup.
  for (const BasicBlock *P : G.preds(After.entry()))
    if (G.isReachable(P))
      R.add("cfg-loop-integrity", After.name(), After.entry()->label(),
            "entry block has predecessor " + P->label() +
                "; branching back to the entry would re-execute the prolog");

  // Instruction ids must stay unique: every duplicating pass is required to
  // assign fresh ids to copies (the differential checkers rely on this).
  std::unordered_map<uint32_t, const BasicBlock *> Seen;
  for (const auto &BB : After.blocks())
    for (const Instr &I : BB->instrs()) {
      auto Ins = Seen.emplace(I.Id, BB.get());
      if (!Ins.second)
        R.add("cfg-loop-integrity", After.name(),
              BB->label() + ": " + I.str(),
              "instruction id " + std::to_string(I.Id) +
                  " is duplicated (also in block " +
                  Ins.first->second->label() +
                  "); a pass cloned code without assigning fresh ids");
    }

  // No edge may enter a natural loop except through its header. For a
  // correctly computed natural loop this is implied by dominance, so a
  // violation means the loop machinery itself (or an in-place CFG edit that
  // bypassed it) went wrong.
  for (const auto &L : LI.loops())
    for (const CfgEdge &E : G.edges()) {
      if (!G.isReachable(E.From) || L->contains(E.From) ||
          !L->contains(E.To) || E.To == L->Header)
        continue;
      R.add("cfg-loop-integrity", After.name(), E.From->label(),
            "edge to " + E.To->label() + " enters the loop headed by " +
                L->Header->label() + " without passing through the header");
    }

  if (!Before || Before->blocks().empty())
    return;

  // Differential back-edge preservation. A latch branch that survives a
  // pass (same Instr::Id) and still targets its old header must still be
  // dominated by that header — otherwise the pass turned the natural loop
  // into an irreducible region (e.g. by jumping into the middle of an
  // unrolled body). Retargeted branches (unrolling points latches at clone
  // headers) and deleted branches are exempt: the surviving structure is
  // re-derived from the new CFG at the next snapshot.
  Cfg GB(const_cast<Function &>(*Before));
  Dominators DomB(GB);
  LoopInfo LIB(GB, DomB);

  // A block's fingerprint: instruction ids + text. When a pass rewrites the
  // header itself (block expansion merges it into trace copies, leaving the
  // old label as a residual side entrance), the loop was restructured on
  // purpose and its new shape is audited absolutely, not differentially.
  auto fingerprint = [](const BasicBlock *BB) {
    std::string S;
    for (const Instr &I : BB->instrs())
      S += std::to_string(I.Id) + ":" + I.str() + ";";
    return S;
  };

  std::unordered_set<std::string> BeforeLabels;
  for (const auto &BB : Before->blocks())
    BeforeLabels.insert(BB->label());

  struct BackEdge {
    uint32_t BranchId;
    std::string Header;
    std::string HeaderFp;
    std::unordered_set<std::string> Members;
  };
  std::vector<BackEdge> BackEdges;
  for (const auto &L : LIB.loops()) {
    std::unordered_set<std::string> Members;
    for (const BasicBlock *BB : L->Blocks)
      Members.insert(BB->label());
    for (const BasicBlock *Latch : L->Latches)
      for (const Instr &I : Latch->instrs())
        if (I.isBranch() && I.Target == L->Header->label())
          BackEdges.push_back(
              {I.Id, L->Header->label(), fingerprint(L->Header), Members});
  }

  std::unordered_map<uint32_t, const BasicBlock *> BranchBlock;
  for (const auto &BB : After.blocks())
    for (const Instr &I : BB->instrs())
      if (I.isBranch())
        BranchBlock.emplace(I.Id, BB.get());

  for (const BackEdge &BE : BackEdges) {
    auto It = BranchBlock.find(BE.BranchId);
    if (It == BranchBlock.end())
      continue; // branch deleted
    const BasicBlock *LatchNow = It->second;
    if (!G.isReachable(LatchNow))
      continue;
    const Instr *Br = nullptr;
    for (const Instr &I : LatchNow->instrs())
      if (I.isBranch() && I.Id == BE.BranchId)
        Br = &I;
    if (!Br || Br->Target != BE.Header)
      continue; // retargeted (e.g. unrolling) — new structure, new audit
    BasicBlock *HeaderNow = After.findBlock(BE.Header);
    if (!HeaderNow || !G.isReachable(HeaderNow))
      continue;
    if (fingerprint(HeaderNow) != BE.HeaderFp)
      continue; // header rewritten — loop restructured, not broken
    // A duplicating pass (block expansion tail-duplicates the header's
    // compare into predecessors) may add entrances into the old loop body
    // from freshly created blocks; that is deliberate restructuring, and
    // the resulting region is audited absolutely above, not differentially.
    bool Restructured = false;
    for (const CfgEdge &E : G.edges())
      if (G.isReachable(E.From) && !BeforeLabels.count(E.From->label()) &&
          BE.Members.count(E.To->label()) && E.To->label() != BE.Header) {
        Restructured = true;
        break;
      }
    if (Restructured)
      continue;
    if (!Dom.dominates(HeaderNow, LatchNow))
      R.add("cfg-loop-integrity", After.name(),
            LatchNow->label() + ": " + Br->str(),
            "back edge to " + BE.Header +
                " survived the pass but its header no longer dominates the "
                "latch; the natural loop became irreducible");
  }
}
