//===- audit/Audit.h - Pass-audit shared types ----------------*- C++ -*-===//
///
/// \file
/// Shared vocabulary of the semantic static-analysis layer (src/audit).
/// Where ir/Verifier checks *structural* well-formedness (labels resolve,
/// operand classes match), the audit checkers prove *semantic* invariants
/// that the paper's code-motion passes must preserve: defs reach uses on
/// all paths, speculation stays within the paper's safety conditions,
/// dispatch groups respect machine latencies and unit widths, and loop
/// structure survives unrolling/pipelining/expansion.
///
/// A checker appends AuditFindings to an AuditResult; the pass-boundary
/// harness (audit/PassAudit.h) stamps each finding with the pipeline stage
/// that broke the invariant and renders an IR diff of the offending
/// function.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_AUDIT_AUDIT_H
#define VSC_AUDIT_AUDIT_H

#include <string>
#include <vector>

namespace vsc {

/// How much auditing the pipeline performs (PipelineOptions::Audit).
///  * Off        — no auditing (the default; ir/Verifier still runs).
///  * Boundaries — audit at the module-level stage boundaries where the
///                 structural verifier already runs (input, inline,
///                 per-function optimization, regalloc, prolog, pdf-layout).
///  * Full       — additionally audit after every individual VLIW pass
///                 inside the per-function pipeline (load/store motion,
///                 unspeculation, unroll+rename, pipelining, global
///                 scheduling, combining, block expansion).
enum class AuditLevel { Off, Boundaries, Full };

/// Human-readable name ("off", "boundaries", "full").
const char *auditLevelName(AuditLevel L);

/// One invariant violation.
struct AuditFinding {
  /// Which checker fired: "verifier", "use-before-def",
  /// "speculation-safety", "schedule-hazard" or "cfg-loop-integrity".
  std::string Checker;
  /// Pipeline stage that broke the invariant; filled by the harness
  /// (empty when a checker is invoked standalone).
  std::string Pass;
  /// Function the finding is in.
  std::string Fn;
  /// Location: "block: instruction" (may be just a block label).
  std::string Where;
  /// What invariant was violated and why.
  std::string Message;

  /// Renders "[checker] after 'pass': fn:where: message".
  std::string str() const;
};

/// The outcome of running one or more checkers.
struct AuditResult {
  std::vector<AuditFinding> Findings;
  /// Printable diagnosis (findings plus an IR diff of each offending
  /// function); filled by the pass-boundary harness, empty otherwise.
  std::string Report;

  bool ok() const { return Findings.empty(); }

  void add(std::string Checker, std::string Fn, std::string Where,
           std::string Message) {
    Findings.push_back(AuditFinding{std::move(Checker), "", std::move(Fn),
                                    std::move(Where), std::move(Message)});
  }

  /// All findings, one per line.
  std::string str() const;
};

} // namespace vsc

#endif // VSC_AUDIT_AUDIT_H
