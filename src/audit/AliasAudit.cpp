//===- audit/AliasAudit.cpp - Dynamic NoAlias claim validation --------------===//

#include "audit/AliasAudit.h"

#include <algorithm>
#include <map>

using namespace vsc;

//===----------------------------------------------------------------------===//
// AliasClaimLog
//===----------------------------------------------------------------------===//

namespace {

std::string claimKey(const AliasClaim &C) {
  uint32_t Lo = std::min(C.IdA, C.IdB), Hi = std::max(C.IdA, C.IdB);
  return C.Fn + ':' + std::to_string(Lo) + ':' + std::to_string(Hi) + ':' +
         std::to_string(static_cast<int>(C.Kind));
}

const char *kindName(AliasClaimKind K) {
  switch (K) {
  case AliasClaimKind::Absolute:
    return "absolute";
  case AliasClaimKind::PerInvocation:
    return "per-invocation";
  default:
    return "per-block-execution";
  }
}

} // namespace

void AliasClaimLog::noAliasClaim(const AliasClaim &C) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Seen.insert(claimKey(C)).second)
    Claims.push_back(C);
}

size_t AliasClaimLog::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Claims.size();
}

void AliasClaimLog::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Claims.clear();
  Seen.clear();
}

//===----------------------------------------------------------------------===//
// runAliasAudit
//===----------------------------------------------------------------------===//

namespace {

/// A claim resolved to the final module's instructions.
struct ClaimInfo {
  AliasClaim C;
  const BasicBlock *BlockA = nullptr;
  const BasicBlock *BlockB = nullptr;
  bool Violated = false;
};

/// Two interval sets (one per claim side), keyed by start address; the
/// mapped value is the largest access size seen at that start.
struct IntervalPair {
  std::map<uint64_t, unsigned> A, B;
};

/// \returns true if [Addr, Addr+Size) overlaps any interval in \p S.
/// Access sizes are at most 8 bytes, so only starts in (Addr-8, Addr+Size)
/// can overlap.
bool overlaps(const std::map<uint64_t, unsigned> &S, uint64_t Addr,
              unsigned Size) {
  auto It = S.lower_bound(Addr >= 8 ? Addr - 7 : 0);
  for (; It != S.end() && It->first < Addr + Size; ++It)
    if (It->first + It->second > Addr)
      return true;
  return false;
}

void insertInterval(std::map<uint64_t, unsigned> &S, uint64_t Addr,
                    unsigned Size) {
  unsigned &Slot = S[Addr];
  Slot = std::max(Slot, Size);
}

/// SameExecution is claimable for a same-block pair only when no
/// instruction between the two redefines their shared base register
/// (different base registers make the guarantee vacuous — only the
/// syntactic same-base tier relies on it).
AliasScope pairScope(const std::vector<Instr> &Ins, size_t I, size_t J) {
  const Instr &A = Ins[I], &B = Ins[J];
  if (A.memBase() != B.memBase())
    return AliasScope::SameExecution;
  std::vector<Reg> Defs;
  for (size_t K = I + 1; K < J; ++K) {
    Defs.clear();
    Ins[K].collectDefs(Defs);
    for (Reg D : Defs)
      if (D == A.memBase())
        return AliasScope::CrossExecution;
  }
  return AliasScope::SameExecution;
}

class ClaimValidator : public MemAccessWatcher {
public:
  ClaimValidator(std::vector<ClaimInfo> &Claims, AuditResult &R,
                 AliasAuditStats &Stats)
      : Claims(Claims), Result(R), Stats(Stats) {
    Abs.resize(Claims.size());
  }

  /// Maps an instruction to the claims it participates in (Side: false =
  /// the claim's IdA, true = IdB).
  void watch(const Instr *I, uint32_t ClaimIdx, bool Side) {
    ByInstr[I].emplace_back(ClaimIdx, Side);
  }

  void beginRun() { Frames.clear(); }

  void enterFunction(const Function *F) override {
    Frames.emplace_back();
    Frames.back().F = F;
  }

  void exitFunction() override {
    if (!Frames.empty())
      Frames.pop_back();
  }

  void enterBlock(const BasicBlock *) override {
    if (!Frames.empty())
      Frames.back().CurEpoch = ++EpochCounter;
  }

  void memAccess(const Instr *I, uint64_t Addr, unsigned Size) override {
    ++Stats.Events;
    auto It = ByInstr.find(I);
    if (It == ByInstr.end())
      return;
    for (const auto &Ref : It->second) {
      ClaimInfo &CI = Claims[Ref.first];
      switch (CI.C.Kind) {
      case AliasClaimKind::Absolute:
        checkIntervals(CI, Abs[Ref.first], Ref.second, Addr, Size);
        break;
      case AliasClaimKind::PerInvocation: {
        if (Frames.empty())
          break;
        checkIntervals(CI, Frames.back().Inv[Ref.first], Ref.second, Addr,
                       Size);
        break;
      }
      case AliasClaimKind::PerBlockExecution: {
        if (Frames.empty())
          break;
        Frame &F = Frames.back();
        auto &P = F.Blk[Ref.first];
        Stamp &Mine = Ref.second ? P.second : P.first;
        const Stamp &Theirs = Ref.second ? P.first : P.second;
        if (Theirs.Size && Theirs.Epoch == F.CurEpoch) {
          ++Stats.ChecksHit;
          if (Theirs.Addr < Addr + Size && Addr < Theirs.Addr + Theirs.Size)
            violate(CI, Addr, Size, Theirs.Addr, Theirs.Size);
        }
        Mine.Epoch = F.CurEpoch;
        Mine.Addr = Addr;
        Mine.Size = Size;
        break;
      }
      }
    }
  }

private:
  struct Stamp {
    uint64_t Epoch = 0;
    uint64_t Addr = 0;
    unsigned Size = 0;
  };
  struct Frame {
    const Function *F = nullptr;
    uint64_t CurEpoch = 0;
    std::unordered_map<uint32_t, IntervalPair> Inv;
    std::unordered_map<uint32_t, std::pair<Stamp, Stamp>> Blk;
  };

  void checkIntervals(ClaimInfo &CI, IntervalPair &P, bool Side,
                      uint64_t Addr, unsigned Size) {
    auto &Mine = Side ? P.B : P.A;
    auto &Theirs = Side ? P.A : P.B;
    if (!Theirs.empty()) {
      ++Stats.ChecksHit;
      if (overlaps(Theirs, Addr, Size)) {
        // Find one witness interval for the message.
        uint64_t WAddr = 0;
        unsigned WSize = 0;
        for (auto It = Theirs.lower_bound(Addr >= 8 ? Addr - 7 : 0);
             It != Theirs.end() && It->first < Addr + Size; ++It)
          if (It->first + It->second > Addr) {
            WAddr = It->first;
            WSize = It->second;
            break;
          }
        violate(CI, Addr, Size, WAddr, WSize);
      }
    }
    insertInterval(Mine, Addr, Size);
  }

  void violate(ClaimInfo &CI, uint64_t Addr, unsigned Size, uint64_t OAddr,
               unsigned OSize) {
    if (CI.Violated)
      return;
    CI.Violated = true;
    Result.add("alias-audit", CI.C.Fn,
               "instr id " + std::to_string(CI.C.IdA) + " vs id " +
                   std::to_string(CI.C.IdB),
               std::string("NoAlias was claimed over the ") +
                   kindName(CI.C.Kind) +
                   " window, but the accesses overlapped at runtime: [" +
                   std::to_string(Addr) + ", " + std::to_string(Addr + Size) +
                   ") vs [" + std::to_string(OAddr) + ", " +
                   std::to_string(OAddr + OSize) +
                   ") — the disambiguation that justified reordering or "
                   "eliminating these accesses was unsound");
  }

  std::vector<ClaimInfo> &Claims;
  AuditResult &Result;
  AliasAuditStats &Stats;
  std::vector<IntervalPair> Abs; ///< Absolute-window state, per claim
  std::unordered_map<const Instr *, std::vector<std::pair<uint32_t, bool>>>
      ByInstr;
  std::vector<Frame> Frames;
  uint64_t EpochCounter = 0;
};

} // namespace

std::vector<RunOptions> vsc::defaultAliasAuditBattery() {
  std::vector<RunOptions> B;
  RunOptions O;
  O.MaxInstrs = 20'000'000;
  O.Input = {5, -3, 17, 0, 9, 1, 42, 7};
  O.Args = {2};
  B.push_back(O);
  O.Args = {6};
  B.push_back(O);
  return B;
}

AuditResult vsc::runAliasAudit(const Module &M, const MachineModel &MM,
                               const std::vector<RunOptions> &Battery,
                               const std::vector<AliasClaim> &PipelineClaims,
                               AliasAuditStats *Stats) {
  AuditResult R;
  AliasAuditStats Local;

  // Per-function resolution tables for the final module: memory-access
  // instruction id -> (instruction, block).
  struct Resolved {
    const Instr *I;
    const BasicBlock *BB;
  };
  std::unordered_map<std::string, std::unordered_map<uint32_t, Resolved>>
      MemById;
  for (const auto &FPtr : M.functions())
    for (const auto &BB : FPtr->blocks())
      for (const Instr &I : BB->instrs())
        if (I.isMemAccess())
          MemById[FPtr->name()][I.Id] = Resolved{&I, BB.get()};

  // Phase 1: enumerate claims on the final module's own analysis. The
  // claim sink records every NoAlias verdict the queries produce.
  AliasClaimLog Log;
  AliasClaimSink *Prev = setAliasClaimSink(&Log);
  for (const auto &FPtr : M.functions()) {
    const Function &F = *FPtr;
    if (F.blocks().empty())
      continue;
    AliasAnalysis AA(F);
    struct Acc {
      const Instr *I;
      const BasicBlock *BB;
      size_t Idx;
    };
    std::vector<Acc> Accs;
    for (const auto &BB : F.blocks())
      for (size_t Idx = 0; Idx != BB->instrs().size(); ++Idx)
        if (BB->instrs()[Idx].isMemAccess())
          Accs.push_back(Acc{&BB->instrs()[Idx], BB.get(), Idx});
    // Cross-block enumeration is quadratic; very large functions keep the
    // (more valuable) same-block pairs only.
    bool Full = Accs.size() <= 1024;
    for (size_t I = 0; I != Accs.size(); ++I)
      for (size_t J = I + 1; J != Accs.size(); ++J) {
        bool SameBlock = Accs[I].BB == Accs[J].BB;
        if (!SameBlock && !Full)
          continue;
        if (SameBlock) {
          AliasScope Sc =
              pairScope(Accs[I].BB->instrs(), Accs[I].Idx, Accs[J].Idx);
          AA.alias(*Accs[I].I, *Accs[J].I, Sc);
          if (Sc == AliasScope::SameExecution)
            AA.alias(*Accs[I].I, *Accs[J].I, AliasScope::CrossExecution);
        } else {
          AA.alias(*Accs[I].I, *Accs[J].I, AliasScope::CrossExecution);
        }
      }
  }
  setAliasClaimSink(Prev);
  Local.StaticClaims = Log.size();

  // Phase 2: resolve claims and merge the surviving pipeline claims.
  std::vector<ClaimInfo> Claims;
  std::unordered_set<std::string> Keys;
  auto resolveAndAdd = [&](const AliasClaim &C, bool FromPipeline) {
    auto FIt = MemById.find(C.Fn);
    const Resolved *RA = nullptr, *RB = nullptr;
    if (FIt != MemById.end()) {
      auto AIt = FIt->second.find(C.IdA);
      auto BIt = FIt->second.find(C.IdB);
      if (AIt != FIt->second.end())
        RA = &AIt->second;
      if (BIt != FIt->second.end())
        RB = &BIt->second;
    }
    // Vacuous: an id vanished or stopped being a memory access, or a
    // per-block-execution pair was split across blocks.
    if (!RA || !RB ||
        (C.Kind == AliasClaimKind::PerBlockExecution && RA->BB != RB->BB)) {
      if (FromPipeline)
        ++Local.DroppedClaims;
      return;
    }
    if (!Keys.insert(claimKey(C)).second)
      return;
    if (FromPipeline)
      ++Local.PipelineClaims;
    ClaimInfo CI;
    CI.C = C;
    CI.BlockA = RA->BB;
    CI.BlockB = RB->BB;
    Claims.push_back(std::move(CI));
  };
  for (const AliasClaim &C : Log.claims())
    resolveAndAdd(C, /*FromPipeline=*/false);
  for (const AliasClaim &C : PipelineClaims)
    resolveAndAdd(C, /*FromPipeline=*/true);

  // Phase 3: simulate the battery under the validating watcher.
  ClaimValidator V(Claims, R, Local);
  for (uint32_t Idx = 0; Idx != Claims.size(); ++Idx) {
    auto &Tab = MemById[Claims[Idx].C.Fn];
    V.watch(Tab[Claims[Idx].C.IdA].I, Idx, /*Side=*/false);
    V.watch(Tab[Claims[Idx].C.IdB].I, Idx, /*Side=*/true);
  }
  SimEngine Engine(M, MM);
  for (const RunOptions &Base : Battery) {
    RunOptions O = Base;
    O.Watcher = &V;
    V.beginRun();
    Engine.run(O);
  }

  if (Stats)
    *Stats = Local;
  return R;
}
