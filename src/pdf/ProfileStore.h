//===- pdf/ProfileStore.h - Persistent, mergeable profiles ----*- C++ -*-===//
///
/// \file
/// The profile subsystem behind profile-directed feedback: profiles as
/// first-class artifacts that outlive one process, instead of in-memory
/// string-keyed maps rebuilt per experiment.
///
///  * Dense collection — a DenseProfile is recorded straight from
///    SimEngine's interned block/edge counter slots (SimEngine::run with a
///    DenseCounters out-parameter): slot-indexed count vectors plus the
///    predecode key table, with no per-run string-map materialization.
///    ProfileData consumers (superblock formation, the PDF layout gate,
///    the profile scheduling heuristic) read the dense form through the
///    toProfileData() adapter, built once per profile.
///
///  * Persistence — a versioned binary format (magic, format version,
///    module CFG fingerprint, key table, counter payload, trailing
///    checksum) with save/load. Loading validates structure and checksum;
///    validateFor() compares the stored CFG fingerprint against the module
///    about to consume the profile, so a stale profile is reported instead
///    of silently mis-attributing counts.
///
///  * Accumulation — merge() adds two profiles of the same CFG
///    (associative and commutative, so multi-input training runs can
///    accumulate in any grouping), scale() reweights one.
///
/// The CFG fingerprint hashes exactly the interned profiling-key sequence
/// the predecoder builds (blocks in layout order, fallthrough and taken
/// edges in decode order), and is computable both from a SimImage and
/// directly from a Module — the two agree by construction (enforced by
/// tests/test_pdf_store.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef VSC_PDF_PROFILESTORE_H
#define VSC_PDF_PROFILESTORE_H

#include "profile/ProfileData.h"
#include "sim/Predecode.h"
#include "sim/Simulator.h"

#include <cstdint>
#include <string>
#include <vector>

namespace vsc {

/// Fingerprint of a module's profiling-relevant CFG structure: function
/// names, block labels in layout order, and every counter-carrying edge
/// (fallthrough + branch targets) in predecode order. Profiles only
/// attach to modules with an equal fingerprint.
uint64_t cfgFingerprint(const Module &M);

/// Same value, computed from a predecoded image's interned key tables.
uint64_t cfgFingerprint(const SimImage &Img);

/// A module profile in dense slot-indexed form. Slots mirror the
/// predecoded image's interned key tables: BlockCounts[i] counts the block
/// whose profiling key is BlockKeys[i], likewise for edges. Distinct edge
/// slots may intern the same key (a taken branch and a fallthrough to the
/// same successor); the adapter sums them, exactly like the legacy
/// string-map materialization.
class DenseProfile {
public:
  static constexpr uint32_t FormatVersion = 1;

  uint64_t CfgHash = 0;
  std::vector<std::string> BlockKeys;
  std::vector<std::string> EdgeKeys;
  std::vector<uint64_t> BlockCounts;
  std::vector<uint64_t> EdgeCounts;

  bool empty() const { return BlockKeys.empty() && EdgeKeys.empty(); }

  /// A zero-count profile shaped after \p Img (key tables + fingerprint).
  static DenseProfile forImage(const SimImage &Img);

  /// Adds one run's dense slot counters (from SimEngine::run(Opts, Dense)
  /// against the image this profile was shaped after).
  void accumulate(const DenseCounters &C);

  /// Adds \p O into this profile. \returns "" on success, else a
  /// diagnostic (CFG fingerprint or shape mismatch; counts untouched).
  std::string merge(const DenseProfile &O);

  /// Multiplies every count by \p Factor, rounding to nearest (training
  /// inputs of different lengths can be weighted before merging).
  void scale(double Factor);

  /// Thin adapter for ProfileData consumers: materializes the string-keyed
  /// maps once per profile (summing slots that intern the same key)
  /// instead of once per simulation run.
  ProfileData toProfileData() const;

  /// \returns "" when \p M 's CFG fingerprint matches, else a "stale
  /// profile" diagnostic naming both fingerprints.
  std::string validateFor(const Module &M) const;

  // --- persistence --------------------------------------------------------

  /// Versioned binary image: magic "VSCP", u32 format version, u64 CFG
  /// fingerprint, key tables, counter payload, trailing FNV-1a checksum.
  std::vector<uint8_t> serialize() const;

  /// Parses \p Size bytes at \p Data into \p Out. \returns "" on success,
  /// else a diagnostic (bad magic / unsupported version / truncation /
  /// checksum mismatch); \p Out is unspecified on failure.
  static std::string deserialize(const uint8_t *Data, size_t Size,
                                 DenseProfile &Out);

  /// \returns "" on success, else an I/O or format diagnostic.
  std::string saveFile(const std::string &Path) const;
  static std::string loadFile(const std::string &Path, DenseProfile &Out);
};

/// Collects a ground-truth dense profile: runs every element of \p Train
/// against \p Engine's image (fanning out over \p Threads workers; 0
/// defers to VSC_THREADS) and accumulates the dense counters in battery
/// order — deterministic and byte-identical at every thread count.
/// \p Err receives a diagnostic when a training run traps (the profile
/// still contains every non-trapping run's counts).
DenseProfile collectDenseProfile(SimEngine &Engine,
                                 const std::vector<RunOptions> &Train,
                                 unsigned Threads = 0,
                                 std::string *Err = nullptr);

} // namespace vsc

#endif // VSC_PDF_PROFILESTORE_H
