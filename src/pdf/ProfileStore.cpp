//===- pdf/ProfileStore.cpp - Persistent, mergeable profiles ----------------===//

#include "pdf/ProfileStore.h"

#include <cmath>
#include <cstring>
#include <fstream>

using namespace vsc;

namespace {

constexpr char Magic[4] = {'V', 'S', 'C', 'P'};

/// FNV-1a, the digest already used for memory images (sim/FastSim.cpp).
class Fnv {
public:
  void bytes(const void *P, size_t N) {
    const uint8_t *B = static_cast<const uint8_t *>(P);
    for (size_t I = 0; I != N; ++I) {
      H ^= B[I];
      H *= 1099511628211ULL;
    }
  }
  void str(const std::string &S) {
    bytes(S.data(), S.size());
    uint8_t Sep = 0x01; // keys never contain raw control bytes
    bytes(&Sep, 1);
  }
  void mark(uint8_t M) { bytes(&M, 1); }
  uint64_t value() const { return H; }

private:
  uint64_t H = 1469598103934665603ULL;
};

uint64_t hashKeyTables(const std::vector<std::string> &BlockKeys,
                       const std::vector<std::string> &EdgeKeys) {
  Fnv H;
  for (const std::string &K : BlockKeys)
    H.str(K);
  H.mark(0x02);
  for (const std::string &K : EdgeKeys)
    H.str(K);
  return H.value();
}

/// Reproduces the predecoder's interned key sequence straight from the IR:
/// blocks in layout order; per block first the fallthrough edge (all but a
/// function's last block), then a taken edge per branch instruction in
/// instruction order — exactly sim/Predecode.cpp.
void collectKeyTables(const Module &M, std::vector<std::string> &BlockKeys,
                      std::vector<std::string> &EdgeKeys) {
  for (const auto &F : M.functions())
    for (const auto &BB : F->blocks())
      BlockKeys.push_back(blockCountKey(F->name(), BB->label()));
  for (const auto &F : M.functions()) {
    const auto &Blocks = F->blocks();
    for (size_t BI = 0; BI != Blocks.size(); ++BI) {
      const BasicBlock &BB = *Blocks[BI];
      if (BI + 1 != Blocks.size())
        EdgeKeys.push_back(edgeCountKey(F->name(), BB.label(),
                                        Blocks[BI + 1]->label()));
      for (const Instr &I : BB.instrs())
        if (I.Op == Opcode::B || I.Op == Opcode::BT ||
            I.Op == Opcode::BF || I.Op == Opcode::BCT)
          EdgeKeys.push_back(edgeCountKey(F->name(), BB.label(), I.Target));
    }
  }
}

// --- little-endian serialization helpers ----------------------------------

void putU32(std::vector<uint8_t> &Out, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void putU64(std::vector<uint8_t> &Out, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void putStr(std::vector<uint8_t> &Out, const std::string &S) {
  putU32(Out, static_cast<uint32_t>(S.size()));
  Out.insert(Out.end(), S.begin(), S.end());
}

/// Bounds-checked cursor over the serialized image.
struct Reader {
  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  bool Ok = true;

  bool need(size_t N) {
    if (!Ok || Size - Pos < N) {
      Ok = false;
      return false;
    }
    return true;
  }
  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(Data[Pos + I]) << (8 * I);
    Pos += 4;
    return V;
  }
  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(Data[Pos + I]) << (8 * I);
    Pos += 8;
    return V;
  }
  std::string str() {
    uint32_t N = u32();
    if (!need(N))
      return "";
    std::string S(reinterpret_cast<const char *>(Data + Pos), N);
    Pos += N;
    return S;
  }
};

} // namespace

uint64_t vsc::cfgFingerprint(const Module &M) {
  std::vector<std::string> BlockKeys, EdgeKeys;
  collectKeyTables(M, BlockKeys, EdgeKeys);
  return hashKeyTables(BlockKeys, EdgeKeys);
}

uint64_t vsc::cfgFingerprint(const SimImage &Img) {
  return hashKeyTables(Img.BlockKeys, Img.EdgeKeys);
}

DenseProfile DenseProfile::forImage(const SimImage &Img) {
  DenseProfile P;
  P.CfgHash = cfgFingerprint(Img);
  P.BlockKeys = Img.BlockKeys;
  P.EdgeKeys = Img.EdgeKeys;
  P.BlockCounts.assign(P.BlockKeys.size(), 0);
  P.EdgeCounts.assign(P.EdgeKeys.size(), 0);
  return P;
}

void DenseProfile::accumulate(const DenseCounters &C) {
  size_t NB = std::min(BlockCounts.size(), C.BlockHits.size());
  for (size_t I = 0; I != NB; ++I)
    BlockCounts[I] += C.BlockHits[I];
  size_t NE = std::min(EdgeCounts.size(), C.EdgeHits.size());
  for (size_t I = 0; I != NE; ++I)
    EdgeCounts[I] += C.EdgeHits[I];
}

std::string DenseProfile::merge(const DenseProfile &O) {
  if (CfgHash != O.CfgHash)
    return "profile merge: CFG fingerprint mismatch (" +
           std::to_string(CfgHash) + " vs " + std::to_string(O.CfgHash) +
           ") — the profiles were collected from different modules";
  if (BlockCounts.size() != O.BlockCounts.size() ||
      EdgeCounts.size() != O.EdgeCounts.size())
    return "profile merge: slot-table shape mismatch";
  for (size_t I = 0; I != BlockCounts.size(); ++I)
    BlockCounts[I] += O.BlockCounts[I];
  for (size_t I = 0; I != EdgeCounts.size(); ++I)
    EdgeCounts[I] += O.EdgeCounts[I];
  return "";
}

void DenseProfile::scale(double Factor) {
  auto Scale = [Factor](uint64_t C) {
    double V = static_cast<double>(C) * Factor;
    return V <= 0 ? 0 : static_cast<uint64_t>(std::llround(V));
  };
  for (uint64_t &C : BlockCounts)
    C = Scale(C);
  for (uint64_t &C : EdgeCounts)
    C = Scale(C);
}

ProfileData DenseProfile::toProfileData() const {
  ProfileData P;
  for (size_t I = 0; I != BlockCounts.size(); ++I)
    if (BlockCounts[I])
      P.BlockCount[BlockKeys[I]] += BlockCounts[I];
  for (size_t I = 0; I != EdgeCounts.size(); ++I)
    if (EdgeCounts[I])
      P.EdgeCount[EdgeKeys[I]] += EdgeCounts[I];
  return P;
}

std::string DenseProfile::validateFor(const Module &M) const {
  uint64_t H = cfgFingerprint(M);
  if (H == CfgHash)
    return "";
  return "stale profile: module CFG fingerprint " + std::to_string(H) +
         " does not match the profile's " + std::to_string(CfgHash) +
         " — recollect the profile against this module";
}

std::vector<uint8_t> DenseProfile::serialize() const {
  std::vector<uint8_t> Out;
  Out.insert(Out.end(), Magic, Magic + 4);
  putU32(Out, FormatVersion);
  putU64(Out, CfgHash);
  putU64(Out, BlockKeys.size());
  putU64(Out, EdgeKeys.size());
  for (const std::string &K : BlockKeys)
    putStr(Out, K);
  for (const std::string &K : EdgeKeys)
    putStr(Out, K);
  for (uint64_t C : BlockCounts)
    putU64(Out, C);
  for (uint64_t C : EdgeCounts)
    putU64(Out, C);
  Fnv H;
  H.bytes(Out.data(), Out.size());
  putU64(Out, H.value());
  return Out;
}

std::string DenseProfile::deserialize(const uint8_t *Data, size_t Size,
                                      DenseProfile &Out) {
  if (Size < 4 + 4 + 8 + 8 + 8 + 8)
    return "profile image truncated (header incomplete)";
  if (std::memcmp(Data, Magic, 4) != 0)
    return "not a profile file (bad magic)";
  // Checksum covers everything before the trailing digest.
  Fnv H;
  H.bytes(Data, Size - 8);
  Reader Tail{Data, Size, Size - 8, true};
  if (H.value() != Tail.u64())
    return "profile image corrupt (checksum mismatch)";

  Reader R{Data, Size - 8, 4, true};
  uint32_t Version = R.u32();
  if (Version != FormatVersion)
    return "unsupported profile format version " + std::to_string(Version) +
           " (this build reads version " + std::to_string(FormatVersion) +
           ")";
  Out = DenseProfile();
  Out.CfgHash = R.u64();
  uint64_t NB = R.u64(), NE = R.u64();
  // Each key costs at least its 4-byte length prefix; reject sizes the
  // remaining bytes cannot possibly hold before reserving anything
  // (division avoids overflow on corrupt huge counts).
  uint64_t Left = R.Size - R.Pos;
  if (!R.Ok || NB > Left / 4 || NE > Left / 4 || NB + NE > Left / 4)
    return "profile image truncated (key table)";
  Out.BlockKeys.reserve(NB);
  for (uint64_t I = 0; I != NB && R.Ok; ++I)
    Out.BlockKeys.push_back(R.str());
  Out.EdgeKeys.reserve(NE);
  for (uint64_t I = 0; I != NE && R.Ok; ++I)
    Out.EdgeKeys.push_back(R.str());
  if (!R.Ok)
    return "profile image truncated (key table)";
  if ((NB + NE) * 8 != R.Size - R.Pos)
    return "profile image truncated (counter payload)";
  Out.BlockCounts.reserve(NB);
  for (uint64_t I = 0; I != NB; ++I)
    Out.BlockCounts.push_back(R.u64());
  Out.EdgeCounts.reserve(NE);
  for (uint64_t I = 0; I != NE; ++I)
    Out.EdgeCounts.push_back(R.u64());
  return "";
}

std::string DenseProfile::saveFile(const std::string &Path) const {
  std::vector<uint8_t> Bytes = serialize();
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    return "cannot open '" + Path + "' for writing";
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
  if (!Out.flush())
    return "write to '" + Path + "' failed";
  return "";
}

std::string DenseProfile::loadFile(const std::string &Path,
                                   DenseProfile &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return "cannot open '" + Path + "'";
  std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                             std::istreambuf_iterator<char>());
  if (In.bad())
    return "read from '" + Path + "' failed";
  return deserialize(Bytes.data(), Bytes.size(), Out);
}

DenseProfile vsc::collectDenseProfile(SimEngine &Engine,
                                      const std::vector<RunOptions> &Train,
                                      unsigned Threads, std::string *Err) {
  DenseProfile P = DenseProfile::forImage(Engine.image());
  std::vector<DenseCounters> Dense;
  std::vector<RunResult> Runs = Engine.runBatch(Train, Threads, &Dense);
  for (size_t I = 0; I != Runs.size(); ++I) {
    if (Runs[I].Trapped) {
      if (Err && Err->empty())
        *Err = "training run " + std::to_string(I) +
               " trapped: " + Runs[I].TrapMsg;
      continue;
    }
    // Battery order, not completion order: merging stays byte-identical
    // at every thread count.
    P.accumulate(Dense[I]);
  }
  return P;
}
