//===- pdf/PdfExperiment.cpp - PDF experiment driver ------------------------===//

#include "pdf/PdfExperiment.h"

#include "audit/PassAudit.h" // cloneModule
#include "profile/Counters.h"

using namespace vsc;

std::unique_ptr<Module> vsc::prepareForTraining(const Module &Source) {
  // Training runs need a run-ready module: the raw frontend output has no
  // prologs, so an argument-taking entry reads its parameters from unwired
  // stack slots and trains on a garbage input (the pre-PR collectProfile
  // path did exactly that). Prepare a clone at OptLevel::None — prolog
  // insertion only; the CFG fingerprint is invariant under preparation
  // (tests/test_pdf_store.cpp), so the profile still attaches to the raw
  // source module.
  auto Prepared = cloneModule(Source);
  optimize(*Prepared, OptLevel::None);
  return Prepared;
}

PdfFeedback vsc::collectPdfFeedback(const Module &Source,
                                    const PdfExperimentOptions &Opt,
                                    Module *CounterTarget) {
  PdfFeedback F;
  // Feedback profile: persisted, exact (dense ground truth), or the
  // paper's two-pass counter scheme.
  if (Opt.LoadedProfile) {
    std::string Stale = Opt.LoadedProfile->validateFor(Source);
    if (!Stale.empty()) {
      F.Error = Stale;
      return F;
    }
    F.Profile = *Opt.LoadedProfile;
    F.Feedback = F.Profile.toProfileData();
    return F;
  }
  auto Prepared = prepareForTraining(Source);
  if (Opt.ProfileSource == PdfExperimentOptions::Source::Exact) {
    SimEngine Engine(*Prepared, Opt.Machine);
    F.Profile = collectDenseProfile(Engine, Opt.Train, Opt.Threads, &F.Error);
    if (F.Error.empty())
      F.Feedback = F.Profile.toProfileData();
  } else {
    ProfileCollector Collector(*Prepared, Opt.Machine);
    F.Feedback =
        Collector.profileFor(*CounterTarget, Opt.Train, Opt.Threads, &F.Error);
  }
  return F;
}

void vsc::pdfBaselineCompile(Module &Target, const PdfExperimentOptions &Opt) {
  PipelineOptions Base;
  Base.Machine = Opt.Machine;
  Base.Threads = Opt.Threads;
  optimize(Target, Opt.Level, Base);
}

int vsc::pdfGuidedCompile(Module &Target, const ProfileData &Feedback,
                          const PdfExperimentOptions &Opt) {
  PipelineOptions Guided;
  Guided.Machine = Opt.Machine;
  Guided.Threads = Opt.Threads;
  Guided.Profile = &Feedback;
  Guided.Superblocks = Opt.Superblocks;
  std::vector<RunOptions> GateFront;
  if (Opt.MeasuredGate && !Opt.Train.empty()) {
    if (!Opt.GateOnBattery)
      GateFront = {Opt.Train.front()};
    Guided.TrainBattery = Opt.GateOnBattery ? &Opt.Train : &GateFront;
  }
  PipelineStats Stats;
  Guided.Stats = &Stats;
  optimize(Target, Opt.Level, Guided);
  return Stats.PdfLayoutKept;
}

void vsc::pdfMeasure(PdfExperimentResult &R, const PdfExperimentOptions &Opt) {
  // Measure both compiles on the test battery, one predecode each.
  SimEngine BaseEngine(*R.Baseline, Opt.Machine);
  SimEngine GuidedEngine(*R.Guided, Opt.Machine);
  R.BaselineRuns = BaseEngine.runBatch(Opt.Test, Opt.Threads);
  R.GuidedRuns = GuidedEngine.runBatch(Opt.Test, Opt.Threads);
  for (size_t I = 0; I != R.BaselineRuns.size(); ++I) {
    const RunResult &B = R.BaselineRuns[I];
    const RunResult &G = R.GuidedRuns[I];
    if (B.fingerprint() != G.fingerprint()) {
      R.Error = "behaviour diverged on test input " + std::to_string(I) +
                ":\n  baseline: " + B.fingerprint() +
                "\n  guided:   " + G.fingerprint();
      return;
    }
    R.BaselineCycles += B.Cycles;
    R.GuidedCycles += G.Cycles;
  }
}

PdfExperimentResult vsc::runPdfExperiment(const Module &Source,
                                          const PdfExperimentOptions &Opt) {
  PdfExperimentResult R;
  R.Baseline = cloneModule(Source);
  R.Guided = cloneModule(Source);

  PdfFeedback F = collectPdfFeedback(Source, Opt, R.Guided.get());
  R.Profile = std::move(F.Profile);
  R.Feedback = std::move(F.Feedback);
  if (!F.Error.empty()) {
    R.Error = std::move(F.Error);
    return R;
  }

  pdfBaselineCompile(*R.Baseline, Opt);
  R.PdfLayoutKept = pdfGuidedCompile(*R.Guided, R.Feedback, Opt);

  pdfMeasure(R, Opt);
  return R;
}
