//===- pdf/PdfExperiment.cpp - PDF experiment driver ------------------------===//

#include "pdf/PdfExperiment.h"

#include "audit/PassAudit.h" // cloneModule
#include "profile/Counters.h"

using namespace vsc;

PdfExperimentResult vsc::runPdfExperiment(const Module &Source,
                                          const PdfExperimentOptions &Opt) {
  PdfExperimentResult R;
  R.Baseline = cloneModule(Source);
  R.Guided = cloneModule(Source);

  // Feedback profile: persisted, exact (dense ground truth), or the
  // paper's two-pass counter scheme.
  if (Opt.LoadedProfile) {
    std::string Stale = Opt.LoadedProfile->validateFor(Source);
    if (!Stale.empty()) {
      R.Error = Stale;
      return R;
    }
    R.Profile = *Opt.LoadedProfile;
    R.Feedback = R.Profile.toProfileData();
  } else {
    // Training runs need a run-ready module: the raw frontend output has
    // no prologs, so an argument-taking entry reads its parameters from
    // unwired stack slots and trains on a garbage input (the pre-PR
    // collectProfile path did exactly that). Prepare a clone at
    // OptLevel::None — prolog insertion only; the CFG fingerprint is
    // invariant under preparation (tests/test_pdf_store.cpp), so the
    // profile still attaches to the raw source module.
    auto Prepared = cloneModule(Source);
    optimize(*Prepared, OptLevel::None);
    if (Opt.ProfileSource == PdfExperimentOptions::Source::Exact) {
      SimEngine Engine(*Prepared, Opt.Machine);
      R.Profile =
          collectDenseProfile(Engine, Opt.Train, Opt.Threads, &R.Error);
      if (!R.Error.empty())
        return R;
      R.Feedback = R.Profile.toProfileData();
    } else {
      ProfileCollector Collector(*Prepared, Opt.Machine);
      R.Feedback = Collector.profileFor(*R.Guided, Opt.Train, Opt.Threads,
                                        &R.Error);
      if (!R.Error.empty())
        return R;
    }
  }

  PipelineOptions Base;
  Base.Machine = Opt.Machine;
  Base.Threads = Opt.Threads;
  optimize(*R.Baseline, Opt.Level, Base);

  PipelineOptions Guided;
  Guided.Machine = Opt.Machine;
  Guided.Threads = Opt.Threads;
  Guided.Profile = &R.Feedback;
  Guided.Superblocks = Opt.Superblocks;
  std::vector<RunOptions> GateFront;
  if (Opt.MeasuredGate && !Opt.Train.empty()) {
    if (!Opt.GateOnBattery)
      GateFront = {Opt.Train.front()};
    Guided.TrainBattery = Opt.GateOnBattery ? &Opt.Train : &GateFront;
  }
  PipelineStats Stats;
  Guided.Stats = &Stats;
  optimize(*R.Guided, Opt.Level, Guided);
  R.PdfLayoutKept = Stats.PdfLayoutKept;

  // Measure both compiles on the test battery, one predecode each.
  SimEngine BaseEngine(*R.Baseline, Opt.Machine);
  SimEngine GuidedEngine(*R.Guided, Opt.Machine);
  R.BaselineRuns = BaseEngine.runBatch(Opt.Test, Opt.Threads);
  R.GuidedRuns = GuidedEngine.runBatch(Opt.Test, Opt.Threads);
  for (size_t I = 0; I != R.BaselineRuns.size(); ++I) {
    const RunResult &B = R.BaselineRuns[I];
    const RunResult &G = R.GuidedRuns[I];
    if (B.fingerprint() != G.fingerprint()) {
      R.Error = "behaviour diverged on test input " + std::to_string(I) +
                ":\n  baseline: " + B.fingerprint() +
                "\n  guided:   " + G.fingerprint();
      return R;
    }
    R.BaselineCycles += B.Cycles;
    R.GuidedCycles += G.Cycles;
  }
  return R;
}
