//===- pdf/PdfExperiment.h - PDF experiment driver ------------*- C++ -*-===//
///
/// \file
/// The paper's profile-directed-feedback experiment (train on one input,
/// compile with the profile, measure on another) as a reusable driver on
/// top of pdf/ProfileStore.h:
///
///  * the source module is built ONCE and cloned for the baseline and the
///    guided compile (audit/PassAudit.h cloneModule) — no per-experiment
///    rebuilds;
///  * training and measurement batteries run through predecoded SimEngines
///    and fan out across the work-stealing pool (support/ThreadPool.h),
///    with positional merging, so every number is byte-identical at every
///    thread count;
///  * the merged profile feeds back into vliw/Pipeline (scheduling
///    heuristic, superblock formation when asked, and the measured layout
///    gate over the whole training battery).
///
/// bench_pdf_gain, bench_profile_overhead and examples/pdf_workflow.cpp
/// are all built on this driver.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_PDF_PDFEXPERIMENT_H
#define VSC_PDF_PDFEXPERIMENT_H

#include "pdf/ProfileStore.h"
#include "vliw/Pipeline.h"

namespace vsc {

struct PdfExperimentOptions {
  MachineModel Machine = rs6000();
  /// Training battery: profiled inputs, merged in battery order.
  std::vector<RunOptions> Train;
  /// Measurement battery (the paper's reference inputs).
  std::vector<RunOptions> Test;
  /// Worker threads for every battery and for the pipeline; 0 defers to
  /// VSC_THREADS.
  unsigned Threads = 0;
  /// Where the feedback profile comes from:
  ///  * Counters — the paper's low-overhead two-pass scheme: instrument a
  ///    clone once (profile/Counters.h ProfileCollector), run the training
  ///    battery, infer every count.
  ///  * Exact — the simulator's ground-truth dense counters, recorded
  ///    straight from SimEngine's interned slots (pdf/ProfileStore.h).
  enum class Source { Counters, Exact };
  Source ProfileSource = Source::Counters;
  /// A persisted profile to feed back instead of collecting one (takes
  /// precedence over ProfileSource). Validated against the source module's
  /// CFG fingerprint; a stale profile fails the experiment.
  const DenseProfile *LoadedProfile = nullptr;
  /// Gate the layout applications on measured training cycles.
  bool MeasuredGate = true;
  /// Measure the gate over the whole training battery (the default) or
  /// over its first input only — the pre-PR single-input semantics, and
  /// much cheaper when training inputs are large.
  bool GateOnBattery = true;
  /// Trace-scheduling-style superblock formation in the guided compile.
  bool Superblocks = false;
  OptLevel Level = OptLevel::Vliw;
};

struct PdfExperimentResult {
  /// Non-empty when the experiment failed (stale profile, trapping run,
  /// baseline/guided behaviour divergence).
  std::string Error;
  /// Merged ground-truth dense profile (Source::Exact or LoadedProfile;
  /// empty for Source::Counters).
  DenseProfile Profile;
  /// The profile the pipeline consumed.
  ProfileData Feedback;
  /// Measured layout-gate decision (PipelineStats::PdfLayoutKept).
  int PdfLayoutKept = -1;
  /// Cycle sums over the measurement battery.
  uint64_t BaselineCycles = 0;
  uint64_t GuidedCycles = 0;
  /// Per-input measurement runs, positionally matched to Options.Test.
  std::vector<RunResult> BaselineRuns;
  std::vector<RunResult> GuidedRuns;
  /// The optimized modules (for callers that want to keep measuring).
  std::unique_ptr<Module> Baseline;
  std::unique_ptr<Module> Guided;

  bool ok() const { return Error.empty(); }
  /// Baseline/guided speedup on the measurement battery (1.0 = no gain).
  double gain() const {
    return GuidedCycles ? static_cast<double>(BaselineCycles) /
                              static_cast<double>(GuidedCycles)
                        : 1.0;
  }
};

/// Runs one full experiment against \p Source (never modified).
PdfExperimentResult runPdfExperiment(const Module &Source,
                                     const PdfExperimentOptions &Options);

// --- the experiment as reusable stages --------------------------------------
//
// runPdfExperiment chains these serially; the compile service
// (src/service/CompileService.h) runs them as separately cache-keyed
// stage functions, so the train / baseline / guided phases of different
// requests overlap instead of marching through one monolithic driver, and
// a baseline compiled for one request serves every later request with the
// same (module, options, machine) key.

/// Stage: a run-ready clone of \p Source for training (prolog insertion
/// only — the raw frontend output would misread its arguments; see the
/// comment in collectPdfFeedback's implementation). The CFG fingerprint
/// is invariant under this preparation, so profiles collected from the
/// prepared clone still attach to \p Source.
std::unique_ptr<Module> prepareForTraining(const Module &Source);

/// What the feedback stage produces.
struct PdfFeedback {
  /// Non-empty when collection failed (stale profile, trapping run).
  std::string Error;
  /// Dense ground truth (Source::Exact or a loaded profile; empty for
  /// the counter scheme).
  DenseProfile Profile;
  /// The profile the pipeline consumes.
  ProfileData Feedback;
  bool ok() const { return Error.empty(); }
};

/// Stage (train): collect or validate the feedback profile. The counter
/// scheme (Source::Counters) applies the pass-1-identical planCounters
/// surgery to \p CounterTarget — the module the guided compile will run
/// on — so that path mutates it; Exact and LoadedProfile leave it alone
/// (it may then be null).
PdfFeedback collectPdfFeedback(const Module &Source,
                               const PdfExperimentOptions &Opt,
                               Module *CounterTarget);

/// Stage (baseline): plain optimize at Opt.Level/Machine/Threads —
/// byte-identical to a profile-less compile of the same module, which is
/// exactly why the service can satisfy it from the compile-artifact cache.
void pdfBaselineCompile(Module &Target, const PdfExperimentOptions &Opt);

/// Stage (guided): optimize \p Target with \p Feedback attached and the
/// measured layout gate configured per Opt. \returns the gate decision
/// (PipelineStats::PdfLayoutKept).
int pdfGuidedCompile(Module &Target, const ProfileData &Feedback,
                     const PdfExperimentOptions &Opt);

/// Stage (measure): simulate R.Baseline and R.Guided over Opt.Test,
/// enforce behaviour equality per input, and fill the cycle sums
/// (R.Error names the first diverging input).
void pdfMeasure(PdfExperimentResult &R, const PdfExperimentOptions &Opt);

} // namespace vsc

#endif // VSC_PDF_PDFEXPERIMENT_H
