//===- pipelining/MinII.h - Initiation-interval lower bounds --*- C++ -*-===//
///
/// \file
/// The analysis layer of the exact software-pipelining subsystem
/// (DESIGN.md §16). For every innermost chain-shaped loop it computes the
/// two classic lower bounds on the initiation interval of any modulo
/// schedule:
///
///  * resMII — resource-constrained: each execution unit class (FXU, BU)
///    must issue its share of the body every II cycles, so
///    II >= ceil(ops-on-unit / unit-width).
///  * recMII — recurrence-constrained: every dependence cycle C in the
///    loop-carried dependence graph forces
///    II >= ceil(sum(latency over C) / sum(distance over C)); computed by
///    binary search on II with positive-cycle detection over edge weights
///    latency - II*distance (Bellman-Ford relaxation).
///
/// The dependence graph mirrors the timing model the schedulers optimize
/// (vliw/Schedule.cpp's IssueEngine): register flow edges carry the
/// producer's latency; anti/output and memory/call ordering edges carry
/// latency 0 (the engine imposes no cross-operation memory delay — program
/// order decides semantics); loop-carried edges all have distance 1 (the
/// body is a single chain, so an operation of iteration k+1 depends on
/// iteration k at distance exactly one). Branch operations participate in
/// resMII as BU consumers but contribute no dependence edges: the engine
/// issues branches without waiting on their operands, so the model stays a
/// relaxation of the engine and max(resMII, recMII) is a true lower bound
/// on any achievable steady-state II.
///
/// MinIIAnalysis is cached by FunctionAnalyses (AnalysisKind::MinII),
/// keyed by the machine fingerprint and the alias tier it was built with.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_PIPELINING_MINII_H
#define VSC_PIPELINING_MINII_H

#include "cfg/Loops.h"
#include "ir/Module.h"
#include "machine/MachineModel.h"

#include <string>
#include <vector>

namespace vsc {

class AliasAnalysis;

/// One dependence edge of a loop body: operation \p To of iteration
/// k + Dist must issue no earlier than Lat cycles after operation \p From
/// of iteration k.
struct LoopDepEdge {
  unsigned From = 0;
  unsigned To = 0;
  unsigned Lat = 0;  ///< cycles From's result needs (0 for pure ordering)
  unsigned Dist = 0; ///< iteration distance (0 intra, 1 loop-carried)
};

/// The loop-carried dependence graph of one flattened loop body.
struct LoopDepGraph {
  unsigned NumOps = 0;
  std::vector<LoopDepEdge> Edges;
};

/// Builds the dependence graph of \p Body (the concatenated instructions
/// of a loop chain, terminators included). Memory disambiguation goes
/// through \p AA when non-null (CrossExecution scope for loop-carried
/// queries), else the syntactic tier.
LoopDepGraph buildLoopDepGraph(const std::vector<Instr> &Body,
                               const MachineModel &MM,
                               const AliasAnalysis *AA);

/// recMII of \p G: the smallest II with no positive cycle under edge
/// weights Lat - II*Dist. 1 when the graph is acyclic.
unsigned computeRecMII(const LoopDepGraph &G);

/// resMII of \p Body under \p MM's unit widths (>= 1).
unsigned computeResMII(const std::vector<Instr> &Body,
                       const MachineModel &MM);

/// Lower bounds for one innermost loop.
struct LoopMinII {
  std::string Header;      ///< header block label (the loop's stable key)
  unsigned BodyInstrs = 0; ///< flattened body size, terminators included
  unsigned ResMII = 1;
  unsigned RecMII = 1;
  /// False when the loop is outside the model: not a single chain with
  /// all back edges from the chain tail (vliw/Rename.h's loopChain).
  bool Modeled = false;

  unsigned minII() const { return ResMII > RecMII ? ResMII : RecMII; }
};

/// Per-function min-II analysis: one LoopMinII per innermost loop, in
/// LoopInfo's deterministic discovery order.
class MinIIAnalysis {
public:
  MinIIAnalysis(const Function &F, const Cfg &G, const LoopInfo &LI,
                const AliasAnalysis *AA, const MachineModel &MM);

  const std::vector<LoopMinII> &loops() const { return Loops; }

  /// The record for the innermost loop headed by \p HeaderLabel, or null.
  const LoopMinII *forHeader(const std::string &HeaderLabel) const;

  /// Cache key halves (FunctionAnalyses::minII compares both).
  uint64_t machineKey() const { return MachineKey; }
  bool flowAlias() const { return Flow; }
  /// The machine the bounds were computed for (verifyCache recomputes
  /// with it).
  const MachineModel &machine() const { return MM; }

  /// Canonical one-line digest for recompute-and-compare checking.
  std::string summarize() const;

private:
  std::vector<LoopMinII> Loops;
  MachineModel MM;
  uint64_t MachineKey;
  bool Flow;
};

} // namespace vsc

#endif // VSC_PIPELINING_MINII_H
