//===- pipelining/ExactPipeliner.h - B&B modulo scheduler -----*- C++ -*-===//
///
/// \file
/// The search layer of the exact software-pipelining subsystem
/// (DESIGN.md §16): a branch-and-bound modulo scheduler over the
/// dependence graph pipelining/MinII.h builds.
///
/// For each candidate II starting at max(resMII, recMII), every body
/// operation gets one decision variable — an absolute issue cycle in
/// [0, MaxStages*II); cycle mod II is the operation's reservation slot,
/// cycle / II its pipeline stage. Constraints:
///
///  * latency/distance: cycle(To) >= cycle(From) + Lat - II*Dist for every
///    dependence edge;
///  * resources: at most FxuWidth FXU ops and BuWidth BU ops share any
///    residue class mod II (the modulo reservation table);
///  * normalization: the first operation placed is pinned to [0, II) — a
///    uniform shift of all cycles permutes residues without changing
///    feasibility, so this prunes pure translates of the same schedule.
///
/// Operations are placed in decreasing dependence-height order; each
/// placement enumerates only the window its already-placed neighbours
/// allow. Every attempted placement counts against a node budget; a search
/// cut by the budget is "incomplete" and can no longer prove infeasibility
/// at its II. Verdicts over the swept II range [minII, maxII]:
///
///  * Optimal         — schedule found, every lower II searched to
///                      completion (proven no better II exists in-model);
///  * Feasible        — schedule found, but some lower II search was cut
///                      by the budget (a better schedule may exist);
///  * BudgetExceeded  — nothing found and at least one search was cut;
///  * Infeasible      — nothing found, every candidate II searched to
///                      completion (or the loop shape is outside the
///                      model: non-chain loops, oversized bodies).
///
/// The harness types below (LoopPipelineRecord, PipelineLoopLog) carry the
/// per-loop grading results — achieved-II vs. min-II vs. exact-II — from
/// the pipelining pass to PipelineStats, deterministically across the
/// parallel per-function driver.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_PIPELINING_EXACTPIPELINER_H
#define VSC_PIPELINING_EXACTPIPELINER_H

#include "pipelining/MinII.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace vsc {

/// How the exact scheduler participates in the pipeline (wired through
/// PipelineOptions::ExactPipelining).
enum class ExactPipelineMode : uint8_t {
  Off,   ///< never runs
  Grade, ///< runs as a pure oracle; records gaps, changes no code
  Apply, ///< additionally substitutes its kernel when it beats the
         ///< heuristic's steady-state estimate
};

enum class ExactVerdict : uint8_t {
  Optimal,
  Feasible,
  BudgetExceeded,
  Infeasible,
};

const char *exactVerdictName(ExactVerdict V);
const char *exactPipelineModeName(ExactPipelineMode M);

/// Budget and shape caps of the exact search.
struct ExactPipelinerOptions {
  /// Placement attempts across all candidate IIs of one loop; the search
  /// stops (BudgetExceeded/Feasible) when exhausted.
  uint64_t NodeBudget = 200000;
  /// Schedule length cap: cycles live in [0, MaxStages*II).
  unsigned MaxStages = 4;
  /// Loops with more flattened body instructions are not searched.
  unsigned MaxBodyInstrs = 48;
  /// Absolute ceiling on the candidate II sweep.
  unsigned MaxII = 64;
};

/// Outcome of one loop's search.
struct ExactSchedule {
  ExactVerdict Verdict = ExactVerdict::Infeasible;
  unsigned II = 0;             ///< best II found (0 = none)
  std::vector<unsigned> Cycle; ///< absolute cycle per body op when II != 0
  uint64_t NodesExplored = 0;
};

/// Searches candidate IIs in [max(1, MinII), MaxII] for \p Body under
/// dependence graph \p G. Branch operations occupy BU reservation slots
/// but have no dependence edges (see pipelining/MinII.h).
ExactSchedule exactScheduleLoop(const std::vector<Instr> &Body,
                                const LoopDepGraph &G,
                                const MachineModel &MM, unsigned MinII,
                                unsigned MaxII,
                                const ExactPipelinerOptions &Opts);

/// Grading result for one pipelined innermost loop.
struct LoopPipelineRecord {
  std::string Function;
  std::string Header;
  unsigned BodyInstrs = 0;
  unsigned ResMII = 0;
  unsigned RecMII = 0;
  /// Steady-state II the heuristic rotation pass reached.
  unsigned HeuristicII = 0;
  /// Best II the exact scheduler found (0 = none within budget/caps).
  unsigned ExactII = 0;
  ExactVerdict Verdict = ExactVerdict::Infeasible;
  uint64_t NodesExplored = 0;
  /// Rotations the heuristic kept.
  unsigned Rotations = 0;
  /// Apply mode substituted an exact-guided kernel.
  bool Applied = false;
  /// Final steady-state II of the emitted loop (== HeuristicII unless
  /// Applied).
  unsigned AchievedII = 0;

  unsigned minII() const { return ResMII > RecMII ? ResMII : RecMII; }
};

/// Thread-safe sink for per-function record batches; sorted() gives the
/// deterministic (function, header) order every exporter uses, so
/// PipelineStats is byte-identical at every VSC_THREADS count.
class PipelineLoopLog {
public:
  void append(std::vector<LoopPipelineRecord> Records);
  std::vector<LoopPipelineRecord> sorted() const;

private:
  mutable std::mutex Mu;
  std::vector<LoopPipelineRecord> All;
};

} // namespace vsc

#endif // VSC_PIPELINING_EXACTPIPELINER_H
