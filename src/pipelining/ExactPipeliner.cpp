//===- pipelining/ExactPipeliner.cpp - B&B modulo scheduler ----------------===//

#include "pipelining/ExactPipeliner.h"

#include <algorithm>

using namespace vsc;

const char *vsc::exactVerdictName(ExactVerdict V) {
  switch (V) {
  case ExactVerdict::Optimal:
    return "optimal";
  case ExactVerdict::Feasible:
    return "feasible";
  case ExactVerdict::BudgetExceeded:
    return "budget-exceeded";
  case ExactVerdict::Infeasible:
    return "infeasible";
  }
  return "?";
}

const char *vsc::exactPipelineModeName(ExactPipelineMode M) {
  switch (M) {
  case ExactPipelineMode::Off:
    return "off";
  case ExactPipelineMode::Grade:
    return "grade";
  case ExactPipelineMode::Apply:
    return "apply";
  }
  return "?";
}

namespace {

/// One fixed-II search: depth-first placement in priority order with
/// window propagation from already-placed neighbours and the modulo
/// reservation table as the resource filter.
class ModuloSearch {
public:
  ModuloSearch(const std::vector<Instr> &Body, const LoopDepGraph &G,
               const MachineModel &MM, unsigned II, unsigned Span,
               uint64_t Budget, uint64_t &Nodes)
      : Body(Body), MM(MM), II(II), Span(Span), Budget(Budget),
        Nodes(Nodes) {
    unsigned N = G.NumOps;
    Cycle.assign(N, ~0u);
    Placed.assign(N, false);
    Out.assign(N, {});
    In.assign(N, {});
    for (const LoopDepEdge &E : G.Edges) {
      if (E.From == E.To) {
        SelfEdges.push_back(E);
        continue;
      }
      Out[E.From].push_back(E);
      In[E.To].push_back(E);
    }
    // Priority: decreasing latency-weighted height over intra-iteration
    // edges (critical producers first), index as the deterministic tie.
    std::vector<unsigned> Height(N, 0);
    for (unsigned I = N; I-- > 0;)
      for (const LoopDepEdge &E : Out[I])
        if (E.Dist == 0)
          Height[I] = std::max(Height[I], E.Lat + Height[E.To]);
    Order.resize(N);
    for (unsigned I = 0; I != N; ++I)
      Order[I] = I;
    std::stable_sort(Order.begin(), Order.end(),
                     [&Height](unsigned A, unsigned B) {
                       return Height[A] > Height[B];
                     });
    FxuSlots.assign(II, 0);
    BuSlots.assign(II, 0);
  }

  /// \returns true when a full placement was found (Cycle[] is valid).
  /// \p Complete is false when the node budget cut the search.
  bool run(bool &Complete) {
    Complete = true;
    // A self edge (dist >= 1) with Lat > II*Dist can never be satisfied;
    // proving that costs nothing, so the search stays complete.
    for (const LoopDepEdge &E : SelfEdges)
      if (static_cast<long long>(E.Lat) >
          static_cast<long long>(II) * E.Dist)
        return false;
    return place(0, Complete);
  }

  const std::vector<unsigned> &cycles() const { return Cycle; }

private:
  bool place(size_t K, bool &Complete) {
    if (K == Order.size())
      return true;
    unsigned Op = Order[K];
    long long Lb = 0, Ub = static_cast<long long>(Span) - 1;
    for (const LoopDepEdge &E : In[Op])
      if (Placed[E.From])
        Lb = std::max(Lb, static_cast<long long>(Cycle[E.From]) + E.Lat -
                              static_cast<long long>(II) * E.Dist);
    for (const LoopDepEdge &E : Out[Op])
      if (Placed[E.To])
        Ub = std::min(Ub, static_cast<long long>(Cycle[E.To]) - E.Lat +
                              static_cast<long long>(II) * E.Dist);
    if (K == 0)
      Ub = std::min(Ub, static_cast<long long>(II) - 1);
    UnitKind U = MM.unitOf(Body[Op]);
    for (long long C = Lb; C <= Ub; ++C) {
      if (Nodes >= Budget) {
        Complete = false;
        return false;
      }
      ++Nodes;
      unsigned Residue = static_cast<unsigned>(C % II);
      std::vector<unsigned> *Slots = nullptr;
      unsigned Width = 0;
      if (U == UnitKind::Fxu) {
        Slots = &FxuSlots;
        Width = MM.FxuWidth;
      } else if (U == UnitKind::Bu) {
        Slots = &BuSlots;
        Width = MM.BuWidth;
      }
      if (Slots && (*Slots)[Residue] >= Width)
        continue;
      if (Slots)
        ++(*Slots)[Residue];
      Cycle[Op] = static_cast<unsigned>(C);
      Placed[Op] = true;
      if (place(K + 1, Complete))
        return true;
      Placed[Op] = false;
      if (Slots)
        --(*Slots)[Residue];
      if (!Complete)
        return false;
    }
    return false;
  }

  const std::vector<Instr> &Body;
  const MachineModel &MM;
  unsigned II, Span;
  uint64_t Budget;
  uint64_t &Nodes;
  std::vector<unsigned> Cycle;
  std::vector<bool> Placed;
  std::vector<std::vector<LoopDepEdge>> Out, In;
  std::vector<LoopDepEdge> SelfEdges;
  std::vector<unsigned> Order;
  std::vector<unsigned> FxuSlots, BuSlots;
};

} // namespace

ExactSchedule vsc::exactScheduleLoop(const std::vector<Instr> &Body,
                                     const LoopDepGraph &G,
                                     const MachineModel &MM, unsigned MinII,
                                     unsigned MaxII,
                                     const ExactPipelinerOptions &Opts) {
  ExactSchedule Out;
  if (Body.size() != G.NumOps || Body.empty() ||
      Body.size() > Opts.MaxBodyInstrs) {
    Out.Verdict = ExactVerdict::Infeasible;
    return Out;
  }
  bool AnyIncomplete = false;
  unsigned Lo = std::max(1u, MinII);
  unsigned Hi = std::min(MaxII, Opts.MaxII);
  for (unsigned II = Lo; II <= Hi; ++II) {
    ModuloSearch S(Body, G, MM, II, Opts.MaxStages * II, Opts.NodeBudget,
                   Out.NodesExplored);
    bool Complete = true;
    if (S.run(Complete)) {
      Out.II = II;
      Out.Cycle = S.cycles();
      Out.Verdict =
          AnyIncomplete ? ExactVerdict::Feasible : ExactVerdict::Optimal;
      return Out;
    }
    if (!Complete) {
      AnyIncomplete = true;
      break; // budget is shared across IIs; nothing left to spend
    }
  }
  Out.Verdict = AnyIncomplete ? ExactVerdict::BudgetExceeded
                              : ExactVerdict::Infeasible;
  return Out;
}

void PipelineLoopLog::append(std::vector<LoopPipelineRecord> Records) {
  if (Records.empty())
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  for (LoopPipelineRecord &R : Records)
    All.push_back(std::move(R));
}

std::vector<LoopPipelineRecord> PipelineLoopLog::sorted() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<LoopPipelineRecord> Out = All;
  std::sort(Out.begin(), Out.end(),
            [](const LoopPipelineRecord &A, const LoopPipelineRecord &B) {
              if (A.Function != B.Function)
                return A.Function < B.Function;
              return A.Header < B.Header;
            });
  return Out;
}
