//===- pipelining/MinII.cpp - Initiation-interval lower bounds -------------===//

#include "pipelining/MinII.h"

#include "analysis/MemAlias.h"
#include "analysis/ValueTrack.h"
#include "vliw/Rename.h"

#include <algorithm>
#include <sstream>

using namespace vsc;

namespace {

/// Callees that neither read nor write user memory (I/O builtins); keep in
/// sync with the dependence builder in vliw/Schedule.cpp.
bool isMemoryInertCall(const Instr &I) {
  return I.isCall() && (I.Sym == "print_int" || I.Sym == "print_char" ||
                        I.Sym == "read_int");
}

/// Scope for an intra-iteration alias query between Body[I] and Body[J]
/// (I < J): SameExecution unless an instruction between them redefines a
/// base register the two accesses share (vliw/Schedule.cpp's memScopeFor).
AliasScope intraScope(const std::vector<Instr> &Body, size_t I, size_t J) {
  if (!Body[I].isMemAccess() || !Body[J].isMemAccess())
    return AliasScope::SameExecution;
  Reg B = Body[I].memBase();
  if (B != Body[J].memBase())
    return AliasScope::SameExecution;
  std::vector<Reg> Defs;
  for (size_t K = I + 1; K < J; ++K) {
    Defs.clear();
    Body[K].collectDefs(Defs);
    if (std::find(Defs.begin(), Defs.end(), B) != Defs.end())
      return AliasScope::CrossExecution;
  }
  return AliasScope::SameExecution;
}

bool intersects(const std::vector<Reg> &A, const std::vector<Reg> &B) {
  for (Reg R : A)
    if (std::find(B.begin(), B.end(), R) != B.end())
      return true;
  return false;
}

/// Appends the dependence edge (if any) from Body[I] of iteration k to
/// Body[J] of iteration k + Dist. Branches contribute no edges: the issue
/// engine does not wait on branch operands, so including them would make
/// the bound exceed what the engine can actually be held to.
void addDepEdge(std::vector<LoopDepEdge> &Edges,
                const std::vector<Instr> &Body, unsigned I, unsigned J,
                unsigned Dist, AliasScope Scope, const MachineModel &MM,
                const AliasAnalysis *AA) {
  const Instr &E = Body[I];
  const Instr &L = Body[J];
  if (E.isBranch() || L.isBranch())
    return;
  std::vector<Reg> EDefs, EUses, LDefs, LUses;
  E.collectDefs(EDefs);
  E.collectUses(EUses);
  L.collectDefs(LDefs);
  L.collectUses(LUses);

  if (intersects(EDefs, LUses)) { // flow: result latency applies
    Edges.push_back({I, J, MM.latencyOf(E), Dist});
    return;
  }
  bool Ordered = intersects(EUses, LDefs) || intersects(EDefs, LDefs);
  if (!Ordered) {
    auto IsOpaqueCall = [](const Instr &X) {
      return X.isCall() && !isMemoryInertCall(X);
    };
    if (E.isCall() && L.isCall())
      Ordered = true;
    else if ((IsOpaqueCall(E) && L.isMemAccess()) ||
             (IsOpaqueCall(L) && E.isMemAccess()))
      Ordered = true;
    else if (E.isMemAccess() && L.isMemAccess()) {
      if (E.IsVolatile && L.IsVolatile)
        Ordered = true;
      else if (E.isStore() || L.isStore())
        Ordered = (AA ? AA->alias(E, L, Scope) : alias(E, L, Scope)) !=
                  AliasResult::NoAlias;
    }
  }
  // Anti/output/ordering edges carry latency 0: the engine issues in
  // program order with no cross-operation memory delay, so order (not
  // time) is the only constraint they impose.
  if (Ordered)
    Edges.push_back({I, J, 0, Dist});
}

/// True if \p G has a cycle of positive total weight under
/// w(e) = Lat - II*Dist (Bellman-Ford: still relaxing after NumOps full
/// passes means a positive cycle exists).
bool hasPositiveCycle(const LoopDepGraph &G, long long II) {
  std::vector<long long> D(G.NumOps, 0);
  for (unsigned Pass = 0; Pass <= G.NumOps; ++Pass) {
    bool Changed = false;
    for (const LoopDepEdge &E : G.Edges) {
      long long W =
          static_cast<long long>(E.Lat) - II * static_cast<long long>(E.Dist);
      if (D[E.From] + W > D[E.To]) {
        D[E.To] = D[E.From] + W;
        Changed = true;
      }
    }
    if (!Changed)
      return false;
  }
  return true;
}

} // namespace

LoopDepGraph vsc::buildLoopDepGraph(const std::vector<Instr> &Body,
                                    const MachineModel &MM,
                                    const AliasAnalysis *AA) {
  LoopDepGraph G;
  G.NumOps = static_cast<unsigned>(Body.size());
  for (unsigned J = 0; J != G.NumOps; ++J)
    for (unsigned I = 0; I != J; ++I)
      addDepEdge(G.Edges, Body, I, J, /*Dist=*/0, intraScope(Body, I, J),
                 MM, AA);
  // Loop-carried: every operation of iteration k+1 is a potential
  // dependent of every operation of iteration k (distance exactly 1 — the
  // body is one chain). Cross-iteration memory queries never get the
  // same-base displacement promise.
  for (unsigned I = 0; I != G.NumOps; ++I)
    for (unsigned J = 0; J != G.NumOps; ++J)
      addDepEdge(G.Edges, Body, I, J, /*Dist=*/1,
                 AliasScope::CrossExecution, MM, AA);
  return G;
}

unsigned vsc::computeRecMII(const LoopDepGraph &G) {
  if (G.Edges.empty() || G.NumOps == 0)
    return 1;
  // No positive cycle survives II = 1 + sum(Lat): any cycle has
  // sum(Dist) >= 1 (intra edges only run forward), so its weight is at
  // most sum(Lat) - II < 0. Binary search the smallest feasible II.
  long long Lo = 1, Hi = 1;
  for (const LoopDepEdge &E : G.Edges)
    Hi += E.Lat;
  while (Lo < Hi) {
    long long Mid = Lo + (Hi - Lo) / 2;
    if (hasPositiveCycle(G, Mid))
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  return static_cast<unsigned>(Lo);
}

unsigned vsc::computeResMII(const std::vector<Instr> &Body,
                            const MachineModel &MM) {
  unsigned Fxu = 0, Bu = 0;
  for (const Instr &I : Body) {
    if (MM.unitOf(I) == UnitKind::Fxu)
      ++Fxu;
    else if (MM.unitOf(I) == UnitKind::Bu)
      ++Bu;
  }
  unsigned R = 1;
  R = std::max(R, (Fxu + MM.FxuWidth - 1) / MM.FxuWidth);
  R = std::max(R, (Bu + MM.BuWidth - 1) / MM.BuWidth);
  return R;
}

MinIIAnalysis::MinIIAnalysis(const Function &F, const Cfg &G,
                             const LoopInfo &LI, const AliasAnalysis *AA,
                             const MachineModel &M)
    : MM(M), MachineKey(machineFingerprint(M)), Flow(AA != nullptr) {
  (void)F;
  for (const Loop *L : LI.innermostLoops()) {
    LoopMinII R;
    R.Header = L->Header->label();
    std::vector<BasicBlock *> Chain = loopChain(G, *L);
    bool ChainOk = !Chain.empty();
    for (BasicBlock *Latch : L->Latches)
      if (Chain.empty() || Latch != Chain.back())
        ChainOk = false;
    if (ChainOk) {
      std::vector<Instr> Body;
      for (BasicBlock *BB : Chain)
        for (const Instr &I : BB->instrs())
          Body.push_back(I);
      R.BodyInstrs = static_cast<unsigned>(Body.size());
      R.ResMII = computeResMII(Body, MM);
      R.RecMII = computeRecMII(buildLoopDepGraph(Body, MM, AA));
      R.Modeled = true;
    }
    Loops.push_back(std::move(R));
  }
}

const LoopMinII *
MinIIAnalysis::forHeader(const std::string &HeaderLabel) const {
  for (const LoopMinII &R : Loops)
    if (R.Header == HeaderLabel)
      return &R;
  return nullptr;
}

std::string MinIIAnalysis::summarize() const {
  std::ostringstream OS;
  for (const LoopMinII &R : Loops)
    OS << R.Header << "(body=" << R.BodyInstrs << ",res=" << R.ResMII
       << ",rec=" << R.RecMII << ",mod=" << (R.Modeled ? 1 : 0) << ");";
  return OS.str();
}
