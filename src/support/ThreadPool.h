//===- support/ThreadPool.h - Work-stealing thread pool -------*- C++ -*-===//
///
/// \file
/// A small work-stealing thread pool for the parallel per-function
/// compilation driver (pm/PassManager.h). parallelFor(N, Fn) runs Fn(i)
/// for every i in [0, N) across the pool's workers and returns when all
/// indices have completed; the calling thread participates as worker 0.
///
/// Work distribution: indices are dealt round-robin into one deque per
/// worker. A worker drains its own deque from the front and, when empty,
/// steals from the back of the longest sibling deque — cheap dynamic load
/// balancing for the skewed function-size distributions real modules have
/// (one large hot function plus many small helpers).
///
/// Determinism contract: parallelFor guarantees nothing about execution
/// order, so callers must only submit tasks that are independent (the
/// driver runs one function's pass chain per task, with no shared mutable
/// state). Under that restriction the observable result is schedule-
/// independent and therefore identical to a serial run.
///
/// Thread count resolution: ThreadPool::defaultThreadCount() reads the
/// VSC_THREADS environment variable (clamped to [1, 64]; unset/invalid
/// means 1), which PipelineOptions::Threads == 0 defers to.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_SUPPORT_THREADPOOL_H
#define VSC_SUPPORT_THREADPOOL_H

#include <cstddef>
#include <functional>

namespace vsc {

class ThreadPool {
public:
  /// \p Threads total workers, including the calling thread. 0 and 1 both
  /// mean "run inline, spawn nothing".
  explicit ThreadPool(unsigned Threads) : NumThreads(Threads ? Threads : 1) {}

  unsigned threadCount() const { return NumThreads; }

  /// Runs \p Fn(i) for every i in [0, N), blocking until all complete.
  /// Tasks must be independent; any task may run on any worker. A task
  /// that throws terminates the process (tasks in this project abort on
  /// failure instead of throwing).
  void parallelFor(size_t N, const std::function<void(size_t)> &Fn) const;

  /// VSC_THREADS environment variable, clamped to [1, 64]; 1 when unset
  /// or unparsable.
  static unsigned defaultThreadCount();

private:
  unsigned NumThreads = 1;
};

} // namespace vsc

#endif // VSC_SUPPORT_THREADPOOL_H
