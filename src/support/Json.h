//===- support/Json.h - Minimal structured JSON emission ------*- C++ -*-===//
///
/// \file
/// A small streaming JSON writer replacing the hand-rolled snprintf
/// emission the bench binaries accumulated (bench/BenchUtil.h re-exports
/// it for them). The layout is fixed, matching the BENCH_*.json shape the
/// benches have always produced, byte for byte:
///
///  * the root object is multi-line with two-space indentation per level;
///  * arrays are multi-line: every element on its own line, indented one
///    level deeper than the array's key;
///  * nested objects are emitted inline ({"k": v, ...}) until they open
///    an array, which switches back to the multi-line rules.
///
/// Numbers carry their format explicitly (u64/i64 as digits, doubles with
/// a caller-chosen %.Nf precision), because the byte-identity contract of
/// the emitted files is part of the bench interface (scripts diff them).
///
//===----------------------------------------------------------------------===//

#ifndef VSC_SUPPORT_JSON_H
#define VSC_SUPPORT_JSON_H

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace vsc {

class JsonWriter {
public:
  JsonWriter &beginObject() {
    prefixValue();
    Out += '{';
    Nest.push_back({/*IsArray=*/false, /*First=*/true});
    return *this;
  }

  JsonWriter &endObject() {
    assert(!Nest.empty() && !Nest.back().IsArray);
    bool Multi = multiline();
    Nest.pop_back();
    if (Multi) {
      Out += '\n';
      indent(levels());
    }
    Out += '}';
    if (Nest.empty())
      Out += '\n'; // files end "}\n"
    return *this;
  }

  JsonWriter &key(const std::string &K) {
    assert(!Nest.empty() && !Nest.back().IsArray && !HaveKey);
    if (multiline()) {
      if (!Nest.back().First)
        Out += ',';
      Out += '\n';
      indent(levels());
    } else if (!Nest.back().First) {
      Out += ", ";
    }
    Nest.back().First = false;
    quote(K);
    Out += ": ";
    HaveKey = true;
    return *this;
  }

  JsonWriter &beginArray() {
    prefixValue();
    Out += '[';
    Nest.push_back({/*IsArray=*/true, /*First=*/true});
    return *this;
  }

  JsonWriter &endArray() {
    assert(!Nest.empty() && Nest.back().IsArray);
    Nest.pop_back();
    Out += '\n';
    indent(levels());
    Out += ']';
    return *this;
  }

  JsonWriter &str(const std::string &S) {
    prefixValue();
    quote(S);
    return *this;
  }

  JsonWriter &num(uint64_t V) {
    prefixValue();
    Out += std::to_string(V);
    return *this;
  }
  JsonWriter &num(int64_t V) {
    prefixValue();
    Out += std::to_string(V);
    return *this;
  }
  JsonWriter &num(int V) { return num(static_cast<int64_t>(V)); }
  JsonWriter &num(unsigned V) { return num(static_cast<uint64_t>(V)); }

  /// %.*f with explicit \p Precision — the bench files' number format.
  JsonWriter &num(double V, int Precision) {
    prefixValue();
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, V);
    Out += Buf;
    return *this;
  }

  JsonWriter &boolean(bool B) {
    prefixValue();
    Out += B ? "true" : "false";
    return *this;
  }

  /// The finished document. Asserts every container was closed.
  const std::string &take() const {
    assert(Nest.empty());
    return Out;
  }

private:
  struct Level {
    bool IsArray;
    bool First;
  };

  /// Multi-line layout applies at the root object and inside arrays.
  bool multiline() const {
    if (Nest.empty())
      return false;
    if (Nest.back().IsArray)
      return true;
    return Nest.size() == 1; // the root object
  }

  /// Indentation counts only the multi-line containers (the root object
  /// and every array) — inline nested objects add no depth, which is the
  /// shape the historical hand-rolled emitters produced.
  size_t levels() const {
    size_t N = 0;
    for (size_t I = 0; I != Nest.size(); ++I)
      if (Nest[I].IsArray || I == 0)
        ++N;
    return N;
  }

  void indent(size_t D) { Out.append(2 * D, ' '); }

  /// Emits whatever must precede a value: the array-element separator and
  /// indentation, or nothing after a key / at the root.
  void prefixValue() {
    if (HaveKey) {
      HaveKey = false;
      return;
    }
    if (Nest.empty())
      return; // root value
    assert(Nest.back().IsArray && "object members need key() first");
    if (!Nest.back().First)
      Out += ',';
    Nest.back().First = false;
    Out += '\n';
    indent(levels());
  }

  void quote(const std::string &S) {
    Out += '"';
    for (char C : S) {
      if (C == '"' || C == '\\')
        Out += '\\';
      Out += C;
    }
    Out += '"';
  }

  std::string Out;
  std::vector<Level> Nest;
  bool HaveKey = false;
};

} // namespace vsc

#endif // VSC_SUPPORT_JSON_H
