//===- support/BitVector.h - Dense bit vector -----------------*- C++ -*-===//
///
/// \file
/// A dense, resizable bit vector with the set operations the data-flow
/// analyses in this project need (union, intersection, difference). The
/// interface is a small subset of llvm::BitVector.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_SUPPORT_BITVECTOR_H
#define VSC_SUPPORT_BITVECTOR_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace vsc {

class BitVector {
public:
  BitVector() = default;
  explicit BitVector(size_t NumBits, bool Value = false)
      : NumBits(NumBits), Words(wordCount(NumBits), Value ? ~0ULL : 0ULL) {
    clearUnusedBits();
  }

  size_t size() const { return NumBits; }

  /// Grows or shrinks to \p NewSize bits; new bits are zero.
  void resize(size_t NewSize) {
    Words.resize(wordCount(NewSize), 0);
    NumBits = NewSize;
    clearUnusedBits();
  }

  bool test(size_t Bit) const {
    assert(Bit < NumBits && "bit index out of range");
    return (Words[Bit / 64] >> (Bit % 64)) & 1;
  }

  void set(size_t Bit) {
    assert(Bit < NumBits && "bit index out of range");
    Words[Bit / 64] |= 1ULL << (Bit % 64);
  }

  void reset(size_t Bit) {
    assert(Bit < NumBits && "bit index out of range");
    Words[Bit / 64] &= ~(1ULL << (Bit % 64));
  }

  void setAll() {
    for (uint64_t &W : Words)
      W = ~0ULL;
    clearUnusedBits();
  }

  void resetAll() {
    for (uint64_t &W : Words)
      W = 0;
  }

  /// \returns the number of set bits.
  size_t count() const {
    size_t N = 0;
    for (uint64_t W : Words)
      N += static_cast<size_t>(__builtin_popcountll(W));
    return N;
  }

  bool any() const {
    for (uint64_t W : Words)
      if (W)
        return true;
    return false;
  }

  bool none() const { return !any(); }

  /// \returns true if this and \p RHS share any set bit.
  bool anyCommon(const BitVector &RHS) const {
    size_t N = std::min(Words.size(), RHS.Words.size());
    for (size_t I = 0; I != N; ++I)
      if (Words[I] & RHS.Words[I])
        return true;
    return false;
  }

  BitVector &operator|=(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "size mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      Words[I] |= RHS.Words[I];
    return *this;
  }

  BitVector &operator&=(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "size mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      Words[I] &= RHS.Words[I];
    return *this;
  }

  /// Clears every bit that is set in \p RHS (set difference).
  BitVector &resetBitsIn(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "size mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      Words[I] &= ~RHS.Words[I];
    return *this;
  }

  bool operator==(const BitVector &RHS) const {
    return NumBits == RHS.NumBits && Words == RHS.Words;
  }
  bool operator!=(const BitVector &RHS) const { return !(*this == RHS); }

  /// \returns the index of the first set bit, or -1 if none.
  int findFirst() const {
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      if (Words[I])
        return static_cast<int>(I * 64 + __builtin_ctzll(Words[I]));
    return -1;
  }

  /// \returns the index of the first set bit strictly after \p Prev, or -1.
  int findNext(size_t Prev) const {
    size_t Bit = Prev + 1;
    if (Bit >= NumBits)
      return -1;
    size_t WordIdx = Bit / 64;
    uint64_t W = Words[WordIdx] & (~0ULL << (Bit % 64));
    while (true) {
      if (W)
        return static_cast<int>(WordIdx * 64 + __builtin_ctzll(W));
      if (++WordIdx == Words.size())
        return -1;
      W = Words[WordIdx];
    }
  }

private:
  static size_t wordCount(size_t Bits) { return (Bits + 63) / 64; }

  void clearUnusedBits() {
    if (NumBits % 64 != 0 && !Words.empty())
      Words.back() &= (1ULL << (NumBits % 64)) - 1;
  }

  size_t NumBits = 0;
  std::vector<uint64_t> Words;
};

} // namespace vsc

#endif // VSC_SUPPORT_BITVECTOR_H
