//===- support/ThreadPool.cpp - Work-stealing thread pool ------------------===//

#include "support/ThreadPool.h"

#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

using namespace vsc;

unsigned ThreadPool::defaultThreadCount() {
  const char *E = std::getenv("VSC_THREADS");
  if (!E || !*E)
    return 1;
  char *End = nullptr;
  long V = std::strtol(E, &End, 10);
  if (End == E || V < 1)
    return 1;
  return V > 64 ? 64u : static_cast<unsigned>(V);
}

namespace {

/// Shared state of one parallelFor invocation: a mutex-guarded deque per
/// worker. Contention is negligible at this granularity (tasks are whole
/// per-function pass chains; steals happen only at the tail of a run).
struct WorkQueues {
  struct Queue {
    std::mutex Mu;
    std::deque<size_t> Items;
  };
  std::vector<Queue> Queues;

  explicit WorkQueues(unsigned Workers, size_t N) : Queues(Workers) {
    // Deal indices round-robin so every worker starts with a local run of
    // tasks spread across the module (not one contiguous chunk whose cost
    // may be skewed).
    for (size_t I = 0; I != N; ++I)
      Queues[I % Workers].Items.push_back(I);
  }

  /// Pops the next index for \p Worker: front of its own deque, else a
  /// steal from the back of the currently longest sibling deque.
  bool pop(unsigned Worker, size_t &Out) {
    {
      Queue &Q = Queues[Worker];
      std::lock_guard<std::mutex> Lock(Q.Mu);
      if (!Q.Items.empty()) {
        Out = Q.Items.front();
        Q.Items.pop_front();
        return true;
      }
    }
    // Steal: scan siblings, take from the richest so the load rebalances
    // in O(log) steals rather than one item at a time from a fixed victim.
    for (size_t Attempt = 0; Attempt != Queues.size(); ++Attempt) {
      size_t Victim = 0, Best = 0;
      for (size_t I = 0; I != Queues.size(); ++I) {
        if (I == Worker)
          continue;
        std::lock_guard<std::mutex> Lock(Queues[I].Mu);
        if (Queues[I].Items.size() > Best) {
          Best = Queues[I].Items.size();
          Victim = I;
        }
      }
      if (Best == 0)
        return false; // everything drained (or in flight elsewhere)
      Queue &Q = Queues[Victim];
      std::lock_guard<std::mutex> Lock(Q.Mu);
      if (Q.Items.empty())
        continue; // lost the race; rescan
      Out = Q.Items.back();
      Q.Items.pop_back();
      return true;
    }
    return false;
  }
};

} // namespace

void ThreadPool::parallelFor(size_t N,
                             const std::function<void(size_t)> &Fn) const {
  if (N == 0)
    return;
  unsigned Workers = NumThreads;
  if (Workers > N)
    Workers = static_cast<unsigned>(N);
  if (Workers <= 1) {
    for (size_t I = 0; I != N; ++I)
      Fn(I);
    return;
  }

  WorkQueues Work(Workers, N);
  auto Run = [&](unsigned Worker) {
    size_t Idx;
    while (Work.pop(Worker, Idx))
      Fn(Idx);
  };

  std::vector<std::thread> Threads;
  Threads.reserve(Workers - 1);
  for (unsigned W = 1; W != Workers; ++W)
    Threads.emplace_back(Run, W);
  Run(0); // the calling thread is worker 0
  for (std::thread &T : Threads)
    T.join();
}
