//===- analysis/MemAlias.cpp - Memory disambiguation ------------------------===//

#include "analysis/MemAlias.h"

#include "ir/Module.h"

#include <cassert>

using namespace vsc;

MemRegion MemRegion::of(const Instr &I) {
  assert(I.isMemAccess() && "not a memory access");
  MemRegion R;
  R.Disp = I.memDisp();
  R.Size = I.MemSize;
  // r1-based accesses are frame slots even when annotated (prolog
  // tailoring tags its spills "$csave" for the unwind checker).
  if (I.memBase() == regs::sp()) {
    R.K = Kind::Stack;
  } else if (!I.Sym.empty()) {
    R.K = Kind::Global;
    R.Sym = I.Sym;
  } else {
    R.K = Kind::Unknown;
  }
  return R;
}

AliasResult vsc::alias(const Instr &A, const Instr &B) {
  if (A.IsVolatile || B.IsVolatile)
    return AliasResult::MayAlias;
  MemRegion RA = MemRegion::of(A);
  MemRegion RB = MemRegion::of(B);

  auto rangesDisjoint = [&] {
    return RA.Disp + RA.Size <= RB.Disp || RB.Disp + RB.Size <= RA.Disp;
  };
  auto rangesIdentical = [&] {
    return RA.Disp == RB.Disp && RA.Size == RB.Size;
  };

  using K = MemRegion::Kind;
  if (RA.K == K::Global && RB.K == K::Global) {
    if (RA.Sym != RB.Sym)
      return AliasResult::NoAlias;
    if (rangesDisjoint())
      return AliasResult::NoAlias;
    if (rangesIdentical())
      return AliasResult::MustAlias;
    return AliasResult::MayAlias;
  }
  if (RA.K == K::Stack && RB.K == K::Stack) {
    // Same frame, same base register: displacement ranges decide. (LU never
    // uses r1 as base in generated code; the verifier-level invariant that
    // r1 is only adjusted in prologue/epilogue keeps this sound.)
    if (rangesDisjoint())
      return AliasResult::NoAlias;
    if (rangesIdentical())
      return AliasResult::MustAlias;
    return AliasResult::MayAlias;
  }
  // Stack never aliases a named global (no escaping frame addresses).
  if ((RA.K == K::Stack && RB.K == K::Global) ||
      (RA.K == K::Global && RB.K == K::Stack))
    return AliasResult::NoAlias;
  // An unknown access may touch anything, except: same base register and
  // disjoint displacement ranges with no intervening base redefinition —
  // the *caller* must guarantee the base is unchanged between the two
  // accesses (the dependence builder checks defs between positions).
  if (RA.K == K::Unknown && RB.K == K::Unknown &&
      A.memBase() == B.memBase() && rangesDisjoint())
    return AliasResult::NoAlias;
  return AliasResult::MayAlias;
}

bool vsc::isSafeSpeculativeLoad(const Instr &Load, const Module *M) {
  if (!Load.isLoad() || Load.IsVolatile)
    return false;
  if (Load.SpecSafe)
    return true;
  MemRegion R = MemRegion::of(Load);
  if (R.K == MemRegion::Kind::Stack)
    return R.Disp >= 0; // within the owned frame
  if (R.K == MemRegion::Kind::Global && M) {
    if (const Global *G = M->findGlobal(R.Sym))
      return R.Disp >= 0 &&
             static_cast<uint64_t>(R.Disp) + R.Size <= G->Size;
  }
  return false;
}
