//===- analysis/MemAlias.cpp - Memory disambiguation ------------------------===//

#include "analysis/MemAlias.h"

#include "ir/Module.h"

#include <atomic>
#include <cassert>

using namespace vsc;

MemRegion MemRegion::of(const Instr &I) {
  assert(I.isMemAccess() && "not a memory access");
  MemRegion R;
  R.Disp = I.memDisp();
  R.Size = I.MemSize;
  // r1-based accesses are frame slots even when annotated (prolog
  // tailoring tags its spills "$csave" for the unwind checker).
  if (I.memBase() == regs::sp()) {
    R.K = Kind::Stack;
  } else if (!I.Sym.empty()) {
    R.K = Kind::Global;
    R.Sym = I.Sym;
  } else {
    R.K = Kind::Unknown;
  }
  return R;
}

namespace {

std::atomic<uint64_t> NumQueries{0};
std::atomic<uint64_t> NumNoAlias{0};
std::atomic<uint64_t> NumMustAlias{0};
std::atomic<uint64_t> NumMayAlias{0};

} // namespace

AliasQueryCounters vsc::aliasQueryCounters() {
  AliasQueryCounters C;
  C.Queries = NumQueries.load(std::memory_order_relaxed);
  C.NoAlias = NumNoAlias.load(std::memory_order_relaxed);
  C.MustAlias = NumMustAlias.load(std::memory_order_relaxed);
  C.MayAlias = NumMayAlias.load(std::memory_order_relaxed);
  return C;
}

void vsc::countAliasQuery(AliasResult R) {
  NumQueries.fetch_add(1, std::memory_order_relaxed);
  switch (R) {
  case AliasResult::NoAlias:
    NumNoAlias.fetch_add(1, std::memory_order_relaxed);
    break;
  case AliasResult::MustAlias:
    NumMustAlias.fetch_add(1, std::memory_order_relaxed);
    break;
  case AliasResult::MayAlias:
    NumMayAlias.fetch_add(1, std::memory_order_relaxed);
    break;
  }
}

AliasResult vsc::aliasClassified(const Instr &A, const Instr &B,
                                 AliasScope Scope, AliasClaimKind &Kind) {
  Kind = AliasClaimKind::Absolute;
  if (A.IsVolatile || B.IsVolatile)
    return AliasResult::MayAlias;
  MemRegion RA = MemRegion::of(A);
  MemRegion RB = MemRegion::of(B);

  auto rangesDisjoint = [&] {
    return RA.Disp + RA.Size <= RB.Disp || RB.Disp + RB.Size <= RA.Disp;
  };
  auto rangesIdentical = [&] {
    return RA.Disp == RB.Disp && RA.Size == RB.Size;
  };

  using K = MemRegion::Kind;
  if (RA.K == K::Global && RB.K == K::Global) {
    if (RA.Sym != RB.Sym) {
      // The "!sym" annotation is a frontend guarantee that the access
      // stays within the named global's extent, so two differently-named
      // regions are disjoint program-wide.
      Kind = AliasClaimKind::Absolute;
      return AliasResult::NoAlias;
    }
    // Same region. The annotated displacement is only the *known part* of
    // the address: a computed-index access "0(rAddr) !g" carries Disp 0
    // while the real offset lives in rAddr. Displacement reasoning is
    // therefore only valid when both accesses go through the same base
    // register holding the same value — the SameExecution window.
    if (A.memBase() == B.memBase() && Scope == AliasScope::SameExecution) {
      if (rangesDisjoint()) {
        Kind = AliasClaimKind::PerBlockExecution;
        return AliasResult::NoAlias;
      }
      if (rangesIdentical())
        return AliasResult::MustAlias;
    }
    return AliasResult::MayAlias;
  }
  if (RA.K == K::Stack && RB.K == K::Stack) {
    // Same frame, same base register: displacement ranges decide in every
    // scope. (LU never uses r1 as base in generated code; the
    // verifier-level invariant that r1 is only adjusted in
    // prologue/epilogue keeps r1 constant across one invocation.)
    if (rangesDisjoint()) {
      Kind = AliasClaimKind::PerInvocation;
      return AliasResult::NoAlias;
    }
    if (rangesIdentical())
      return AliasResult::MustAlias;
    return AliasResult::MayAlias;
  }
  // Stack never aliases a named global (no escaping frame addresses).
  if ((RA.K == K::Stack && RB.K == K::Global) ||
      (RA.K == K::Global && RB.K == K::Stack)) {
    Kind = AliasClaimKind::Absolute;
    return AliasResult::NoAlias;
  }
  // Unknown base values: displacement reasoning needs both accesses to
  // observe the same value in the same base register, which only the
  // SameExecution scope guarantees. This used to be an unchecked
  // caller-side invariant; now the scope parameter carries it.
  if (RA.K == K::Unknown && RB.K == K::Unknown &&
      A.memBase() == B.memBase() && Scope == AliasScope::SameExecution) {
    if (rangesDisjoint()) {
      Kind = AliasClaimKind::PerBlockExecution;
      return AliasResult::NoAlias;
    }
    if (rangesIdentical())
      return AliasResult::MustAlias;
  }
  return AliasResult::MayAlias;
}

AliasResult vsc::alias(const Instr &A, const Instr &B, AliasScope Scope) {
  AliasClaimKind Kind;
  AliasResult R = aliasClassified(A, B, Scope, Kind);
  countAliasQuery(R);
  return R;
}

bool vsc::isSafeSpeculativeLoad(const Instr &Load, const Module *M) {
  if (!Load.isLoad() || Load.IsVolatile)
    return false;
  if (Load.SpecSafe)
    return true;
  MemRegion R = MemRegion::of(Load);
  if (R.K == MemRegion::Kind::Stack)
    return R.Disp >= 0; // within the owned frame
  if (R.K == MemRegion::Kind::Global && M) {
    if (const Global *G = M->findGlobal(R.Sym))
      return R.Disp >= 0 &&
             static_cast<uint64_t>(R.Disp) + R.Size <= G->Size;
  }
  return false;
}
