//===- analysis/MemAlias.h - Memory disambiguation ------------*- C++ -*-===//
///
/// \file
/// Memory disambiguation in the spirit of the Bulldog compiler's
/// ("enhancements of those used in [11]") as the paper uses it: accesses
/// are resolved to symbolic regions — a named global (via the "!sym"
/// annotation that corresponds to the paper's "a(r4,12)" notation), the
/// stack frame (base register r1), or unknown — and compared by region and
/// displacement range.
///
/// This header is the *syntactic tier*: it looks at one instruction at a
/// time. The flow-sensitive tier (analysis/ValueTrack.h) tracks abstract
/// base values through registers and falls back to this one; both answer
/// through the same AliasResult / AliasScope vocabulary.
///
/// Stack discipline: this project's front end never materialises a frame
/// address that escapes the function (no "&local" passed or stored), so
/// r1-relative accesses with distinct displacements never alias each other
/// and never alias globals. DESIGN.md §"The analysis tier" records this
/// assumption and the dynamic audit that cross-checks it.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_ANALYSIS_MEMALIAS_H
#define VSC_ANALYSIS_MEMALIAS_H

#include "ir/Instr.h"

#include <cstdint>

namespace vsc {

class Module;

enum class AliasResult { NoAlias, MustAlias, MayAlias };

/// What the *caller* guarantees about the two accesses being compared.
/// Every alias query states its scope explicitly; there is no default.
///
/// Disambiguating two accesses whose shared base register holds an
/// unknown value ("8(r41) vs 0(r41)") is only meaningful if both accesses
/// observe the same dynamic value in that base. That used to be an
/// unchecked comment-level contract ("the caller must check for
/// intervening base redefinitions"); it is now part of the query:
enum class AliasScope {
  /// Both accesses execute within one execution of the same basic block,
  /// and the caller guarantees no instruction between them redefines a
  /// base register they share. This is the dependence-builder window: the
  /// DAG builder orders an access after any redefinition of its base, so
  /// comparing two accesses on either side of such a def never reaches
  /// the alias query with this scope.
  SameExecution,
  /// No locality guarantee: the accesses may execute in different
  /// iterations of a loop or in different blocks, with base registers
  /// redefined in between. Same-register displacement reasoning is
  /// unsound here; only region-level facts (distinct globals,
  /// stack-vs-global, r1-relative slots) survive.
  CrossExecution,
};

/// How broadly a NoAlias verdict is claimed to hold — the window the
/// dynamic AliasAudit (audit/AliasAudit.h) validates it over.
enum class AliasClaimKind {
  /// The two access footprints are disjoint across the whole program run
  /// (distinct globals, provably disjoint offsets into one global,
  /// stack vs. global).
  Absolute,
  /// Disjoint within any single invocation of the containing function
  /// (r1-relative slots; values defined at most once per invocation).
  PerInvocation,
  /// Disjoint within any single execution of the containing basic block
  /// (SameExecution verdicts about unknown-but-equal base values).
  PerBlockExecution,
};

/// The symbolic storage region an access touches.
struct MemRegion {
  enum class Kind { Global, Stack, Unknown } K = Kind::Unknown;
  std::string Sym; ///< global name when K == Global
  int64_t Disp = 0;
  uint8_t Size = 0;

  static MemRegion of(const Instr &I);
};

/// Relates two memory accesses under the caller-stated \p Scope.
/// Conservative: returns MayAlias unless both regions are known and
/// provably disjoint (NoAlias) or provably identical (MustAlias).
/// Volatile accesses never disambiguate.
AliasResult alias(const Instr &A, const Instr &B, AliasScope Scope);

/// The classification core behind alias(): additionally reports through
/// \p Kind how broadly a NoAlias verdict holds. Does not touch the query
/// counters (the flow-sensitive tier calls this as its fallback and does
/// its own accounting).
AliasResult aliasClassified(const Instr &A, const Instr &B, AliasScope Scope,
                            AliasClaimKind &Kind);

/// \returns true if \p Load may be executed speculatively (when it would
/// not have executed in the original program) without trapping: stack
/// accesses, loads carrying an explicit "!safe" annotation (the paper's
/// page-zero / known-valid-pointer reasoning), and accesses to a named
/// global of \p M whose extent covers the displacement range.
bool isSafeSpeculativeLoad(const Instr &Load, const Module *M);

//===----------------------------------------------------------------------===//
// Query accounting
//===----------------------------------------------------------------------===//

/// Process-wide disambiguation-query tallies, incremented by both tiers.
/// PassAudit snapshots them at stage boundaries to attribute queries to
/// passes; bench_alias reads them for resolution rates.
struct AliasQueryCounters {
  uint64_t Queries = 0;
  uint64_t NoAlias = 0;
  uint64_t MustAlias = 0;
  uint64_t MayAlias = 0;
};

/// Snapshot of the process-wide counters (thread-safe).
AliasQueryCounters aliasQueryCounters();

/// Adds one query with result \p R to the process-wide counters. Exposed
/// for the flow-sensitive tier; ordinary callers just call alias().
void countAliasQuery(AliasResult R);

} // namespace vsc

#endif // VSC_ANALYSIS_MEMALIAS_H
