//===- analysis/MemAlias.h - Memory disambiguation ------------*- C++ -*-===//
///
/// \file
/// Memory disambiguation in the spirit of the Bulldog compiler's
/// ("enhancements of those used in [11]") as the paper uses it: accesses
/// are resolved to symbolic regions — a named global (via the "!sym"
/// annotation that corresponds to the paper's "a(r4,12)" notation), the
/// stack frame (base register r1), or unknown — and compared by region and
/// displacement range.
///
/// Stack discipline: this project's front end never takes the address of a
/// stack slot, so r1-relative accesses with distinct displacements never
/// alias each other and never alias globals. DESIGN.md records this
/// assumption.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_ANALYSIS_MEMALIAS_H
#define VSC_ANALYSIS_MEMALIAS_H

#include "ir/Instr.h"

namespace vsc {

class Module;

enum class AliasResult { NoAlias, MustAlias, MayAlias };

/// The symbolic storage region an access touches.
struct MemRegion {
  enum class Kind { Global, Stack, Unknown } K = Kind::Unknown;
  std::string Sym; ///< global name when K == Global
  int64_t Disp = 0;
  uint8_t Size = 0;

  static MemRegion of(const Instr &I);
};

/// Relates two memory accesses. Conservative: returns MayAlias unless both
/// regions are known and provably disjoint (NoAlias) or provably identical
/// (MustAlias). Volatile accesses never disambiguate.
AliasResult alias(const Instr &A, const Instr &B);

/// \returns true if \p Load may be executed speculatively (when it would
/// not have executed in the original program) without trapping: stack
/// accesses, loads carrying an explicit "!safe" annotation (the paper's
/// page-zero / known-valid-pointer reasoning), and accesses to a named
/// global of \p M whose extent covers the displacement range.
bool isSafeSpeculativeLoad(const Instr &Load, const Module *M);

} // namespace vsc

#endif // VSC_ANALYSIS_MEMALIAS_H
