//===- analysis/ValueTrack.cpp - Flow-sensitive alias analysis --------------===//

#include "analysis/ValueTrack.h"

#include "cfg/Dominators.h"
#include "ir/Module.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <deque>
#include <map>
#include <sstream>

using namespace vsc;

//===----------------------------------------------------------------------===//
// Claim sink
//===----------------------------------------------------------------------===//

namespace {
std::atomic<AliasClaimSink *> ClaimSink{nullptr};
} // namespace

AliasClaimSink *vsc::setAliasClaimSink(AliasClaimSink *S) {
  return ClaimSink.exchange(S);
}

//===----------------------------------------------------------------------===//
// Lattice helpers
//===----------------------------------------------------------------------===//

using AbsVal = AliasAnalysis::AbsVal;
using Base = AbsVal::Base;

AbsVal AliasAnalysis::addImm(AbsVal V, int64_t Imm) {
  if ((V.K == Base::Global || V.K == Base::Stack || V.K == Base::Value) &&
      V.HasOff)
    V.Off += Imm;
  return V;
}

AbsVal AliasAnalysis::join(const AbsVal &A, const AbsVal &B) {
  if (A.K == Base::Bottom)
    return B;
  if (B.K == Base::Bottom)
    return A;
  if (!A.sameBase(B)) {
    AbsVal T;
    T.K = Base::Top;
    return T;
  }
  AbsVal R = A;
  if (!A.HasOff || !B.HasOff || A.Off != B.Off)
    R.HasOff = false;
  return R;
}

AbsVal AliasAnalysis::entryValue(Reg R) const {
  AbsVal V;
  if (R == regs::sp()) {
    // The frame anchor: entry r1. Prologue/epilogue adjustments are
    // ordinary add-immediates on top of this.
    V.K = Base::Stack;
    V.HasOff = true;
    V.Off = 0;
    return V;
  }
  // Live-in value: numbered by (entry, reg) — id 0 never collides with an
  // instruction id (those start at 1). Entry values are set exactly once
  // per invocation.
  uint64_t Key = (uint64_t(0) << 32) |
                 (uint64_t(static_cast<uint8_t>(R.regClass())) << 30) |
                 (R.id() & 0x3fffffffu);
  auto It = ValueNumbers.find(Key);
  V.K = Base::Value;
  V.Once = true;
  V.HasOff = true;
  V.Off = 0;
  if (It != ValueNumbers.end()) {
    V.Vn = It->second;
    return V;
  }
  // entryValue is called from const context during queries, but every
  // reachable (reg, entry) pair was already interned during build(); an
  // unseen pair can only come from pointsTo() on a register the function
  // never touches. Report it as Top rather than minting state.
  V.K = Base::Top;
  V.Once = false;
  V.HasOff = false;
  return V;
}

AbsVal AliasAnalysis::freshValue(const Instr &I, Reg R, bool Once) {
  uint64_t Key = (uint64_t(I.Id) << 32) |
                 (uint64_t(static_cast<uint8_t>(R.regClass())) << 30) |
                 (R.id() & 0x3fffffffu);
  auto It = ValueNumbers.find(Key);
  uint64_t Vn;
  if (It != ValueNumbers.end()) {
    Vn = It->second;
  } else {
    Vn = NextVn++;
    ValueNumbers.emplace(Key, Vn);
    ValueOnce.emplace(Vn, Once);
  }
  AbsVal V;
  V.K = Base::Value;
  V.Vn = Vn;
  V.Once = ValueOnce[Vn];
  V.HasOff = true;
  V.Off = 0;
  return V;
}

AbsVal AliasAnalysis::get(const State &S, Reg R) const {
  auto It = S.Regs.find(R);
  if (It != S.Regs.end())
    return It->second;
  // Unwritten since entry on every path into this state.
  return entryValue(R);
}

uint32_t AliasAnalysis::intern(const std::string &Sym) {
  auto It = SymIndex.find(Sym);
  if (It != SymIndex.end())
    return It->second;
  uint32_t Idx = static_cast<uint32_t>(Syms.size());
  Syms.push_back(Sym);
  SymIndex.emplace(Sym, Idx);
  return Idx;
}

//===----------------------------------------------------------------------===//
// Transfer function
//===----------------------------------------------------------------------===//

void AliasAnalysis::transfer(const Instr &I, State &S, bool Once) {
  switch (I.Op) {
  case Opcode::LR:
    if (I.Dst.isGpr())
      S.Regs[I.Dst] = get(S, I.Src1);
    return;
  case Opcode::LTOC: {
    AbsVal V;
    V.K = Base::Global;
    V.Sym = intern(I.Sym);
    V.HasOff = true;
    V.Off = 0;
    S.Regs[I.Dst] = V;
    return;
  }
  case Opcode::LA:
  case Opcode::AI:
    S.Regs[I.Dst] = addImm(get(S, I.Src1), I.Imm);
    return;
  case Opcode::SI:
    S.Regs[I.Dst] = addImm(get(S, I.Src1), -I.Imm);
    return;
  case Opcode::A: {
    // Pointer + index: keep the region, lose the offset. Anything else
    // (two pointers, two unknowns) is a fresh value.
    AbsVal V1 = get(S, I.Src1);
    AbsVal V2 = get(S, I.Src2);
    bool P1 = V1.K == Base::Global || V1.K == Base::Stack;
    bool P2 = V2.K == Base::Global || V2.K == Base::Stack;
    if (P1 != P2) {
      AbsVal R = P1 ? V1 : V2;
      R.HasOff = false;
      S.Regs[I.Dst] = R;
    } else {
      S.Regs[I.Dst] = freshValue(I, I.Dst, Once);
    }
    return;
  }
  case Opcode::LU: {
    // rt = mem[ra + d]; ra += d. The loaded value is fresh; the base
    // update is a tracked add-immediate.
    Reg BaseReg = I.Src1;
    AbsVal Updated = addImm(get(S, BaseReg), I.Imm);
    S.Regs[I.Dst] = freshValue(I, I.Dst, Once);
    S.Regs[BaseReg] = Updated;
    return;
  }
  default:
    break;
  }
  // Everything else (arithmetic, loads, call clobbers, ...): each defined
  // GPR gets a fresh value numbered by this site.
  std::vector<Reg> Defs;
  I.collectDefs(Defs);
  for (Reg D : Defs)
    if (D.isGpr())
      S.Regs[D] = freshValue(I, D, Once);
}

//===----------------------------------------------------------------------===//
// Fixpoint
//===----------------------------------------------------------------------===//

bool AliasAnalysis::joinInto(State &Dst, const State &Src) const {
  if (!Dst.Reached) {
    Dst = Src;
    Dst.Reached = true;
    return true;
  }
  bool Changed = false;
  // Union of keys: a register missing from a state means "entry value on
  // every path", which get() supplies.
  std::vector<Reg> Keys;
  for (const auto &KV : Dst.Regs)
    Keys.push_back(KV.first);
  for (const auto &KV : Src.Regs)
    if (!Dst.Regs.count(KV.first))
      Keys.push_back(KV.first);
  for (Reg R : Keys) {
    AbsVal Old = get(Dst, R);
    AbsVal New = join(Old, get(Src, R));
    if (New != Old) {
      Dst.Regs[R] = New;
      Changed = true;
    }
  }
  return Changed;
}

AliasAnalysis::AliasAnalysis(const Function &F, const Cfg &G,
                             const LoopInfo &LI) {
  build(F, G, LI);
}

AliasAnalysis::AliasAnalysis(const Function &F) {
  // Standalone construction for checkers/benches; Cfg wants a non-const
  // Function but only mutates nothing — the views are read-only.
  Function &MF = const_cast<Function &>(F);
  Cfg G(MF);
  Dominators Dom(G);
  LoopInfo LI(G, Dom);
  build(F, G, LI);
}

void AliasAnalysis::build(const Function &F, const Cfg &G,
                          const LoopInfo &LI) {
  FnName = F.name();

  // Pre-intern the entry value of every register the function reads, so
  // get() never needs to mint state from const context.
  {
    std::vector<Reg> Uses;
    for (const auto &BB : F.blocks())
      for (const Instr &I : BB->instrs()) {
        Uses.clear();
        I.collectUses(Uses);
        for (Reg R : Uses)
          if (R.isGpr() && R != regs::sp()) {
            uint64_t Key =
                (uint64_t(0) << 32) |
                (uint64_t(static_cast<uint8_t>(R.regClass())) << 30) |
                (R.id() & 0x3fffffffu);
            auto It = ValueNumbers.find(Key);
            if (It == ValueNumbers.end()) {
              ValueNumbers.emplace(Key, NextVn);
              ValueOnce.emplace(NextVn, true);
              ++NextVn;
            }
          }
      }
  }

  const std::vector<BasicBlock *> &Rpo = G.rpo();
  if (Rpo.empty())
    return;

  std::unordered_map<const BasicBlock *, State> In;
  In[Rpo.front()].Reached = true; // entry: every register at entry value

  // Round-robin over reverse postorder until stable. The lattice is
  // shallow (Bottom < concrete < region+⊤ < Top per register) and value
  // numbers are memoized by defining site, so this converges quickly.
  bool Changed = true;
  unsigned Guard = 0;
  while (Changed && Guard++ < 64) {
    Changed = false;
    for (BasicBlock *BB : Rpo) {
      State &InS = In[BB];
      if (!InS.Reached)
        continue;
      bool Once = LI.loopFor(BB) == nullptr;
      State Out = InS;
      for (const Instr &I : BB->instrs())
        transfer(I, Out, Once);
      for (const CfgEdge &E : G.succs(BB))
        if (joinInto(In[E.To], Out))
          Changed = true;
    }
  }

  // Recording walk: replay each block once, resolving every memory
  // access's location (pre-update base for LU) keyed by instruction id.
  for (BasicBlock *BB : Rpo) {
    State Cur = In[BB];
    if (!Cur.Reached)
      continue;
    bool Once = LI.loopFor(BB) == nullptr;
    for (const Instr &I : BB->instrs()) {
      if (I.isMemAccess())
        Accesses[I.Id] = addImm(get(Cur, I.memBase()), I.memDisp());
      transfer(I, Cur, Once);
    }
    BlockIn[BB->label()] = std::move(In[BB]);
  }
}

AbsVal AliasAnalysis::pointsTo(Reg R, const BasicBlock *BB) const {
  auto It = BlockIn.find(BB->label());
  if (It == BlockIn.end() || !It->second.Reached) {
    AbsVal T;
    T.K = Base::Top;
    return T;
  }
  return get(It->second, R);
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

AliasResult AliasAnalysis::classify(const AbsVal &LA, uint8_t SizeA,
                                    const AbsVal &LB, uint8_t SizeB,
                                    AliasScope Scope,
                                    AliasClaimKind &Kind) const {
  Kind = AliasClaimKind::Absolute;

  auto offsets = [&](AliasClaimKind K) {
    if (!LA.HasOff || !LB.HasOff)
      return AliasResult::MayAlias;
    if (LA.Off + SizeA <= LB.Off || LB.Off + SizeB <= LA.Off) {
      Kind = K;
      return AliasResult::NoAlias;
    }
    if (LA.Off == LB.Off && SizeA == SizeB)
      return AliasResult::MustAlias;
    return AliasResult::MayAlias;
  };

  if (LA.K == Base::Global && LB.K == Base::Global) {
    if (LA.Sym != LB.Sym) {
      // Distinct named regions; disjoint program-wide under the frontend
      // in-bounds discipline (see the file comment in ValueTrack.h).
      Kind = AliasClaimKind::Absolute;
      return AliasResult::NoAlias;
    }
    // &sym+off addresses are absolute, so known offsets compare in any
    // scope. A lost offset (computed index) never disambiguates within
    // its own region.
    return offsets(AliasClaimKind::Absolute);
  }
  if (LA.K == Base::Stack && LB.K == Base::Stack) {
    // Frame offsets are absolute within one invocation; recursion gives
    // each invocation its own disjoint frame window, but a claim pairs
    // accesses of one function, which the audit checks per invocation.
    return offsets(AliasClaimKind::PerInvocation);
  }
  if ((LA.K == Base::Stack && LB.K == Base::Global) ||
      (LA.K == Base::Global && LB.K == Base::Stack)) {
    // The frame grows down from the top of memory; the simulator traps
    // the moment r1 descends into the data segment, so frame and global
    // regions are disjoint program-wide — even for computed Stack+⊤
    // addresses, again under the in-bounds discipline.
    Kind = AliasClaimKind::Absolute;
    return AliasResult::NoAlias;
  }
  if (LA.K == Base::Value && LB.K == Base::Value && LA.Vn == LB.Vn) {
    // Same unknown base value. Within one execution of a block both
    // accesses observe the same dynamic value, so offsets decide; across
    // executions that only holds if the defining site cannot re-execute.
    if (Scope == AliasScope::SameExecution)
      return offsets(AliasClaimKind::PerBlockExecution);
    if (LA.Once)
      return offsets(AliasClaimKind::PerInvocation);
    return AliasResult::MayAlias;
  }
  return AliasResult::MayAlias;
}

AliasResult AliasAnalysis::alias(const Instr &A, const Instr &B,
                                 AliasScope Scope) const {
  AliasResult R = AliasResult::MayAlias;
  AliasClaimKind Kind = AliasClaimKind::Absolute;
  if (A.IsVolatile || B.IsVolatile) {
    countAliasQuery(R);
    return R;
  }
  const AbsVal *LA = location(A.Id);
  const AbsVal *LB = location(B.Id);
  if (LA && LB)
    R = classify(*LA, A.MemSize, *LB, B.MemSize, Scope, Kind);
  if (R == AliasResult::MayAlias) {
    // Syntactic fallback: annotation regions and same-base-register
    // displacement reasoning can resolve pairs the lattice cannot (e.g.
    // an annotated access through a base value loaded from memory).
    AliasClaimKind FallbackKind;
    AliasResult FR = aliasClassified(A, B, Scope, FallbackKind);
    if (FR != AliasResult::MayAlias) {
      R = FR;
      Kind = FallbackKind;
    }
  }
  countAliasQuery(R);
  if (R == AliasResult::NoAlias) {
    if (AliasClaimSink *S = ClaimSink.load(std::memory_order_acquire)) {
      AliasClaim C;
      C.Fn = FnName;
      C.IdA = A.Id;
      C.IdB = B.Id;
      C.Kind = Kind;
      S->noAliasClaim(C);
    }
  }
  return R;
}

bool AliasAnalysis::safeSpeculativeLoad(const Instr &Load,
                                        const Module *M) const {
  if (isSafeSpeculativeLoad(Load, M))
    return true;
  if (!Load.isLoad() || Load.IsVolatile)
    return false;
  const AbsVal *L = location(Load.Id);
  if (!L || !L->HasOff)
    return false;
  if (L->K == Base::Stack)
    return L->Off >= 0; // within the owned frame (pre-prologue discipline)
  if (L->K == Base::Global && M) {
    if (const Global *G = M->findGlobal(Syms[L->Sym]))
      return L->Off >= 0 &&
             static_cast<uint64_t>(L->Off) + Load.MemSize <= G->Size;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

std::string AliasAnalysis::str(const AbsVal &V) const {
  std::ostringstream OS;
  switch (V.K) {
  case Base::Bottom:
    return "bottom";
  case Base::Top:
    return "top";
  case Base::Global:
    OS << "&" << Syms[V.Sym];
    break;
  case Base::Stack:
    OS << "stack";
    break;
  case Base::Value:
    OS << "v" << V.Vn << (V.Once ? "!" : "");
    break;
  }
  if (V.HasOff)
    OS << "+" << V.Off;
  else
    OS << "+?";
  return OS.str();
}

std::string AliasAnalysis::summarize() const {
  std::vector<std::pair<uint32_t, const AbsVal *>> Sorted;
  Sorted.reserve(Accesses.size());
  for (const auto &KV : Accesses)
    Sorted.emplace_back(KV.first, &KV.second);
  std::sort(Sorted.begin(), Sorted.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  std::ostringstream OS;
  for (const auto &KV : Sorted)
    OS << KV.first << ":" << str(*KV.second) << ";";
  return OS.str();
}
