//===- analysis/Liveness.h - Live-register analysis -----------*- C++ -*-===//
///
/// \file
/// Classic backward live-variable analysis over a dense register numbering.
/// Used by unspeculation ("destination registers dead on one target"),
/// live-range renaming (loop-exit copies), global scheduling (speculation
/// legality) and dead-code elimination.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_ANALYSIS_LIVENESS_H
#define VSC_ANALYSIS_LIVENESS_H

#include "cfg/Cfg.h"
#include "support/BitVector.h"

#include <unordered_map>

namespace vsc {

/// Dense numbering of every register mentioned in a function.
class RegUniverse {
public:
  explicit RegUniverse(const Function &F);

  size_t size() const { return Regs.size(); }

  /// \returns the dense index of \p R, or -1 if R never appears.
  int indexOf(Reg R) const {
    auto It = Index.find(R);
    return It == Index.end() ? -1 : It->second;
  }

  Reg regAt(size_t Idx) const { return Regs[Idx]; }

private:
  void note(Reg R) {
    if (R.isValid() && !Index.count(R)) {
      Index[R] = static_cast<int>(Regs.size());
      Regs.push_back(R);
    }
  }

  std::vector<Reg> Regs;
  std::unordered_map<Reg, int, RegHash> Index;
};

class Liveness {
public:
  Liveness(const Cfg &G, const RegUniverse &U);

  const RegUniverse &universe() const { return U; }

  const BitVector &liveIn(const BasicBlock *BB) const { return In.at(BB); }
  const BitVector &liveOut(const BasicBlock *BB) const { return Out.at(BB); }

  bool isLiveIn(const BasicBlock *BB, Reg R) const {
    int Idx = U.indexOf(R);
    return Idx >= 0 && liveIn(BB).test(static_cast<size_t>(Idx));
  }
  bool isLiveOut(const BasicBlock *BB, Reg R) const {
    int Idx = U.indexOf(R);
    return Idx >= 0 && liveOut(BB).test(static_cast<size_t>(Idx));
  }

  /// Live set immediately before each instruction of \p BB:
  /// result[i] = registers live before instruction i; result.back()
  /// (index size()) = live-out of the block. Recomputed on demand.
  std::vector<BitVector> liveAtEachInstr(const BasicBlock *BB) const;

private:
  const RegUniverse &U;
  std::unordered_map<const BasicBlock *, BitVector> In, Out;
};

} // namespace vsc

#endif // VSC_ANALYSIS_LIVENESS_H
