//===- analysis/Liveness.cpp - Live-register analysis ----------------------===//

#include "analysis/Liveness.h"

using namespace vsc;

RegUniverse::RegUniverse(const Function &F) {
  std::vector<Reg> Tmp;
  for (const auto &BB : F.blocks()) {
    for (const Instr &I : BB->instrs()) {
      Tmp.clear();
      I.collectUses(Tmp);
      I.collectDefs(Tmp);
      for (Reg R : Tmp)
        note(R);
    }
  }
}

Liveness::Liveness(const Cfg &G, const RegUniverse &U) : U(U) {
  const Function &F = G.function();
  size_t N = U.size();

  // Per-block UEVar (upward-exposed uses) and kill sets.
  std::unordered_map<const BasicBlock *, BitVector> Use, Def;
  std::vector<Reg> Tmp;
  for (const auto &BBPtr : F.blocks()) {
    const BasicBlock *BB = BBPtr.get();
    BitVector U_(N), D_(N);
    for (const Instr &I : BB->instrs()) {
      Tmp.clear();
      I.collectUses(Tmp);
      for (Reg R : Tmp) {
        int Idx = U.indexOf(R);
        if (Idx >= 0 && !D_.test(static_cast<size_t>(Idx)))
          U_.set(static_cast<size_t>(Idx));
      }
      Tmp.clear();
      I.collectDefs(Tmp);
      for (Reg R : Tmp) {
        int Idx = U.indexOf(R);
        if (Idx >= 0)
          D_.set(static_cast<size_t>(Idx));
      }
    }
    Use[BB] = std::move(U_);
    Def[BB] = std::move(D_);
    In[BB] = BitVector(N);
    Out[BB] = BitVector(N);
  }

  // Iterate to a fixed point, visiting blocks in reverse RPO (fast for
  // backward problems).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    const auto &Rpo = G.rpo();
    for (auto It = Rpo.rbegin(), E = Rpo.rend(); It != E; ++It) {
      const BasicBlock *BB = *It;
      BitVector NewOut(N);
      for (const CfgEdge &Edge : G.succs(BB))
        NewOut |= In.at(Edge.To);
      BitVector NewIn = NewOut;
      NewIn.resetBitsIn(Def.at(BB));
      NewIn |= Use.at(BB);
      if (NewOut != Out.at(BB) || NewIn != In.at(BB)) {
        Out[BB] = std::move(NewOut);
        In[BB] = std::move(NewIn);
        Changed = true;
      }
    }
  }
}

std::vector<BitVector> Liveness::liveAtEachInstr(const BasicBlock *BB) const {
  size_t N = U.size();
  std::vector<BitVector> Live(BB->size() + 1, BitVector(N));
  Live[BB->size()] = liveOut(BB);
  std::vector<Reg> Tmp;
  for (size_t I = BB->size(); I-- > 0;) {
    BitVector Cur = Live[I + 1];
    const Instr &Ins = BB->instrs()[I];
    Tmp.clear();
    Ins.collectDefs(Tmp);
    for (Reg R : Tmp) {
      int Idx = U.indexOf(R);
      if (Idx >= 0)
        Cur.reset(static_cast<size_t>(Idx));
    }
    Tmp.clear();
    Ins.collectUses(Tmp);
    for (Reg R : Tmp) {
      int Idx = U.indexOf(R);
      if (Idx >= 0)
        Cur.set(static_cast<size_t>(Idx));
    }
    Live[I] = std::move(Cur);
  }
  return Live;
}
