//===- analysis/ValueTrack.h - Flow-sensitive alias analysis --*- C++ -*-===//
///
/// \file
/// The flow-sensitive memory-disambiguation tier: a per-function forward
/// dataflow over an abstract register lattice that tracks where pointer
/// values come from, so accesses through copied, incremented or
/// TOC-reloaded base registers still disambiguate.
///
/// Abstract values form the lattice
///
///     Bottom  <  Global(sym)+off  |  Stack+off  |  Value(vn)+off  <  Top
///
/// where the offset component is either a known byte offset or unknown
/// (the per-base "+⊤" element):
///
///  * Global(sym)+off — the value is &sym + off. Anchored by LTOC
///    ("rt = &sym"); add-immediates and copies keep the offset exact, a
///    register-register add (computed index) keeps the region but loses
///    the offset. Region-level facts assume the frontend's in-bounds
///    discipline (indexed accesses are range-masked), the same contract
///    the "!sym" annotation already carries — and the one the dynamic
///    AliasAudit (audit/AliasAudit.h) validates at runtime.
///  * Stack+off — the value is entry-r1 + off. r1 itself is Stack+0 at
///    entry; prologue/epilogue adjustments are tracked like any other
///    add-immediate. A computed stack-array index degrades to Stack+⊤,
///    which still never aliases a global.
///  * Value(vn)+off — an unknown base value, numbered by its defining
///    site (instruction id × defined register, or function entry ×
///    register for live-in values). Two accesses sharing a vn observe the
///    SAME dynamic base value within one execution window, so their known
///    offsets disambiguate; whether that window extends beyond one block
///    execution depends on whether the defining site can re-execute
///    (Value::Once — the defining block is outside every loop).
///  * Top — unrelatable (e.g. the sum of two pointers, or a join of
///    different regions).
///
/// The analysis runs one round-robin fixpoint over the CFG in reverse
/// postorder, then replays each block once to record the resolved
/// location of every memory access, keyed by instruction id. Queries are
/// therefore position-independent: any instruction copy that preserves
/// the id (block probes, audit snapshots) can be queried.
///
/// Every NoAlias verdict is tagged with the AliasClaimKind window it is
/// claimed over and, when a claim sink is installed (the pipeline's
/// alias-audit mode), reported for later dynamic validation.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_ANALYSIS_VALUETRACK_H
#define VSC_ANALYSIS_VALUETRACK_H

#include "analysis/MemAlias.h"
#include "cfg/Loops.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace vsc {

class Module;

//===----------------------------------------------------------------------===//
// NoAlias claim reporting
//===----------------------------------------------------------------------===//

/// One NoAlias verdict the analysis issued: the instruction pair (ids
/// within \c Fn) and the window the disjointness is claimed over.
struct AliasClaim {
  std::string Fn;
  uint32_t IdA = 0;
  uint32_t IdB = 0;
  AliasClaimKind Kind = AliasClaimKind::Absolute;
};

/// Receiver for NoAlias claims. The pipeline's alias-audit mode installs
/// one for the duration of an optimize() run; implementations must be
/// thread-safe (parallel function workers query concurrently).
class AliasClaimSink {
public:
  virtual ~AliasClaimSink() = default;
  virtual void noAliasClaim(const AliasClaim &C) = 0;
};

/// Installs \p S as the process-wide claim sink (nullptr to clear).
/// \returns the previous sink. Claims are only recorded while a sink is
/// installed; one audited optimize() at a time.
AliasClaimSink *setAliasClaimSink(AliasClaimSink *S);

//===----------------------------------------------------------------------===//
// AliasAnalysis
//===----------------------------------------------------------------------===//

class AliasAnalysis {
public:
  /// An abstract pointer value (see the file comment for the lattice).
  struct AbsVal {
    enum class Base : uint8_t { Bottom, Global, Stack, Value, Top };
    Base K = Base::Bottom;
    uint32_t Sym = 0;  ///< interned symbol index (Base::Global)
    uint64_t Vn = 0;   ///< value number (Base::Value)
    bool Once = false; ///< Value: defining site runs <= once per invocation
    bool HasOff = false;
    int64_t Off = 0;

    bool sameBase(const AbsVal &O) const {
      if (K != O.K)
        return false;
      if (K == Base::Global)
        return Sym == O.Sym;
      if (K == Base::Value)
        return Vn == O.Vn;
      return true;
    }
    bool operator==(const AbsVal &O) const {
      return sameBase(O) && HasOff == O.HasOff && (!HasOff || Off == O.Off);
    }
    bool operator!=(const AbsVal &O) const { return !(*this == O); }
  };

  /// Builds the analysis from caller-provided CFG views. \p G and \p LI
  /// are used during construction only; no reference is retained (safe to
  /// cache this analysis independently of them).
  AliasAnalysis(const Function &F, const Cfg &G, const LoopInfo &LI);

  /// Convenience: builds its own Cfg/Dominators/LoopInfo (checkers and
  /// benches outside the pass-manager cache).
  explicit AliasAnalysis(const Function &F);

  const std::string &functionName() const { return FnName; }

  /// Resolved location of the memory access with instruction id \p Id
  /// (base value plus displacement already folded in), or null for ids
  /// this analysis never saw (e.g. bookkeeping copies minted after it was
  /// computed). ST/L/LU all resolve through their pre-update base.
  const AbsVal *location(uint32_t Id) const {
    auto It = Accesses.find(Id);
    return It == Accesses.end() ? nullptr : &It->second;
  }

  /// Abstract value of \p R at entry to \p BB — the pointsTo query.
  /// Unreachable blocks report Top.
  AbsVal pointsTo(Reg R, const BasicBlock *BB) const;

  /// Relates two memory accesses of this function under \p Scope: lattice
  /// reasoning over the recorded locations first, the syntactic tier
  /// (MemAlias.h) as fallback. Counts into the process-wide query
  /// counters; reports NoAlias verdicts to the installed claim sink.
  AliasResult alias(const Instr &A, const Instr &B, AliasScope Scope) const;

  /// Flow-sensitive speculative-load safety: everything the syntactic
  /// isSafeSpeculativeLoad() accepts, plus loads whose resolved location
  /// is a global with a known in-extent offset or an owned frame slot.
  bool safeSpeculativeLoad(const Instr &Load, const Module *M) const;

  /// Renders \p V ("&g+8", "stack+⊤", "v12+0", "top") for tests and the
  /// cache checker.
  std::string str(const AbsVal &V) const;

  /// One line per recorded access, sorted by id — the recompute-and-
  /// compare currency of FunctionAnalyses::verifyCache().
  std::string summarize() const;

private:
  struct State {
    std::unordered_map<Reg, AbsVal, RegHash> Regs;
    bool Reached = false;
  };

  void build(const Function &F, const Cfg &G, const LoopInfo &LI);
  AbsVal get(const State &S, Reg R) const;
  AbsVal entryValue(Reg R) const;
  AbsVal freshValue(const Instr &I, Reg R, bool Once);
  void transfer(const Instr &I, State &S, bool Once);
  static AbsVal addImm(AbsVal V, int64_t Imm);
  static AbsVal join(const AbsVal &A, const AbsVal &B);
  bool joinInto(State &Dst, const State &Src) const;
  uint32_t intern(const std::string &Sym);

  /// Lattice verdict for two resolved locations (sizes from the instrs).
  AliasResult classify(const AbsVal &LA, uint8_t SizeA, const AbsVal &LB,
                       uint8_t SizeB, AliasScope Scope,
                       AliasClaimKind &Kind) const;

  std::string FnName;
  std::vector<std::string> Syms;
  std::unordered_map<std::string, uint32_t> SymIndex;
  /// (defining instruction id, register) -> value number. Entry live-ins
  /// use id 0 (instruction ids start at 1).
  std::unordered_map<uint64_t, uint64_t> ValueNumbers;
  std::unordered_map<uint64_t, bool> ValueOnce;
  uint64_t NextVn = 1;
  /// Resolved location per memory-access instruction id.
  std::unordered_map<uint32_t, AbsVal> Accesses;
  /// Block-entry states for pointsTo; keyed by block label (stable across
  /// the instruction-level edits that preserve this analysis).
  std::unordered_map<std::string, State> BlockIn;
};

} // namespace vsc

#endif // VSC_ANALYSIS_VALUETRACK_H
