//===- ir/IRBuilder.h - Instruction construction helper -------*- C++ -*-===//
///
/// \file
/// Convenience builder for writing IR programs in C++ (tests, examples and
/// the paper's worked code listings). Every emitted instruction receives a
/// unique id and has its registers reserved against the function's fresh-
/// register counters.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_IR_IRBUILDER_H
#define VSC_IR_IRBUILDER_H

#include "ir/Function.h"

#include <cassert>
#include <string>
#include <utility>

namespace vsc {

class IRBuilder {
public:
  explicit IRBuilder(Function &F) : F(F) {}

  /// Subsequent instructions are appended to \p BB.
  void setBlock(BasicBlock *BB) { Cur = BB; }
  BasicBlock *block() const { return Cur; }

  /// Creates a new block with exactly \p Label and makes it current.
  BasicBlock *startBlock(const std::string &Label) {
    Cur = F.addBlock(Label);
    return Cur;
  }

  Instr &emit(Instr I) {
    assert(Cur && "no current block");
    F.assignId(I);
    F.reserveRegsFrom(I);
    Cur->instrs().push_back(std::move(I));
    return Cur->instrs().back();
  }

  // Moves and immediates.
  Instr &li(Reg D, int64_t Imm) {
    return emit(make(Opcode::LI, D, Reg(), Reg(), Imm));
  }
  Instr &lr(Reg D, Reg S) { return emit(make(Opcode::LR, D, S, Reg())); }

  // ALU.
  Instr &add(Reg D, Reg A, Reg B) { return emit(make(Opcode::A, D, A, B)); }
  Instr &sub(Reg D, Reg A, Reg B) { return emit(make(Opcode::S, D, A, B)); }
  Instr &mul(Reg D, Reg A, Reg B) { return emit(make(Opcode::MUL, D, A, B)); }
  Instr &div(Reg D, Reg A, Reg B) { return emit(make(Opcode::DIV, D, A, B)); }
  Instr &and_(Reg D, Reg A, Reg B) { return emit(make(Opcode::AND, D, A, B)); }
  Instr &or_(Reg D, Reg A, Reg B) { return emit(make(Opcode::OR, D, A, B)); }
  Instr &xor_(Reg D, Reg A, Reg B) { return emit(make(Opcode::XOR, D, A, B)); }
  Instr &sl(Reg D, Reg A, Reg B) { return emit(make(Opcode::SL, D, A, B)); }
  Instr &sr(Reg D, Reg A, Reg B) { return emit(make(Opcode::SR, D, A, B)); }
  Instr &sra(Reg D, Reg A, Reg B) { return emit(make(Opcode::SRA, D, A, B)); }
  Instr &neg(Reg D, Reg A) { return emit(make(Opcode::NEG, D, A, Reg())); }
  Instr &ai(Reg D, Reg A, int64_t Imm) {
    return emit(make(Opcode::AI, D, A, Reg(), Imm));
  }
  Instr &si(Reg D, Reg A, int64_t Imm) {
    return emit(make(Opcode::SI, D, A, Reg(), Imm));
  }
  Instr &muli(Reg D, Reg A, int64_t Imm) {
    return emit(make(Opcode::MULI, D, A, Reg(), Imm));
  }
  Instr &andi(Reg D, Reg A, int64_t Imm) {
    return emit(make(Opcode::ANDI, D, A, Reg(), Imm));
  }
  Instr &ori(Reg D, Reg A, int64_t Imm) {
    return emit(make(Opcode::ORI, D, A, Reg(), Imm));
  }
  Instr &xori(Reg D, Reg A, int64_t Imm) {
    return emit(make(Opcode::XORI, D, A, Reg(), Imm));
  }
  Instr &sli(Reg D, Reg A, int64_t Imm) {
    return emit(make(Opcode::SLI, D, A, Reg(), Imm));
  }
  Instr &sri(Reg D, Reg A, int64_t Imm) {
    return emit(make(Opcode::SRI, D, A, Reg(), Imm));
  }
  Instr &srai(Reg D, Reg A, int64_t Imm) {
    return emit(make(Opcode::SRAI, D, A, Reg(), Imm));
  }
  Instr &la(Reg D, Reg A, int64_t Imm) {
    return emit(make(Opcode::LA, D, A, Reg(), Imm));
  }

  // Memory.
  Instr &load(Reg D, Reg Base, int64_t Disp, std::string Sym = "",
              uint8_t Size = 4) {
    Instr I = make(Opcode::L, D, Base, Reg(), Disp);
    I.Sym = std::move(Sym);
    I.MemSize = Size;
    return emit(std::move(I));
  }
  Instr &loadUpdate(Reg D, Reg Base, int64_t Disp, std::string Sym = "",
                    uint8_t Size = 4) {
    Instr I = make(Opcode::LU, D, Base, Reg(), Disp);
    I.Sym = std::move(Sym);
    I.MemSize = Size;
    return emit(std::move(I));
  }
  Instr &store(Reg Val, Reg Base, int64_t Disp, std::string Sym = "",
               uint8_t Size = 4) {
    Instr I = make(Opcode::ST, Reg(), Val, Base, Disp);
    I.Sym = std::move(Sym);
    I.MemSize = Size;
    return emit(std::move(I));
  }
  Instr &ltoc(Reg D, std::string Sym) {
    Instr I = make(Opcode::LTOC, D, Reg(), Reg());
    I.Sym = std::move(Sym);
    return emit(std::move(I));
  }

  // Compares.
  Instr &cmp(Reg Cr, Reg A, Reg B) { return emit(make(Opcode::C, Cr, A, B)); }
  Instr &cmpi(Reg Cr, Reg A, int64_t Imm) {
    return emit(make(Opcode::CI, Cr, A, Reg(), Imm));
  }

  // Branches.
  Instr &b(std::string Target) {
    Instr I = make(Opcode::B, Reg(), Reg(), Reg());
    I.Target = std::move(Target);
    return emit(std::move(I));
  }
  Instr &bt(std::string Target, Reg Cr, CrBit Bit) {
    Instr I = make(Opcode::BT, Reg(), Cr, Reg());
    I.Target = std::move(Target);
    I.Bit = Bit;
    return emit(std::move(I));
  }
  Instr &bf(std::string Target, Reg Cr, CrBit Bit) {
    Instr I = make(Opcode::BF, Reg(), Cr, Reg());
    I.Target = std::move(Target);
    I.Bit = Bit;
    return emit(std::move(I));
  }
  Instr &bct(std::string Target) {
    Instr I = make(Opcode::BCT, Reg(), Reg(), Reg());
    I.Target = std::move(Target);
    return emit(std::move(I));
  }
  Instr &mtctr(Reg A) {
    return emit(make(Opcode::MTCTR, Reg::ctr(), A, Reg()));
  }
  Instr &call(std::string Callee, int64_t NumArgs) {
    Instr I = make(Opcode::CALL, Reg(), Reg(), Reg(), NumArgs);
    I.Sym = std::move(Callee);
    return emit(std::move(I));
  }
  Instr &ret() { return emit(make(Opcode::RET, Reg(), Reg(), Reg())); }

private:
  static Instr make(Opcode Op, Reg D, Reg S1, Reg S2, int64_t Imm = 0) {
    Instr I;
    I.Op = Op;
    I.Dst = D;
    I.Src1 = S1;
    I.Src2 = S2;
    I.Imm = Imm;
    return I;
  }

  Function &F;
  BasicBlock *Cur = nullptr;
};

} // namespace vsc

#endif // VSC_IR_IRBUILDER_H
