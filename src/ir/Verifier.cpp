//===- ir/Verifier.cpp - IR well-formedness checks ------------------------===//

#include "ir/Verifier.h"

#include "ir/Module.h"

#include <unordered_set>

using namespace vsc;

/// Runtime builtins the simulator provides; CALLs to these are always legal.
static bool isBuiltinCallee(const std::string &Name) {
  return Name == "print_int" || Name == "print_char" || Name == "exit" ||
         Name == "read_int";
}

static std::string checkInstr(const Function &F, const BasicBlock &BB,
                              const Instr &I) {
  auto Fail = [&](const std::string &Msg) {
    return F.name() + ":" + BB.label() + ": " + I.str() + ": " + Msg;
  };
  const OpcodeInfo &Info = opcodeInfo(I.Op);

  if (Info.HasDst && !I.Dst.isValid())
    return Fail("missing destination");
  if (Info.NumSrcs >= 1 && !I.Src1.isValid())
    return Fail("missing first source");
  if (Info.NumSrcs >= 2 && !I.Src2.isValid())
    return Fail("missing second source");

  switch (I.Op) {
  case Opcode::C:
  case Opcode::CI:
    if (!I.Dst.isCr())
      return Fail("compare must write a condition register");
    if (!I.Src1.isGpr() || (I.Op == Opcode::C && !I.Src2.isGpr()))
      return Fail("compare sources must be GPRs");
    break;
  case Opcode::BT:
  case Opcode::BF:
    if (!I.Src1.isCr())
      return Fail("conditional branch must read a condition register");
    break;
  case Opcode::MTCTR:
    if (!I.Dst.isCtr() || !I.Src1.isGpr())
      return Fail("MTCTR moves a GPR into ctr");
    break;
  case Opcode::L:
  case Opcode::LU:
  case Opcode::ST:
    if (I.MemSize != 1 && I.MemSize != 2 && I.MemSize != 4 && I.MemSize != 8)
      return Fail("bad access size");
    if (!I.memBase().isGpr())
      return Fail("memory base must be a GPR");
    if (I.Op != Opcode::ST && !I.Dst.isGpr())
      return Fail("load destination must be a GPR");
    if (I.Op == Opcode::LU && I.Dst == I.Src1)
      return Fail("LU destination must differ from its base");
    if (I.Op == Opcode::ST && !I.Src1.isGpr())
      return Fail("stored value must be a GPR");
    break;
  case Opcode::CALL:
    if (I.Imm < 0 || I.Imm > 8)
      return Fail("argument count must be 0..8");
    break;
  case Opcode::LTOC:
    if (I.Sym.empty())
      return Fail("LTOC needs a symbol");
    break;
  default:
    if (Info.HasDst && I.Dst.isCr())
      return Fail("only compares may write condition registers");
    if (Info.HasDst && I.Dst.isCtr() && I.Op != Opcode::MTCTR)
      return Fail("only MTCTR may write ctr");
    break;
  }

  if (I.isBranch()) {
    if (I.Target.empty())
      return Fail("branch without target");
    if (!F.findBlock(I.Target))
      return Fail("unresolved branch target '" + I.Target + "'");
  }
  return "";
}

std::string vsc::verifyFunction(const Function &F) {
  if (F.blocks().empty())
    return F.name() + ": function has no blocks";

  std::unordered_set<std::string> Labels;
  for (const auto &BB : F.blocks())
    if (!Labels.insert(BB->label()).second)
      return F.name() + ": duplicate label '" + BB->label() + "'";

  for (size_t BI = 0, BE = F.blocks().size(); BI != BE; ++BI) {
    const BasicBlock &BB = *F.blocks()[BI];
    // Control transfers may only appear as a block suffix.
    size_t FirstTerm = BB.firstTerminatorIdx();
    for (size_t II = 0; II != BB.size(); ++II) {
      const Instr &I = BB.instrs()[II];
      if (I.isTerminator() && II < FirstTerm)
        return F.name() + ":" + BB.label() +
               ": control transfer in the middle of a block";
      std::string E = checkInstr(F, BB, I);
      if (!E.empty())
        return E;
    }
    size_t NumTerms = BB.size() - FirstTerm;
    if (NumTerms > 2)
      return F.name() + ":" + BB.label() + ": more than two terminators";
    if (NumTerms == 2) {
      const Instr &First = BB.instrs()[FirstTerm];
      const Instr &Second = BB.instrs()[FirstTerm + 1];
      if (!First.isCondBranch())
        return F.name() + ":" + BB.label() +
               ": first terminator of a pair must be conditional";
      if (!Second.isBarrier())
        return F.name() + ":" + BB.label() +
               ": second terminator must be B or RET";
    }
    // A fallthrough off the end of the function is invalid.
    if (BI + 1 == BE && BB.canFallThrough())
      return F.name() + ": final block '" + BB.label() +
             "' falls off the end of the function";
  }
  return "";
}

std::string vsc::verifyModule(const Module &M) {
  std::unordered_set<std::string> Names;
  for (const auto &F : M.functions())
    if (!Names.insert(F->name()).second)
      return "duplicate function '" + F->name() + "'";
  for (const Global &G : M.globals())
    if (!Names.insert(G.Name).second)
      return "duplicate symbol '" + G.Name + "'";

  for (const auto &F : M.functions()) {
    std::string E = verifyFunction(*F);
    if (!E.empty())
      return E;
    for (const auto &BB : F->blocks())
      for (const Instr &I : BB->instrs()) {
        if (!I.isCall())
          continue;
        const Function *Callee = M.findFunction(I.Sym);
        if (!Callee && !isBuiltinCallee(I.Sym))
          return F->name() + ": call to unknown function '" + I.Sym + "'";
        if (Callee && static_cast<unsigned>(I.Imm) != Callee->numArgs())
          return F->name() + ":" + BB->label() + ": " + I.str() +
                 ": call passes " + std::to_string(I.Imm) +
                 " argument(s) but '" + Callee->name() + "' declares " +
                 std::to_string(Callee->numArgs());
      }
  }
  return "";
}
