//===- ir/Function.h - Function -------------------------------*- C++ -*-===//
///
/// \file
/// A function: an ordered list of basic blocks (layout order is meaningful;
/// the first block is the entry), plus counters for fresh labels, virtual
/// registers and instruction ids.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_IR_FUNCTION_H
#define VSC_IR_FUNCTION_H

#include "ir/BasicBlock.h"

#include <cassert>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace vsc {

class Function {
public:
  explicit Function(std::string Name, unsigned NumArgs = 0)
      : Name(std::move(Name)), NumArgs(NumArgs) {}

  const std::string &name() const { return Name; }
  unsigned numArgs() const { return NumArgs; }
  void setNumArgs(unsigned N) { NumArgs = N; }

  /// Blocks in layout order; the first block is the entry.
  std::vector<std::unique_ptr<BasicBlock>> &blocks() { return Blocks; }
  const std::vector<std::unique_ptr<BasicBlock>> &blocks() const {
    return Blocks;
  }
  BasicBlock *entry() const {
    return Blocks.empty() ? nullptr : Blocks.front().get();
  }
  size_t size() const { return Blocks.size(); }

  /// Appends a new block with the given (unique) label.
  BasicBlock *addBlock(std::string Label);

  /// Creates a new block with a fresh label derived from \p Hint and inserts
  /// it at layout position \p Index (shifting later blocks).
  BasicBlock *insertBlock(size_t Index, const std::string &Hint);

  /// Removes the block at layout position \p Index. The caller must have
  /// already redirected all control flow away from it.
  void eraseBlock(size_t Index);

  /// Moves the block at position \p From to position \p To (layout edit).
  void moveBlock(size_t From, size_t To);

  /// \returns the block with label \p L, or null.
  BasicBlock *findBlock(const std::string &L) const;

  /// \returns the layout index of \p BB; asserts that BB belongs here.
  size_t indexOf(const BasicBlock *BB) const;

  /// \returns a label not used by any block, derived from \p Hint.
  std::string freshLabel(const std::string &Hint);

  /// Fresh virtual registers for renaming / new temporaries.
  Reg freshGpr() { return Reg::gpr(NextGpr++); }
  Reg freshCr() { return Reg::cr(NextCr++); }

  /// Notes that register ids up to those used in the function are taken, so
  /// freshGpr/freshCr never collide with hand-built code. Called by the
  /// verifier/parser/builders after construction.
  void reserveRegsFrom(const Instr &I);

  /// Assigns a fresh unique id to \p I (valid within this function).
  void assignId(Instr &I) { I.Id = NextInstrId++; }

  /// Notes that ids up to \p I's are taken. Clones copy instructions (and
  /// their ids) verbatim; subsequent assignId calls must not collide.
  void reserveIdFrom(const Instr &I) {
    if (I.Id >= NextInstrId)
      NextInstrId = I.Id + 1;
  }

  /// Re-assigns unique ids to every instruction (after heavy surgery).
  void renumber();

  /// Total static instruction count (the paper's code-size metric).
  size_t instrCount() const;

  /// Monotone counter bumped by every structural CFG edit (block
  /// creation/removal/reordering and the cfg/CfgEdit.h surgery helpers).
  /// pm/Analysis.h compares it against the value captured when an analysis
  /// was computed, so cached Cfg/Dominators/Loops views self-invalidate
  /// after block-level surgery. Instruction-level edits that change
  /// control flow or register contents without touching the block list do
  /// NOT bump it — passes declare those through PreservedAnalyses.
  uint64_t cfgEpoch() const { return CfgEpoch; }
  /// Records a structural edit made without going through the block-list
  /// mutators (e.g. retargeting or deleting a branch in place).
  void noteCfgEdit() { ++CfgEpoch; }

private:
  std::string Name;
  unsigned NumArgs = 0;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
  uint32_t NextGpr = Reg::FirstVirtualGpr;
  uint32_t NextCr = Reg::FirstVirtualCr;
  uint32_t NextInstrId = 1;
  uint32_t NextLabelId = 0;
  uint64_t CfgEpoch = 0;
};

} // namespace vsc

#endif // VSC_IR_FUNCTION_H
