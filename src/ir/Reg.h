//===- ir/Reg.h - Register model ------------------------------*- C++ -*-===//
///
/// \file
/// Registers for the POWER-flavoured IR. Three classes exist:
///
///  * GPR  — general purpose registers. Ids 0..31 are "physical" and carry
///           the RS/6000 software conventions (r1 = stack pointer, r2 = TOC,
///           r3..r10 = arguments / return value, r13..r31 = callee-saved).
///           Ids >= FirstVirtualGpr are compiler temporaries; the paper's
///           passes all run before register allocation, so temporaries are
///           unbounded.
///  * CR   — condition registers written by compares and read by BT/BF.
///           Ids 0..7 are physical, ids >= FirstVirtualCr are temporaries.
///  * CTR  — the count register used by MTCTR/BCT. A single register.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_IR_REG_H
#define VSC_IR_REG_H

#include <cassert>
#include <cstdint>
#include <functional>
#include <string>

namespace vsc {

enum class RegClass : uint8_t { None, Gpr, Cr, Ctr };

class Reg {
public:
  static constexpr uint32_t FirstVirtualGpr = 32;
  static constexpr uint32_t FirstVirtualCr = 8;

  Reg() = default;
  Reg(RegClass Class, uint32_t Id) : Class(Class), Id(Id) {}

  static Reg gpr(uint32_t Id) { return Reg(RegClass::Gpr, Id); }
  static Reg cr(uint32_t Id) { return Reg(RegClass::Cr, Id); }
  static Reg ctr() { return Reg(RegClass::Ctr, 0); }

  bool isValid() const { return Class != RegClass::None; }
  bool isGpr() const { return Class == RegClass::Gpr; }
  bool isCr() const { return Class == RegClass::Cr; }
  bool isCtr() const { return Class == RegClass::Ctr; }

  bool isVirtual() const {
    if (Class == RegClass::Gpr)
      return Id >= FirstVirtualGpr;
    if (Class == RegClass::Cr)
      return Id >= FirstVirtualCr;
    return false;
  }
  bool isPhysical() const { return isValid() && !isVirtual(); }

  /// \returns true for r13..r31, the callee-saved GPRs under the RS/6000
  /// linkage convention (the registers prolog tailoring cares about).
  bool isCalleeSaved() const { return isGpr() && Id >= 13 && Id <= 31; }

  RegClass regClass() const { return Class; }
  uint32_t id() const { return Id; }

  bool operator==(const Reg &RHS) const {
    return Class == RHS.Class && Id == RHS.Id;
  }
  bool operator!=(const Reg &RHS) const { return !(*this == RHS); }
  bool operator<(const Reg &RHS) const {
    if (Class != RHS.Class)
      return Class < RHS.Class;
    return Id < RHS.Id;
  }

  /// Renders "r5", "cr0", "ctr"; virtual registers print with the same
  /// prefix and their (large) id, e.g. "r41".
  std::string str() const {
    switch (Class) {
    case RegClass::None:
      return "<noreg>";
    case RegClass::Gpr:
      return "r" + std::to_string(Id);
    case RegClass::Cr:
      return "cr" + std::to_string(Id);
    case RegClass::Ctr:
      return "ctr";
    }
    return "<bad>";
  }

private:
  RegClass Class = RegClass::None;
  uint32_t Id = 0;
};

/// Well-known physical registers under the RS/6000 software conventions.
namespace regs {
inline Reg sp() { return Reg::gpr(1); }
inline Reg toc() { return Reg::gpr(2); }
/// Argument register \p N (0-based); r3..r10.
inline Reg arg(unsigned N) {
  assert(N < 8 && "at most 8 register arguments");
  return Reg::gpr(3 + N);
}
inline Reg retval() { return Reg::gpr(3); }
} // namespace regs

struct RegHash {
  size_t operator()(const Reg &R) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(R.regClass()) << 32) |
                                 R.id());
  }
};

} // namespace vsc

#endif // VSC_IR_REG_H
