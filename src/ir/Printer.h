//===- ir/Printer.h - Textual IR output -----------------------*- C++ -*-===//
///
/// \file
/// Renders modules and functions in the textual syntax accepted by
/// ir/Parser.h (the two round-trip).
///
//===----------------------------------------------------------------------===//

#ifndef VSC_IR_PRINTER_H
#define VSC_IR_PRINTER_H

#include <string>

namespace vsc {

class Module;
class Function;

/// Renders \p F as text, e.g.
/// \code
/// func foo(1) {
/// entry:
///   LI r32 = 5
///   RET
/// }
/// \endcode
std::string printFunction(const Function &F);

/// Renders globals followed by every function.
std::string printModule(const Module &M);

} // namespace vsc

#endif // VSC_IR_PRINTER_H
