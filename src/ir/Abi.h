//===- ir/Abi.h - POWER linkage convention --------------------*- C++ -*-===//
///
/// \file
/// The RS/6000 (POWER) linkage convention, stated once. Three consumers
/// must agree on it exactly or miscompilations slip through unnoticed:
///
///  * ir/Instr.cpp derives the implicit uses/defs of CALL and RET from it,
///    which is what every dataflow analysis and scheduler sees;
///  * sim/Simulator.cpp poisons the clobbered registers at calls, so code
///    that wrongly relies on a caller-saved register surviving a call
///    fails loudly and deterministically instead of "working";
///  * oracle/Interp.cpp (the reference interpreter) applies the identical
///    poison, so the two execution engines agree bit-for-bit and the
///    differential oracle never reports a spurious divergence.
///
/// tests/test_oracle.cpp pins the set by running both engines over a
/// program that observes every register around a call.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_IR_ABI_H
#define VSC_IR_ABI_H

#include "ir/Reg.h"

#include <cstdint>
#include <string_view>

namespace vsc {
namespace abi {

/// Deterministic "this register died at the call" value both execution
/// engines write into clobbered GPRs (and the CTR). Recognizable in traces
/// and never produced by the bundled workloads.
constexpr int64_t ClobberPoison = static_cast<int64_t>(0x5C5C5C5C5C5C5C5CULL);

/// \returns true for GPRs a call clobbers: r0 and r3..r12 (arguments,
/// return value, environment/scratch). r1 (SP), r2 (TOC) and r13..r31 are
/// preserved.
inline bool isCallClobberedGpr(uint32_t Id) {
  return Id == 0 || (Id >= 3 && Id <= 12);
}

/// \returns true for GPRs the callee must preserve: r1, r2, r13..r31.
inline bool isCallPreservedGpr(uint32_t Id) {
  return Id == 1 || Id == 2 || (Id >= 13 && Id <= 31);
}

/// Invokes \p F once per register a CALL defines implicitly (the clobber
/// set): r0, r3..r12, cr0..cr7 and the CTR. The order is fixed; it is part
/// of what the cross-engine test pins.
template <typename Fn> void forEachCallClobber(Fn &&F) {
  F(Reg::gpr(0));
  for (uint32_t R = 3; R <= 12; ++R)
    F(Reg::gpr(R));
  for (uint32_t C = 0; C < 8; ++C)
    F(Reg::cr(C));
  F(Reg::ctr());
}

/// The simulator builtins with known linkage behaviour. All of them
/// clobber the standard set; their r3 on return is pinned here so both
/// engines agree: print_int and print_char return their argument, read_int
/// returns the value read, exit does not return.
inline bool isBuiltin(std::string_view Sym) {
  return Sym == "print_int" || Sym == "print_char" || Sym == "read_int" ||
         Sym == "exit";
}

} // namespace abi
} // namespace vsc

#endif // VSC_IR_ABI_H
