//===- ir/Printer.cpp - Textual IR output ---------------------------------===//

#include "ir/Printer.h"

#include "ir/Module.h"

using namespace vsc;

std::string vsc::printFunction(const Function &F) {
  std::string Out;
  Out += "func " + F.name() + "(" + std::to_string(F.numArgs()) + ") {\n";
  for (const auto &BB : F.blocks()) {
    Out += BB->label() + ":\n";
    for (const Instr &I : BB->instrs()) {
      Out += "  ";
      Out += I.str();
      Out += "\n";
    }
  }
  Out += "}\n";
  return Out;
}

std::string vsc::printModule(const Module &M) {
  std::string Out;
  for (const Global &G : M.globals()) {
    Out += "global " + G.Name + " : " + std::to_string(G.Size);
    if (!G.Init.empty()) {
      Out += " = [";
      for (size_t I = 0; I != G.Init.size(); ++I) {
        if (I)
          Out += " ";
        Out += std::to_string(static_cast<int>(G.Init[I]));
      }
      Out += "]";
    }
    if (G.IsVolatile)
      Out += " volatile";
    Out += "\n";
  }
  for (const auto &F : M.functions()) {
    Out += printFunction(*F);
    Out += "\n";
  }
  return Out;
}
