//===- ir/Parser.cpp - Textual IR parser ----------------------------------===//

#include "ir/Parser.h"

#include "ir/Module.h"

#include <cctype>
#include <cstdlib>
#include <map>

using namespace vsc;

namespace {

/// Cursor over one line of input.
class LineCursor {
public:
  explicit LineCursor(std::string_view Text) : Text(Text) {}

  void skipSpace() {
    while (Pos < Text.size() && (Text[Pos] == ' ' || Text[Pos] == '\t'))
      ++Pos;
  }

  bool atEnd() {
    skipSpace();
    return Pos >= Text.size();
  }

  bool consume(char C) {
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  char peek() {
    skipSpace();
    return Pos < Text.size() ? Text[Pos] : '\0';
  }

  /// Identifiers may contain letters, digits, '_', '.', and '$' (labels in
  /// the paper look like "CL.0").
  std::string ident() {
    skipSpace();
    size_t Start = Pos;
    while (Pos < Text.size() &&
           (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '_' || Text[Pos] == '.' || Text[Pos] == '$'))
      ++Pos;
    return std::string(Text.substr(Start, Pos - Start));
  }

  bool integer(int64_t &Out) {
    skipSpace();
    size_t Start = Pos;
    if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    size_t DigitsStart = Pos;
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    if (Pos == DigitsStart) {
      Pos = Start;
      return false;
    }
    Out = std::strtoll(std::string(Text.substr(Start, Pos - Start)).c_str(),
                       nullptr, 10);
    return true;
  }

private:
  std::string_view Text;
  size_t Pos = 0;
};

class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  std::unique_ptr<Module> run(std::string *Err) {
    auto M = std::make_unique<Module>();
    Function *F = nullptr;
    BasicBlock *BB = nullptr;

    size_t LineNo = 0;
    size_t Pos = 0;
    while (Pos <= Text.size()) {
      size_t Eol = Text.find('\n', Pos);
      if (Eol == std::string_view::npos)
        Eol = Text.size();
      std::string_view Line = Text.substr(Pos, Eol - Pos);
      Pos = Eol + 1;
      ++LineNo;

      // Strip comments.
      size_t CPos = Line.find("//");
      if (CPos != std::string_view::npos)
        Line = Line.substr(0, CPos);
      CPos = Line.find(';');
      if (CPos != std::string_view::npos)
        Line = Line.substr(0, CPos);
      // Trim.
      while (!Line.empty() && (Line.back() == ' ' || Line.back() == '\t' ||
                               Line.back() == '\r'))
        Line.remove_suffix(1);
      while (!Line.empty() && (Line.front() == ' ' || Line.front() == '\t'))
        Line.remove_prefix(1);
      if (Line.empty()) {
        if (Pos > Text.size())
          break;
        continue;
      }

      std::string E = parseLine(Line, *M, F, BB);
      if (!E.empty()) {
        if (Err)
          *Err = "line " + std::to_string(LineNo) + ": " + E;
        return nullptr;
      }
      if (Pos > Text.size())
        break;
    }
    if (F) {
      if (Err)
        *Err = "unterminated function '" + F->name() + "'";
      return nullptr;
    }
    return M;
  }

private:
  std::string parseLine(std::string_view Line, Module &M, Function *&F,
                        BasicBlock *&BB) {
    // Block label?
    if (Line.back() == ':') {
      if (!F)
        return "label outside a function";
      std::string L(Line.substr(0, Line.size() - 1));
      if (F->findBlock(L))
        return "duplicate label '" + L + "'";
      BB = F->addBlock(L);
      return "";
    }

    LineCursor C(Line);
    std::string Word = C.ident();

    if (Word == "global") {
      if (F)
        return "global inside a function";
      std::string Name = C.ident();
      if (Name.empty())
        return "expected global name";
      if (!C.consume(':'))
        return "expected ':' after global name";
      int64_t Size = 0;
      if (!C.integer(Size) || Size < 0)
        return "expected global size";
      Global &G = M.addGlobal(Name, static_cast<uint64_t>(Size));
      if (C.consume('=')) {
        if (!C.consume('['))
          return "expected '[' in global initializer";
        while (!C.consume(']')) {
          int64_t Byte = 0;
          if (!C.integer(Byte))
            return "expected byte value in initializer";
          G.Init.push_back(static_cast<uint8_t>(Byte));
          C.consume(',');
        }
      }
      if (C.peek() == 'v' && C.ident() == "volatile")
        G.IsVolatile = true;
      return "";
    }

    if (Word == "func") {
      if (F)
        return "nested function";
      std::string Name = C.ident();
      if (Name.empty())
        return "expected function name";
      int64_t NArgs = 0;
      if (!C.consume('(') || !C.integer(NArgs) || !C.consume(')'))
        return "expected '(numargs)' after function name";
      if (!C.consume('{'))
        return "expected '{'";
      F = M.addFunction(Name, static_cast<unsigned>(NArgs));
      BB = nullptr;
      return "";
    }

    if (Word.empty() && Line == "}") {
      if (!F)
        return "unmatched '}'";
      F->renumber();
      F = nullptr;
      BB = nullptr;
      return "";
    }

    // Otherwise: an instruction.
    if (!F)
      return "instruction outside a function";
    if (!BB)
      BB = F->addBlock("entry");
    Instr I;
    std::string E = parseInstr(Word, C, I);
    if (!E.empty())
      return E;
    F->assignId(I);
    F->reserveRegsFrom(I);
    BB->instrs().push_back(std::move(I));
    return "";
  }

  static Opcode lookupOpcode(const std::string &Name, bool &Ok) {
    for (size_t OpIdx = 0;
         OpIdx != static_cast<size_t>(Opcode::NumOpcodes); ++OpIdx) {
      Opcode Op = static_cast<Opcode>(OpIdx);
      if (opcodeName(Op) == Name) {
        Ok = true;
        return Op;
      }
    }
    Ok = false;
    return Opcode::LI;
  }

  static bool parseReg(LineCursor &C, Reg &Out) {
    std::string W = C.ident();
    if (W == "ctr") {
      Out = Reg::ctr();
      return true;
    }
    if (W.size() >= 2 && W[0] == 'r' &&
        std::isdigit(static_cast<unsigned char>(W[1]))) {
      Out = Reg::gpr(static_cast<uint32_t>(std::atoi(W.c_str() + 1)));
      return true;
    }
    if (W.size() >= 3 && W[0] == 'c' && W[1] == 'r' &&
        std::isdigit(static_cast<unsigned char>(W[2]))) {
      Out = Reg::cr(static_cast<uint32_t>(std::atoi(W.c_str() + 2)));
      return true;
    }
    return false;
  }

  static bool parseCrBit(const std::string &W, CrBit &Out) {
    if (W == "lt")
      Out = CrBit::Lt;
    else if (W == "gt")
      Out = CrBit::Gt;
    else if (W == "eq")
      Out = CrBit::Eq;
    else
      return false;
    return true;
  }

  /// Parses "disp(base)[:size] [!sym] [!volatile]".
  static std::string parseMem(LineCursor &C, Reg &Base, Instr &I) {
    if (!C.integer(I.Imm))
      return "expected displacement";
    if (!C.consume('('))
      return "expected '('";
    if (!parseReg(C, Base))
      return "expected base register";
    if (!C.consume(')'))
      return "expected ')'";
    if (C.consume(':')) {
      int64_t Size = 0;
      if (!C.integer(Size) ||
          (Size != 1 && Size != 2 && Size != 4 && Size != 8))
        return "bad access size";
      I.MemSize = static_cast<uint8_t>(Size);
    }
    return "";
  }

  /// Parses trailing "!sym" / "!volatile" annotations.
  static void parseAnnotations(LineCursor &C, Instr &I) {
    while (C.consume('!')) {
      std::string A = C.ident();
      if (A == "volatile")
        I.IsVolatile = true;
      else if (A == "safe")
        I.SpecSafe = true;
      else
        I.Sym = A;
    }
  }

  static std::string parseInstr(const std::string &Mnemonic, LineCursor &C,
                                Instr &I) {
    bool Ok = false;
    I.Op = lookupOpcode(Mnemonic, Ok);
    if (!Ok)
      return "unknown mnemonic '" + Mnemonic + "'";
    const OpcodeInfo &Info = opcodeInfo(I.Op);

    switch (I.Op) {
    case Opcode::LTOC: {
      if (!parseReg(C, I.Dst) || !C.consume('=') || !C.consume('.'))
        return "expected 'LTOC rX = .sym'";
      I.Sym = C.ident();
      if (I.Sym.empty())
        return "expected symbol";
      return "";
    }
    case Opcode::L:
    case Opcode::LU: {
      if (!parseReg(C, I.Dst) || !C.consume('='))
        return "expected 'rX ='";
      std::string E = parseMem(C, I.Src1, I);
      if (!E.empty())
        return E;
      parseAnnotations(C, I);
      return "";
    }
    case Opcode::ST: {
      std::string E = parseMem(C, I.Src2, I);
      if (!E.empty())
        return E;
      // Annotations may appear before or after "= rX".
      parseAnnotations(C, I);
      if (!C.consume('=') || !parseReg(C, I.Src1))
        return "expected '= rX'";
      parseAnnotations(C, I);
      return "";
    }
    case Opcode::B:
    case Opcode::BCT: {
      I.Target = C.ident();
      if (I.Target.empty())
        return "expected branch target";
      return "";
    }
    case Opcode::BT:
    case Opcode::BF: {
      I.Target = C.ident();
      if (I.Target.empty())
        return "expected branch target";
      if (!C.consume(','))
        return "expected ','";
      // "crN.bit" parses as one identifier (idents may contain dots, as in
      // the label CL.0); split it here.
      std::string CrAndBit = C.ident();
      size_t Dot = CrAndBit.find('.');
      if (Dot == std::string::npos)
        return "expected 'crN.bit'";
      std::string CrName = CrAndBit.substr(0, Dot);
      if (CrName.size() < 3 || CrName[0] != 'c' || CrName[1] != 'r')
        return "expected condition register";
      I.Src1 = Reg::cr(static_cast<uint32_t>(std::atoi(CrName.c_str() + 2)));
      if (!parseCrBit(CrAndBit.substr(Dot + 1), I.Bit))
        return "bad condition bit '" + CrAndBit.substr(Dot + 1) + "'";
      return "";
    }
    case Opcode::CALL: {
      I.Sym = C.ident();
      if (I.Sym.empty())
        return "expected callee";
      if (!C.consume(',') || !C.integer(I.Imm))
        return "expected ', numargs'";
      return "";
    }
    case Opcode::RET:
      return "";
    case Opcode::MTCTR: {
      // Accept both "MTCTR ctr = rX" (printer form) and "MTCTR rX" (sugar).
      Reg R;
      if (!parseReg(C, R))
        return "expected register";
      I.Dst = Reg::ctr();
      if (R.isGpr()) {
        I.Src1 = R;
        return "";
      }
      if (!C.consume('=') || !parseReg(C, I.Src1))
        return "expected '= rX'";
      return "";
    }
    default:
      break;
    }

    // Generic forms: "OP dst = src1[, src2|imm]" and "LI dst = imm".
    if (!parseReg(C, I.Dst) || !C.consume('='))
      return "expected 'dst ='";
    if (Info.NumSrcs == 0) {
      if (!C.integer(I.Imm))
        return "expected immediate";
      return "";
    }
    if (!parseReg(C, I.Src1))
      return "expected source register";
    if (Info.NumSrcs == 1 && !Info.HasImm)
      return "";
    if (!C.consume(','))
      return "expected ','";
    if (Info.HasImm) {
      if (!C.integer(I.Imm))
        return "expected immediate";
      return "";
    }
    if (!parseReg(C, I.Src2))
      return "expected second source register";
    return "";
  }

  std::string_view Text;
};

} // namespace

std::unique_ptr<Module> vsc::parseModule(std::string_view Text,
                                         std::string *Err) {
  return Parser(Text).run(Err);
}
