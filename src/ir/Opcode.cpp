//===- ir/Opcode.cpp - Opcode trait table ---------------------------------===//

#include "ir/Opcode.h"

#include <cassert>

using namespace vsc;

namespace {

// Name, Unit, HasDst, NumSrcs, HasImm, IsLoad, IsStore, IsBranch,
// IsCondBranch, IsCall. Order must match the Opcode enum.
constexpr OpcodeInfo Infos[] = {
    {"LI", UnitKind::Fxu, true, 0, true, false, false, false, false, false},
    {"LR", UnitKind::Fxu, true, 1, false, false, false, false, false, false},
    {"A", UnitKind::Fxu, true, 2, false, false, false, false, false, false},
    {"S", UnitKind::Fxu, true, 2, false, false, false, false, false, false},
    {"MUL", UnitKind::Fxu, true, 2, false, false, false, false, false, false},
    {"DIV", UnitKind::Fxu, true, 2, false, false, false, false, false, false},
    {"AND", UnitKind::Fxu, true, 2, false, false, false, false, false, false},
    {"OR", UnitKind::Fxu, true, 2, false, false, false, false, false, false},
    {"XOR", UnitKind::Fxu, true, 2, false, false, false, false, false, false},
    {"SL", UnitKind::Fxu, true, 2, false, false, false, false, false, false},
    {"SR", UnitKind::Fxu, true, 2, false, false, false, false, false, false},
    {"SRA", UnitKind::Fxu, true, 2, false, false, false, false, false, false},
    {"AI", UnitKind::Fxu, true, 1, true, false, false, false, false, false},
    {"SI", UnitKind::Fxu, true, 1, true, false, false, false, false, false},
    {"MULI", UnitKind::Fxu, true, 1, true, false, false, false, false, false},
    {"ANDI", UnitKind::Fxu, true, 1, true, false, false, false, false, false},
    {"ORI", UnitKind::Fxu, true, 1, true, false, false, false, false, false},
    {"XORI", UnitKind::Fxu, true, 1, true, false, false, false, false, false},
    {"SLI", UnitKind::Fxu, true, 1, true, false, false, false, false, false},
    {"SRI", UnitKind::Fxu, true, 1, true, false, false, false, false, false},
    {"SRAI", UnitKind::Fxu, true, 1, true, false, false, false, false, false},
    {"NEG", UnitKind::Fxu, true, 1, false, false, false, false, false, false},
    {"L", UnitKind::Fxu, true, 1, true, true, false, false, false, false},
    {"LU", UnitKind::Fxu, true, 1, true, true, false, false, false, false},
    {"ST", UnitKind::Fxu, false, 2, true, false, true, false, false, false},
    {"LTOC", UnitKind::Fxu, true, 0, false, false, false, false, false, false},
    {"LA", UnitKind::Fxu, true, 1, true, false, false, false, false, false},
    {"C", UnitKind::Fxu, true, 2, false, false, false, false, false, false},
    {"CI", UnitKind::Fxu, true, 1, true, false, false, false, false, false},
    {"B", UnitKind::Bu, false, 0, false, false, false, true, false, false},
    {"BT", UnitKind::Bu, false, 1, false, false, false, true, true, false},
    {"BF", UnitKind::Bu, false, 1, false, false, false, true, true, false},
    {"BCT", UnitKind::Bu, false, 0, false, false, false, true, true, false},
    {"MTCTR", UnitKind::Fxu, true, 1, false, false, false, false, false,
     false},
    {"CALL", UnitKind::Bu, false, 0, true, false, false, false, false, true},
    {"RET", UnitKind::Bu, false, 0, false, false, false, false, false, false},
};

static_assert(sizeof(Infos) / sizeof(Infos[0]) ==
                  static_cast<size_t>(Opcode::NumOpcodes),
              "opcode trait table out of sync with the Opcode enum");

} // namespace

const OpcodeInfo &vsc::opcodeInfo(Opcode Op) {
  assert(Op < Opcode::NumOpcodes && "invalid opcode");
  return Infos[static_cast<size_t>(Op)];
}

std::string_view vsc::crBitName(CrBit Bit) {
  switch (Bit) {
  case CrBit::Lt:
    return "lt";
  case CrBit::Gt:
    return "gt";
  case CrBit::Eq:
    return "eq";
  }
  return "?";
}
