//===- ir/Verifier.h - IR well-formedness checks --------------*- C++ -*-===//
///
/// \file
/// Structural validity checks run after construction and between passes in
/// debug pipelines. Returns a diagnostic string ("" when valid) so tests can
/// assert on the message.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_IR_VERIFIER_H
#define VSC_IR_VERIFIER_H

#include <string>

namespace vsc {

class Module;
class Function;

/// Checks one function:
///  * block labels are unique and every branch target resolves;
///  * control transfers form a valid suffix (at most one conditional branch,
///    optionally followed by one barrier; BCT terminates alone);
///  * the final block cannot fall off the end of the function;
///  * operand register classes match opcode expectations;
///  * memory access sizes are 1/2/4/8, CALL argument counts fit r3..r10.
/// \returns "" when valid, else a diagnostic.
std::string verifyFunction(const Function &F);

/// Runs verifyFunction on every function and checks that CALL targets are
/// either functions in the module or known runtime builtins, and that calls
/// to in-module functions pass exactly the callee's declared argument count.
std::string verifyModule(const Module &M);

} // namespace vsc

#endif // VSC_IR_VERIFIER_H
