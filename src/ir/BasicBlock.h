//===- ir/BasicBlock.h - Basic block --------------------------*- C++ -*-===//
///
/// \file
/// A basic block: a label plus a straight-line instruction sequence.
/// Control transfers appear only as a suffix of the sequence: at most one
/// conditional branch, optionally followed by one barrier (B/RET), or a lone
/// BCT. A block whose last instruction is not a barrier falls through to the
/// next block in the function's layout order — layout is semantically
/// meaningful, which is exactly what the paper's reordering passes
/// (unspeculation's reverse-postorder pass, PDF block reordering) exploit.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_IR_BASICBLOCK_H
#define VSC_IR_BASICBLOCK_H

#include "ir/Instr.h"

#include <string>
#include <vector>

namespace vsc {

class BasicBlock {
public:
  explicit BasicBlock(std::string Label) : Label(std::move(Label)) {}

  const std::string &label() const { return Label; }
  void setLabel(std::string L) { Label = std::move(L); }

  std::vector<Instr> &instrs() { return Instrs; }
  const std::vector<Instr> &instrs() const { return Instrs; }

  bool empty() const { return Instrs.empty(); }
  size_t size() const { return Instrs.size(); }

  /// \returns the final instruction if it is a control transfer, else null.
  const Instr *terminator() const {
    if (!Instrs.empty() && Instrs.back().isTerminator())
      return &Instrs.back();
    return nullptr;
  }
  Instr *terminator() {
    return const_cast<Instr *>(
        static_cast<const BasicBlock *>(this)->terminator());
  }

  /// \returns true if execution can fall through the end of this block into
  /// the next block in layout order.
  bool canFallThrough() const {
    if (Instrs.empty())
      return true;
    return !Instrs.back().isBarrier() && !Instrs.back().isRet();
  }

  /// \returns the index of the first terminator of the terminating suffix,
  /// i.e. the position before which non-control instructions may be
  /// appended. Equals size() when the block has no terminator suffix.
  size_t firstTerminatorIdx() const {
    size_t I = Instrs.size();
    while (I > 0 && Instrs[I - 1].isTerminator())
      --I;
    return I;
  }

private:
  std::string Label;
  std::vector<Instr> Instrs;
};

} // namespace vsc

#endif // VSC_IR_BASICBLOCK_H
