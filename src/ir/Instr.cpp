//===- ir/Instr.cpp - IR instruction helpers ------------------------------===//

#include "ir/Instr.h"

#include "ir/Abi.h"

#include <cassert>

using namespace vsc;

void Instr::collectUses(std::vector<Reg> &Uses) const {
  const OpcodeInfo &Info = opcodeInfo(Op);
  if (Info.NumSrcs >= 1 && Src1.isValid())
    Uses.push_back(Src1);
  if (Info.NumSrcs >= 2 && Src2.isValid())
    Uses.push_back(Src2);
  switch (Op) {
  case Opcode::BCT:
    Uses.push_back(Reg::ctr());
    break;
  case Opcode::CALL:
    // Arguments are passed in r3..r10; Imm holds the argument count. The
    // callee may also read the stack pointer and the TOC.
    for (int64_t I = 0; I < Imm; ++I)
      Uses.push_back(regs::arg(static_cast<unsigned>(I)));
    Uses.push_back(regs::sp());
    Uses.push_back(regs::toc());
    break;
  case Opcode::RET:
    // The return value lives in r3. Callee-saved registers are live across
    // the return as far as the caller is concerned; that liveness is
    // modelled here so restores inserted by prolog tailoring are not dead.
    Uses.push_back(regs::retval());
    for (uint32_t R = 13; R <= 31; ++R)
      Uses.push_back(Reg::gpr(R));
    Uses.push_back(regs::sp());
    break;
  default:
    break;
  }
}

void Instr::collectDefs(std::vector<Reg> &Defs) const {
  const OpcodeInfo &Info = opcodeInfo(Op);
  if (Info.HasDst && Dst.isValid())
    Defs.push_back(Dst);
  switch (Op) {
  case Opcode::LU:
    Defs.push_back(Src1); // base register update
    break;
  case Opcode::BCT:
    Defs.push_back(Reg::ctr()); // count decrement
    break;
  case Opcode::CALL:
    // Under the RS/6000 linkage convention a call clobbers r0, the argument
    // registers r3..r12, every physical condition register, and the count
    // register. r1 (SP), r2 (TOC) and r13..r31 are preserved. The set lives
    // in ir/Abi.h, shared with both execution engines.
    abi::forEachCallClobber([&](Reg R) { Defs.push_back(R); });
    break;
  default:
    break;
  }
}

bool Instr::hasSideEffects() const {
  if (isStore() || isCall() || isRet() || isBranch())
    return true;
  if (isMemAccess() && IsVolatile)
    return true;
  return false;
}

bool Instr::isSafeToSpeculate() const {
  if (hasSideEffects())
    return false;
  if (isLoad())
    return false; // needs the flow-sensitive safety proof
  if (Op == Opcode::DIV)
    return false; // may trap on divide by zero
  if (Op == Opcode::LU)
    return false; // updates its base register
  if (Op == Opcode::MTCTR)
    return false; // CTR is architectural loop state
  return true;
}

std::string Instr::str() const {
  const OpcodeInfo &Info = opcodeInfo(Op);
  std::string S(Info.Name);
  auto Mem = [&](Reg Base) {
    std::string M = std::to_string(Imm) + "(" + Base.str() + ")";
    if (MemSize != 4)
      M += ":" + std::to_string(static_cast<int>(MemSize));
    if (!Sym.empty())
      M += " !" + Sym;
    if (IsVolatile)
      M += " !volatile";
    if (SpecSafe)
      M += " !safe";
    return M;
  };
  switch (Op) {
  case Opcode::LI:
    return S + " " + Dst.str() + " = " + std::to_string(Imm);
  case Opcode::LR:
  case Opcode::NEG:
  case Opcode::MTCTR:
    return S + " " + Dst.str() + " = " + Src1.str();
  case Opcode::LTOC:
    return S + " " + Dst.str() + " = ." + Sym;
  case Opcode::L:
  case Opcode::LU:
    return S + " " + Dst.str() + " = " + Mem(Src1);
  case Opcode::ST:
    return S + " " + Mem(Src2) + " = " + Src1.str();
  case Opcode::C:
    return S + " " + Dst.str() + " = " + Src1.str() + ", " + Src2.str();
  case Opcode::CI:
    return S + " " + Dst.str() + " = " + Src1.str() + ", " +
           std::to_string(Imm);
  case Opcode::B:
    return S + " " + Target;
  case Opcode::BT:
  case Opcode::BF:
    return S + " " + Target + ", " + Src1.str() + "." +
           std::string(crBitName(Bit));
  case Opcode::BCT:
    return S + " " + Target;
  case Opcode::CALL:
    return S + " " + Sym + ", " + std::to_string(Imm);
  case Opcode::RET:
    return S;
  default:
    break;
  }
  // Generic ALU forms.
  if (Info.HasImm)
    return S + " " + Dst.str() + " = " + Src1.str() + ", " +
           std::to_string(Imm);
  return S + " " + Dst.str() + " = " + Src1.str() + ", " + Src2.str();
}
