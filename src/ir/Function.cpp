//===- ir/Function.cpp - Function implementation --------------------------===//

#include "ir/Function.h"

#include <algorithm>

using namespace vsc;

BasicBlock *Function::addBlock(std::string Label) {
  assert(!findBlock(Label) && "duplicate block label");
  Blocks.push_back(std::make_unique<BasicBlock>(std::move(Label)));
  noteCfgEdit();
  return Blocks.back().get();
}

BasicBlock *Function::insertBlock(size_t Index, const std::string &Hint) {
  assert(Index <= Blocks.size() && "insert position out of range");
  auto BB = std::make_unique<BasicBlock>(freshLabel(Hint));
  BasicBlock *Ptr = BB.get();
  Blocks.insert(Blocks.begin() + Index, std::move(BB));
  noteCfgEdit();
  return Ptr;
}

void Function::eraseBlock(size_t Index) {
  assert(Index < Blocks.size() && "erase position out of range");
  Blocks.erase(Blocks.begin() + Index);
  noteCfgEdit();
}

void Function::moveBlock(size_t From, size_t To) {
  assert(From < Blocks.size() && To < Blocks.size() && "bad move");
  if (From == To)
    return;
  auto BB = std::move(Blocks[From]);
  Blocks.erase(Blocks.begin() + From);
  Blocks.insert(Blocks.begin() + To, std::move(BB));
  noteCfgEdit();
}

BasicBlock *Function::findBlock(const std::string &L) const {
  for (const auto &BB : Blocks)
    if (BB->label() == L)
      return BB.get();
  return nullptr;
}

size_t Function::indexOf(const BasicBlock *BB) const {
  for (size_t I = 0, E = Blocks.size(); I != E; ++I)
    if (Blocks[I].get() == BB)
      return I;
  assert(false && "block not in function");
  return ~size_t(0);
}

std::string Function::freshLabel(const std::string &Hint) {
  while (true) {
    std::string L = Hint + "." + std::to_string(NextLabelId++);
    if (!findBlock(L))
      return L;
  }
}

void Function::reserveRegsFrom(const Instr &I) {
  auto Note = [&](Reg R) {
    if (R.isGpr() && R.id() >= NextGpr)
      NextGpr = R.id() + 1;
    else if (R.isCr() && R.id() >= NextCr)
      NextCr = R.id() + 1;
  };
  Note(I.Dst);
  Note(I.Src1);
  Note(I.Src2);
}

void Function::renumber() {
  NextInstrId = 1;
  for (auto &BB : Blocks)
    for (Instr &I : BB->instrs())
      I.Id = NextInstrId++;
}

size_t Function::instrCount() const {
  size_t N = 0;
  for (const auto &BB : Blocks)
    N += BB->size();
  return N;
}
