//===- ir/Opcode.h - Instruction opcodes ----------------------*- C++ -*-===//
///
/// \file
/// Opcodes of the POWER-flavoured IR, plus a static trait table. The
/// mnemonics follow the listings in the paper (L, ST, LR, LI, AI, C, BT, BF,
/// BCT, ...) so the examples in the paper can be written down verbatim.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_IR_OPCODE_H
#define VSC_IR_OPCODE_H

#include <cstdint>
#include <string_view>

namespace vsc {

enum class Opcode : uint8_t {
  // Moves and immediates.
  LI,   ///< rt = imm
  LR,   ///< rt = rs (register copy; the paper's non-coalesceable LR)
  // Integer ALU, register-register.
  A,    ///< rt = ra + rb
  S,    ///< rt = ra - rb
  MUL,  ///< rt = ra * rb
  DIV,  ///< rt = ra / rb (signed; divide by zero traps)
  AND,  ///< rt = ra & rb
  OR,   ///< rt = ra | rb
  XOR,  ///< rt = ra ^ rb
  SL,   ///< rt = ra << (rb & 63)
  SR,   ///< rt = (uint64)ra >> (rb & 63)
  SRA,  ///< rt = ra >> (rb & 63) (arithmetic)
  // Integer ALU, register-immediate.
  AI,   ///< rt = ra + imm
  SI,   ///< rt = ra - imm
  MULI, ///< rt = ra * imm
  ANDI, ///< rt = ra & imm
  ORI,  ///< rt = ra | imm
  XORI, ///< rt = ra ^ imm
  SLI,  ///< rt = ra << imm
  SRI,  ///< rt = (uint64)ra >> imm
  SRAI, ///< rt = ra >> imm (arithmetic)
  NEG,  ///< rt = -ra
  // Memory. Addresses are base register + displacement; an optional symbol
  // annotation ("!a") records which global the access is known to touch.
  L,    ///< rt = size[disp(ra)] (sign-extending load)
  LU,   ///< rt = size[disp(ra)]; ra += disp (load with update, cf. LHAU)
  ST,   ///< size[disp(ra)] = rs
  LTOC, ///< rt = &sym (load of an address constant from the TOC)
  LA,   ///< rt = ra + imm (address arithmetic; alias-analysis-transparent)
  // Compares. Write a condition register with lt/eq/gt bits.
  C,    ///< crX = compare(ra, rb)
  CI,   ///< crX = compare(ra, imm)
  // Branches.
  B,    ///< goto target
  BT,   ///< if (crX.bit) goto target
  BF,   ///< if (!crX.bit) goto target
  BCT,  ///< if (--ctr != 0) goto target (branch on count)
  MTCTR,///< ctr = ra
  // Calls and returns. Args in r3..r10, result in r3.
  CALL, ///< call sym (Imm holds the argument count)
  RET,  ///< return (r3 holds the result)
  NumOpcodes
};

/// Condition-register bit tested by BT/BF and produced by C/CI.
enum class CrBit : uint8_t { Lt, Gt, Eq };

/// Which execution unit class an opcode occupies in the timing model.
enum class UnitKind : uint8_t { Fxu, Bu, None };

/// Static properties of an opcode.
struct OpcodeInfo {
  std::string_view Name;
  UnitKind Unit;
  bool HasDst : 1;      ///< writes Dst
  uint8_t NumSrcs : 2;  ///< register sources read (Src1/Src2)
  bool HasImm : 1;      ///< carries an immediate / displacement
  bool IsLoad : 1;
  bool IsStore : 1;
  bool IsBranch : 1;    ///< any control transfer (B/BT/BF/BCT)
  bool IsCondBranch : 1;
  bool IsCall : 1;
};

/// \returns the trait record for \p Op.
const OpcodeInfo &opcodeInfo(Opcode Op);

inline std::string_view opcodeName(Opcode Op) { return opcodeInfo(Op).Name; }

/// \returns the printable name of a CR bit ("lt", "gt", "eq").
std::string_view crBitName(CrBit Bit);

} // namespace vsc

#endif // VSC_IR_OPCODE_H
