//===- ir/Parser.h - Textual IR parser ------------------------*- C++ -*-===//
///
/// \file
/// Parses the textual syntax produced by ir/Printer.h. This exists so tests
/// and examples can state programs (including the paper's listings) as
/// readable text. Comments run from "//" or ";" to end of line.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_IR_PARSER_H
#define VSC_IR_PARSER_H

#include <memory>
#include <string>
#include <string_view>

namespace vsc {

class Module;

/// Parses \p Text into a module. On failure returns null and, if \p Err is
/// non-null, stores a "line N: message" diagnostic into it.
std::unique_ptr<Module> parseModule(std::string_view Text,
                                    std::string *Err = nullptr);

} // namespace vsc

#endif // VSC_IR_PARSER_H
