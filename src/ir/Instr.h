//===- ir/Instr.h - IR instruction ----------------------------*- C++ -*-===//
///
/// \file
/// A single IR instruction. One struct covers the whole instruction set;
/// which fields are meaningful is determined by the opcode traits
/// (ir/Opcode.h). Helper functions expose uses/defs including the implicit
/// effects of calls and returns, and the speculation-safety queries the
/// scheduling passes need.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_IR_INSTR_H
#define VSC_IR_INSTR_H

#include "ir/Opcode.h"
#include "ir/Reg.h"

#include <cstdint>
#include <string>
#include <vector>

namespace vsc {

struct Instr {
  Opcode Op = Opcode::LI;
  /// Destination register: GPR for ALU/loads, CR for compares, CTR for
  /// MTCTR. Invalid when the opcode has no destination.
  Reg Dst;
  /// First register source. For BT/BF this is the condition register read.
  Reg Src1;
  /// Second register source. For ST this is the *base* register (Src1 is
  /// the stored value).
  Reg Src2;
  /// Immediate operand, memory displacement, or CALL argument count.
  int64_t Imm = 0;
  /// Global symbol: LTOC target, CALL callee, or the alias annotation on a
  /// memory access (the paper's "a(r4,12)" notation — access is known to
  /// touch global \c Sym).
  std::string Sym;
  /// Branch target label for B/BT/BF/BCT.
  std::string Target;
  /// Condition bit tested by BT/BF.
  CrBit Bit = CrBit::Eq;
  /// Access width in bytes for L/LU/ST: 1, 2, 4 or 8. Loads sign-extend.
  uint8_t MemSize = 4;
  /// Volatile memory access (shared variable / memory-mapped I/O); such
  /// accesses are never moved or deleted.
  bool IsVolatile = false;
  /// Load known safe to execute speculatively (cannot trap): set by the
  /// producer when the address is provably valid-or-page-zero, e.g. the
  /// paper's car(car(NIL)) trick of mapping page zero readable [5]. Printed
  /// as the "!safe" annotation.
  bool SpecSafe = false;
  /// Unique id within the containing function (assigned by Function).
  uint32_t Id = 0;

  bool isBranch() const { return opcodeInfo(Op).IsBranch; }
  bool isCondBranch() const { return opcodeInfo(Op).IsCondBranch; }
  bool isUncondBranch() const { return Op == Opcode::B; }
  bool isLoad() const { return opcodeInfo(Op).IsLoad; }
  bool isStore() const { return opcodeInfo(Op).IsStore; }
  bool isMemAccess() const { return isLoad() || isStore(); }
  bool isCall() const { return Op == Opcode::CALL; }
  bool isRet() const { return Op == Opcode::RET; }
  /// \returns true if this instruction ends a basic block's instruction
  /// stream unconditionally (execution never falls through it).
  bool isBarrier() const { return Op == Opcode::B || Op == Opcode::RET; }
  /// \returns true for any instruction after which control may leave the
  /// block (branches, returns).
  bool isTerminator() const { return isBranch() || isRet(); }

  /// \returns the base register of a memory access.
  Reg memBase() const {
    return Op == Opcode::ST ? Src2 : Src1;
  }
  /// \returns the displacement of a memory access.
  int64_t memDisp() const { return Imm; }

  /// Appends every register this instruction reads to \p Uses, including
  /// implicit uses (CALL argument registers, RET's r3, BCT's CTR).
  void collectUses(std::vector<Reg> &Uses) const;

  /// Appends every register this instruction writes to \p Defs, including
  /// implicit defs (CALL's clobbers, BCT's CTR decrement).
  void collectDefs(std::vector<Reg> &Defs) const;

  /// \returns true if executing this instruction when it would not have
  /// executed in the original program can neither trap nor change
  /// program-visible state: no stores, calls, returns, branches, volatile
  /// accesses, or potentially-trapping arithmetic. Loads are NOT considered
  /// safe here; load safety is a separate, flow-sensitive question
  /// (analysis/SafeLoads).
  bool isSafeToSpeculate() const;

  /// \returns true if this instruction has an effect beyond writing its
  /// destination registers (memory store, I/O, control flow, call).
  bool hasSideEffects() const;

  /// Renders the instruction in the textual syntax (without trailing
  /// newline), e.g. "L r4 = 12(r8) !a" or "BT found, cr0.eq".
  std::string str() const;
};

} // namespace vsc

#endif // VSC_IR_INSTR_H
