//===- ir/Module.h - Translation unit -------------------------*- C++ -*-===//
///
/// \file
/// A module: global variables (addressed through the TOC, as on the
/// RS/6000) plus functions.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_IR_MODULE_H
#define VSC_IR_MODULE_H

#include "ir/Function.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace vsc {

/// A statically-allocated global variable.
struct Global {
  std::string Name;
  /// Size in bytes. The load/store-motion safety rule checks this against
  /// the accessed displacement ("sufficient size").
  uint64_t Size = 0;
  /// Initial contents; zero-filled up to Size if shorter.
  std::vector<uint8_t> Init;
  /// Volatile globals are never register-cached.
  bool IsVolatile = false;
};

class Module {
public:
  Function *addFunction(std::string Name, unsigned NumArgs = 0) {
    Functions.push_back(
        std::make_unique<Function>(std::move(Name), NumArgs));
    return Functions.back().get();
  }

  Function *findFunction(const std::string &Name) const {
    for (const auto &F : Functions)
      if (F->name() == Name)
        return F.get();
    return nullptr;
  }

  Global &addGlobal(std::string Name, uint64_t Size) {
    Globals.push_back(Global{std::move(Name), Size, {}, false});
    return Globals.back();
  }

  const Global *findGlobal(const std::string &Name) const {
    for (const Global &G : Globals)
      if (G.Name == Name)
        return &G;
    return nullptr;
  }

  std::vector<std::unique_ptr<Function>> &functions() { return Functions; }
  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Functions;
  }
  std::vector<Global> &globals() { return Globals; }
  const std::vector<Global> &globals() const { return Globals; }

  /// Total static instruction count across all functions.
  size_t instrCount() const {
    size_t N = 0;
    for (const auto &F : Functions)
      N += F->instrCount();
    return N;
  }

private:
  std::vector<std::unique_ptr<Function>> Functions;
  std::vector<Global> Globals;
};

} // namespace vsc

#endif // VSC_IR_MODULE_H
