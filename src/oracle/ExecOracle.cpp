//===- oracle/ExecOracle.cpp - Differential execution oracle ----------------===//

#include "oracle/ExecOracle.h"

#include "audit/PassAudit.h" // cloneFunction
#include "ir/Printer.h"
#include "support/ThreadPool.h"

#include <algorithm>

using namespace vsc;

const char *vsc::oracleLevelName(OracleLevel L) {
  switch (L) {
  case OracleLevel::Off:
    return "off";
  case OracleLevel::Boundaries:
    return "boundaries";
  case OracleLevel::Full:
    return "full";
  }
  return "?";
}

namespace {

/// SplitMix64, as in workloads/RandomProgram.cpp.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed + 0x9e3779b97f4a7c15ULL) {}

  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }
  int64_t range(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(next() %
                                     static_cast<uint64_t>(Hi - Lo + 1));
  }

private:
  uint64_t State;
};

std::string argsStr(const std::vector<int64_t> &Args) {
  std::string S = "[";
  for (size_t I = 0; I != Args.size(); ++I)
    S += (I ? "," : "") + std::to_string(Args[I]);
  return S + "]";
}

InterpResult runVersion(InterpSession &S, const Function &Body,
                        const std::vector<int64_t> &Args,
                        const OracleOptions &Opts, bool TraceMemory = false,
                        bool TraceExec = false) {
  InterpOptions IO;
  IO.EntryFunction = Body.name();
  IO.Args = Args;
  IO.Input = Opts.Input;
  IO.MaxSteps = Opts.MaxSteps;
  IO.MemBytes = Opts.MemBytes;
  IO.PageZeroReadable = Opts.PageZeroReadable;
  IO.TraceMemory = TraceMemory;
  IO.TraceExec = TraceExec;
  IO.Override = &Body;
  return S.run(IO);
}

/// Fixed argument vectors plus coverage-guided random ones, derived by
/// executing \p Body: a vector earns its battery slot by reaching a block
/// no earlier vector reached (the first conclusive vector always
/// qualifies).
std::vector<std::vector<int64_t>>
buildBattery(const Function &Body, InterpSession &S,
             const OracleOptions &Opts) {
  unsigned K = Body.numArgs();
  std::vector<std::vector<int64_t>> Candidates;
  auto FromPattern = [&](std::vector<int64_t> Pattern) {
    std::vector<int64_t> V(K);
    for (unsigned I = 0; I != K; ++I)
      V[I] = Pattern[I % Pattern.size()];
    Candidates.push_back(std::move(V));
  };
  FromPattern({0});
  if (K) {
    FromPattern({1});
    FromPattern({2});
    FromPattern({6});
    FromPattern({-1, 63});
    FromPattern({5, 3, 7});
    Rng R(Opts.Seed ^ std::hash<std::string>()(Body.name()));
    for (unsigned T = 0; T != Opts.RandomTries; ++T) {
      std::vector<int64_t> V(K);
      for (unsigned I = 0; I != K; ++I)
        V[I] = R.range(-64, 64);
      Candidates.push_back(std::move(V));
    }
  }

  std::vector<std::vector<int64_t>> Battery;
  std::unordered_set<const BasicBlock *> Covered;
  for (auto &V : Candidates) {
    if (Battery.size() >= Opts.MaxInputs)
      break;
    InterpResult R = runVersion(S, Body, V, Opts);
    if (R.BudgetExceeded)
      continue; // inconclusive input: skip rather than half-compare
    bool New = Battery.empty();
    for (const BasicBlock *BB : R.Coverage)
      if (Covered.insert(BB).second)
        New = true;
    if (New)
      Battery.push_back(std::move(V));
  }
  return Battery;
}

/// Interleaves the two execution traces around their first difference.
std::string traceDiff(const std::vector<std::string> &B,
                      const std::vector<std::string> &A) {
  size_t N = std::min(B.size(), A.size());
  size_t D = 0;
  while (D < N && B[D] == A[D])
    ++D;
  size_t Lo = D > 8 ? D - 8 : 0;
  std::string Out;
  if (Lo)
    Out += "  ... " + std::to_string(Lo) + " identical step(s) ...\n";
  for (size_t I = Lo; I < std::min(D + 8, std::max(B.size(), A.size()));
       ++I) {
    bool Same = I < N && B[I] == A[I];
    if (Same) {
      Out += "  = " + B[I] + "\n";
    } else {
      if (I < B.size())
        Out += "  < " + B[I] + "\n";
      if (I < A.size())
        Out += "  > " + A[I] + "\n";
    }
  }
  if (B.size() != A.size())
    Out += "  (trace lengths: before " + std::to_string(B.size()) +
           ", after " + std::to_string(A.size()) + ")\n";
  return Out;
}

/// Compares one input vector; appends a divergence on mismatch.
void compareOnInput(const Function &Before, const Function &After,
                    InterpSession &S, const std::string &Pass,
                    const std::vector<int64_t> &Args,
                    const OracleOptions &Opts, OracleResult &R) {
  InterpResult RB = runVersion(S, Before, Args, Opts);
  InterpResult RA = runVersion(S, After, Args, Opts);
  if (RB.BudgetExceeded || RA.BudgetExceeded)
    return; // inconclusive on this input

  std::string Detail;
  std::string FB = RB.fingerprint(), FA = RA.fingerprint();
  if (FB != FA)
    Detail = "fingerprint mismatch:\n  before: " + FB + "\n  after:  " + FA;
  else if (Opts.CompareStoreTrace && (RB.StoreDigest != RA.StoreDigest ||
                                      RB.StoreCount != RA.StoreCount))
    Detail = "store trace mismatch (before " + std::to_string(RB.StoreCount) +
             " store(s), after " + std::to_string(RA.StoreCount) + ")";
  else if (Opts.CompareCallTrace && (RB.CallDigest != RA.CallDigest ||
                                     RB.CallCount != RA.CallCount))
    Detail = "call trace mismatch (before " + std::to_string(RB.CallCount) +
             " call(s), after " + std::to_string(RA.CallCount) + ")";
  if (Detail.empty())
    return;
  R.Divergences.push_back(OracleDivergence{Pass, Before.name(), Args,
                                           std::move(Detail)});
}

void renderReport(const Function &Before, const Function &After,
                  InterpSession &S, const OracleOptions &Opts,
                  OracleResult &R) {
  if (R.ok())
    return;
  const OracleDivergence &D = R.Divergences.front();
  R.Report += "ExecOracle: " + std::to_string(R.Divergences.size()) +
              " divergence(s) after '" + D.Pass + "' in '" + D.Fn + "'\n";
  R.Report += "reproducing input: args " + argsStr(D.Args) + ", read_int " +
              argsStr(Opts.Input) + "\n";
  R.Report += D.Detail + "\n";
  // Replay the first divergence with full tracing for the interleaved
  // dump.
  InterpResult RB = runVersion(S, Before, D.Args, Opts, /*TraceMemory=*/true,
                               /*TraceExec=*/true);
  InterpResult RA = runVersion(S, After, D.Args, Opts, /*TraceMemory=*/true,
                               /*TraceExec=*/true);
  R.Report += "--- interleaved execution trace (= common, < before, > "
              "after) ---\n" +
              traceDiff(RB.ExecTrace, RA.ExecTrace);
  R.Report += "--- '" + Before.name() + "' before '" + D.Pass + "' ---\n" +
              printFunction(Before);
  R.Report += "--- '" + After.name() + "' after '" + D.Pass + "' ---\n" +
              printFunction(After);
}

OracleResult diffWithBattery(const Function &Before, const Function &After,
                             InterpSession &S, const std::string &Pass,
                             const OracleOptions &Opts,
                             const std::vector<std::vector<int64_t>> &Battery) {
  OracleResult R;
  for (const auto &Args : Battery) {
    compareOnInput(Before, After, S, Pass, Args, Opts, R);
    if (!R.ok())
      break; // first reproducing input is enough for the report
  }
  renderReport(Before, After, S, Opts, R);
  return R;
}

} // namespace

OracleResult vsc::diffFunctions(const Function &Before, const Function &After,
                                const Module &M, const std::string &Pass,
                                const OracleOptions &Opts) {
  InterpSession S(M);
  return diffWithBattery(Before, After, S, Pass, Opts,
                         buildBattery(Before, S, Opts));
}

OracleResult ExecOracle::begin(const Module &M) {
  OracleResult R;
  if (!enabled())
    return R;
  for (const auto &F : M.functions()) {
    SnapText[F->name()] = printFunction(*F);
    Snap[F->name()] = cloneFunction(*F);
  }
  return R;
}

void ExecOracle::diffOne(const Function &F, InterpSession &S,
                         const std::string &Stage, OracleResult &R,
                         std::vector<const Function *> &Changed) {
  std::string Text = printFunction(F);
  auto TextIt = SnapText.find(F.name());
  if (TextIt != SnapText.end() && TextIt->second == Text)
    return; // untouched since the last clean checkpoint
  Changed.push_back(&F);
  auto SnapIt = Snap.find(F.name());
  if (SnapIt == Snap.end())
    return; // new function: becomes a baseline at finalize
  auto BatIt = Battery.find(F.name());
  if (BatIt == Battery.end())
    BatIt = Battery
                .emplace(F.name(),
                         buildBattery(*SnapIt->second, S, Opts))
                .first;
  OracleResult D =
      diffWithBattery(*SnapIt->second, F, S, Stage, Opts, BatIt->second);
  for (OracleDivergence &Div : D.Divergences)
    R.Divergences.push_back(std::move(Div));
  R.Report += D.Report;
}

void ExecOracle::finalize(OracleResult &R,
                          const std::vector<const Function *> &Changed) {
  if (!R.ok())
    return; // keep the snapshots: the caller can replay against them
  for (const Function *F : Changed) {
    SnapText[F->name()] = printFunction(*F);
    Snap[F->name()] = cloneFunction(*F);
  }
}

OracleResult ExecOracle::checkpoint(const Module &M,
                                    const std::string &Stage) {
  OracleResult R;
  if (!enabled())
    return R;
  std::vector<const Function *> Changed;
  // Detection and battery construction stay serial: coverage-guided
  // battery selection is order-dependent, and both are cheap next to the
  // differential runs. Only the per-function comparisons fan out.
  std::vector<const Function *> Compare;
  {
    InterpSession S(M);
    for (const auto &F : M.functions()) {
      std::string Text = printFunction(*F);
      auto TextIt = SnapText.find(F->name());
      if (TextIt != SnapText.end() && TextIt->second == Text)
        continue; // untouched since the last clean checkpoint
      Changed.push_back(F.get());
      auto SnapIt = Snap.find(F->name());
      if (SnapIt == Snap.end())
        continue; // new function: becomes a baseline at finalize
      if (!Battery.count(F->name()))
        Battery.emplace(F->name(), buildBattery(*SnapIt->second, S, Opts));
      Compare.push_back(F.get());
    }
  }

  unsigned T = Opts.Threads ? std::min(Opts.Threads, 64u)
                            : ThreadPool::defaultThreadCount();
  std::vector<OracleResult> Results(Compare.size());
  if (T <= 1 || Compare.size() <= 1) {
    InterpSession S(M);
    for (size_t I = 0; I != Compare.size(); ++I)
      Results[I] = diffWithBattery(*Snap.at(Compare[I]->name()),
                                   *Compare[I], S, Stage, Opts,
                                   Battery.at(Compare[I]->name()));
  } else {
    ThreadPool Pool(T);
    Pool.parallelFor(Compare.size(), [&](size_t I) {
      InterpSession S(M); // one session per task: no shared mutable state
      Results[I] = diffWithBattery(*Snap.at(Compare[I]->name()),
                                   *Compare[I], S, Stage, Opts,
                                   Battery.at(Compare[I]->name()));
    });
  }
  // Positional merge: reports are identical at every thread count.
  for (OracleResult &D : Results) {
    for (OracleDivergence &Div : D.Divergences)
      R.Divergences.push_back(std::move(Div));
    R.Report += D.Report;
  }
  finalize(R, Changed);
  return R;
}

OracleResult ExecOracle::checkpointFunction(const Function &F,
                                            const Module &M,
                                            const std::string &Stage) {
  OracleResult R;
  if (!enabled())
    return R;
  std::vector<const Function *> Changed;
  InterpSession S(M);
  diffOne(F, S, Stage, R, Changed);
  finalize(R, Changed);
  return R;
}
