//===- oracle/ExecOracle.h - Differential execution oracle ----*- C++ -*-===//
///
/// \file
/// Per-pass translation validation by differential execution: where
/// audit/PassAudit.h proves static invariants at pass boundaries, this
/// harness proves observable behaviour unchanged on concrete inputs. It
/// keeps a snapshot of every function (like PassAudit); at each checkpoint
/// every function whose text changed is executed — snapshot body vs
/// current body, via oracle/Interp.h with InterpOptions::Override — on a
/// battery of inputs (fixed vectors plus coverage-guided random ones), and
/// the observable state is diffed: trap status, return value, output,
/// final memory, and the volatile/builtin effect trace. Optionally the
/// full store and call traces are compared too, for passes that must
/// preserve them exactly (unroll, rename, scheduling) — the default leaves
/// them off because store sinking (LoadStoreMotion) and inlining legally
/// change them.
///
/// On divergence the report names the offending pass and function, the
/// reproducing input vector, an IR dump of both versions and an
/// interleaved execution trace around the first difference.
///
/// Wired into vliw/Pipeline as PipelineOptions::Oracle:
///  * Off        — no dynamic validation (the default).
///  * Boundaries — validate at the module-level stage boundaries the
///                 verifier and PassAudit already use.
///  * Full       — additionally validate after every individual VLIW pass
///                 inside the per-function pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_ORACLE_EXECORACLE_H
#define VSC_ORACLE_EXECORACLE_H

#include "oracle/Interp.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace vsc {

/// How much differential execution the pipeline performs.
enum class OracleLevel { Off, Boundaries, Full };

/// Human-readable name ("off", "boundaries", "full").
const char *oracleLevelName(OracleLevel L);

struct OracleOptions {
  /// Seed for the random part of the input battery (deterministic).
  uint64_t Seed = 0x5eed;
  /// Random argument vectors tried during battery construction.
  unsigned RandomTries = 5;
  /// Cap on battery size (fixed + kept random vectors).
  unsigned MaxInputs = 6;
  /// Per-run step budget; runs exceeding it are skipped as inconclusive,
  /// never reported as divergences.
  uint64_t MaxSteps = 80'000;
  uint64_t MemBytes = 1u << 20;
  /// Mirror of MachineModel::PageZeroReadable.
  bool PageZeroReadable = true;
  /// Also require the digest of all global-area stores / of all calls to
  /// match. Sound only for passes that preserve those traces; see file
  /// comment.
  bool CompareStoreTrace = false;
  bool CompareCallTrace = false;
  /// read_int stream fed to every run.
  std::vector<int64_t> Input = {5, -3, 17, 0, 9, 1, 42, 7};
  /// Worker threads for module-level checkpoints: changed functions are
  /// differentially executed in parallel, one interpreter session per
  /// task, results merged in function order (so reports are identical at
  /// every thread count). Battery construction stays serial — coverage-
  /// guided selection is order-dependent. 0 defers to VSC_THREADS.
  unsigned Threads = 1;
};

/// One observed behaviour difference.
struct OracleDivergence {
  std::string Pass;
  std::string Fn;
  /// Argument vector that exposed it.
  std::vector<int64_t> Args;
  /// What differed (fingerprints, trace digests, ...).
  std::string Detail;
};

struct OracleResult {
  std::vector<OracleDivergence> Divergences;
  /// Printable diagnosis: divergences, both IR versions and an interleaved
  /// execution trace around the first difference.
  std::string Report;

  bool ok() const { return Divergences.empty(); }
};

/// Differentially executes two versions of one function against module
/// \p M (either version may live in M or stand alone; lookup of the
/// entry and of recursive self-calls is overridden per run). The battery
/// is derived from \p Before. \p Pass is stamped into any divergence.
OracleResult diffFunctions(const Function &Before, const Function &After,
                           const Module &M, const std::string &Pass,
                           const OracleOptions &Opts = {});

class ExecOracle {
public:
  ExecOracle(OracleLevel Level, OracleOptions Opts = {})
      : Level(Level), Opts(std::move(Opts)) {}

  OracleLevel level() const { return Level; }
  bool enabled() const { return Level != OracleLevel::Off; }
  /// \returns true when per-sub-pass checkpoints should run.
  bool full() const { return Level == OracleLevel::Full; }

  /// First checkpoint: snapshots every function (no execution yet).
  OracleResult begin(const Module &M);

  /// Differentially executes every function of \p M whose printed form
  /// changed since its snapshot. Advances the snapshots only when clean.
  OracleResult checkpoint(const Module &M, const std::string &Stage);

  /// Single-function checkpoint (per-sub-pass validation at Full level).
  OracleResult checkpointFunction(const Function &F, const Module &M,
                                  const std::string &Stage);

private:
  void diffOne(const Function &F, InterpSession &S, const std::string &Stage,
               OracleResult &R, std::vector<const Function *> &Changed);
  void finalize(OracleResult &R,
                const std::vector<const Function *> &Changed);

  OracleLevel Level;
  OracleOptions Opts;
  std::unordered_map<std::string, std::unique_ptr<Function>> Snap;
  std::unordered_map<std::string, std::string> SnapText;
  /// Input battery per function, built lazily from the first snapshot that
  /// needs it and reused for every later stage.
  std::unordered_map<std::string, std::vector<std::vector<int64_t>>> Battery;
};

} // namespace vsc

#endif // VSC_ORACLE_EXECORACLE_H
