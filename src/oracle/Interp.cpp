//===- oracle/Interp.cpp - Reference IR interpreter -------------------------===//
///
/// Executes over the predecoded flat records of sim/Predecode.h
/// (predecodeFunction): branch targets are block indices, globals are
/// resolved addresses, callees are resolved pointers — the per-block label
/// scans and per-instruction symbol lookups of the original walking
/// interpreter are gone. Images are decoded per function on first entry
/// and cached in the session (the oracle runs each function on a whole
/// input battery, so the decode amortizes to nothing). Semantics are
/// unchanged: contract-preserved registers at calls, trap-free !safe
/// loads, identical trap messages, traces and fingerprints.
///
//===----------------------------------------------------------------------===//

#include "oracle/Interp.h"

#include "ir/Abi.h"
#include "sim/Predecode.h"
#include "sim/Simulator.h" // computeGlobalLayout

#include <algorithm>
#include <cstring>

using namespace vsc;

namespace vsc {

/// The per-module precomputation a session carries: global layout,
/// flattened initializer bytes, the function name map Module::findFunction
/// would otherwise re-derive by linear scan on every call, the per-function
/// decoded images (built on first entry), and the pooled memory arena runs
/// reuse. Sessions are single-threaded (the oracle creates one per task),
/// so the image cache needs no locking.
struct InterpSession::Impl {
  const Module &M;
  std::unordered_map<std::string, uint64_t> GlobalBase;
  uint64_t DataEnd = 4096;
  /// Initializers flattened to one byte image for [4096, 4096 + size()).
  std::vector<uint8_t> DataInit;
  /// First function of each name, mirroring Module::findFunction.
  std::unordered_map<std::string, const Function *> FuncByName;
  /// Decoded images, keyed by function identity so an Override body (not
  /// in FuncByName) gets its own entry. unique_ptr values keep references
  /// stable across rehashes while frames on the call stack point at them.
  std::unordered_map<const Function *, std::unique_ptr<InterpImage>> Images;
  std::vector<uint8_t> MemPool;

  explicit Impl(const Module &M) : M(M) {
    GlobalBase = computeGlobalLayout(M);
    for (const Global &G : M.globals()) {
      uint64_t Addr = GlobalBase.at(G.Name);
      DataEnd = std::max(DataEnd, Addr + G.Size);
      if (!G.Init.empty() &&
          DataInit.size() < Addr - 4096 + G.Init.size())
        DataInit.resize(Addr - 4096 + G.Init.size(), 0);
      for (size_t I = 0; I != G.Init.size(); ++I)
        DataInit[Addr - 4096 + I] = G.Init[I];
    }
    for (const auto &F : M.functions())
      FuncByName.emplace(F->name(), F.get());
  }

  const InterpImage &imageFor(const Function *F) {
    auto It = Images.find(F);
    if (It == Images.end())
      It = Images
               .emplace(F, std::make_unique<InterpImage>(predecodeFunction(
                               *F, GlobalBase, FuncByName)))
               .first;
    return *It->second;
  }
};

} // namespace vsc

namespace {

constexpr uint64_t FnvOffset = 1469598103934665603ULL;
constexpr uint64_t FnvPrime = 1099511628211ULL;

inline void fnv(uint64_t &H, uint64_t V) {
  for (unsigned B = 0; B != 8; ++B) {
    H ^= (V >> (8 * B)) & 0xff;
    H *= FnvPrime;
  }
}

struct CrVal {
  bool Lt = false, Gt = false, Eq = false;

  bool bit(CrBit B) const {
    switch (B) {
    case CrBit::Lt:
      return Lt;
    case CrBit::Gt:
      return Gt;
    case CrBit::Eq:
      return Eq;
    }
    return false;
  }
  std::string str() const {
    return std::string(Lt ? "lt" : "") + (Gt ? "gt" : "") + (Eq ? "eq" : "");
  }
};

/// Architectural state. Virtual registers are function-private (saved and
/// restored at calls), as in the simulator.
struct RegFile {
  int64_t Phys[32] = {0};
  CrVal PhysCr[8];
  int64_t Ctr = 0;
  std::vector<int64_t> Virt;
  std::vector<CrVal> VirtCr;

  int64_t &gpr(uint32_t Id) {
    if (Id < 32)
      return Phys[Id];
    size_t V = Id - 32;
    if (V >= Virt.size())
      Virt.resize(V + 1, 0);
    return Virt[V];
  }
  CrVal &cr(uint32_t Id) {
    if (Id < 8)
      return PhysCr[Id];
    size_t V = Id - 8;
    if (V >= VirtCr.size())
      VirtCr.resize(V + 1);
    return VirtCr[V];
  }
};

/// Saved caller context. Besides the virtual registers, the interpreter
/// snapshots the call-preserved physical registers and restores them at
/// the matching return — the linkage contract itself, independent of
/// whether prologs have been inserted yet (see the header comment).
struct Frame {
  const Function *F = nullptr;
  const InterpImage *Img = nullptr;
  uint32_t BlockIdx = 0;
  uint32_t InstrIdx = 0; // flat index into Img->Instrs, past the CALL
  std::vector<int64_t> Virt;
  std::vector<CrVal> VirtCr;
  int64_t Preserved[32] = {0};
};

class Interp {
public:
  Interp(InterpSession::Impl &S, const InterpOptions &Opts,
         std::vector<uint8_t> &Mem)
      : S(S), Opts(Opts), Mem(Mem), DataEnd(S.DataEnd) {
    Mem.assign(Opts.MemBytes, 0);
    if (!S.DataInit.empty() && Mem.size() > 4096) {
      size_t N = std::min<size_t>(S.DataInit.size(), Mem.size() - 4096);
      std::memcpy(Mem.data() + 4096, S.DataInit.data(), N);
    }
  }

  InterpResult run() {
    InterpResult R;
    R.StoreDigest = FnvOffset;
    R.CallDigest = FnvOffset;
    const Function *F = resolve(Opts.EntryFunction);
    if (!F || F->blocks().empty()) {
      R.Trapped = true;
      R.TrapMsg = "no entry function '" + Opts.EntryFunction + "'";
      return R;
    }
    Regs.gpr(1) = static_cast<int64_t>(Mem.size() - 4096); // stack top
    Regs.gpr(2) = 4096;                                    // TOC anchor
    for (size_t I = 0; I < Opts.Args.size() && I < 8; ++I)
      Regs.gpr(3 + static_cast<uint32_t>(I)) = Opts.Args[I];

    CurF = F;
    Img = &S.imageFor(F);
    BlockIdx = 0;
    InstrIdx = Img->Blocks[0].FirstInstr;
    R.Coverage.insert(Img->Blocks[0].Origin);

    while (true) {
      const DecodedBlock *B = &Img->Blocks[BlockIdx];
      while (InstrIdx >= B->FirstInstr + B->NumInstrs) {
        if (BlockIdx + 1 >= Img->Blocks.size())
          return trap(R, "fell off the end of function " + CurF->name());
        ++BlockIdx;
        B = &Img->Blocks[BlockIdx];
        InstrIdx = B->FirstInstr;
        R.Coverage.insert(B->Origin);
      }
      const DecodedInstr &D = Img->Instrs[InstrIdx];
      ++InstrIdx;
      if (++R.Steps > Opts.MaxSteps) {
        R.BudgetExceeded = true;
        return finish(R);
      }

      bool Done = false;
      if (!step(D, R, Done))
        return finish(R); // trap already recorded
      if (Done)
        return finish(R);
    }
  }

private:
  /// Entry-function lookup honouring InterpOptions::Override (calls
  /// resolve through the image's cold callee table instead).
  const Function *resolve(const std::string &Name) const {
    if (Opts.Override && Opts.Override->name() == Name)
      return Opts.Override;
    auto It = S.FuncByName.find(Name);
    return It == S.FuncByName.end() ? nullptr : It->second;
  }

  int64_t readMem(uint64_t Addr, unsigned Size) const {
    uint64_t V = 0;
    for (unsigned B = 0; B != Size; ++B)
      V |= static_cast<uint64_t>(Mem[Addr + B]) << (8 * B);
    if (Size < 8) {
      uint64_t SignBit = 1ULL << (Size * 8 - 1);
      if (V & SignBit)
        V |= ~((SignBit << 1) - 1);
    }
    return static_cast<int64_t>(V);
  }

  InterpResult &trap(InterpResult &R, const std::string &Msg) {
    R.Trapped = true;
    R.TrapMsg = Msg;
    return finish(R);
  }

  InterpResult &finish(InterpResult &R) {
    uint64_t H = FnvOffset;
    for (uint64_t A = 4096; A < DataEnd && A < Mem.size(); ++A) {
      H ^= Mem[A];
      H *= FnvPrime;
    }
    R.MemDigest = H;
    return R;
  }

  void scrubCallClobbers(int64_t KeepArgs) {
    abi::forEachCallClobber([&](Reg D) {
      if (D.isGpr()) {
        if (D.id() >= 3 &&
            static_cast<int64_t>(D.id()) < 3 + std::min<int64_t>(KeepArgs, 8))
          return;
        Regs.gpr(D.id()) = abi::ClobberPoison;
      } else if (D.isCr()) {
        Regs.cr(D.id()) = CrVal{true, true, true};
      } else if (D.isCtr()) {
        Regs.Ctr = abi::ClobberPoison;
      }
    });
  }

  void traceStore(InterpResult &R, uint64_t Addr, unsigned Size, int64_t Val,
                  bool Volatile) {
    bool Observable = Volatile;
    bool InData = Addr >= 4096 && Addr < DataEnd;
    if (InData || Observable) {
      fnv(R.StoreDigest, Addr);
      fnv(R.StoreDigest, Size);
      fnv(R.StoreDigest, static_cast<uint64_t>(Val));
      ++R.StoreCount;
      if (Opts.TraceMemory || Observable) {
        std::string E = "ST:" + std::to_string(Size) + "[" +
                        std::to_string(Addr) + "]=" + std::to_string(Val) +
                        (Volatile ? " !volatile" : "");
        if (Observable)
          R.ObsTrace.push_back(E);
        if (Opts.TraceMemory)
          R.StoreTrace.push_back(std::move(E));
      }
    }
  }

  void traceCall(InterpResult &R, const Instr &I) {
    uint64_t ArgHash = FnvOffset;
    std::string ArgsStr;
    for (int64_t A = 0; A < std::min<int64_t>(I.Imm, 8); ++A) {
      int64_t V = Regs.gpr(3 + static_cast<uint32_t>(A));
      fnv(ArgHash, static_cast<uint64_t>(V));
      if (Opts.TraceMemory || abi::isBuiltin(I.Sym))
        ArgsStr += (A ? "," : "") + std::to_string(V);
    }
    for (char Ch : I.Sym)
      fnv(R.CallDigest, static_cast<uint8_t>(Ch));
    fnv(R.CallDigest, ArgHash);
    ++R.CallCount;
    if (Opts.TraceMemory || abi::isBuiltin(I.Sym)) {
      std::string E = "CALL:" + I.Sym + "(" + ArgsStr + ")";
      if (abi::isBuiltin(I.Sym))
        R.ObsTrace.push_back(E);
      if (Opts.TraceMemory)
        R.CallTrace.push_back(std::move(E));
    }
  }

  void traceExec(InterpResult &R, const Instr &I) {
    if (!Opts.TraceExec)
      return;
    if (R.ExecTrace.size() >= Opts.MaxExecTrace) {
      R.ExecTraceTruncated = true;
      return;
    }
    const DecodedBlock &B = Img->Blocks[BlockIdx];
    std::string Line = CurF->name() + ":" + B.Origin->label() + "+" +
                       std::to_string(InstrIdx - 1 - B.FirstInstr) + ": " +
                       I.str();
    // Values written, for trace diffing.
    if (opcodeInfo(I.Op).HasDst && I.Dst.isValid()) {
      if (I.Dst.isGpr())
        Line += " ; " + I.Dst.str() + "=" + std::to_string(Regs.gpr(I.Dst.id()));
      else if (I.Dst.isCr())
        Line += " ; " + I.Dst.str() + "=" + Regs.cr(I.Dst.id()).str();
      else if (I.Dst.isCtr())
        Line += " ; ctr=" + std::to_string(Regs.Ctr);
    }
    if (I.Op == Opcode::LU)
      Line += " ; " + I.Src1.str() + "=" + std::to_string(Regs.gpr(I.Src1.id()));
    R.ExecTrace.push_back(std::move(Line));
  }

  /// Executes one decoded record. \returns false on trap; sets \p Done
  /// when the program finished normally.
  bool step(const DecodedInstr &D, InterpResult &R, bool &Done);

  InterpSession::Impl &S;
  const InterpOptions &Opts;

  std::vector<uint8_t> &Mem;
  uint64_t DataEnd = 4096;

  RegFile Regs;
  const Function *CurF = nullptr;
  const InterpImage *Img = nullptr;
  uint32_t BlockIdx = 0;
  uint32_t InstrIdx = 0; // flat index into Img->Instrs
  std::vector<Frame> CallStack;
  size_t InputPos = 0;
};

bool Interp::step(const DecodedInstr &D, InterpResult &R, bool &Done) {
  Done = false;
  auto S1 = [&]() { return Regs.gpr(packedId(D.Src1)); };
  auto S2 = [&]() { return Regs.gpr(packedId(D.Src2)); };
  auto Dst = [&]() -> int64_t & { return Regs.gpr(packedId(D.Dst)); };
  // Cold-table row of this record (trap symbols, trace formatting,
  // resolved callee) — only touched off the happy path.
  size_t Idx = static_cast<size_t>(&D - Img->Instrs.data());

  bool Taken = false;
  Opcode Op = static_cast<Opcode>(D.Op); // interp images are never fused

  switch (Op) {
  case Opcode::LI:
    Dst() = D.Imm;
    break;
  case Opcode::LR:
    Dst() = S1();
    break;
  case Opcode::A:
    Dst() = static_cast<int64_t>(static_cast<uint64_t>(S1()) +
                                 static_cast<uint64_t>(S2()));
    break;
  case Opcode::S:
    Dst() = static_cast<int64_t>(static_cast<uint64_t>(S1()) -
                                 static_cast<uint64_t>(S2()));
    break;
  case Opcode::MUL:
    Dst() = static_cast<int64_t>(static_cast<uint64_t>(S1()) *
                                 static_cast<uint64_t>(S2()));
    break;
  case Opcode::DIV: {
    int64_t Dv = S2();
    if (Dv == 0) {
      trap(R, "divide by zero");
      return false;
    }
    if (S1() == INT64_MIN && Dv == -1)
      Dst() = INT64_MIN;
    else
      Dst() = S1() / Dv;
    break;
  }
  case Opcode::AND:
    Dst() = S1() & S2();
    break;
  case Opcode::OR:
    Dst() = S1() | S2();
    break;
  case Opcode::XOR:
    Dst() = S1() ^ S2();
    break;
  case Opcode::SL:
    Dst() = static_cast<int64_t>(static_cast<uint64_t>(S1()) << (S2() & 63));
    break;
  case Opcode::SR:
    Dst() = static_cast<int64_t>(static_cast<uint64_t>(S1()) >> (S2() & 63));
    break;
  case Opcode::SRA:
    Dst() = S1() >> (S2() & 63);
    break;
  case Opcode::AI:
  case Opcode::LA:
    Dst() = static_cast<int64_t>(static_cast<uint64_t>(S1()) +
                                 static_cast<uint64_t>(D.Imm));
    break;
  case Opcode::SI:
    Dst() = static_cast<int64_t>(static_cast<uint64_t>(S1()) -
                                 static_cast<uint64_t>(D.Imm));
    break;
  case Opcode::MULI:
    Dst() = static_cast<int64_t>(static_cast<uint64_t>(S1()) *
                                 static_cast<uint64_t>(D.Imm));
    break;
  case Opcode::ANDI:
    Dst() = S1() & D.Imm;
    break;
  case Opcode::ORI:
    Dst() = S1() | D.Imm;
    break;
  case Opcode::XORI:
    Dst() = S1() ^ D.Imm;
    break;
  case Opcode::SLI:
    Dst() = static_cast<int64_t>(static_cast<uint64_t>(S1()) << (D.Imm & 63));
    break;
  case Opcode::SRI:
    Dst() = static_cast<int64_t>(static_cast<uint64_t>(S1()) >> (D.Imm & 63));
    break;
  case Opcode::SRAI:
    Dst() = S1() >> (D.Imm & 63);
    break;
  case Opcode::NEG:
    Dst() = static_cast<int64_t>(0 - static_cast<uint64_t>(S1()));
    break;
  case Opcode::LTOC: {
    if (!D.globalKnown()) {
      trap(R, "LTOC of unknown global '" + Img->Origins[Idx]->Sym + "'");
      return false;
    }
    Dst() = D.Imm;
    break;
  }
  case Opcode::L:
  case Opcode::LU: {
    uint64_t Addr = static_cast<uint64_t>(S1() + D.Imm);
    int64_t V = 0;
    bool PageZero = Addr + D.MemSize <= 4096;
    bool Unmapped = !PageZero && (Addr < 4096 || Addr + D.MemSize > Mem.size());
    if ((PageZero && !Opts.PageZeroReadable) || Unmapped) {
      // The paper's !safe loads are guaranteed non-trapping: a faulting
      // speculative load reads zero instead of killing the program.
      if (!D.specSafe()) {
        trap(R, (Unmapped ? "load from unmapped address "
                          : "load from page zero at ") +
                    std::to_string(Addr));
        return false;
      }
      ++R.SpecFaults;
    } else if (!PageZero) {
      V = readMem(Addr, D.MemSize);
    }
    if (D.isVolatile())
      R.ObsTrace.push_back("L:" + std::to_string(D.MemSize) + "[" +
                           std::to_string(Addr) + "]=" + std::to_string(V) +
                           " !volatile");
    if (Op == Opcode::LU)
      Regs.gpr(packedId(D.Src1)) = S1() + D.Imm;
    Dst() = V;
    break;
  }
  case Opcode::ST: {
    uint64_t Addr = static_cast<uint64_t>(S2() + D.Imm);
    if (Addr < 4096 || Addr + D.MemSize > Mem.size()) {
      trap(R, "store to unmapped address " + std::to_string(Addr));
      return false;
    }
    int64_t Val = S1();
    for (unsigned B = 0; B != D.MemSize; ++B)
      Mem[Addr + B] =
          static_cast<uint8_t>(static_cast<uint64_t>(Val) >> (8 * B));
    traceStore(R, Addr, D.MemSize, Val, D.isVolatile());
    break;
  }
  case Opcode::C:
  case Opcode::CI: {
    int64_t A = S1();
    int64_t B = Op == Opcode::C ? S2() : D.Imm;
    CrVal &Cr = Regs.cr(packedId(D.Dst));
    Cr.Lt = A < B;
    Cr.Gt = A > B;
    Cr.Eq = A == B;
    break;
  }
  case Opcode::MTCTR:
    Regs.Ctr = S1();
    break;
  case Opcode::B:
    Taken = true;
    break;
  case Opcode::BT:
  case Opcode::BF: {
    bool Bit = Regs.cr(packedId(D.Src1)).bit(D.crBit());
    Taken = (Op == Opcode::BT) ? Bit : !Bit;
    break;
  }
  case Opcode::BCT:
    Taken = (--Regs.Ctr != 0);
    break;
  case Opcode::CALL:
  case Opcode::RET:
    break;
  default:
    trap(R, "unimplemented opcode");
    return false;
  }

  if (Opts.TraceExec)
    traceExec(R, *Img->Origins[Idx]);

  if (Op == Opcode::B ||
      ((Op == Opcode::BT || Op == Opcode::BF || Op == Opcode::BCT) && Taken)) {
    if (D.Target < 0) {
      trap(R, "branch to unknown label '" + Img->Origins[Idx]->Target + "'");
      return false;
    }
    BlockIdx = static_cast<uint32_t>(D.Target);
    InstrIdx = Img->Blocks[BlockIdx].FirstInstr;
    R.Coverage.insert(Img->Blocks[BlockIdx].Origin);
    return true;
  }

  if (Op == Opcode::CALL) {
    const Instr &OI = *Img->Origins[Idx];
    traceCall(R, OI);
    if (D.builtin() != SimBuiltin::None) {
      int64_t A0 = Regs.gpr(3);
      scrubCallClobbers(/*KeepArgs=*/0);
      switch (D.builtin()) {
      case SimBuiltin::PrintInt:
        R.Output += std::to_string(A0) + "\n";
        Regs.gpr(3) = A0;
        break;
      case SimBuiltin::PrintChar:
        R.Output += static_cast<char>(A0 & 0xff);
        Regs.gpr(3) = A0;
        break;
      case SimBuiltin::ReadInt:
        Regs.gpr(3) =
            InputPos < Opts.Input.size() ? Opts.Input[InputPos++] : 0;
        break;
      default: // exit
        R.ExitCode = A0;
        Done = true;
        break;
      }
      return true;
    }
    // Module-level resolution happened at decode time; the per-run
    // Override (same name, different body) is layered on top here.
    const Function *Callee =
        (Opts.Override && Opts.Override->name() == OI.Sym)
            ? Opts.Override
            : Img->Callees[Idx];
    if (!Callee || Callee->blocks().empty()) {
      trap(R, "call to unknown function '" + OI.Sym + "'");
      return false;
    }
    if (CallStack.size() >= Opts.MaxCallDepth) {
      trap(R, "call depth limit exceeded in '" + CurF->name() + "'");
      return false;
    }
    Frame Fr;
    Fr.F = CurF;
    Fr.Img = Img;
    Fr.BlockIdx = BlockIdx;
    Fr.InstrIdx = InstrIdx;
    Fr.Virt = std::move(Regs.Virt);
    Fr.VirtCr = std::move(Regs.VirtCr);
    for (uint32_t G = 0; G != 32; ++G)
      Fr.Preserved[G] = Regs.Phys[G];
    CallStack.push_back(std::move(Fr));
    Regs.Virt.clear();
    Regs.VirtCr.clear();
    scrubCallClobbers(D.Imm);
    CurF = Callee;
    Img = &S.imageFor(Callee);
    BlockIdx = 0;
    InstrIdx = Img->Blocks[0].FirstInstr;
    R.Coverage.insert(Img->Blocks[0].Origin);
    return true;
  }

  if (Op == Opcode::RET) {
    if (CallStack.empty()) {
      R.ExitCode = Regs.gpr(3);
      Done = true;
      return true;
    }
    Frame Fr = std::move(CallStack.back());
    CallStack.pop_back();
    CurF = Fr.F;
    Img = Fr.Img;
    BlockIdx = Fr.BlockIdx;
    InstrIdx = Fr.InstrIdx;
    Regs.Virt = std::move(Fr.Virt);
    Regs.VirtCr = std::move(Fr.VirtCr);
    // Contract semantics: the preserved registers come back regardless of
    // whether the callee had prologs yet.
    for (uint32_t G = 0; G != 32; ++G)
      if (abi::isCallPreservedGpr(G))
        Regs.Phys[G] = Fr.Preserved[G];
    return true;
  }

  return true;
}

} // namespace

std::string InterpResult::fingerprint() const {
  uint64_t ObsHash = FnvOffset;
  for (const std::string &E : ObsTrace)
    for (char Ch : E)
      fnv(ObsHash, static_cast<uint8_t>(Ch));
  return (Trapped ? "TRAP:" + TrapMsg : "ok") +
         "|exit=" + std::to_string(ExitCode) + "|out=" + Output +
         "|mem=" + std::to_string(MemDigest) +
         "|obs=" + std::to_string(ObsHash);
}

InterpSession::InterpSession(const Module &M)
    : P(std::make_unique<Impl>(M)) {}
InterpSession::InterpSession(InterpSession &&) noexcept = default;
InterpSession &InterpSession::operator=(InterpSession &&) noexcept = default;
InterpSession::~InterpSession() = default;

InterpResult InterpSession::run(const InterpOptions &Opts) {
  Interp In(*P, Opts, P->MemPool);
  return In.run();
}

InterpResult vsc::interpret(const Module &M, const InterpOptions &Opts) {
  InterpSession S(M);
  return S.run(Opts);
}
