//===- oracle/Interp.cpp - Reference IR interpreter -------------------------===//

#include "oracle/Interp.h"

#include "ir/Abi.h"
#include "sim/Simulator.h" // computeGlobalLayout

#include <algorithm>
#include <cstring>

using namespace vsc;

namespace vsc {

/// The per-module precomputation a session carries: global layout,
/// flattened initializer bytes, the function name map Module::findFunction
/// would otherwise re-derive by linear scan on every call, and the pooled
/// memory arena runs reuse.
struct InterpSession::Impl {
  const Module &M;
  std::unordered_map<std::string, uint64_t> GlobalBase;
  uint64_t DataEnd = 4096;
  /// Initializers flattened to one byte image for [4096, 4096 + size()).
  std::vector<uint8_t> DataInit;
  /// First function of each name, mirroring Module::findFunction.
  std::unordered_map<std::string, const Function *> FuncByName;
  std::vector<uint8_t> MemPool;

  explicit Impl(const Module &M) : M(M) {
    GlobalBase = computeGlobalLayout(M);
    for (const Global &G : M.globals()) {
      uint64_t Addr = GlobalBase.at(G.Name);
      DataEnd = std::max(DataEnd, Addr + G.Size);
      if (!G.Init.empty() &&
          DataInit.size() < Addr - 4096 + G.Init.size())
        DataInit.resize(Addr - 4096 + G.Init.size(), 0);
      for (size_t I = 0; I != G.Init.size(); ++I)
        DataInit[Addr - 4096 + I] = G.Init[I];
    }
    for (const auto &F : M.functions())
      FuncByName.emplace(F->name(), F.get());
  }
};

} // namespace vsc

namespace {

constexpr uint64_t FnvOffset = 1469598103934665603ULL;
constexpr uint64_t FnvPrime = 1099511628211ULL;

inline void fnv(uint64_t &H, uint64_t V) {
  for (unsigned B = 0; B != 8; ++B) {
    H ^= (V >> (8 * B)) & 0xff;
    H *= FnvPrime;
  }
}

struct CrVal {
  bool Lt = false, Gt = false, Eq = false;

  bool bit(CrBit B) const {
    switch (B) {
    case CrBit::Lt:
      return Lt;
    case CrBit::Gt:
      return Gt;
    case CrBit::Eq:
      return Eq;
    }
    return false;
  }
  std::string str() const {
    return std::string(Lt ? "lt" : "") + (Gt ? "gt" : "") + (Eq ? "eq" : "");
  }
};

/// Architectural state. Virtual registers are function-private (saved and
/// restored at calls), as in the simulator.
struct RegFile {
  int64_t Phys[32] = {0};
  CrVal PhysCr[8];
  int64_t Ctr = 0;
  std::vector<int64_t> Virt;
  std::vector<CrVal> VirtCr;

  int64_t &gpr(uint32_t Id) {
    if (Id < 32)
      return Phys[Id];
    size_t V = Id - 32;
    if (V >= Virt.size())
      Virt.resize(V + 1, 0);
    return Virt[V];
  }
  CrVal &cr(uint32_t Id) {
    if (Id < 8)
      return PhysCr[Id];
    size_t V = Id - 8;
    if (V >= VirtCr.size())
      VirtCr.resize(V + 1);
    return VirtCr[V];
  }
};

/// Saved caller context. Besides the virtual registers, the interpreter
/// snapshots the call-preserved physical registers and restores them at
/// the matching return — the linkage contract itself, independent of
/// whether prologs have been inserted yet (see the header comment).
struct Frame {
  const Function *F = nullptr;
  size_t BlockIdx = 0, InstrIdx = 0;
  std::vector<int64_t> Virt;
  std::vector<CrVal> VirtCr;
  int64_t Preserved[32] = {0};
};

class Interp {
public:
  Interp(const InterpSession::Impl &S, const InterpOptions &Opts,
         std::vector<uint8_t> &Mem)
      : Opts(Opts), Mem(Mem), GlobalBase(S.GlobalBase), DataEnd(S.DataEnd),
        FuncByName(S.FuncByName) {
    Mem.assign(Opts.MemBytes, 0);
    if (!S.DataInit.empty() && Mem.size() > 4096) {
      size_t N = std::min<size_t>(S.DataInit.size(), Mem.size() - 4096);
      std::memcpy(Mem.data() + 4096, S.DataInit.data(), N);
    }
  }

  InterpResult run() {
    InterpResult R;
    R.StoreDigest = FnvOffset;
    R.CallDigest = FnvOffset;
    const Function *F = resolve(Opts.EntryFunction);
    if (!F || F->blocks().empty()) {
      R.Trapped = true;
      R.TrapMsg = "no entry function '" + Opts.EntryFunction + "'";
      return R;
    }
    Regs.gpr(1) = static_cast<int64_t>(Mem.size() - 4096); // stack top
    Regs.gpr(2) = 4096;                                    // TOC anchor
    for (size_t I = 0; I < Opts.Args.size() && I < 8; ++I)
      Regs.gpr(3 + static_cast<uint32_t>(I)) = Opts.Args[I];

    CurF = F;
    BlockIdx = 0;
    InstrIdx = 0;
    enterBlock(R);

    while (true) {
      while (InstrIdx >= CurF->blocks()[BlockIdx]->size()) {
        if (BlockIdx + 1 >= CurF->blocks().size())
          return trap(R, "fell off the end of function " + CurF->name());
        ++BlockIdx;
        InstrIdx = 0;
        enterBlock(R);
      }
      const Instr &I = CurF->blocks()[BlockIdx]->instrs()[InstrIdx];
      ++InstrIdx;
      if (++R.Steps > Opts.MaxSteps) {
        R.BudgetExceeded = true;
        return finish(R);
      }

      bool Done = false;
      if (!step(I, R, Done))
        return finish(R); // trap already recorded
      if (Done)
        return finish(R);
    }
  }

private:
  /// Function lookup honouring InterpOptions::Override.
  const Function *resolve(const std::string &Name) const {
    if (Opts.Override && Opts.Override->name() == Name)
      return Opts.Override;
    auto It = FuncByName.find(Name);
    return It == FuncByName.end() ? nullptr : It->second;
  }

  int64_t readMem(uint64_t Addr, unsigned Size) const {
    uint64_t V = 0;
    for (unsigned B = 0; B != Size; ++B)
      V |= static_cast<uint64_t>(Mem[Addr + B]) << (8 * B);
    if (Size < 8) {
      uint64_t SignBit = 1ULL << (Size * 8 - 1);
      if (V & SignBit)
        V |= ~((SignBit << 1) - 1);
    }
    return static_cast<int64_t>(V);
  }

  void enterBlock(InterpResult &R) {
    R.Coverage.insert(CurF->blocks()[BlockIdx].get());
  }

  bool jumpTo(const std::string &Label, InterpResult &R) {
    for (size_t I = 0, E = CurF->blocks().size(); I != E; ++I) {
      if (CurF->blocks()[I]->label() == Label) {
        BlockIdx = I;
        InstrIdx = 0;
        enterBlock(R);
        return true;
      }
    }
    return false;
  }

  InterpResult &trap(InterpResult &R, const std::string &Msg) {
    R.Trapped = true;
    R.TrapMsg = Msg;
    return finish(R);
  }

  InterpResult &finish(InterpResult &R) {
    uint64_t H = FnvOffset;
    for (uint64_t A = 4096; A < DataEnd && A < Mem.size(); ++A) {
      H ^= Mem[A];
      H *= FnvPrime;
    }
    R.MemDigest = H;
    return R;
  }

  void scrubCallClobbers(int64_t KeepArgs) {
    abi::forEachCallClobber([&](Reg D) {
      if (D.isGpr()) {
        if (D.id() >= 3 &&
            static_cast<int64_t>(D.id()) < 3 + std::min<int64_t>(KeepArgs, 8))
          return;
        Regs.gpr(D.id()) = abi::ClobberPoison;
      } else if (D.isCr()) {
        Regs.cr(D.id()) = CrVal{true, true, true};
      } else if (D.isCtr()) {
        Regs.Ctr = abi::ClobberPoison;
      }
    });
  }

  void traceStore(InterpResult &R, uint64_t Addr, unsigned Size, int64_t Val,
                  bool Volatile) {
    bool Observable = Volatile;
    bool InData = Addr >= 4096 && Addr < DataEnd;
    if (InData || Observable) {
      fnv(R.StoreDigest, Addr);
      fnv(R.StoreDigest, Size);
      fnv(R.StoreDigest, static_cast<uint64_t>(Val));
      ++R.StoreCount;
      if (Opts.TraceMemory || Observable) {
        std::string E = "ST:" + std::to_string(Size) + "[" +
                        std::to_string(Addr) + "]=" + std::to_string(Val) +
                        (Volatile ? " !volatile" : "");
        if (Observable)
          R.ObsTrace.push_back(E);
        if (Opts.TraceMemory)
          R.StoreTrace.push_back(std::move(E));
      }
    }
  }

  void traceCall(InterpResult &R, const Instr &I) {
    uint64_t ArgHash = FnvOffset;
    std::string ArgsStr;
    for (int64_t A = 0; A < std::min<int64_t>(I.Imm, 8); ++A) {
      int64_t V = Regs.gpr(3 + static_cast<uint32_t>(A));
      fnv(ArgHash, static_cast<uint64_t>(V));
      if (Opts.TraceMemory || abi::isBuiltin(I.Sym))
        ArgsStr += (A ? "," : "") + std::to_string(V);
    }
    for (char Ch : I.Sym)
      fnv(R.CallDigest, static_cast<uint8_t>(Ch));
    fnv(R.CallDigest, ArgHash);
    ++R.CallCount;
    if (Opts.TraceMemory || abi::isBuiltin(I.Sym)) {
      std::string E = "CALL:" + I.Sym + "(" + ArgsStr + ")";
      if (abi::isBuiltin(I.Sym))
        R.ObsTrace.push_back(E);
      if (Opts.TraceMemory)
        R.CallTrace.push_back(std::move(E));
    }
  }

  void traceExec(InterpResult &R, const Instr &I) {
    if (!Opts.TraceExec)
      return;
    if (R.ExecTrace.size() >= Opts.MaxExecTrace) {
      R.ExecTraceTruncated = true;
      return;
    }
    std::string Line = CurF->name() + ":" +
                       CurF->blocks()[BlockIdx]->label() + "+" +
                       std::to_string(InstrIdx - 1) + ": " + I.str();
    // Values written, for trace diffing.
    if (opcodeInfo(I.Op).HasDst && I.Dst.isValid()) {
      if (I.Dst.isGpr())
        Line += " ; " + I.Dst.str() + "=" + std::to_string(Regs.gpr(I.Dst.id()));
      else if (I.Dst.isCr())
        Line += " ; " + I.Dst.str() + "=" + Regs.cr(I.Dst.id()).str();
      else if (I.Dst.isCtr())
        Line += " ; ctr=" + std::to_string(Regs.Ctr);
    }
    if (I.Op == Opcode::LU)
      Line += " ; " + I.Src1.str() + "=" + std::to_string(Regs.gpr(I.Src1.id()));
    R.ExecTrace.push_back(std::move(Line));
  }

  /// Executes one instruction. \returns false on trap; sets \p Done when
  /// the program finished normally.
  bool step(const Instr &I, InterpResult &R, bool &Done);

  const InterpOptions &Opts;

  std::vector<uint8_t> &Mem;
  const std::unordered_map<std::string, uint64_t> &GlobalBase;
  uint64_t DataEnd = 4096;
  const std::unordered_map<std::string, const Function *> &FuncByName;

  RegFile Regs;
  const Function *CurF = nullptr;
  size_t BlockIdx = 0, InstrIdx = 0;
  std::vector<Frame> CallStack;
  size_t InputPos = 0;
};

bool Interp::step(const Instr &I, InterpResult &R, bool &Done) {
  Done = false;
  auto S1 = [&]() { return Regs.gpr(I.Src1.id()); };
  auto S2 = [&]() { return Regs.gpr(I.Src2.id()); };

  bool Taken = false;

  switch (I.Op) {
  case Opcode::LI:
    Regs.gpr(I.Dst.id()) = I.Imm;
    break;
  case Opcode::LR:
    Regs.gpr(I.Dst.id()) = S1();
    break;
  case Opcode::A:
    Regs.gpr(I.Dst.id()) = static_cast<int64_t>(static_cast<uint64_t>(S1()) +
                                                static_cast<uint64_t>(S2()));
    break;
  case Opcode::S:
    Regs.gpr(I.Dst.id()) = static_cast<int64_t>(static_cast<uint64_t>(S1()) -
                                                static_cast<uint64_t>(S2()));
    break;
  case Opcode::MUL:
    Regs.gpr(I.Dst.id()) = static_cast<int64_t>(static_cast<uint64_t>(S1()) *
                                                static_cast<uint64_t>(S2()));
    break;
  case Opcode::DIV: {
    int64_t D = S2();
    if (D == 0) {
      trap(R, "divide by zero");
      return false;
    }
    if (S1() == INT64_MIN && D == -1)
      Regs.gpr(I.Dst.id()) = INT64_MIN;
    else
      Regs.gpr(I.Dst.id()) = S1() / D;
    break;
  }
  case Opcode::AND:
    Regs.gpr(I.Dst.id()) = S1() & S2();
    break;
  case Opcode::OR:
    Regs.gpr(I.Dst.id()) = S1() | S2();
    break;
  case Opcode::XOR:
    Regs.gpr(I.Dst.id()) = S1() ^ S2();
    break;
  case Opcode::SL:
    Regs.gpr(I.Dst.id()) =
        static_cast<int64_t>(static_cast<uint64_t>(S1()) << (S2() & 63));
    break;
  case Opcode::SR:
    Regs.gpr(I.Dst.id()) =
        static_cast<int64_t>(static_cast<uint64_t>(S1()) >> (S2() & 63));
    break;
  case Opcode::SRA:
    Regs.gpr(I.Dst.id()) = S1() >> (S2() & 63);
    break;
  case Opcode::AI:
  case Opcode::LA:
    Regs.gpr(I.Dst.id()) = static_cast<int64_t>(static_cast<uint64_t>(S1()) +
                                                static_cast<uint64_t>(I.Imm));
    break;
  case Opcode::SI:
    Regs.gpr(I.Dst.id()) = static_cast<int64_t>(static_cast<uint64_t>(S1()) -
                                                static_cast<uint64_t>(I.Imm));
    break;
  case Opcode::MULI:
    Regs.gpr(I.Dst.id()) = static_cast<int64_t>(static_cast<uint64_t>(S1()) *
                                                static_cast<uint64_t>(I.Imm));
    break;
  case Opcode::ANDI:
    Regs.gpr(I.Dst.id()) = S1() & I.Imm;
    break;
  case Opcode::ORI:
    Regs.gpr(I.Dst.id()) = S1() | I.Imm;
    break;
  case Opcode::XORI:
    Regs.gpr(I.Dst.id()) = S1() ^ I.Imm;
    break;
  case Opcode::SLI:
    Regs.gpr(I.Dst.id()) =
        static_cast<int64_t>(static_cast<uint64_t>(S1()) << (I.Imm & 63));
    break;
  case Opcode::SRI:
    Regs.gpr(I.Dst.id()) =
        static_cast<int64_t>(static_cast<uint64_t>(S1()) >> (I.Imm & 63));
    break;
  case Opcode::SRAI:
    Regs.gpr(I.Dst.id()) = S1() >> (I.Imm & 63);
    break;
  case Opcode::NEG:
    Regs.gpr(I.Dst.id()) =
        static_cast<int64_t>(0 - static_cast<uint64_t>(S1()));
    break;
  case Opcode::LTOC: {
    auto It = GlobalBase.find(I.Sym);
    if (It == GlobalBase.end()) {
      trap(R, "LTOC of unknown global '" + I.Sym + "'");
      return false;
    }
    Regs.gpr(I.Dst.id()) = static_cast<int64_t>(It->second);
    break;
  }
  case Opcode::L:
  case Opcode::LU: {
    uint64_t Addr = static_cast<uint64_t>(S1() + I.Imm);
    int64_t V = 0;
    bool PageZero = Addr + I.MemSize <= 4096;
    bool Unmapped = !PageZero && (Addr < 4096 || Addr + I.MemSize > Mem.size());
    if ((PageZero && !Opts.PageZeroReadable) || Unmapped) {
      // The paper's !safe loads are guaranteed non-trapping: a faulting
      // speculative load reads zero instead of killing the program.
      if (!I.SpecSafe) {
        trap(R, (Unmapped ? "load from unmapped address "
                          : "load from page zero at ") +
                    std::to_string(Addr));
        return false;
      }
      ++R.SpecFaults;
    } else if (!PageZero) {
      V = readMem(Addr, I.MemSize);
    }
    if (I.IsVolatile)
      R.ObsTrace.push_back("L:" + std::to_string(I.MemSize) + "[" +
                           std::to_string(Addr) + "]=" + std::to_string(V) +
                           " !volatile");
    if (I.Op == Opcode::LU)
      Regs.gpr(I.Src1.id()) = S1() + I.Imm;
    Regs.gpr(I.Dst.id()) = V;
    break;
  }
  case Opcode::ST: {
    uint64_t Addr = static_cast<uint64_t>(S2() + I.Imm);
    if (Addr < 4096 || Addr + I.MemSize > Mem.size()) {
      trap(R, "store to unmapped address " + std::to_string(Addr));
      return false;
    }
    int64_t Val = S1();
    for (unsigned B = 0; B != I.MemSize; ++B)
      Mem[Addr + B] =
          static_cast<uint8_t>(static_cast<uint64_t>(Val) >> (8 * B));
    traceStore(R, Addr, I.MemSize, Val, I.IsVolatile);
    break;
  }
  case Opcode::C:
  case Opcode::CI: {
    int64_t A = S1();
    int64_t B = I.Op == Opcode::C ? S2() : I.Imm;
    CrVal &Cr = Regs.cr(I.Dst.id());
    Cr.Lt = A < B;
    Cr.Gt = A > B;
    Cr.Eq = A == B;
    break;
  }
  case Opcode::MTCTR:
    Regs.Ctr = S1();
    break;
  case Opcode::B:
    Taken = true;
    break;
  case Opcode::BT:
  case Opcode::BF: {
    bool Bit = Regs.cr(I.Src1.id()).bit(I.Bit);
    Taken = (I.Op == Opcode::BT) ? Bit : !Bit;
    break;
  }
  case Opcode::BCT:
    Taken = (--Regs.Ctr != 0);
    break;
  case Opcode::CALL:
  case Opcode::RET:
    break;
  default:
    trap(R, "unimplemented opcode");
    return false;
  }

  traceExec(R, I);

  if (I.Op == Opcode::B || ((I.Op == Opcode::BT || I.Op == Opcode::BF ||
                             I.Op == Opcode::BCT) &&
                            Taken)) {
    if (!jumpTo(I.Target, R)) {
      trap(R, "branch to unknown label '" + I.Target + "'");
      return false;
    }
    return true;
  }

  if (I.Op == Opcode::CALL) {
    traceCall(R, I);
    if (abi::isBuiltin(I.Sym)) {
      int64_t A0 = Regs.gpr(3);
      scrubCallClobbers(/*KeepArgs=*/0);
      if (I.Sym == "print_int") {
        R.Output += std::to_string(A0) + "\n";
        Regs.gpr(3) = A0;
      } else if (I.Sym == "print_char") {
        R.Output += static_cast<char>(A0 & 0xff);
        Regs.gpr(3) = A0;
      } else if (I.Sym == "read_int") {
        Regs.gpr(3) =
            InputPos < Opts.Input.size() ? Opts.Input[InputPos++] : 0;
      } else { // exit
        R.ExitCode = A0;
        Done = true;
      }
      return true;
    }
    const Function *Callee = resolve(I.Sym);
    if (!Callee || Callee->blocks().empty()) {
      trap(R, "call to unknown function '" + I.Sym + "'");
      return false;
    }
    if (CallStack.size() >= Opts.MaxCallDepth) {
      trap(R, "call depth limit exceeded in '" + CurF->name() + "'");
      return false;
    }
    Frame Fr;
    Fr.F = CurF;
    Fr.BlockIdx = BlockIdx;
    Fr.InstrIdx = InstrIdx;
    Fr.Virt = std::move(Regs.Virt);
    Fr.VirtCr = std::move(Regs.VirtCr);
    for (uint32_t G = 0; G != 32; ++G)
      Fr.Preserved[G] = Regs.Phys[G];
    CallStack.push_back(std::move(Fr));
    Regs.Virt.clear();
    Regs.VirtCr.clear();
    scrubCallClobbers(I.Imm);
    CurF = Callee;
    BlockIdx = 0;
    InstrIdx = 0;
    enterBlock(R);
    return true;
  }

  if (I.Op == Opcode::RET) {
    if (CallStack.empty()) {
      R.ExitCode = Regs.gpr(3);
      Done = true;
      return true;
    }
    Frame Fr = std::move(CallStack.back());
    CallStack.pop_back();
    CurF = Fr.F;
    BlockIdx = Fr.BlockIdx;
    InstrIdx = Fr.InstrIdx;
    Regs.Virt = std::move(Fr.Virt);
    Regs.VirtCr = std::move(Fr.VirtCr);
    // Contract semantics: the preserved registers come back regardless of
    // whether the callee had prologs yet.
    for (uint32_t G = 0; G != 32; ++G)
      if (abi::isCallPreservedGpr(G))
        Regs.Phys[G] = Fr.Preserved[G];
    return true;
  }

  return true;
}

} // namespace

std::string InterpResult::fingerprint() const {
  uint64_t ObsHash = FnvOffset;
  for (const std::string &E : ObsTrace)
    for (char Ch : E)
      fnv(ObsHash, static_cast<uint8_t>(Ch));
  return (Trapped ? "TRAP:" + TrapMsg : "ok") +
         "|exit=" + std::to_string(ExitCode) + "|out=" + Output +
         "|mem=" + std::to_string(MemDigest) +
         "|obs=" + std::to_string(ObsHash);
}

InterpSession::InterpSession(const Module &M)
    : P(std::make_unique<Impl>(M)) {}
InterpSession::InterpSession(InterpSession &&) noexcept = default;
InterpSession &InterpSession::operator=(InterpSession &&) noexcept = default;
InterpSession::~InterpSession() = default;

InterpResult InterpSession::run(const InterpOptions &Opts) {
  Interp In(*P, Opts, P->MemPool);
  return In.run();
}

InterpResult vsc::interpret(const Module &M, const InterpOptions &Opts) {
  InterpSession S(M);
  return S.run(Opts);
}
