//===- oracle/Interp.h - Reference IR interpreter -------------*- C++ -*-===//
///
/// \file
/// A deterministic reference interpreter for the IR — the executable
/// ground truth the differential oracle (oracle/ExecOracle.h) validates
/// every pipeline pass against. It shares the functional semantics of
/// sim/Simulator.h (same memory layout, same builtins, same ABI poison at
/// calls from ir/Abi.h) but carries no timing model, and it differs from
/// the simulator in two deliberate ways:
///
///  * Contract semantics at calls: the interpreter itself preserves r1,
///    r2 and r13..r31 across every call (snapshot at CALL, restore at the
///    matching RET). The simulator relies on prologs to do this, so it can
///    only execute post-prolog code faithfully; the interpreter executes
///    IR from *any* pipeline stage — which is exactly what per-pass
///    translation validation needs, since most passes run before prolog
///    insertion.
///  * Trap-on-!safe-fault speculative loads: a load marked !safe is the
///    paper's guaranteed-non-trapping speculative load, so when it faults
///    (page zero with an unreadable page zero, or an unmapped address) it
///    reads 0 and increments SpecFaults instead of trapping. A faulting
///    load without the annotation traps, as on real hardware.
///
/// Besides the behaviour fingerprint (trap status, exit code, output,
/// final-memory digest), the interpreter records the observable-effect
/// trace (volatile accesses + builtin calls, which the passes must
/// preserve exactly), cheap digests of the full store/call traces (for
/// passes that preserve them), block coverage (for coverage-guided input
/// selection) and, on demand, a full execution trace for divergence
/// reports.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_ORACLE_INTERP_H
#define VSC_ORACLE_INTERP_H

#include "ir/Module.h"

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

namespace vsc {

struct InterpOptions {
  std::string EntryFunction = "main";
  /// Entry arguments, placed in r3.. (at most 8).
  std::vector<int64_t> Args;
  /// Values returned by the read_int builtin, in order (0 when exhausted).
  std::vector<int64_t> Input;
  /// Step budget; exceeding it sets InterpResult::BudgetExceeded (not a
  /// trap — the oracle skips inconclusive inputs rather than comparing
  /// them).
  uint64_t MaxSteps = 2'000'000;
  uint64_t MemBytes = 1u << 20;
  /// Maximum call depth before trapping (runaway recursion net).
  unsigned MaxCallDepth = 4096;
  /// Whether loads of page zero (0..4095) read as zero, as on the paper's
  /// machine with the car(car(NIL)) page-zero mapping. Mirror of
  /// MachineModel::PageZeroReadable.
  bool PageZeroReadable = true;
  /// Record StoreTrace/CallTrace entry strings (off: only the digests are
  /// maintained, which is much cheaper).
  bool TraceMemory = false;
  /// Record ExecTrace (one line per executed instruction; capped).
  bool TraceExec = false;
  uint64_t MaxExecTrace = 200'000;
  /// When set and a function of the same name exists in the module, this
  /// body is executed instead — how the oracle runs a pre-pass snapshot
  /// against the otherwise-current module.
  const Function *Override = nullptr;
};

struct InterpResult {
  bool Trapped = false;
  std::string TrapMsg;
  bool BudgetExceeded = false;
  /// r3 at the entry function's return.
  int64_t ExitCode = 0;
  /// Bytes written by print_int / print_char.
  std::string Output;
  uint64_t Steps = 0;
  /// FNV-1a digest of the global data area after the run (same digest the
  /// simulator computes).
  uint64_t MemDigest = 0;
  /// !safe loads that faulted and read as zero.
  uint64_t SpecFaults = 0;
  /// Observable-effect trace: volatile loads/stores and builtin calls in
  /// program order. Every pass must preserve this exactly.
  std::vector<std::string> ObsTrace;
  /// Digest + count of all stores into the global data area (stack traffic
  /// excluded: prologs and spills legally add it). Entry strings only when
  /// TraceMemory.
  uint64_t StoreDigest = 0;
  uint64_t StoreCount = 0;
  std::vector<std::string> StoreTrace;
  /// Digest + count of all calls with their argument values. Entry strings
  /// only when TraceMemory.
  uint64_t CallDigest = 0;
  uint64_t CallCount = 0;
  std::vector<std::string> CallTrace;
  /// Blocks entered, as pointers into the interpreted module (or the
  /// Override function). Valid while those objects live.
  std::unordered_set<const BasicBlock *> Coverage;
  /// One line per executed instruction when TraceExec ("fn:block+idx:
  /// instr ; defs"), capped at MaxExecTrace.
  std::vector<std::string> ExecTrace;
  bool ExecTraceTruncated = false;

  /// Functional-equivalence key: trap status, exit code, output, final
  /// memory and the observable-effect trace.
  std::string fingerprint() const;
};

/// Interprets \p M starting at Opts.EntryFunction.
InterpResult interpret(const Module &M, const InterpOptions &Opts = {});

/// Precomputed per-module interpreter state (global layout, flattened
/// initializers, function name map) plus a pooled memory arena, reused
/// across runs. The oracle executes each changed function on a whole
/// input battery — 2 versions x up to MaxInputs runs — against one
/// unchanging module; a session makes those runs share the one-time work
/// instead of redoing it per run. The module must outlive the session and
/// not gain/lose globals or functions while it is in use (function
/// *bodies* may differ via InterpOptions::Override, as always).
class InterpSession {
public:
  explicit InterpSession(const Module &M);
  InterpSession(InterpSession &&) noexcept;
  InterpSession &operator=(InterpSession &&) noexcept;
  ~InterpSession();

  /// Exactly interpret(M, Opts), but against the precomputed state.
  InterpResult run(const InterpOptions &Opts = {});

  /// Implementation detail (defined in Interp.cpp); public only so the
  /// interpreter internals can name it.
  struct Impl;

private:
  std::unique_ptr<Impl> P;
};

} // namespace vsc

#endif // VSC_ORACLE_INTERP_H
