//===- machine/MachineModel.h - Target descriptions -----------*- C++ -*-===//
///
/// \file
/// Parametric descriptions of the in-order superscalar targets the paper
/// evaluates on (RS/6000 POWER, Power2, PowerPC 601). The timing simulator
/// (sim/Simulator.h) interprets these parameters; basic block expansion
/// reads ExpansionObjective as its machine-specific copy rule; the
/// schedulers read the latencies to build their cycle model.
///
/// Calibration: on the rs6000() model the paper's original `xlygetvalue`
/// loop costs exactly 11 cycles per iteration (tests/sim_calibration).
///
//===----------------------------------------------------------------------===//

#ifndef VSC_MACHINE_MACHINEMODEL_H
#define VSC_MACHINE_MACHINEMODEL_H

#include "ir/Instr.h"

#include <string>

namespace vsc {

struct MachineModel {
  std::string Name;

  /// FXU-class operations (ALU, compare, load/store) issued per cycle.
  unsigned FxuWidth = 1;
  /// Branch-class operations issued per cycle.
  unsigned BuWidth = 1;

  unsigned LoadLatency = 2;
  unsigned AluLatency = 1;
  unsigned CmpLatency = 1;
  unsigned MulLatency = 5;
  unsigned DivLatency = 20;

  /// Cycles between a branch's resolution and the first issue from its
  /// redirected fetch stream (taken conditional branches, late unconditional
  /// branches, calls and returns pay this).
  unsigned TakenBranchRedirect = 3;
  /// Instructions the machine can issue beyond an unresolved conditional
  /// branch (predicted untaken) before dispatch stalls.
  unsigned SpecWindow = 3;
  /// Machine rule used by basic block expansion: number of non-branch
  /// instructions needed between a compare, a dependent (untaken)
  /// conditional branch, and an unconditional branch to avoid a stall
  /// ("4-5 instructions" on the RS/6000).
  unsigned ExpansionObjective = 4;
  /// Page zero reads return 0 instead of trapping (the paper's [5] trick
  /// that makes car(car(NIL)) speculation safe).
  bool PageZeroReadable = true;

  /// Result-availability latency of \p I (cycles after issue).
  unsigned latencyOf(const Instr &I) const {
    if (I.isLoad())
      return LoadLatency;
    switch (I.Op) {
    case Opcode::MUL:
    case Opcode::MULI:
      return MulLatency;
    case Opcode::DIV:
      return DivLatency;
    case Opcode::C:
    case Opcode::CI:
      return CmpLatency;
    default:
      return AluLatency;
    }
  }

  UnitKind unitOf(const Instr &I) const { return opcodeInfo(I.Op).Unit; }
};

/// Content fingerprint of every timing/shape parameter of \p M (FNV-1a
/// over name, widths, latencies, redirect/speculation windows, page-zero
/// behaviour). Cache keys use this instead of Name so a hand-tweaked model
/// never aliases a stock one.
uint64_t machineFingerprint(const MachineModel &M);

/// The stock model registered under \p Name (rs6000, power2, ppc601,
/// vliw8), or nullptr.
const MachineModel *findMachine(const std::string &Name);

/// RS/6000 (POWER) model 580 class: single FXU, single branch unit.
MachineModel rs6000();
/// Power2 class: dual FXU.
MachineModel power2();
/// PowerPC 601 class: single FXU, shorter pipeline.
MachineModel ppc601();
/// The IBM research group's 8-ALU VLIW prototype shape ("an 8-ALU
/// hardware prototype is currently operational"): wide issue, multiway
/// branching approximated by a dual branch unit, aggressive speculation.
MachineModel vliw8();

} // namespace vsc

#endif // VSC_MACHINE_MACHINEMODEL_H
