//===- machine/MachineModel.cpp - Target descriptions ----------------------===//

#include "machine/MachineModel.h"

using namespace vsc;

uint64_t vsc::machineFingerprint(const MachineModel &M) {
  uint64_t H = 1469598103934665603ULL;
  auto Mix = [&H](uint64_t V) {
    for (int I = 0; I != 8; ++I) {
      H ^= (V >> (8 * I)) & 0xff;
      H *= 1099511628211ULL;
    }
  };
  for (char C : M.Name) {
    H ^= static_cast<uint8_t>(C);
    H *= 1099511628211ULL;
  }
  Mix(M.FxuWidth);
  Mix(M.BuWidth);
  Mix(M.LoadLatency);
  Mix(M.AluLatency);
  Mix(M.CmpLatency);
  Mix(M.MulLatency);
  Mix(M.DivLatency);
  Mix(M.TakenBranchRedirect);
  Mix(M.SpecWindow);
  Mix(M.ExpansionObjective);
  Mix(M.PageZeroReadable ? 1 : 0);
  return H;
}

const MachineModel *vsc::findMachine(const std::string &Name) {
  static const MachineModel Stock[] = {rs6000(), power2(), ppc601(), vliw8()};
  for (const MachineModel &M : Stock)
    if (M.Name == Name)
      return &M;
  return nullptr;
}

MachineModel vsc::rs6000() {
  MachineModel M;
  M.Name = "rs6000";
  M.FxuWidth = 1;
  M.BuWidth = 1;
  M.LoadLatency = 2;
  M.TakenBranchRedirect = 3;
  M.SpecWindow = 3;
  M.ExpansionObjective = 4;
  return M;
}

MachineModel vsc::power2() {
  MachineModel M = rs6000();
  M.Name = "power2";
  M.FxuWidth = 2;
  M.ExpansionObjective = 5;
  return M;
}

MachineModel vsc::ppc601() {
  MachineModel M = rs6000();
  M.Name = "ppc601";
  M.LoadLatency = 1;
  M.TakenBranchRedirect = 2;
  M.SpecWindow = 2;
  M.ExpansionObjective = 3;
  return M;
}

MachineModel vsc::vliw8() {
  MachineModel M = rs6000();
  M.Name = "vliw8";
  M.FxuWidth = 8;
  M.BuWidth = 2;
  M.SpecWindow = 8;
  M.ExpansionObjective = 8;
  return M;
}
