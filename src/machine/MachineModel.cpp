//===- machine/MachineModel.cpp - Target descriptions ----------------------===//

#include "machine/MachineModel.h"

using namespace vsc;

MachineModel vsc::rs6000() {
  MachineModel M;
  M.Name = "rs6000";
  M.FxuWidth = 1;
  M.BuWidth = 1;
  M.LoadLatency = 2;
  M.TakenBranchRedirect = 3;
  M.SpecWindow = 3;
  M.ExpansionObjective = 4;
  return M;
}

MachineModel vsc::power2() {
  MachineModel M = rs6000();
  M.Name = "power2";
  M.FxuWidth = 2;
  M.ExpansionObjective = 5;
  return M;
}

MachineModel vsc::ppc601() {
  MachineModel M = rs6000();
  M.Name = "ppc601";
  M.LoadLatency = 1;
  M.TakenBranchRedirect = 2;
  M.SpecWindow = 2;
  M.ExpansionObjective = 3;
  return M;
}

MachineModel vsc::vliw8() {
  MachineModel M = rs6000();
  M.Name = "vliw8";
  M.FxuWidth = 8;
  M.BuWidth = 2;
  M.SpecWindow = 8;
  M.ExpansionObjective = 8;
  return M;
}
