//===- pm/PassManager.h - Function/module pass managers -------*- C++ -*-===//
///
/// \file
/// The pass-management layer the pipeline (vliw/Pipeline.cpp) is built
/// on, modelled on the LLVM new-PM split:
///
///  - FunctionPass: runs on one function, takes its analyses from a
///    FunctionAnalyses cache, and RETURNS what it preserved. Pass objects
///    are shared across worker threads, so run() must be re-entrant for
///    distinct functions (the wrappers in pm/Passes.h are stateless).
///
///  - FunctionPassManager: a pass chain for one function. After every
///    pass it applies the returned PreservedAnalyses to the cache and —
///    when analysis checking is on (VSC_CHECK_ANALYSES=1 or
///    setCheckAnalyses(true)) — recomputes and compares, so a pass that
///    lies about preservation is reported by name.
///
///  - ModulePass / ModulePassManager: serial module-level stages
///    (inlining, register allocation, layout). These act as barriers
///    between parallel function-pass regions.
///
///  - FunctionToModulePassAdaptor: runs a FunctionPassManager over every
///    function, optionally in parallel on a work-stealing ThreadPool.
///
/// Determinism contract of the parallel adaptor: function passes touch
/// only their own function (plus the read-only Module), fresh labels and
/// registers come from per-function counters, and no pass uses global
/// mutable state — so the compiled module is byte-identical for every
/// thread count, and tests assert exactly that.
///
/// Instrumentation (verifier / PassAudit / ExecOracle checkpoints)
/// registers through PassInstrumentation instead of being spliced into
/// the pipeline by hand:
///
///  - AfterFunctionChain fires once per function after its whole chain,
///    SERIALLY in module layout order on the calling thread, after the
///    parallel region's barrier. Checks that execute code (the oracle
///    re-runs functions and may read callee bodies) are therefore never
///    concurrent with a mutation.
///
///  - AfterFunctionPass fires after every single pass on a function. Any
///    registered AfterFunctionPass callback forces the adaptor serial,
///    because the callback observes cross-function state mid-chain.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_PM_PASSMANAGER_H
#define VSC_PM_PASSMANAGER_H

#include "pm/Analysis.h"
#include "support/ThreadPool.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace vsc {

class FunctionPass {
public:
  virtual ~FunctionPass() = default;

  /// Stable pass name; doubles as the audit/oracle stage label for
  /// per-pass checkpoints.
  virtual const char *name() const = 0;

  /// Transforms \p F, reading analyses from \p FA, and returns what it
  /// kept valid. \p M is read-only context (globals, callee prototypes);
  /// mutating other functions from a function pass breaks the parallel
  /// driver's contract.
  virtual PreservedAnalyses run(Function &F, Module &M,
                                FunctionAnalyses &FA) = 0;
};

class ModulePass {
public:
  virtual ~ModulePass() = default;

  virtual const char *name() const = 0;

  /// Transforms \p M. Responsible for its own invalidation through
  /// \p FAM (most call FAM.invalidateAll(); ones that add or remove
  /// functions also FAM.refresh()). \returns "" on success, else a
  /// diagnostic that fails the pipeline.
  virtual std::string run(Module &M, FunctionAnalysisManager &FAM) = 0;
};

/// Observation hooks, all optional. See the file comment for when each
/// fires and the threading guarantees.
struct PassInstrumentation {
  /// After one pass of a function chain. Forces serial execution.
  std::function<void(const FunctionPass &, Function &)> AfterFunctionPass;
  /// After a function's full chain; serial, module order, post-barrier.
  /// \p Stage is the adaptor's stage name.
  std::function<void(Function &, const std::string &Stage)>
      AfterFunctionChain;
  /// After each module pass.
  std::function<void(const ModulePass &, Module &)> AfterModulePass;
};

class FunctionPassManager {
public:
  FunctionPassManager();

  void add(std::unique_ptr<FunctionPass> P) {
    Passes.push_back(std::move(P));
  }

  /// Recompute-and-compare after every pass (expensive; tests and debug
  /// runs). Defaults to the VSC_CHECK_ANALYSES environment variable.
  void setCheckAnalyses(bool On) { CheckAnalyses = On; }
  bool checkAnalyses() const { return CheckAnalyses; }

  bool empty() const { return Passes.empty(); }
  const std::vector<std::unique_ptr<FunctionPass>> &passes() const {
    return Passes;
  }

  /// Runs the chain on \p F. \returns "" on success, else the analysis-
  /// checker diagnostic naming the lying pass.
  std::string run(Function &F, Module &M, FunctionAnalyses &FA,
                  const PassInstrumentation *PI = nullptr) const;

private:
  std::vector<std::unique_ptr<FunctionPass>> Passes;
  bool CheckAnalyses = false;
};

/// Runs a FunctionPassManager over every function of the module, in
/// parallel when \p Threads > 1 (and no AfterFunctionPass instrumentation
/// is registered). Failure reporting is deterministic: the diagnostic of
/// the lowest-index failing function wins regardless of schedule.
class FunctionToModulePassAdaptor : public ModulePass {
public:
  FunctionToModulePassAdaptor(std::string StageName, FunctionPassManager FPM,
                              unsigned Threads)
      : StageName(std::move(StageName)), FPM(std::move(FPM)),
        Threads(Threads) {}

  const char *name() const override { return StageName.c_str(); }
  const FunctionPassManager &functionPassManager() const { return FPM; }

  std::string run(Module &M, FunctionAnalysisManager &FAM) override;

  /// Set by the ModulePassManager before run() so per-function hooks fire.
  void setInstrumentation(const PassInstrumentation *PI) { Instr = PI; }

private:
  std::string StageName;
  FunctionPassManager FPM;
  unsigned Threads;
  const PassInstrumentation *Instr = nullptr;
};

class ModulePassManager {
public:
  explicit ModulePassManager(PassInstrumentation PI = {})
      : Instr(std::move(PI)) {}

  void add(std::unique_ptr<ModulePass> P) { Passes.push_back(std::move(P)); }

  /// Convenience: wraps \p FPM in a FunctionToModulePassAdaptor.
  void addFunctionPasses(std::string StageName, FunctionPassManager FPM,
                         unsigned Threads);

  /// Runs every module pass in order. Stops at the first failure and
  /// returns its diagnostic; "" on success.
  std::string run(Module &M, FunctionAnalysisManager &FAM) const;

private:
  std::vector<std::unique_ptr<ModulePass>> Passes;
  PassInstrumentation Instr;
};

} // namespace vsc

#endif // VSC_PM_PASSMANAGER_H
