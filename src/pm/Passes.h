//===- pm/Passes.h - Pass-interface wrappers ------------------*- C++ -*-===//
///
/// \file
/// FunctionPass / ModulePass wrappers around the transforms in src/opt,
/// src/vliw and src/profile, in the order the VLIW pipeline runs them.
/// Each wrapper's name() matches the stage label the old hand-rolled
/// pipeline used, so audit/oracle reports and snapshots keep their
/// familiar names.
///
/// Preservation discipline: every wrapped transform that takes a
/// FunctionAnalyses parameter maintains the cache itself (invalidating
/// exactly when it mutates), so its wrapper returns
/// PreservedAnalyses::all() — "the cache is already consistent". Wrappers
/// around transforms that do NOT thread the cache (superblock formation,
/// register allocation, prolog insertion) return none().
///
/// All wrappers are stateless apart from immutable configuration captured
/// at construction, which makes them safe to share across the parallel
/// driver's worker threads.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_PM_PASSES_H
#define VSC_PM_PASSES_H

#include "machine/MachineModel.h"
#include "pm/PassManager.h"
#include "vliw/Schedule.h"

namespace vsc {

class ProfileData;
struct RunOptions;

/// opt/Classical.h: copy propagation, LVN, DCE, LICM, straightening to a
/// fixed point. \p FlowAlias selects the flow-sensitive disambiguation
/// tier for LVN's load epochs and LICM's clobber test (here and in every
/// wrapper below that takes it).
class ClassicalPass : public FunctionPass {
public:
  explicit ClassicalPass(bool FlowAlias = true) : FlowAlias(FlowAlias) {}
  const char *name() const override { return "classical"; }
  PreservedAnalyses run(Function &F, Module &M, FunctionAnalyses &FA) override;

private:
  bool FlowAlias;
};

/// profile/Superblock.h: trace-driven tail duplication, followed by a
/// classical cleanup round.
class SuperblockPass : public FunctionPass {
public:
  explicit SuperblockPass(const ProfileData &Profile, bool FlowAlias = true)
      : Profile(Profile), FlowAlias(FlowAlias) {}
  const char *name() const override { return "superblocks"; }
  PreservedAnalyses run(Function &F, Module &M, FunctionAnalyses &FA) override;

private:
  const ProfileData &Profile;
  bool FlowAlias;
};

/// vliw/LoadStoreMotion.h plus a classical cleanup round.
class LoadStoreMotionPass : public FunctionPass {
public:
  explicit LoadStoreMotionPass(bool FlowAlias = true) : FlowAlias(FlowAlias) {}
  const char *name() const override { return "loadstore-motion"; }
  PreservedAnalyses run(Function &F, Module &M, FunctionAnalyses &FA) override;

private:
  bool FlowAlias;
};

/// vliw/Unspeculation.h.
class UnspeculationPass : public FunctionPass {
public:
  explicit UnspeculationPass(bool FlowAlias = true) : FlowAlias(FlowAlias) {}
  const char *name() const override { return "unspeculation"; }
  PreservedAnalyses run(Function &F, Module &M, FunctionAnalyses &FA) override;

private:
  bool FlowAlias;
};

/// vliw/Unroll.h + cfg straightening + vliw/Rename.h, as one stage (the
/// paper applies renaming to the freshly unrolled bodies).
class UnrollRenamePass : public FunctionPass {
public:
  explicit UnrollRenamePass(unsigned Factor) : Factor(Factor) {}
  const char *name() const override { return "unroll+rename"; }
  PreservedAnalyses run(Function &F, Module &M, FunctionAnalyses &FA) override;

private:
  unsigned Factor;
};

/// Enhanced pipeline scheduling (vliw/Schedule.h). With \p Exact != Off
/// every attempted loop is additionally graded by the branch-and-bound
/// modulo scheduler (pipelining/ExactPipeliner.h); records land in \p Log
/// when one is supplied.
class PipeliningPass : public FunctionPass {
public:
  explicit PipeliningPass(const MachineModel &MM, bool FlowAlias = true,
                          ExactPipelineMode Exact = ExactPipelineMode::Off,
                          ExactPipelinerOptions ExactOpts = {},
                          PipelineLoopLog *Log = nullptr)
      : MM(MM), FlowAlias(FlowAlias), Exact(Exact), ExactOpts(ExactOpts),
        Log(Log) {}
  const char *name() const override { return "pipelining"; }
  PreservedAnalyses run(Function &F, Module &M, FunctionAnalyses &FA) override;

private:
  const MachineModel &MM;
  bool FlowAlias;
  ExactPipelineMode Exact;
  ExactPipelinerOptions ExactOpts;
  PipelineLoopLog *Log;
};

/// Global scheduling (vliw/Schedule.h).
class GlobalSchedulePass : public FunctionPass {
public:
  GlobalSchedulePass(const MachineModel &MM, GlobalScheduleOptions Opts)
      : MM(MM), Opts(Opts) {}
  const char *name() const override { return "global-schedule"; }
  PreservedAnalyses run(Function &F, Module &M, FunctionAnalyses &FA) override;

private:
  const MachineModel &MM;
  GlobalScheduleOptions Opts;
};

/// vliw/LimitedCombine.h followed by copy propagation and DCE (the
/// combining stage of the old pipeline).
class CombiningPass : public FunctionPass {
public:
  explicit CombiningPass(bool FlowAlias = true) : FlowAlias(FlowAlias) {}
  const char *name() const override { return "combining"; }
  PreservedAnalyses run(Function &F, Module &M, FunctionAnalyses &FA) override;

private:
  bool FlowAlias;
};

/// cfg/CfgEdit.h straightening as a standalone stage.
class StraightenPass : public FunctionPass {
public:
  const char *name() const override { return "straighten"; }
  PreservedAnalyses run(Function &F, Module &M, FunctionAnalyses &FA) override;
};

/// vliw/BlockExpansion.h.
class BlockExpansionPass : public FunctionPass {
public:
  explicit BlockExpansionPass(const MachineModel &MM) : MM(MM) {}
  const char *name() const override { return "block-expansion"; }
  PreservedAnalyses run(Function &F, Module &M, FunctionAnalyses &FA) override;

private:
  const MachineModel &MM;
};

/// opt/RegAlloc.h linear scan, per function.
class RegAllocPass : public FunctionPass {
public:
  const char *name() const override { return "regalloc"; }
  PreservedAnalyses run(Function &F, Module &M, FunctionAnalyses &FA) override;
};

/// vliw/PrologTailor.h callee-save prolog/epilog insertion.
class PrologPass : public FunctionPass {
public:
  explicit PrologPass(bool Tailored) : Tailored(Tailored) {}
  const char *name() const override { return "prolog"; }
  PreservedAnalyses run(Function &F, Module &M, FunctionAnalyses &FA) override;

private:
  bool Tailored;
};

/// opt/Inline.h leaf inlining — a true module pass (rewrites callers,
/// reads callee bodies), so it runs as a serial barrier.
class InlinePass : public ModulePass {
public:
  const char *name() const override { return "inline"; }
  std::string run(Module &M, FunctionAnalysisManager &FAM) override;
};

/// profile/PdfLayout.h measured layout gate — module-level (re-simulates
/// the whole module on the training input(s)). A non-null \p TrainBattery
/// takes precedence over \p TrainInput and sums cycles over the whole
/// battery through one predecoded engine; \p KeptOut (when non-null)
/// receives the gate decision (1 kept, 0 rolled back).
class PdfLayoutPass : public ModulePass {
public:
  PdfLayoutPass(const ProfileData &Profile, const MachineModel &MM,
                const RunOptions *TrainInput,
                const std::vector<RunOptions> *TrainBattery = nullptr,
                unsigned Threads = 1, int *KeptOut = nullptr)
      : Profile(Profile), MM(MM), TrainInput(TrainInput),
        TrainBattery(TrainBattery), Threads(Threads), KeptOut(KeptOut) {}
  const char *name() const override { return "pdf-layout"; }
  std::string run(Module &M, FunctionAnalysisManager &FAM) override;

private:
  const ProfileData &Profile;
  const MachineModel &MM;
  const RunOptions *TrainInput;
  const std::vector<RunOptions> *TrainBattery;
  unsigned Threads;
  int *KeptOut;
};

/// Final instruction-id renumbering across the module.
class RenumberPass : public ModulePass {
public:
  const char *name() const override { return "renumber"; }
  std::string run(Module &M, FunctionAnalysisManager &FAM) override;
};

} // namespace vsc

#endif // VSC_PM_PASSES_H
