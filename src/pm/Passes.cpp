//===- pm/Passes.cpp - Pass-interface wrappers ------------------------------===//

#include "pm/Passes.h"

#include "cfg/CfgEdit.h"
#include "opt/Classical.h"
#include "opt/Inline.h"
#include "opt/RegAlloc.h"
#include "profile/PdfLayout.h"
#include "profile/Superblock.h"
#include "vliw/BlockExpansion.h"
#include "vliw/LimitedCombine.h"
#include "vliw/LoadStoreMotion.h"
#include "vliw/PrologTailor.h"
#include "vliw/Rename.h"
#include "vliw/Unroll.h"
#include "vliw/Unspeculation.h"

using namespace vsc;

PreservedAnalyses ClassicalPass::run(Function &F, Module &,
                                     FunctionAnalyses &FA) {
  runClassicalPipeline(F, FA, FlowAlias);
  return PreservedAnalyses::all(); // cache maintained inside
}

PreservedAnalyses SuperblockPass::run(Function &F, Module &,
                                      FunctionAnalyses &FA) {
  formSuperblocks(F, Profile);
  // Tail duplication edits instructions and blocks without threading the
  // cache; reset before the cleanup round repopulates it.
  FA.invalidateAll();
  runClassicalPipeline(F, FA, FlowAlias);
  return PreservedAnalyses::all();
}

PreservedAnalyses LoadStoreMotionPass::run(Function &F, Module &M,
                                           FunctionAnalyses &FA) {
  speculativeLoadStoreMotion(F, M, FA, FlowAlias);
  runClassicalPipeline(F, FA, FlowAlias);
  return PreservedAnalyses::all();
}

PreservedAnalyses UnspeculationPass::run(Function &F, Module &,
                                         FunctionAnalyses &FA) {
  unspeculate(F, FA, FlowAlias);
  return PreservedAnalyses::all();
}

PreservedAnalyses UnrollRenamePass::run(Function &F, Module &,
                                        FunctionAnalyses &FA) {
  unrollInnermostLoops(F, Factor, /*MaxBodyInstrs=*/64, FA);
  straighten(F);
  renameInnermostLoops(F, FA);
  return PreservedAnalyses::all();
}

PreservedAnalyses PipeliningPass::run(Function &F, Module &M,
                                      FunctionAnalyses &FA) {
  PipelineLoopOptions PO;
  PO.FlowAlias = FlowAlias;
  PO.Exact = Exact;
  PO.ExactOpts = ExactOpts;
  std::vector<LoopPipelineRecord> Records;
  if (Log && Exact != ExactPipelineMode::Off)
    PO.Records = &Records;
  pipelineInnermostLoops(F, MM, M, PO, FA);
  if (PO.Records)
    Log->append(std::move(Records));
  return PreservedAnalyses::all();
}

PreservedAnalyses GlobalSchedulePass::run(Function &F, Module &M,
                                          FunctionAnalyses &FA) {
  globalSchedule(F, MM, M, Opts, FA);
  return PreservedAnalyses::all();
}

PreservedAnalyses CombiningPass::run(Function &F, Module &,
                                     FunctionAnalyses &FA) {
  CombineOptions CO;
  CO.FlowAlias = FlowAlias;
  limitedCombine(F, CO, FA);
  if (copyPropagate(F))
    FA.invalidate(PreservedAnalyses::structure());
  deadCodeElim(F, FA);
  return PreservedAnalyses::all();
}

PreservedAnalyses StraightenPass::run(Function &F, Module &,
                                      FunctionAnalyses &) {
  // straighten() bumps the CFG epoch on every edit, so the cache refreshes
  // itself.
  straighten(F);
  return PreservedAnalyses::all();
}

PreservedAnalyses BlockExpansionPass::run(Function &F, Module &,
                                          FunctionAnalyses &FA) {
  expandBasicBlocks(F, MM, ExpansionOptions(), FA);
  return PreservedAnalyses::all();
}

PreservedAnalyses RegAllocPass::run(Function &F, Module &,
                                    FunctionAnalyses &) {
  // Rewrites virtual registers to physical ones and inserts spill code.
  allocateRegisters(F);
  return PreservedAnalyses::none();
}

PreservedAnalyses PrologPass::run(Function &F, Module &,
                                  FunctionAnalyses &FA) {
  // insertPrologEpilog reads the cache for tailored placement but the
  // spill insertions leave it stale.
  insertPrologEpilog(F, Tailored, FA);
  return PreservedAnalyses::none();
}

std::string InlinePass::run(Module &M, FunctionAnalysisManager &FAM) {
  inlineLeafFunctions(M);
  FAM.invalidateAll();
  FAM.refresh();
  return "";
}

std::string PdfLayoutPass::run(Module &M, FunctionAnalysisManager &FAM) {
  bool Kept = TrainBattery
                  ? pdfLayoutMeasured(M, Profile, MM, *TrainBattery, Threads)
                  : pdfLayoutMeasured(M, Profile, MM, TrainInput);
  if (KeptOut)
    *KeptOut = Kept ? 1 : 0;
  FAM.invalidateAll();
  return "";
}

std::string RenumberPass::run(Module &M, FunctionAnalysisManager &FAM) {
  for (auto &F : M.functions())
    F->renumber();
  // Instruction ids are not part of any cached analysis, but this is the
  // last pass — a clean slate costs nothing.
  FAM.invalidateAll();
  return "";
}
