//===- pm/Analysis.cpp - Cached per-function analyses ----------------------===//

#include "pm/Analysis.h"

#include <algorithm>
#include <sstream>

using namespace vsc;

//===----------------------------------------------------------------------===//
// FunctionAnalyses
//===----------------------------------------------------------------------===//

void FunctionAnalyses::freshen() {
  if (Epoch == F.cfgEpoch())
    return;
  invalidateAll();
}

const Cfg &FunctionAnalyses::cfg() {
  freshen();
  count(CfgA != nullptr);
  if (!CfgA)
    CfgA = std::make_unique<Cfg>(F);
  return *CfgA;
}

const Dominators &FunctionAnalyses::dominators() {
  freshen();
  count(DomA != nullptr);
  if (!DomA)
    DomA = std::make_unique<Dominators>(cfg());
  return *DomA;
}

const Dominators &FunctionAnalyses::postDominators() {
  freshen();
  count(PostDomA != nullptr);
  if (!PostDomA)
    PostDomA = std::make_unique<Dominators>(cfg(), /*Post=*/true);
  return *PostDomA;
}

const LoopInfo &FunctionAnalyses::loops() {
  freshen();
  count(LoopsA != nullptr);
  if (!LoopsA) {
    const Cfg &G = cfg();
    LoopsA = std::make_unique<LoopInfo>(G, dominators());
  }
  return *LoopsA;
}

const BiconnectedComponents &FunctionAnalyses::biconnected() {
  freshen();
  count(BiconA != nullptr);
  if (!BiconA)
    BiconA = std::make_unique<BiconnectedComponents>(cfg());
  return *BiconA;
}

const RegUniverse &FunctionAnalyses::universe() {
  freshen();
  count(UnivA != nullptr);
  if (!UnivA)
    UnivA = std::make_unique<RegUniverse>(F);
  return *UnivA;
}

const Liveness &FunctionAnalyses::liveness() {
  freshen();
  count(LiveA != nullptr);
  if (!LiveA) {
    const Cfg &G = cfg();
    LiveA = std::make_unique<Liveness>(G, universe());
  }
  return *LiveA;
}

const AliasAnalysis &FunctionAnalyses::aliasAnalysis() {
  freshen();
  count(AliasA != nullptr);
  if (!AliasA) {
    // Cfg/LoopInfo are construction inputs only; the built analysis holds
    // no reference to them, so it caches independently.
    const Cfg &G = cfg();
    AliasA = std::make_unique<AliasAnalysis>(F, G, loops());
  }
  return *AliasA;
}

const MinIIAnalysis &FunctionAnalyses::minII(const MachineModel &MM,
                                             bool FlowAlias) {
  freshen();
  uint64_t Key = machineFingerprint(MM);
  bool Hit = MinIIA && MinIIA->machineKey() == Key &&
             MinIIA->flowAlias() == FlowAlias;
  count(Hit);
  if (!Hit) {
    const Cfg &G = cfg();
    const LoopInfo &LI = loops();
    const AliasAnalysis *AA = FlowAlias ? &aliasAnalysis() : nullptr;
    MinIIA = std::make_unique<MinIIAnalysis>(F, G, LI, AA, MM);
  }
  return *MinIIA;
}

void FunctionAnalyses::invalidate(const PreservedAnalyses &PA) {
  freshen();
  if (PA.preservesAll())
    return;

  // Dependency closure over the declared claim: Cfg feeds everything;
  // Dominators feed Loops; the RegUniverse/Liveness pair lives and dies
  // together (Liveness holds a reference into its universe).
  bool DropCfg = !PA.preserves(AnalysisKind::Cfg);
  bool DropDom = DropCfg || !PA.preserves(AnalysisKind::Dominators);
  bool DropPostDom = DropCfg || !PA.preserves(AnalysisKind::PostDominators);
  bool DropLoops = DropDom || !PA.preserves(AnalysisKind::Loops);
  bool DropBicon = DropCfg || !PA.preserves(AnalysisKind::Biconnected);
  bool DropLive = DropCfg || !PA.preserves(AnalysisKind::Liveness);
  // Alias tracks register contents through the loop structure: anything
  // that moves control flow, loops, or register values moves it too.
  bool DropAlias =
      DropCfg || DropLoops || DropLive || !PA.preserves(AnalysisKind::Alias);
  // MinII reads loop structure, register dependences and alias facts:
  // anything that moves any of those moves it too.
  bool DropMinII =
      DropLoops || DropAlias || !PA.preserves(AnalysisKind::MinII);

  // Destruction order: dependents first (Liveness references the
  // universe; LoopInfo holds Cfg edges).
  if (DropMinII)
    MinIIA.reset();
  if (DropAlias)
    AliasA.reset();
  if (DropLive) {
    LiveA.reset();
    UnivA.reset();
  }
  if (DropLoops)
    LoopsA.reset();
  if (DropBicon)
    BiconA.reset();
  if (DropPostDom)
    PostDomA.reset();
  if (DropDom)
    DomA.reset();
  if (DropCfg)
    CfgA.reset();
}

void FunctionAnalyses::invalidateAll() {
  MinIIA.reset();
  AliasA.reset();
  LiveA.reset();
  UnivA.reset();
  LoopsA.reset();
  BiconA.reset();
  PostDomA.reset();
  DomA.reset();
  CfgA.reset();
  Epoch = F.cfgEpoch();
}

bool FunctionAnalyses::hasCached(AnalysisKind K) const {
  if (Epoch != F.cfgEpoch())
    return false;
  switch (K) {
  case AnalysisKind::Cfg:
    return CfgA != nullptr;
  case AnalysisKind::Dominators:
    return DomA != nullptr;
  case AnalysisKind::PostDominators:
    return PostDomA != nullptr;
  case AnalysisKind::Loops:
    return LoopsA != nullptr;
  case AnalysisKind::Biconnected:
    return BiconA != nullptr;
  case AnalysisKind::Liveness:
    return UnivA != nullptr && LiveA != nullptr;
  case AnalysisKind::Alias:
    return AliasA != nullptr;
  case AnalysisKind::MinII:
    return MinIIA != nullptr;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Debug recompute-and-compare
//===----------------------------------------------------------------------===//

namespace {

std::string summarizeCfg(const Function &F, const Cfg &G) {
  std::ostringstream OS;
  for (const auto &BBPtr : F.blocks()) {
    const BasicBlock *BB = BBPtr.get();
    OS << BB->label() << "[" << G.rpoIndex(BB) << "]:";
    for (const CfgEdge &E : G.succs(BB))
      OS << " " << E.To->label() << (E.IsTaken ? "/t" : "/f") << "@"
         << E.TermIdx;
    OS << ";";
  }
  return OS.str();
}

std::string summarizeDom(const Function &F, const Dominators &D) {
  std::ostringstream OS;
  for (const auto &BBPtr : F.blocks()) {
    const BasicBlock *Idom = D.idom(BBPtr.get());
    OS << BBPtr->label() << "<-" << (Idom ? Idom->label() : "-") << ";";
  }
  return OS.str();
}

std::string summarizeLoops(const LoopInfo &LI) {
  std::ostringstream OS;
  for (const auto &LPtr : LI.loops()) {
    const Loop &L = *LPtr;
    OS << L.Header->label() << "(d" << L.Depth << ",p"
       << (L.Parent ? L.Parent->Header->label() : "-") << "){";
    for (const BasicBlock *BB : L.Blocks)
      OS << BB->label() << " ";
    OS << "|latch:";
    for (const BasicBlock *BB : L.Latches)
      OS << BB->label() << " ";
    OS << "|exit:";
    for (const CfgEdge &E : L.Exits)
      OS << E.From->label() << ">" << E.To->label()
         << (E.IsTaken ? "/t" : "/f") << "@" << E.TermIdx << " ";
    OS << "};";
  }
  return OS.str();
}

std::string summarizeBicon(const BiconnectedComponents &BC) {
  std::ostringstream OS;
  OS << "root" << BC.rootComponent() << ";";
  for (const auto &C : BC.components()) {
    OS << "(p" << C.Parent << ",s"
       << (C.SharedWithParent ? C.SharedWithParent->label() : "-") << "){";
    for (const BasicBlock *BB : C.Blocks)
      OS << BB->label() << " ";
    OS << "};";
  }
  for (const BasicBlock *BB : BC.articulationPoints())
    OS << "art:" << BB->label() << ";";
  return OS.str();
}

std::string summarizeLiveness(const Function &F, const RegUniverse &U,
                              const Liveness &L) {
  // RegUniverse enumerates registers in instruction order, so two
  // universes over semantically identical code can index the same set
  // differently (e.g. after a legal within-block reorder). Sort the
  // names so the summary compares sets, not enumerations.
  auto Names = [&U](const BitVector &S) {
    std::vector<std::string> Rs;
    for (size_t I = 0, E = U.size(); I != E; ++I)
      if (S.test(I))
        Rs.push_back(U.regAt(I).str());
    std::sort(Rs.begin(), Rs.end());
    std::string Out;
    for (const std::string &R : Rs)
      Out += R + " ";
    return Out;
  };
  std::ostringstream OS;
  for (const auto &BBPtr : F.blocks()) {
    const BasicBlock *BB = BBPtr.get();
    OS << BB->label() << " in:" << Names(L.liveIn(BB))
       << "out:" << Names(L.liveOut(BB)) << ";";
  }
  return OS.str();
}

} // namespace

std::string FunctionAnalyses::verifyCache() {
  // An epoch mismatch means the cache is already logically empty — the
  // next getter recomputes — so only epoch-fresh entries can lie.
  freshen();

  if (CfgA) {
    Cfg Fresh(F);
    if (summarizeCfg(F, *CfgA) != summarizeCfg(F, Fresh))
      return "stale Cfg for @" + F.name() +
             ": a pass mutated control flow but claimed to preserve Cfg";
    if (DomA && summarizeDom(F, *DomA) !=
                    summarizeDom(F, Dominators(Fresh, /*Post=*/false)))
      return "stale Dominators for @" + F.name() +
             ": a pass mutated control flow but claimed to preserve "
             "Dominators";
    if (PostDomA && summarizeDom(F, *PostDomA) !=
                        summarizeDom(F, Dominators(Fresh, /*Post=*/true)))
      return "stale PostDominators for @" + F.name() +
             ": a pass mutated control flow but claimed to preserve "
             "PostDominators";
    if (LoopsA) {
      Dominators FreshDom(Fresh, /*Post=*/false);
      if (summarizeLoops(*LoopsA) != summarizeLoops(LoopInfo(Fresh, FreshDom)))
        return "stale Loops for @" + F.name() +
               ": a pass mutated control flow but claimed to preserve Loops";
    }
    if (BiconA && summarizeBicon(*BiconA) !=
                      summarizeBicon(BiconnectedComponents(Fresh)))
      return "stale Biconnected for @" + F.name() +
             ": a pass mutated control flow but claimed to preserve "
             "Biconnected";
    if (UnivA && LiveA) {
      RegUniverse FreshU(F);
      if (summarizeLiveness(F, *UnivA, *LiveA) !=
          summarizeLiveness(F, FreshU, Liveness(Fresh, FreshU)))
        return "stale Liveness for @" + F.name() +
               ": a pass changed register contents or control flow but "
               "claimed to preserve Liveness";
    }
  }
  // The alias analysis builds its own views, so it is checkable even when
  // Cfg itself was never cached.
  if (AliasA && AliasA->summarize() != AliasAnalysis(F).summarize())
    return "stale AliasAnalysis for @" + F.name() +
           ": a pass changed base-register contents or control flow but "
           "claimed to preserve Alias";
  if (MinIIA) {
    Cfg Fresh(F);
    Dominators FreshDom(Fresh, /*Post=*/false);
    LoopInfo FreshLI(Fresh, FreshDom);
    std::unique_ptr<AliasAnalysis> FreshAA;
    if (MinIIA->flowAlias())
      FreshAA = std::make_unique<AliasAnalysis>(F, Fresh, FreshLI);
    MinIIAnalysis FreshMin(F, Fresh, FreshLI, FreshAA.get(),
                           MinIIA->machine());
    if (MinIIA->summarize() != FreshMin.summarize())
      return "stale MinII for @" + F.name() +
             ": a pass changed loops, dependences or alias facts but "
             "claimed to preserve MinII";
  }
  return "";
}

//===----------------------------------------------------------------------===//
// FunctionAnalysisManager
//===----------------------------------------------------------------------===//

FunctionAnalyses &FunctionAnalysisManager::on(Function &F) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto &Slot = Entries[&F];
  if (!Slot)
    Slot = std::make_unique<FunctionAnalyses>(F);
  return *Slot;
}

void FunctionAnalysisManager::invalidateAll() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &KV : Entries)
    KV.second->invalidateAll();
}

void FunctionAnalysisManager::refresh() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto It = Entries.begin(); It != Entries.end();) {
    bool Alive = false;
    for (const auto &F : M.functions())
      if (F.get() == It->first) {
        Alive = true;
        break;
      }
    It = Alive ? std::next(It) : Entries.erase(It);
  }
}

FunctionAnalyses::Stats FunctionAnalysisManager::totalStats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  FunctionAnalyses::Stats Total;
  for (const auto &KV : Entries) {
    Total.Hits += KV.second->stats().Hits;
    Total.Misses += KV.second->stats().Misses;
  }
  return Total;
}
