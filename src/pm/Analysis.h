//===- pm/Analysis.h - Cached per-function analyses -----------*- C++ -*-===//
///
/// \file
/// The analysis-caching half of the pass manager (pm/PassManager.h).
///
/// FunctionAnalyses owns at most one cached instance of each analysis the
/// pipeline uses (Cfg, Dominators, PostDominators, LoopInfo,
/// BiconnectedComponents, RegUniverse+Liveness) for one function. Getters
/// compute on first use and return a cached const reference afterwards.
///
/// Invalidation is two-layered:
///
///  1. Structural (automatic): Function keeps a CFG-edit epoch
///     (Function::cfgEpoch(), bumped by block-list mutators and the
///     cfg/CfgEdit.h surgery helpers). Every getter compares the epoch
///     against the value captured when the cache was filled and drops
///     everything on mismatch. A pass cannot "forget" to invalidate after
///     block surgery.
///
///  2. Declared (PreservedAnalyses): after a pass runs, the manager calls
///     invalidate() with the pass's PreservedAnalyses return value. The
///     dependency closure is applied automatically: dropping Cfg drops
///     all derived analyses, dropping Dominators drops Loops, dropping
///     Liveness drops the RegUniverse it was numbered against.
///
/// The preservation rules passes follow (see DESIGN.md §9):
///  - inserting or erasing ANY instruction invalidates structurally — even
///    when the graph shape is unchanged — because CfgEdge::TermIdx indexes
///    a branch inside its block's instruction vector, and Loop::Exits
///    store such edges;
///  - rewriting instructions in place (operand/opcode changes that leave
///    branches and block boundaries alone) preserves structure() but not
///    Liveness;
///  - reordering only the non-terminator prefix of a block (local
///    scheduling) preserves all().
///
/// References returned by getters are valid until the next invalidation —
/// including the implicit epoch check a later getter performs. A pass that
/// mutates its function must not mix pre-mutation references with
/// post-mutation getter calls.
///
/// Debug mode (VSC_CHECK_ANALYSES=1 or FunctionPassManager flag):
/// verifyCache() recomputes every cached analysis from scratch and
/// compares; a pass that mutated the CFG while claiming preservation is
/// reported by name.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_PM_ANALYSIS_H
#define VSC_PM_ANALYSIS_H

#include "analysis/Liveness.h"
#include "analysis/ValueTrack.h"
#include "cfg/Biconnected.h"
#include "cfg/Dominators.h"
#include "cfg/Loops.h"
#include "ir/Module.h"
#include "pipelining/MinII.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace vsc {

/// Every analysis the manager can cache. Liveness covers the
/// RegUniverse/Liveness pair (Liveness holds a reference into the
/// universe it was numbered against, so they cache and die together).
enum class AnalysisKind : unsigned {
  Cfg = 0,
  Dominators,
  PostDominators,
  Loops,
  Biconnected,
  Liveness,
  Alias,
  MinII,
};
constexpr unsigned NumAnalysisKinds = 8;

/// What a pass kept intact, as a bitmask over AnalysisKind. Passes build
/// one of these as their return value; the manager applies it (plus the
/// dependency closure) to the cache.
class PreservedAnalyses {
public:
  /// Nothing survives. The safe default for any pass that inserts or
  /// erases instructions (see the TermIdx rule in the file comment).
  static PreservedAnalyses none() { return PreservedAnalyses(0); }

  /// Everything survives. Correct only for passes that change nothing or
  /// only reorder the non-terminator prefix of blocks.
  static PreservedAnalyses all() { return PreservedAnalyses(AllMask); }

  /// Structure survives, register contents do not: Cfg, Dominators,
  /// PostDominators, Loops and Biconnected are kept; Liveness and the
  /// alias analysis (both functions of register contents) are dropped.
  /// Correct for in-place rewrites that leave every branch and block
  /// boundary untouched (copy propagation, local value numbering).
  static PreservedAnalyses structure() {
    PreservedAnalyses PA = all();
    return PA.abandon(AnalysisKind::Liveness)
        .abandon(AnalysisKind::Alias)
        .abandon(AnalysisKind::MinII);
  }

  PreservedAnalyses &preserve(AnalysisKind K) {
    Mask |= bit(K);
    return *this;
  }
  PreservedAnalyses &abandon(AnalysisKind K) {
    Mask &= ~bit(K);
    return *this;
  }

  bool preserves(AnalysisKind K) const { return (Mask & bit(K)) != 0; }
  bool preservesAll() const { return Mask == AllMask; }
  bool preservesNone() const { return Mask == 0; }

private:
  explicit PreservedAnalyses(unsigned Mask) : Mask(Mask) {}
  static unsigned bit(AnalysisKind K) {
    return 1u << static_cast<unsigned>(K);
  }
  static constexpr unsigned AllMask = (1u << NumAnalysisKinds) - 1;
  unsigned Mask = 0;
};

/// The cached analyses of one function. Not thread-safe by itself; the
/// parallel driver gives each worker exclusive access to the entries of
/// the functions it is compiling.
class FunctionAnalyses {
public:
  struct Stats {
    uint64_t Hits = 0;   ///< getter served from cache
    uint64_t Misses = 0; ///< getter had to compute
  };

  explicit FunctionAnalyses(Function &F) : F(F), Epoch(F.cfgEpoch()) {}

  Function &function() const { return F; }

  const Cfg &cfg();
  const Dominators &dominators();
  const Dominators &postDominators();
  const LoopInfo &loops();
  const BiconnectedComponents &biconnected();
  const RegUniverse &universe();
  const Liveness &liveness();
  const AliasAnalysis &aliasAnalysis();
  /// Min-II lower bounds per innermost loop (pipelining/MinII.h). Keyed by
  /// the machine fingerprint and the alias tier: asking for a different
  /// machine (or flipping \p FlowAlias) recomputes and re-caches, asking
  /// for the same one is a hit.
  const MinIIAnalysis &minII(const MachineModel &MM, bool FlowAlias);

  /// Applies a pass's preservation claim: drops every analysis the claim
  /// abandons, plus everything depending on a dropped analysis.
  void invalidate(const PreservedAnalyses &PA);
  void invalidateAll();

  /// \returns true if \p K is cached AND still structurally fresh (an
  /// epoch mismatch counts as not cached). Test/bench introspection.
  bool hasCached(AnalysisKind K) const;

  const Stats &stats() const { return Counters; }

  /// Debug check: recomputes every cached analysis from the function's
  /// current state and compares against the cache. \returns "" when
  /// consistent, else a message naming the stale analysis — evidence of a
  /// pass that mutated the CFG while claiming preservation.
  std::string verifyCache();

private:
  /// Drops everything if the function's CFG epoch moved past the cache.
  void freshen();
  void count(bool Hit) { Hit ? ++Counters.Hits : ++Counters.Misses; }

  Function &F;
  uint64_t Epoch;
  Stats Counters;

  std::unique_ptr<Cfg> CfgA;
  std::unique_ptr<Dominators> DomA;
  std::unique_ptr<Dominators> PostDomA;
  std::unique_ptr<LoopInfo> LoopsA;
  std::unique_ptr<BiconnectedComponents> BiconA;
  std::unique_ptr<RegUniverse> UnivA;
  std::unique_ptr<Liveness> LiveA;
  std::unique_ptr<AliasAnalysis> AliasA;
  std::unique_ptr<MinIIAnalysis> MinIIA;
};

/// Per-module registry of FunctionAnalyses. Entry creation is
/// mutex-guarded so parallel workers can each fetch their function's
/// entry; everything past on() is single-owner by the driver's contract.
class FunctionAnalysisManager {
public:
  explicit FunctionAnalysisManager(Module &M) : M(M) {}

  Module &module() const { return M; }

  FunctionAnalyses &on(Function &F);

  /// Drops every cache (module-level passes mutate arbitrary functions).
  void invalidateAll();

  /// Reconciles with the module after functions were added or removed
  /// (e.g. inlining): entries of vanished functions are destroyed so no
  /// dangling Function& survives.
  void refresh();

  /// Aggregate hit/miss counters across all entries (bench reporting).
  FunctionAnalyses::Stats totalStats() const;

private:
  Module &M;
  mutable std::mutex Mu;
  std::unordered_map<Function *, std::unique_ptr<FunctionAnalyses>> Entries;
};

} // namespace vsc

#endif // VSC_PM_ANALYSIS_H
