//===- pm/PassManager.cpp - Function/module pass managers ------------------===//

#include "pm/PassManager.h"

#include <cstdlib>

using namespace vsc;

FunctionPassManager::FunctionPassManager() {
  const char *E = std::getenv("VSC_CHECK_ANALYSES");
  CheckAnalyses = E && *E && *E != '0';
}

std::string FunctionPassManager::run(Function &F, Module &M,
                                     FunctionAnalyses &FA,
                                     const PassInstrumentation *PI) const {
  for (const auto &P : Passes) {
    PreservedAnalyses PA = P->run(F, M, FA);
    FA.invalidate(PA);
    if (CheckAnalyses) {
      std::string Err = FA.verifyCache();
      if (!Err.empty())
        return std::string("analysis check after pass '") + P->name() +
               "': " + Err;
    }
    if (PI && PI->AfterFunctionPass)
      PI->AfterFunctionPass(*P, F);
  }
  return "";
}

std::string FunctionToModulePassAdaptor::run(Module &M,
                                             FunctionAnalysisManager &FAM) {
  // Snapshot the function list: function passes never add or remove
  // functions (that is a module pass's job), so the snapshot stays valid
  // across the whole region.
  std::vector<Function *> Fns;
  Fns.reserve(M.functions().size());
  for (const auto &F : M.functions())
    Fns.push_back(F.get());

  const PassInstrumentation *PI = Instr;
  bool PerPassHooks = PI && PI->AfterFunctionPass;
  std::vector<std::string> Errors(Fns.size());

  if (!PerPassHooks && Threads > 1) {
    // Parallel region: one task per function; each worker owns its
    // function's cache entry exclusively. Per-pass hooks are absent by
    // the check above, so nothing observes cross-function state until
    // the barrier below.
    ThreadPool Pool(Threads);
    Pool.parallelFor(Fns.size(), [&](size_t I) {
      Errors[I] = FPM.run(*Fns[I], M, FAM.on(*Fns[I]));
    });
  } else {
    for (size_t I = 0; I != Fns.size(); ++I) {
      Errors[I] = FPM.run(*Fns[I], M, FAM.on(*Fns[I]), PI);
      if (!Errors[I].empty())
        break;
    }
  }

  // Deterministic failure selection + serial post-barrier checkpoints in
  // module layout order (checks may execute code and read callee bodies).
  for (size_t I = 0; I != Fns.size(); ++I) {
    if (!Errors[I].empty())
      return Errors[I];
    if (PI && PI->AfterFunctionChain)
      PI->AfterFunctionChain(*Fns[I], StageName);
  }
  return "";
}

void ModulePassManager::addFunctionPasses(std::string StageName,
                                          FunctionPassManager FPM,
                                          unsigned Threads) {
  add(std::make_unique<FunctionToModulePassAdaptor>(
      std::move(StageName), std::move(FPM), Threads));
}

std::string ModulePassManager::run(Module &M,
                                   FunctionAnalysisManager &FAM) const {
  for (const auto &P : Passes) {
    if (auto *A = dynamic_cast<FunctionToModulePassAdaptor *>(P.get()))
      A->setInstrumentation(&Instr);
    std::string Err = P->run(M, FAM);
    if (!Err.empty())
      return std::string(P->name()) + ": " + Err;
    if (Instr.AfterModulePass)
      Instr.AfterModulePass(*P, M);
  }
  return "";
}
