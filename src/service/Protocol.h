//===- service/Protocol.h - vscd request/response text protocol -*- C++ -*-===//
///
/// \file
/// The newline-delimited text protocol examples/vscd.cpp speaks: one
/// request per line, one response line per request, in request order.
///
/// Request grammar (tokens separated by spaces):
///
///   compile      [name=TAG] (kernel=NAME | src=FILE) [level=O0|O2|O3]
///                [machine=NAME] [superblocks=1] [profile=FILE]
///                [args=N,N,...]
///   simulate     ... compile keys ... [args=N,...] [input=N,...]
///   pdf          ... [train=N,...] [test=N,...]   (kernel scales)
///   save-profile ... out=FILE [args=N,...] [train=N,...]
///
/// Lines that are blank or start with '#' are skipped. A request without
/// name= gets "r<line-number>" so responses stay attributable.
///
/// Response lines: "<name> ok <body>" or "<name> error <message>" —
/// rendered purely from request content and cached artifacts, so the
/// bytes are identical however the stream was ordered, batched, or
/// threaded.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_SERVICE_PROTOCOL_H
#define VSC_SERVICE_PROTOCOL_H

#include "service/CompileService.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace vsc {

struct ParsedRequestLine {
  /// Blank / comment line — nothing to serve, nothing to answer.
  bool Blank = false;
  /// Non-empty when the line failed to parse; the caller renders it as an
  /// error response under R.Name.
  std::string Error;
  ServiceRequest R;
};

/// Parses one request line. \p LineNo (1-based) names anonymous requests
/// "r<LineNo>". src=FILE is read here, so the service itself never does
/// source I/O.
ParsedRequestLine parseRequestLine(const std::string &Line, size_t LineNo);

/// A whole request stream, parsed: the accepted requests (in stream
/// order), parse failures pre-rendered as error responses, and the
/// per-line interleaving needed to emit one response line per request
/// line.
struct ParsedRequestStream {
  std::vector<ServiceRequest> Requests;
  std::vector<ServiceResponse> ParseErrors;
  /// One entry per non-blank request line, in stream order: index into
  /// Requests when >= 0, else -(index into ParseErrors) - 1.
  std::vector<int> Slot;
};

/// Parses \p In to end-of-stream: one parseRequestLine per line, blank /
/// comment lines skipped, parse errors captured in place so responses can
/// stay one line per request line. A final request not terminated by a
/// newline is parsed like any other line — a stream must never lose its
/// last request to a missing '\n' (locked in by tests/test_service.cpp).
ParsedRequestStream parseRequestStream(std::istream &In);

/// "<name> ok <body>\n" / "<name> error <message>\n".
std::string renderResponse(const ServiceResponse &R);

} // namespace vsc

#endif // VSC_SERVICE_PROTOCOL_H
