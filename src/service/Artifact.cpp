//===- service/Artifact.cpp - Sealed, content-addressed artifacts -----------===//

#include "service/Artifact.h"

#include <cstring>

using namespace vsc;

static const char ArtifactMagic[4] = {'V', 'S', 'C', 'A'};
static constexpr uint32_t ArtifactFormatVersion = 1;

const char *vsc::artifactClassName(ArtifactClass C) {
  switch (C) {
  case ArtifactClass::Frontend:
    return "frontend";
  case ArtifactClass::Prepared:
    return "prepared";
  case ArtifactClass::Optimized:
    return "optimized";
  case ArtifactClass::Image:
    return "image";
  case ArtifactClass::Profile:
    return "profile";
  case ArtifactClass::SimResult:
    return "sim-result";
  case ArtifactClass::NumClasses:
    break;
  }
  return "?";
}

const char *vsc::artifactFaultName(ArtifactFault F) {
  switch (F) {
  case ArtifactFault::None:
    return "none";
  case ArtifactFault::Missing:
    return "missing";
  case ArtifactFault::Truncated:
    return "truncated";
  case ArtifactFault::BadMagic:
    return "bad-magic";
  case ArtifactFault::UnsupportedVersion:
    return "unsupported-version";
  case ArtifactFault::WrongClass:
    return "wrong-class";
  case ArtifactFault::Stale:
    return "stale";
  case ArtifactFault::Corrupt:
    return "corrupt";
  }
  return "?";
}

std::string vsc::artifactFaultMessage(ArtifactFault F, ArtifactClass C) {
  std::string Name = artifactClassName(C);
  switch (F) {
  case ArtifactFault::None:
    return "";
  case ArtifactFault::Missing:
    return Name + " artifact missing";
  case ArtifactFault::Truncated:
    return Name + " artifact image truncated";
  case ArtifactFault::BadMagic:
    return "not a sealed " + Name + " artifact (bad magic)";
  case ArtifactFault::UnsupportedVersion:
    return "unsupported " + Name + " artifact format version";
  case ArtifactFault::WrongClass:
    return Name + " artifact key resolved to a different class";
  case ArtifactFault::Stale:
    return "stale " + Name +
           " artifact: module CFG fingerprint does not match";
  case ArtifactFault::Corrupt:
    return Name + " artifact image corrupt (checksum mismatch)";
  }
  return Name + " artifact fault";
}

uint64_t vsc::fnv1aBytes(const void *Data, size_t Size, uint64_t Seed) {
  uint64_t H = Seed;
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  for (size_t I = 0; I != Size; ++I) {
    H ^= P[I];
    H *= 1099511628211ULL;
  }
  return H;
}

uint64_t vsc::fnv1aWords(std::initializer_list<uint64_t> Words,
                         uint64_t Seed) {
  uint64_t H = Seed;
  for (uint64_t W : Words)
    for (int I = 0; I != 8; ++I) {
      H ^= (W >> (8 * I)) & 0xff;
      H *= 1099511628211ULL;
    }
  return H;
}

static void putU32(std::vector<uint8_t> &Out, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

static void putU64(std::vector<uint8_t> &Out, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

static uint32_t getU32(const uint8_t *P) {
  uint32_t V = 0;
  for (int I = 0; I != 4; ++I)
    V |= static_cast<uint32_t>(P[I]) << (8 * I);
  return V;
}

static uint64_t getU64(const uint8_t *P) {
  uint64_t V = 0;
  for (int I = 0; I != 8; ++I)
    V |= static_cast<uint64_t>(P[I]) << (8 * I);
  return V;
}

// magic(4) + version(4) + class(1) + fingerprint(8) + payload-size(8)
static constexpr size_t HeaderBytes = 4 + 4 + 1 + 8 + 8;

std::vector<uint8_t> vsc::sealArtifact(ArtifactClass C, uint64_t Fingerprint,
                                       const std::string &Payload) {
  std::vector<uint8_t> Out;
  Out.reserve(HeaderBytes + Payload.size() + 8);
  Out.insert(Out.end(), ArtifactMagic, ArtifactMagic + 4);
  putU32(Out, ArtifactFormatVersion);
  Out.push_back(static_cast<uint8_t>(C));
  putU64(Out, Fingerprint);
  putU64(Out, Payload.size());
  Out.insert(Out.end(), Payload.begin(), Payload.end());
  putU64(Out, fnv1aBytes(Out.data(), Out.size()));
  return Out;
}

ArtifactFault vsc::openArtifact(const std::vector<uint8_t> &Sealed,
                                ArtifactClass Expect, uint64_t ExpectFp,
                                std::string *Payload) {
  if (Sealed.size() < HeaderBytes + 8)
    return ArtifactFault::Truncated;
  if (std::memcmp(Sealed.data(), ArtifactMagic, 4) != 0)
    return ArtifactFault::BadMagic;
  if (getU32(Sealed.data() + 4) != ArtifactFormatVersion)
    return ArtifactFault::UnsupportedVersion;
  uint64_t PayloadSize = getU64(Sealed.data() + 4 + 4 + 1 + 8);
  if (Sealed.size() != HeaderBytes + PayloadSize + 8)
    return ArtifactFault::Truncated;
  uint64_t Stored = getU64(Sealed.data() + Sealed.size() - 8);
  if (Stored != fnv1aBytes(Sealed.data(), Sealed.size() - 8))
    return ArtifactFault::Corrupt;
  if (Sealed[4 + 4] != static_cast<uint8_t>(Expect))
    return ArtifactFault::WrongClass;
  uint64_t Fp = getU64(Sealed.data() + 4 + 4 + 1);
  if (ExpectFp && Fp != ExpectFp)
    return ArtifactFault::Stale;
  if (Payload)
    Payload->assign(reinterpret_cast<const char *>(Sealed.data()) +
                        HeaderBytes,
                    PayloadSize);
  return ArtifactFault::None;
}

Artifact vsc::makeArtifact(ArtifactClass C, uint64_t Fingerprint,
                           const std::string &Payload) {
  Artifact A;
  A.Class = C;
  A.Fingerprint = Fingerprint;
  A.Sealed = sealArtifact(C, Fingerprint, Payload);
  return A;
}
