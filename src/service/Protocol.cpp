//===- service/Protocol.cpp - vscd request/response text protocol -----------===//

#include "service/Protocol.h"

#include <cstdlib>
#include <fstream>
#include <istream>
#include <sstream>

using namespace vsc;

namespace {

std::vector<std::string> splitTokens(const std::string &Line) {
  std::vector<std::string> Toks;
  std::istringstream In(Line);
  std::string T;
  while (In >> T)
    Toks.push_back(T);
  return Toks;
}

bool parseIntList(const std::string &V, std::vector<int64_t> &Out,
                  std::string &Err) {
  Out.clear();
  std::string Cur;
  std::istringstream In(V);
  while (std::getline(In, Cur, ',')) {
    char *End = nullptr;
    long long N = std::strtoll(Cur.c_str(), &End, 10);
    if (Cur.empty() || *End) {
      Err = "bad integer '" + Cur + "' in '" + V + "'";
      return false;
    }
    Out.push_back(N);
  }
  return true;
}

bool parseLevel(const std::string &V, OptLevel &L) {
  if (V == "O0" || V == "none")
    L = OptLevel::None;
  else if (V == "O2" || V == "classical")
    L = OptLevel::Classical;
  else if (V == "O3" || V == "vliw")
    L = OptLevel::Vliw;
  else
    return false;
  return true;
}

} // namespace

ParsedRequestLine vsc::parseRequestLine(const std::string &Line,
                                        size_t LineNo) {
  ParsedRequestLine P;
  P.R.Name = "r" + std::to_string(LineNo);

  size_t First = Line.find_first_not_of(" \t\r");
  if (First == std::string::npos || Line[First] == '#') {
    P.Blank = true;
    return P;
  }

  std::vector<std::string> Toks = splitTokens(Line);
  const std::string &Op = Toks.front();
  if (Op == "compile")
    P.R.Kind = ServiceRequest::Op::Compile;
  else if (Op == "simulate")
    P.R.Kind = ServiceRequest::Op::Simulate;
  else if (Op == "pdf")
    P.R.Kind = ServiceRequest::Op::Pdf;
  else if (Op == "save-profile")
    P.R.Kind = ServiceRequest::Op::SaveProfile;
  else {
    P.Error = "unknown op '" + Op + "'";
    return P;
  }

  for (size_t I = 1; I != Toks.size(); ++I) {
    const std::string &T = Toks[I];
    size_t Eq = T.find('=');
    if (Eq == std::string::npos || Eq == 0) {
      P.Error = "expected key=value, got '" + T + "'";
      return P;
    }
    std::string Key = T.substr(0, Eq), Val = T.substr(Eq + 1);
    std::string Err;
    if (Key == "name") {
      P.R.Name = Val;
    } else if (Key == "kernel") {
      P.R.Kernel = Val;
    } else if (Key == "src") {
      std::ifstream In(Val);
      if (!In) {
        P.Error = "cannot open " + Val;
        return P;
      }
      std::stringstream Buf;
      Buf << In.rdbuf();
      P.R.Source = Buf.str();
    } else if (Key == "machine") {
      P.R.MachineName = Val;
    } else if (Key == "level") {
      if (!parseLevel(Val, P.R.Level)) {
        P.Error = "unknown level '" + Val + "'";
        return P;
      }
    } else if (Key == "superblocks") {
      P.R.Superblocks = Val == "1" || Val == "true";
    } else if (Key == "args") {
      if (!parseIntList(Val, P.R.Args, Err)) {
        P.Error = Err;
        return P;
      }
    } else if (Key == "input") {
      if (!parseIntList(Val, P.R.Input, Err)) {
        P.Error = Err;
        return P;
      }
    } else if (Key == "train") {
      if (!parseIntList(Val, P.R.Train, Err)) {
        P.Error = Err;
        return P;
      }
    } else if (Key == "test") {
      if (!parseIntList(Val, P.R.Test, Err)) {
        P.Error = Err;
        return P;
      }
    } else if (Key == "profile") {
      P.R.ProfileIn = Val;
    } else if (Key == "out") {
      P.R.ProfileOut = Val;
    } else {
      P.Error = "unknown key '" + Key + "'";
      return P;
    }
  }
  return P;
}

ParsedRequestStream vsc::parseRequestStream(std::istream &In) {
  ParsedRequestStream S;
  std::string Line;
  // std::getline returns the final line whether or not it ends in '\n',
  // so a newline-less trailing request is served like any other.
  for (size_t LineNo = 1; std::getline(In, Line); ++LineNo) {
    ParsedRequestLine P = parseRequestLine(Line, LineNo);
    if (P.Blank)
      continue;
    if (!P.Error.empty()) {
      ServiceResponse E;
      E.Name = P.R.Name;
      E.Ok = false;
      E.Text = P.Error;
      S.Slot.push_back(-static_cast<int>(S.ParseErrors.size()) - 1);
      S.ParseErrors.push_back(std::move(E));
      continue;
    }
    S.Slot.push_back(static_cast<int>(S.Requests.size()));
    S.Requests.push_back(std::move(P.R));
  }
  return S;
}

std::string vsc::renderResponse(const ServiceResponse &R) {
  return R.Name + (R.Ok ? " ok " : " error ") + R.Text + "\n";
}
