//===- service/ArtifactCache.cpp - Content-addressed LRU cache --------------===//

#include "service/ArtifactCache.h"

using namespace vsc;

ArtifactCache::ArtifactCache(size_t ByteBudget)
    : Budget(ByteBudget ? ByteBudget : 1) {}

void ArtifactCache::evictLocked(LruList::iterator It, bool Rejection) {
  ArtifactClassStats &S =
      ClassStats[static_cast<size_t>(It->A->Class)];
  ++S.Evictions;
  if (Rejection)
    ++S.Rejections;
  Used -= It->A->bytes();
  Map.erase(It->Key);
  Lru.erase(It);
}

std::shared_ptr<const Artifact>
ArtifactCache::get(const ArtifactKey &K, uint64_t ExpectFp,
                   ArtifactFault *Fault) {
  std::lock_guard<std::mutex> Lock(Mu);
  ArtifactClassStats &S = ClassStats[static_cast<size_t>(K.Class)];
  auto It = Map.find(K);
  if (It == Map.end()) {
    ++S.Misses;
    if (Fault)
      *Fault = ArtifactFault::Missing;
    return nullptr;
  }
  std::shared_ptr<const Artifact> A = It->second->A;
  ArtifactFault F = openArtifact(A->Sealed, K.Class, ExpectFp);
  if (F != ArtifactFault::None) {
    // Poisoned (or stale) entry: reject, evict, make the caller recompute.
    evictLocked(It->second, /*Rejection=*/true);
    ++S.Misses;
    if (Fault)
      *Fault = F;
    return nullptr;
  }
  ++S.Hits;
  if (Fault)
    *Fault = ArtifactFault::None;
  Lru.splice(Lru.begin(), Lru, It->second); // re-warm
  return A;
}

std::shared_ptr<const Artifact> ArtifactCache::put(const ArtifactKey &K,
                                                   Artifact A) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Map.find(K);
  if (It != Map.end()) {
    Lru.splice(Lru.begin(), Lru, It->second);
    return It->second->A; // first insert won; identical content anyway
  }
  auto Shared = std::make_shared<const Artifact>(std::move(A));
  Used += Shared->bytes();
  Lru.push_front(Entry{K, Shared});
  Map[K] = Lru.begin();
  while (Used > Budget && Lru.size() > 1)
    evictLocked(std::prev(Lru.end()), /*Rejection=*/false);
  return Shared;
}

ArtifactClassStats ArtifactCache::stats(ArtifactClass C) const {
  std::lock_guard<std::mutex> Lock(Mu);
  return ClassStats[static_cast<size_t>(C)];
}

ArtifactClassStats ArtifactCache::totals() const {
  std::lock_guard<std::mutex> Lock(Mu);
  ArtifactClassStats T;
  for (const ArtifactClassStats &S : ClassStats) {
    T.Hits += S.Hits;
    T.Misses += S.Misses;
    T.Evictions += S.Evictions;
    T.Rejections += S.Rejections;
  }
  return T;
}

size_t ArtifactCache::bytesUsed() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Used;
}

size_t ArtifactCache::entryCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Lru.size();
}

void ArtifactCache::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Lru.clear();
  Map.clear();
  Used = 0;
}

bool ArtifactCache::poisonLocked(const ArtifactKey &K,
                                 void (*Mutate)(std::vector<uint8_t> &)) {
  auto It = Map.find(K);
  if (It == Map.end())
    return false;
  // Clone, mutate the sealed image, and drop the decoded object so the
  // envelope validation is the only thing standing between the poison and
  // the consumer.
  Artifact Poisoned = *It->second->A;
  Mutate(Poisoned.Sealed);
  Poisoned.Live = nullptr;
  Poisoned.LiveBytes = 0;
  Used -= It->second->A->bytes();
  It->second->A = std::make_shared<const Artifact>(std::move(Poisoned));
  Used += It->second->A->bytes();
  return true;
}

bool ArtifactCache::corruptEntry(const ArtifactKey &K) {
  std::lock_guard<std::mutex> Lock(Mu);
  return poisonLocked(K, [](std::vector<uint8_t> &Sealed) {
    // Flip a trailing-checksum bit: detected as Corrupt for every payload
    // size (a flip elsewhere can read as Truncated when it lands in the
    // length field).
    if (!Sealed.empty())
      Sealed.back() ^= 0x40;
  });
}

bool ArtifactCache::truncateEntry(const ArtifactKey &K) {
  std::lock_guard<std::mutex> Lock(Mu);
  return poisonLocked(K, [](std::vector<uint8_t> &Sealed) {
    Sealed.resize(Sealed.size() / 2);
  });
}
