//===- service/CompileService.cpp - Request-oriented compile service --------===//

#include "service/CompileService.h"

#include "audit/PassAudit.h" // cloneModule
#include "frontend/Frontend.h"
#include "ir/Printer.h"
#include "pdf/PdfExperiment.h"
#include "pdf/ProfileStore.h"
#include "support/ThreadPool.h"
#include "workloads/Registry.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <unordered_map>

using namespace vsc;

namespace {

// --- rendering helpers (everything snprintf'd, so bytes are stable) ---------

std::string hex64(uint64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "0x%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

std::string dec64(uint64_t V) {
  return std::to_string(static_cast<unsigned long long>(V));
}

std::string oneLine(std::string S) {
  for (char &C : S)
    if (C == '\n' || C == '\r')
      C = ';';
  return S;
}

const char *layoutName(int Kept) {
  return Kept < 0 ? "unconditional" : Kept ? "kept" : "rolled-back";
}

// --- live artifact bodies ---------------------------------------------------

/// Frontend / Prepared / Optimized artifacts carry the module plus the
/// derived values responses render from (recomputing them on every hit
/// would dwarf the lookup).
struct ModuleBody {
  std::shared_ptr<Module> M;
  uint64_t CfgFp = 0;
  uint64_t IrHash = 0; ///< FNV-1a of the printed module
  uint64_t Instrs = 0; ///< static instruction count
  int PdfLayoutKept = -1;
};

/// Image artifacts own a predecoded engine. SimEngine is not thread-safe
/// (pooled arena), so every use locks Mu; the module artifact rides along
/// so eviction of the module entry cannot dangle the engine.
struct EngineHolder {
  std::shared_ptr<const Artifact> ModuleArt;
  SimEngine Engine;
  std::mutex Mu;
  EngineHolder(std::shared_ptr<const Artifact> Art, const Module &M,
               const MachineModel &Machine)
      : ModuleArt(std::move(Art)), Engine(M, Machine) {}
};

uint64_t staticInstrCount(const Module &M) {
  uint64_t N = 0;
  for (const auto &F : M.functions())
    for (const auto &BB : F->blocks())
      N += BB->instrs().size();
  return N;
}

std::shared_ptr<ModuleBody> makeModuleBody(std::unique_ptr<Module> M,
                                           int LayoutKept = -1) {
  auto B = std::make_shared<ModuleBody>();
  B->M = std::move(M);
  B->CfgFp = cfgFingerprint(*B->M);
  B->Instrs = staticInstrCount(*B->M);
  B->PdfLayoutKept = LayoutKept;
  return B;
}

const ModuleBody &moduleBody(const Artifact &A) {
  return *static_cast<const ModuleBody *>(A.Live.get());
}

uint64_t batteryHash(const std::vector<RunOptions> &Battery) {
  uint64_t H = 1469598103934665603ULL;
  for (const RunOptions &R : Battery)
    H = fnv1aWords({runOptionsFingerprint(R)}, H);
  return H;
}

std::string renderRunBody(const RunResult &R) {
  std::string S = "exit=" + std::to_string(R.ExitCode) +
                  " cycles=" + dec64(R.Cycles) +
                  " instrs=" + dec64(R.DynInstrs) +
                  " ostalls=" + dec64(R.OperandStallCycles) +
                  " bstalls=" + dec64(R.BranchStallCycles) +
                  " out=" + hex64(fnv1aBytes(R.Output.data(),
                                             R.Output.size())) +
                  " mem=" + hex64(R.MemDigest);
  if (R.Trapped)
    S += " trap=" + oneLine(R.TrapMsg);
  return S;
}

} // namespace

struct CompileService::Impl {
  Config Cfg;
  ArtifactCache Cache;
  std::atomic<uint64_t> Groups{0};

  explicit Impl(Config C) : Cfg(C), Cache(C.CacheBytes) {}

  // --- stage functions: each is (content key -> artifact), cache-backed ----

  /// source text -> verified module.
  std::shared_ptr<const Artifact> frontendArt(const std::string &Src,
                                              uint64_t SrcHash,
                                              std::string &Err) {
    ArtifactKey K{ArtifactClass::Frontend, fnv1aWords({SrcHash})};
    if (auto A = Cache.get(K, SrcHash))
      return A;
    FrontendOptions FeOpts;
    FeOpts.AssumeSafeLoads = true;
    CompileResult C = compileMiniC(Src, FeOpts);
    if (!C.ok()) {
      Err = C.Error; // compile failures are not cached
      return nullptr;
    }
    std::string Printed = printModule(*C.M);
    Artifact A = makeArtifact(ArtifactClass::Frontend, SrcHash, Printed);
    auto Body = makeModuleBody(std::move(C.M));
    Body->IrHash = fnv1aBytes(Printed.data(), Printed.size());
    A.Live = Body;
    A.LiveBytes = Printed.size();
    return Cache.put(K, std::move(A));
  }

  /// module -> run-ready training clone (pdf/PdfExperiment.h stage).
  std::shared_ptr<const Artifact>
  preparedArt(const std::shared_ptr<const Artifact> &Frontend,
              uint64_t *KeyOut) {
    const ModuleBody &Src = moduleBody(*Frontend);
    uint64_t Key = fnv1aWords(
        {Src.CfgFp, optionsFingerprint(OptLevel::None, PipelineOptions())});
    if (KeyOut)
      *KeyOut = Key;
    ArtifactKey K{ArtifactClass::Prepared, Key};
    if (auto A = Cache.get(K, Src.CfgFp))
      return A;
    auto Prepared = prepareForTraining(*Src.M);
    std::string Printed = printModule(*Prepared);
    Artifact A = makeArtifact(ArtifactClass::Prepared, Src.CfgFp, Printed);
    auto Body = makeModuleBody(std::move(Prepared));
    Body->IrHash = fnv1aBytes(Printed.data(), Printed.size());
    A.Live = Body;
    A.LiveBytes = Printed.size();
    return Cache.put(K, std::move(A));
  }

  /// module × options (× profile/gate content folded into \p KeySalt by
  /// the caller) -> optimized module. \p Opts.Threads is forced to 1: the
  /// service parallelizes across request groups, never inside a stage.
  std::shared_ptr<const Artifact>
  optimizedArt(const std::shared_ptr<const Artifact> &Frontend, OptLevel L,
               PipelineOptions Opts, uint64_t KeySalt, uint64_t *KeyOut) {
    const ModuleBody &Src = moduleBody(*Frontend);
    Opts.Threads = 1;
    uint64_t Key =
        fnv1aWords({Src.CfgFp, optionsFingerprint(L, Opts), KeySalt});
    if (KeyOut)
      *KeyOut = Key;
    ArtifactKey K{ArtifactClass::Optimized, Key};
    if (auto A = Cache.get(K, Src.CfgFp))
      return A;
    PipelineStats Stats;
    Opts.Stats = &Stats;
    auto Opt = optimizedClone(*Src.M, L, Opts);
    std::string Printed = printModule(*Opt);
    Artifact A = makeArtifact(ArtifactClass::Optimized, Src.CfgFp, Printed);
    auto Body = makeModuleBody(std::move(Opt), Stats.PdfLayoutKept);
    Body->IrHash = fnv1aBytes(Printed.data(), Printed.size());
    A.Live = Body;
    A.LiveBytes = Printed.size();
    return Cache.put(K, std::move(A));
  }

  /// module × machine -> predecoded engine. Keyed by the *module
  /// artifact's* key hash, not its CFG fingerprint: two optimization
  /// levels can share a CFG shape while the instructions differ.
  std::shared_ptr<const Artifact>
  imageArt(const std::shared_ptr<const Artifact> &ModArt, uint64_t ModKey,
           const MachineModel &Machine, uint64_t *KeyOut) {
    const ModuleBody &Body = moduleBody(*ModArt);
    uint64_t Key = fnv1aWords({ModKey, machineFingerprint(Machine)});
    if (KeyOut)
      *KeyOut = Key;
    ArtifactKey K{ArtifactClass::Image, Key};
    if (auto A = Cache.get(K, Body.CfgFp))
      return A;
    Artifact A = makeArtifact(ArtifactClass::Image, Body.CfgFp, "");
    A.Live = std::make_shared<EngineHolder>(ModArt, *Body.M, Machine);
    A.LiveBytes = 4 * ModArt->Sealed.size();
    return Cache.put(K, std::move(A));
  }

  /// image × run options -> one simulation's result (stripped of the
  /// per-run maps; responses only need the scalar fields and digests).
  std::shared_ptr<const Artifact>
  simResultArt(const std::shared_ptr<const Artifact> &ImgArt,
               uint64_t ImgKey, const RunOptions &Run) {
    uint64_t Key = fnv1aWords({ImgKey, runOptionsFingerprint(Run)});
    ArtifactKey K{ArtifactClass::SimResult, Key};
    if (auto A = Cache.get(K, ImgArt->Fingerprint))
      return A;
    auto Holder = std::static_pointer_cast<EngineHolder>(ImgArt->Live);
    RunResult R;
    {
      std::lock_guard<std::mutex> Lock(Holder->Mu);
      R = Holder->Engine.run(Run);
    }
    R.BlockCounts.clear();
    R.EdgeCounts.clear();
    R.GlobalBase.clear();
    R.Memory.clear();
    R.Memory.shrink_to_fit();
    Artifact A = makeArtifact(ArtifactClass::SimResult, ImgArt->Fingerprint,
                              renderRunBody(R));
    A.Live = std::make_shared<RunResult>(std::move(R));
    A.LiveBytes = 256;
    return Cache.put(K, std::move(A));
  }

  /// prepared image × training battery -> dense profile
  /// (collectDenseProfile against the cached engine).
  std::shared_ptr<const Artifact>
  profileArt(const std::shared_ptr<const Artifact> &PrepImg,
             uint64_t PrepImgKey, const std::vector<RunOptions> &Train,
             std::string &Err) {
    uint64_t Key = fnv1aWords({PrepImgKey, batteryHash(Train)});
    ArtifactKey K{ArtifactClass::Profile, Key};
    if (auto A = Cache.get(K, PrepImg->Fingerprint))
      return A;
    auto Holder = std::static_pointer_cast<EngineHolder>(PrepImg->Live);
    DenseProfile P;
    {
      std::lock_guard<std::mutex> Lock(Holder->Mu);
      P = collectDenseProfile(Holder->Engine, Train, /*Threads=*/1, &Err);
    }
    if (!Err.empty())
      return nullptr;
    std::vector<uint8_t> Bytes = P.serialize();
    std::string Payload(Bytes.begin(), Bytes.end());
    Artifact A = makeArtifact(ArtifactClass::Profile, P.CfgHash, Payload);
    A.Live = std::make_shared<DenseProfile>(std::move(P));
    A.LiveBytes = Payload.size();
    return Cache.put(K, std::move(A));
  }

  /// persisted profile file -> validated DenseProfile, keyed by the file
  /// bytes (so re-reads of an unchanged file hit).
  std::shared_ptr<const Artifact> loadedProfileArt(const std::string &Path,
                                                   std::string &Err) {
    std::ifstream In(Path, std::ios::binary);
    if (!In) {
      Err = "cannot open " + Path;
      return nullptr;
    }
    std::string Bytes((std::istreambuf_iterator<char>(In)),
                      std::istreambuf_iterator<char>());
    uint64_t Key = fnv1aWords({fnv1aBytes(Bytes.data(), Bytes.size())});
    ArtifactKey K{ArtifactClass::Profile, Key};
    if (auto A = Cache.get(K, /*ExpectFp=*/0))
      return A;
    DenseProfile P;
    Err = DenseProfile::deserialize(
        reinterpret_cast<const uint8_t *>(Bytes.data()), Bytes.size(), P);
    if (!Err.empty()) {
      Err = Path + ": " + Err;
      return nullptr;
    }
    Artifact A = makeArtifact(ArtifactClass::Profile, P.CfgHash, Bytes);
    A.Live = std::make_shared<DenseProfile>(std::move(P));
    A.LiveBytes = Bytes.size();
    return Cache.put(K, std::move(A));
  }

  // --- request handling ----------------------------------------------------

  ServiceResponse handleOne(const ServiceRequest &R);
};

namespace {

ServiceResponse errorResponse(const std::string &Name,
                              const std::string &Msg) {
  ServiceResponse Resp;
  Resp.Name = Name;
  Resp.Ok = false;
  Resp.Text = oneLine(Msg);
  return Resp;
}

/// Resolves the request's program text: registry kernel or inline source.
/// \returns false with \p Err set on an unknown kernel / missing source.
bool resolveSource(const ServiceRequest &R, std::string &Src,
                   std::string &Target, const Workload **W,
                   std::string &Err) {
  *W = nullptr;
  if (!R.Kernel.empty()) {
    *W = workloads::findKernel(R.Kernel);
    if (!*W) {
      Err = "unknown kernel '" + R.Kernel + "'";
      return false;
    }
    Src = (*W)->Source;
    Target = R.Kernel;
    return true;
  }
  if (R.Source.empty()) {
    Err = "request has neither kernel= nor source text";
    return false;
  }
  Src = R.Source;
  Target = "src";
  return true;
}

std::vector<RunOptions> scaleBattery(const std::vector<int64_t> &Scales) {
  std::vector<RunOptions> B;
  B.reserve(Scales.size());
  for (int64_t S : Scales)
    B.push_back(workloadInput(S));
  return B;
}

} // namespace

ServiceResponse CompileService::Impl::handleOne(const ServiceRequest &R) {
  std::string Err;
  const MachineModel *Machine = findMachine(R.MachineName);
  if (!Machine)
    return errorResponse(R.Name, "unknown machine '" + R.MachineName + "'");

  std::string Src, Target;
  const Workload *W = nullptr;
  if (!resolveSource(R, Src, Target, &W, Err))
    return errorResponse(R.Name, Err);
  uint64_t SrcHash = fnv1aBytes(Src.data(), Src.size());

  auto Frontend = frontendArt(Src, SrcHash, Err);
  if (!Frontend)
    return errorResponse(R.Name, Err);

  std::string Head = "op=";
  switch (R.Kind) {
  case ServiceRequest::Op::Compile:
    Head += "compile";
    break;
  case ServiceRequest::Op::Simulate:
    Head += "simulate";
    break;
  case ServiceRequest::Op::Pdf:
    Head += "pdf";
    break;
  case ServiceRequest::Op::SaveProfile:
    Head += "save-profile";
    break;
  }
  Head += " target=" + Target + " level=" + optLevelName(R.Level) +
          " machine=" + Machine->Name;

  ServiceResponse Resp;
  Resp.Name = R.Name;
  Resp.Ok = true;

  switch (R.Kind) {
  case ServiceRequest::Op::Compile: {
    PipelineOptions Opts;
    Opts.Machine = *Machine;
    Opts.Superblocks = R.Superblocks;
    uint64_t Salt = 0;
    ProfileData Feedback;
    RunOptions Gate;
    std::shared_ptr<const Artifact> Prof;
    if (!R.ProfileIn.empty()) {
      Prof = loadedProfileArt(R.ProfileIn, Err);
      if (!Prof)
        return errorResponse(R.Name, Err);
      const auto &P = *std::static_pointer_cast<const DenseProfile>(
          Prof->Live);
      std::string Stale = P.validateFor(*moduleBody(*Frontend).M);
      if (!Stale.empty())
        return errorResponse(R.Name, Stale);
      Feedback = P.toProfileData();
      Gate.Args = R.Args;
      Opts.Profile = &Feedback;
      Opts.TrainInput = &Gate; // measured layout gate, vscc parity
      Salt = fnv1aWords({fnv1aBytes(Prof->Sealed.data(),
                                    Prof->Sealed.size()),
                         runOptionsFingerprint(Gate)});
    }
    auto Opt = optimizedArt(Frontend, R.Level, Opts, Salt, nullptr);
    const ModuleBody &B = moduleBody(*Opt);
    Resp.Text = Head + " fp=" + hex64(B.CfgFp) + " ir=" + hex64(B.IrHash) +
                " instrs=" + dec64(B.Instrs);
    if (!R.ProfileIn.empty())
      Resp.Text += std::string(" layout=") + layoutName(B.PdfLayoutKept);
    return Resp;
  }

  case ServiceRequest::Op::Simulate: {
    PipelineOptions Opts;
    Opts.Machine = *Machine;
    Opts.Superblocks = R.Superblocks;
    uint64_t OptKey = 0, ImgKey = 0;
    auto Opt = optimizedArt(Frontend, R.Level, Opts, 0, &OptKey);
    auto Img = imageArt(Opt, OptKey, *Machine, &ImgKey);
    RunOptions Run;
    Run.Args = R.Args;
    Run.Input = R.Input;
    auto Res = simResultArt(Img, ImgKey, Run);
    std::string Body;
    openArtifact(Res->Sealed, ArtifactClass::SimResult, Res->Fingerprint,
                 &Body);
    Resp.Text = Head + " " + Body;
    return Resp;
  }

  case ServiceRequest::Op::Pdf: {
    std::vector<int64_t> TrainScales = R.Train, TestScales = R.Test;
    if (TrainScales.empty() && W)
      TrainScales = {W->TrainScale};
    if (TestScales.empty() && W)
      TestScales = {W->RefScale};
    if (TrainScales.empty() || TestScales.empty())
      return errorResponse(R.Name, "pdf needs train= and test= batteries");
    std::vector<RunOptions> Train = scaleBattery(TrainScales);
    std::vector<RunOptions> Test = scaleBattery(TestScales);

    // Train: profile the prepared clone through the cached engine.
    uint64_t PrepKey = 0, PrepImgKey = 0;
    auto Prepared = preparedArt(Frontend, &PrepKey);
    auto PrepImg = imageArt(Prepared, PrepKey, *Machine, &PrepImgKey);
    auto Prof = profileArt(PrepImg, PrepImgKey, Train, Err);
    if (!Prof)
      return errorResponse(R.Name, Err);
    const auto &P =
        *std::static_pointer_cast<const DenseProfile>(Prof->Live);
    ProfileData Feedback = P.toProfileData();

    // Baseline: byte-identical to a plain compile, so the artifact is
    // shared with every Compile/Simulate request at this level.
    PipelineOptions BaseOpts;
    BaseOpts.Machine = *Machine;
    uint64_t BaseKey = 0;
    auto Base = optimizedArt(Frontend, R.Level, BaseOpts, 0, &BaseKey);

    // Guided: salt the key with the profile + gate-battery content.
    PipelineOptions GuidedOpts;
    GuidedOpts.Machine = *Machine;
    GuidedOpts.Superblocks = R.Superblocks;
    GuidedOpts.Profile = &Feedback;
    GuidedOpts.TrainBattery = &Train;
    uint64_t GuidedKey = 0;
    uint64_t Salt = fnv1aWords(
        {fnv1aBytes(Prof->Sealed.data(), Prof->Sealed.size()),
         batteryHash(Train)});
    auto Guided =
        optimizedArt(Frontend, R.Level, GuidedOpts, Salt, &GuidedKey);

    // Measure both over the test battery, per-input results cached.
    uint64_t BaseImgKey = 0, GuidedImgKey = 0;
    auto BaseImg = imageArt(Base, BaseKey, *Machine, &BaseImgKey);
    auto GuidedImg = imageArt(Guided, GuidedKey, *Machine, &GuidedImgKey);
    uint64_t BaseCycles = 0, GuidedCycles = 0;
    for (size_t I = 0; I != Test.size(); ++I) {
      auto BR = simResultArt(BaseImg, BaseImgKey, Test[I]);
      auto GR = simResultArt(GuidedImg, GuidedImgKey, Test[I]);
      const auto &BRun =
          *std::static_pointer_cast<const RunResult>(BR->Live);
      const auto &GRun =
          *std::static_pointer_cast<const RunResult>(GR->Live);
      if (BRun.fingerprint() != GRun.fingerprint())
        return errorResponse(
            R.Name, "behaviour diverged on test input " +
                        std::to_string(I) + ": baseline " +
                        BRun.fingerprint() + " vs guided " +
                        GRun.fingerprint());
      BaseCycles += BRun.Cycles;
      GuidedCycles += GRun.Cycles;
    }
    double Gain = GuidedCycles ? static_cast<double>(BaseCycles) /
                                     static_cast<double>(GuidedCycles)
                               : 1.0;
    char GainBuf[32];
    std::snprintf(GainBuf, sizeof(GainBuf), "%.4f", Gain);
    Resp.Text = Head + " base=" + dec64(BaseCycles) +
                " guided=" + dec64(GuidedCycles) + " gain=" + GainBuf +
                " layout=" + layoutName(moduleBody(*Guided).PdfLayoutKept) +
                " proffp=" + hex64(P.CfgHash);
    return Resp;
  }

  case ServiceRequest::Op::SaveProfile: {
    if (R.ProfileOut.empty())
      return errorResponse(R.Name, "save-profile needs out=FILE");
    std::vector<RunOptions> Train;
    if (!R.Train.empty()) {
      Train = scaleBattery(R.Train);
    } else {
      RunOptions Run;
      Run.Args = R.Args;
      Train = {Run};
    }
    uint64_t PrepKey = 0, PrepImgKey = 0;
    auto Prepared = preparedArt(Frontend, &PrepKey);
    auto PrepImg = imageArt(Prepared, PrepKey, *Machine, &PrepImgKey);
    auto Prof = profileArt(PrepImg, PrepImgKey, Train, Err);
    if (!Prof)
      return errorResponse(R.Name, Err);
    const auto &P =
        *std::static_pointer_cast<const DenseProfile>(Prof->Live);
    std::string SaveErr = P.saveFile(R.ProfileOut);
    if (!SaveErr.empty())
      return errorResponse(R.Name, SaveErr);
    Resp.Text = Head + " file=" + R.ProfileOut +
                " fp=" + hex64(P.CfgHash) +
                " blocks=" + dec64(P.BlockKeys.size()) +
                " edges=" + dec64(P.EdgeKeys.size());
    return Resp;
  }
  }
  return errorResponse(R.Name, "unhandled request kind");
}

// --- public surface ---------------------------------------------------------

CompileService::CompileService() : CompileService(Config()) {}

CompileService::CompileService(Config Cfg)
    : I(std::make_unique<Impl>(Cfg)) {}

CompileService::~CompileService() = default;

std::vector<ServiceResponse>
CompileService::handleBatch(const std::vector<ServiceRequest> &Requests) {
  std::vector<ServiceResponse> Out(Requests.size());

  // Group same-module requests (source × machine): one group walks one
  // artifact chain sequentially, so N same-module requests cost one cold
  // compile plus N-1 hits even inside a single batch.
  std::unordered_map<uint64_t, size_t> GroupOf;
  std::vector<std::vector<size_t>> Groups;
  for (size_t Idx = 0; Idx != Requests.size(); ++Idx) {
    const ServiceRequest &R = Requests[Idx];
    uint64_t SrcHash = 0;
    if (!R.Kernel.empty()) {
      if (const Workload *W = workloads::findKernel(R.Kernel))
        SrcHash = fnv1aBytes(W->Source.data(), W->Source.size());
    } else {
      SrcHash = fnv1aBytes(R.Source.data(), R.Source.size());
    }
    const MachineModel *M = findMachine(R.MachineName);
    uint64_t GKey =
        fnv1aWords({SrcHash, M ? machineFingerprint(*M) : 0});
    auto It = GroupOf.find(GKey);
    if (It == GroupOf.end()) {
      It = GroupOf.emplace(GKey, Groups.size()).first;
      Groups.emplace_back();
    }
    Groups[It->second].push_back(Idx);
  }
  I->Groups += Groups.size();

  unsigned Threads =
      I->Cfg.Threads ? I->Cfg.Threads : ThreadPool::defaultThreadCount();
  ThreadPool Pool(Threads);
  Pool.parallelFor(Groups.size(), [&](size_t G) {
    for (size_t Idx : Groups[G])
      Out[Idx] = I->handleOne(Requests[Idx]);
  });
  return Out;
}

ServiceResponse CompileService::handle(const ServiceRequest &R) {
  return handleBatch({R}).front();
}

ArtifactCache &CompileService::cache() { return I->Cache; }
const ArtifactCache &CompileService::cache() const { return I->Cache; }

uint64_t CompileService::groupsFormed() const { return I->Groups.load(); }
