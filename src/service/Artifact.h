//===- service/Artifact.h - Sealed, content-addressed artifacts -*- C++ -*-===//
///
/// \file
/// The artifact layer under the compile service (service/CompileService.h):
/// every intermediate product of the request pipeline — parsed modules,
/// prepared training clones, optimized modules, predecoded simulator
/// images, dense profiles, simulation results — becomes a cacheable
/// Artifact addressed purely by content hash.
///
/// Each artifact carries a *sealed image*: a versioned binary envelope
/// (magic "VSCA", format version, artifact class, the fingerprint of the
/// module chain it derives from, payload length, payload, trailing FNV-1a
/// checksum) that the cache re-validates on every hit. A poisoned entry —
/// truncated, bit-flipped, or belonging to a different module generation —
/// is rejected with a typed ArtifactFault and evicted instead of being
/// served, mirroring the rejection discipline pdf/ProfileStore.h applies
/// to persisted profiles (tests/test_artifact_cache.cpp pins both the
/// faults and their diagnostic wording).
///
/// The in-process decoded object rides along in Artifact::Live so a hit
/// does not re-parse the payload; the sealed image is still what decides
/// whether the hit is served.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_SERVICE_ARTIFACT_H
#define VSC_SERVICE_ARTIFACT_H

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

namespace vsc {

/// What kind of pipeline product an artifact is. The cache keeps hit/miss
/// accounting per class (bench_service prints the table).
enum class ArtifactClass : uint8_t {
  Frontend = 0, ///< mini-C source text -> verified IR module
  Prepared,     ///< run-ready training clone (prolog insertion only)
  Optimized,    ///< pipeline output (baseline or profile-guided)
  Image,        ///< predecoded simulator engine bound to a machine
  Profile,      ///< dense profile (pdf/ProfileStore.h payload)
  SimResult,    ///< one simulation run's result
  NumClasses
};

const char *artifactClassName(ArtifactClass C);

/// Why a cache lookup refused to serve an entry. Everything except None
/// and Missing is a *rejection*: the entry existed but failed validation
/// and was evicted so it cannot poison later requests.
enum class ArtifactFault : uint8_t {
  None = 0,
  Missing,            ///< no entry under the key (an ordinary miss)
  Truncated,          ///< sealed image shorter than its own accounting
  BadMagic,           ///< not a sealed artifact at all
  UnsupportedVersion, ///< envelope from a different format generation
  WrongClass,         ///< key collision across classes (never legitimate)
  Stale,              ///< derives from a different module fingerprint
  Corrupt,            ///< checksum mismatch (bit rot / poisoning)
};

const char *artifactFaultName(ArtifactFault F);

/// Diagnostic string for a rejected artifact, worded like the
/// ProfileStore rejection paths ("... truncated", "... corrupt (checksum
/// mismatch)", "stale artifact: ...").
std::string artifactFaultMessage(ArtifactFault F, ArtifactClass C);

/// Cache key: the class plus a content hash the caller folds from every
/// input that determines the artifact's bytes (source hash, CFG
/// fingerprint, option/machine/run-option fingerprints, profile content).
struct ArtifactKey {
  ArtifactClass Class = ArtifactClass::Frontend;
  uint64_t Hash = 0;
  bool operator==(const ArtifactKey &O) const {
    return Class == O.Class && Hash == O.Hash;
  }
};

struct ArtifactKeyHasher {
  size_t operator()(const ArtifactKey &K) const {
    return static_cast<size_t>(K.Hash ^
                               (static_cast<uint64_t>(K.Class) * 0x9e3779b9));
  }
};

/// FNV-1a over \p Size bytes, continuing from \p Seed (the repo-wide
/// hashing idiom; the default seed is the FNV offset basis).
uint64_t fnv1aBytes(const void *Data, size_t Size,
                    uint64_t Seed = 1469598103934665603ULL);

/// Folds 64-bit words into one FNV-1a hash, byte by byte — the helper
/// every artifact-key derivation uses.
uint64_t fnv1aWords(std::initializer_list<uint64_t> Words,
                    uint64_t Seed = 1469598103934665603ULL);

/// Builds the sealed image: "VSCA" magic, u32 format version, u8 class,
/// u64 fingerprint, u64 payload size, payload bytes, trailing u64 FNV-1a
/// checksum over everything before it.
std::vector<uint8_t> sealArtifact(ArtifactClass C, uint64_t Fingerprint,
                                  const std::string &Payload);

/// Validates a sealed image against what the consumer expects and
/// extracts the payload. Checks run in ProfileStore order: structure
/// (Truncated / BadMagic / UnsupportedVersion / Truncated payload), then
/// checksum (Corrupt), then identity (WrongClass, Stale). \p ExpectFp 0
/// skips the staleness check (for classes keyed by inputs that have no
/// separate fingerprint). \p Payload may be null.
ArtifactFault openArtifact(const std::vector<uint8_t> &Sealed,
                           ArtifactClass Expect, uint64_t ExpectFp,
                           std::string *Payload = nullptr);

/// One cached pipeline product.
struct Artifact {
  ArtifactClass Class = ArtifactClass::Frontend;
  /// Fingerprint of the module chain this derives from (what Stale is
  /// judged against); also sealed into the envelope.
  uint64_t Fingerprint = 0;
  /// The sealed image — validated on every cache hit.
  std::vector<uint8_t> Sealed;
  /// The decoded in-process object (ModuleArtifactBody, EngineHolder,
  /// DenseProfile, RunResult — whatever the class implies), so a hit
  /// skips re-parsing the payload.
  std::shared_ptr<void> Live;
  /// Approximate live-object footprint charged to the cache budget on top
  /// of the sealed bytes.
  size_t LiveBytes = 0;

  size_t bytes() const { return Sealed.size() + LiveBytes; }
};

/// Convenience: seals \p Payload and fills everything but Live/LiveBytes.
Artifact makeArtifact(ArtifactClass C, uint64_t Fingerprint,
                      const std::string &Payload);

} // namespace vsc

#endif // VSC_SERVICE_ARTIFACT_H
