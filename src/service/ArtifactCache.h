//===- service/ArtifactCache.h - Content-addressed LRU cache --*- C++ -*-===//
///
/// \file
/// Thread-safe LRU cache over sealed artifacts (service/Artifact.h), with
/// a byte budget and per-class hit/miss/eviction/rejection accounting.
///
/// Lookup discipline: every hit re-validates the entry's sealed image
/// (openArtifact) against the class and module fingerprint the caller
/// expects. A validation failure is a *rejection* — the typed fault is
/// reported, the poisoned entry is evicted, and the caller recomputes —
/// so a corrupt, truncated, or stale artifact can be served at most never
/// (the same contract ProfileStore enforces for persisted profiles).
///
/// Insertion is insert-if-absent: when two request groups race to compute
/// the same artifact, the first insert wins and both observe one object.
/// Artifacts are pure functions of their content keys, so the losing
/// compute produced byte-identical content and dropping it is free —
/// this is what keeps service responses deterministic under any schedule.
///
/// corruptEntry/truncateEntry are test hooks that poison a resident
/// entry's sealed image (and drop its decoded object, so validation is
/// the only line of defence) — tests/test_artifact_cache.cpp drives the
/// rejection paths through them.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_SERVICE_ARTIFACTCACHE_H
#define VSC_SERVICE_ARTIFACTCACHE_H

#include "service/Artifact.h"

#include <list>
#include <mutex>
#include <unordered_map>

namespace vsc {

struct ArtifactClassStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
  /// Validation failures on lookup (always also evictions).
  uint64_t Rejections = 0;
};

class ArtifactCache {
public:
  static constexpr size_t DefaultByteBudget = size_t(256) << 20;

  explicit ArtifactCache(size_t ByteBudget = DefaultByteBudget);

  /// Looks up \p K, validating the sealed image against \p ExpectFp (0
  /// skips the staleness check). \returns the artifact on a valid hit;
  /// null with \p Fault set to Missing (plain miss) or the rejection
  /// reason (entry evicted) otherwise.
  std::shared_ptr<const Artifact> get(const ArtifactKey &K, uint64_t ExpectFp,
                                      ArtifactFault *Fault = nullptr);

  /// Inserts \p A under \p K unless an entry already exists; \returns the
  /// resident artifact either way (existing one wins). Evicts from the
  /// cold end until the byte budget holds (never the entry just touched).
  std::shared_ptr<const Artifact> put(const ArtifactKey &K, Artifact A);

  ArtifactClassStats stats(ArtifactClass C) const;
  /// Sum over every class.
  ArtifactClassStats totals() const;

  size_t bytesUsed() const;
  size_t byteBudget() const { return Budget; }
  size_t entryCount() const;

  /// Drops every entry (stats keep accumulating).
  void clear();

  // --- test hooks ---------------------------------------------------------

  /// Flips one checksum bit of the resident entry's sealed image and
  /// drops its decoded object. \returns false when \p K is not resident.
  bool corruptEntry(const ArtifactKey &K);

  /// Drops the trailing half of the sealed image and the decoded object.
  bool truncateEntry(const ArtifactKey &K);

private:
  struct Entry {
    ArtifactKey Key;
    std::shared_ptr<const Artifact> A;
  };
  using LruList = std::list<Entry>;

  // Under Mu: unlink + account the entry at \p It.
  void evictLocked(LruList::iterator It, bool Rejection);
  // Under Mu: poison the resident entry via \p Mutate.
  bool poisonLocked(const ArtifactKey &K,
                    void (*Mutate)(std::vector<uint8_t> &));

  mutable std::mutex Mu;
  LruList Lru; ///< front = hottest
  std::unordered_map<ArtifactKey, LruList::iterator, ArtifactKeyHasher> Map;
  size_t Budget;
  size_t Used = 0;
  ArtifactClassStats ClassStats[static_cast<size_t>(
      ArtifactClass::NumClasses)];
};

} // namespace vsc

#endif // VSC_SERVICE_ARTIFACTCACHE_H
