//===- service/CompileService.h - Request-oriented compile service -*- C++ -*-===//
///
/// \file
/// The compile service: compile / simulate / PDF-experiment /
/// save-profile requests go in, deterministic one-line results come out,
/// and every intermediate product flows through a content-addressed
/// artifact cache (service/ArtifactCache.h).
///
/// Request pipeline (each stage a cache-keyed pure function):
///
///   source text ──frontend──▶ Module ──prepare──▶ training clone
///        │                      │                     │
///        │                  optimize (optionsFingerprint × profile ×
///        │                      │     gate-battery content hashes)
///        │                      ▼                     ▼
///        │                predecode (SimEngine)   collectDenseProfile
///        │                      │                     │
///        │                  simulate (runOptionsFingerprint)
///        ▼                      ▼                     ▼
///     responses rendered purely from request content + artifacts
///
/// Keys fold only content (source hash, CFG fingerprint, option /
/// machine / run-option fingerprints, profile bytes), so a request's
/// response is byte-identical no matter the submission order, how
/// requests were batched, or how many worker threads ran them —
/// tests/test_service.cpp shuffles and re-threads the same stream to pin
/// this down. Same-module requests are grouped and served sequentially
/// within a group (one cold compile, N-1 hits); distinct groups fan out
/// over the work-stealing pool. When two groups race to the same
/// artifact, insert-if-absent keeps one copy and both computed the same
/// bytes, so the race is invisible in the output.
///
/// examples/vscd.cpp speaks the newline-delimited protocol
/// (service/Protocol.h) over files or FIFOs; bench_service measures cold
/// vs warm throughput and per-class hit rates.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_SERVICE_COMPILESERVICE_H
#define VSC_SERVICE_COMPILESERVICE_H

#include "service/ArtifactCache.h"
#include "vliw/Pipeline.h"

#include <memory>
#include <string>
#include <vector>

namespace vsc {

struct ServiceRequest {
  enum class Op { Compile, Simulate, Pdf, SaveProfile };
  Op Kind = Op::Compile;
  /// Tag echoed as the first token of the response line.
  std::string Name;
  /// Registry kernel name (workloads/Registry.h); wins over Source.
  std::string Kernel;
  /// Inline mini-C text (used when Kernel is empty).
  std::string Source;
  std::string MachineName = "rs6000";
  OptLevel Level = OptLevel::Vliw;
  bool Superblocks = false;
  /// main() arguments: the simulate input, the save-profile training run,
  /// and the measured-gate input for profile-fed compiles (vscc parity).
  std::vector<int64_t> Args;
  /// read_int stream for simulate.
  std::vector<int64_t> Input;
  /// PDF batteries as main(n) scales; empty defers to the kernel's
  /// TrainScale/RefScale (pdf op only).
  std::vector<int64_t> Train;
  std::vector<int64_t> Test;
  /// compile: persisted profile to feed back (stale ones rejected).
  std::string ProfileIn;
  /// save-profile: where the collected profile lands.
  std::string ProfileOut;
};

struct ServiceResponse {
  std::string Name;
  bool Ok = false;
  /// Deterministic single-line body (no name prefix, no newline).
  std::string Text;
};

class CompileService {
public:
  struct Config {
    size_t CacheBytes = ArtifactCache::DefaultByteBudget;
    /// Outer workers request groups fan out over; 0 defers to
    /// VSC_THREADS. Stage work inside a request always runs serial, so
    /// the thread count never reaches the artifacts.
    unsigned Threads = 0;
  };

  CompileService();
  explicit CompileService(Config Cfg);
  ~CompileService();
  CompileService(const CompileService &) = delete;
  CompileService &operator=(const CompileService &) = delete;

  /// Serves every request; responses are positionally matched to
  /// \p Requests. Same-module requests are grouped (one group = one
  /// artifact chain walked sequentially); groups run concurrently.
  std::vector<ServiceResponse>
  handleBatch(const std::vector<ServiceRequest> &Requests);

  /// Batch of one.
  ServiceResponse handle(const ServiceRequest &R);

  ArtifactCache &cache();
  const ArtifactCache &cache() const;

  /// Same-module groups formed across every handleBatch call so far.
  uint64_t groupsFormed() const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace vsc

#endif // VSC_SERVICE_COMPILESERVICE_H
