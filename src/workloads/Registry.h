//===- workloads/Registry.h - The kernel registry -------------*- C++ -*-===//
///
/// \file
/// The single list every measured surface iterates: benches
/// (bench_specint_table, bench_pdf_gain, bench_alias, bench_workloads),
/// the workload test suites, and the PdfExperiment batteries all draw
/// from workloads::allKernels(), so a kernel registered once (in Spec.cpp
/// or Irregular.cpp) appears everywhere without further edits. The
/// paper-facing tables that need exactly the six SPECint92 substitutes in
/// paper order keep using specWorkloads() directly.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_WORKLOADS_REGISTRY_H
#define VSC_WORKLOADS_REGISTRY_H

#include "workloads/Irregular.h"
#include "workloads/Spec.h"

namespace vsc {
namespace workloads {

/// Every kernel: the six SPECint92 substitutes (paper order), then the
/// five irregular kernels (workloads/Irregular.h order).
const std::vector<Workload> &allKernels();

/// Kernel by name, or nullptr.
const Workload *findKernel(const std::string &Name);

/// True when \p W is one of the irregular kernels (and therefore has a
/// host-computed reference checksum, irregularReference).
bool isIrregular(const Workload &W);

} // namespace workloads
} // namespace vsc

#endif // VSC_WORKLOADS_REGISTRY_H
