//===- workloads/Spec.h - SPECint92-substitute kernels --------*- C++ -*-===//
///
/// \file
/// Six workload kernels standing in for the SPECint92 programs the paper
/// measures (espresso, li, eqntott, compress, sc, gcc). Each kernel is
/// written in mini-C and mirrors the documented hot-loop character of the
/// original: bitset/cube operations, association-list interpretation,
/// bit-vector comparison, LZW-style hashing, a spreadsheet evaluator, and
/// switch-heavy token scanning. DESIGN.md records this substitution (SPEC
/// sources are not redistributable; the paper itself prints the li and
/// eqntott inner loops, which these kernels reproduce structurally).
///
/// Every kernel's main(n) takes a scale parameter and prints checksums, so
/// behaviour equivalence across optimization levels is machine-checkable.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_WORKLOADS_SPEC_H
#define VSC_WORKLOADS_SPEC_H

#include "ir/Module.h"
#include "sim/Simulator.h"

#include <memory>
#include <string>
#include <vector>

namespace vsc {

struct Workload {
  std::string Name;
  std::string Source;     ///< mini-C text
  int64_t TrainScale = 4; ///< the paper's "short SPEC inputs" for PDF
  int64_t RefScale = 16;  ///< measurement input
};

/// The six kernels, in the paper's table order: espresso, li, eqntott,
/// compress, sc, gcc.
const std::vector<Workload> &specWorkloads();

/// Compiles \p W (AssumeSafeLoads on, as the paper's page-zero trick
/// permits). Asserts on compile failure — the sources are part of this
/// repository.
std::unique_ptr<Module> buildWorkload(const Workload &W);

/// RunOptions with the given scale as main's argument.
RunOptions workloadInput(int64_t Scale);

} // namespace vsc

#endif // VSC_WORKLOADS_SPEC_H
