//===- workloads/LiKernel.cpp - The paper's xlygetvalue example ------------===//

#include "workloads/LiKernel.h"

#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "sim/Simulator.h"

#include <cassert>

using namespace vsc;

static void putWord(std::vector<uint8_t> &Bytes, size_t Off, uint64_t V) {
  if (Bytes.size() < Off + 4)
    Bytes.resize(Off + 4, 0);
  for (unsigned B = 0; B != 4; ++B)
    Bytes[Off + B] = static_cast<uint8_t>(V >> (8 * B));
}

std::unique_ptr<Module> vsc::buildLiSearch(unsigned N) {
  assert(N >= 1 && "need at least one node");
  // The loop below is the paper's listing:
  //   loop: L r4 =(r8,4)   ; car(r8)
  //         L r5 =(r4,4)   ; car(car(r8)) value cell
  //         c cr0=r5,r3
  //         BT found,cr0.eq
  //         L r8 =(r8,8)   ; cdr(r8)
  //         c cr1=r8,0
  //         BF loop,cr1.eq
  std::string Text;
  Text += "global nodes : " + std::to_string(16 * N) + "\n";
  Text += "global syms : " + std::to_string(8 * N) + "\n";
  Text += R"(
func xlygetvalue(2) {
entry:
  LR r8 = r4
loop:
  L r4 = 4(r8) !safe
  L r5 = 4(r4) !safe
  C cr0 = r5, r3
  BT found, cr0.eq
loop2:
  L r8 = 8(r8) !safe
  CI cr1 = r8, 0
  BF loop, cr1.eq
endofchain:
  LI r3 = 0
  RET
found:
  LI r3 = 1
  RET
}

func main(0) {
entry:
  LTOC r4 = .nodes
)";
  Text += "  LI r3 = " + std::to_string(1000 + (N - 1)) + "\n";
  Text += R"(  CALL xlygetvalue, 2
  CALL print_int, 1
  RET
}
)";

  std::string Err;
  auto M = parseModule(Text, &Err);
  assert(M && "li kernel text failed to parse");
  assert(verifyModule(*M).empty() && "li kernel must verify");

  // Initialize the list: node i = { pad, car=&sym_i, cdr=&node_{i+1} or 0 },
  // sym i = { pad, value=1000+i }.
  auto Layout = computeGlobalLayout(*M);
  uint64_t NodesBase = Layout.at("nodes");
  uint64_t SymsBase = Layout.at("syms");
  for (Global &G : M->globals()) {
    if (G.Name == "nodes") {
      for (unsigned I = 0; I != N; ++I) {
        putWord(G.Init, 16 * I + 4, SymsBase + 8 * I);
        putWord(G.Init, 16 * I + 8,
                I + 1 < N ? NodesBase + 16 * (I + 1) : 0);
      }
    } else if (G.Name == "syms") {
      for (unsigned I = 0; I != N; ++I)
        putWord(G.Init, 8 * I + 4, 1000 + I);
    }
  }
  return M;
}
