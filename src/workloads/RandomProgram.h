//===- workloads/RandomProgram.h - mini-C program fuzzer ------*- C++ -*-===//
///
/// \file
/// Deterministic random mini-C program generation for differential
/// testing: every generated program terminates (all loops have small
/// constant bounds), traps nothing (array indices are mask-bounded,
/// divisions are by non-zero constants), and prints a checksum — so the
/// full optimization pipeline can be fuzzed against the interpreter's
/// behaviour fingerprint across levels, machines and profiles.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_WORKLOADS_RANDOMPROGRAM_H
#define VSC_WORKLOADS_RANDOMPROGRAM_H

#include <cstdint>
#include <string>

namespace vsc {

/// Program families the fuzzer can generate:
///  * Generic   — the original statement-soup shape: nested control flow,
///    helpers, array/global traffic.
///  * Interp    — an interpreter shape: a randomized accumulator VM
///    dispatching over a skewed opcode array through a dense comparison
///    ladder (and, on some seeds, a replicated threaded-dispatch tail) —
///    the indirect-dispatch CFG shape that stresses PDF layout, branch
///    reversal and the alias audit's replay battery.
///  * HashProbe — an aggregation shape: open-addressing probe loops with
///    data-dependent trip counts and loop-carried dependent loads — the
///    aliasing stress for speculative load/store motion and combining.
enum class ProgramShape { Generic, Interp, HashProbe };

/// Generates a self-contained mini-C program from \p Seed. The same seed
/// always yields the same source. Every program terminates, traps
/// nothing, and prints a checksum.
std::string generateRandomMiniC(uint64_t Seed, ProgramShape Shape);

/// Shape picked deterministically from \p Seed (roughly 3:1:1
/// Generic:Interp:HashProbe, so the corpus — including CI's daily-shifted
/// seed base — always carries dispatch- and probe-shaped programs).
std::string generateRandomMiniC(uint64_t Seed);

} // namespace vsc

#endif // VSC_WORKLOADS_RANDOMPROGRAM_H
