//===- workloads/RandomProgram.h - mini-C program fuzzer ------*- C++ -*-===//
///
/// \file
/// Deterministic random mini-C program generation for differential
/// testing: every generated program terminates (all loops have small
/// constant bounds), traps nothing (array indices are mask-bounded,
/// divisions are by non-zero constants), and prints a checksum — so the
/// full optimization pipeline can be fuzzed against the interpreter's
/// behaviour fingerprint across levels, machines and profiles.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_WORKLOADS_RANDOMPROGRAM_H
#define VSC_WORKLOADS_RANDOMPROGRAM_H

#include <cstdint>
#include <string>

namespace vsc {

/// Generates a self-contained mini-C program from \p Seed. The same seed
/// always yields the same source.
std::string generateRandomMiniC(uint64_t Seed);

} // namespace vsc

#endif // VSC_WORKLOADS_RANDOMPROGRAM_H
