//===- workloads/Irregular.cpp - Irregular-workload kernels -------------------===//

#include "workloads/Irregular.h"

#include <cassert>

using namespace vsc;

namespace {

// --- hashagg: open-addressing hash-table group-by ----------------------------
// The VLDB aggregation shape (independent counter table): a skewed key
// stream is grouped through an open-addressing table with linear probing.
// The probe loop's length is data-dependent, and the per-group counters
// are load-modify-stores through computed indices — exactly the accesses
// speculative load/store motion and limited combining must disambiguate.
const char *HashAggSrc = R"(
int keys[1024];
int vals[1024];
int htab[256];
int hcnt[256];
int hsum[256];

int main(int scale) {
  int nkeys = 600;
  int seed = 2024;
  for (int i = 0; i < nkeys; i++) {
    seed = seed * 1103515245 + 12345;
    seed = seed & 0xffffff;
    int r = (seed >> 8) & 1023;
    int k;
    if (r < 640) k = r & 15;
    else if (r < 896) k = r & 63;
    else k = r & 255;
    keys[i] = k;
    vals[i] = (seed >> 4) & 255;
  }
  int checksum = 0;
  for (int pass = 0; pass < scale; pass++) {
    for (int i = 0; i < 256; i++) {
      htab[i] = 0;
      hcnt[i] = 0;
      hsum[i] = 0;
    }
    int probes = 0;
    for (int i = 0; i < nkeys; i++) {
      int k = keys[i];
      int h = ((k * 2654435761) >> 4) & 255;
      while (htab[h] != 0 && htab[h] != k + 1) {
        h = (h + 1) & 255;
        probes = probes + 1;
      }
      htab[h] = k + 1;
      hcnt[h] = hcnt[h] + 1;
      hsum[h] = hsum[h] + vals[i];
    }
    int agg = 0;
    for (int i = 0; i < 256; i++) {
      agg = agg + hsum[i] * 3 + hcnt[i];
    }
    checksum = checksum + agg + probes;
  }
  print_int(checksum);
  return 0;
}
)";

// --- filter: data-dependent branch filtering ---------------------------------
// Selective aggregation with an adaptive threshold: the accept branch is
// heavily biased but data-dependent, and both arms load-modify-store a
// set of global scalars — the register-caching case that needs the
// scalar stores proven disjoint, plus branch-reversal fodder.
const char *FilterSrc = R"(
int data[2048];
int passed;
int rejected;
int running;
int peak;

int main(int scale) {
  int n = 1500;
  int seed = 777;
  for (int i = 0; i < n; i++) {
    seed = seed * 1103515245 + 12345;
    seed = seed & 0xffffff;
    data[i] = (seed >> 6) & 1023;
  }
  int checksum = 0;
  for (int pass = 0; pass < scale; pass++) {
    passed = 0;
    rejected = 0;
    running = 0;
    peak = 0;
    int threshold = 128;
    for (int i = 0; i < n; i++) {
      int v = data[i];
      if (v >= threshold) {
        passed = passed + 1;
        running = running + v;
        if (running > peak) peak = running;
        threshold = threshold + ((v - threshold) >> 5);
      } else {
        rejected = rejected + 1;
        running = running - (v >> 1);
        threshold = threshold - 2;
      }
    }
    checksum = checksum + passed * 5 + rejected * 3 + (running & 0xffff) +
               (peak & 0xffff);
  }
  print_int(checksum);
  return 0;
}
)";

// --- chase: linked-bucket hash lookups ---------------------------------------
// Chained hashing in index form (like li's cons cells, but bucketed):
// lookups walk bucket chains through loop-carried dependent loads whose
// trip count is data-dependent. The build phase's stores and the query
// phase's chasing loads stress cross-iteration disambiguation.
const char *ChaseSrc = R"(
int heads[128];
int nextp[1024];
int nodekey[1024];
int nodeval[1024];

int main(int scale) {
  int nnodes = 700;
  int seed = 555;
  for (int b = 0; b < 128; b++) heads[b] = 0;
  for (int i = 1; i <= nnodes; i++) {
    seed = seed * 1103515245 + 12345;
    seed = seed & 0xffffff;
    int k = (seed >> 5) & 511;
    int b = k & 127;
    nodekey[i] = k;
    nodeval[i] = (seed >> 3) & 255;
    nextp[i] = heads[b];
    heads[b] = i;
  }
  int checksum = 0;
  for (int pass = 0; pass < scale; pass++) {
    int found = 0;
    int miss = 0;
    int sum = 0;
    for (int q = 0; q < 512; q++) {
      int k = (q * 13 + pass) & 511;
      int p = heads[k & 127];
      while (p != 0 && nodekey[p] != k) {
        p = nextp[p];
      }
      if (p != 0) {
        found = found + 1;
        sum = sum + nodeval[p];
      } else {
        miss = miss + 1;
      }
    }
    checksum = checksum + found * 7 + miss + sum;
  }
  print_int(checksum);
  return 0;
}
)";

// --- interp: bytecode interpreter, ladder dispatch ---------------------------
// An accumulator virtual machine dispatching over a skewed opcode stream.
// The hottest opcode (7, ~48% of the stream) sits LAST in the dispatch
// ladder, so the untrained layout pays a taken-branch redirect at every
// rung on the hot path — the canonical victim PDF most-frequent-successor
// layout and branch reversal exist to fix.
const char *InterpSrc = R"(
int code[512];
int carg[512];
int vmem[64];

int main(int scale) {
  int proglen = 400;
  int seed = 31337;
  for (int i = 0; i < proglen; i++) {
    seed = seed * 1103515245 + 12345;
    seed = seed & 0xffffff;
    int r = (seed >> 7) & 255;
    int op;
    if (r < 112) op = 7;
    else if (r < 176) op = 6;
    else op = r & 7;
    code[i] = op;
    carg[i] = (seed >> 3) & 63;
  }
  for (int i = 0; i < 64; i++) vmem[i] = (i * 11) & 255;
  int checksum = 0;
  for (int pass = 0; pass < scale; pass++) {
    int acc = pass & 7;
    int ip = 0;
    while (ip < proglen) {
      int op = code[ip];
      int a = carg[ip];
      if (op == 0) acc = acc + a;
      else if (op == 1) acc = acc - (a >> 1);
      else if (op == 2) acc = acc ^ vmem[a];
      else if (op == 3) vmem[a] = acc & 255;
      else if (op == 4) acc = acc + vmem[(acc + a) & 63];
      else if (op == 5) {
        if (acc & 1) acc = acc + 3;
        else acc = acc - 1;
      }
      else if (op == 6) acc = (acc << 1) ^ a;
      else acc = (acc ^ (acc >> 2)) + a;
      acc = acc & 0xffffff;
      ip = ip + 1;
    }
    checksum = (checksum + acc) & 0xffffff;
  }
  for (int i = 0; i < 64; i++) checksum = (checksum * 31 + vmem[i]) & 0xffffff;
  print_int(checksum);
  return 0;
}
)";

// --- interp_tc: the same VM, threaded-style dispatch -------------------------
// Semantically identical to interp (same opcode stream, same handler
// effects, same printed checksum): the handlers for the two hot opcodes
// replicate the fetch/dispatch tail and consume runs locally, the way
// threaded code gives every handler its own dispatch branch — so the
// profile sees distinct, differently-biased branch sites per handler.
const char *InterpTcSrc = R"(
int code[512];
int carg[512];
int vmem[64];

int main(int scale) {
  int proglen = 400;
  int seed = 31337;
  for (int i = 0; i < proglen; i++) {
    seed = seed * 1103515245 + 12345;
    seed = seed & 0xffffff;
    int r = (seed >> 7) & 255;
    int op;
    if (r < 112) op = 7;
    else if (r < 176) op = 6;
    else op = r & 7;
    code[i] = op;
    carg[i] = (seed >> 3) & 63;
  }
  for (int i = 0; i < 64; i++) vmem[i] = (i * 11) & 255;
  int checksum = 0;
  for (int pass = 0; pass < scale; pass++) {
    int acc = pass & 7;
    int ip = 0;
    while (ip < proglen) {
      int op = code[ip];
      if (op == 7 || op == 6) {
        while (1) {
          int a = carg[ip];
          if (op == 7) acc = ((acc ^ (acc >> 2)) + a) & 0xffffff;
          else acc = ((acc << 1) ^ a) & 0xffffff;
          ip = ip + 1;
          if (ip >= proglen) break;
          op = code[ip];
          if (op != 7 && op != 6) break;
        }
      } else {
        int a = carg[ip];
        if (op == 0) acc = acc + a;
        else if (op == 1) acc = acc - (a >> 1);
        else if (op == 2) acc = acc ^ vmem[a];
        else if (op == 3) vmem[a] = acc & 255;
        else if (op == 4) acc = acc + vmem[(acc + a) & 63];
        else {
          if (acc & 1) acc = acc + 3;
          else acc = acc - 1;
        }
        acc = acc & 0xffffff;
        ip = ip + 1;
      }
    }
    checksum = (checksum + acc) & 0xffffff;
  }
  for (int i = 0; i < 64; i++) checksum = (checksum * 31 + vmem[i]) & 0xffffff;
  print_int(checksum);
  return 0;
}
)";

// --- host-side reference mirrors ---------------------------------------------
// Independent C++ implementations of the kernels above, with the
// simulator's value model: 64-bit scalars, 32-bit memory cells (all
// values here stay well inside 32 bits, but the arrays are int32_t so a
// future kernel edit that overflows a cell fails loudly in the parity
// test instead of silently diverging).

int64_t refHashAgg(int64_t Scale) {
  int32_t Keys[1024] = {0}, Vals[1024] = {0};
  int32_t Htab[256], Hcnt[256], Hsum[256];
  int64_t NKeys = 600, Seed = 2024;
  for (int64_t I = 0; I < NKeys; ++I) {
    Seed = (Seed * 1103515245 + 12345) & 0xffffff;
    int64_t R = (Seed >> 8) & 1023;
    int64_t K = R < 640 ? (R & 15) : R < 896 ? (R & 63) : (R & 255);
    Keys[I] = static_cast<int32_t>(K);
    Vals[I] = static_cast<int32_t>((Seed >> 4) & 255);
  }
  int64_t Checksum = 0;
  for (int64_t Pass = 0; Pass < Scale; ++Pass) {
    for (int I = 0; I < 256; ++I)
      Htab[I] = Hcnt[I] = Hsum[I] = 0;
    int64_t Probes = 0;
    for (int64_t I = 0; I < NKeys; ++I) {
      int64_t K = Keys[I];
      int64_t H = ((K * 2654435761LL) >> 4) & 255;
      while (Htab[H] != 0 && Htab[H] != K + 1) {
        H = (H + 1) & 255;
        ++Probes;
      }
      Htab[H] = static_cast<int32_t>(K + 1);
      Hcnt[H] = Hcnt[H] + 1;
      Hsum[H] = Hsum[H] + Vals[I];
    }
    int64_t Agg = 0;
    for (int I = 0; I < 256; ++I)
      Agg += Hsum[I] * 3 + Hcnt[I];
    Checksum += Agg + Probes;
  }
  return Checksum;
}

int64_t refFilter(int64_t Scale) {
  int32_t Data[2048] = {0};
  int64_t N = 1500, Seed = 777;
  for (int64_t I = 0; I < N; ++I) {
    Seed = (Seed * 1103515245 + 12345) & 0xffffff;
    Data[I] = static_cast<int32_t>((Seed >> 6) & 1023);
  }
  int64_t Checksum = 0;
  for (int64_t Pass = 0; Pass < Scale; ++Pass) {
    int64_t Passed = 0, Rejected = 0, Running = 0, Peak = 0;
    int64_t Threshold = 128;
    for (int64_t I = 0; I < N; ++I) {
      int64_t V = Data[I];
      if (V >= Threshold) {
        Passed += 1;
        Running += V;
        if (Running > Peak)
          Peak = Running;
        Threshold += (V - Threshold) >> 5;
      } else {
        Rejected += 1;
        Running -= V >> 1;
        Threshold -= 2;
      }
    }
    Checksum += Passed * 5 + Rejected * 3 + (Running & 0xffff) +
                (Peak & 0xffff);
  }
  return Checksum;
}

int64_t refChase(int64_t Scale) {
  int32_t Heads[128], Nextp[1024] = {0}, NodeKey[1024] = {0},
                      NodeVal[1024] = {0};
  int64_t NNodes = 700, Seed = 555;
  for (int I = 0; I < 128; ++I)
    Heads[I] = 0;
  for (int64_t I = 1; I <= NNodes; ++I) {
    Seed = (Seed * 1103515245 + 12345) & 0xffffff;
    int64_t K = (Seed >> 5) & 511;
    int64_t B = K & 127;
    NodeKey[I] = static_cast<int32_t>(K);
    NodeVal[I] = static_cast<int32_t>((Seed >> 3) & 255);
    Nextp[I] = Heads[B];
    Heads[B] = static_cast<int32_t>(I);
  }
  int64_t Checksum = 0;
  for (int64_t Pass = 0; Pass < Scale; ++Pass) {
    int64_t Found = 0, Miss = 0, Sum = 0;
    for (int64_t Q = 0; Q < 512; ++Q) {
      int64_t K = (Q * 13 + Pass) & 511;
      int64_t P = Heads[K & 127];
      while (P != 0 && NodeKey[P] != K)
        P = Nextp[P];
      if (P != 0) {
        Found += 1;
        Sum += NodeVal[P];
      } else {
        Miss += 1;
      }
    }
    Checksum += Found * 7 + Miss + Sum;
  }
  return Checksum;
}

/// Shared by interp and interp_tc: the threaded variant reorganizes
/// dispatch only, never the per-opcode effects or their order.
int64_t refInterp(int64_t Scale) {
  int32_t Code[512] = {0}, Carg[512] = {0}, Vmem[64];
  int64_t ProgLen = 400, Seed = 31337;
  for (int64_t I = 0; I < ProgLen; ++I) {
    Seed = (Seed * 1103515245 + 12345) & 0xffffff;
    int64_t R = (Seed >> 7) & 255;
    int64_t Op = R < 112 ? 7 : R < 176 ? 6 : (R & 7);
    Code[I] = static_cast<int32_t>(Op);
    Carg[I] = static_cast<int32_t>((Seed >> 3) & 63);
  }
  for (int I = 0; I < 64; ++I)
    Vmem[I] = (I * 11) & 255;
  int64_t Checksum = 0;
  for (int64_t Pass = 0; Pass < Scale; ++Pass) {
    int64_t Acc = Pass & 7;
    for (int64_t Ip = 0; Ip < ProgLen; ++Ip) {
      int64_t Op = Code[Ip], A = Carg[Ip];
      switch (Op) {
      case 0: Acc += A; break;
      case 1: Acc -= A >> 1; break;
      case 2: Acc ^= Vmem[A]; break;
      case 3: Vmem[A] = static_cast<int32_t>(Acc & 255); break;
      case 4: Acc += Vmem[(Acc + A) & 63]; break;
      case 5: Acc = (Acc & 1) ? Acc + 3 : Acc - 1; break;
      case 6: Acc = (Acc << 1) ^ A; break;
      default: Acc = (Acc ^ (Acc >> 2)) + A; break;
      }
      Acc &= 0xffffff;
    }
    Checksum = (Checksum + Acc) & 0xffffff;
  }
  for (int I = 0; I < 64; ++I)
    Checksum = (Checksum * 31 + Vmem[I]) & 0xffffff;
  return Checksum;
}

} // namespace

const std::vector<Workload> &vsc::irregularWorkloads() {
  static const std::vector<Workload> Workloads = {
      {"hashagg", HashAggSrc, 2, 8},
      {"filter", FilterSrc, 2, 8},
      {"chase", ChaseSrc, 2, 8},
      {"interp", InterpSrc, 2, 8},
      {"interp_tc", InterpTcSrc, 2, 8},
  };
  return Workloads;
}

int64_t vsc::irregularReference(const Workload &W, int64_t Scale) {
  if (W.Name == "hashagg")
    return refHashAgg(Scale);
  if (W.Name == "filter")
    return refFilter(Scale);
  if (W.Name == "chase")
    return refChase(Scale);
  if (W.Name == "interp" || W.Name == "interp_tc")
    return refInterp(Scale);
  assert(false && "not an irregular kernel");
  return 0;
}
