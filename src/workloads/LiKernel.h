//===- workloads/LiKernel.h - The paper's xlygetvalue example --*- C++ -*-===//
///
/// \file
/// The SPEC `li` benchmark inner loop the paper uses as its worked example
/// (xlygetvalue: walk an association list comparing car(car(p)) against an
/// item). The IR matches the paper's RS/6000 listing instruction for
/// instruction, and the globals are initialized so the search walks \p N
/// nodes and succeeds on the last one. This is the calibration workload:
/// the unoptimized loop must cost 11 cycles/iteration on the rs6000 model.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_WORKLOADS_LIKERNEL_H
#define VSC_WORKLOADS_LIKERNEL_H

#include "ir/Module.h"

#include <memory>

namespace vsc {

/// Builds the list-search module. The list has \p N nodes; node i's
/// car points at symbol i whose value cell holds 1000+i; the search target
/// is 1000+(N-1), so the loop body executes N times and exits via "found".
/// main prints 1 on success.
std::unique_ptr<Module> buildLiSearch(unsigned N);

/// Number of loop-body iterations the search performs.
inline unsigned liIterations(unsigned N) { return N; }

} // namespace vsc

#endif // VSC_WORKLOADS_LIKERNEL_H
