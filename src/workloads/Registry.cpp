//===- workloads/Registry.cpp - The kernel registry ---------------------------===//

#include "workloads/Registry.h"

using namespace vsc;

const std::vector<Workload> &workloads::allKernels() {
  static const std::vector<Workload> Kernels = [] {
    std::vector<Workload> V = specWorkloads();
    const std::vector<Workload> &Irr = irregularWorkloads();
    V.insert(V.end(), Irr.begin(), Irr.end());
    return V;
  }();
  return Kernels;
}

const Workload *workloads::findKernel(const std::string &Name) {
  for (const Workload &W : allKernels())
    if (W.Name == Name)
      return &W;
  return nullptr;
}

bool workloads::isIrregular(const Workload &W) {
  for (const Workload &Irr : irregularWorkloads())
    if (Irr.Name == W.Name)
      return true;
  return false;
}
