//===- workloads/Spec.cpp - SPECint92-substitute kernels ----------------------===//

#include "workloads/Spec.h"

#include "frontend/Frontend.h"

#include <cassert>

using namespace vsc;

namespace {

// --- espresso: two-level logic minimisation flavour -------------------------
// Cube (bitset) intersection/containment sweeps with data-dependent
// branching, the character of espresso's cofactor/sharp loops.
const char *EspressoSrc = R"(
int cubes[512];
int cover[512];
int tmp[16];

int popcount(int x) {
  int n = 0;
  while (x != 0) {
    n = n + (x & 1);
    x = x >> 1;
    x = x & 0x7fffffff;
  }
  return n;
}

int main(int scale) {
  int ncubes = 32;
  int width = 8;
  // Build a deterministic cover.
  int seed = 12345;
  for (int i = 0; i < ncubes * width; i++) {
    seed = seed * 1103515245 + 12345;
    seed = seed & 0xffffff;
    cubes[i] = seed & 0xffff;
    cover[i] = (seed >> 8) & 0xffff;
  }
  int checksum = 0;
  for (int pass = 0; pass < scale; pass++) {
    // Containment: does cube i cover cube j?
    int contained = 0;
    for (int i = 0; i < ncubes; i++) {
      for (int j = 0; j < ncubes; j++) {
        if (i != j) {
          int covers = 1;
          for (int w = 0; w < width; w++) {
            int a = cubes[i * width + w];
            int b = cubes[j * width + w];
            if ((a & b) != b) {
              covers = 0;
              break;
            }
          }
          contained = contained + covers;
        }
      }
    }
    // Sharp: intersect cover rows into tmp and count literals.
    int literals = 0;
    for (int i = 0; i + 1 < ncubes; i++) {
      for (int w = 0; w < width; w++) {
        tmp[w] = cover[i * width + w] & cubes[(i + 1) * width + w];
        literals = literals + popcount(tmp[w]);
      }
    }
    checksum = checksum + contained * 17 + literals;
  }
  print_int(checksum);
  return 0;
}
)";

// --- li: xlisp interpreter flavour -------------------------------------------
// Cons cells in parallel arrays; assq-style association search (the
// paper's xlygetvalue loop) plus list construction and a recursive walk.
const char *LiSrc = R"(
int car[4096];
int cdr[4096];
int freeptr;

int cons(int a, int d) {
  int c = freeptr;
  freeptr = freeptr + 1;
  car[c] = a;
  cdr[c] = d;
  return c;
}

// The paper's loop: walk an alist of (key . value) pairs; key match by
// car(car(p)).
int assq(int key, int alist) {
  int p = alist;
  while (p != 0) {
    int pair = car[p];
    if (car[pair] == key) {
      return cdr[pair];
    }
    p = cdr[p];
  }
  return 0 - 1;
}

int sumlist(int p) {
  if (p == 0) return 0;
  return car[p] + sumlist(cdr[p]);
}

int main(int scale) {
  int checksum = 0;
  for (int pass = 0; pass < scale; pass++) {
    freeptr = 1;
    // Build an environment of 64 bindings: key k -> k*3.
    int env = 0;
    for (int k = 1; k <= 64; k++) {
      env = cons(cons(k, k * 3), env);
    }
    // Query it heavily (hits at varying depths + misses).
    int hits = 0;
    for (int q = 0; q < 128; q++) {
      int key = (q * 7) & 127;
      int v = assq(key, env);
      if (v >= 0) hits = hits + v;
    }
    // A plain list and a recursive sum.
    int lst = 0;
    for (int i = 0; i < 32; i++) lst = cons(i, lst);
    checksum = checksum + hits + sumlist(lst);
  }
  print_int(checksum);
  return 0;
}
)";

// --- eqntott: truth-table comparison flavour ---------------------------------
// The paper's cmppt loop: compare bit-vector pterms element-wise with
// early-out, driving an insertion sort.
const char *EqntottSrc = R"(
int pterms[2048];
int order[128];

int cmppt(int a, int b, int width) {
  for (int i = 0; i < width; i++) {
    int x = pterms[a * 16 + i];
    int y = pterms[b * 16 + i];
    if (x == 2) x = 0;
    if (y == 2) y = 0;
    if (x < y) return 0 - 1;
    if (x > y) return 1;
  }
  return 0;
}

int main(int scale) {
  int nterms = 96;
  int width = 12;
  int seed = 99;
  for (int i = 0; i < nterms * 16; i++) {
    seed = seed * 1103515245 + 12345;
    seed = seed & 0xffffff;
    pterms[i] = seed & 3;
  }
  int checksum = 0;
  for (int pass = 0; pass < scale; pass++) {
    for (int i = 0; i < nterms; i++) order[i] = i;
    // Insertion sort by cmppt.
    for (int i = 1; i < nterms; i++) {
      int key = order[i];
      int j = i - 1;
      while (j >= 0 && cmppt(order[j], key, width) > 0) {
        order[j + 1] = order[j];
        j = j - 1;
      }
      order[j + 1] = key;
    }
    checksum = checksum + order[0] * 7 + order[nterms - 1];
  }
  print_int(checksum);
  return 0;
}
)";

// --- compress: LZW flavour ----------------------------------------------------
// Hash-probe loop with shifting/masking and conditional code emission.
const char *CompressSrc = R"(
int htab[4096];
int codetab[4096];
int input[1024];

int main(int scale) {
  int hsize = 4096;
  int insize = 600;
  int seed = 7;
  for (int i = 0; i < insize; i++) {
    seed = seed * 1103515245 + 12345;
    seed = seed & 0xffffff;
    input[i] = (seed >> 4) & 255;
  }
  int checksum = 0;
  for (int pass = 0; pass < scale; pass++) {
    for (int i = 0; i < hsize; i++) {
      htab[i] = 0 - 1;
      codetab[i] = 0;
    }
    int freecode = 257;
    int ent = input[0];
    int outbits = 0;
    for (int i = 1; i < insize; i++) {
      int c = input[i];
      int fcode = (c << 12) + ent;
      int h = (c << 4) ^ ent;
      h = h & 4095;
      int found = 0;
      while (htab[h] >= 0) {
        if (htab[h] == fcode) {
          ent = codetab[h];
          found = 1;
          break;
        }
        h = h + 1;
        if (h == hsize) h = 0;
      }
      if (found == 0) {
        outbits = outbits + 12;
        checksum = checksum + ent;
        if (freecode < 4096) {
          htab[h] = fcode;
          codetab[h] = freecode;
          freecode = freecode + 1;
        }
        ent = c;
      }
    }
    checksum = checksum + outbits + ent;
  }
  print_int(checksum);
  return 0;
}
)";

// --- sc: spreadsheet flavour ---------------------------------------------------
// A cell grid recomputed in passes; each cell dispatches on an operation
// code (if-else ladder = branchy commercial-code character).
const char *ScSrc = R"(
int val[1024];
int op[1024];
int arg1[1024];
int arg2[1024];

int main(int scale) {
  int ncells = 400;
  int seed = 4242;
  for (int i = 0; i < ncells; i++) {
    seed = seed * 1103515245 + 12345;
    seed = seed & 0xffffff;
    op[i] = seed & 7;
    arg1[i] = (seed >> 3) & 255;
    // References point at earlier cells only (acyclic sheet).
    if (i > 0) {
      arg2[i] = (seed >> 11) & 1023;
      while (arg2[i] >= i) arg2[i] = arg2[i] - i;
    } else {
      arg2[i] = 0;
    }
    val[i] = 0;
  }
  int checksum = 0;
  for (int pass = 0; pass < scale; pass++) {
    for (int i = 0; i < ncells; i++) {
      int o = op[i];
      int a = arg1[i];
      int b = val[arg2[i]];
      int v;
      if (o == 0) v = a + b;
      else if (o == 1) v = a - b;
      else if (o == 2) v = a * 3 + b;
      else if (o == 3) { if (b != 0) v = a / b; else v = a; }
      else if (o == 4) v = a & b;
      else if (o == 5) v = a | b;
      else if (o == 6) { if (a > b) v = a; else v = b; }
      else v = b - a;
      val[i] = v & 0xffff;
    }
    checksum = checksum + val[ncells - 1] + val[ncells / 2];
  }
  print_int(checksum);
  return 0;
}
)";

// --- gcc: compiler front-end flavour --------------------------------------------
// Token scanning over a synthetic character stream: dense independent
// branches, small basic blocks, low ILP — the benchmark where the paper
// saw the smallest gain.
const char *GccSrc = R"(
int stream[2048];
int counts[16];

int classify(int c) {
  if (c == 32) return 0;
  if (c >= 48 && c <= 57) return 1;
  if (c >= 97 && c <= 122) return 2;
  if (c >= 65 && c <= 90) return 3;
  if (c == 40 || c == 41) return 4;
  if (c == 43 || c == 45 || c == 42 || c == 47) return 5;
  if (c == 61) return 6;
  if (c == 59) return 7;
  return 8;
}

int main(int scale) {
  int len = 1500;
  int seed = 31415;
  for (int i = 0; i < len; i++) {
    seed = seed * 1103515245 + 12345;
    seed = seed & 0xffffff;
    stream[i] = 32 + ((seed >> 5) & 95);
  }
  int checksum = 0;
  for (int pass = 0; pass < scale; pass++) {
    for (int i = 0; i < 16; i++) counts[i] = 0;
    int tokens = 0;
    int state = 0;
    for (int i = 0; i < len; i++) {
      int k = classify(stream[i]);
      counts[k] = counts[k] + 1;
      // Token boundaries: ident/number runs end at anything else.
      if (k == 1 || k == 2 || k == 3) {
        if (state == 0) {
          tokens = tokens + 1;
          state = 1;
        }
      } else {
        state = 0;
        if (k != 0) tokens = tokens + 1;
      }
    }
    int weighted = 0;
    for (int i = 0; i < 9; i++) weighted = weighted + counts[i] * (i + 1);
    checksum = checksum + tokens + weighted;
  }
  print_int(checksum);
  return 0;
}
)";

} // namespace

const std::vector<Workload> &vsc::specWorkloads() {
  static const std::vector<Workload> Workloads = {
      {"espresso", EspressoSrc, 2, 6},
      {"li", LiSrc, 2, 8},
      {"eqntott", EqntottSrc, 1, 3},
      {"compress", CompressSrc, 2, 8},
      {"sc", ScSrc, 4, 16},
      {"gcc", GccSrc, 2, 8},
  };
  return Workloads;
}

std::unique_ptr<Module> vsc::buildWorkload(const Workload &W) {
  FrontendOptions Opts;
  Opts.AssumeSafeLoads = true;
  CompileResult R = compileMiniC(W.Source, Opts);
  assert(R.ok() && "bundled workload failed to compile");
  if (!R.ok())
    return nullptr;
  return std::move(R.M);
}

RunOptions vsc::workloadInput(int64_t Scale) {
  RunOptions Opts;
  Opts.Args = {Scale};
  return Opts;
}
