//===- workloads/Irregular.h - Irregular-workload kernels -----*- C++ -*-===//
///
/// \file
/// A second workload family complementing the six SPECint92 substitutes
/// (workloads/Spec.h): five mini-C kernels with *irregular* control flow
/// and memory behaviour, the regime where the paper's passes earn their
/// keep and where the repository's verification machinery (ExecOracle,
/// AliasAudit, the profile subsystem) is stressed hardest.
///
///  * hashagg — open-addressing hash-table group-by (the VLDB counter
///    strategies' independent-table shape): data-dependent probe loops,
///    load-modify-store through computed indices.
///  * filter  — data-dependent branch filtering with an adaptive
///    threshold: heavily biased branches over load-modify-stored global
///    scalars (branch-reversal and scalar-disambiguation stress).
///  * chase   — linked-bucket hash lookups: loop-carried dependent loads
///    walking bucket chains (pointer chasing in index form, as the li
///    kernel's cons cells, but bucketed and data-dependent in length).
///  * interp  — a bytecode interpreter with ladder dispatch over a skewed
///    opcode stream whose hottest handler sits *last* in the ladder: the
///    canonical stress for PDF most-frequent-successor layout, branch
///    reversal and basic block expansion.
///  * interp_tc — the same virtual machine with threaded-style dispatch:
///    handlers for the hot opcodes replicate the fetch/dispatch tail and
///    consume runs locally. Semantically identical to interp (both print
///    the same checksum at the same scale).
///
/// Every kernel follows the Spec.h contract — main(n) scale parameter,
/// printed checksum, behaviour equivalence machine-checkable across
/// levels — and additionally has a host-computed reference checksum
/// (irregularReference) so the simulated result is self-checking against
/// an independent C++ implementation of the same algorithm.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_WORKLOADS_IRREGULAR_H
#define VSC_WORKLOADS_IRREGULAR_H

#include "workloads/Spec.h"

namespace vsc {

/// The five irregular kernels, in the order above: hashagg, filter,
/// chase, interp, interp_tc.
const std::vector<Workload> &irregularWorkloads();

/// Host-computed reference checksum for irregular kernel \p W at \p Scale
/// — the exact value the kernel prints, computed by an independent C++
/// mirror of the algorithm (64-bit scalars, 32-bit memory cells, matching
/// the simulator's semantics). Asserts when \p W is not an irregular
/// kernel.
int64_t irregularReference(const Workload &W, int64_t Scale);

} // namespace vsc

#endif // VSC_WORKLOADS_IRREGULAR_H
