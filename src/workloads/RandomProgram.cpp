//===- workloads/RandomProgram.cpp - mini-C program fuzzer --------------------===//

#include "workloads/RandomProgram.h"

#include <vector>

using namespace vsc;

namespace {

/// SplitMix64: deterministic, decent distribution, no global state.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed + 0x9e3779b97f4a7c15ULL) {}

  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform in [0, N).
  uint64_t below(uint64_t N) { return N ? next() % N : 0; }
  int64_t range(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo + 1)));
  }
  bool chance(unsigned Percent) { return below(100) < Percent; }

private:
  uint64_t State;
};

class Generator {
public:
  explicit Generator(uint64_t Seed) : R(Seed) {}

  std::string run() {
    unsigned NumArrays = static_cast<unsigned>(R.range(1, 3));
    for (unsigned I = 0; I != NumArrays; ++I)
      Arrays.push_back("g" + std::to_string(I));
    unsigned NumGlobals = static_cast<unsigned>(R.range(0, 2));
    for (unsigned I = 0; I != NumGlobals; ++I)
      Globals.push_back("s" + std::to_string(I));

    for (const std::string &A : Arrays)
      Out += "int " + A + "[64];\n";
    for (const std::string &G : Globals)
      Out += "int " + G + ";\n";
    Out += "\n";

    unsigned NumHelpers = static_cast<unsigned>(R.range(1, 3));
    for (unsigned I = 0; I != NumHelpers; ++I)
      emitHelper(I);
    emitMain();
    return Out;
  }

private:
  // --- expressions ---------------------------------------------------------

  /// An in-scope integer variable name, or a literal when none exist.
  std::string scalar() {
    if (Vars.empty() || R.chance(25))
      return std::to_string(R.range(-64, 64));
    return Vars[R.below(Vars.size())];
  }

  std::string arrayRead() {
    if (Arrays.empty())
      return scalar();
    const std::string &A = Arrays[R.below(Arrays.size())];
    return A + "[(" + expr(1) + ") & 63]";
  }

  std::string expr(unsigned Depth) {
    if (Depth >= 3 || R.chance(35)) {
      switch (R.below(3)) {
      case 0:
        return scalar();
      case 1:
        return arrayRead();
      default:
        if (!Globals.empty())
          return Globals[R.below(Globals.size())];
        return scalar();
      }
    }
    switch (R.below(9)) {
    case 0:
      return "(" + expr(Depth + 1) + " + " + expr(Depth + 1) + ")";
    case 1:
      return "(" + expr(Depth + 1) + " - " + expr(Depth + 1) + ")";
    case 2:
      return "(" + expr(Depth + 1) + " * " + expr(Depth + 1) + ")";
    case 3:
      // Division by a non-zero constant only (no trap, no INT_MIN/-1).
      return "(" + expr(Depth + 1) + " / " +
             std::to_string(R.range(1, 9)) + ")";
    case 4:
      return "(" + expr(Depth + 1) + " & " + expr(Depth + 1) + ")";
    case 5:
      return "(" + expr(Depth + 1) + " | " + expr(Depth + 1) + ")";
    case 6:
      return "(" + expr(Depth + 1) + " ^ " + expr(Depth + 1) + ")";
    case 7:
      return "(" + expr(Depth + 1) + " << " +
             std::to_string(R.range(0, 6)) + ")";
    default:
      return "(" + expr(Depth + 1) + " >> " +
             std::to_string(R.range(0, 6)) + ")";
    }
  }

  std::string cond() {
    static const char *Ops[] = {"<", ">", "<=", ">=", "==", "!="};
    std::string C = "(" + expr(1) + ") " + Ops[R.below(6)] + " (" +
                    expr(1) + ")";
    if (R.chance(20))
      C = "(" + C + ") && ((" + expr(2) + ") != 0)";
    else if (R.chance(20))
      C = "(" + C + ") || ((" + expr(2) + ") < 0)";
    return C;
  }

  // --- statements ----------------------------------------------------------

  void indent() { Out.append(Depth * 2, ' '); }

  void emitAssign() {
    indent();
    switch (R.below(4)) {
    case 0: // new local
      if (Vars.size() < 12) {
        std::string V = "v" + std::to_string(NextVar++);
        Out += "int " + V + " = " + expr(1) + ";\n";
        Vars.push_back(V);
        return;
      }
      [[fallthrough]];
    case 1: // scalar update — never a loop induction variable or a
            // checksum/driver variable (termination and oracle stability)
    {
      std::vector<std::string> Writable;
      for (const std::string &V : Vars)
        if (V[0] == 'v' || (V[0] == 'p' && V != "pass"))
          Writable.push_back(V);
      if (!Writable.empty()) {
        Out += Writable[R.below(Writable.size())] + " = " + expr(1) +
               ";\n";
        return;
      }
      [[fallthrough]];
    }
    case 2: // array store
      if (!Arrays.empty()) {
        Out += Arrays[R.below(Arrays.size())] + "[(" + expr(1) +
               ") & 63] = " + expr(1) + ";\n";
        return;
      }
      [[fallthrough]];
    default: // global store
      if (!Globals.empty()) {
        Out += Globals[R.below(Globals.size())] + " = " + expr(1) + ";\n";
        return;
      }
      Out += "// no storage in scope\n";
    }
  }

  void emitIf(unsigned Budget) {
    indent();
    Out += "if (" + cond() + ") {\n";
    size_t Scope = Vars.size();
    ++Depth;
    emitStmts(Budget / 2 + 1);
    --Depth;
    Vars.resize(Scope);
    indent();
    if (R.chance(50)) {
      Out += "} else {\n";
      ++Depth;
      emitStmts(Budget / 2 + 1);
      --Depth;
      Vars.resize(Scope);
      indent();
    }
    Out += "}\n";
  }

  void emitFor(unsigned Budget) {
    std::string V = "i" + std::to_string(NextVar++);
    indent();
    Out += "for (int " + V + " = 0; " + V + " < " +
           std::to_string(R.range(2, 12)) + "; " + V + "++) {\n";
    size_t Scope = Vars.size();
    Vars.push_back(V);
    ++Depth;
    ++LoopDepth;
    emitStmts(Budget);
    if (R.chance(25)) {
      indent();
      Out += "if ((" + V + " & 3) == 3) continue;\n";
    }
    if (R.chance(20)) {
      indent();
      Out += "if (" + cond() + ") break;\n";
    }
    --LoopDepth;
    --Depth;
    indent();
    Out += "}\n";
    Vars.resize(Scope);
  }

  void emitCall() {
    if (Helpers.empty())
      return emitAssign();
    indent();
    const auto &H = Helpers[R.below(Helpers.size())];
    std::string V = "v" + std::to_string(NextVar++);
    Out += "int " + V + " = " + H.first + "(";
    for (unsigned I = 0; I != H.second; ++I) {
      if (I)
        Out += ", ";
      Out += expr(1);
    }
    Out += ");\n";
    Vars.push_back(V);
  }

  void emitStmts(unsigned Budget) {
    unsigned N = static_cast<unsigned>(R.range(1, 4));
    for (unsigned I = 0; I != N && Budget != 0; ++I, --Budget) {
      unsigned Kind = static_cast<unsigned>(R.below(10));
      if (Kind < 4)
        emitAssign();
      else if (Kind < 6)
        emitIf(Budget);
      else if (Kind < 8 && LoopDepth < 2 && Budget > 2)
        emitFor(Budget - 1);
      else if (Kind < 9 && AllowCalls)
        emitCall();
      else
        emitAssign();
    }
  }

  // --- top level -----------------------------------------------------------

  void emitHelper(unsigned Index) {
    unsigned NumParams = static_cast<unsigned>(R.range(1, 2));
    std::string Name = "helper" + std::to_string(Index);
    Out += "int " + Name + "(";
    std::vector<std::string> SavedVars;
    SavedVars.swap(Vars);
    for (unsigned I = 0; I != NumParams; ++I) {
      if (I)
        Out += ", ";
      std::string P = "p" + std::to_string(I);
      Out += "int " + P;
      Vars.push_back(P);
    }
    Out += ") {\n";
    Depth = 1;
    AllowCalls = false; // helpers don't call each other: no recursion
    emitStmts(static_cast<unsigned>(R.range(3, 8)));
    indent();
    Out += "return " + expr(1) + ";\n}\n\n";
    Depth = 0;
    AllowCalls = true;
    Vars.swap(SavedVars);
    Helpers.push_back({Name, NumParams});
  }

  void emitMain() {
    Out += "int main(int n) {\n";
    Depth = 1;
    Vars.clear();
    Vars.push_back("n");
    // Deterministic array init so all runs start from known state.
    for (const std::string &A : Arrays) {
      indent();
      Out += "for (int k = 0; k < 64; k++) " + A + "[k] = (k * " +
             std::to_string(R.range(3, 91)) + ") & 255;\n";
    }
    indent();
    Out += "int acc = 0;\n";
    Vars.push_back("acc");
    indent();
    Out += "for (int pass = 0; pass < n; pass++) {\n";
    ++Depth;
    ++LoopDepth;
    Vars.push_back("pass");
    emitStmts(static_cast<unsigned>(R.range(6, 14)));
    // Fold everything observable into the checksum.
    indent();
    Out += "acc = acc + pass";
    for (const std::string &G : Globals)
      Out += " + " + G;
    for (const std::string &A : Arrays)
      Out += " + " + A + "[pass & 63]";
    Out += ";\n";
    --LoopDepth;
    --Depth;
    indent();
    Out += "}\n";
    // Print the whole machine state digest.
    for (const std::string &A : Arrays) {
      indent();
      Out += "for (int k = 0; k < 64; k++) acc = (acc * 31 + " + A +
             "[k]) & 0xffffff;\n";
    }
    indent();
    Out += "print_int(acc);\n";
    indent();
    Out += "return acc & 0xff;\n}\n";
  }

  Rng R;
  std::string Out;
  std::vector<std::string> Arrays, Globals, Vars;
  std::vector<std::pair<std::string, unsigned>> Helpers;
  unsigned NextVar = 0;
  unsigned Depth = 0;
  unsigned LoopDepth = 0;
  bool AllowCalls = true;
};

/// Interpreter-shaped programs: a randomized accumulator VM over a skewed
/// opcode stream, dispatched through a dense comparison ladder. Every
/// handler advances ip by at least one, so the dispatch loop terminates
/// after exactly L steps per pass; all memory indices are mask-bounded.
class InterpShapeGenerator {
public:
  explicit InterpShapeGenerator(uint64_t Seed) : R(Seed) {}

  std::string run() {
    unsigned NumOps = static_cast<unsigned>(R.range(4, 8));
    unsigned ProgLen = static_cast<unsigned>(R.range(48, 128));
    unsigned HotOp = static_cast<unsigned>(R.below(NumOps));
    unsigned HotPct = static_cast<unsigned>(R.range(35, 60));
    bool Threaded = R.chance(40);
    int64_t Mul = R.range(3, 91) | 1;

    std::string S;
    S += "int code[" + std::to_string(ProgLen) + "];\n";
    S += "int carg[" + std::to_string(ProgLen) + "];\n";
    S += "int vmem[64];\n\n";
    S += "int main(int n) {\n";
    // Deterministic skewed opcode stream.
    S += "  int seed = " + std::to_string(R.range(1, 1 << 20)) + ";\n";
    S += "  for (int i = 0; i < " + std::to_string(ProgLen) + "; i++) {\n";
    S += "    seed = seed * 1103515245 + 12345;\n";
    S += "    seed = seed & 0xffffff;\n";
    S += "    int r = (seed >> 7) & 99;\n";
    S += "    if (r < " + std::to_string(HotPct) + ") code[i] = " +
         std::to_string(HotOp) + ";\n";
    S += "    else code[i] = (seed >> 9) % " + std::to_string(NumOps) +
         ";\n";
    S += "    carg[i] = (seed >> 3) & 63;\n";
    S += "  }\n";
    S += "  for (int i = 0; i < 64; i++) vmem[i] = (i * " +
         std::to_string(Mul) + ") & 255;\n";
    S += "  int acc = 0;\n";
    S += "  for (int pass = 0; pass < n; pass++) {\n";
    S += "    int ip = 0;\n";
    S += "    while (ip < " + std::to_string(ProgLen) + ") {\n";
    S += "      int op = code[ip];\n";
    S += "      int a = carg[ip];\n";
    for (unsigned Op = 0; Op != NumOps; ++Op) {
      S += "      ";
      if (Op)
        S += "else ";
      if (Op + 1 != NumOps)
        S += "if (op == " + std::to_string(Op) + ") ";
      S += "{\n";
      if (Threaded && Op == HotOp) {
        // Replicated threaded-dispatch tail: consume the hot run locally
        // with this handler's own fetch and dispatch branch.
        S += "        while (1) {\n";
        S += "          " + handlerBody() + "\n";
        S += "          acc = acc & 0xffffff;\n";
        S += "          ip = ip + 1;\n";
        S += "          if (ip >= " + std::to_string(ProgLen) +
             ") break;\n";
        S += "          op = code[ip];\n";
        S += "          if (op != " + std::to_string(Op) + ") break;\n";
        S += "          a = carg[ip];\n";
        S += "        }\n";
      } else {
        S += "        " + handlerBody() + "\n";
        S += "        acc = acc & 0xffffff;\n";
        S += "        ip = ip + 1;\n";
      }
      S += "      }\n";
    }
    S += "    }\n";
    S += "    acc = (acc + pass) & 0xffffff;\n";
    S += "  }\n";
    S += "  for (int k = 0; k < 64; k++) acc = (acc * 31 + vmem[k]) & "
         "0xffffff;\n";
    S += "  print_int(acc);\n";
    S += "  return acc & 0xff;\n}\n";
    return S;
  }

private:
  /// One statement mutating acc/vmem from `a`; never touches ip.
  std::string handlerBody() {
    switch (R.below(8)) {
    case 0:
      return "acc = acc + a + " + std::to_string(R.range(0, 31)) + ";";
    case 1:
      return "acc = acc - (a >> " + std::to_string(R.range(0, 3)) + ");";
    case 2:
      return "acc = acc ^ vmem[a];";
    case 3:
      return "vmem[(a + " + std::to_string(R.range(0, 63)) +
             ") & 63] = acc & 255;";
    case 4:
      return "acc = acc + vmem[(acc + a) & 63];";
    case 5:
      return "if (acc & 1) acc = acc + " + std::to_string(R.range(1, 7)) +
             "; else acc = acc - 1;";
    case 6:
      return "acc = (acc << " + std::to_string(R.range(1, 3)) + ") ^ a;";
    default:
      return "acc = (acc ^ (acc >> " + std::to_string(R.range(1, 4)) +
             ")) + a;";
    }
  }

  Rng R;
};

/// Hash-probe-shaped programs: open-addressing insert/aggregate loops with
/// data-dependent trip counts plus loop-carried dependent loads. The key
/// space is at most half the table, and the table is cleared every pass,
/// so a probe always finds its key or an empty slot — termination and
/// trap-freedom hold by construction.
class HashProbeShapeGenerator {
public:
  explicit HashProbeShapeGenerator(uint64_t Seed) : R(Seed) {}

  std::string run() {
    unsigned TabBits = static_cast<unsigned>(R.range(6, 8)); // 64..256
    unsigned Tab = 1u << TabBits;
    unsigned KeyMask = (Tab >> 1) - 1;
    unsigned NKeys = static_cast<unsigned>(R.range(64, 200));
    bool Skewed = R.chance(60);
    bool Filtered = R.chance(50);
    bool Chained = R.chance(40);
    int64_t HashMul = R.range(3, 63) | 1;

    std::string S;
    S += "int keys[" + std::to_string(NKeys) + "];\n";
    S += "int vals[" + std::to_string(NKeys) + "];\n";
    S += "int htab[" + std::to_string(Tab) + "];\n";
    S += "int hcnt[" + std::to_string(Tab) + "];\n\n";
    S += "int main(int n) {\n";
    S += "  int seed = " + std::to_string(R.range(1, 1 << 20)) + ";\n";
    S += "  for (int i = 0; i < " + std::to_string(NKeys) + "; i++) {\n";
    S += "    seed = seed * 1103515245 + 12345;\n";
    S += "    seed = seed & 0xffffff;\n";
    if (Skewed) {
      S += "    if ((seed & 3) != 0) keys[i] = (seed >> 8) & 7;\n";
      S += "    else keys[i] = (seed >> 8) & " + std::to_string(KeyMask) +
           ";\n";
    } else {
      S += "    keys[i] = (seed >> 8) & " + std::to_string(KeyMask) +
           ";\n";
    }
    S += "    vals[i] = (seed >> 4) & 255;\n";
    S += "  }\n";
    S += "  int acc = 0;\n";
    S += "  for (int pass = 0; pass < n; pass++) {\n";
    S += "    for (int i = 0; i < " + std::to_string(Tab) +
         "; i++) { htab[i] = 0; hcnt[i] = 0; }\n";
    S += "    int probes = 0;\n";
    S += "    for (int i = 0; i < " + std::to_string(NKeys) +
         "; i++) {\n";
    S += "      int k = keys[i];\n";
    if (Filtered) {
      S += "      if (vals[i] < " + std::to_string(R.range(16, 128)) +
           ") continue;\n";
    }
    S += "      int h = (k * " + std::to_string(HashMul) + ") & " +
         std::to_string(Tab - 1) + ";\n";
    S += "      while (htab[h] != 0 && htab[h] != k + 1) {\n";
    S += "        h = (h + 1) & " + std::to_string(Tab - 1) + ";\n";
    S += "        probes = probes + 1;\n";
    S += "      }\n";
    S += "      htab[h] = k + 1;\n";
    S += "      hcnt[h] = hcnt[h] + 1;\n";
    if (Chained) {
      // Loop-carried dependent load: the next index hangs off the
      // just-aggregated value.
      S += "      acc = acc + hcnt[(acc + h) & " +
           std::to_string(Tab - 1) + "];\n";
    }
    S += "    }\n";
    S += "    int agg = 0;\n";
    S += "    for (int i = 0; i < " + std::to_string(Tab) +
         "; i++) agg = agg + hcnt[i] * 3;\n";
    S += "    acc = (acc + agg + probes) & 0xffffff;\n";
    S += "  }\n";
    S += "  print_int(acc);\n";
    S += "  return acc & 0xff;\n}\n";
    return S;
  }

private:
  Rng R;
};

} // namespace

std::string vsc::generateRandomMiniC(uint64_t Seed, ProgramShape Shape) {
  switch (Shape) {
  case ProgramShape::Interp:
    return InterpShapeGenerator(Seed).run();
  case ProgramShape::HashProbe:
    return HashProbeShapeGenerator(Seed).run();
  case ProgramShape::Generic:
    break;
  }
  return Generator(Seed).run();
}

std::string vsc::generateRandomMiniC(uint64_t Seed) {
  // Independent pick stream: seeds that land on Generic produce the exact
  // program the pre-shape generator produced.
  Rng Pick(Seed ^ 0x517cc1b727220a95ULL);
  uint64_t Lane = Pick.below(5);
  ProgramShape Shape = Lane == 3   ? ProgramShape::Interp
                       : Lane == 4 ? ProgramShape::HashProbe
                                   : ProgramShape::Generic;
  return generateRandomMiniC(Seed, Shape);
}
