//===- frontend/Frontend.h - mini-C compiler entry ------------*- C++ -*-===//
///
/// \file
/// compileMiniC: source text -> verified IR module. The code generator
/// follows RS/6000-flavoured conventions:
///
///  * scalar locals and parameters live in callee-saved registers
///    (r13..r31) while available, then in virtual registers — so prolog
///    tailoring has real work, exactly as in the paper's compiler;
///  * local arrays live in the frame (r1-relative; "SI r1=r1,FS" prologue
///    shape the prolog-tailoring pass knows how to grow);
///  * global accesses go through LTOC materialisation and carry "!sym"
///    annotations (the paper's a(r4,12) notation) for disambiguation —
///    assuming in-bounds indexing, which the bundled workloads satisfy;
///  * comparisons compile to C/CI + BT/BF on condition-register bits;
///  * the simulator builtins print_int/print_char/read_int/exit are
///    callable directly.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_FRONTEND_FRONTEND_H
#define VSC_FRONTEND_FRONTEND_H

#include "ir/Module.h"

#include <memory>
#include <string>

namespace vsc {

struct FrontendOptions {
  /// Mark pointer-dereference loads "!safe" (speculation cannot trap):
  /// justified on machines with readable page zero and in-bounds data, the
  /// paper's car(car(NIL)) argument. The workloads enable this.
  bool AssumeSafeLoads = false;
  /// Allocate named scalar locals to callee-saved registers first.
  bool UseCalleeSavedForLocals = true;
};

struct CompileResult {
  std::unique_ptr<Module> M;
  std::string Error;
  bool ok() const { return M != nullptr; }
};

/// Compiles mini-C \p Source; the result verifies (or Error says why not).
CompileResult compileMiniC(const std::string &Source,
                           const FrontendOptions &Opts = {});

} // namespace vsc

#endif // VSC_FRONTEND_FRONTEND_H
