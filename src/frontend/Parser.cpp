//===- frontend/Parser.cpp - mini-C parser ------------------------------------===//

#include "frontend/Parser.h"

#include <cassert>

using namespace vsc;

namespace {

class MiniCParser {
public:
  MiniCParser(std::vector<Token> Tokens, Program &Out)
      : Toks(std::move(Tokens)), Out(Out) {}

  bool run(std::string &Err) {
    while (!at(TokKind::Eof)) {
      if (!parseTopLevel()) {
        Err = Error;
        return false;
      }
    }
    return true;
  }

private:
  // --- token helpers ------------------------------------------------------

  const Token &peek(size_t Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  bool at(TokKind K) const { return peek().Kind == K; }
  Token take() { return Toks[Pos < Toks.size() - 1 ? Pos++ : Pos]; }
  bool accept(TokKind K) {
    if (!at(K))
      return false;
    take();
    return true;
  }
  bool expect(TokKind K, const char *What) {
    if (accept(K))
      return true;
    return fail(std::string("expected ") + What);
  }
  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = "line " + std::to_string(peek().Line) + ": " + Msg;
    return false;
  }

  std::unique_ptr<Expr> makeExpr(Expr::Kind K) {
    auto E = std::make_unique<Expr>();
    E->K = K;
    E->Line = peek().Line;
    return E;
  }

  // --- declarations -------------------------------------------------------

  bool parseTopLevel() {
    bool Volatile = accept(TokKind::KwVolatile);
    bool IsVoid = false;
    if (accept(TokKind::KwVoid))
      IsVoid = true;
    else if (!expect(TokKind::KwInt, "'int' or 'void'"))
      return false;
    bool Pointer = accept(TokKind::Star);
    if (!at(TokKind::Ident))
      return fail("expected identifier");
    std::string Name = take().Text;

    if (at(TokKind::LParen)) {
      if (Volatile)
        return fail("functions cannot be volatile");
      return parseFunction(Name, IsVoid, Pointer);
    }
    if (IsVoid)
      return fail("void is only a return type");

    GlobalDecl G;
    G.Name = Name;
    G.IsVolatile = Volatile;
    G.IsPointer = Pointer;
    G.Line = peek().Line;
    if (accept(TokKind::LBracket)) {
      if (!at(TokKind::Number))
        return fail("expected array size");
      G.IsArray = true;
      G.NumElems = take().Value;
      if (!expect(TokKind::RBracket, "']'"))
        return false;
    }
    if (accept(TokKind::Assign)) {
      if (accept(TokKind::LBrace)) {
        while (!accept(TokKind::RBrace)) {
          int64_t Sign = accept(TokKind::Minus) ? -1 : 1;
          if (!at(TokKind::Number))
            return fail("expected numeric initializer");
          G.Init.push_back(Sign * take().Value);
          accept(TokKind::Comma);
        }
      } else {
        int64_t Sign = accept(TokKind::Minus) ? -1 : 1;
        if (!at(TokKind::Number))
          return fail("expected numeric initializer");
        G.Init.push_back(Sign * take().Value);
      }
    }
    if (!expect(TokKind::Semi, "';'"))
      return false;
    Out.Globals.push_back(std::move(G));
    return true;
  }

  bool parseFunction(std::string Name, bool IsVoid, bool RetPointer) {
    (void)RetPointer; // pointers are ints at the IR level
    FuncDecl F;
    F.Name = std::move(Name);
    F.ReturnsVoid = IsVoid;
    F.Line = peek().Line;
    if (!expect(TokKind::LParen, "'('"))
      return false;
    if (!accept(TokKind::RParen)) {
      if (accept(TokKind::KwVoid)) {
        if (!expect(TokKind::RParen, "')'"))
          return false;
      } else {
        do {
          if (!expect(TokKind::KwInt, "'int'"))
            return false;
          ParamDecl P;
          P.IsPointer = accept(TokKind::Star);
          if (!at(TokKind::Ident))
            return fail("expected parameter name");
          P.Name = take().Text;
          F.Params.push_back(std::move(P));
        } while (accept(TokKind::Comma));
        if (!expect(TokKind::RParen, "')'"))
          return false;
      }
    }
    if (!expect(TokKind::LBrace, "'{'"))
      return false;
    while (!accept(TokKind::RBrace)) {
      auto S = parseStmt();
      if (!S)
        return false;
      F.Body.push_back(std::move(S));
    }
    Out.Functions.push_back(std::move(F));
    return true;
  }

  // --- statements ---------------------------------------------------------

  std::unique_ptr<Stmt> makeStmt(Stmt::Kind K) {
    auto S = std::make_unique<Stmt>();
    S->K = K;
    S->Line = peek().Line;
    return S;
  }

  std::unique_ptr<Stmt> parseStmt() {
    if (at(TokKind::KwInt))
      return parseDecl();
    if (at(TokKind::LBrace)) {
      take();
      auto S = makeStmt(Stmt::Kind::Block);
      while (!accept(TokKind::RBrace)) {
        auto Sub = parseStmt();
        if (!Sub)
          return nullptr;
        S->Body.push_back(std::move(Sub));
      }
      return S;
    }
    if (accept(TokKind::KwIf)) {
      auto S = makeStmt(Stmt::Kind::If);
      if (!expect(TokKind::LParen, "'('"))
        return nullptr;
      S->Cond = parseExpr();
      if (!S->Cond || !expect(TokKind::RParen, "')'"))
        return nullptr;
      S->Then = parseStmt();
      if (!S->Then)
        return nullptr;
      if (accept(TokKind::KwElse)) {
        S->Else = parseStmt();
        if (!S->Else)
          return nullptr;
      }
      return S;
    }
    if (accept(TokKind::KwWhile)) {
      auto S = makeStmt(Stmt::Kind::While);
      if (!expect(TokKind::LParen, "'('"))
        return nullptr;
      S->Cond = parseExpr();
      if (!S->Cond || !expect(TokKind::RParen, "')'"))
        return nullptr;
      S->Then = parseStmt();
      if (!S->Then)
        return nullptr;
      return S;
    }
    if (accept(TokKind::KwDo)) {
      auto S = makeStmt(Stmt::Kind::DoWhile);
      S->Then = parseStmt();
      if (!S->Then)
        return nullptr;
      if (!expect(TokKind::KwWhile, "'while'") ||
          !expect(TokKind::LParen, "'('"))
        return nullptr;
      S->Cond = parseExpr();
      if (!S->Cond || !expect(TokKind::RParen, "')'") ||
          !expect(TokKind::Semi, "';'"))
        return nullptr;
      return S;
    }
    if (accept(TokKind::KwFor)) {
      auto S = makeStmt(Stmt::Kind::For);
      if (!expect(TokKind::LParen, "'('"))
        return nullptr;
      if (!at(TokKind::Semi)) {
        if (at(TokKind::KwInt))
          S->InitS = parseDecl();
        else {
          auto E = makeStmt(Stmt::Kind::ExprStmt);
          E->E = parseExpr();
          if (!E->E)
            return nullptr;
          if (!expect(TokKind::Semi, "';'"))
            return nullptr;
          S->InitS = std::move(E);
        }
        if (!S->InitS)
          return nullptr;
      } else {
        take();
      }
      if (!at(TokKind::Semi)) {
        S->Cond = parseExpr();
        if (!S->Cond)
          return nullptr;
      }
      if (!expect(TokKind::Semi, "';'"))
        return nullptr;
      if (!at(TokKind::RParen)) {
        S->Inc = parseExpr();
        if (!S->Inc)
          return nullptr;
      }
      if (!expect(TokKind::RParen, "')'"))
        return nullptr;
      S->Then = parseStmt();
      if (!S->Then)
        return nullptr;
      return S;
    }
    if (accept(TokKind::KwReturn)) {
      auto S = makeStmt(Stmt::Kind::Return);
      if (!at(TokKind::Semi)) {
        S->E = parseExpr();
        if (!S->E)
          return nullptr;
      }
      if (!expect(TokKind::Semi, "';'"))
        return nullptr;
      return S;
    }
    if (accept(TokKind::KwBreak)) {
      auto S = makeStmt(Stmt::Kind::Break);
      if (!expect(TokKind::Semi, "';'"))
        return nullptr;
      return S;
    }
    if (accept(TokKind::KwContinue)) {
      auto S = makeStmt(Stmt::Kind::Continue);
      if (!expect(TokKind::Semi, "';'"))
        return nullptr;
      return S;
    }
    // Expression statement.
    auto S = makeStmt(Stmt::Kind::ExprStmt);
    S->E = parseExpr();
    if (!S->E || !expect(TokKind::Semi, "';'"))
      return nullptr;
    return S;
  }

  std::unique_ptr<Stmt> parseDecl() {
    if (!expect(TokKind::KwInt, "'int'"))
      return nullptr;
    auto S = makeStmt(Stmt::Kind::Decl);
    S->IsPointer = accept(TokKind::Star);
    if (!at(TokKind::Ident)) {
      fail("expected variable name");
      return nullptr;
    }
    S->Name = take().Text;
    if (accept(TokKind::LBracket)) {
      if (!at(TokKind::Number)) {
        fail("expected array size");
        return nullptr;
      }
      S->IsArray = true;
      S->ArraySize = take().Value;
      if (!expect(TokKind::RBracket, "']'"))
        return nullptr;
    }
    if (accept(TokKind::Assign)) {
      if (S->IsArray) {
        fail("local arrays cannot have initializers");
        return nullptr;
      }
      S->E = parseExpr();
      if (!S->E)
        return nullptr;
    }
    if (!expect(TokKind::Semi, "';'"))
      return nullptr;
    return S;
  }

  // --- expressions --------------------------------------------------------

  std::unique_ptr<Expr> parseExpr() { return parseAssign(); }

  std::unique_ptr<Expr> parseAssign() {
    auto L = parseBinary(0);
    if (!L)
      return nullptr;
    if (at(TokKind::Assign) || at(TokKind::PlusAssign) ||
        at(TokKind::MinusAssign)) {
      TokKind Op = take().Kind;
      auto R = parseAssign();
      if (!R)
        return nullptr;
      if (Op != TokKind::Assign) {
        // x += e  =>  x = x + e (x re-parsed is not possible; clone? the
        // lvalue is duplicated structurally by deep copy).
        auto Clone = cloneExpr(*L);
        auto Bin = makeExpr(Expr::Kind::Binary);
        Bin->Op = Op == TokKind::PlusAssign ? TokKind::Plus : TokKind::Minus;
        Bin->Lhs = std::move(Clone);
        Bin->Rhs = std::move(R);
        R = std::move(Bin);
      }
      auto A = makeExpr(Expr::Kind::Assign);
      A->Lhs = std::move(L);
      A->Rhs = std::move(R);
      return A;
    }
    return L;
  }

  static std::unique_ptr<Expr> cloneExpr(const Expr &E) {
    auto C = std::make_unique<Expr>();
    C->K = E.K;
    C->Value = E.Value;
    C->Name = E.Name;
    C->Op = E.Op;
    C->Line = E.Line;
    if (E.Lhs)
      C->Lhs = cloneExpr(*E.Lhs);
    if (E.Rhs)
      C->Rhs = cloneExpr(*E.Rhs);
    for (const auto &A : E.Args)
      C->Args.push_back(cloneExpr(*A));
    return C;
  }

  static int precedenceOf(TokKind K) {
    switch (K) {
    case TokKind::PipePipe:
      return 1;
    case TokKind::AmpAmp:
      return 2;
    case TokKind::Pipe:
      return 3;
    case TokKind::Caret:
      return 4;
    case TokKind::Amp:
      return 5;
    case TokKind::EqEq:
    case TokKind::NotEq:
      return 6;
    case TokKind::Lt:
    case TokKind::Gt:
    case TokKind::Le:
    case TokKind::Ge:
      return 7;
    case TokKind::Shl:
    case TokKind::Shr:
      return 8;
    case TokKind::Plus:
    case TokKind::Minus:
      return 9;
    case TokKind::Star:
    case TokKind::Slash:
    case TokKind::Percent:
      return 10;
    default:
      return -1;
    }
  }

  std::unique_ptr<Expr> parseBinary(int MinPrec) {
    auto L = parseUnary();
    if (!L)
      return nullptr;
    while (true) {
      int Prec = precedenceOf(peek().Kind);
      if (Prec < 0 || Prec < MinPrec)
        return L;
      TokKind Op = take().Kind;
      auto R = parseBinary(Prec + 1);
      if (!R)
        return nullptr;
      auto B = makeExpr(Expr::Kind::Binary);
      B->Op = Op;
      B->Lhs = std::move(L);
      B->Rhs = std::move(R);
      L = std::move(B);
    }
  }

  std::unique_ptr<Expr> parseUnary() {
    if (at(TokKind::Minus) || at(TokKind::Tilde) || at(TokKind::Bang)) {
      TokKind Op = take().Kind;
      auto E = parseUnary();
      if (!E)
        return nullptr;
      auto U = makeExpr(Expr::Kind::Unary);
      U->Op = Op;
      U->Lhs = std::move(E);
      return U;
    }
    if (accept(TokKind::Star)) {
      auto E = parseUnary();
      if (!E)
        return nullptr;
      auto D = makeExpr(Expr::Kind::Deref);
      D->Lhs = std::move(E);
      return D;
    }
    if (accept(TokKind::Amp)) {
      auto E = parseUnary();
      if (!E)
        return nullptr;
      if (E->K != Expr::Kind::Var && E->K != Expr::Kind::Index) {
        fail("'&' applies to variables and array elements only");
        return nullptr;
      }
      auto A = makeExpr(Expr::Kind::AddrOf);
      A->Lhs = std::move(E);
      return A;
    }
    if (at(TokKind::PlusPlus) || at(TokKind::MinusMinus)) {
      // ++x => x = x + 1
      TokKind Op = take().Kind;
      auto E = parseUnary();
      if (!E)
        return nullptr;
      return makeIncDec(std::move(E), Op == TokKind::PlusPlus);
    }
    return parsePostfix();
  }

  std::unique_ptr<Expr> makeIncDec(std::unique_ptr<Expr> L, bool Inc) {
    auto One = makeExpr(Expr::Kind::Num);
    One->Value = 1;
    auto Bin = makeExpr(Expr::Kind::Binary);
    Bin->Op = Inc ? TokKind::Plus : TokKind::Minus;
    Bin->Lhs = cloneExpr(*L);
    Bin->Rhs = std::move(One);
    auto A = makeExpr(Expr::Kind::Assign);
    A->Lhs = std::move(L);
    A->Rhs = std::move(Bin);
    return A;
  }

  std::unique_ptr<Expr> parsePostfix() {
    auto E = parsePrimary();
    if (!E)
      return nullptr;
    while (true) {
      if (accept(TokKind::LBracket)) {
        auto Idx = parseExpr();
        if (!Idx || !expect(TokKind::RBracket, "']'"))
          return nullptr;
        auto I = makeExpr(Expr::Kind::Index);
        I->Lhs = std::move(E);
        I->Rhs = std::move(Idx);
        E = std::move(I);
        continue;
      }
      if (at(TokKind::PlusPlus) || at(TokKind::MinusMinus)) {
        // Postfix inc/dec: value semantics approximated as pre-inc (the
        // workloads only use it in statement position). Documented
        // deviation from C.
        TokKind Op = take().Kind;
        E = makeIncDec(std::move(E), Op == TokKind::PlusPlus);
        continue;
      }
      return E;
    }
  }

  std::unique_ptr<Expr> parsePrimary() {
    if (at(TokKind::Number)) {
      auto E = makeExpr(Expr::Kind::Num);
      E->Value = take().Value;
      return E;
    }
    if (at(TokKind::Ident)) {
      std::string Name = take().Text;
      if (accept(TokKind::LParen)) {
        auto C = makeExpr(Expr::Kind::Call);
        C->Name = std::move(Name);
        if (!accept(TokKind::RParen)) {
          do {
            auto A = parseExpr();
            if (!A)
              return nullptr;
            C->Args.push_back(std::move(A));
          } while (accept(TokKind::Comma));
          if (!expect(TokKind::RParen, "')'"))
            return nullptr;
        }
        return C;
      }
      auto V = makeExpr(Expr::Kind::Var);
      V->Name = std::move(Name);
      return V;
    }
    if (accept(TokKind::LParen)) {
      auto E = parseExpr();
      if (!E || !expect(TokKind::RParen, "')'"))
        return nullptr;
      return E;
    }
    fail("expected expression");
    return nullptr;
  }

  std::vector<Token> Toks;
  Program &Out;
  size_t Pos = 0;
  std::string Error;
};

} // namespace

bool vsc::parseMiniC(const std::string &Source, Program &Out,
                     std::string &Err) {
  std::vector<Token> Toks;
  if (!lex(Source, Toks, Err))
    return false;
  MiniCParser P(std::move(Toks), Out);
  return P.run(Err);
}
