//===- frontend/Lexer.h - mini-C lexer ------------------------*- C++ -*-===//
///
/// \file
/// Tokenizer for the mini-C front end (src/frontend/Parser.h). The language
/// is a small C subset rich enough to express the SPECint92-substitute
/// workloads: int (64-bit values, 4-byte memory cells), pointers, global
/// and local scalars/arrays, functions, control flow, and the simulator
/// builtins (print_int, print_char, read_int, exit).
///
//===----------------------------------------------------------------------===//

#ifndef VSC_FRONTEND_LEXER_H
#define VSC_FRONTEND_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

namespace vsc {

enum class TokKind : uint8_t {
  Eof,
  Ident,
  Number,
  // Keywords.
  KwInt,
  KwVoid,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwDo,
  KwReturn,
  KwBreak,
  KwContinue,
  KwVolatile,
  // Punctuation / operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Assign,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,
  Pipe,
  Caret,
  Tilde,
  Bang,
  Shl,
  Shr,
  Lt,
  Gt,
  Le,
  Ge,
  EqEq,
  NotEq,
  AmpAmp,
  PipePipe,
  PlusPlus,
  MinusMinus,
  PlusAssign,
  MinusAssign,
};

struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;
  int64_t Value = 0; ///< for Number
  unsigned Line = 0;
};

/// Tokenizes \p Source. On error, returns false and sets \p Err.
bool lex(const std::string &Source, std::vector<Token> &Out,
         std::string &Err);

} // namespace vsc

#endif // VSC_FRONTEND_LEXER_H
