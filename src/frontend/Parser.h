//===- frontend/Parser.h - mini-C parser ----------------------*- C++ -*-===//
///
/// \file
/// Recursive-descent parser for mini-C. Grammar sketch:
///
///   program   := (global | function)*
///   global    := ["volatile"] "int" ["*"] ident ["[" num "]"]
///                ["=" init] ";"
///   function  := ("int"|"void") ident "(" params ")" block
///   stmt      := decl | block | if | while | do-while | for | return
///                | break ";" | continue ";" | expr ";"
///   expr      := assignment with C precedence: || && | ^ & ==/!= rel
///                shift add mul unary postfix primary
///
//===----------------------------------------------------------------------===//

#ifndef VSC_FRONTEND_PARSER_H
#define VSC_FRONTEND_PARSER_H

#include "frontend/Ast.h"

namespace vsc {

/// Parses mini-C source. On failure returns false and fills \p Err with a
/// "line N: message" diagnostic.
bool parseMiniC(const std::string &Source, Program &Out, std::string &Err);

} // namespace vsc

#endif // VSC_FRONTEND_PARSER_H
