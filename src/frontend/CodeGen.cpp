//===- frontend/CodeGen.cpp - mini-C code generation --------------------------===//

#include "frontend/Frontend.h"

#include "frontend/Parser.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"

#include <cassert>
#include <unordered_map>

using namespace vsc;

namespace {

struct Value {
  Reg R;
  bool IsPtr = false;
  std::string Prov; ///< global this value provably points into ("" unknown)
};

struct LocalVar {
  bool IsArray = false;
  bool IsPtr = false;
  Reg R;              ///< scalars
  int64_t FrameOff = 0; ///< arrays
  int64_t NumElems = 0;
};

struct GlobalInfo {
  bool IsArray = false;
  bool IsPtr = false;
  bool IsVolatile = false;
  int64_t NumElems = 1;
};

struct MemLoc {
  Reg Base;
  int64_t Disp = 0;
  std::string Sym;
  bool Volatile = false;
};

class FuncGen {
public:
  FuncGen(const FuncDecl &D, Function &F, Module &M,
          const std::unordered_map<std::string, GlobalInfo> &Globals,
          const FrontendOptions &Opts)
      : D(D), F(F), M(M), Globals(Globals), Opts(Opts), B(F) {}

  bool run(std::string &Err);

private:
  bool fail(unsigned Line, const std::string &Msg) {
    if (Error.empty())
      Error = "line " + std::to_string(Line) + ": " + Msg;
    return false;
  }

  // --- scope management ---------------------------------------------------

  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  LocalVar *lookup(const std::string &Name) {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto F2 = It->find(Name);
      if (F2 != It->end())
        return &F2->second;
    }
    return nullptr;
  }

  Reg allocScalarReg() {
    if (Opts.UseCalleeSavedForLocals && NextCsr <= 31)
      return Reg::gpr(NextCsr++);
    return F.freshGpr();
  }

  // --- block plumbing -------------------------------------------------------

  /// Starts a new block with a fresh label derived from \p Hint; if the
  /// current block falls through, execution continues into it.
  void startBlock(const std::string &Hint) {
    B.startBlock(F.freshLabel(Hint));
  }

  bool blockOpen() const {
    BasicBlock *BB = B.block();
    return BB && (BB->empty() || !BB->instrs().back().isBarrier());
  }

  // --- frame ----------------------------------------------------------------

  void prescanArrays(const std::vector<std::unique_ptr<Stmt>> &Body) {
    for (const auto &S : Body)
      prescanArrays(*S);
  }
  void prescanArrays(const Stmt &S) {
    if (S.K == Stmt::Kind::Decl && S.IsArray) {
      int64_t Bytes = (4 * S.ArraySize + 7) & ~int64_t(7);
      ArrayOffsets[&S] = FrameSize;
      FrameSize += Bytes;
    }
    if (S.InitS)
      prescanArrays(*S.InitS);
    if (S.Then)
      prescanArrays(*S.Then);
    if (S.Else)
      prescanArrays(*S.Else);
    prescanArrays(S.Body);
  }

  void emitEpilogueAndRet() {
    if (FrameSize > 0)
      B.ai(regs::sp(), regs::sp(), FrameSize);
    B.ret();
  }

  // --- expressions ----------------------------------------------------------

  bool genExpr(const Expr &E, Value &Out);
  bool genBinary(const Expr &E, Value &Out);
  bool genAddr(const Expr &E, MemLoc &Out);
  bool genBranch(const Expr &Cond, const std::string &TrueL,
                 const std::string &FalseL);
  bool genStmt(const Stmt &S);
  bool genBody(const std::vector<std::unique_ptr<Stmt>> &Body);

  Value load(const MemLoc &L) {
    Reg T = F.freshGpr();
    Instr &I = B.load(T, L.Base, L.Disp, L.Sym);
    I.IsVolatile = L.Volatile;
    if (!L.Volatile && (Opts.AssumeSafeLoads || L.Base == regs::sp()))
      I.SpecSafe = true;
    return Value{T, false, ""};
  }
  void store(const MemLoc &L, Reg V) {
    Instr &I = B.store(V, L.Base, L.Disp, L.Sym);
    I.IsVolatile = L.Volatile;
  }

  /// Materialises &global into a register.
  Reg globalAddr(const std::string &Name) {
    Reg T = F.freshGpr();
    B.ltoc(T, Name);
    return T;
  }

  const FuncDecl &D;
  Function &F;
  Module &M;
  const std::unordered_map<std::string, GlobalInfo> &Globals;
  const FrontendOptions &Opts;
  IRBuilder B;
  std::vector<std::unordered_map<std::string, LocalVar>> Scopes;
  std::unordered_map<const Stmt *, int64_t> ArrayOffsets;
  int64_t FrameSize = 0;
  uint32_t NextCsr = 13;
  std::string Error;
  std::vector<std::pair<std::string, std::string>> LoopLabels; // cont,brk


public:
  const std::string &error() const { return Error; }
};

bool FuncGen::genAddr(const Expr &E, MemLoc &Out) {
  switch (E.K) {
  case Expr::Kind::Var: {
    if (LocalVar *L = lookup(E.Name)) {
      if (L->IsArray) {
        Out = MemLoc{regs::sp(), L->FrameOff, "", false};
        return true;
      }
      return fail(E.Line, "scalar locals are registers, not memory");
    }
    auto G = Globals.find(E.Name);
    if (G == Globals.end())
      return fail(E.Line, "unknown variable '" + E.Name + "'");
    Out = MemLoc{globalAddr(E.Name), 0, E.Name, G->second.IsVolatile};
    return true;
  }
  case Expr::Kind::Index: {
    // Base address and provenance.
    Value BaseV;
    MemLoc BaseLoc;
    bool BaseIsDirectArray = false;
    if (E.Lhs->K == Expr::Kind::Var) {
      if (LocalVar *L = lookup(E.Lhs->Name)) {
        if (L->IsArray) {
          BaseLoc = MemLoc{regs::sp(), L->FrameOff, "", false};
          BaseIsDirectArray = true;
        }
      } else if (Globals.count(E.Lhs->Name) &&
                 Globals.at(E.Lhs->Name).IsArray) {
        BaseLoc = MemLoc{globalAddr(E.Lhs->Name), 0, E.Lhs->Name,
                         Globals.at(E.Lhs->Name).IsVolatile};
        BaseIsDirectArray = true;
      }
    }
    if (!BaseIsDirectArray) {
      if (!genExpr(*E.Lhs, BaseV))
        return false;
      BaseLoc = MemLoc{BaseV.R, 0, BaseV.Prov, false};
      if (!BaseV.Prov.empty() && Globals.count(BaseV.Prov))
        BaseLoc.Volatile = Globals.at(BaseV.Prov).IsVolatile;
    }
    // Constant index folds into the displacement.
    if (E.Rhs->K == Expr::Kind::Num) {
      Out = BaseLoc;
      Out.Disp += 4 * E.Rhs->Value;
      return true;
    }
    Value Idx;
    if (!genExpr(*E.Rhs, Idx))
      return false;
    Reg Scaled = F.freshGpr();
    B.sli(Scaled, Idx.R, 2);
    Reg Addr = F.freshGpr();
    B.add(Addr, BaseLoc.Base, Scaled);
    Out = MemLoc{Addr, BaseLoc.Disp, BaseLoc.Sym, BaseLoc.Volatile};
    return true;
  }
  case Expr::Kind::Deref: {
    Value P;
    if (!genExpr(*E.Lhs, P))
      return false;
    bool Vol = !P.Prov.empty() && Globals.count(P.Prov) &&
               Globals.at(P.Prov).IsVolatile;
    Out = MemLoc{P.R, 0, P.Prov, Vol};
    return true;
  }
  default:
    return fail(E.Line, "expression is not an lvalue");
  }
}

bool FuncGen::genExpr(const Expr &E, Value &Out) {
  switch (E.K) {
  case Expr::Kind::Num: {
    Reg T = F.freshGpr();
    B.li(T, E.Value);
    Out = Value{T, false, ""};
    return true;
  }
  case Expr::Kind::Var: {
    if (LocalVar *L = lookup(E.Name)) {
      if (L->IsArray) {
        Reg T = F.freshGpr();
        B.la(T, regs::sp(), L->FrameOff);
        Out = Value{T, true, ""};
        return true;
      }
      Out = Value{L->R, L->IsPtr, ""};
      return true;
    }
    auto G = Globals.find(E.Name);
    if (G == Globals.end())
      return fail(E.Line, "unknown variable '" + E.Name + "'");
    if (G->second.IsArray) {
      Out = Value{globalAddr(E.Name), true, E.Name};
      return true;
    }
    MemLoc L{globalAddr(E.Name), 0, E.Name, G->second.IsVolatile};
    Out = load(L);
    Out.IsPtr = G->second.IsPtr;
    return true;
  }
  case Expr::Kind::AddrOf: {
    MemLoc L;
    if (!genAddr(*E.Lhs, L))
      return false;
    Reg T = F.freshGpr();
    if (L.Disp != 0)
      B.la(T, L.Base, L.Disp);
    else
      B.lr(T, L.Base);
    Out = Value{T, true, L.Sym};
    return true;
  }
  case Expr::Kind::Deref:
  case Expr::Kind::Index: {
    MemLoc L;
    if (!genAddr(E, L))
      return false;
    Out = load(L);
    return true;
  }
  case Expr::Kind::Assign: {
    Value R;
    if (!genExpr(*E.Rhs, R))
      return false;
    // Scalar local/global or memory lvalue.
    if (E.Lhs->K == Expr::Kind::Var) {
      if (LocalVar *L = lookup(E.Lhs->Name)) {
        if (L->IsArray)
          return fail(E.Line, "cannot assign to an array");
        B.lr(L->R, R.R);
        Out = Value{L->R, L->IsPtr, R.Prov};
        return true;
      }
      auto G = Globals.find(E.Lhs->Name);
      if (G == Globals.end())
        return fail(E.Line, "unknown variable '" + E.Lhs->Name + "'");
      if (G->second.IsArray)
        return fail(E.Line, "cannot assign to an array");
      MemLoc L{globalAddr(E.Lhs->Name), 0, E.Lhs->Name,
               G->second.IsVolatile};
      store(L, R.R);
      Out = R;
      return true;
    }
    MemLoc L;
    if (!genAddr(*E.Lhs, L))
      return false;
    store(L, R.R);
    Out = R;
    return true;
  }
  case Expr::Kind::Unary: {
    if (E.Op == TokKind::Bang) {
      // !x: 1 when x == 0.
      std::string EndL = F.freshLabel("bnot.end");
      Value V;
      if (!genExpr(*E.Lhs, V))
        return false;
      Reg T = F.freshGpr();
      Reg Cr = F.freshCr();
      B.cmpi(Cr, V.R, 0);
      B.li(T, 0);
      B.bf(EndL, Cr, CrBit::Eq); // x != 0: keep 0
      B.startBlock(F.freshLabel("bnot.t"));
      B.li(T, 1);
      B.startBlock(EndL);
      Out = Value{T, false, ""};
      return true;
    }
    Value V;
    if (!genExpr(*E.Lhs, V))
      return false;
    Reg T = F.freshGpr();
    if (E.Op == TokKind::Minus)
      B.neg(T, V.R);
    else if (E.Op == TokKind::Tilde)
      B.xori(T, V.R, -1);
    else
      return fail(E.Line, "unsupported unary operator");
    Out = Value{T, false, ""};
    return true;
  }
  case Expr::Kind::Binary:
    return genBinary(E, Out);
  case Expr::Kind::Call: {
    if (E.Args.size() > 8)
      return fail(E.Line, "at most 8 arguments");
    std::vector<Reg> Temps;
    for (const auto &A : E.Args) {
      Value V;
      if (!genExpr(*A, V))
        return false;
      // Copy into a fresh temp so later argument evaluation cannot clobber
      // it (e.g. nested calls writing r3..).
      Reg T = F.freshGpr();
      B.lr(T, V.R);
      Temps.push_back(T);
    }
    for (size_t I = 0; I != Temps.size(); ++I)
      B.lr(regs::arg(static_cast<unsigned>(I)), Temps[I]);
    B.call(E.Name, static_cast<int64_t>(E.Args.size()));
    Reg T = F.freshGpr();
    B.lr(T, regs::retval());
    Out = Value{T, false, ""};
    return true;
  }
  }
  return fail(E.Line, "unhandled expression");
}


bool FuncGen::genBranch(const Expr &Cond, const std::string &TrueL,
                        const std::string &FalseL) {
  switch (Cond.K) {
  case Expr::Kind::Unary:
    if (Cond.Op == TokKind::Bang)
      return genBranch(*Cond.Lhs, FalseL, TrueL);
    break;
  case Expr::Kind::Binary: {
    if (Cond.Op == TokKind::AmpAmp) {
      std::string Mid = F.freshLabel("and");
      if (!genBranch(*Cond.Lhs, Mid, FalseL))
        return false;
      BasicBlock *MidBB = B.startBlock(Mid);
      (void)MidBB;
      return genBranch(*Cond.Rhs, TrueL, FalseL);
    }
    if (Cond.Op == TokKind::PipePipe) {
      std::string Mid = F.freshLabel("or");
      if (!genBranch(*Cond.Lhs, TrueL, Mid))
        return false;
      B.startBlock(Mid);
      return genBranch(*Cond.Rhs, TrueL, FalseL);
    }
    // Comparison?
    CrBit Bit;
    bool Sense;
    bool IsCmp = true;
    switch (Cond.Op) {
    case TokKind::Lt:
      Bit = CrBit::Lt;
      Sense = true;
      break;
    case TokKind::Gt:
      Bit = CrBit::Gt;
      Sense = true;
      break;
    case TokKind::Le:
      Bit = CrBit::Gt;
      Sense = false;
      break;
    case TokKind::Ge:
      Bit = CrBit::Lt;
      Sense = false;
      break;
    case TokKind::EqEq:
      Bit = CrBit::Eq;
      Sense = true;
      break;
    case TokKind::NotEq:
      Bit = CrBit::Eq;
      Sense = false;
      break;
    default:
      IsCmp = false;
      break;
    }
    if (IsCmp) {
      Value L;
      if (!genExpr(*Cond.Lhs, L))
        return false;
      Reg Cr = F.freshCr();
      if (Cond.Rhs->K == Expr::Kind::Num) {
        B.cmpi(Cr, L.R, Cond.Rhs->Value);
      } else {
        Value R;
        if (!genExpr(*Cond.Rhs, R))
          return false;
        B.cmp(Cr, L.R, R.R);
      }
      if (Sense)
        B.bt(TrueL, Cr, Bit);
      else
        B.bf(TrueL, Cr, Bit);
      B.b(FalseL);
      return true;
    }
    break;
  }
  default:
    break;
  }
  // Generic: non-zero means true.
  Value V;
  if (!genExpr(Cond, V))
    return false;
  Reg Cr = F.freshCr();
  B.cmpi(Cr, V.R, 0);
  B.bf(TrueL, Cr, CrBit::Eq);
  B.b(FalseL);
  return true;
}

bool FuncGen::genBinary(const Expr &E, Value &Out) {
  switch (E.Op) {
  case TokKind::AmpAmp:
  case TokKind::PipePipe:
  case TokKind::Lt:
  case TokKind::Gt:
  case TokKind::Le:
  case TokKind::Ge:
  case TokKind::EqEq:
  case TokKind::NotEq: {
    // Materialise a boolean through control flow.
    std::string TrueL = F.freshLabel("cmp.t");
    std::string FalseL = F.freshLabel("cmp.f");
    std::string EndL = F.freshLabel("cmp.end");
    Reg T = F.freshGpr();
    if (!genBranch(E, TrueL, FalseL))
      return false;
    B.startBlock(FalseL);
    B.li(T, 0);
    B.b(EndL);
    B.startBlock(TrueL);
    B.li(T, 1);
    B.startBlock(EndL);
    Out = Value{T, false, ""};
    return true;
  }
  default:
    break;
  }

  Value L;
  if (!genExpr(*E.Lhs, L))
    return false;

  // Pointer arithmetic scaling: ptr +/- int scales the int by 4.
  auto ScaleIfNeeded = [&](Value &IntSide) {
    Reg S = F.freshGpr();
    B.sli(S, IntSide.R, 2);
    IntSide.R = S;
  };

  // Immediate forms.
  if (E.Rhs->K == Expr::Kind::Num) {
    int64_t Imm = E.Rhs->Value;
    Reg T = F.freshGpr();
    bool Ptr = L.IsPtr;
    switch (E.Op) {
    case TokKind::Plus:
      B.ai(T, L.R, Ptr ? Imm * 4 : Imm);
      Out = Value{T, Ptr, L.Prov};
      return true;
    case TokKind::Minus:
      B.si(T, L.R, Ptr ? Imm * 4 : Imm);
      Out = Value{T, Ptr, L.Prov};
      return true;
    case TokKind::Star:
      B.muli(T, L.R, Imm);
      Out = Value{T, false, ""};
      return true;
    case TokKind::Amp:
      B.andi(T, L.R, Imm);
      Out = Value{T, false, ""};
      return true;
    case TokKind::Pipe:
      B.ori(T, L.R, Imm);
      Out = Value{T, false, ""};
      return true;
    case TokKind::Caret:
      B.xori(T, L.R, Imm);
      Out = Value{T, false, ""};
      return true;
    case TokKind::Shl:
      B.sli(T, L.R, Imm);
      Out = Value{T, false, ""};
      return true;
    case TokKind::Shr:
      B.srai(T, L.R, Imm);
      Out = Value{T, false, ""};
      return true;
    default:
      break;
    }
  }

  Value R;
  if (!genExpr(*E.Rhs, R))
    return false;
  if (E.Op == TokKind::Plus || E.Op == TokKind::Minus) {
    if (L.IsPtr && !R.IsPtr)
      ScaleIfNeeded(R);
    else if (R.IsPtr && !L.IsPtr && E.Op == TokKind::Plus)
      ScaleIfNeeded(L);
  }
  Reg T = F.freshGpr();
  bool Ptr = L.IsPtr || R.IsPtr;
  std::string Prov = !L.Prov.empty() ? L.Prov : R.Prov;
  switch (E.Op) {
  case TokKind::Plus:
    B.add(T, L.R, R.R);
    Out = Value{T, Ptr, Prov};
    return true;
  case TokKind::Minus:
    B.sub(T, L.R, R.R);
    Out = Value{T, L.IsPtr && R.IsPtr ? false : Ptr, Prov};
    return true;
  case TokKind::Star:
    B.mul(T, L.R, R.R);
    break;
  case TokKind::Slash:
    B.div(T, L.R, R.R);
    break;
  case TokKind::Percent: {
    Reg Q = F.freshGpr(), P = F.freshGpr();
    B.div(Q, L.R, R.R);
    B.mul(P, Q, R.R);
    B.sub(T, L.R, P);
    break;
  }
  case TokKind::Amp:
    B.and_(T, L.R, R.R);
    break;
  case TokKind::Pipe:
    B.or_(T, L.R, R.R);
    break;
  case TokKind::Caret:
    B.xor_(T, L.R, R.R);
    break;
  case TokKind::Shl:
    B.sl(T, L.R, R.R);
    break;
  case TokKind::Shr:
    B.sra(T, L.R, R.R);
    break;
  default:
    return fail(E.Line, "unsupported binary operator");
  }
  Out = Value{T, false, ""};
  return true;
}

bool FuncGen::genStmt(const Stmt &S) {
  switch (S.K) {
  case Stmt::Kind::ExprStmt: {
    Value V;
    return genExpr(*S.E, V);
  }
  case Stmt::Kind::Decl: {
    if (Scopes.back().count(S.Name))
      return fail(S.Line, "redefinition of '" + S.Name + "'");
    LocalVar L;
    if (S.IsArray) {
      L.IsArray = true;
      L.FrameOff = ArrayOffsets.at(&S);
      L.NumElems = S.ArraySize;
    } else {
      L.IsPtr = S.IsPointer;
      L.R = allocScalarReg();
      if (S.E) {
        Value V;
        if (!genExpr(*S.E, V))
          return false;
        B.lr(L.R, V.R);
      } else {
        B.li(L.R, 0);
      }
    }
    Scopes.back()[S.Name] = L;
    return true;
  }
  case Stmt::Kind::Block: {
    pushScope();
    bool Ok = genBody(S.Body);
    popScope();
    return Ok;
  }
  case Stmt::Kind::If: {
    std::string ThenL = F.freshLabel("if.then");
    std::string ElseL = F.freshLabel("if.else");
    std::string EndL = F.freshLabel("if.end");
    if (!genBranch(*S.Cond, ThenL, S.Else ? ElseL : EndL))
      return false;
    B.startBlock(ThenL);
    if (!genStmt(*S.Then))
      return false;
    if (blockOpen())
      B.b(EndL);
    if (S.Else) {
      B.startBlock(ElseL);
      if (!genStmt(*S.Else))
        return false;
      if (blockOpen())
        B.b(EndL);
    }
    B.startBlock(EndL);
    return true;
  }
  case Stmt::Kind::While: {
    std::string HeadL = F.freshLabel("while.head");
    std::string BodyL = F.freshLabel("while.body");
    std::string EndL = F.freshLabel("while.end");
    if (blockOpen())
      B.b(HeadL);
    B.startBlock(HeadL);
    if (!genBranch(*S.Cond, BodyL, EndL))
      return false;
    B.startBlock(BodyL);
    LoopLabels.push_back({HeadL, EndL});
    bool Ok = genStmt(*S.Then);
    LoopLabels.pop_back();
    if (!Ok)
      return false;
    if (blockOpen())
      B.b(HeadL);
    B.startBlock(EndL);
    return true;
  }
  case Stmt::Kind::DoWhile: {
    std::string BodyL = F.freshLabel("do.body");
    std::string CondL = F.freshLabel("do.cond");
    std::string EndL = F.freshLabel("do.end");
    if (blockOpen())
      B.b(BodyL);
    B.startBlock(BodyL);
    LoopLabels.push_back({CondL, EndL});
    bool Ok = genStmt(*S.Then);
    LoopLabels.pop_back();
    if (!Ok)
      return false;
    if (blockOpen())
      B.b(CondL);
    B.startBlock(CondL);
    if (!genBranch(*S.Cond, BodyL, EndL))
      return false;
    B.startBlock(EndL);
    return true;
  }
  case Stmt::Kind::For: {
    pushScope();
    if (S.InitS && !genStmt(*S.InitS)) {
      popScope();
      return false;
    }
    std::string HeadL = F.freshLabel("for.head");
    std::string BodyL = F.freshLabel("for.body");
    std::string IncL = F.freshLabel("for.inc");
    std::string EndL = F.freshLabel("for.end");
    if (blockOpen())
      B.b(HeadL);
    B.startBlock(HeadL);
    if (S.Cond) {
      if (!genBranch(*S.Cond, BodyL, EndL)) {
        popScope();
        return false;
      }
      B.startBlock(BodyL);
    }
    LoopLabels.push_back({IncL, EndL});
    bool Ok = genStmt(*S.Then);
    LoopLabels.pop_back();
    if (!Ok) {
      popScope();
      return false;
    }
    if (blockOpen())
      B.b(IncL);
    B.startBlock(IncL);
    if (S.Inc) {
      Value V;
      if (!genExpr(*S.Inc, V)) {
        popScope();
        return false;
      }
    }
    B.b(HeadL);
    B.startBlock(EndL);
    popScope();
    return true;
  }
  case Stmt::Kind::Return: {
    if (S.E) {
      Value V;
      if (!genExpr(*S.E, V))
        return false;
      B.lr(regs::retval(), V.R);
    } else {
      B.li(regs::retval(), 0);
    }
    emitEpilogueAndRet();
    startBlock("dead");
    return true;
  }
  case Stmt::Kind::Break: {
    if (LoopLabels.empty())
      return fail(S.Line, "break outside a loop");
    B.b(LoopLabels.back().second);
    startBlock("dead");
    return true;
  }
  case Stmt::Kind::Continue: {
    if (LoopLabels.empty())
      return fail(S.Line, "continue outside a loop");
    B.b(LoopLabels.back().first);
    startBlock("dead");
    return true;
  }
  }
  return fail(S.Line, "unhandled statement");
}

bool FuncGen::genBody(const std::vector<std::unique_ptr<Stmt>> &Body) {
  for (const auto &S : Body)
    if (!genStmt(*S))
      return false;
  return true;
}

bool FuncGen::run(std::string &Err) {
  prescanArrays(D.Body);
  B.startBlock("entry");
  if (FrameSize > 0)
    B.si(regs::sp(), regs::sp(), FrameSize);

  pushScope();
  for (size_t I = 0; I != D.Params.size(); ++I) {
    LocalVar L;
    L.IsPtr = D.Params[I].IsPointer;
    L.R = allocScalarReg();
    B.lr(L.R, regs::arg(static_cast<unsigned>(I)));
    Scopes.back()[D.Params[I].Name] = L;
  }
  if (!genBody(D.Body)) {
    Err = Error;
    return false;
  }
  popScope();

  // Implicit "return 0" when control can fall off the end.
  if (blockOpen()) {
    B.li(regs::retval(), 0);
    emitEpilogueAndRet();
  }
  return true;
}

} // namespace

CompileResult vsc::compileMiniC(const std::string &Source,
                                const FrontendOptions &Opts) {
  CompileResult Result;
  Program Prog;
  if (!parseMiniC(Source, Prog, Result.Error))
    return Result;

  auto M = std::make_unique<Module>();
  std::unordered_map<std::string, GlobalInfo> Globals;
  for (const GlobalDecl &G : Prog.Globals) {
    if (Globals.count(G.Name)) {
      Result.Error =
          "line " + std::to_string(G.Line) + ": duplicate global";
      return Result;
    }
    GlobalInfo Info;
    Info.IsArray = G.IsArray;
    Info.IsPtr = G.IsPointer;
    Info.IsVolatile = G.IsVolatile;
    Info.NumElems = G.NumElems;
    Globals[G.Name] = Info;

    Global &IG = M->addGlobal(G.Name, 4 * static_cast<uint64_t>(G.NumElems));
    IG.IsVolatile = G.IsVolatile;
    for (size_t I = 0; I != G.Init.size(); ++I) {
      uint64_t V = static_cast<uint64_t>(G.Init[I]);
      for (unsigned Byte = 0; Byte != 4; ++Byte)
        IG.Init.push_back(static_cast<uint8_t>(V >> (8 * Byte)));
    }
  }

  for (const FuncDecl &D : Prog.Functions) {
    Function *F = M->addFunction(D.Name,
                                 static_cast<unsigned>(D.Params.size()));
    FuncGen Gen(D, *F, *M, Globals, Opts);
    if (!Gen.run(Result.Error))
      return Result;
  }

  std::string V = verifyModule(*M);
  if (!V.empty()) {
    Result.Error = "internal: generated IR does not verify: " + V;
    return Result;
  }
  Result.M = std::move(M);
  return Result;
}
