//===- frontend/Lexer.cpp - mini-C lexer --------------------------------------===//

#include "frontend/Lexer.h"

#include <cctype>

using namespace vsc;

bool vsc::lex(const std::string &Source, std::vector<Token> &Out,
              std::string &Err) {
  size_t I = 0, N = Source.size();
  unsigned Line = 1;
  auto Push = [&](TokKind K, std::string Text = "", int64_t V = 0) {
    Out.push_back(Token{K, std::move(Text), V, Line});
  };

  while (I < N) {
    char C = Source[I];
    if (C == '\n') {
      ++Line;
      ++I;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    // Comments.
    if (C == '/' && I + 1 < N && Source[I + 1] == '/') {
      while (I < N && Source[I] != '\n')
        ++I;
      continue;
    }
    if (C == '/' && I + 1 < N && Source[I + 1] == '*') {
      I += 2;
      while (I + 1 < N && !(Source[I] == '*' && Source[I + 1] == '/')) {
        if (Source[I] == '\n')
          ++Line;
        ++I;
      }
      if (I + 1 >= N) {
        Err = "line " + std::to_string(Line) + ": unterminated comment";
        return false;
      }
      I += 2;
      continue;
    }
    // Identifiers / keywords.
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = I;
      while (I < N && (std::isalnum(static_cast<unsigned char>(Source[I])) ||
                       Source[I] == '_'))
        ++I;
      std::string W = Source.substr(Start, I - Start);
      if (W == "int")
        Push(TokKind::KwInt);
      else if (W == "void")
        Push(TokKind::KwVoid);
      else if (W == "if")
        Push(TokKind::KwIf);
      else if (W == "else")
        Push(TokKind::KwElse);
      else if (W == "while")
        Push(TokKind::KwWhile);
      else if (W == "for")
        Push(TokKind::KwFor);
      else if (W == "do")
        Push(TokKind::KwDo);
      else if (W == "return")
        Push(TokKind::KwReturn);
      else if (W == "break")
        Push(TokKind::KwBreak);
      else if (W == "continue")
        Push(TokKind::KwContinue);
      else if (W == "volatile")
        Push(TokKind::KwVolatile);
      else
        Push(TokKind::Ident, W);
      continue;
    }
    // Numbers (decimal and hex).
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t Start = I;
      int64_t V = 0;
      if (C == '0' && I + 1 < N && (Source[I + 1] == 'x' ||
                                    Source[I + 1] == 'X')) {
        I += 2;
        while (I < N &&
               std::isxdigit(static_cast<unsigned char>(Source[I]))) {
          char D = Source[I++];
          V = V * 16 + (std::isdigit(static_cast<unsigned char>(D))
                            ? D - '0'
                            : std::tolower(D) - 'a' + 10);
        }
      } else {
        while (I < N && std::isdigit(static_cast<unsigned char>(Source[I])))
          V = V * 10 + (Source[I++] - '0');
      }
      Push(TokKind::Number, Source.substr(Start, I - Start), V);
      continue;
    }
    // Character literal.
    if (C == '\'') {
      if (I + 2 < N && Source[I + 1] == '\\' && Source[I + 3] == '\'') {
        char E = Source[I + 2];
        int64_t V = E == 'n' ? '\n' : E == 't' ? '\t' : E == '0' ? 0 : E;
        Push(TokKind::Number, "", V);
        I += 4;
        continue;
      }
      if (I + 2 < N && Source[I + 2] == '\'') {
        Push(TokKind::Number, "", Source[I + 1]);
        I += 3;
        continue;
      }
      Err = "line " + std::to_string(Line) + ": bad character literal";
      return false;
    }

    auto Two = [&](char A, char B) {
      return C == A && I + 1 < N && Source[I + 1] == B;
    };
    if (Two('<', '<')) {
      Push(TokKind::Shl);
      I += 2;
    } else if (Two('>', '>')) {
      Push(TokKind::Shr);
      I += 2;
    } else if (Two('<', '=')) {
      Push(TokKind::Le);
      I += 2;
    } else if (Two('>', '=')) {
      Push(TokKind::Ge);
      I += 2;
    } else if (Two('=', '=')) {
      Push(TokKind::EqEq);
      I += 2;
    } else if (Two('!', '=')) {
      Push(TokKind::NotEq);
      I += 2;
    } else if (Two('&', '&')) {
      Push(TokKind::AmpAmp);
      I += 2;
    } else if (Two('|', '|')) {
      Push(TokKind::PipePipe);
      I += 2;
    } else if (Two('+', '+')) {
      Push(TokKind::PlusPlus);
      I += 2;
    } else if (Two('-', '-')) {
      Push(TokKind::MinusMinus);
      I += 2;
    } else if (Two('+', '=')) {
      Push(TokKind::PlusAssign);
      I += 2;
    } else if (Two('-', '=')) {
      Push(TokKind::MinusAssign);
      I += 2;
    } else {
      TokKind K;
      switch (C) {
      case '(':
        K = TokKind::LParen;
        break;
      case ')':
        K = TokKind::RParen;
        break;
      case '{':
        K = TokKind::LBrace;
        break;
      case '}':
        K = TokKind::RBrace;
        break;
      case '[':
        K = TokKind::LBracket;
        break;
      case ']':
        K = TokKind::RBracket;
        break;
      case ';':
        K = TokKind::Semi;
        break;
      case ',':
        K = TokKind::Comma;
        break;
      case '=':
        K = TokKind::Assign;
        break;
      case '+':
        K = TokKind::Plus;
        break;
      case '-':
        K = TokKind::Minus;
        break;
      case '*':
        K = TokKind::Star;
        break;
      case '/':
        K = TokKind::Slash;
        break;
      case '%':
        K = TokKind::Percent;
        break;
      case '&':
        K = TokKind::Amp;
        break;
      case '|':
        K = TokKind::Pipe;
        break;
      case '^':
        K = TokKind::Caret;
        break;
      case '~':
        K = TokKind::Tilde;
        break;
      case '!':
        K = TokKind::Bang;
        break;
      case '<':
        K = TokKind::Lt;
        break;
      case '>':
        K = TokKind::Gt;
        break;
      default:
        Err = "line " + std::to_string(Line) + ": unexpected character '" +
              std::string(1, C) + "'";
        return false;
      }
      Push(K);
      ++I;
    }
  }
  Push(TokKind::Eof);
  return true;
}
