//===- frontend/Ast.h - mini-C abstract syntax ----------------*- C++ -*-===//
///
/// \file
/// AST for the mini-C front end. Expressions and statements are tagged
/// unions (one struct each); ownership is by unique_ptr down the tree.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_FRONTEND_AST_H
#define VSC_FRONTEND_AST_H

#include "frontend/Lexer.h"

#include <memory>
#include <string>
#include <vector>

namespace vsc {

struct Expr {
  enum class Kind {
    Num,    ///< Value
    Var,    ///< Name
    Unary,  ///< Op (Minus/Tilde/Bang), Lhs
    Binary, ///< Op, Lhs, Rhs
    Assign, ///< Lhs (lvalue), Rhs; evaluates to Rhs
    Index,  ///< Lhs[Rhs]
    Deref,  ///< *Lhs
    AddrOf, ///< &Lhs (Lhs must be Var of array/global or Index)
    Call,   ///< Name(Args)
  };
  Kind K;
  int64_t Value = 0;
  std::string Name;
  TokKind Op = TokKind::Eof;
  std::unique_ptr<Expr> Lhs, Rhs;
  std::vector<std::unique_ptr<Expr>> Args;
  unsigned Line = 0;
};

struct Stmt {
  enum class Kind {
    ExprStmt, ///< E
    Decl,     ///< Name [IsPointer|IsArray ArraySize] [= E]
    Block,    ///< Body
    If,       ///< Cond, Then, [Else]
    While,    ///< Cond, ThenAsBody
    DoWhile,  ///< Body then Cond
    For,      ///< InitS, Cond, IncE, Body
    Return,   ///< [E]
    Break,
    Continue,
  };
  Kind K;
  std::unique_ptr<Expr> E;      ///< ExprStmt / Decl-init / Return value
  std::unique_ptr<Expr> Cond;
  std::unique_ptr<Expr> Inc;    ///< For increment
  std::unique_ptr<Stmt> InitS;  ///< For init
  std::unique_ptr<Stmt> Then, Else;
  std::vector<std::unique_ptr<Stmt>> Body;
  std::string Name;
  bool IsPointer = false;
  bool IsArray = false;
  int64_t ArraySize = 0;
  unsigned Line = 0;
};

struct ParamDecl {
  std::string Name;
  bool IsPointer = false;
};

struct FuncDecl {
  std::string Name;
  bool ReturnsVoid = false;
  std::vector<ParamDecl> Params;
  std::vector<std::unique_ptr<Stmt>> Body;
  unsigned Line = 0;
};

struct GlobalDecl {
  std::string Name;
  bool IsArray = false;
  bool IsPointer = false;
  bool IsVolatile = false;
  int64_t NumElems = 1;
  std::vector<int64_t> Init; ///< element initializers
  unsigned Line = 0;
};

struct Program {
  std::vector<GlobalDecl> Globals;
  std::vector<FuncDecl> Functions;
};

} // namespace vsc

#endif // VSC_FRONTEND_AST_H
