//===- sim/SimCore.h - Shared simulator register state --------*- C++ -*-===//
///
/// \file
/// Register-file state shared by the two simulator engines (the legacy
/// walking interpreter in Simulator.cpp and the predecoded fast path in
/// FastSim.cpp). Both engines must agree bit-for-bit — the differential
/// test tests/test_sim_fastpath.cpp holds them to that — so the state and
/// its growth rules live in one place. Internal header: not part of the
/// sim/ public API.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_SIM_SIMCORE_H
#define VSC_SIM_SIMCORE_H

#include "ir/Opcode.h"

#include <cstdint>
#include <vector>

namespace vsc {
namespace simcore {

struct CrVal {
  bool Lt = false, Gt = false, Eq = false;

  bool bit(CrBit B) const {
    switch (B) {
    case CrBit::Lt:
      return Lt;
    case CrBit::Gt:
      return Gt;
    case CrBit::Eq:
      return Eq;
    }
    return false;
  }
};

/// Architectural register state plus per-register ready times for the
/// timing model. Virtual registers are function-private (saved/restored at
/// calls, see sim/Simulator.h).
struct RegFile {
  int64_t Phys[32] = {0};
  CrVal PhysCr[8];
  int64_t Ctr = 0;
  std::vector<int64_t> Virt;
  std::vector<CrVal> VirtCr;

  uint64_t PhysReady[32] = {0};
  uint64_t PhysCrReady[8] = {0};
  uint64_t CtrReady = 0;
  std::vector<uint64_t> VirtReady;
  std::vector<uint64_t> VirtCrReady;

  int64_t &gpr(uint32_t Id) {
    if (Id < 32)
      return Phys[Id];
    size_t V = Id - 32;
    if (V >= Virt.size()) {
      Virt.resize(V + 1, 0);
      VirtReady.resize(V + 1, 0);
    }
    return Virt[V];
  }
  uint64_t &gprReady(uint32_t Id) {
    if (Id < 32)
      return PhysReady[Id];
    size_t V = Id - 32;
    if (V >= VirtReady.size()) {
      Virt.resize(V + 1, 0);
      VirtReady.resize(V + 1, 0);
    }
    return VirtReady[V];
  }
  CrVal &cr(uint32_t Id) {
    if (Id < 8)
      return PhysCr[Id];
    size_t V = Id - 8;
    if (V >= VirtCr.size()) {
      VirtCr.resize(V + 1);
      VirtCrReady.resize(V + 1, 0);
    }
    return VirtCr[V];
  }
  uint64_t &crReady(uint32_t Id) {
    if (Id < 8)
      return PhysCrReady[Id];
    size_t V = Id - 8;
    if (V >= VirtCrReady.size()) {
      VirtCr.resize(V + 1);
      VirtCrReady.resize(V + 1, 0);
    }
    return VirtCrReady[V];
  }
};

} // namespace simcore
} // namespace vsc

#endif // VSC_SIM_SIMCORE_H
