//===- sim/Predecode.h - Predecoded module image --------------*- C++ -*-===//
///
/// \file
/// One-time decode to flat execution records, shared by the simulator fast
/// path (sim/FastSim.cpp) and the oracle's reference interpreter
/// (oracle/Interp.cpp). The walking engines re-resolve branch labels, call
/// targets and global symbols by string and build "func:label" map keys on
/// every executed block; predecode does all of that exactly once:
///
///  * every branch target becomes a block index,
///  * every LTOC/global symbol becomes its final address,
///  * every block and every control-flow edge becomes a dense counter
///    slot (the string-keyed BlockCounts/EdgeCounts maps are materialized
///    once at the end of a run from interned, escape-unambiguous keys),
///  * every instruction becomes one 32-byte hot record carrying exactly
///    what the execution loop touches; everything it does not (the Instr
///    origin for trap messages and watcher callbacks, resolved callee
///    pointers for the interpreter) lives in cold side tables indexed in
///    parallel.
///
/// The hot record is deliberately ≤ 32 bytes — half a cache line, a third
/// of the original layout — so the gcc image's working set stays cache
/// resident. Adjacent records the fast path can execute as one fused
/// superinstruction (compare+branch, LTOC+load, load+use) are marked at
/// decode time by rewriting the first record's op byte to a SimOp beyond
/// the architectural opcode range; the second record of a pair keeps its
/// architectural opcode and is only ever reached through the first (branch
/// targets are block heads, never mid-block).
///
/// The image is immutable and independent of RunOptions, so one image
/// serves a whole batch of runs (simulateBatch / SimEngine). Predecode
/// also asserts profiling-key uniqueness: duplicate block labels within a
/// function (or duplicate function names) would merge counters.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_SIM_PREDECODE_H
#define VSC_SIM_PREDECODE_H

#include "ir/Module.h"
#include "machine/MachineModel.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace vsc {

/// Calls the simulator implements natively (ir/Abi.h builtins).
enum class SimBuiltin : int8_t {
  None = -1,
  PrintInt,
  PrintChar,
  ReadInt,
  Exit,
};

/// Execution opcode: the architectural Opcode values, followed by the
/// fused superinstructions the predecoder may substitute on the first
/// record of an adjacent pair. Dispatch tables are indexed by SimOp; the
/// dispatch-completeness test asserts every value has a handler in both
/// dispatch modes.
enum : uint8_t {
  /// C/CI immediately followed by a BT/BF reading the compare's Dst cr.
  SimOpFuseCmpB = static_cast<uint8_t>(Opcode::NumOpcodes),
  /// LTOC of a known global immediately followed by a plain L through the
  /// loaded base register.
  SimOpFuseLtocL,
  /// Plain L immediately followed by a register-immediate ALU op (or CI)
  /// over the loaded value.
  SimOpFuseLdAlu,
  NumSimOps
};

/// Registers packed to 4 bytes: class in the top 2 bits, id in the low 30
/// (virtual ids are unbounded but far below 2^30 in practice; predecode
/// asserts). An invalid Reg packs to 0 (RegClass::None, id 0).
using PackedReg = uint32_t;

inline PackedReg packReg(Reg R) {
  return (static_cast<uint32_t>(R.regClass()) << 30) | R.id();
}
inline RegClass packedClass(PackedReg P) {
  return static_cast<RegClass>(P >> 30);
}
inline uint32_t packedId(PackedReg P) { return P & 0x3fffffffu; }

/// DecodedInstr::Flags bits. CrBit occupies bits 5..6.
enum : uint8_t {
  DIFlagIsBranch = 1u << 0,      ///< opcode IsBranch (B/BT/BF/BCT)
  DIFlagSetsDefsReady = 1u << 1, ///< opcode HasDst, or LU
  DIFlagGlobalKnown = 1u << 2,   ///< LTOC: Imm holds the resolved address
  DIFlagSpecSafe = 1u << 3,      ///< Instr::SpecSafe (oracle semantics)
  DIFlagVolatile = 1u << 4,      ///< Instr::IsVolatile (oracle semantics)
  DIFlagCrBitShift = 5,
  DIFlagCrBitMask = 0x3u << DIFlagCrBitShift,
};

/// One flat, fully resolved instruction record — the hot half. Cold
/// per-instruction state (the originating Instr for trap messages and
/// watcher callbacks, resolved interpreter callees) lives in side tables
/// indexed in parallel with SimImage::Instrs / InterpImage::Instrs.
struct DecodedInstr {
  /// SimOp: the architectural opcode, or a fused superinstruction on the
  /// first record of a fused pair (module images only; see fusion notes in
  /// the file comment).
  uint8_t Op;
  /// DIFlag bits plus the BT/BF/C/CI condition bit in bits 5..6.
  uint8_t Flags;
  uint8_t MemSize;
  /// Unit class in bit 0 (0 = Fxu, 1 = Bu) and the result-availability
  /// latency under the image's machine model in bits 1..7 (the largest
  /// stock latency, DivLatency = 20, fits comfortably). Zero in
  /// interpreter images, which carry no timing model.
  uint8_t UnitLat;
  PackedReg Dst, Src1, Src2;
  /// Immediate / displacement. LTOC (which has no architectural
  /// immediate) reuses this for the resolved global address when
  /// DIFlagGlobalKnown is set.
  int64_t Imm;
  /// Branches: target block index (global for module images, function-
  /// local for interpreter images), or -1 for a label that does not
  /// resolve (both engines trap at execution time).
  /// CALL: callee function index into SimImage::Funcs, or
  /// -2 - SimBuiltin for a builtin, or -1 for an unresolved callee.
  /// (Interpreter images resolve callees through a cold pointer table and
  /// only use the builtin / unresolved encodings.)
  int32_t Target;
  /// Branches: edge counter slot for the taken transfer. Exists even when
  /// Target is -1, because the edge is counted before the trap.
  int32_t TakenEdge;

  CrBit crBit() const {
    return static_cast<CrBit>((Flags & DIFlagCrBitMask) >> DIFlagCrBitShift);
  }
  bool isBranch() const { return Flags & DIFlagIsBranch; }
  bool setsDefsReady() const { return Flags & DIFlagSetsDefsReady; }
  bool globalKnown() const { return Flags & DIFlagGlobalKnown; }
  bool specSafe() const { return Flags & DIFlagSpecSafe; }
  bool isVolatile() const { return Flags & DIFlagVolatile; }
  UnitKind unit() const {
    return (UnitLat & 1) ? UnitKind::Bu : UnitKind::Fxu;
  }
  unsigned latency() const { return UnitLat >> 1; }
  /// CALL: the builtin encoded in Target, or SimBuiltin::None.
  SimBuiltin builtin() const {
    return Target <= -2 ? static_cast<SimBuiltin>(-2 - Target)
                        : SimBuiltin::None;
  }
};

static_assert(sizeof(DecodedInstr) <= 32,
              "hot record must stay within half a cache line");

struct DecodedBlock {
  /// [FirstInstr, FirstInstr + NumInstrs) into the image's Instrs. Blocks
  /// of one function are contiguous and in layout order, so falling
  /// through means advancing to the next block record.
  uint32_t FirstInstr;
  uint32_t NumInstrs;
  /// Edge counter slot for falling through into the next block, or -1 for
  /// a function's last block. The block's own counter slot is its index.
  int32_t FallEdge;
  /// The original block, reported to RunOptions::Watcher on entry and
  /// used for interpreter coverage — never consulted on the hot path when
  /// no watcher is installed.
  const BasicBlock *Origin;
};

struct DecodedFunction {
  const Function *F;
  /// [FirstBlock, FirstBlock + NumBlocks) into SimImage::Blocks.
  uint32_t FirstBlock;
  uint32_t NumBlocks;
};

/// The immutable predecoded image of one (module, machine model) pair.
/// The model is copied in (so a temporary like rs6000() is fine); the
/// module must outlive the image.
struct SimImage {
  const Module *M = nullptr;
  MachineModel Model;

  std::vector<DecodedFunction> Funcs;
  std::vector<DecodedBlock> Blocks;
  std::vector<DecodedInstr> Instrs;
  /// Cold side table, parallel to Instrs: the originating Instr, for trap
  /// messages (unknown label/global/function symbols) and watcher
  /// callbacks — never consulted on the hot path.
  std::vector<const Instr *> Origins;

  /// First function of each name, mirroring Module::findFunction.
  std::unordered_map<std::string, uint32_t> FuncByName;

  /// Interned profiling keys: BlockKeys[b] is blockCountKey for block slot
  /// b; EdgeKeys[e] is edgeCountKey for edge slot e. Distinct slots may
  /// share a key (a taken branch and a fallthrough to the same successor);
  /// materialization sums them, exactly as the legacy map does.
  std::vector<std::string> BlockKeys;
  std::vector<std::string> EdgeKeys;

  /// Global data layout (computeGlobalLayout) and the flattened
  /// initializer image for addresses [4096, 4096 + DataInit.size()).
  std::unordered_map<std::string, uint64_t> GlobalBase;
  uint64_t DataEnd = 4096;
  std::vector<uint8_t> DataInit;

  /// Fused superinstruction pairs formed at decode time (statistics /
  /// bench reporting; the records themselves carry the fusion).
  uint64_t FusedPairs = 0;
};

/// Builds the predecoded image. Asserts that block labels are unique per
/// function and function names unique per module (collisions would merge
/// profiling counters). \p Fuse controls superinstruction formation
/// (default on; the differential tests exercise both states).
SimImage predecode(const Module &M, const MachineModel &Model,
                   bool Fuse = true);

/// Per-function flat decode for the oracle's reference interpreter: the
/// same hot records (timing fields zeroed, no fusion), with branch targets
/// as function-local block indices and callees resolved once through cold
/// side tables. The function, the module functions behind Callees and the
/// referenced Instrs must outlive the image.
struct InterpImage {
  std::vector<DecodedBlock> Blocks;
  std::vector<DecodedInstr> Instrs;
  /// Cold, parallel to Instrs: originating Instr (trap messages, traces).
  std::vector<const Instr *> Origins;
  /// Cold, parallel to Instrs: CALL records resolve their callee through
  /// this table (module resolution; InterpOptions::Override is layered on
  /// top per run). Null for non-calls, builtins and unknown callees.
  std::vector<const Function *> Callees;
};

InterpImage
predecodeFunction(const Function &F,
                  const std::unordered_map<std::string, uint64_t> &GlobalBase,
                  const std::unordered_map<std::string, const Function *>
                      &FuncByName);

} // namespace vsc

#endif // VSC_SIM_PREDECODE_H
