//===- sim/Predecode.h - Predecoded module image --------------*- C++ -*-===//
///
/// \file
/// One-time per-module decode for the simulator fast path. The walking
/// interpreter (simulateLegacy) re-resolves branch labels, call targets
/// and global symbols by string and builds "func:label" map keys on every
/// executed block; predecode does all of that exactly once:
///
///  * every branch target becomes a (function, block) index pair,
///  * every LTOC/global symbol becomes its final address,
///  * every block and every control-flow edge becomes a dense counter
///    slot (the string-keyed BlockCounts/EdgeCounts maps are materialized
///    once at the end of a run from interned, escape-unambiguous keys),
///  * every instruction becomes a flat record carrying its opcode traits,
///    unit class, latency and pre-collected use/def register lists.
///
/// The image is immutable and independent of RunOptions, so one image
/// serves a whole batch of runs (simulateBatch / SimEngine). Predecode
/// also asserts profiling-key uniqueness: duplicate block labels within a
/// function (or duplicate function names) would merge counters.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_SIM_PREDECODE_H
#define VSC_SIM_PREDECODE_H

#include "ir/Module.h"
#include "machine/MachineModel.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace vsc {

/// Calls the simulator implements natively (ir/Abi.h builtins).
enum class SimBuiltin : int8_t {
  None = -1,
  PrintInt,
  PrintChar,
  ReadInt,
  Exit,
};

/// One flat, fully resolved instruction record.
struct DecodedInstr {
  Opcode Op;
  CrBit Bit;
  uint8_t MemSize;
  UnitKind Unit;
  /// Result-availability latency under the image's machine model.
  uint8_t Latency;
  bool IsBranch;
  /// Whether the instruction sets def-ready times (opcode HasDst, or LU).
  bool SetsDefsReady;
  Reg Dst, Src1, Src2;
  int64_t Imm;
  /// LTOC only: resolved global address (valid when GlobalKnown).
  int64_t GlobalAddr;
  bool GlobalKnown;
  /// Branch target as a global block index into SimImage::Blocks, or -1
  /// for a label that does not resolve (the legacy engine traps at
  /// execution time; so does the fast path).
  int32_t TargetBlock;
  /// Edge counter slot for the taken transfer (branches only; exists even
  /// when TargetBlock is -1, because the edge is counted before the trap).
  int32_t TakenEdge;
  /// CALL only: callee as an index into SimImage::Funcs, or -1 when the
  /// callee is a builtin or does not resolve to a function with blocks.
  int32_t Callee;
  SimBuiltin Builtin;
  /// Pre-collected registers read/written (Instr::collectUses/collectDefs),
  /// as [begin, end) ranges into SimImage::UsePool / DefPool.
  uint32_t UsesBegin, UsesEnd;
  uint32_t DefsBegin, DefsEnd;
  /// The original instruction, for trap messages (unknown label/global/
  /// function symbols) — never consulted on the hot path.
  const Instr *Origin;
};

struct DecodedBlock {
  /// [FirstInstr, FirstInstr + NumInstrs) into SimImage::Instrs. Blocks of
  /// one function are contiguous and in layout order, so falling through
  /// means advancing to the next block record.
  uint32_t FirstInstr;
  uint32_t NumInstrs;
  /// Edge counter slot for falling through into the next block, or -1 for
  /// a function's last block. The block's own counter slot is its index.
  int32_t FallEdge;
  /// The original block, reported to RunOptions::Watcher on entry — never
  /// consulted on the hot path when no watcher is installed.
  const BasicBlock *Origin;
};

struct DecodedFunction {
  const Function *F;
  /// [FirstBlock, FirstBlock + NumBlocks) into SimImage::Blocks.
  uint32_t FirstBlock;
  uint32_t NumBlocks;
};

/// The immutable predecoded image of one (module, machine model) pair.
/// The model is copied in (so a temporary like rs6000() is fine); the
/// module must outlive the image.
struct SimImage {
  const Module *M = nullptr;
  MachineModel Model;

  std::vector<DecodedFunction> Funcs;
  std::vector<DecodedBlock> Blocks;
  std::vector<DecodedInstr> Instrs;
  std::vector<Reg> UsePool;
  std::vector<Reg> DefPool;

  /// First function of each name, mirroring Module::findFunction.
  std::unordered_map<std::string, uint32_t> FuncByName;

  /// Interned profiling keys: BlockKeys[b] is blockCountKey for block slot
  /// b; EdgeKeys[e] is edgeCountKey for edge slot e. Distinct slots may
  /// share a key (a taken branch and a fallthrough to the same successor);
  /// materialization sums them, exactly as the legacy map does.
  std::vector<std::string> BlockKeys;
  std::vector<std::string> EdgeKeys;

  /// Global data layout (computeGlobalLayout) and the flattened
  /// initializer image for addresses [4096, 4096 + DataInit.size()).
  std::unordered_map<std::string, uint64_t> GlobalBase;
  uint64_t DataEnd = 4096;
  std::vector<uint8_t> DataInit;
};

/// Builds the predecoded image. Asserts that block labels are unique per
/// function and function names unique per module (collisions would merge
/// profiling counters).
SimImage predecode(const Module &M, const MachineModel &Model);

} // namespace vsc

#endif // VSC_SIM_PREDECODE_H
