//===- sim/Predecode.cpp - Predecoded module image --------------------------===//

#include "sim/Predecode.h"

#include "ir/Abi.h"
#include "sim/Simulator.h"

#include <cassert>

using namespace vsc;

namespace {

SimBuiltin classifyBuiltin(const std::string &Sym) {
  if (!abi::isBuiltin(Sym))
    return SimBuiltin::None;
  if (Sym == "print_int")
    return SimBuiltin::PrintInt;
  if (Sym == "print_char")
    return SimBuiltin::PrintChar;
  if (Sym == "read_int")
    return SimBuiltin::ReadInt;
  return SimBuiltin::Exit;
}

PackedReg pack(Reg R) {
  assert(R.id() < (1u << 30) && "register id overflows the packed encoding");
  return packReg(R);
}

/// Fills the fields every record carries regardless of image flavour:
/// opcode, flag bits, operands, immediate and (for module images) the
/// unit/latency byte. Target/TakenEdge resolution is the caller's job.
DecodedInstr decodeCore(const Instr &I, const MachineModel *Model) {
  const OpcodeInfo &Info = opcodeInfo(I.Op);
  DecodedInstr D;
  D.Op = static_cast<uint8_t>(I.Op);
  D.Flags = static_cast<uint8_t>(static_cast<uint8_t>(I.Bit)
                                 << DIFlagCrBitShift);
  if (Info.IsBranch)
    D.Flags |= DIFlagIsBranch;
  if (Info.HasDst || I.Op == Opcode::LU)
    D.Flags |= DIFlagSetsDefsReady;
  if (I.SpecSafe)
    D.Flags |= DIFlagSpecSafe;
  if (I.IsVolatile)
    D.Flags |= DIFlagVolatile;
  D.MemSize = I.MemSize;
  D.UnitLat = 0;
  if (Model) {
    unsigned Lat = Model->latencyOf(I);
    assert(Lat < 128 && "latency overflows the packed unit/latency byte");
    D.UnitLat = static_cast<uint8_t>((Lat << 1) |
                                     (Info.Unit == UnitKind::Bu ? 1 : 0));
  }
  D.Dst = pack(I.Dst);
  D.Src1 = pack(I.Src1);
  D.Src2 = pack(I.Src2);
  D.Imm = I.Imm;
  D.Target = -1;
  D.TakenEdge = -1;
  return D;
}

/// Second record of a load+use pair: a register-immediate ALU op over the
/// loaded value.
bool isRegImmAlu(uint8_t Op) {
  switch (static_cast<Opcode>(Op)) {
  case Opcode::AI:
  case Opcode::SI:
  case Opcode::MULI:
  case Opcode::ANDI:
  case Opcode::ORI:
  case Opcode::XORI:
  case Opcode::SLI:
  case Opcode::SRI:
  case Opcode::SRAI:
    return true;
  default:
    return false;
  }
}

/// Marks fusable adjacent pairs within [First, First + Num) by rewriting
/// the first record's op byte to the fused SimOp. Greedy left-to-right;
/// the second record keeps its architectural opcode (it is only ever
/// reached through the first — branch targets are block heads). Returns
/// the number of pairs formed.
uint64_t fuseBlock(DecodedInstr *Instrs, uint32_t First, uint32_t Num) {
  uint64_t Pairs = 0;
  for (uint32_t I = First; I + 1 < First + Num;) {
    DecodedInstr &D1 = Instrs[I];
    const DecodedInstr &D2 = Instrs[I + 1];
    bool Fused = false;
    switch (static_cast<Opcode>(D1.Op)) {
    case Opcode::C:
    case Opcode::CI:
      // Compare + conditional branch on the freshly written cr. The
      // handler discriminates the C/CI form by Src2's class, so require
      // the canonical shapes.
      if (packedClass(D1.Dst) == RegClass::Cr &&
          packedClass(D1.Src1) == RegClass::Gpr &&
          packedClass(D1.Src2) == (static_cast<Opcode>(D1.Op) == Opcode::C
                                       ? RegClass::Gpr
                                       : RegClass::None) &&
          (static_cast<Opcode>(D2.Op) == Opcode::BT ||
           static_cast<Opcode>(D2.Op) == Opcode::BF) &&
          D2.Src1 == D1.Dst) {
        D1.Op = SimOpFuseCmpB;
        Fused = true;
      }
      break;
    case Opcode::LTOC:
      // Address materialization + plain load through it.
      if (D1.globalKnown() && packedClass(D1.Dst) == RegClass::Gpr &&
          static_cast<Opcode>(D2.Op) == Opcode::L && D2.Src1 == D1.Dst) {
        D1.Op = SimOpFuseLtocL;
        Fused = true;
      }
      break;
    case Opcode::L:
      // Plain load + register-immediate ALU over the loaded value.
      if (packedClass(D1.Dst) == RegClass::Gpr && isRegImmAlu(D2.Op) &&
          D2.Src1 == D1.Dst) {
        D1.Op = SimOpFuseLdAlu;
        Fused = true;
      }
      break;
    default:
      break;
    }
    if (Fused) {
      ++Pairs;
      I += 2;
    } else {
      ++I;
    }
  }
  return Pairs;
}

} // namespace

SimImage vsc::predecode(const Module &M, const MachineModel &Model,
                        bool Fuse) {
  SimImage Img;
  Img.M = &M;
  Img.Model = Model;

  // Global layout and the flattened initializer image.
  Img.GlobalBase = computeGlobalLayout(M);
  for (const Global &G : M.globals()) {
    uint64_t Addr = Img.GlobalBase.at(G.Name);
    Img.DataEnd = std::max(Img.DataEnd, Addr + G.Size);
    if (!G.Init.empty() &&
        Img.DataInit.size() < Addr - 4096 + G.Init.size())
      Img.DataInit.resize(Addr - 4096 + G.Init.size(), 0);
    for (size_t I = 0; I != G.Init.size(); ++I)
      Img.DataInit[Addr - 4096 + I] = G.Init[I];
  }

  // Function and block index assignment (blocks contiguous per function,
  // in layout order), plus the per-function label map branch resolution
  // uses. Key uniqueness is asserted here: a duplicate function name or a
  // duplicate label within one function would merge profiling counters.
  struct FnInfo {
    std::unordered_map<std::string, uint32_t> BlockByLabel;
  };
  std::vector<FnInfo> Infos(M.functions().size());
  for (size_t FI = 0; FI != M.functions().size(); ++FI) {
    const Function &F = *M.functions()[FI];
    DecodedFunction DF;
    DF.F = &F;
    DF.FirstBlock = static_cast<uint32_t>(Img.Blocks.size());
    DF.NumBlocks = static_cast<uint32_t>(F.blocks().size());
    bool NewName =
        Img.FuncByName.emplace(F.name(), static_cast<uint32_t>(FI)).second;
    assert(NewName && "duplicate function name merges profiling counters");
    (void)NewName;
    for (const auto &BB : F.blocks()) {
      uint32_t Idx = static_cast<uint32_t>(Img.Blocks.size());
      bool NewLabel =
          Infos[FI].BlockByLabel.emplace(BB->label(), Idx).second;
      assert(NewLabel && "duplicate block label merges profiling counters");
      (void)NewLabel;
      Img.Blocks.push_back(DecodedBlock{0, 0, -1, BB.get()});
      Img.BlockKeys.push_back(blockCountKey(F.name(), BB->label()));
    }
    Img.Funcs.push_back(DF);
  }

  auto newEdge = [&](const std::string &Fn, const std::string &From,
                     const std::string &To) {
    Img.EdgeKeys.push_back(edgeCountKey(Fn, From, To));
    return static_cast<int32_t>(Img.EdgeKeys.size() - 1);
  };

  // Instruction decode.
  for (size_t FI = 0; FI != M.functions().size(); ++FI) {
    const Function &F = *M.functions()[FI];
    const DecodedFunction &DF = Img.Funcs[FI];
    for (size_t BI = 0; BI != F.blocks().size(); ++BI) {
      const BasicBlock &BB = *F.blocks()[BI];
      DecodedBlock &DB = Img.Blocks[DF.FirstBlock + BI];
      DB.FirstInstr = static_cast<uint32_t>(Img.Instrs.size());
      DB.NumInstrs = static_cast<uint32_t>(BB.instrs().size());
      if (BI + 1 != F.blocks().size())
        DB.FallEdge =
            newEdge(F.name(), BB.label(), F.blocks()[BI + 1]->label());

      for (const Instr &I : BB.instrs()) {
        DecodedInstr D = decodeCore(I, &Model);

        switch (I.Op) {
        case Opcode::LTOC: {
          auto It = Img.GlobalBase.find(I.Sym);
          if (It != Img.GlobalBase.end()) {
            D.Imm = static_cast<int64_t>(It->second);
            D.Flags |= DIFlagGlobalKnown;
          }
          break;
        }
        case Opcode::B:
        case Opcode::BT:
        case Opcode::BF:
        case Opcode::BCT: {
          auto It = Infos[FI].BlockByLabel.find(I.Target);
          if (It != Infos[FI].BlockByLabel.end())
            D.Target = static_cast<int32_t>(It->second);
          // The legacy engine counts the edge before discovering the
          // label doesn't resolve, so unknown targets get a slot too.
          D.TakenEdge = newEdge(F.name(), BB.label(), I.Target);
          break;
        }
        case Opcode::CALL: {
          assert(I.Imm >= 0 && I.Imm <= 8 &&
                 "call argument count exceeds the register convention");
          SimBuiltin Builtin = classifyBuiltin(I.Sym);
          if (Builtin != SimBuiltin::None) {
            D.Target = -2 - static_cast<int32_t>(Builtin);
          } else {
            // Mirrors Module::findFunction (first match) plus the
            // engines' blocks-nonempty check.
            auto It = Img.FuncByName.find(I.Sym);
            if (It != Img.FuncByName.end() &&
                Img.Funcs[It->second].NumBlocks != 0)
              D.Target = static_cast<int32_t>(It->second);
          }
          break;
        }
        default:
          break;
        }

        Img.Instrs.push_back(D);
        Img.Origins.push_back(&I);
      }
    }
  }

  if (Fuse)
    for (const DecodedBlock &B : Img.Blocks)
      Img.FusedPairs += fuseBlock(Img.Instrs.data(), B.FirstInstr,
                                  B.NumInstrs);

  return Img;
}

InterpImage vsc::predecodeFunction(
    const Function &F,
    const std::unordered_map<std::string, uint64_t> &GlobalBase,
    const std::unordered_map<std::string, const Function *> &FuncByName) {
  InterpImage Img;
  Img.Blocks.reserve(F.blocks().size());

  std::unordered_map<std::string, uint32_t> BlockByLabel;
  for (size_t BI = 0; BI != F.blocks().size(); ++BI)
    BlockByLabel.emplace(F.blocks()[BI]->label(),
                         static_cast<uint32_t>(BI));

  for (const auto &BB : F.blocks()) {
    DecodedBlock DB;
    DB.FirstInstr = static_cast<uint32_t>(Img.Instrs.size());
    DB.NumInstrs = static_cast<uint32_t>(BB->instrs().size());
    DB.FallEdge = -1;
    DB.Origin = BB.get();

    for (const Instr &I : BB->instrs()) {
      DecodedInstr D = decodeCore(I, /*Model=*/nullptr);
      const Function *Callee = nullptr;

      switch (I.Op) {
      case Opcode::LTOC: {
        auto It = GlobalBase.find(I.Sym);
        if (It != GlobalBase.end()) {
          D.Imm = static_cast<int64_t>(It->second);
          D.Flags |= DIFlagGlobalKnown;
        }
        break;
      }
      case Opcode::B:
      case Opcode::BT:
      case Opcode::BF:
      case Opcode::BCT: {
        auto It = BlockByLabel.find(I.Target);
        if (It != BlockByLabel.end())
          D.Target = static_cast<int32_t>(It->second);
        break;
      }
      case Opcode::CALL: {
        SimBuiltin Builtin = classifyBuiltin(I.Sym);
        if (Builtin != SimBuiltin::None) {
          D.Target = -2 - static_cast<int32_t>(Builtin);
        } else {
          auto It = FuncByName.find(I.Sym);
          if (It != FuncByName.end())
            Callee = It->second;
        }
        break;
      }
      default:
        break;
      }

      Img.Instrs.push_back(D);
      Img.Origins.push_back(&I);
      Img.Callees.push_back(Callee);
    }
    Img.Blocks.push_back(DB);
  }

  return Img;
}
