//===- sim/Predecode.cpp - Predecoded module image --------------------------===//

#include "sim/Predecode.h"

#include "ir/Abi.h"
#include "sim/Simulator.h"

#include <cassert>
#include <unordered_set>

using namespace vsc;

namespace {

SimBuiltin classifyBuiltin(const std::string &Sym) {
  if (!abi::isBuiltin(Sym))
    return SimBuiltin::None;
  if (Sym == "print_int")
    return SimBuiltin::PrintInt;
  if (Sym == "print_char")
    return SimBuiltin::PrintChar;
  if (Sym == "read_int")
    return SimBuiltin::ReadInt;
  return SimBuiltin::Exit;
}

} // namespace

SimImage vsc::predecode(const Module &M, const MachineModel &Model) {
  SimImage Img;
  Img.M = &M;
  Img.Model = Model;

  // Global layout and the flattened initializer image.
  Img.GlobalBase = computeGlobalLayout(M);
  for (const Global &G : M.globals()) {
    uint64_t Addr = Img.GlobalBase.at(G.Name);
    Img.DataEnd = std::max(Img.DataEnd, Addr + G.Size);
    if (!G.Init.empty() &&
        Img.DataInit.size() < Addr - 4096 + G.Init.size())
      Img.DataInit.resize(Addr - 4096 + G.Init.size(), 0);
    for (size_t I = 0; I != G.Init.size(); ++I)
      Img.DataInit[Addr - 4096 + I] = G.Init[I];
  }

  // Function and block index assignment (blocks contiguous per function,
  // in layout order), plus the per-function label map branch resolution
  // uses. Key uniqueness is asserted here: a duplicate function name or a
  // duplicate label within one function would merge profiling counters.
  struct FnInfo {
    std::unordered_map<std::string, uint32_t> BlockByLabel;
  };
  std::vector<FnInfo> Infos(M.functions().size());
  for (size_t FI = 0; FI != M.functions().size(); ++FI) {
    const Function &F = *M.functions()[FI];
    DecodedFunction DF;
    DF.F = &F;
    DF.FirstBlock = static_cast<uint32_t>(Img.Blocks.size());
    DF.NumBlocks = static_cast<uint32_t>(F.blocks().size());
    bool NewName =
        Img.FuncByName.emplace(F.name(), static_cast<uint32_t>(FI)).second;
    assert(NewName && "duplicate function name merges profiling counters");
    (void)NewName;
    for (const auto &BB : F.blocks()) {
      uint32_t Idx = static_cast<uint32_t>(Img.Blocks.size());
      bool NewLabel =
          Infos[FI].BlockByLabel.emplace(BB->label(), Idx).second;
      assert(NewLabel && "duplicate block label merges profiling counters");
      (void)NewLabel;
      Img.Blocks.push_back(DecodedBlock{0, 0, -1, BB.get()});
      Img.BlockKeys.push_back(blockCountKey(F.name(), BB->label()));
    }
    Img.Funcs.push_back(DF);
  }

  auto newEdge = [&](const std::string &Fn, const std::string &From,
                     const std::string &To) {
    Img.EdgeKeys.push_back(edgeCountKey(Fn, From, To));
    return static_cast<int32_t>(Img.EdgeKeys.size() - 1);
  };

  // Instruction decode.
  std::vector<Reg> Tmp;
  for (size_t FI = 0; FI != M.functions().size(); ++FI) {
    const Function &F = *M.functions()[FI];
    const DecodedFunction &DF = Img.Funcs[FI];
    for (size_t BI = 0; BI != F.blocks().size(); ++BI) {
      const BasicBlock &BB = *F.blocks()[BI];
      DecodedBlock &DB = Img.Blocks[DF.FirstBlock + BI];
      DB.FirstInstr = static_cast<uint32_t>(Img.Instrs.size());
      DB.NumInstrs = static_cast<uint32_t>(BB.instrs().size());
      if (BI + 1 != F.blocks().size())
        DB.FallEdge =
            newEdge(F.name(), BB.label(), F.blocks()[BI + 1]->label());

      for (const Instr &I : BB.instrs()) {
        DecodedInstr D;
        D.Op = I.Op;
        D.Bit = I.Bit;
        D.MemSize = I.MemSize;
        D.Unit = opcodeInfo(I.Op).Unit;
        D.Latency = static_cast<uint8_t>(Model.latencyOf(I));
        D.IsBranch = opcodeInfo(I.Op).IsBranch;
        D.SetsDefsReady = opcodeInfo(I.Op).HasDst || I.Op == Opcode::LU;
        D.Dst = I.Dst;
        D.Src1 = I.Src1;
        D.Src2 = I.Src2;
        D.Imm = I.Imm;
        D.GlobalAddr = 0;
        D.GlobalKnown = false;
        D.TargetBlock = -1;
        D.TakenEdge = -1;
        D.Callee = -1;
        D.Builtin = SimBuiltin::None;
        D.Origin = &I;

        Tmp.clear();
        I.collectUses(Tmp);
        D.UsesBegin = static_cast<uint32_t>(Img.UsePool.size());
        Img.UsePool.insert(Img.UsePool.end(), Tmp.begin(), Tmp.end());
        D.UsesEnd = static_cast<uint32_t>(Img.UsePool.size());
        Tmp.clear();
        I.collectDefs(Tmp);
        D.DefsBegin = static_cast<uint32_t>(Img.DefPool.size());
        Img.DefPool.insert(Img.DefPool.end(), Tmp.begin(), Tmp.end());
        D.DefsEnd = static_cast<uint32_t>(Img.DefPool.size());

        switch (I.Op) {
        case Opcode::LTOC: {
          auto It = Img.GlobalBase.find(I.Sym);
          if (It != Img.GlobalBase.end()) {
            D.GlobalAddr = static_cast<int64_t>(It->second);
            D.GlobalKnown = true;
          }
          break;
        }
        case Opcode::B:
        case Opcode::BT:
        case Opcode::BF:
        case Opcode::BCT: {
          auto It = Infos[FI].BlockByLabel.find(I.Target);
          if (It != Infos[FI].BlockByLabel.end())
            D.TargetBlock = static_cast<int32_t>(It->second);
          // The legacy engine counts the edge before discovering the
          // label doesn't resolve, so unknown targets get a slot too.
          D.TakenEdge = newEdge(F.name(), BB.label(), I.Target);
          break;
        }
        case Opcode::CALL: {
          D.Builtin = classifyBuiltin(I.Sym);
          if (D.Builtin == SimBuiltin::None) {
            // Mirrors Module::findFunction (first match) plus the
            // engines' blocks-nonempty check.
            auto It = Img.FuncByName.find(I.Sym);
            if (It != Img.FuncByName.end() &&
                Img.Funcs[It->second].NumBlocks != 0)
              D.Callee = static_cast<int32_t>(It->second);
          }
          break;
        }
        default:
          break;
        }

        Img.Instrs.push_back(D);
      }
    }
  }

  return Img;
}
