//===- sim/FastSim.cpp - Predecoded simulator fast path ---------------------===//
///
/// The execution engine behind vsc::simulate / simulateBatch / SimEngine:
/// runs the functional+timing loop over the packed 32-byte records of a
/// SimImage (sim/Predecode.h). The loop body lives in FastSimBody.inc and
/// is compiled twice — once as a portable big switch, once (when
/// VSC_COMPUTED_GOTO is enabled and the compiler has the labels-as-values
/// extension) as computed-goto threaded dispatch; DispatchMode selects the
/// flavour per run. Fused superinstruction records (SimOpFuse*) execute
/// both constituents in one handler, charging the instruction budget and
/// issuing each constituent exactly where the unfused sequence would.
///
/// Must stay bit-identical to the walking interpreter in Simulator.cpp
/// (simulateLegacy) in every dispatch mode — tests/test_sim_fastpath.cpp
/// and tests/test_sim_dispatch.cpp enforce that, so any semantic change
/// must be made in both files.
///
//===----------------------------------------------------------------------===//

#include "ir/Abi.h"
#include "sim/Predecode.h"
#include "sim/SimCore.h"
#include "sim/Simulator.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

using namespace vsc;

// The threaded flavour needs the GNU labels-as-values extension; the CMake
// option gates it off for portability testing (and for compilers without
// the extension).
#if defined(VSC_COMPUTED_GOTO) && (defined(__GNUC__) || defined(__clang__))
#define VSC_FS_HAVE_THREADED 1
#else
#define VSC_FS_HAVE_THREADED 0
#endif

// The threaded handler table in FastSimBody.inc lists the architectural
// opcodes in enum order followed by the fused SimOps; pin the layout it
// assumes.
static_assert(static_cast<uint8_t>(Opcode::NumOpcodes) == 36,
              "threaded handler table must list every opcode in enum order");
static_assert(SimOpFuseCmpB == 36 && SimOpFuseLtocL == 37 &&
                  SimOpFuseLdAlu == 38 && NumSimOps == 39,
              "threaded handler table must end with the fused SimOps");

bool vsc::threadedDispatchAvailable() { return VSC_FS_HAVE_THREADED != 0; }

DispatchMode vsc::resolveDispatchMode(DispatchMode Mode) {
  if (Mode == DispatchMode::Default) {
    if (const char *Env = std::getenv("VSC_DISPATCH")) {
      if (std::strcmp(Env, "switch") == 0)
        Mode = DispatchMode::Switch;
      else if (std::strcmp(Env, "threaded") == 0)
        Mode = DispatchMode::Threaded;
    }
    if (Mode == DispatchMode::Default)
      Mode = threadedDispatchAvailable() ? DispatchMode::Threaded
                                         : DispatchMode::Switch;
  }
  if (Mode == DispatchMode::Threaded && !threadedDispatchAvailable())
    Mode = DispatchMode::Switch;
  return Mode;
}

const char *vsc::dispatchModeName(DispatchMode Mode) {
  return resolveDispatchMode(Mode) == DispatchMode::Threaded ? "threaded"
                                                             : "switch";
}

namespace {

using simcore::CrVal;
using simcore::RegFile;

/// Saved caller context for a call (fast-path flavour of the legacy
/// Frame: indices instead of Function/block pointers).
struct FastFrame {
  const DecodedFunction *F = nullptr;
  uint32_t Block = 0;
  uint32_t Instr = 0; // global instruction index, already past the CALL
  std::vector<int64_t> Virt;
  std::vector<CrVal> VirtCr;
  std::vector<uint64_t> VirtReady;
  std::vector<uint64_t> VirtCrReady;
};

/// Storage pooled across the runs of a batch: the memory image, the dense
/// counter vectors and the call stack keep their capacity between runs.
/// The counter slots are 64-bit end to end — the per-run vectors here, the
/// DenseCounters export, and the materialized RunResult maps — so
/// high-trip-count batch runs cannot wrap (see test_sim_fastpath's
/// counter-width regression).
struct Arena {
  std::vector<uint8_t> Mem;
  std::vector<uint64_t> BlockHits;
  std::vector<uint64_t> EdgeHits;
  std::vector<FastFrame> CallStack;
};

static_assert(sizeof(Arena::BlockHits[0]) == 8 &&
                  sizeof(Arena::EdgeHits[0]) == 8 &&
                  sizeof(DenseCounters::BlockHits[0]) == 8,
              "per-run counters must be 64-bit end to end");

class FastMachine {
public:
  FastMachine(const SimImage &Img, const RunOptions &Opts, Arena &A,
              DenseCounters *DenseOut = nullptr)
      : Img(Img), Model(Img.Model), Opts(Opts), Mem(A.Mem),
        BlockHits(A.BlockHits), EdgeHits(A.EdgeHits),
        CallStack(A.CallStack), DenseOut(DenseOut), W(Opts.Watcher) {}

  RunResult run() {
    RunResult R;
    auto It = Img.FuncByName.find(Opts.EntryFunction);
    const DecodedFunction *F =
        It == Img.FuncByName.end() ? nullptr : &Img.Funcs[It->second];
    if (!F || F->NumBlocks == 0) {
      R.Trapped = true;
      R.TrapMsg = "no entry function '" + Opts.EntryFunction + "'";
      return R; // like the legacy engine: no digest, no counters
    }

    Mem.assign(Opts.MemBytes, 0);
    if (!Img.DataInit.empty() && Mem.size() > 4096) {
      size_t N = std::min<size_t>(Img.DataInit.size(), Mem.size() - 4096);
      std::memcpy(Mem.data() + 4096, Img.DataInit.data(), N);
    }
    BlockHits.assign(Img.Blocks.size(), 0);
    EdgeHits.assign(Img.EdgeKeys.size(), 0);
    CallStack.clear();

    Regs.gpr(1) = static_cast<int64_t>(Mem.size() - 4096); // stack top
    Regs.gpr(2) = 4096;                                    // TOC anchor
    for (size_t I = 0; I < Opts.Args.size() && I < 8; ++I)
      Regs.gpr(3 + static_cast<uint32_t>(I)) = Opts.Args[I];

    CurF = F;
    Blk = F->FirstBlock;
    ++BlockHits[Blk];
    if (W) {
      W->enterFunction(CurF->F);
      W->enterBlock(Img.Blocks[Blk].Origin);
    }

#if VSC_FS_HAVE_THREADED
    if (resolveDispatchMode(Opts.Dispatch) == DispatchMode::Threaded) {
      execThreaded(R);
      return R;
    }
#endif
    execSwitch(R);
    return R;
  }

private:
  // The execution loop, compiled in both dispatch flavours from
  // FastSimBody.inc. Every return path inside has called trap()/finish().
  void execSwitch(RunResult &R);
#if VSC_FS_HAVE_THREADED
  void execThreaded(RunResult &R);
#endif

  // --- functional helpers -------------------------------------------------

  /// Loads a gpr by packed operand. By-value on purpose: gpr() references
  /// can dangle across another gpr() call (virtual-register growth).
  int64_t gprVal(PackedReg P) { return Regs.gpr(packedId(P)); }

  int64_t readMem(uint64_t Addr, unsigned Size, bool &Ok, bool &PageZero) {
    PageZero = false;
    if (Addr + Size <= 4096) {
      PageZero = true;
      return 0; // legality checked by the caller against the model
    }
    if (Addr + Size > Mem.size() || Addr < 4096) {
      Ok = false;
      return 0;
    }
    uint64_t V = 0;
    for (unsigned B = 0; B != Size; ++B)
      V |= static_cast<uint64_t>(Mem[Addr + B]) << (8 * B);
    // Sign extend.
    if (Size < 8) {
      uint64_t SignBit = 1ULL << (Size * 8 - 1);
      if (V & SignBit)
        V |= ~((SignBit << 1) - 1);
    }
    return static_cast<int64_t>(V);
  }

  bool writeMem(uint64_t Addr, unsigned Size, int64_t Val) {
    if (Addr < 4096 || Addr + Size > Mem.size())
      return false;
    for (unsigned B = 0; B != Size; ++B)
      Mem[Addr + B] =
          static_cast<uint8_t>(static_cast<uint64_t>(Val) >> (8 * B));
    return true;
  }

  RunResult &trap(RunResult &R, const std::string &Msg) {
    R.Trapped = true;
    R.TrapMsg = Msg;
    return finish(R);
  }

  RunResult &finish(RunResult &R) {
    if (Finished)
      return R;
    Finished = true;
    // FNV-1a over the global data area.
    uint64_t H = 1469598103934665603ULL;
    for (uint64_t A = 4096; A < Img.DataEnd && A < Mem.size(); ++A) {
      H ^= Mem[A];
      H *= 1099511628211ULL;
    }
    R.MemDigest = H;
    R.Cycles = PrevIssue;
    if (Opts.KeepMemory)
      R.Memory = Mem;
    R.GlobalBase = Img.GlobalBase;
    if (DenseOut) {
      // Dense export: hand the slot vectors to the caller untouched (the
      // arena keeps its capacity — copy, don't move) and skip the string-
      // map materialization round-trip entirely.
      DenseOut->BlockHits = BlockHits;
      DenseOut->EdgeHits = EdgeHits;
      return R;
    }
    // Materialize the string-keyed counter maps from the dense slots.
    // Distinct slots may intern the same key (taken branch + fallthrough
    // to the same successor), so sum rather than assign.
    for (size_t S = 0; S != BlockHits.size(); ++S)
      if (BlockHits[S])
        R.BlockCounts[Img.BlockKeys[S]] += BlockHits[S];
    for (size_t S = 0; S != EdgeHits.size(); ++S)
      if (EdgeHits[S])
        R.EdgeCounts[Img.EdgeKeys[S]] += EdgeHits[S];
    return R;
  }

  // --- operand / def plumbing ---------------------------------------------
  // The legacy engine derives use/def sets per instruction; the packed
  // records carry no pools, so each handler states its operand floor and
  // commits inline through these class-dispatched helpers.

  uint64_t readyOf(PackedReg P) {
    switch (packedClass(P)) {
    case RegClass::Gpr:
      return Regs.gprReady(packedId(P));
    case RegClass::Cr:
      return Regs.crReady(packedId(P));
    case RegClass::Ctr:
      return Regs.CtrReady;
    default:
      return 0;
    }
  }

  void setReadyOf(PackedReg P, uint64_t T) {
    switch (packedClass(P)) {
    case RegClass::Gpr:
      Regs.gprReady(packedId(P)) = T;
      break;
    case RegClass::Cr:
      Regs.crReady(packedId(P)) = T;
      break;
    case RegClass::Ctr:
      Regs.CtrReady = T;
      break;
    default:
      break;
    }
  }

  /// Commits a value-producing instruction: value write (gprs only, like
  /// the legacy HasDstVal path), def-ready time, and the stack-overflow
  /// check when the destination is the stack pointer. False means trapped.
  bool commitAlu(const DecodedInstr &D, int64_t V, uint64_t C,
                 RunResult &R) {
    if (packedClass(D.Dst) == RegClass::Gpr) {
      uint32_t Id = packedId(D.Dst);
      Regs.gpr(Id) = V;
      Regs.gprReady(Id) = C + D.latency();
      // The stack grows down from the top of memory; a stack pointer that
      // descends into the global data area would silently corrupt globals
      // (and stores through it still look "mapped" to writeMem).
      if (Id == 1 && Regs.Phys[1] < static_cast<int64_t>(Img.DataEnd))
        return trap(R, "stack overflow into data"), false;
    } else {
      setReadyOf(D.Dst, C + D.latency());
    }
    return true;
  }

  /// Commits a load-with-update: base register update, loaded value, and
  /// the legacy def-ready order (Dst first — BaseWhen when Dst aliases the
  /// base — then the base at BaseWhen). False means trapped.
  bool commitLu(const DecodedInstr &D, int64_t V, int64_t NewBase,
                uint64_t C, RunResult &R) {
    Regs.gpr(packedId(D.Src1)) = NewBase;
    if (packedClass(D.Dst) == RegClass::Gpr)
      Regs.gpr(packedId(D.Dst)) = V;
    uint64_t When = C + D.latency();
    uint64_t BaseWhen = C + Model.AluLatency;
    setReadyOf(D.Dst, D.Dst == D.Src1 ? BaseWhen : When);
    setReadyOf(D.Src1, BaseWhen);
    if ((D.Src1 == packReg(regs::sp()) ||
         (packedClass(D.Dst) == RegClass::Gpr && packedId(D.Dst) == 1)) &&
        Regs.Phys[1] < static_cast<int64_t>(Img.DataEnd))
      return trap(R, "stack overflow into data"), false;
    return true;
  }

  /// Operand floor of a CALL: argument registers, the stack pointer and
  /// the TOC anchor (the legacy collectUses set for calls).
  uint64_t callFloor(int64_t ArgCount) {
    uint64_t T = std::max(Regs.gprReady(1), Regs.gprReady(2));
    for (int64_t I = 0; I < ArgCount; ++I)
      T = std::max(T, Regs.gprReady(3 + static_cast<uint32_t>(I)));
    return T;
  }

  /// Operand floor of a RET: the result register, the call-preserved set
  /// and the stack pointer (the legacy collectUses set for returns).
  uint64_t retFloor() {
    uint64_t T = std::max(Regs.gprReady(3), Regs.gprReady(1));
    for (uint32_t I = 13; I <= 31; ++I)
      T = std::max(T, Regs.gprReady(I));
    return T;
  }

  // --- timing -------------------------------------------------------------

  /// Finds the issue cycle for an instruction of unit class \p Unit whose
  /// operands/floors allow issue at \p Earliest, honouring issue width.
  uint64_t allocUnit(UnitKind Unit, uint64_t Earliest) {
    uint64_t C = Earliest;
    if (Unit == UnitKind::Fxu) {
      if (FxuCycle == C && FxuCount >= Model.FxuWidth)
        C = FxuCycle + 1;
      if (FxuCycle != C) {
        FxuCycle = C;
        FxuCount = 0;
      }
      ++FxuCount;
    } else if (Unit == UnitKind::Bu) {
      if (BuCycle == C && BuCount >= Model.BuWidth)
        C = BuCycle + 1;
      if (BuCycle != C) {
        BuCycle = C;
        BuCount = 0;
      }
      ++BuCount;
    }
    return C;
  }

  // The legacy engine's issue() is split per opcode shape so each handler
  // inlines exactly the bookkeeping it needs — the hot ALU/memory path
  // carries no branch-kind dispatch at all. Semantics are identical; the
  // shared front half below is verbatim from the legacy issue().

  /// Shared front half: fetch/operand floor, the speculation window, unit
  /// allocation and operand-stall accounting. \p OperandFloor is the
  /// caller-computed operand ready time — 0 for branches, which issue
  /// before their condition resolves (predicted untaken), exactly like
  /// the legacy engine's !IsBranch gate.
  uint64_t issueAt(uint64_t OperandFloor, UnitKind Unit, RunResult &R) {
    uint64_t Base = std::max(PrevIssue, FetchFloor);
    uint64_t Earliest = std::max(Base, OperandFloor);
    // Limited dispatch beyond an unresolved conditional branch.
    if (Earliest < PendingResolve) {
      if (SpecBudget == 0)
        Earliest = PendingResolve;
      else
        --SpecBudget;
    }
    uint64_t C = allocUnit(Unit, Earliest);
    if (OperandFloor > Base)
      R.OperandStallCycles += OperandFloor - Base;
    return C;
  }

  /// Ordinary (non-control) instruction — always Fxu. Also the right
  /// issue for every first-of-pair fused constituent (C/CI, LTOC, L),
  /// which the legacy bookkeeping treated as ordinary too.
  uint64_t issuePlain(uint64_t OperandFloor, RunResult &R) {
    uint64_t C = issueAt(OperandFloor, UnitKind::Fxu, R);
    ++InstrsSinceCondBranch;
    PrevIssue = C;
    return C;
  }

  /// BT/BF: taken pays the redirect from the condition's ready time;
  /// untaken with a late condition opens the speculation window.
  uint64_t issueCondCr(const DecodedInstr &D, bool Taken, RunResult &R) {
    uint64_t C = issueAt(0, UnitKind::Bu, R);
    uint64_t CrReady = Regs.crReady(packedId(D.Src1));
    uint64_t Resolve = std::max(C, CrReady);
    if (Taken) {
      uint64_t NewFloor = std::max(C, CrReady + Model.TakenBranchRedirect);
      if (NewFloor > C)
        R.BranchStallCycles += NewFloor - C;
      FetchFloor = std::max(FetchFloor, NewFloor);
    } else if (Resolve > C) {
      PendingResolve = Resolve;
      SpecBudget = Model.SpecWindow;
    }
    LastCondResolve = Resolve;
    InstrsSinceCondBranch = 0;
    PrevIssue = C;
    return C;
  }

  uint64_t issueBct(RunResult &R) {
    uint64_t C = issueAt(0, UnitKind::Bu, R);
    uint64_t Resolve = std::max(C, Regs.CtrReady);
    FetchFloor = std::max(FetchFloor, Resolve); // branch-on-count is free
    LastCondResolve = Resolve;
    InstrsSinceCondBranch = 0;
    PrevIssue = C;
    return C;
  }

  /// B: free when the branch unit saw it early enough; pays the redirect
  /// when it sits in the shadow of a recent conditional branch (the
  /// stall basic block expansion removes).
  uint64_t issueB(RunResult &R) {
    uint64_t C = issueAt(0, UnitKind::Bu, R);
    if (InstrsSinceCondBranch < Model.ExpansionObjective) {
      uint64_t NewFloor =
          std::max(C, LastCondResolve + Model.TakenBranchRedirect);
      if (NewFloor > C)
        R.BranchStallCycles += NewFloor - C;
      FetchFloor = std::max(FetchFloor, NewFloor);
    }
    ++InstrsSinceCondBranch;
    PrevIssue = C;
    return C;
  }

  uint64_t issueCallRet(uint64_t OperandFloor, RunResult &R) {
    uint64_t C = issueAt(OperandFloor, UnitKind::Bu, R);
    FetchFloor = std::max(FetchFloor, C + Model.TakenBranchRedirect);
    R.BranchStallCycles += Model.TakenBranchRedirect;
    InstrsSinceCondBranch = 0;
    PrevIssue = C;
    return C;
  }

  /// Kills everything the linkage convention says a call clobbers (see
  /// the legacy engine for the rationale; poison from ir/Abi.h).
  void scrubCallClobbers(int64_t KeepArgs) {
    abi::forEachCallClobber([&](Reg D) {
      if (D.isGpr()) {
        if (D.id() >= 3 &&
            static_cast<int64_t>(D.id()) < 3 + std::min<int64_t>(KeepArgs, 8))
          return;
        Regs.gpr(D.id()) = abi::ClobberPoison;
      } else if (D.isCr()) {
        Regs.cr(D.id()) = CrVal{true, true, true};
      } else if (D.isCtr()) {
        Regs.Ctr = abi::ClobberPoison;
      }
    });
  }

  // --- state --------------------------------------------------------------

  const SimImage &Img;
  const MachineModel &Model;
  const RunOptions &Opts;

  std::vector<uint8_t> &Mem;
  std::vector<uint64_t> &BlockHits;
  std::vector<uint64_t> &EdgeHits;
  std::vector<FastFrame> &CallStack;
  DenseCounters *DenseOut = nullptr;
  MemAccessWatcher *W = nullptr;

  RegFile Regs;
  const DecodedFunction *CurF = nullptr;
  uint32_t Blk = 0; // global block index
  size_t InputPos = 0;

  // Timing.
  bool Finished = false;
  uint64_t PrevIssue = 0;
  uint64_t FetchFloor = 1;
  uint64_t FxuCycle = 0, BuCycle = 0;
  unsigned FxuCount = 0, BuCount = 0;
  uint64_t PendingResolve = 0;
  unsigned SpecBudget = 0;
  uint64_t LastCondResolve = 0;
  uint64_t InstrsSinceCondBranch = 1'000'000;
};

void FastMachine::execSwitch(RunResult &R) {
#define VSC_FS_THREADED 0
#include "FastSimBody.inc"
#undef VSC_FS_THREADED
}

#if VSC_FS_HAVE_THREADED
void FastMachine::execThreaded(RunResult &R) {
#define VSC_FS_THREADED 1
#include "FastSimBody.inc"
#undef VSC_FS_THREADED
}
#endif

} // namespace

struct SimEngine::State {
  SimImage Img;
  Arena A;
};

SimEngine::SimEngine(const Module &M, const MachineModel &Machine)
    : S(std::make_unique<State>()) {
  S->Img = predecode(M, Machine);
}

SimEngine::SimEngine(SimEngine &&) noexcept = default;
SimEngine &SimEngine::operator=(SimEngine &&) noexcept = default;
SimEngine::~SimEngine() = default;

RunResult SimEngine::run(const RunOptions &Opts) {
  FastMachine FM(S->Img, Opts, S->A);
  return FM.run();
}

RunResult SimEngine::run(const RunOptions &Opts, DenseCounters &Dense) {
  FastMachine FM(S->Img, Opts, S->A, &Dense);
  return FM.run();
}

std::vector<RunResult>
SimEngine::runBatch(const std::vector<RunOptions> &Batch, unsigned Threads,
                    std::vector<DenseCounters> *Dense) {
  unsigned T = Threads ? std::min(Threads, 64u)
                       : ThreadPool::defaultThreadCount();
  std::vector<RunResult> Out(Batch.size());
  if (Dense)
    Dense->assign(Batch.size(), DenseCounters{});
  if (T <= 1 || Batch.size() <= 1) {
    // The pre-threaded shape: every run shares the engine's pooled arena.
    for (size_t I = 0; I != Batch.size(); ++I) {
      FastMachine FM(S->Img, Batch[I], S->A,
                     Dense ? &(*Dense)[I] : nullptr);
      Out[I] = FM.run();
    }
    return Out;
  }

  // Parallel fan-out: results are stored positionally, so the output is
  // schedule-independent. Arenas are pooled through a free list — a task
  // borrows one for the duration of its run, so at most min(T, |Batch|)
  // arenas ever exist and their capacity is reused across the batch.
  std::mutex Mu;
  std::vector<std::unique_ptr<Arena>> FreeArenas;
  ThreadPool Pool(T);
  Pool.parallelFor(Batch.size(), [&](size_t I) {
    std::unique_ptr<Arena> A;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      if (!FreeArenas.empty()) {
        A = std::move(FreeArenas.back());
        FreeArenas.pop_back();
      }
    }
    if (!A)
      A = std::make_unique<Arena>();
    FastMachine FM(S->Img, Batch[I], *A, Dense ? &(*Dense)[I] : nullptr);
    Out[I] = FM.run();
    std::lock_guard<std::mutex> Lock(Mu);
    FreeArenas.push_back(std::move(A));
  });
  return Out;
}

const SimImage &SimEngine::image() const { return S->Img; }

RunResult vsc::simulate(const Module &M, const MachineModel &Machine,
                        const RunOptions &Opts) {
  SimImage Img = predecode(M, Machine);
  Arena A;
  FastMachine FM(Img, Opts, A);
  return FM.run();
}

std::vector<RunResult>
vsc::simulateBatch(const Module &M, const MachineModel &Machine,
                   const std::vector<RunOptions> &Batch, unsigned Threads) {
  SimEngine E(M, Machine);
  return E.runBatch(Batch, Threads);
}
