//===- sim/FastSim.cpp - Predecoded simulator fast path ---------------------===//
///
/// The execution engine behind vsc::simulate / simulateBatch / SimEngine:
/// runs the functional+timing loop over the flat records of a SimImage
/// (sim/Predecode.h) with vector-indexed block/edge counters, and
/// materializes the string-keyed RunResult maps once at the end. Must stay
/// bit-identical to the walking interpreter in Simulator.cpp
/// (simulateLegacy) — tests/test_sim_fastpath.cpp enforces that, so any
/// semantic change must be made in both files.
///
//===----------------------------------------------------------------------===//

#include "ir/Abi.h"
#include "sim/Predecode.h"
#include "sim/SimCore.h"
#include "sim/Simulator.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <memory>
#include <mutex>

using namespace vsc;

namespace {

using simcore::CrVal;
using simcore::RegFile;

/// Saved caller context for a call (fast-path flavour of the legacy
/// Frame: indices instead of Function/block pointers).
struct FastFrame {
  const DecodedFunction *F = nullptr;
  uint32_t Block = 0;
  uint32_t Instr = 0; // global instruction index, already past the CALL
  std::vector<int64_t> Virt;
  std::vector<CrVal> VirtCr;
  std::vector<uint64_t> VirtReady;
  std::vector<uint64_t> VirtCrReady;
};

/// Storage pooled across the runs of a batch: the memory image, the dense
/// counter vectors and the call stack keep their capacity between runs.
struct Arena {
  std::vector<uint8_t> Mem;
  std::vector<uint64_t> BlockHits;
  std::vector<uint64_t> EdgeHits;
  std::vector<FastFrame> CallStack;
};

class FastMachine {
public:
  FastMachine(const SimImage &Img, const RunOptions &Opts, Arena &A,
              DenseCounters *DenseOut = nullptr)
      : Img(Img), Model(Img.Model), Opts(Opts), Mem(A.Mem),
        BlockHits(A.BlockHits), EdgeHits(A.EdgeHits),
        CallStack(A.CallStack), DenseOut(DenseOut), W(Opts.Watcher) {}

  RunResult run() {
    RunResult R;
    auto It = Img.FuncByName.find(Opts.EntryFunction);
    const DecodedFunction *F =
        It == Img.FuncByName.end() ? nullptr : &Img.Funcs[It->second];
    if (!F || F->NumBlocks == 0) {
      R.Trapped = true;
      R.TrapMsg = "no entry function '" + Opts.EntryFunction + "'";
      return R; // like the legacy engine: no digest, no counters
    }

    Mem.assign(Opts.MemBytes, 0);
    if (!Img.DataInit.empty() && Mem.size() > 4096) {
      size_t N = std::min<size_t>(Img.DataInit.size(), Mem.size() - 4096);
      std::memcpy(Mem.data() + 4096, Img.DataInit.data(), N);
    }
    BlockHits.assign(Img.Blocks.size(), 0);
    EdgeHits.assign(Img.EdgeKeys.size(), 0);
    CallStack.clear();

    Regs.gpr(1) = static_cast<int64_t>(Mem.size() - 4096); // stack top
    Regs.gpr(2) = 4096;                                    // TOC anchor
    for (size_t I = 0; I < Opts.Args.size() && I < 8; ++I)
      Regs.gpr(3 + static_cast<uint32_t>(I)) = Opts.Args[I];

    CurF = F;
    Blk = F->FirstBlock;
    Ii = Img.Blocks[Blk].FirstInstr;
    ++BlockHits[Blk];
    if (W) {
      W->enterFunction(CurF->F);
      W->enterBlock(Img.Blocks[Blk].Origin);
    }

    while (true) {
      // Fallthrough across block boundaries.
      const DecodedBlock *B = &Img.Blocks[Blk];
      while (Ii >= B->FirstInstr + B->NumInstrs) {
        if (Blk + 1 >= CurF->FirstBlock + CurF->NumBlocks)
          return trap(R, "fell off the end of function " + CurF->F->name());
        ++EdgeHits[static_cast<uint32_t>(B->FallEdge)];
        ++Blk;
        B = &Img.Blocks[Blk];
        Ii = B->FirstInstr;
        ++BlockHits[Blk];
        if (W)
          W->enterBlock(B->Origin);
      }
      const DecodedInstr &D = Img.Instrs[Ii];
      ++Ii;
      if (++R.DynInstrs > Opts.MaxInstrs)
        return trap(R, "instruction budget exceeded");

      bool Done = false;
      if (!step(D, R, Done))
        return finish(R); // trap already recorded by step
      if (Done)
        return finish(R);
    }
  }

private:
  // --- functional helpers -------------------------------------------------

  int64_t readMem(uint64_t Addr, unsigned Size, bool &Ok, bool &PageZero) {
    PageZero = false;
    if (Addr + Size <= 4096) {
      PageZero = true;
      return 0; // legality checked by the caller against the model
    }
    if (Addr + Size > Mem.size() || Addr < 4096) {
      Ok = false;
      return 0;
    }
    uint64_t V = 0;
    for (unsigned B = 0; B != Size; ++B)
      V |= static_cast<uint64_t>(Mem[Addr + B]) << (8 * B);
    // Sign extend.
    if (Size < 8) {
      uint64_t SignBit = 1ULL << (Size * 8 - 1);
      if (V & SignBit)
        V |= ~((SignBit << 1) - 1);
    }
    return static_cast<int64_t>(V);
  }

  bool writeMem(uint64_t Addr, unsigned Size, int64_t Val) {
    if (Addr < 4096 || Addr + Size > Mem.size())
      return false;
    for (unsigned B = 0; B != Size; ++B)
      Mem[Addr + B] =
          static_cast<uint8_t>(static_cast<uint64_t>(Val) >> (8 * B));
    return true;
  }

  RunResult &trap(RunResult &R, const std::string &Msg) {
    R.Trapped = true;
    R.TrapMsg = Msg;
    return finish(R);
  }

  RunResult &finish(RunResult &R) {
    // A trap inside step() already finished; materializing the counter
    // maps twice would double them (they accumulate with +=).
    if (Finished)
      return R;
    Finished = true;
    // FNV-1a over the global data area.
    uint64_t H = 1469598103934665603ULL;
    for (uint64_t A = 4096; A < Img.DataEnd && A < Mem.size(); ++A) {
      H ^= Mem[A];
      H *= 1099511628211ULL;
    }
    R.MemDigest = H;
    R.Cycles = PrevIssue;
    if (Opts.KeepMemory)
      R.Memory = Mem;
    R.GlobalBase = Img.GlobalBase;
    if (DenseOut) {
      // Dense export: hand the slot vectors to the caller untouched (the
      // arena keeps its capacity — copy, don't move) and skip the string-
      // map materialization round-trip entirely.
      DenseOut->BlockHits = BlockHits;
      DenseOut->EdgeHits = EdgeHits;
      return R;
    }
    // Materialize the string-keyed counter maps from the dense slots.
    // Distinct slots may intern the same key (taken branch + fallthrough
    // to the same successor), so sum rather than assign.
    for (size_t S = 0; S != BlockHits.size(); ++S)
      if (BlockHits[S])
        R.BlockCounts[Img.BlockKeys[S]] += BlockHits[S];
    for (size_t S = 0; S != EdgeHits.size(); ++S)
      if (EdgeHits[S])
        R.EdgeCounts[Img.EdgeKeys[S]] += EdgeHits[S];
    return R;
  }

  bool step(const DecodedInstr &D, RunResult &R, bool &Done);

  // --- timing -------------------------------------------------------------

  uint64_t operandReadyTime(const DecodedInstr &D) {
    uint64_t T = 0;
    for (uint32_t U = D.UsesBegin; U != D.UsesEnd; ++U) {
      Reg Use = Img.UsePool[U];
      if (Use.isGpr())
        T = std::max(T, Regs.gprReady(Use.id()));
      else if (Use.isCr())
        T = std::max(T, Regs.crReady(Use.id()));
      else if (Use.isCtr())
        T = std::max(T, Regs.CtrReady);
    }
    return T;
  }

  void setDefsReady(const DecodedInstr &D, uint64_t When, uint64_t BaseWhen) {
    for (uint32_t I = D.DefsBegin; I != D.DefsEnd; ++I) {
      Reg Def = Img.DefPool[I];
      uint64_t T = (D.Op == Opcode::LU && Def == D.Src1) ? BaseWhen : When;
      if (Def.isGpr())
        Regs.gprReady(Def.id()) = T;
      else if (Def.isCr())
        Regs.crReady(Def.id()) = T;
      else if (Def.isCtr())
        Regs.CtrReady = T;
    }
  }

  /// Finds the issue cycle for an instruction of unit class \p Unit whose
  /// operands/floors allow issue at \p Earliest, honouring issue width.
  uint64_t allocUnit(UnitKind Unit, uint64_t Earliest) {
    uint64_t C = Earliest;
    if (Unit == UnitKind::Fxu) {
      if (FxuCycle == C && FxuCount >= Model.FxuWidth)
        C = FxuCycle + 1;
      if (FxuCycle != C) {
        FxuCycle = C;
        FxuCount = 0;
      }
      ++FxuCount;
    } else if (Unit == UnitKind::Bu) {
      if (BuCycle == C && BuCount >= Model.BuWidth)
        C = BuCycle + 1;
      if (BuCycle != C) {
        BuCycle = C;
        BuCount = 0;
      }
      ++BuCount;
    }
    return C;
  }

  uint64_t issue(const DecodedInstr &D, bool IsBranchTaken, RunResult &R) {
    uint64_t Base = std::max(PrevIssue, FetchFloor);
    uint64_t Earliest = Base;
    uint64_t OperandFloor = 0;
    if (!D.IsBranch) {
      // Branches issue before their condition resolves (predicted
      // untaken); everything else waits for operands.
      OperandFloor = operandReadyTime(D);
      Earliest = std::max(Earliest, OperandFloor);
    }
    // Limited dispatch beyond an unresolved conditional branch.
    if (Earliest < PendingResolve) {
      if (SpecBudget == 0)
        Earliest = PendingResolve;
      else
        --SpecBudget;
    }
    uint64_t C = allocUnit(D.Unit, Earliest);
    if (OperandFloor > Base)
      R.OperandStallCycles += OperandFloor - Base;

    // Branch bookkeeping.
    if (D.Op == Opcode::BT || D.Op == Opcode::BF) {
      uint64_t CrReady = Regs.crReady(D.Src1.id());
      uint64_t Resolve = std::max(C, CrReady);
      if (IsBranchTaken) {
        uint64_t NewFloor = std::max(C, CrReady + Model.TakenBranchRedirect);
        if (NewFloor > C)
          R.BranchStallCycles += NewFloor - C;
        FetchFloor = std::max(FetchFloor, NewFloor);
      } else if (Resolve > C) {
        PendingResolve = Resolve;
        SpecBudget = Model.SpecWindow;
      }
      LastCondResolve = Resolve;
      InstrsSinceCondBranch = 0;
    } else if (D.Op == Opcode::BCT) {
      uint64_t Resolve = std::max(C, Regs.CtrReady);
      FetchFloor = std::max(FetchFloor, Resolve); // branch-on-count is free
      LastCondResolve = Resolve;
      InstrsSinceCondBranch = 0;
    } else if (D.Op == Opcode::B) {
      // Free when the branch unit saw it early enough; pays the redirect
      // when it sits in the shadow of a recent conditional branch (the
      // stall basic block expansion removes).
      if (InstrsSinceCondBranch < Model.ExpansionObjective) {
        uint64_t NewFloor =
            std::max(C, LastCondResolve + Model.TakenBranchRedirect);
        if (NewFloor > C)
          R.BranchStallCycles += NewFloor - C;
        FetchFloor = std::max(FetchFloor, NewFloor);
      }
      ++InstrsSinceCondBranch;
    } else if (D.Op == Opcode::CALL || D.Op == Opcode::RET) {
      FetchFloor = std::max(FetchFloor, C + Model.TakenBranchRedirect);
      R.BranchStallCycles += Model.TakenBranchRedirect;
      InstrsSinceCondBranch = 0;
    } else {
      ++InstrsSinceCondBranch;
    }

    PrevIssue = C;
    return C;
  }

  /// Kills everything the linkage convention says a call clobbers (see
  /// the legacy engine for the rationale; poison from ir/Abi.h).
  void scrubCallClobbers(int64_t KeepArgs) {
    abi::forEachCallClobber([&](Reg D) {
      if (D.isGpr()) {
        if (D.id() >= 3 &&
            static_cast<int64_t>(D.id()) < 3 + std::min<int64_t>(KeepArgs, 8))
          return;
        Regs.gpr(D.id()) = abi::ClobberPoison;
      } else if (D.isCr()) {
        Regs.cr(D.id()) = CrVal{true, true, true};
      } else if (D.isCtr()) {
        Regs.Ctr = abi::ClobberPoison;
      }
    });
  }

  // --- state --------------------------------------------------------------

  const SimImage &Img;
  const MachineModel &Model;
  const RunOptions &Opts;

  std::vector<uint8_t> &Mem;
  std::vector<uint64_t> &BlockHits;
  std::vector<uint64_t> &EdgeHits;
  std::vector<FastFrame> &CallStack;
  DenseCounters *DenseOut = nullptr;
  MemAccessWatcher *W = nullptr;

  RegFile Regs;
  const DecodedFunction *CurF = nullptr;
  uint32_t Blk = 0; // global block index
  uint32_t Ii = 0;  // global instruction index
  size_t InputPos = 0;

  // Timing.
  bool Finished = false;
  uint64_t PrevIssue = 0;
  uint64_t FetchFloor = 1;
  uint64_t FxuCycle = 0, BuCycle = 0;
  unsigned FxuCount = 0, BuCount = 0;
  uint64_t PendingResolve = 0;
  unsigned SpecBudget = 0;
  uint64_t LastCondResolve = 0;
  uint64_t InstrsSinceCondBranch = 1'000'000;
};

bool FastMachine::step(const DecodedInstr &D, RunResult &R, bool &Done) {
  Done = false;
  auto S1 = [&]() { return Regs.gpr(D.Src1.id()); };
  auto S2 = [&]() { return Regs.gpr(D.Src2.id()); };

  // Functional semantics first (so branch direction is known), then timing.
  bool Taken = false;
  int64_t DstVal = 0;
  bool HasDstVal = false;
  int64_t LuNewBase = 0;

  switch (D.Op) {
  case Opcode::LI:
    DstVal = D.Imm;
    HasDstVal = true;
    break;
  case Opcode::LR:
    DstVal = S1();
    HasDstVal = true;
    break;
  case Opcode::A:
    DstVal = static_cast<int64_t>(static_cast<uint64_t>(S1()) +
                                  static_cast<uint64_t>(S2()));
    HasDstVal = true;
    break;
  case Opcode::S:
    DstVal = static_cast<int64_t>(static_cast<uint64_t>(S1()) -
                                  static_cast<uint64_t>(S2()));
    HasDstVal = true;
    break;
  case Opcode::MUL:
    DstVal = static_cast<int64_t>(static_cast<uint64_t>(S1()) *
                                  static_cast<uint64_t>(S2()));
    HasDstVal = true;
    break;
  case Opcode::DIV: {
    int64_t Dv = S2();
    if (Dv == 0) {
      trap(R, "divide by zero");
      return false;
    }
    if (S1() == INT64_MIN && Dv == -1)
      DstVal = INT64_MIN;
    else
      DstVal = S1() / Dv;
    HasDstVal = true;
    break;
  }
  case Opcode::AND:
    DstVal = S1() & S2();
    HasDstVal = true;
    break;
  case Opcode::OR:
    DstVal = S1() | S2();
    HasDstVal = true;
    break;
  case Opcode::XOR:
    DstVal = S1() ^ S2();
    HasDstVal = true;
    break;
  case Opcode::SL:
    DstVal = static_cast<int64_t>(static_cast<uint64_t>(S1())
                                  << (S2() & 63));
    HasDstVal = true;
    break;
  case Opcode::SR:
    DstVal = static_cast<int64_t>(static_cast<uint64_t>(S1()) >>
                                  (S2() & 63));
    HasDstVal = true;
    break;
  case Opcode::SRA:
    DstVal = S1() >> (S2() & 63);
    HasDstVal = true;
    break;
  case Opcode::AI:
  case Opcode::LA:
    DstVal = static_cast<int64_t>(static_cast<uint64_t>(S1()) +
                                  static_cast<uint64_t>(D.Imm));
    HasDstVal = true;
    break;
  case Opcode::SI:
    DstVal = static_cast<int64_t>(static_cast<uint64_t>(S1()) -
                                  static_cast<uint64_t>(D.Imm));
    HasDstVal = true;
    break;
  case Opcode::MULI:
    DstVal = static_cast<int64_t>(static_cast<uint64_t>(S1()) *
                                  static_cast<uint64_t>(D.Imm));
    HasDstVal = true;
    break;
  case Opcode::ANDI:
    DstVal = S1() & D.Imm;
    HasDstVal = true;
    break;
  case Opcode::ORI:
    DstVal = S1() | D.Imm;
    HasDstVal = true;
    break;
  case Opcode::XORI:
    DstVal = S1() ^ D.Imm;
    HasDstVal = true;
    break;
  case Opcode::SLI:
    DstVal = static_cast<int64_t>(static_cast<uint64_t>(S1())
                                  << (D.Imm & 63));
    HasDstVal = true;
    break;
  case Opcode::SRI:
    DstVal = static_cast<int64_t>(static_cast<uint64_t>(S1()) >>
                                  (D.Imm & 63));
    HasDstVal = true;
    break;
  case Opcode::SRAI:
    DstVal = S1() >> (D.Imm & 63);
    HasDstVal = true;
    break;
  case Opcode::NEG:
    DstVal = static_cast<int64_t>(0 - static_cast<uint64_t>(S1()));
    HasDstVal = true;
    break;
  case Opcode::LTOC: {
    if (!D.GlobalKnown) {
      trap(R, "LTOC of unknown global '" + D.Origin->Sym + "'");
      return false;
    }
    DstVal = D.GlobalAddr;
    HasDstVal = true;
    break;
  }
  case Opcode::L:
  case Opcode::LU: {
    uint64_t Addr = static_cast<uint64_t>(S1() + D.Imm);
    bool Ok = true, PageZero = false;
    int64_t V = readMem(Addr, D.MemSize, Ok, PageZero);
    if (PageZero && !Model.PageZeroReadable) {
      trap(R, "load from page zero at " + std::to_string(Addr));
      return false;
    }
    if (!Ok) {
      trap(R, "load from unmapped address " + std::to_string(Addr));
      return false;
    }
    if (W)
      W->memAccess(D.Origin, Addr, D.MemSize);
    DstVal = V;
    HasDstVal = true;
    LuNewBase = S1() + D.Imm;
    break;
  }
  case Opcode::ST: {
    uint64_t Addr = static_cast<uint64_t>(S2() + D.Imm);
    if (!writeMem(Addr, D.MemSize, S1())) {
      trap(R, "store to unmapped address " + std::to_string(Addr));
      return false;
    }
    if (W)
      W->memAccess(D.Origin, Addr, D.MemSize);
    break;
  }
  case Opcode::C:
  case Opcode::CI: {
    int64_t A = S1();
    int64_t B = D.Op == Opcode::C ? S2() : D.Imm;
    CrVal &Cr = Regs.cr(D.Dst.id());
    Cr.Lt = A < B;
    Cr.Gt = A > B;
    Cr.Eq = A == B;
    break;
  }
  case Opcode::MTCTR:
    Regs.Ctr = S1();
    break;
  case Opcode::B:
    Taken = true;
    break;
  case Opcode::BT:
  case Opcode::BF: {
    bool Bit = Regs.cr(D.Src1.id()).bit(D.Bit);
    Taken = (D.Op == Opcode::BT) ? Bit : !Bit;
    break;
  }
  case Opcode::BCT:
    Taken = (--Regs.Ctr != 0);
    break;
  case Opcode::CALL:
  case Opcode::RET:
    break;
  default:
    trap(R, "unimplemented opcode");
    return false;
  }

  uint64_t C = issue(D, Taken, R);

  // Commit destination values and ready times.
  if (D.Op == Opcode::LU)
    Regs.gpr(D.Src1.id()) = LuNewBase;
  if (HasDstVal && D.Dst.isGpr())
    Regs.gpr(D.Dst.id()) = DstVal;
  if (D.SetsDefsReady)
    setDefsReady(D, C + D.Latency, C + Model.AluLatency);

  // The stack grows down from the top of memory; a stack pointer that
  // descends into the global data area would silently corrupt globals
  // (and stores through it still look "mapped" to writeMem).
  if (((HasDstVal && D.Dst.isGpr() && D.Dst.id() == 1) ||
       (D.Op == Opcode::LU && D.Src1.isGpr() && D.Src1.id() == 1)) &&
      Regs.Phys[1] < static_cast<int64_t>(Img.DataEnd)) {
    trap(R, "stack overflow into data");
    return false;
  }

  // Control transfer.
  if (D.Op == Opcode::B || ((D.Op == Opcode::BT || D.Op == Opcode::BF ||
                             D.Op == Opcode::BCT) &&
                            Taken)) {
    // The edge is counted before target resolution, like the legacy
    // engine (a branch to an unknown label still counts its edge).
    ++EdgeHits[static_cast<uint32_t>(D.TakenEdge)];
    if (D.TargetBlock < 0) {
      trap(R, "branch to unknown label '" + D.Origin->Target + "'");
      return false;
    }
    Blk = static_cast<uint32_t>(D.TargetBlock);
    Ii = Img.Blocks[Blk].FirstInstr;
    ++BlockHits[Blk];
    if (W)
      W->enterBlock(Img.Blocks[Blk].Origin);
    return true;
  }

  if (D.Op == Opcode::CALL) {
    // Builtins. Their r3 on return is pinned in ir/Abi.h (print builtins
    // return their argument, read_int the value read); everything else in
    // the clobber set dies.
    if (D.Builtin != SimBuiltin::None) {
      int64_t A0 = Regs.gpr(3);
      scrubCallClobbers(/*KeepArgs=*/0);
      switch (D.Builtin) {
      case SimBuiltin::PrintInt:
        R.Output += std::to_string(A0) + "\n";
        Regs.gpr(3) = A0;
        Regs.gprReady(3) = C + Model.AluLatency;
        return true;
      case SimBuiltin::PrintChar:
        R.Output += static_cast<char>(A0 & 0xff);
        Regs.gpr(3) = A0;
        return true;
      case SimBuiltin::ReadInt:
        Regs.gpr(3) =
            InputPos < Opts.Input.size() ? Opts.Input[InputPos++] : 0;
        Regs.gprReady(3) = C + Model.AluLatency;
        return true;
      default: // exit
        R.ExitCode = A0;
        Done = true;
        return true;
      }
    }
    if (D.Callee < 0) {
      trap(R, "call to unknown function '" + D.Origin->Sym + "'");
      return false;
    }
    scrubCallClobbers(D.Imm);
    FastFrame Fr;
    Fr.F = CurF;
    Fr.Block = Blk;
    Fr.Instr = Ii;
    Fr.Virt = std::move(Regs.Virt);
    Fr.VirtCr = std::move(Regs.VirtCr);
    Fr.VirtReady = std::move(Regs.VirtReady);
    Fr.VirtCrReady = std::move(Regs.VirtCrReady);
    CallStack.push_back(std::move(Fr));
    Regs.Virt.clear();
    Regs.VirtCr.clear();
    Regs.VirtReady.clear();
    Regs.VirtCrReady.clear();
    const DecodedFunction &Callee = Img.Funcs[D.Callee];
    CurF = &Callee;
    Blk = Callee.FirstBlock;
    Ii = Img.Blocks[Blk].FirstInstr;
    ++BlockHits[Blk];
    if (W) {
      W->enterFunction(Callee.F);
      W->enterBlock(Img.Blocks[Blk].Origin);
    }
    return true;
  }

  if (D.Op == Opcode::RET) {
    if (CallStack.empty()) {
      R.ExitCode = Regs.gpr(3);
      Done = true;
      return true;
    }
    if (W)
      W->exitFunction();
    FastFrame Fr = std::move(CallStack.back());
    CallStack.pop_back();
    CurF = Fr.F;
    Blk = Fr.Block;
    Ii = Fr.Instr;
    Regs.Virt = std::move(Fr.Virt);
    Regs.VirtCr = std::move(Fr.VirtCr);
    Regs.VirtReady = std::move(Fr.VirtReady);
    Regs.VirtCrReady = std::move(Fr.VirtCrReady);
    return true;
  }

  return true;
}

} // namespace

struct SimEngine::State {
  SimImage Img;
  Arena A;
};

SimEngine::SimEngine(const Module &M, const MachineModel &Machine)
    : S(std::make_unique<State>()) {
  S->Img = predecode(M, Machine);
}

SimEngine::SimEngine(SimEngine &&) noexcept = default;
SimEngine &SimEngine::operator=(SimEngine &&) noexcept = default;
SimEngine::~SimEngine() = default;

RunResult SimEngine::run(const RunOptions &Opts) {
  FastMachine FM(S->Img, Opts, S->A);
  return FM.run();
}

RunResult SimEngine::run(const RunOptions &Opts, DenseCounters &Dense) {
  FastMachine FM(S->Img, Opts, S->A, &Dense);
  return FM.run();
}

std::vector<RunResult>
SimEngine::runBatch(const std::vector<RunOptions> &Batch, unsigned Threads,
                    std::vector<DenseCounters> *Dense) {
  unsigned T = Threads ? std::min(Threads, 64u)
                       : ThreadPool::defaultThreadCount();
  std::vector<RunResult> Out(Batch.size());
  if (Dense)
    Dense->assign(Batch.size(), DenseCounters{});
  if (T <= 1 || Batch.size() <= 1) {
    // The pre-threaded shape: every run shares the engine's pooled arena.
    for (size_t I = 0; I != Batch.size(); ++I) {
      FastMachine FM(S->Img, Batch[I], S->A,
                     Dense ? &(*Dense)[I] : nullptr);
      Out[I] = FM.run();
    }
    return Out;
  }

  // Parallel fan-out: results are stored positionally, so the output is
  // schedule-independent. Arenas are pooled through a free list — a task
  // borrows one for the duration of its run, so at most min(T, |Batch|)
  // arenas ever exist and their capacity is reused across the batch.
  std::mutex Mu;
  std::vector<std::unique_ptr<Arena>> FreeArenas;
  ThreadPool Pool(T);
  Pool.parallelFor(Batch.size(), [&](size_t I) {
    std::unique_ptr<Arena> A;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      if (!FreeArenas.empty()) {
        A = std::move(FreeArenas.back());
        FreeArenas.pop_back();
      }
    }
    if (!A)
      A = std::make_unique<Arena>();
    FastMachine FM(S->Img, Batch[I], *A, Dense ? &(*Dense)[I] : nullptr);
    Out[I] = FM.run();
    std::lock_guard<std::mutex> Lock(Mu);
    FreeArenas.push_back(std::move(A));
  });
  return Out;
}

const SimImage &SimEngine::image() const { return S->Img; }

RunResult vsc::simulate(const Module &M, const MachineModel &Machine,
                        const RunOptions &Opts) {
  SimImage Img = predecode(M, Machine);
  Arena A;
  FastMachine FM(Img, Opts, A);
  return FM.run();
}

std::vector<RunResult>
vsc::simulateBatch(const Module &M, const MachineModel &Machine,
                   const std::vector<RunOptions> &Batch, unsigned Threads) {
  SimEngine E(M, Machine);
  return E.runBatch(Batch, Threads);
}
