//===- sim/Simulator.cpp - Functional + timing simulator -------------------===//

#include "sim/Simulator.h"

#include "ir/Abi.h"
#include "sim/SimCore.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace vsc;

namespace {

using simcore::CrVal;
using simcore::RegFile;

/// Saved caller context for a call.
struct Frame {
  const Function *F = nullptr;
  size_t BlockIdx = 0;
  size_t InstrIdx = 0;
  std::vector<int64_t> Virt;
  std::vector<CrVal> VirtCr;
  std::vector<uint64_t> VirtReady;
  std::vector<uint64_t> VirtCrReady;
};

class Machine {
public:
  Machine(const Module &M, const MachineModel &Model, const RunOptions &Opts)
      : M(M), Model(Model), Opts(Opts) {
    Mem.assign(Opts.MemBytes, 0);
    GlobalBase = computeGlobalLayout(M);
    DataEnd = 4096;
    for (const Global &G : M.globals()) {
      uint64_t Addr = GlobalBase.at(G.Name);
      for (size_t I = 0; I != G.Init.size() && Addr + I < Mem.size(); ++I)
        Mem[Addr + I] = G.Init[I];
      DataEnd = std::max(DataEnd, Addr + G.Size);
    }
  }

  RunResult run() {
    RunResult R;
    const Function *F = M.findFunction(Opts.EntryFunction);
    if (!F || F->blocks().empty()) {
      R.Trapped = true;
      R.TrapMsg = "no entry function '" + Opts.EntryFunction + "'";
      return R;
    }
    Regs.gpr(1) = static_cast<int64_t>(Mem.size() - 4096); // stack top
    Regs.gpr(2) = 4096;                                    // TOC anchor
    for (size_t I = 0; I < Opts.Args.size() && I < 8; ++I)
      Regs.gpr(3 + static_cast<uint32_t>(I)) = Opts.Args[I];

    CurF = F;
    BlockIdx = 0;
    InstrIdx = 0;
    countBlock(R);

    while (true) {
      // Fallthrough across block boundaries.
      while (InstrIdx >= CurF->blocks()[BlockIdx]->size()) {
        if (BlockIdx + 1 >= CurF->blocks().size())
          return trap(R, "fell off the end of function " + CurF->name());
        countEdge(R, CurF->blocks()[BlockIdx]->label(),
                  CurF->blocks()[BlockIdx + 1]->label());
        ++BlockIdx;
        InstrIdx = 0;
        countBlock(R);
      }
      const Instr &I = CurF->blocks()[BlockIdx]->instrs()[InstrIdx];
      ++InstrIdx;
      if (++R.DynInstrs > Opts.MaxInstrs)
        return trap(R, "instruction budget exceeded");

      bool Done = false;
      if (!step(I, R, Done))
        return finish(R); // trap already recorded by step
      if (Done)
        return finish(R);
    }
  }

private:
  // --- functional helpers -------------------------------------------------

  int64_t readMem(uint64_t Addr, unsigned Size, bool &Ok, bool &PageZero) {
    PageZero = false;
    if (Addr + Size <= 4096) {
      PageZero = true;
      return 0; // legality checked by the caller against the model
    }
    if (Addr + Size > Mem.size() || Addr < 4096) {
      Ok = false;
      return 0;
    }
    uint64_t V = 0;
    for (unsigned B = 0; B != Size; ++B)
      V |= static_cast<uint64_t>(Mem[Addr + B]) << (8 * B);
    // Sign extend.
    if (Size < 8) {
      uint64_t SignBit = 1ULL << (Size * 8 - 1);
      if (V & SignBit)
        V |= ~((SignBit << 1) - 1);
    }
    return static_cast<int64_t>(V);
  }

  bool writeMem(uint64_t Addr, unsigned Size, int64_t Val) {
    if (Addr < 4096 || Addr + Size > Mem.size())
      return false;
    for (unsigned B = 0; B != Size; ++B)
      Mem[Addr + B] = static_cast<uint8_t>(static_cast<uint64_t>(Val) >>
                                           (8 * B));
    return true;
  }

  void countBlock(RunResult &R) {
    ++R.BlockCounts[blockCountKey(CurF->name(),
                                  CurF->blocks()[BlockIdx]->label())];
  }

  void countEdge(RunResult &R, const std::string &FromLabel,
                 const std::string &ToLabel) {
    ++R.EdgeCounts[edgeCountKey(CurF->name(), FromLabel, ToLabel)];
  }

  bool jumpTo(const std::string &Label, RunResult &R) {
    for (size_t I = 0, E = CurF->blocks().size(); I != E; ++I) {
      if (CurF->blocks()[I]->label() == Label) {
        BlockIdx = I;
        InstrIdx = 0;
        countBlock(R);
        return true;
      }
    }
    return false;
  }

  RunResult &trap(RunResult &R, const std::string &Msg) {
    R.Trapped = true;
    R.TrapMsg = Msg;
    return finish(R);
  }

  RunResult &finish(RunResult &R) {
    // FNV-1a over the global data area.
    uint64_t H = 1469598103934665603ULL;
    for (uint64_t A = 4096; A < DataEnd && A < Mem.size(); ++A) {
      H ^= Mem[A];
      H *= 1099511628211ULL;
    }
    R.MemDigest = H;
    R.Cycles = PrevIssue;
    if (Opts.KeepMemory)
      R.Memory = Mem;
    R.GlobalBase = GlobalBase;
    return R;
  }

  /// Executes one instruction functionally and accounts its timing.
  /// \returns false on trap (recorded in R); sets \p Done when the program
  /// finished normally.
  bool step(const Instr &I, RunResult &R, bool &Done);

  // --- timing -------------------------------------------------------------

  uint64_t operandReadyTime(const Instr &I) {
    uint64_t T = 0;
    Uses.clear();
    I.collectUses(Uses);
    for (Reg U : Uses) {
      if (U.isGpr())
        T = std::max(T, Regs.gprReady(U.id()));
      else if (U.isCr())
        T = std::max(T, Regs.crReady(U.id()));
      else if (U.isCtr())
        T = std::max(T, Regs.CtrReady);
    }
    return T;
  }

  void setDefsReady(const Instr &I, uint64_t When, uint64_t BaseWhen) {
    Defs.clear();
    I.collectDefs(Defs);
    for (Reg D : Defs) {
      uint64_t T = (I.Op == Opcode::LU && D == I.Src1) ? BaseWhen : When;
      if (D.isGpr())
        Regs.gprReady(D.id()) = T;
      else if (D.isCr())
        Regs.crReady(D.id()) = T;
      else if (D.isCtr())
        Regs.CtrReady = T;
    }
  }

  /// Finds the issue cycle for an instruction of unit class \p Unit whose
  /// operands/floors allow issue at \p Earliest, honouring issue width.
  uint64_t allocUnit(UnitKind Unit, uint64_t Earliest) {
    uint64_t C = Earliest;
    if (Unit == UnitKind::Fxu) {
      if (FxuCycle == C && FxuCount >= Model.FxuWidth)
        C = FxuCycle + 1;
      if (FxuCycle != C) {
        FxuCycle = C;
        FxuCount = 0;
      }
      ++FxuCount;
    } else if (Unit == UnitKind::Bu) {
      if (BuCycle == C && BuCount >= Model.BuWidth)
        C = BuCycle + 1;
      if (BuCycle != C) {
        BuCycle = C;
        BuCount = 0;
      }
      ++BuCount;
    }
    return C;
  }

  /// Issues \p I, returning its issue cycle. \p IsBranchTaken matters only
  /// for control instructions.
  uint64_t issue(const Instr &I, bool IsBranchTaken, RunResult &R);

  /// Kills everything the linkage convention says a call clobbers, writing
  /// the shared poison from ir/Abi.h, so code that wrongly relies on a
  /// caller-saved register surviving a call fails loudly — and identically
  /// in the reference interpreter. Argument registers still carrying live
  /// arguments (r3..r3+KeepArgs-1) are spared; ready times are left alone
  /// so the timing model is unchanged.
  void scrubCallClobbers(int64_t KeepArgs) {
    abi::forEachCallClobber([&](Reg D) {
      if (D.isGpr()) {
        if (D.id() >= 3 &&
            static_cast<int64_t>(D.id()) < 3 + std::min<int64_t>(KeepArgs, 8))
          return;
        Regs.gpr(D.id()) = abi::ClobberPoison;
      } else if (D.isCr()) {
        // All three bits set is unreachable for a real compare result,
        // which makes poisoned condition registers recognizable.
        Regs.cr(D.id()) = CrVal{true, true, true};
      } else if (D.isCtr()) {
        Regs.Ctr = abi::ClobberPoison;
      }
    });
  }

  // --- state --------------------------------------------------------------

  const Module &M;
  const MachineModel &Model;
  const RunOptions &Opts;

  std::vector<uint8_t> Mem;
  std::unordered_map<std::string, uint64_t> GlobalBase;
  uint64_t DataEnd = 4096;

  RegFile Regs;
  const Function *CurF = nullptr;
  size_t BlockIdx = 0, InstrIdx = 0;
  std::vector<Frame> CallStack;
  size_t InputPos = 0;

  // Timing.
  uint64_t PrevIssue = 0;
  uint64_t FetchFloor = 1;
  uint64_t FxuCycle = 0, BuCycle = 0;
  unsigned FxuCount = 0, BuCount = 0;
  uint64_t PendingResolve = 0;
  unsigned SpecBudget = 0;
  uint64_t LastCondResolve = 0;
  uint64_t InstrsSinceCondBranch = 1'000'000;

  std::vector<Reg> Uses, Defs;
};

uint64_t Machine::issue(const Instr &I, bool IsBranchTaken, RunResult &R) {
  uint64_t Base = std::max(PrevIssue, FetchFloor);
  uint64_t Earliest = Base;
  uint64_t OperandFloor = 0;
  if (!I.isBranch()) {
    // Branches issue before their condition resolves (predicted untaken);
    // everything else waits for operands.
    OperandFloor = operandReadyTime(I);
    Earliest = std::max(Earliest, OperandFloor);
  }
  // Limited dispatch beyond an unresolved conditional branch.
  if (Earliest < PendingResolve) {
    if (SpecBudget == 0)
      Earliest = PendingResolve;
    else
      --SpecBudget;
  }
  uint64_t C = allocUnit(Model.unitOf(I), Earliest);
  if (OperandFloor > Base)
    R.OperandStallCycles += OperandFloor - Base;

  // Branch bookkeeping.
  if (I.Op == Opcode::BT || I.Op == Opcode::BF) {
    uint64_t CrReady = Regs.crReady(I.Src1.id());
    uint64_t Resolve = std::max(C, CrReady);
    if (IsBranchTaken) {
      uint64_t NewFloor = std::max(C, CrReady + Model.TakenBranchRedirect);
      if (NewFloor > C)
        R.BranchStallCycles += NewFloor - C;
      FetchFloor = std::max(FetchFloor, NewFloor);
    } else if (Resolve > C) {
      PendingResolve = Resolve;
      SpecBudget = Model.SpecWindow;
    }
    LastCondResolve = Resolve;
    InstrsSinceCondBranch = 0;
  } else if (I.Op == Opcode::BCT) {
    uint64_t Resolve = std::max(C, Regs.CtrReady);
    FetchFloor = std::max(FetchFloor, Resolve); // branch-on-count is free
    LastCondResolve = Resolve;
    InstrsSinceCondBranch = 0;
  } else if (I.Op == Opcode::B) {
    // Free when the branch unit saw it early enough; pays the redirect when
    // it sits in the shadow of a recent conditional branch (the stall basic
    // block expansion removes).
    if (InstrsSinceCondBranch < Model.ExpansionObjective) {
      uint64_t NewFloor =
          std::max(C, LastCondResolve + Model.TakenBranchRedirect);
      if (NewFloor > C)
        R.BranchStallCycles += NewFloor - C;
      FetchFloor = std::max(FetchFloor, NewFloor);
    }
    ++InstrsSinceCondBranch;
  } else if (I.isCall() || I.isRet()) {
    FetchFloor = std::max(FetchFloor, C + Model.TakenBranchRedirect);
    R.BranchStallCycles += Model.TakenBranchRedirect;
    InstrsSinceCondBranch = 0;
  } else {
    ++InstrsSinceCondBranch;
  }

  PrevIssue = C;
  return C;
}

bool Machine::step(const Instr &I, RunResult &R, bool &Done) {
  Done = false;
  auto S1 = [&]() { return Regs.gpr(I.Src1.id()); };
  auto S2 = [&]() { return Regs.gpr(I.Src2.id()); };

  // Functional semantics first (so branch direction is known), then timing.
  bool Taken = false;
  int64_t DstVal = 0;
  bool HasDstVal = false;
  int64_t LuNewBase = 0;

  switch (I.Op) {
  case Opcode::LI:
    DstVal = I.Imm;
    HasDstVal = true;
    break;
  case Opcode::LR:
    DstVal = S1();
    HasDstVal = true;
    break;
  case Opcode::A:
    DstVal = static_cast<int64_t>(static_cast<uint64_t>(S1()) +
                                  static_cast<uint64_t>(S2()));
    HasDstVal = true;
    break;
  case Opcode::S:
    DstVal = static_cast<int64_t>(static_cast<uint64_t>(S1()) -
                                  static_cast<uint64_t>(S2()));
    HasDstVal = true;
    break;
  case Opcode::MUL:
    DstVal = static_cast<int64_t>(static_cast<uint64_t>(S1()) *
                                  static_cast<uint64_t>(S2()));
    HasDstVal = true;
    break;
  case Opcode::DIV: {
    int64_t D = S2();
    if (D == 0) {
      trap(R, "divide by zero");
      return false;
    }
    if (S1() == INT64_MIN && D == -1)
      DstVal = INT64_MIN;
    else
      DstVal = S1() / D;
    HasDstVal = true;
    break;
  }
  case Opcode::AND:
    DstVal = S1() & S2();
    HasDstVal = true;
    break;
  case Opcode::OR:
    DstVal = S1() | S2();
    HasDstVal = true;
    break;
  case Opcode::XOR:
    DstVal = S1() ^ S2();
    HasDstVal = true;
    break;
  case Opcode::SL:
    DstVal = static_cast<int64_t>(static_cast<uint64_t>(S1())
                                  << (S2() & 63));
    HasDstVal = true;
    break;
  case Opcode::SR:
    DstVal = static_cast<int64_t>(static_cast<uint64_t>(S1()) >>
                                  (S2() & 63));
    HasDstVal = true;
    break;
  case Opcode::SRA:
    DstVal = S1() >> (S2() & 63);
    HasDstVal = true;
    break;
  case Opcode::AI:
  case Opcode::LA:
    DstVal = static_cast<int64_t>(static_cast<uint64_t>(S1()) +
                                  static_cast<uint64_t>(I.Imm));
    HasDstVal = true;
    break;
  case Opcode::SI:
    DstVal = static_cast<int64_t>(static_cast<uint64_t>(S1()) -
                                  static_cast<uint64_t>(I.Imm));
    HasDstVal = true;
    break;
  case Opcode::MULI:
    DstVal = static_cast<int64_t>(static_cast<uint64_t>(S1()) *
                                  static_cast<uint64_t>(I.Imm));
    HasDstVal = true;
    break;
  case Opcode::ANDI:
    DstVal = S1() & I.Imm;
    HasDstVal = true;
    break;
  case Opcode::ORI:
    DstVal = S1() | I.Imm;
    HasDstVal = true;
    break;
  case Opcode::XORI:
    DstVal = S1() ^ I.Imm;
    HasDstVal = true;
    break;
  case Opcode::SLI:
    DstVal = static_cast<int64_t>(static_cast<uint64_t>(S1())
                                  << (I.Imm & 63));
    HasDstVal = true;
    break;
  case Opcode::SRI:
    DstVal = static_cast<int64_t>(static_cast<uint64_t>(S1()) >>
                                  (I.Imm & 63));
    HasDstVal = true;
    break;
  case Opcode::SRAI:
    DstVal = S1() >> (I.Imm & 63);
    HasDstVal = true;
    break;
  case Opcode::NEG:
    DstVal = static_cast<int64_t>(0 - static_cast<uint64_t>(S1()));
    HasDstVal = true;
    break;
  case Opcode::LTOC: {
    auto It = GlobalBase.find(I.Sym);
    if (It == GlobalBase.end()) {
      trap(R, "LTOC of unknown global '" + I.Sym + "'");
      return false;
    }
    DstVal = static_cast<int64_t>(It->second);
    HasDstVal = true;
    break;
  }
  case Opcode::L:
  case Opcode::LU: {
    uint64_t Addr = static_cast<uint64_t>(S1() + I.Imm);
    bool Ok = true, PageZero = false;
    int64_t V = readMem(Addr, I.MemSize, Ok, PageZero);
    if (PageZero && !Model.PageZeroReadable) {
      trap(R, "load from page zero at " + std::to_string(Addr));
      return false;
    }
    if (!Ok) {
      trap(R, "load from unmapped address " + std::to_string(Addr));
      return false;
    }
    DstVal = V;
    HasDstVal = true;
    LuNewBase = S1() + I.Imm;
    break;
  }
  case Opcode::ST: {
    uint64_t Addr = static_cast<uint64_t>(S2() + I.Imm);
    if (!writeMem(Addr, I.MemSize, S1())) {
      trap(R, "store to unmapped address " + std::to_string(Addr));
      return false;
    }
    break;
  }
  case Opcode::C:
  case Opcode::CI: {
    int64_t A = S1();
    int64_t B = I.Op == Opcode::C ? S2() : I.Imm;
    CrVal &Cr = Regs.cr(I.Dst.id());
    Cr.Lt = A < B;
    Cr.Gt = A > B;
    Cr.Eq = A == B;
    break;
  }
  case Opcode::MTCTR:
    Regs.Ctr = S1();
    break;
  case Opcode::B:
    Taken = true;
    break;
  case Opcode::BT:
  case Opcode::BF: {
    bool Bit = Regs.cr(I.Src1.id()).bit(I.Bit);
    Taken = (I.Op == Opcode::BT) ? Bit : !Bit;
    break;
  }
  case Opcode::BCT:
    Taken = (--Regs.Ctr != 0);
    break;
  case Opcode::CALL:
  case Opcode::RET:
    break;
  default:
    trap(R, "unimplemented opcode");
    return false;
  }

  uint64_t C = issue(I, Taken, R);

  // Commit destination values and ready times.
  if (I.Op == Opcode::LU)
    Regs.gpr(I.Src1.id()) = LuNewBase;
  if (HasDstVal && I.Dst.isGpr())
    Regs.gpr(I.Dst.id()) = DstVal;
  if (opcodeInfo(I.Op).HasDst || I.Op == Opcode::LU)
    setDefsReady(I, C + Model.latencyOf(I), C + Model.AluLatency);

  // The stack grows down from the top of memory; a stack pointer that
  // descends into the global data area would silently corrupt globals
  // (and stores through it still look "mapped" to writeMem).
  if (((HasDstVal && I.Dst.isGpr() && I.Dst.id() == 1) ||
       (I.Op == Opcode::LU && I.Src1.isGpr() && I.Src1.id() == 1)) &&
      Regs.Phys[1] < static_cast<int64_t>(DataEnd)) {
    trap(R, "stack overflow into data");
    return false;
  }

  // Control transfer.
  if (I.Op == Opcode::B || ((I.Op == Opcode::BT || I.Op == Opcode::BF ||
                             I.Op == Opcode::BCT) &&
                            Taken)) {
    countEdge(R, CurF->blocks()[BlockIdx]->label(), I.Target);
    if (!jumpTo(I.Target, R)) {
      trap(R, "branch to unknown label '" + I.Target + "'");
      return false;
    }
    return true;
  }

  if (I.Op == Opcode::CALL) {
    // Builtins. Their r3 on return is pinned in ir/Abi.h (print builtins
    // return their argument, read_int the value read); everything else in
    // the clobber set dies.
    if (abi::isBuiltin(I.Sym)) {
      int64_t A0 = Regs.gpr(3);
      scrubCallClobbers(/*KeepArgs=*/0);
      if (I.Sym == "print_int") {
        R.Output += std::to_string(A0) + "\n";
        Regs.gpr(3) = A0;
        Regs.gprReady(3) = C + Model.AluLatency;
        return true;
      }
      if (I.Sym == "print_char") {
        R.Output += static_cast<char>(A0 & 0xff);
        Regs.gpr(3) = A0;
        return true;
      }
      if (I.Sym == "read_int") {
        Regs.gpr(3) =
            InputPos < Opts.Input.size() ? Opts.Input[InputPos++] : 0;
        Regs.gprReady(3) = C + Model.AluLatency;
        return true;
      }
      // exit
      R.ExitCode = A0;
      Done = true;
      return true;
    }
    const Function *Callee = M.findFunction(I.Sym);
    if (!Callee || Callee->blocks().empty()) {
      trap(R, "call to unknown function '" + I.Sym + "'");
      return false;
    }
    scrubCallClobbers(I.Imm);
    Frame Fr;
    Fr.F = CurF;
    Fr.BlockIdx = BlockIdx;
    Fr.InstrIdx = InstrIdx;
    Fr.Virt = std::move(Regs.Virt);
    Fr.VirtCr = std::move(Regs.VirtCr);
    Fr.VirtReady = std::move(Regs.VirtReady);
    Fr.VirtCrReady = std::move(Regs.VirtCrReady);
    CallStack.push_back(std::move(Fr));
    Regs.Virt.clear();
    Regs.VirtCr.clear();
    Regs.VirtReady.clear();
    Regs.VirtCrReady.clear();
    CurF = Callee;
    BlockIdx = 0;
    InstrIdx = 0;
    countBlock(R);
    return true;
  }

  if (I.Op == Opcode::RET) {
    if (CallStack.empty()) {
      R.ExitCode = Regs.gpr(3);
      Done = true;
      return true;
    }
    Frame Fr = std::move(CallStack.back());
    CallStack.pop_back();
    CurF = Fr.F;
    BlockIdx = Fr.BlockIdx;
    InstrIdx = Fr.InstrIdx;
    Regs.Virt = std::move(Fr.Virt);
    Regs.VirtCr = std::move(Fr.VirtCr);
    Regs.VirtReady = std::move(Fr.VirtReady);
    Regs.VirtCrReady = std::move(Fr.VirtCrReady);
    return true;
  }

  return true;
}

} // namespace

uint64_t vsc::runOptionsFingerprint(const RunOptions &Opts) {
  uint64_t H = 1469598103934665603ULL;
  auto Byte = [&H](uint8_t B) {
    H ^= B;
    H *= 1099511628211ULL;
  };
  auto Word = [&Byte](uint64_t V) {
    for (int I = 0; I != 8; ++I)
      Byte(static_cast<uint8_t>(V >> (8 * I)));
  };
  for (char C : Opts.EntryFunction)
    Byte(static_cast<uint8_t>(C));
  Byte(0x01); // separator: name vs args vs input stay injective
  Word(Opts.Args.size());
  for (int64_t A : Opts.Args)
    Word(static_cast<uint64_t>(A));
  Word(Opts.Input.size());
  for (int64_t V : Opts.Input)
    Word(static_cast<uint64_t>(V));
  Word(Opts.MaxInstrs);
  Word(Opts.MemBytes);
  return H;
}

RunResult vsc::simulateLegacy(const Module &M, const MachineModel &Machine_,
                              const RunOptions &Opts) {
  Machine Mach(M, Machine_, Opts);
  return Mach.run();
}

std::string vsc::profileKeyEscape(const std::string &S) {
  if (S.find_first_of("\\:>") == std::string::npos)
    return S;
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    if (C == '\\' || C == ':' || C == '>')
      Out += '\\';
    Out += C;
  }
  return Out;
}

std::string vsc::blockCountKey(const std::string &Func,
                               const std::string &Label) {
  return profileKeyEscape(Func) + ":" + profileKeyEscape(Label);
}

std::string vsc::edgeCountKey(const std::string &Func, const std::string &From,
                              const std::string &To) {
  return profileKeyEscape(Func) + ":" + profileKeyEscape(From) + "->" +
         profileKeyEscape(To);
}

std::unordered_map<std::string, uint64_t>
vsc::computeGlobalLayout(const Module &M) {
  std::unordered_map<std::string, uint64_t> Layout;
  uint64_t Addr = 4096;
  for (const Global &G : M.globals()) {
    Addr = (Addr + 15) & ~uint64_t(15);
    Layout[G.Name] = Addr;
    Addr += G.Size;
  }
  return Layout;
}

int64_t vsc::readMemoryWord(const RunResult &R, uint64_t Addr,
                            unsigned Size) {
  if (Addr + Size > R.Memory.size())
    return 0;
  uint64_t V = 0;
  for (unsigned B = 0; B != Size; ++B)
    V |= static_cast<uint64_t>(R.Memory[Addr + B]) << (8 * B);
  if (Size < 8) {
    uint64_t SignBit = 1ULL << (Size * 8 - 1);
    if (V & SignBit)
      V |= ~((SignBit << 1) - 1);
  }
  return static_cast<int64_t>(V);
}
