//===- sim/Simulator.h - Functional + timing simulator --------*- C++ -*-===//
///
/// \file
/// Executes IR modules and accounts cycles on a parametric in-order
/// superscalar model (machine/MachineModel.h). The simulator plays two
/// roles in this reproduction:
///
///  1. Correctness oracle — the paper's passes must produce "the same
///     run-time results"; every pass test runs the program before and after
///     and compares output, exit code and the final-memory digest.
///  2. The stand-in for the paper's RS/6000 hardware — cycle counts,
///     pathlength (dynamic instructions) and a stall breakdown replace the
///     paper's SPECmark measurements.
///
/// Memory layout: page zero (0..4095) reads as zero when the model allows
/// (the paper's NIL trick), globals from address 4096 up, stack at the top
/// growing down. Virtual registers are function-private (saved/restored at
/// calls), modelling the allocation the real back end would perform after
/// these passes.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_SIM_SIMULATOR_H
#define VSC_SIM_SIMULATOR_H

#include "ir/Module.h"
#include "machine/MachineModel.h"

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace vsc {

/// Escapes profiling-key metacharacters so concatenated keys stay
/// injective: '\' -> "\\", ':' -> "\:", '>' -> "\>". Names without
/// metacharacters (the overwhelmingly common case) come back verbatim, so
/// ordinary keys keep the historical "func:label" spelling.
std::string profileKeyEscape(const std::string &S);

/// Key for a block execution count: "<func>:<label>", both parts escaped.
/// Unambiguous: a literal ':' can only be the separator.
std::string blockCountKey(const std::string &Func, const std::string &Label);

/// Key for an edge execution count: "<func>:<from>-><to>", all parts
/// escaped. Unambiguous: literal ':' and '->' can only be the separators.
std::string edgeCountKey(const std::string &Func, const std::string &From,
                         const std::string &To);

/// Everything a simulation run produces.
struct RunResult {
  bool Trapped = false;
  std::string TrapMsg;
  int64_t ExitCode = 0;
  /// Bytes written by print_int / print_char builtins.
  std::string Output;
  /// Pathlength: dynamically executed instructions.
  uint64_t DynInstrs = 0;
  /// Total cycles under the machine model.
  uint64_t Cycles = 0;
  /// Cycles lost waiting on operands (load-use and similar interlocks).
  uint64_t OperandStallCycles = 0;
  /// Cycles lost to fetch redirects (taken branches, late unconditional
  /// branches, calls/returns).
  uint64_t BranchStallCycles = 0;
  /// FNV-1a digest of the global data area after the run.
  uint64_t MemDigest = 0;
  /// Execution count per (function, block label), keyed by blockCountKey —
  /// ground truth for the profiling experiments.
  std::unordered_map<std::string, uint64_t> BlockCounts;
  /// Execution count per control-flow edge, keyed by edgeCountKey
  /// ("func:from->to", metacharacters escaped) — ground truth the
  /// low-overhead-profiling inference is tested against.
  std::unordered_map<std::string, uint64_t> EdgeCounts;
  /// Final memory image (only when RunOptions::KeepMemory).
  std::vector<uint8_t> Memory;
  /// Base address of each global (for reading counters back).
  std::unordered_map<std::string, uint64_t> GlobalBase;

  /// Functional-equivalence key: two runs with equal fingerprints produced
  /// the same observable behaviour.
  std::string fingerprint() const {
    return (Trapped ? "TRAP:" + TrapMsg : "ok") + "|exit=" +
           std::to_string(ExitCode) + "|out=" + Output +
           "|mem=" + std::to_string(MemDigest);
  }
};

/// Observation hook for the predecoded fast path (RunOptions::Watcher).
/// The engine reports function entries/exits, block entries and every
/// successful memory access with its effective address. Callbacks fire
/// only when a watcher is installed, so the default (null) configuration
/// stays bit-identical to the legacy engine. The alias audit
/// (audit/AliasAudit.h) uses this to cross-check NoAlias claims against
/// the addresses the program actually touched.
class MemAccessWatcher {
public:
  virtual ~MemAccessWatcher() = default;
  /// A new invocation of \p F begins (the entry function, or a CALL).
  virtual void enterFunction(const Function *F) = 0;
  /// The current invocation returns to its caller. The caller's
  /// interrupted block execution resumes without a fresh enterBlock.
  virtual void exitFunction() = 0;
  /// Execution enters \p BB: function entry, fallthrough or taken branch.
  virtual void enterBlock(const BasicBlock *BB) = 0;
  /// \p I (a load or store) accessed [Addr, Addr + Size).
  virtual void memAccess(const Instr *I, uint64_t Addr, unsigned Size) = 0;
};

/// How the fast path's execution loop dispatches decoded records. The two
/// compiled flavours are semantically identical — bit-identical RunResults
/// are enforced by the differential tests — so the mode is a pure
/// performance knob and is excluded from runOptionsFingerprint, like
/// Watcher and KeepMemory.
enum class DispatchMode : uint8_t {
  /// Threaded when compiled in, else switch; the VSC_DISPATCH environment
  /// variable ("threaded" / "switch") overrides, so CI can drive whole
  /// test binaries through either flavour.
  Default,
  /// Portable big-switch dispatch (always available).
  Switch,
  /// Computed-goto threaded dispatch. Requires the VSC_COMPUTED_GOTO
  /// build option and a compiler with the labels-as-values extension;
  /// silently falls back to Switch otherwise.
  Threaded,
};

/// True when the computed-goto flavour was compiled into this binary.
bool threadedDispatchAvailable();

/// The flavour a run with \p Mode would actually execute, after the
/// VSC_DISPATCH override and compiled-availability fallback (never
/// DispatchMode::Default).
DispatchMode resolveDispatchMode(DispatchMode Mode);

/// Short name for a resolved mode: "switch" / "threaded".
const char *dispatchModeName(DispatchMode Mode);

struct RunOptions {
  std::string EntryFunction = "main";
  std::vector<int64_t> Args;
  /// Values returned by the read_int builtin, in order (0 when exhausted).
  std::vector<int64_t> Input;
  uint64_t MaxInstrs = 200'000'000;
  bool KeepMemory = false;
  uint64_t MemBytes = 1u << 22;
  /// Fast-path-only observation hook; see MemAccessWatcher. The legacy
  /// engine ignores it (the bit-identity tests never install one).
  MemAccessWatcher *Watcher = nullptr;
  /// Fast-path dispatch flavour; results are identical in every mode.
  DispatchMode Dispatch = DispatchMode::Default;
};

/// Content fingerprint of everything about \p Opts that can influence a
/// run's observable result (entry, arguments, input stream, instruction
/// budget, memory size) — the simulate-request component of the compile
/// service's artifact keys (src/service). Watcher and KeepMemory are
/// excluded: they change what is *recorded*, not what the program does.
uint64_t runOptionsFingerprint(const RunOptions &Opts);

/// Runs \p M under \p Machine. This is the predecoded fast path: the
/// module is decoded once (sim/Predecode.h) and the functional+timing loop
/// runs over flat records with dense counters. Bit-identical to
/// simulateLegacy (enforced by tests/test_sim_fastpath.cpp).
RunResult simulate(const Module &M, const MachineModel &Machine,
                   const RunOptions &Opts = RunOptions());

/// The original walking interpreter, kept as the reference the fast path
/// is differentially tested and benchmarked against.
RunResult simulateLegacy(const Module &M, const MachineModel &Machine,
                         const RunOptions &Opts = RunOptions());

/// Predecodes \p M once and runs every element of \p Batch against the
/// shared decoded image — the shape the profiling ground-truth runs and
/// the PDF experiment batteries want. Results are positionally matched to
/// \p Batch, so they are deterministic at every thread count. \p Threads
/// 0 defers to the VSC_THREADS environment variable (default 1); at one
/// thread the runs share a single pooled memory arena, allocation-
/// identical to the pre-threaded path, while larger counts fan the batch
/// out across the work-stealing pool with one arena per worker.
std::vector<RunResult> simulateBatch(const Module &M,
                                     const MachineModel &Machine,
                                     const std::vector<RunOptions> &Batch,
                                     unsigned Threads = 0);

struct SimImage;

/// One run's dense counter slots, indexed exactly like the image's
/// interned key tables (SimImage::BlockKeys / EdgeKeys). This is the raw
/// form ProfileStore records — no string-keyed map is materialized.
struct DenseCounters {
  std::vector<uint64_t> BlockHits;
  std::vector<uint64_t> EdgeHits;
};

/// A predecoded module bound to a machine model: predecode once, run many
/// times. Runs reuse a pooled memory arena and dense counter vectors; the
/// string-keyed maps in RunResult are materialized per run from interned
/// keys. The machine model is copied; the module must outlive the engine
/// and not change while it is in use.
class SimEngine {
public:
  SimEngine(const Module &M, const MachineModel &Machine);
  SimEngine(SimEngine &&) noexcept;
  SimEngine &operator=(SimEngine &&) noexcept;
  ~SimEngine();

  RunResult run(const RunOptions &Opts = RunOptions());

  /// Like run(), but exports the block/edge counters as dense slot vectors
  /// into \p Dense and skips materializing the string-keyed
  /// RunResult::BlockCounts / EdgeCounts maps entirely — the profile-
  /// collection fast path (pdf/ProfileStore.h).
  RunResult run(const RunOptions &Opts, DenseCounters &Dense);

  /// Runs every element of \p Batch against the engine's image. \p Threads
  /// 0 defers to VSC_THREADS (default 1); one thread reuses the engine's
  /// pooled arena exactly like sequential run() calls, more threads fan
  /// the batch out over the work-stealing pool with per-worker arenas.
  /// Results (and \p Dense slots, when requested) are positionally
  /// matched to \p Batch, so the output is identical at every thread
  /// count.
  std::vector<RunResult> runBatch(const std::vector<RunOptions> &Batch,
                                  unsigned Threads = 1,
                                  std::vector<DenseCounters> *Dense = nullptr);

  const SimImage &image() const;

private:
  struct State;
  std::unique_ptr<State> S;
};

/// The address each global will be placed at (globals start at 4096,
/// 16-byte aligned, in declaration order) — the same layout the simulator
/// uses, exposed so tests and workload generators can precompute pointer
/// initializers.
std::unordered_map<std::string, uint64_t> computeGlobalLayout(const Module &M);

/// Reads a little-endian word of \p Size bytes from a kept memory image.
int64_t readMemoryWord(const RunResult &R, uint64_t Addr, unsigned Size);

} // namespace vsc

#endif // VSC_SIM_SIMULATOR_H
