//===- vliw/BlockExpansion.cpp - Basic block expansion -----------------------===//

#include "vliw/BlockExpansion.h"

#include "cfg/CfgEdit.h"

#include <cstdio>

#include <cassert>
#include <unordered_set>

using namespace vsc;

namespace {

struct Pos {
  BasicBlock *BB;
  size_t Idx;
};

/// Non-branch instructions at the tail of \p BB before its terminator
/// suffix, since the last call (a block-local approximation of "code
/// immediately preceding the branch").
unsigned tailSeparation(const BasicBlock &BB) {
  size_t FirstTerm = BB.firstTerminatorIdx();
  unsigned N = 0;
  for (size_t I = FirstTerm; I-- > 0;) {
    const Instr &Ins = BB.instrs()[I];
    if (Ins.isCall())
      break;
    ++N;
  }
  // A conditional branch inside the suffix (the [BT, B] shape) means the
  // unconditional branch sits directly in a branch shadow.
  if (FirstTerm + 1 < BB.size())
    return 0;
  return N;
}

/// Walks the code starting at label \p Target gathering the copy region.
/// \returns true and sets \p Stop (inclusive) on success.
bool findStoppingPoint(Function &F, const std::string &Target, unsigned Need,
                       const ExpansionOptions &Opts, Pos &Stop) {
  BasicBlock *BB = F.findBlock(Target);
  assert(BB && "verified function");
  size_t Idx = 0;
  unsigned Run = 0;
  unsigned Walked = 0;
  bool HaveBest = false;
  Pos Best{nullptr, 0};
  Pos Prev{nullptr, 0};
  std::unordered_set<const BasicBlock *> Visited;
  Visited.insert(BB);

  while (Walked < Opts.Window) {
    if (Idx >= BB->size()) {
      // Fallthrough.
      size_t BI = F.indexOf(BB);
      if (BI + 1 >= F.blocks().size())
        break;
      BB = F.blocks()[BI + 1].get();
      if (Visited.count(BB))
        break; // revisited: stop
      Visited.insert(BB);
      Idx = 0;
      continue;
    }
    Instr &J = BB->instrs()[Idx];
    ++Walked;
    if (J.Op == Opcode::B) {
      // Follow the unconditional branch without copying it.
      BasicBlock *Next = F.findBlock(J.Target);
      if (!Next || Visited.count(Next))
        break;
      Visited.insert(Next);
      BB = Next;
      Idx = 0;
      continue;
    }
    if (J.isRet() || J.Op == Opcode::BCT) {
      // The search stops at returns and branch-on-count — inclusively: a
      // clone may legally end with the RET, or with the BCT followed by a
      // branch to its fallthrough continuation.
      Stop = Pos{BB, Idx};
      return true;
    }
    if (J.isCondBranch() || J.isCall()) {
      // Good stopping point: the instruction immediately preceding a
      // conditional branch.
      if (J.isCondBranch() && Prev.BB && Run > 0) {
        Best = Prev;
        HaveBest = true;
      }
      Run = 0; // objective re-calculated past conditional branches/calls
      Prev = Pos{BB, Idx};
      ++Idx;
      continue;
    }
    ++Run;
    Prev = Pos{BB, Idx};
    if (Run >= Need) {
      Stop = Pos{BB, Idx};
      return true;
    }
    ++Idx;
  }
  if (HaveBest) {
    Stop = Best;
    return true;
  }
  return false;
}

/// Clones the chain from \p Target up to and including \p Stop, placing the
/// clones right after block \p P (which must end with the unconditional
/// branch being expanded). The final clone branches to the instruction
/// after \p Stop.
// NOTE: Target is taken by value — the caller's string lives inside the
// unconditional branch this function deletes.
void cloneChain(Function &F, BasicBlock *P, const std::string Target,
                Pos Stop) {
  bool StopIsRet = Stop.BB->instrs()[Stop.Idx].isRet();
  // Continuation label: split Stop's block after Stop.Idx if needed.
  std::string ContLabel;
  if (StopIsRet) {
    ContLabel.clear(); // the clone ends with the return itself
  } else if (Stop.Idx + 1 < Stop.BB->size()) {
    size_t SBIdx = F.indexOf(Stop.BB);
    BasicBlock *C = F.insertBlock(SBIdx + 1, Stop.BB->label() + ".bx");
    auto &Ins = Stop.BB->instrs();
    C->instrs().assign(Ins.begin() + static_cast<long>(Stop.Idx) + 1,
                       Ins.end());
    Ins.erase(Ins.begin() + static_cast<long>(Stop.Idx) + 1, Ins.end());
    ContLabel = C->label();
  } else {
    size_t SBIdx = F.indexOf(Stop.BB);
    assert(Stop.BB->canFallThrough() && SBIdx + 1 < F.blocks().size());
    ContLabel = F.blocks()[SBIdx + 1]->label();
  }

  // Remove P's trailing unconditional branch; clones are laid right after
  // P so execution falls into them.
  assert(!P->empty() && P->instrs().back().Op == Opcode::B);
  P->instrs().pop_back();

  size_t InsertAt = F.indexOf(P) + 1;
  BasicBlock *BB = F.findBlock(Target);
  size_t Idx = 0;
  BasicBlock *Clone = F.insertBlock(InsertAt++, P->label() + ".x");
  unsigned Guard = 0;
  while (true) {
    if (!BB || ++Guard > 4096) {
      std::fprintf(stderr,
                   "cloneChain diverged: P=%s target=%s stop=%s/%zu\n",
                   P->label().c_str(), Target.c_str(),
                   Stop.BB->label().c_str(), Stop.Idx);
      assert(false && "chain walk diverged from findStoppingPoint");
    }
    if (Idx >= BB->size()) {
      size_t BI = F.indexOf(BB);
      BB = F.blocks()[BI + 1].get();
      Idx = 0;
      continue;
    }
    const Instr &J = BB->instrs()[Idx];
    if (J.Op == Opcode::B) {
      BB = F.findBlock(J.Target);
      Idx = 0;
      continue;
    }
    Instr Copy = J;
    F.assignId(Copy);
    Clone->instrs().push_back(std::move(Copy));
    bool AtStop = (BB == Stop.BB && Idx == Stop.Idx);
    if (AtStop)
      break;
    if (J.isCondBranch()) {
      // The clone keeps the conditional branch (same target) and continues
      // on the fallthrough path in a fresh clone block.
      Clone = F.insertBlock(InsertAt++, P->label() + ".x");
    }
    ++Idx;
  }
  if (!ContLabel.empty()) {
    Instr Closer;
    Closer.Op = Opcode::B;
    Closer.Target = ContLabel;
    F.assignId(Closer);
    Clone->instrs().push_back(std::move(Closer));
  }
}

} // namespace

bool vsc::expandBasicBlocks(Function &F, const MachineModel &MM,
                            const ExpansionOptions &Opts,
                            FunctionAnalyses &FA) {
  bool Any = false;
  unsigned Applied = 0;
  // Each expansion restructures the layout; restart the scan after one.
  // cloneChain inserts blocks, so the epoch bump refreshes the cached Cfg
  // on the next round automatically.
  for (unsigned Guard = 0; Guard < Opts.MaxExpansions; ++Guard) {
    const Cfg &G = FA.cfg();
    bool Changed = false;
    for (auto &BBPtr : F.blocks()) {
      BasicBlock *P = BBPtr.get();
      if (!G.isReachable(P) || P->empty())
        continue;
      const Instr &Last = P->instrs().back();
      if (Last.Op != Opcode::B)
        continue;
      if (tailSeparation(*P) >= MM.ExpansionObjective)
        continue; // no stall to remove
      // Self-loops are the loop latch's business, not expansion's.
      if (Last.Target == P->label())
        continue;
      unsigned Need = MM.ExpansionObjective;
      Pos Stop{nullptr, 0};
      if (!findStoppingPoint(F, Last.Target, Need, Opts, Stop))
        continue;
      // The walk can wrap around a loop and stop inside P itself; the
      // continuation split would then steal the very branch being
      // expanded. Skip that degenerate case.
      if (Stop.BB == P)
        continue;
      cloneChain(F, P, Last.Target, Stop);
      Changed = true;
      Any = true;
      ++Applied;
      break;
    }
    if (!Changed)
      break;
  }
  if (Any) {
    removeUnreachableBlocks(F);
    straighten(F);
  }
  (void)Applied;
  return Any;
}

bool vsc::expandBasicBlocks(Function &F, const MachineModel &MM,
                            const ExpansionOptions &Opts) {
  FunctionAnalyses FA(F);
  return expandBasicBlocks(F, MM, Opts, FA);
}
