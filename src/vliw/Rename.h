//===- vliw/Rename.h - Live-range renaming in loops -----------*- C++ -*-===//
///
/// \file
/// Live-range renaming of (unrolled) loop bodies, the paper's enabler for
/// cross-iteration scheduling: every non-final definition of a register in
/// the body receives a fresh name, breaking anti- and output-dependences
/// between unrolled iterations. Following the paper, "for each register r
/// that is live at an edge that leaves the loop, a copy operation LR r=r is
/// inserted at that exit edge before live range renaming" — renaming then
/// rewrites the copy's source, producing the non-coalesceable LR the
/// paper's listings show at the `found:` exit.
///
/// Scope: loops whose body is a linear chain of blocks (each non-header
/// block has exactly one in-loop predecessor and each block at most one
/// in-loop successor besides the back edge) and that contain no calls.
/// These are exactly the loop shapes the scheduler pipelines; DESIGN.md
/// records the restriction.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_VLIW_RENAME_H
#define VSC_VLIW_RENAME_H

#include "cfg/Loops.h"
#include "ir/Function.h"
#include "pm/Analysis.h"

namespace vsc {

/// \returns the loop body as a linear chain starting at the header, or an
/// empty vector if the loop is not chain-shaped (or contains calls).
std::vector<BasicBlock *> loopChain(const Cfg &G, const Loop &L);

/// Renames live ranges in \p L. \returns true if renaming was performed.
/// Invalidate CFG analyses afterwards (exit edges are split for copies).
bool renameLoopLiveRanges(Function &F, const Loop &L);

/// Runs renaming on every innermost chain-shaped loop. \returns count.
unsigned renameInnermostLoops(Function &F);
unsigned renameInnermostLoops(Function &F, FunctionAnalyses &FA);

} // namespace vsc

#endif // VSC_VLIW_RENAME_H
